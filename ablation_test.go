package gdsx

// Ablation tests for the design choices DESIGN.md calls out: the §3.4
// overhead optimizations (span DSE, base hoisting), the bonded vs
// interleaved layouts, the conservative DOACROSS sync placement, and
// the relaxed Definition 5 classification the paper mentions after the
// definition.

import (
	"strings"
	"testing"

	"gdsx/internal/ddg"
	"gdsx/internal/expand"
	"gdsx/internal/schedule"
)

func transformWith(t *testing.T, src string, opts expand.Options) (*TransformResult, Result) {
	t.Helper()
	prog, err := Compile("abl.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tr, err := Transform(prog, TransformOptions{Expand: &opts})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	res, err := RunSource("abl-x.c", tr.Source, RunOptions{Threads: 1, Trace: true})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, tr.Source)
	}
	return tr, res
}

func TestAblationSpanDSE(t *testing.T) {
	// A pointer walk (p = p + 1) inside the loop: without DSE every
	// step stores a redundant span.
	src := `
int main() {
    int m = 32;
    int *buf = (int*)malloc(m * 4);
    int sz = m * 4 + nextJunk();
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int *p = buf;
        int k;
        for (k = 0; k < m; k++) {
            *p = it + k;
            p = p + 1;
        }
        int s = 0;
        for (k = 0; k < m; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 8; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}
int nextJunk() { return 0; }
`
	// Make the buffer size non-constant so the pointer is promoted in
	// both configurations (the source above achieves this via
	// nextJunk, which the constant folder cannot see through)...
	src = strings.Replace(src, "malloc(m * 4)", "malloc(sz0())", 1)
	src = "int sz0() { return 128; }\n" + src

	opt := expand.Optimized()
	unopt := expand.Unoptimized()
	trOpt, _ := transformWith(t, src, opt)
	trUn, _ := transformWith(t, src, unopt)
	ro, ru := trOpt.Reports[0], trUn.Reports[0]
	if ro.SpanStoresElided == 0 {
		t.Errorf("optimized pass elided no span stores: %+v", ro)
	}
	if ru.SpanStores <= ro.SpanStores {
		t.Errorf("unoptimized should emit more span stores: %d vs %d",
			ru.SpanStores, ro.SpanStores)
	}
	if !strings.Contains(trUn.Source, ".span = p.span") &&
		!strings.Contains(trUn.Source, "p.span = p.span") {
		t.Errorf("unoptimized source lacks the redundant self span store:\n%s", trUn.Source)
	}
}

func TestAblationHoisting(t *testing.T) {
	hoisted := expand.Optimized()
	flat := expand.Optimized()
	flat.HoistBases = false
	trH, resH := transformWith(t, zptrSrc, hoisted)
	trF, resF := transformWith(t, zptrSrc, flat)
	if !strings.Contains(trH.Source, "__base") {
		t.Fatalf("hoisted source has no base temporaries:\n%s", trH.Source)
	}
	if strings.Contains(trF.Source, "__base") {
		t.Fatalf("non-hoisted source unexpectedly hoists")
	}
	if resH.Counters[0] >= resF.Counters[0] {
		t.Errorf("hoisting should reduce ops: %d vs %d", resH.Counters[0], resF.Counters[0])
	}
	if resH.Output != resF.Output {
		t.Errorf("outputs diverge between hoisted and flat")
	}
}

func TestAblationConservativeSync(t *testing.T) {
	tight := expand.Optimized()
	coarse := expand.Optimized()
	coarse.ConservativeSync = true
	_, resT := transformWith(t, doacrossSrc, tight)
	trC, resC := transformWith(t, doacrossSrc, coarse)
	if resT.Output != resC.Output {
		t.Fatalf("outputs diverge")
	}
	if !strings.Contains(trC.Source, "__sync_wait") {
		t.Fatalf("conservative sync missing markers")
	}
	model := schedule.DefaultModel()
	timeAt := func(res Result, n int) int64 {
		var total int64
		for _, tr := range res.Traces {
			total += schedule.Simulate(tr, n, model).Time
		}
		return total
	}
	// Coarse placement serializes the whole body: at 8 threads it must
	// be substantially slower than the minimal placement.
	tT, tC := timeAt(resT, 8), timeAt(resC, 8)
	if tC < tT*3/2 {
		t.Errorf("conservative sync should serialize: tight=%d coarse=%d", tT, tC)
	}
}

func TestAblationRelaxedClassification(t *testing.T) {
	// A buffer written before read in every iteration but never
	// involved in a carried anti/output dependence (allocated fresh
	// per... rather: only read from outside once): under strict
	// Definition 5 condition 3 it stays shared; relaxed, it expands.
	src := `
int main() {
    int *out = (int*)malloc(6 * 4);
    int scratch[8];
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 8; k++) {
            scratch[k] = it + k;
        }
        out[it] = scratch[0] + scratch[7];
    }
    long s = 0;
    for (it = 0; it < 6; it++) { s += out[it]; }
    print_long(s);
    free(out);
    return 0;
}
`
	strict := ddg.DefaultOptions()
	relaxed := ddg.Options{RequireCarriedAntiOrOutput: false}
	prog, err := Compile("rlx.c", src)
	if err != nil {
		t.Fatal(err)
	}
	trS, err := Transform(prog, TransformOptions{Classify: &strict})
	if err != nil {
		t.Fatal(err)
	}
	trR, err := Transform(prog, TransformOptions{Classify: &relaxed})
	if err != nil {
		t.Fatal(err)
	}
	// scratch has carried anti/output deps (reused every iteration), so
	// both expand it; the relaxed variant additionally privatizes
	// write-first accesses without carried deps — it can only expand
	// more, never less.
	if trR.Reports[0].Structures < trS.Reports[0].Structures {
		t.Errorf("relaxed classification expanded less: %d vs %d",
			trR.Reports[0].Structures, trS.Reports[0].Structures)
	}
	for _, n := range []int{1, 8} {
		a, err := RunSource("s.c", trS.Source, RunOptions{Threads: n})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunSource("r.c", trR.Source, RunOptions{Threads: n})
		if err != nil {
			t.Fatal(err)
		}
		if a.Output != b.Output {
			t.Fatalf("N=%d: outputs differ", n)
		}
	}
}

// The §6 adaptive scheme: interleave when the structures allow it,
// bond when they do not (the recast case), always preserving output.
func TestAblationAdaptiveLayout(t *testing.T) {
	adaptive := expand.Optimized()
	adaptive.Layout = expand.Adaptive

	// Recast program: must fall back to bonded.
	prog, err := Compile("recast.c", recastSrc)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(prog, TransformOptions{Expand: &adaptive})
	if err != nil {
		t.Fatalf("adaptive on recast: %v", err)
	}
	if tr.Reports[0].LayoutUsed != expand.Bonded {
		t.Fatalf("recast buffer should select bonded, got %v", tr.Reports[0].LayoutUsed)
	}
	res, err := RunSource("recast-a.c", tr.Source, RunOptions{Threads: 4})
	if err != nil || res.Output != native.Output {
		t.Fatalf("adaptive bonded run: %v %q vs %q", err, res.Output, native.Output)
	}

	// Interleavable program: must select interleaved.
	prog2, err := Compile("il.c", interleavableSrc)
	if err != nil {
		t.Fatal(err)
	}
	native2, err := prog2.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Transform(prog2, TransformOptions{Expand: &adaptive})
	if err != nil {
		t.Fatalf("adaptive on interleavable: %v", err)
	}
	if tr2.Reports[0].LayoutUsed != expand.Interleaved {
		t.Fatalf("interleavable buffer should select interleaved, got %v", tr2.Reports[0].LayoutUsed)
	}
	res2, err := RunSource("il-a.c", tr2.Source, RunOptions{Threads: 4})
	if err != nil || res2.Output != native2.Output {
		t.Fatalf("adaptive interleaved run: %v %q vs %q", err, res2.Output, native2.Output)
	}
}

// interleavableSrc uses a single-typed heap buffer accessed only
// inside the loop: the interleaved layout supports it.
const interleavableSrc = `
int main() {
    int *buf = (int*)malloc(24 * 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 24; k++) {
            buf[k] = it * k;
        }
        int s = 0;
        for (k = 0; k < 24; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}
`

func TestAblationInterleavedLayout(t *testing.T) {
	// A single-typed heap buffer accessed only inside the loop: the
	// interleaved layout supports it and must produce the same output.
	src := `
int main() {
    int *buf = (int*)malloc(24 * 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 24; k++) {
            buf[k] = it * k;
        }
        int s = 0;
        for (k = 0; k < 24; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}
`
	prog, err := Compile("il.c", src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	inter := expand.Optimized()
	inter.Layout = expand.Interleaved
	tr, err := Transform(prog, TransformOptions{Expand: &inter})
	if err != nil {
		t.Fatalf("interleaved transform: %v", err)
	}
	if !strings.Contains(tr.Source, "* __nthreads + __tid") &&
		!strings.Contains(tr.Source, "* __nthreads]") {
		t.Fatalf("no interleaved indexing in:\n%s", tr.Source)
	}
	for _, n := range []int{1, 2, 8} {
		res, err := RunSource("il-x.c", tr.Source, RunOptions{Threads: n})
		if err != nil {
			t.Fatalf("N=%d: %v\n%s", n, err, tr.Source)
		}
		if res.Output != native.Output {
			t.Fatalf("N=%d: %q != %q\n%s", n, res.Output, native.Output, tr.Source)
		}
	}
}

// Adaptive layout composes with pointer promotion: a runtime-sized
// buffer (promoted, spans tracked) that is still interleavable must
// come out correct under the interleaved choice.
func TestAblationAdaptiveWithPromotion(t *testing.T) {
	src := `
int dyn() { return 16; }
int main() {
    int m = dyn();
    int *buf = (int*)malloc(m * 4);
    int *out = (int*)malloc(10 * 4);
    int i;
    parallel for (i = 0; i < 10; i++) {
        int k;
        for (k = 0; k < m; k++) { buf[k] = i + k; }
        int s = 0;
        for (k = 0; k < m; k++) { s += buf[k]; }
        out[i] = s;
    }
    long total = 0;
    for (i = 0; i < 10; i++) { total += out[i]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}`
	adaptive := expand.Optimized()
	adaptive.Layout = expand.Adaptive
	prog, err := Compile("ap.c", src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(prog, TransformOptions{Expand: &adaptive})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reports[0].LayoutUsed != expand.Interleaved {
		t.Fatalf("layout = %v, want interleaved", tr.Reports[0].LayoutUsed)
	}
	if len(tr.Reports[0].Promoted) == 0 {
		t.Fatalf("expected promotion alongside interleaving")
	}
	for _, n := range []int{1, 4, 8} {
		res, err := RunSource("ap-x.c", tr.Source, RunOptions{Threads: n})
		if err != nil || res.Output != native.Output {
			t.Fatalf("N=%d: %v %q vs %q\n%s", n, err, res.Output, native.Output, tr.Source)
		}
	}
}
