package gdsx

import (
	"fmt"

	"gdsx/internal/expand"
	"gdsx/internal/obs"
)

// Layout re-exports the expansion pass's copy-layout selector.
type Layout = expand.Layout

// Copy layouts.
const (
	LayoutBonded      = expand.Bonded
	LayoutInterleaved = expand.Interleaved
	LayoutAdaptive    = expand.Adaptive
)

// AdaptiveOptions configure AdaptiveRun.
type AdaptiveOptions struct {
	// Transform is the base pipeline configuration. Guard markers and
	// commutative privatization are forced on — the adaptive ladder is
	// built on both.
	Transform TransformOptions
	// Run configures each attempt's guarded execution. Recover defaults
	// to &RecoverySpec{} (the ladder needs region rollback); Sample and
	// FaultPlan are honored as given.
	Run RunOptions
	// MaxReexpand bounds the runtime re-expansions (default 2: one
	// layout flip, one copy-count halving).
	MaxReexpand int
	// StrikeThreshold is how many violations at the same
	// (loop, rule, site, other-site) pair trigger a re-expansion
	// (default 2).
	StrikeThreshold int
}

// Reexpansion records one runtime re-expansion decision.
type Reexpansion struct {
	// Attempt is the guarded execution (1-based) whose violations
	// triggered the decision.
	Attempt int
	// Loop/Rule/Site/OtherSite identify the repeated-violation site
	// pair (sites in the expanded program of that attempt).
	Loop      int
	Rule      string
	Site      int
	OtherSite int
	// From/To name the layouts before and after; Threads is the copy
	// count after the decision.
	From, To string
	Threads  int
	// Failed marks a re-expansion that did not take effect: injected by
	// FaultPlan.FailReexpand, or the re-transform was rejected (e.g.
	// the interleaved layout refusing a recast buffer). Reason says
	// which.
	Failed bool
	Reason string
}

// AdaptiveResult is the outcome of an adaptive guarded execution.
type AdaptiveResult struct {
	// Final is the last attempt's guarded result — the one whose output
	// stands. Every attempt's output is already correct (the recovery
	// ladder guarantees it); re-expansion is a performance adaptation.
	Final *GuardedResult
	// Transform is the transform result of the final attempt.
	Transform *TransformResult
	// Attempts counts guarded executions (1 = no re-expansion needed).
	Attempts int
	// Threads is the copy count of the final attempt (re-expansion may
	// have reduced it from Run.Threads).
	Threads int
	// Layout names the final attempt's copy layout.
	Layout string
	// Reexpansions records every re-expansion decision, including
	// failed ones.
	Reexpansions []Reexpansion
	// Strikes is the residual per-site-pair violation tally of the
	// final attempt, keyed "loop<id>/<rule>/<site>-<other>".
	Strikes map[string]int
}

// pairKey identifies a repeated-violation site pair.
type pairKey struct {
	loop        int
	rule        string
	site, other int
}

func (k pairKey) String() string {
	return fmt.Sprintf("loop%d/%s/%d-%d", k.loop, k.rule, k.site, k.other)
}

// flipLayout is the bonded <-> interleaved re-expansion move.
func flipLayout(l Layout) Layout {
	if l == LayoutInterleaved {
		return LayoutBonded
	}
	return LayoutInterleaved
}

// AdaptiveRun executes the program through the full adaptive
// speculation ladder. Each attempt transforms the program (guard
// markers and commutative privatization on) and runs it guarded with
// region recovery; tier sampling (Run.Sample) and chaos injection
// (Run.FaultPlan) apply per attempt. When one attempt's violation
// reports show the same (loop, rule, site-pair) striking
// StrikeThreshold times, the driver re-expands: first flipping the
// copy layout (bonded <-> interleaved), then halving the copy count
// (thread count), re-admitting the program on a fresh recovery ladder
// each time. Decisions — including re-expansions that fail, whether
// rejected by the pass or injected by FaultPlan.FailReexpand — are
// recorded in the result and as "reexpand" events on Run.Obs.
//
// The returned result's Final.Result carries the output of the last
// attempt; its correctness does not depend on the adaptation (every
// attempt recovers violating regions individually).
func AdaptiveRun(p *Program, opts AdaptiveOptions) (*AdaptiveResult, error) {
	maxRe := opts.MaxReexpand
	if maxRe <= 0 {
		maxRe = 2
	}
	thr := opts.StrikeThreshold
	if thr <= 0 {
		thr = 2
	}

	topts := opts.Transform
	eopts := expand.Optimized()
	if topts.Expand != nil {
		eopts = *topts.Expand
	}
	eopts.GuardNotes = true
	eopts.Commutative = true
	topts.Expand = &eopts
	topts.Guard = true

	ropts := opts.Run
	if ropts.Recover == nil {
		ropts.Recover = &RecoverySpec{}
	}
	if ropts.Threads <= 0 {
		ropts.Threads = 1
	}

	emit := func(loop int, label string, v1 int64) {
		if ropts.Obs != nil {
			ropts.Obs.Emit(obs.Event{Name: "reexpand", Ph: 'i', Loop: loop, Iter: -1,
				Label: label, V1: v1})
		}
	}

	res := &AdaptiveResult{}
	reexpands := 0 // re-expansion decisions so far (FailReexpand counter)
	tr, err := Transform(p, topts)
	if err != nil {
		return nil, err
	}
	for attempt := 1; ; attempt++ {
		gr, err := GuardedRun(p, tr, ropts)
		if err != nil {
			return nil, err
		}
		res.Final, res.Transform, res.Attempts = gr, tr, attempt
		res.Threads = ropts.Threads
		res.Layout = eopts.Layout.String()
		if len(tr.Reports) > 0 {
			res.Layout = tr.Reports[0].LayoutUsed.String()
		}

		// Tally this attempt's violations per site pair. Site IDs live
		// in this attempt's expanded program, so the tally never mixes
		// transforms; a re-expansion starts a fresh ladder.
		strikes := map[pairKey]int{}
		var worst *pairKey
		for _, rep := range gr.Violations {
			for _, v := range rep.Violations {
				k := pairKey{loop: rep.Loop, rule: v.Rule, site: v.Site, other: v.OtherSite}
				strikes[k]++
				if strikes[k] >= thr && worst == nil {
					wk := k
					worst = &wk
				}
			}
		}
		res.Strikes = map[string]int{}
		for k, n := range strikes {
			res.Strikes[k.String()] = n
		}
		if worst == nil || reexpands >= maxRe {
			return res, nil
		}

		// Re-expand: flip the layout on the first strike-out, halve the
		// copy count after that (or when the flipped layout is
		// rejected — e.g. interleaving a recast buffer).
		reexpands++
		rx := Reexpansion{
			Attempt: attempt, Loop: worst.loop, Rule: worst.rule,
			Site: worst.site, OtherSite: worst.other,
			From: eopts.Layout.String(), Threads: ropts.Threads,
		}
		if fp := ropts.FaultPlan; fp != nil && fp.FailReexpand > 0 && reexpands%fp.FailReexpand == 0 {
			rx.To, rx.Failed, rx.Reason = rx.From, true, "injected by fault plan"
			res.Reexpansions = append(res.Reexpansions, rx)
			emit(worst.loop, "reexpand-failed: "+rx.Reason, int64(strikes[*worst]))
			return res, nil
		}
		if reexpands == 1 {
			next := topts
			neo := eopts
			neo.Layout = flipLayout(eopts.Layout)
			next.Expand = &neo
			ntr, terr := Transform(p, next)
			if terr == nil {
				eopts, topts, tr = neo, next, ntr
				rx.To = eopts.Layout.String()
				res.Reexpansions = append(res.Reexpansions, rx)
				emit(worst.loop, rx.From+"->"+rx.To, int64(strikes[*worst]))
				continue
			}
			rx.To, rx.Failed, rx.Reason = rx.From, true, terr.Error()
			res.Reexpansions = append(res.Reexpansions, rx)
			emit(worst.loop, "reexpand-failed: layout rejected", int64(strikes[*worst]))
			// Fall through to the copy-count move below without
			// consuming another re-expansion budget slot for the
			// rejected flip.
		}
		if ropts.Threads <= 1 {
			return res, nil
		}
		rx = Reexpansion{
			Attempt: attempt, Loop: worst.loop, Rule: worst.rule,
			Site: worst.site, OtherSite: worst.other,
			From: eopts.Layout.String(), To: eopts.Layout.String(),
		}
		ropts.Threads /= 2
		rx.Threads = ropts.Threads
		res.Reexpansions = append(res.Reexpansions, rx)
		emit(worst.loop, fmt.Sprintf("copies:%d->%d", rx.Threads*2, rx.Threads), int64(strikes[*worst]))
	}
}
