package gdsx

import (
	"gdsx/internal/ddg"
	"gdsx/internal/interp"
	"gdsx/internal/rtpriv"
)

// PrivateSites profiles every parallel loop of the program and returns
// the union of its thread-private access sites per Definition 5.
func (p *Program) PrivateSites(opts RunOptions) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, id := range p.ParallelLoops() {
		pr, err := p.ProfileLoop(id, opts)
		if err != nil {
			return nil, err
		}
		cls := ddg.Classify(pr.Graph, ddg.DefaultOptions())
		for _, s := range cls.PrivateSites() {
			if as := p.Info.Accesses[s]; as != nil && as.IsDef {
				continue
			}
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// RtStats reports what the runtime-privatization monitor did.
type RtStats struct {
	Monitored   int64
	Copies      int64
	CopiedBytes int64
}

// RunRuntimePrivatized executes the ORIGINAL (untransformed) program
// under the SpiceC-style runtime privatization baseline (§4.2.1): the
// given private access sites are intercepted at run time and redirected
// to thread-local copies, with the monitoring cost charged to the
// simulated op counters.
func (p *Program) RunRuntimePrivatized(privateSites []int, ropts RunOptions) (Result, RtStats, error) {
	rt := rtpriv.New(privateSites, rtpriv.DefaultModel())
	ropts.Hooks = rt.Hooks()
	iopts := ropts.interpOptions()
	// The monitor must engage even for single-thread overhead runs.
	iopts.ParallelizeSingle = true
	m := interp.New(p.AST, p.Info, iopts)
	rt.Bind(m)
	res, err := m.Run()
	s := rt.Stats()
	return res, RtStats{Monitored: s.Monitored, Copies: s.Copies, CopiedBytes: s.CopiedBytes}, err
}
