package gdsx

// Cooperative cancellation (RunOptions.Ctx): cancelling the context
// mid-parallel-region must unwind every worker at its next safe point,
// leak no goroutines, and surface one deterministic structured error —
// *interp.CancelledError wrapping the context cause — no matter which
// scheduler or engine ran the region. These tests synchronize on the
// ParallelStart hook so the cancel always lands strictly inside an
// executing parallel region, and run under -race in CI.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"gdsx/internal/interp"
)

// cancelLoopSrc is a parallel loop whose full run takes far longer
// than any test's cancel latency: 64 iterations of 5M-step inner
// loops. A run that ignores cancellation is caught by the RegionTimeout
// backstop the tests set, not by a hung test binary.
const cancelLoopSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		long j;
		for (j = 0; j < 5000000; j++) { acc = acc + j - i; }
		out[i] = acc;
	}
	print_long(out[0]);
	print_char('\n');
	return 0;
}
`

// cancelOrderedSrc is a DOACROSS loop whose ordered sections never
// post once iteration 8 is reached (iteration 8 spins forever in its
// inner loop before posting), so later iterations block in the
// ordered-section spin — the safe point under test.
const cancelOrderedSrc = `
int N = 32;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel doacross for (i = 0; i < N; i++) {
		long acc = 0;
		long j;
		long lim = 1000;
		if (i == 8) { lim = 4000000000; }
		for (j = 0; j < lim; j++) { acc = acc + j; }
		__sync_wait();
		out[i] = acc;
		__sync_post();
	}
	print_long(out[0]);
	print_char('\n');
	return 0;
}
`

// checkGoroutines polls until the goroutine count returns to the
// baseline (workers are joined before Run returns; the context watcher
// exits asynchronously just after).
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before run, %d after", base, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkCancelled asserts the deterministic structured error shape.
func checkCancelled(t *testing.T, err error, wantCause error) {
	t.Helper()
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	var ce *interp.CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *interp.CancelledError: %v", err, err)
	}
	if !errors.Is(err, wantCause) {
		t.Fatalf("error %v does not wrap %v", err, wantCause)
	}
}

// runCancelMid compiles src, starts it with the given options, cancels
// the context as soon as the first parallel region starts, and returns
// the run's error.
func runCancelMid(t *testing.T, src string, opts RunOptions) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	opts.Ctx = ctx
	opts.Hooks = &interp.Hooks{
		ParallelStart: func(loopID, nthreads int) {
			once.Do(func() { close(started) })
		},
	}
	if opts.RegionTimeout == 0 {
		// Backstop: a run that ignores cancellation fails via the
		// region watchdog instead of hanging the test binary.
		opts.RegionTimeout = 30 * time.Second
	}
	errc := make(chan error, 1)
	go func() {
		_, err := RunSource("cancel.c", src, opts)
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		return err
	case <-time.After(60 * time.Second):
		t.Fatal("run did not return after cancellation")
		return nil
	}
}

// TestCancelMidParallelRegion cancels a DOALL region under every
// scheduler and both engines: the run must return the structured
// cancellation error and leak no goroutines, under -race.
func TestCancelMidParallelRegion(t *testing.T) {
	engines := []struct {
		name string
		eng  Engine
	}{{"compiled", EngineCompiled}, {"tree", EngineTree}}
	for _, ps := range parityScheds {
		for _, en := range engines {
			t.Run(ps.name+"/"+en.name, func(t *testing.T) {
				base := runtime.NumGoroutine()
				err := runCancelMid(t, cancelLoopSrc,
					RunOptions{Threads: 4, Sched: ps.pol, Engine: en.eng})
				checkCancelled(t, err, context.Canceled)
				want := "interp: run cancelled: context canceled"
				if err.Error() != want {
					t.Fatalf("error %q, want deterministic %q", err.Error(), want)
				}
				checkGoroutines(t, base)
			})
		}
	}
}

// TestCancelMidOrderedRegion cancels a DOACROSS region whose workers
// are blocked in the ordered-section spin — the cancellation must
// interrupt the spin (not just loop back-edges) on both engines and
// both ordered schedulers.
func TestCancelMidOrderedRegion(t *testing.T) {
	engines := []struct {
		name string
		eng  Engine
	}{{"compiled", EngineCompiled}, {"tree", EngineTree}}
	scheds := []struct {
		name string
		pol  SchedPolicy
	}{{"static", SchedStatic}, {"dynamic", SchedDynamic}}
	for _, ps := range scheds {
		for _, en := range engines {
			t.Run(ps.name+"/"+en.name, func(t *testing.T) {
				base := runtime.NumGoroutine()
				err := runCancelMid(t, cancelOrderedSrc,
					RunOptions{Threads: 4, Sched: ps.pol, Engine: en.eng})
				checkCancelled(t, err, context.Canceled)
				checkGoroutines(t, base)
			})
		}
	}
}

// TestCancelWithRecovery: a cancelled region must NOT be treated as a
// recoverable fault — region recovery re-executing a cancelled run
// sequentially would defeat the deadline. The run returns the
// cancellation error even with Recover enabled.
func TestCancelWithRecovery(t *testing.T) {
	base := runtime.NumGoroutine()
	err := runCancelMid(t, cancelLoopSrc,
		RunOptions{Threads: 4, Recover: &RecoverySpec{}})
	checkCancelled(t, err, context.Canceled)
	checkGoroutines(t, base)
}

// TestCancelBeforeRun: an already-cancelled context fails fast without
// executing anything.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunSource("pre.c", cancelLoopSrc, RunOptions{Threads: 2, Ctx: ctx})
	checkCancelled(t, err, context.Canceled)
	if res.Output != "" {
		t.Fatalf("pre-cancelled run produced output %q", res.Output)
	}
}

// TestCancelDeadline: a context deadline maps to DeadlineExceeded as
// the wrapped cause, distinguishing timeouts from explicit cancels.
func TestCancelDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := RunSource("deadline.c", cancelLoopSrc,
		RunOptions{Threads: 4, Ctx: ctx, RegionTimeout: 30 * time.Second})
	checkCancelled(t, err, context.DeadlineExceeded)
}

// TestUncancelledCtxIsFree: a background (never-cancellable) context
// must not change behaviour — the run completes normally.
func TestUncancelledCtxIsFree(t *testing.T) {
	res, err := RunSource("bg.c", `
int main() {
	int i;
	long s = 0;
	parallel for (i = 0; i < 8; i++) { s = s + 1; }
	print_long(7);
	print_char('\n');
	return 0;
}
`, RunOptions{Threads: 2, Ctx: context.Background()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != "7\n" {
		t.Fatalf("output %q, want %q", res.Output, "7\n")
	}
}
