package gdsx

// Focused tests for the harder promotion shapes of Figures 4–6 and
// Table 3: promoted function returns, fat-temporary materialization at
// call sites, address-taken spans, struct-field promotion, calloc
// spans, and conditional span sources.

import (
	"strings"
	"testing"

	"gdsx/internal/expand"
)

// A function returning one of two differently sized buffers: its return
// slot must be promoted, and `return (int*)malloc(..)` materializes a
// fat temporary (Table 3 malloc rule inside the callee).
func TestPromotedReturnAndFatTemp(t *testing.T) {
	src := `
int SZ;
int *mkbuf(int c) {
    if (c > 0) {
        return (int*)malloc(SZ * 4);
    }
    return (int*)malloc(SZ * 8);
}
int main() {
    SZ = 16;
    int *buf = mkbuf(1);
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int k;
        for (k = 0; k < 16; k++) {
            buf[k] = it + k;
        }
        int s = 0;
        for (k = 0; k < 16; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 8; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "pret.c", src, TransformOptions{})
	rep := tr.Reports[0]
	joined := strings.Join(rep.Promoted, ",")
	if !strings.Contains(joined, "mkbuf()") {
		t.Fatalf("return slot not promoted: %v", rep.Promoted)
	}
	if !strings.Contains(tr.Source, "__fat_tmp") {
		t.Fatalf("no fat temporary for the promoted return:\n%s", tr.Source)
	}
	// The call result is assigned as a whole fat value.
	if !strings.Contains(tr.Source, "buf = mkbuf(1)") {
		t.Fatalf("whole-fat copy from promoted call missing:\n%s", tr.Source)
	}
}

// A non-bare argument (buf + offset) passed to a promoted parameter
// must be materialized into a fat temporary at the call site.
func TestPromotedArgFatTemp(t *testing.T) {
	src := `
int dyn() { return 24; }
int fill(int *win, int it) {
    int k;
    for (k = 0; k < 8; k++) {
        win[k] = it + k;
    }
    int s = 0;
    for (k = 0; k < 8; k++) {
        s += win[k];
    }
    return s;
}
int main() {
    int n = dyn();
    int *buf = (int*)malloc(n * 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        out[it] = fill(buf + 4, it);
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "parg.c", src, TransformOptions{})
	if !strings.Contains(tr.Source, "__fat_tmp") {
		t.Fatalf("no fat temporary for the offset argument:\n%s", tr.Source)
	}
	// Table 3 pointer-arithmetic rule: the temp's span is the base's.
	if !strings.Contains(tr.Source, ".span = buf.span") {
		t.Fatalf("span not propagated through pointer arithmetic:\n%s", tr.Source)
	}
}

// Address-taken spans (Table 3 "address taken" rules): p = &x and
// p = &s.f record sizeof(x) and sizeof(s) respectively.
func TestAddressTakenSpans(t *testing.T) {
	src := `
int dyn() { return 12; }
struct blob {
    int head;
    int body[15];
};
int consume(int *p, int n, int it) {
    int k;
    for (k = 0; k < n; k++) {
        p[k] = it + k;
    }
    int s = 0;
    for (k = 0; k < n; k++) {
        s += p[k];
    }
    return s;
}
int main() {
    struct blob b;
    int n = dyn();
    int *heapbuf = (int*)malloc(n * 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int s = consume(&b.head, 16, it);
        s += consume(heapbuf, n, it);
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(heapbuf);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "addrspan.c", src, TransformOptions{})
	// &b.head must carry the whole struct's size (64 bytes), per the
	// paper's "Address taken 2" rule.
	if !strings.Contains(tr.Source, ".span = 64") {
		t.Fatalf("whole-struct span for &s.f missing:\n%s", tr.Source)
	}
}

// A pointer stored in a struct field, reaching a runtime-sized buffer:
// the field itself is promoted (Figure 5's struct rule), giving
// s.f.pointer / s.f.span shapes.
func TestStructFieldPromotion(t *testing.T) {
	src := `
int dyn() { return 20; }
struct ctx {
    int id;
    int *data;
};
int main() {
    struct ctx c;
    int n = dyn();
    c.id = 1;
    c.data = (int*)malloc(n * 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 20; k++) {
            c.data[k] = it * k;
        }
        int s = 0;
        for (k = 0; k < 20; k++) {
            s += c.data[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(c.data);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "field.c", src, TransformOptions{})
	rep := tr.Reports[0]
	promoted := strings.Join(rep.Promoted, ",")
	if !strings.Contains(promoted, "ctx.data") {
		t.Fatalf("field slot not promoted: %v", rep.Promoted)
	}
	if !strings.Contains(tr.Source, "c.data.span") || !strings.Contains(tr.Source, "c.data.pointer") {
		t.Fatalf("field promotion shapes missing:\n%s", tr.Source)
	}
}

// calloc expansion and span (Table 1 heap rule and Table 3 allocation
// rule for two-argument allocators).
func TestCallocSpanAndExpansion(t *testing.T) {
	src := `
int dyn() { return 10; }
int main() {
    int n = dyn();
    int *buf = (int*)calloc(n, 4);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 10; k++) {
            buf[k] = it + k;
        }
        out[it] = buf[0] + buf[9];
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "calloc.c", src, TransformOptions{})
	if !strings.Contains(tr.Source, "calloc(n * __nthreads, 4)") {
		t.Fatalf("calloc not expanded:\n%s", tr.Source)
	}
	if !strings.Contains(tr.Source, ".span = n * 4") {
		t.Fatalf("calloc span (n*4) missing:\n%s", tr.Source)
	}
}

// Conditional pointer sources: p = c ? a : b draws span requirements
// from both arms (spanSourceRoots through Cond).
func TestConditionalSpanSource(t *testing.T) {
	src := `
int dyn() { return 8; }
int main() {
    int n = dyn();
    int *a = (int*)malloc(n * 4);
    int *b = (int*)malloc(n * 8);
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        int *p = it % 2 ? a : b;
        for (k = 0; k < 8; k++) {
            p[k] = it + k;
        }
        out[it] = p[0] + p[7];
    }
    long total = 0;
    for (it = 0; it < 6; it++) { total += out[it]; }
    print_long(total);
    free(a);
    free(b);
    free(out);
    return 0;
}`
	tr := checkTransformed(t, "cond.c", src, TransformOptions{})
	rep := tr.Reports[0]
	names := strings.Join(rep.Promoted, ",")
	for _, want := range []string{"a", "b", "p"} {
		if !strings.Contains(names, want) {
			t.Fatalf("%s not promoted (got %v)\n%s", want, rep.Promoted, tr.Source)
		}
	}
}

// p++ under the unoptimized configuration emits the redundant
// p.span = p.span store of §3.4's dead-store-elimination discussion.
func TestIncDecSelfSpanUnoptimized(t *testing.T) {
	src := `
int dyn() { return 16; }
int main() {
    int n = dyn();
    int *buf = (int*)malloc(n * 4);
    int *out = (int*)malloc(4 * 4);
    int it;
    parallel for (it = 0; it < 4; it++) {
        int *p = buf;
        int k;
        for (k = 0; k < 16; k++) {
            *p = it + k;
            p++;
        }
        int s = 0;
        for (k = 0; k < 16; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 4; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}`
	prog, err := Compile("incdec.c", src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	un := expand.Unoptimized()
	tr, err := Transform(prog, TransformOptions{Expand: &un})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Source, "p.span = p.span") {
		t.Fatalf("redundant self span store missing in unoptimized mode:\n%s", tr.Source)
	}
	got, err := RunSource("incdec-u.c", tr.Source, RunOptions{Threads: 4})
	if err != nil || got.Output != native.Output {
		t.Fatalf("unoptimized run: %v, %q vs %q", err, got.Output, native.Output)
	}
}
