package gdsx

// Observability parity between the execution engines. The engines
// already cross-validate on output and counters (engine_test.go);
// these tests extend the contract to the observability layer: both
// engines must emit the same canonical event stream and the same
// deterministic metrics for the same program at the same thread count.
// Canonical form erases what legitimately differs between runs —
// timestamps, durations, emitting thread, allocation base addresses
// and checkpoint page sets (see obs.Event schemas).

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gdsx/internal/obs"
	"gdsx/internal/workloads"
)

// obsRun executes src under eng with a fully enabled (non-hot)
// observer and returns the observer.
func obsRun(t *testing.T, name, src string, eng Engine, threads int) *Observer {
	t.Helper()
	o := NewObserver(false)
	o.IterSpans = true
	_, err := RunSource(name, src, RunOptions{Threads: threads, Engine: eng, Obs: o})
	if err != nil {
		t.Fatalf("%s (engine %v, %d threads): %v", name, eng, threads, err)
	}
	return o
}

// deterministicCounters filters a metrics snapshot down to the
// counters that must match between engines: spin counts (wait ops)
// and work-stealing steal counts depend on real host scheduling,
// everything else is simulated and exact.
func deterministicCounters(s obs.Snapshot) map[string]int64 {
	out := map[string]int64{}
	for name, v := range s.Counters {
		if name == "interp.ops.wait" || name == "sched.steals" {
			continue
		}
		out[name] = v
	}
	return out
}

func TestObsEngineParity(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := Compile(w.Name+".c", w.Source(workloads.Test))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			for _, n := range []int{1, 2, 4} {
				// The expanded program is the one whose parallel runs are
				// deterministic; the native source races at n > 1 (see
				// engine_test.go).
				name := fmt.Sprintf("%s-x.c", w.Name)
				treeObs := obsRun(t, name, tr.Source, EngineTree, n)
				compObs := obsRun(t, name, tr.Source, EngineCompiled, n)

				treeEvents := treeObs.Trace.Canonical()
				compEvents := compObs.Trace.Canonical()
				if !reflect.DeepEqual(treeEvents, compEvents) {
					t.Fatalf("N=%d: canonical event streams differ\ntree (%d):\n%s\ncompiled (%d):\n%s",
						n, len(treeEvents), strings.Join(treeEvents, "\n"),
						len(compEvents), strings.Join(compEvents, "\n"))
				}
				// Single-threaded runs take the plain sequential path and
				// emit no region events; parallel runs must.
				if n > 1 && len(treeEvents) == 0 {
					t.Fatalf("N=%d: expected events from an expanded parallel run", n)
				}

				treeM := deterministicCounters(treeObs.Metrics.Snapshot())
				compM := deterministicCounters(compObs.Metrics.Snapshot())
				if !reflect.DeepEqual(treeM, compM) {
					t.Fatalf("N=%d: deterministic metrics differ\ntree: %v\ncompiled: %v",
						n, treeM, compM)
				}
			}
		})
	}
}

// TestObsGuardedParity extends event-stream parity to guarded runs
// with recovery on the multi-region adversarial program: guard
// verdicts, rollbacks and checkpoint commits must appear identically
// under both engines.
func TestObsGuardedParity(t *testing.T) {
	a := workloads.AdversarialMultiRegion()
	native, err := Compile(a.Name+".c", a.Expose(workloads.Test))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := Transform(native, TransformOptions{
		Guard:         true,
		ProfileSource: a.Profile(workloads.Test),
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	for _, n := range []int{2, 4} {
		streams := map[Engine][]string{}
		for _, eng := range []Engine{EngineTree, EngineCompiled} {
			o := NewObserver(false)
			o.IterSpans = true
			res, err := GuardedRun(native, tr, RunOptions{
				Threads: n, Engine: eng, Recover: &RecoverySpec{}, Obs: o,
			})
			if err != nil {
				t.Fatalf("guarded run (engine %v, %d threads): %v", eng, n, err)
			}
			if res.FellBack {
				t.Fatalf("engine %v: recovery must contain the violation", eng)
			}
			streams[eng] = o.Trace.Canonical()
		}
		if !reflect.DeepEqual(streams[EngineTree], streams[EngineCompiled]) {
			t.Fatalf("N=%d: guarded canonical streams differ\ntree:\n%s\ncompiled:\n%s",
				n, strings.Join(streams[EngineTree], "\n"),
				strings.Join(streams[EngineCompiled], "\n"))
		}
		joined := strings.Join(streams[EngineTree], "\n")
		for _, want := range []string{"guard-verdict", "rollback", "checkpoint-commit", "region"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("N=%d: guarded stream lacks %q events:\n%s", n, want, joined)
			}
		}
	}
}
