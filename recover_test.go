package gdsx

// End-to-end tests of region-scoped checkpoint/rollback recovery: a
// violating region must be rolled back and re-executed sequentially
// while the rest of the run keeps its parallelism, stuck regions must
// be reclaimed by the watchdog, repeat offenders must be demoted, and
// the whole-program fallback must keep caller hooks and disarm fault
// injection.

import (
	"fmt"
	"testing"
	"time"

	"gdsx/internal/interp"
	"gdsx/internal/workloads"
)

// TestRecoverMultiRegion: three chained parallel regions of which only
// the middle one violates. With recovery enabled the run must not fall
// back: region 2 alone is rolled back and re-executed sequentially,
// regions 1 and 3 commit their parallel runs, and the output is
// byte-identical to native sequential execution — at every thread
// count, on both engines.
func TestRecoverMultiRegion(t *testing.T) {
	a := workloads.AdversarialMultiRegion()
	native, tr := guardTransform(t, a)
	want := sequentialOutput(t, native)
	for _, eng := range []Engine{EngineCompiled, EngineTree} {
		for _, nt := range guardThreads {
			t.Run(fmt.Sprintf("engine=%v/threads=%d", eng, nt), func(t *testing.T) {
				var starts int // ParallelStart runs on the spawning thread only
				hooks := &interp.Hooks{ParallelStart: func(loop, nthreads int) { starts++ }}
				res, err := GuardedRun(native, tr, RunOptions{
					Threads: nt,
					Engine:  eng,
					Recover: &RecoverySpec{},
					Hooks:   hooks,
				})
				if err != nil {
					t.Fatalf("guarded run: %v", err)
				}
				if res.FellBack {
					t.Fatal("recovery must contain the violation without whole-program fallback")
				}
				if res.Result.Output != want {
					t.Fatalf("output %q, want native %q", res.Result.Output, want)
				}
				if nt < 2 {
					// Single-threaded runs take the plain sequential path:
					// no regions, no recovery machinery.
					if res.Recovered != 0 || len(res.Regions) != 0 {
						t.Fatalf("threads=1 must not engage recovery: %+v", res.Regions)
					}
					return
				}
				if res.Recovered != 1 || len(res.Violations) != 1 || res.Violation == nil {
					t.Fatalf("want exactly one recovered violation, got Recovered=%d Violations=%d",
						res.Recovered, len(res.Violations))
				}
				if starts != 3 {
					t.Fatalf("all three regions must attempt parallel execution, saw %d starts", starts)
				}
				if len(res.Regions) != 3 {
					t.Fatalf("want 3 region records, got %+v", res.Regions)
				}
				for i, r := range res.Regions {
					if i == 1 { // the middle region (records sort by loop ID)
						if r.Rollbacks != 1 || r.Violations != 1 || r.SeqRuns != 1 || r.ParallelRuns != 0 {
							t.Fatalf("region 2 must roll back once and re-run sequentially: %+v", r)
						}
						if r.RollbackPages == 0 || r.RollbackBytes == 0 {
							t.Fatalf("rollback restored no pages: %+v", r)
						}
					} else if r.Rollbacks != 0 || r.ParallelRuns != 1 || r.SeqRuns != 0 {
						t.Fatalf("region %d must stay parallel: %+v", i+1, r)
					}
				}
			})
		}
	}
}

// TestRecoverStuckRegionWatchdog: the stuck workload's exposing input
// spins every worker but thread 0 forever — no safe point is ever
// reached. The region watchdog must cancel the region, roll it back,
// and complete it sequentially with native output, on both engines.
func TestRecoverStuckRegionWatchdog(t *testing.T) {
	a := workloads.AdversarialStuck()
	native, tr := guardTransform(t, a)
	want := sequentialOutput(t, native)
	for _, eng := range []Engine{EngineCompiled, EngineTree} {
		t.Run(fmt.Sprintf("engine=%v", eng), func(t *testing.T) {
			res, err := GuardedRun(native, tr, RunOptions{
				Threads:       4,
				Engine:        eng,
				Recover:       &RecoverySpec{},
				RegionTimeout: 150 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("guarded run: %v", err)
			}
			if res.FellBack {
				t.Fatal("watchdog recovery must not fall back to a whole-program re-run")
			}
			if res.Result.Output != want {
				t.Fatalf("output %q, want native %q", res.Result.Output, want)
			}
			if res.Recovered != 1 {
				t.Fatalf("want one recovered region, got %d", res.Recovered)
			}
			found := false
			for _, r := range res.Regions {
				if r.Timeouts == 1 && r.Rollbacks == 1 && r.SeqRuns == 1 {
					found = true
					if r.LastFailure == "" {
						t.Fatalf("timeout rollback lacks a failure record: %+v", r)
					}
				}
			}
			if !found {
				t.Fatalf("no region recorded a watchdog timeout: %+v", res.Regions)
			}
		})
	}
}

// demotionSource wraps a violating stencil kernel in an outer
// sequential loop, so the same parallel region executes R times per
// run and the recovery controller's strike/demotion/cooldown policy
// becomes observable.
func demotionSource(stride int) string {
	return fmt.Sprintf(`
int N = 96;
int R = 8;
int STRIDE = %d;

long tmp[8];

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        tmp[i %% 8] = (long)i * 2654435761 + 17;
        out[i] = tmp[(i + STRIDE) %% 8] %% 65536;
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    long s = 0;
    int r;
    int i;
    for (r = 0; r < R; r++) {
        kernel(out);
        for (i = 0; i < N; i++) {
            s = s * 31 + out[i];
        }
    }
    print_str("demotion ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`, stride)
}

func demotionTransform(t *testing.T) (*Program, *TransformResult) {
	t.Helper()
	native, err := Compile("demotion.c", demotionSource(1))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(native, TransformOptions{Guard: true, ProfileSource: demotionSource(0)})
	if err != nil {
		t.Fatal(err)
	}
	return native, tr
}

// TestRecoverDemotion: a region violating on every parallel attempt
// accumulates strikes and is demoted to sequential-only execution
// after MaxStrikes, stopping the rollback churn for the remaining
// outer iterations.
func TestRecoverDemotion(t *testing.T) {
	native, tr := demotionTransform(t)
	want := sequentialOutput(t, native)
	res, err := GuardedRun(native, tr, RunOptions{
		Threads: 4,
		Recover: &RecoverySpec{MaxStrikes: 2},
	})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res.FellBack || res.Result.Output != want {
		t.Fatalf("fellback=%v output %q, want native %q", res.FellBack, res.Result.Output, want)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("want 1 region record, got %+v", res.Regions)
	}
	r := res.Regions[0]
	// 8 outer iterations: 2 rolled-back attempts (strikes), then 6
	// demoted sequential runs; every execution after demotion skips the
	// snapshot, so no further rollback cost accrues.
	if r.Rollbacks != 2 || r.Violations != 2 || !r.Demoted || r.ParallelRuns != 0 {
		t.Fatalf("unexpected demotion stats: %+v", r)
	}
	if r.SeqRuns != 8 {
		t.Fatalf("SeqRuns = %d, want 8 (2 recoveries + 6 demoted)", r.SeqRuns)
	}
	if res.Recovered != 2 || len(res.Violations) != 2 {
		t.Fatalf("want 2 recovered violations, got Recovered=%d Violations=%d",
			res.Recovered, len(res.Violations))
	}
}

// TestRecoverCooldownRepromotion: with a cooldown, a demoted region is
// periodically re-promoted for another parallel attempt (with one
// remaining strike), so a region whose violating phase ends could
// regain its parallelism. Here the region always violates, so every
// re-promotion costs exactly one more rollback before demoting again.
func TestRecoverCooldownRepromotion(t *testing.T) {
	native, tr := demotionTransform(t)
	want := sequentialOutput(t, native)
	res, err := GuardedRun(native, tr, RunOptions{
		Threads: 4,
		Recover: &RecoverySpec{MaxStrikes: 2, Cooldown: 2},
	})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res.FellBack || res.Result.Output != want {
		t.Fatalf("fellback=%v output %q, want native %q", res.FellBack, res.Result.Output, want)
	}
	r := res.Regions[0]
	// Runs 1,2: rollback+demote. Runs 3,4: cooldown. Run 5: re-promoted
	// rollback, demote. Runs 6,7: cooldown. Run 8: re-promoted rollback.
	if r.Repromotions != 2 || r.Rollbacks != 4 || r.SeqRuns != 8 {
		t.Fatalf("unexpected cooldown stats: %+v", r)
	}
}

// TestGuardedRunKeepsUserHooks: caller-supplied hooks now compose with
// the monitor's (monitor first). The user's hooks must observe both
// the parallel attempt and — on the whole-program fallback — the
// sequential re-execution.
func TestGuardedRunKeepsUserHooks(t *testing.T) {
	a := workloads.AdversarialStencil()
	native, tr := guardTransform(t, a)

	// ParallelStart fires on the spawning thread, so a plain counter is
	// safe even while workers run; it proves the user saw the attempt.
	var regionStarts int
	res, err := GuardedRun(native, tr, RunOptions{Threads: 2, Hooks: &interp.Hooks{
		ParallelStart: func(loop, nthreads int) { regionStarts++ },
	}})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if !res.FellBack {
		t.Fatal("expected the stencil to fall back")
	}
	if regionStarts == 0 {
		t.Fatal("user hooks did not observe the parallel attempt")
	}

	// Load/Store hooks fire on every sited access; a single-threaded
	// guarded run keeps them race-free and must leave them installed
	// alongside the monitor's.
	var loads, stores int64
	res2, err := GuardedRun(native, tr, RunOptions{Threads: 1, Hooks: &interp.Hooks{
		Load:  func(site int, addr, size int64) { loads++ },
		Store: func(site int, addr, size int64) { stores++ },
	}})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res2.FellBack {
		t.Fatal("single-threaded guarded run must not fall back")
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("user memory hooks silent: loads=%d stores=%d", loads, stores)
	}
}

// failAllocSource: a violating kernel followed by many post-loop
// allocations, so a fault-injection countdown can be chosen that the
// parallel attempt never reaches but a whole-program sequential
// fallback would — the skew that used to break the fallback before
// GuardedRun disarmed the injection.
func failAllocSource(stride int) string {
	return fmt.Sprintf(`
int N = 96;
int STRIDE = %d;

long tmp[8];

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        tmp[i %% 8] = (long)i * 40503 + 3;
        out[i] = tmp[(i + STRIDE) %% 8] %% 65536;
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    kernel(out);
    long s = 0;
    int j;
    for (j = 0; j < 200; j++) {
        long *p = (long*)malloc(64);
        p[0] = (long)j + 1;
        s = s + p[0];
        free(p);
    }
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("failalloc ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`, stride)
}

// TestGuardedFallbackDisarmsFailAlloc: a FailAlloc countdown elapsing
// against the parallel attempt's allocation sequence must not be
// replayed against the sequential fallback's — the fallback completes
// even though the same countdown would kill a fresh sequential run.
func TestGuardedFallbackDisarmsFailAlloc(t *testing.T) {
	native, err := Compile("failalloc.c", failAllocSource(1))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(native, TransformOptions{Guard: true, ProfileSource: failAllocSource(0)})
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialOutput(t, native)

	// Measure the expanded program's allocation count at the same thread
	// count; the guarded attempt aborts at the region's safe point, so
	// its allocations are this total minus the 200 post-loop ones.
	exp, err := RunSource("failalloc-exp.c", tr.Source, RunOptions{Threads: 4})
	if err != nil {
		t.Fatalf("expanded run: %v", err)
	}
	attemptAllocs := exp.MemStats.Allocs - 200
	n := attemptAllocs + 100

	// The countdown bites within a plain sequential run of the native
	// program — which is exactly what the fallback executes, so the old
	// pass-through behavior would have failed it.
	if _, err := native.Run(RunOptions{ForceSequential: true, FailAlloc: n}); err == nil {
		t.Fatalf("countdown %d too large to fire in a sequential run; test is vacuous", n)
	}

	res, err := GuardedRun(native, tr, RunOptions{Threads: 4, FailAlloc: n})
	if err != nil {
		t.Fatalf("guarded run with FailAlloc=%d: %v", n, err)
	}
	if !res.FellBack || res.Violation == nil {
		t.Fatal("expected a violation-driven fallback")
	}
	if res.Result.Output != want {
		t.Fatalf("fallback output %q, want native %q", res.Result.Output, want)
	}
}
