#!/usr/bin/env bash
# Serve smoke: boots a real gdsxd process and checks the service
# contract end to end — a well-formed POST runs to completion, the
# observability surfaces work against real sockets (/metrics renders
# parseable Prometheus exposition, an X-Request-ID is followable to
# /debug/traces/{id}), a burst beyond capacity sheds with structured
# 429s, and SIGTERM drains in-flight work and exits 0. CI runs this
# after the unit suites; it needs only curl and a free port.
set -euo pipefail

ADDR=127.0.0.1:${GDSXD_PORT:-8745}
BASE=http://$ADDR
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"; kill "$GDSXD_PID" 2>/dev/null || true' EXIT

# Small capacity so the burst below actually overflows the queue.
go build -o "$TMP/gdsxd" ./cmd/gdsxd
"$TMP/gdsxd" -addr "$ADDR" -max-concurrent 2 -queue 2 -rps -1 &
GDSXD_PID=$!

for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null
curl -fsS "$BASE/readyz" >/dev/null
echo "serve_smoke: gdsxd up on $ADDR (pid $GDSXD_PID)"

# MiniC kernels. quick finishes in tens of milliseconds. The slow ones
# take seconds on their FIRST request — the transform pipeline's
# dependence-profiling run executes the program — which is exactly what
# the burst and drain steps need: a never-before-seen slow source holds
# its request in flight for the whole single-flight build. The two slow
# kernels differ only in trip count so they occupy distinct cache keys.
QUICK_SRC='int main() { int i; long s = 0; long *a = (long*)malloc(256 * 8); parallel for (i = 0; i < 256; i++) { a[i] = (long)i * i; } for (i = 0; i < 256; i++) { s = s + a[i]; } print_long(s); return 0; }'
SLOW_SRC='int main() { int i; long *a = (long*)malloc(8 * 8); parallel for (i = 0; i < 8; i++) { long acc = 0; long j; for (j = 0; j < 150000; j++) { acc = acc + j; } a[i] = acc; } print_long(a[0]); return 0; }'
SLOW_SRC2='int main() { int i; long *a = (long*)malloc(8 * 8); parallel for (i = 0; i < 8; i++) { long acc = 0; long j; for (j = 0; j < 155000; j++) { acc = acc + j; } a[i] = acc; } print_long(a[0]); return 0; }'

post() { # post <src-var> <out-file> [extra json fields]
    curl -s -o "$2" -w '%{http_code}' -X POST "$BASE/run" \
        -H 'Content-Type: application/json' \
        -d "{\"source\": $(printf '%s' "$1" | sed 's/"/\\"/g; s/^/"/; s/$/"/')${3:+, $3}}"
}

# 1. A well-formed request returns 200 with output.
code=$(post "$QUICK_SRC" "$TMP/ok.json")
if [ "$code" != 200 ]; then
    echo "serve_smoke: FAIL: want 200, got $code: $(cat "$TMP/ok.json")" >&2
    exit 1
fi
grep -q '"output"' "$TMP/ok.json"
grep -q 5559680 "$TMP/ok.json" # sum of i*i for i in [0,256) = 255*256*511/6
echo "serve_smoke: single request OK"

# 2. /metrics renders valid Prometheus text exposition: every
# non-comment line is `name{labels} value`, and the families the
# dashboards rely on are present with the traffic counted so far.
curl -fsS "$BASE/metrics" >"$TMP/metrics"
bad=$(grep -vE '^(#|$)' "$TMP/metrics" \
    | grep -cvE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$' || true)
if [ "$bad" != 0 ]; then
    echo "serve_smoke: FAIL: $bad malformed exposition lines in /metrics:" >&2
    grep -vE '^(#|$)' "$TMP/metrics" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$' >&2 || true
    exit 1
fi
for fam in gdsx_serve_requests_total gdsx_serve_ok_total gdsx_serve_latency_us_bucket \
    gdsx_serve_shed_level gdsx_serve_cache_misses_total gdsx_serve_tenant_requests_total; do
    if ! grep -q "^$fam" "$TMP/metrics"; then
        echo "serve_smoke: FAIL: /metrics missing family $fam" >&2
        exit 1
    fi
done
grep -q '^gdsx_serve_requests_total [1-9]' "$TMP/metrics"
echo "serve_smoke: /metrics exposition valid ($(grep -cvE '^(#|$)' "$TMP/metrics") series)"

# 3. A request sent with an X-Request-ID is traced: the ID comes back
# on the response header and its Chrome trace is retrievable from
# /debug/traces/{id} with the request's execute span in it.
REQ_ID=smoke-trace-1
code=$(curl -s -o "$TMP/traced.json" -w '%{http_code}' -X POST "$BASE/run" \
    -H 'Content-Type: application/json' -H "X-Request-ID: $REQ_ID" \
    -d "{\"source\": $(printf '%s' "$QUICK_SRC" | sed 's/"/\\"/g; s/^/"/; s/$/"/')}")
if [ "$code" != 200 ]; then
    echo "serve_smoke: FAIL: traced request: status $code: $(cat "$TMP/traced.json")" >&2
    exit 1
fi
hdr=$(curl -s -o /dev/null -D - -X POST "$BASE/run" -H 'Content-Type: application/json' \
    -H "X-Request-ID: $REQ_ID-hdr" \
    -d "{\"source\": $(printf '%s' "$QUICK_SRC" | sed 's/"/\\"/g; s/^/"/; s/$/"/')}" \
    | tr -d '\r' | grep -i '^x-request-id:' | awk '{print $2}')
if [ "$hdr" != "$REQ_ID-hdr" ]; then
    echo "serve_smoke: FAIL: response X-Request-ID is '$hdr', want '$REQ_ID-hdr'" >&2
    exit 1
fi
# Retention settles in a deferred step after the response; poll briefly.
for _ in $(seq 1 20); do
    curl -fsS "$BASE/debug/traces/$REQ_ID" >"$TMP/trace.json" 2>/dev/null && break
    sleep 0.1
done
grep -q '"traceEvents"' "$TMP/trace.json"
grep -q '"execute"' "$TMP/trace.json"
grep -q "\"$REQ_ID\"" "$TMP/trace.json"
curl -fsS "$BASE/debug/traces" | grep -q "\"$REQ_ID\""
echo "serve_smoke: X-Request-ID followable to /debug/traces/$REQ_ID"

# 4. A burst beyond capacity (2 running + 2 queued) sheds the excess
# with structured 429 queue_full responses; nothing crashes. Waits on
# the curl pids explicitly — a bare wait would block on gdsxd forever.
BURST_PIDS=()
for i in $(seq 1 16); do
    post "$SLOW_SRC" "$TMP/burst.$i" >"$TMP/burst.$i.code" &
    BURST_PIDS+=("$!")
done
wait "${BURST_PIDS[@]}"
shed=0 ok=0
for i in $(seq 1 16); do
    case $(cat "$TMP/burst.$i.code") in
    200) ok=$((ok + 1)) ;;
    429)
        shed=$((shed + 1))
        grep -q queue_full "$TMP/burst.$i"
        ;;
    *)
        echo "serve_smoke: FAIL: burst request $i: status $(cat "$TMP/burst.$i.code"): $(cat "$TMP/burst.$i")" >&2
        exit 1
        ;;
    esac
done
if [ "$ok" -eq 0 ] || [ "$shed" -eq 0 ]; then
    echo "serve_smoke: FAIL: burst of 16 gave ok=$ok shed=$shed; want both nonzero" >&2
    exit 1
fi
echo "serve_smoke: burst of 16 -> $ok served, $shed shed as 429 queue_full"

# 5. SIGTERM drains: an in-flight request completes, new work is
# refused, and the process exits 0.
post "$SLOW_SRC2" "$TMP/drain.json" >"$TMP/drain.code" &
CURL_PID=$!
sleep 0.5
kill -TERM "$GDSXD_PID"
wait "$CURL_PID"
if [ "$(cat "$TMP/drain.code")" != 200 ]; then
    echo "serve_smoke: FAIL: in-flight request during drain: status $(cat "$TMP/drain.code"): $(cat "$TMP/drain.json")" >&2
    exit 1
fi
if wait "$GDSXD_PID"; then
    echo "serve_smoke: SIGTERM drain completed, exit 0"
else
    echo "serve_smoke: FAIL: gdsxd exited nonzero after SIGTERM" >&2
    exit 1
fi
trap 'rm -rf "$TMP"' EXIT
echo "serve_smoke: PASS"
