package gdsx

import (
	"strings"
	"testing"

	"gdsx/internal/expand"
)

// checkTransformed verifies that a program produces identical output
// natively, transformed-sequentially, and transformed-parallel at
// several thread counts.
func checkTransformed(t *testing.T, file, src string, topts TransformOptions) *TransformResult {
	t.Helper()
	prog, err := Compile(file, src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	tr, err := Transform(prog, topts)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		got, err := RunSource(file+"-x", tr.Source, RunOptions{Threads: n})
		if err != nil {
			t.Fatalf("transformed run N=%d: %v\n--- source ---\n%s", n, err, tr.Source)
		}
		if got.Output != native.Output {
			t.Fatalf("N=%d: output mismatch\nnative:      %q\ntransformed: %q\n--- source ---\n%s",
				n, native.Output, got.Output, tr.Source)
		}
		if got.Exit != native.Exit {
			t.Fatalf("N=%d: exit %d != native %d", n, got.Exit, native.Exit)
		}
	}
	return tr
}

// zptrSrc is the paper's Figure 1 pattern: a heap buffer allocated
// before the loop, reinitialized and consumed in every iteration.
const zptrSrc = `
int main() {
    int m = 64;
    int *zptr = (int*)malloc(m * 4);
    int *out = (int*)malloc(40 * 4);
    int iter;
    parallel doacross for (iter = 0; iter < 40; iter++) {
        int k;
        for (k = 0; k < m; k++) {
            zptr[k] = iter * k + 1;
        }
        int b = 0;
        for (k = 0; k < m; k++) {
            b += zptr[k];
        }
        out[iter] = b;
    }
    long total = 0;
    for (iter = 0; iter < 40; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(zptr);
    free(out);
    return 0;
}
`

func TestTransformZptr(t *testing.T) {
	tr := checkTransformed(t, "zptr.c", zptrSrc, TransformOptions{})
	rep := tr.Reports[0]
	if len(rep.Expanded) == 0 {
		t.Fatalf("nothing expanded: %+v", rep)
	}
	if !strings.Contains(tr.Source, "__nthreads") {
		t.Fatalf("transformed source has no expansion:\n%s", tr.Source)
	}
	if !strings.Contains(tr.Source, "__tid") {
		t.Fatalf("transformed source has no redirection:\n%s", tr.Source)
	}
}

func TestTransformZptrUnoptimized(t *testing.T) {
	un := expand.Unoptimized()
	tr := checkTransformed(t, "zptr.c", zptrSrc, TransformOptions{Expand: &un})
	rep := tr.Reports[0]
	// Unoptimized mode must expand at least as much and keep span
	// stores that the optimizer would elide.
	if len(rep.Expanded) == 0 {
		t.Fatalf("nothing expanded: %+v", rep)
	}
	if rep.SpanStores == 0 {
		t.Fatalf("unoptimized run should emit span stores, got %+v", rep)
	}
}

// mxSrc is the paper's Figure 3 pattern (456.hmmer): a pointer whose
// allocation site — and therefore span — is unknown at compile time.
const mxSrc = `
int work(int *mx, int m, int iter) {
    int k;
    for (k = 0; k < m; k++) {
        mx[k] = iter + k;
    }
    int s = 0;
    for (k = 0; k < m; k++) {
        s += mx[k];
    }
    return s;
}

int main() {
    int m1 = 32;
    int m2 = 48;
    int *mx;
    int which = 1;
    if (which) {
        mx = (int*)malloc(m1 * 4);
    } else {
        mx = (int*)malloc(m2 * 4);
    }
    int *out = (int*)malloc(24 * 4);
    int iter;
    parallel for (iter = 0; iter < 24; iter++) {
        out[iter] = work(mx, m1, iter);
    }
    long total = 0;
    for (iter = 0; iter < 24; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(mx);
    free(out);
    return 0;
}
`

func TestTransformAmbiguousSpan(t *testing.T) {
	tr := checkTransformed(t, "mx.c", mxSrc, TransformOptions{})
	rep := tr.Reports[0]
	// The two allocation sites have different sizes, so the pointer
	// must be promoted and spans tracked at run time.
	if len(rep.Promoted) == 0 {
		t.Fatalf("expected pointer promotion, got %+v\n--- source ---\n%s", rep, tr.Source)
	}
	if !strings.Contains(tr.Source, ".span") {
		t.Fatalf("no span fields in transformed source:\n%s", tr.Source)
	}
}

// localScalarSrc exercises Table 1's local-scalar and local-array rules:
// scratch locals declared outside the loop.
const localScalarSrc = `
int main() {
    int scratch[16];
    int best;
    int *out = (int*)malloc(20 * 4);
    int iter;
    parallel for (iter = 0; iter < 20; iter++) {
        int k;
        for (k = 0; k < 16; k++) {
            scratch[k] = iter * k;
        }
        best = 0;
        for (k = 0; k < 16; k++) {
            if (scratch[k] > best) {
                best = scratch[k];
            }
        }
        out[iter] = best;
    }
    long total = 0;
    for (iter = 0; iter < 20; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(out);
    return 0;
}
`

func TestTransformLocalScalarAndArray(t *testing.T) {
	tr := checkTransformed(t, "locals.c", localScalarSrc, TransformOptions{})
	rep := tr.Reports[0]
	if len(rep.Expanded) < 2 {
		t.Fatalf("expected scratch and best expanded, got %+v\n%s", rep, tr.Source)
	}
	if !strings.Contains(tr.Source, "[__nthreads]") {
		t.Fatalf("locals not expanded with VLA:\n%s", tr.Source)
	}
}

// globalSrc exercises Table 1's global rules (conversion to heap).
const globalSrc = `
int gbuf[32];
int gbest;
int main() {
    int *out = (int*)malloc(12 * 4);
    int iter;
    parallel for (iter = 0; iter < 12; iter++) {
        int k;
        for (k = 0; k < 32; k++) {
            gbuf[k] = iter + k * 3;
        }
        gbest = 0;
        for (k = 0; k < 32; k++) {
            gbest += gbuf[k];
        }
        out[iter] = gbest;
    }
    long total = 0;
    for (iter = 0; iter < 12; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(out);
    return 0;
}
`

func TestTransformGlobals(t *testing.T) {
	tr := checkTransformed(t, "globals.c", globalSrc, TransformOptions{})
	if !strings.Contains(tr.Source, "malloc") {
		t.Fatalf("globals not heap-converted:\n%s", tr.Source)
	}
}

// doacrossSrc has a residual carried dependence (ordered accumulation)
// plus privatizable scratch: the ordered section must be placed and the
// output must stay in iteration order.
const doacrossSrc = `
int main() {
    int m = 32;
    int *buf = (int*)malloc(m * 4);
    long checksum = 0;
    int iter;
    parallel doacross for (iter = 0; iter < 30; iter++) {
        int k;
        for (k = 0; k < m; k++) {
            buf[k] = iter + k;
        }
        int b = 0;
        for (k = 0; k < m; k++) {
            b += buf[k];
        }
        checksum = checksum * 31 + b;
    }
    print_long(checksum);
    free(buf);
    return 0;
}
`

func TestTransformDoacrossOrdered(t *testing.T) {
	tr := checkTransformed(t, "doacross.c", doacrossSrc, TransformOptions{})
	rep := tr.Reports[0]
	if len(rep.SyncPlaced) == 0 {
		t.Fatalf("expected ordered section, got %+v\n%s", rep, tr.Source)
	}
	if !strings.Contains(tr.Source, "__sync_wait") {
		t.Fatalf("no sync markers:\n%s", tr.Source)
	}
}

// freshSrc allocates per iteration: nothing needs expansion, and the
// transformed program must still be correct.
const freshSrc = `
struct node { int v; struct node *next; };
int main() {
    int *out = (int*)malloc(16 * 4);
    int iter;
    parallel for (iter = 0; iter < 16; iter++) {
        struct node *head = 0;
        int k;
        for (k = 0; k < 8; k++) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = iter + k;
            n->next = head;
            head = n;
        }
        int s = 0;
        while (head != 0) {
            s += head->v;
            struct node *dead = head;
            head = head->next;
            free(dead);
        }
        out[iter] = s;
    }
    long total = 0;
    for (iter = 0; iter < 16; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(out);
    return 0;
}
`

func TestTransformIterationFresh(t *testing.T) {
	checkTransformed(t, "fresh.c", freshSrc, TransformOptions{})
}

// recastSrc is the bzip2 zptr recast pattern: the same buffer accessed
// as int* and short*.
const recastSrc = `
int main() {
    int m = 32;
    int *zptr = (int*)malloc(m * 4);
    int *out = (int*)malloc(10 * 4);
    int iter;
    parallel for (iter = 0; iter < 10; iter++) {
        int k;
        for (k = 0; k < m; k++) {
            zptr[k] = iter * 65536 + k;
        }
        short *sp = (short*)zptr;
        int s = 0;
        for (k = 0; k < m * 2; k++) {
            s += sp[k];
        }
        out[iter] = s;
    }
    long total = 0;
    for (iter = 0; iter < 10; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(zptr);
    free(out);
    return 0;
}
`

func TestTransformRecastBonded(t *testing.T) {
	checkTransformed(t, "recast.c", recastSrc, TransformOptions{})
}

func TestInterleavedRejectsRecast(t *testing.T) {
	prog, err := Compile("recast.c", recastSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opts := expand.Optimized()
	opts.Layout = expand.Interleaved
	_, err = Transform(prog, TransformOptions{Expand: &opts})
	if err == nil || !strings.Contains(err.Error(), "recast") {
		t.Fatalf("interleaved layout must reject the recast buffer, got %v", err)
	}
}

// Ordered DOACROSS execution must be deterministic under real parallel
// execution: run the transformed ordered program many times at 8
// threads and require identical output every time (a failed ordered
// section would surface as a reordering of the digest chain).
func TestDoacrossOrderingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is not short")
	}
	prog, err := Compile("doacross.c", doacrossSrc)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(prog, TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xprog, err := Compile("doacross-x.c", tr.Source)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := xprog.Run(RunOptions{Threads: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Output != native.Output {
			t.Fatalf("run %d: ordered output diverged: %q vs %q", i, res.Output, native.Output)
		}
	}
}
