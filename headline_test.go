package gdsx

// The paper's headline claim, asserted end-to-end on one benchmark:
// general data structure expansion removes the spurious dependences of
// a dynamic data structure at a few percent sequential overhead,
// yielding real parallel speedup, while runtime privatization's
// per-access monitoring costs more than its parallelism recovers
// (paper Figures 9–13 in one test).
//
// The full workflow of the paper's Figure 7 runs here: dependence
// profiling, Definition 5 classification, expansion, parallel
// execution, and the SpiceC-style baseline.

import (
	"testing"

	"gdsx/internal/schedule"
	"gdsx/internal/workloads"
)

func TestHeadlineExpansionBeatsRuntimePrivatization(t *testing.T) {
	if testing.Short() {
		t.Skip("headline integration test is not short")
	}
	w := workloads.ByName("256.bzip2") // the zptr benchmark of §3.1
	src := w.Source(workloads.ProfileScale)

	prog, err := Compile("bzip2.c", src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.Run(RunOptions{Threads: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}

	// Expansion: transform, verify output, measure.
	tr, err := Transform(prog, TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := RunSource("bzip2-x.c", tr.Source, RunOptions{Threads: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if expanded.Output != native.Output {
		t.Fatal("expansion changed the program output")
	}

	// Runtime privatization baseline on the original program.
	sites, err := prog.PrivateSites(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rprog, _ := Compile("bzip2.c", src)
	rt, _, err := rprog.RunRuntimePrivatized(sites, RunOptions{Threads: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Output != native.Output {
		t.Fatal("runtime privatization changed the program output")
	}

	nativeOps := float64(native.Counters[0])
	expansionOverhead := float64(expanded.Counters[0]) / nativeOps
	rtOverhead := float64(rt.Counters[0]) / nativeOps

	// Figure 9b: expansion costs a few percent.
	if expansionOverhead > 1.10 {
		t.Errorf("expansion overhead %.2fx exceeds the paper's few-percent band", expansionOverhead)
	}
	// Figure 10: runtime privatization costs much more.
	if rtOverhead < 2*expansionOverhead {
		t.Errorf("runtime privatization (%.2fx) should cost far more than expansion (%.2fx)",
			rtOverhead, expansionOverhead)
	}

	// Figures 11 vs 13 at 8 threads: expansion yields real speedup;
	// runtime privatization recovers less than it spends.
	model := schedule.DefaultModel()
	loopTime := func(res Result, n int) float64 {
		var total int64
		for _, trc := range res.Traces {
			total += schedule.Simulate(trc, n, model).Time
		}
		return float64(total)
	}
	nativeLoop := loopTime(native, 1)
	expSpeedup := nativeLoop / loopTime(expanded, 8)
	rtSpeedup := nativeLoop / loopTime(rt, 8)
	if expSpeedup < 2.0 {
		t.Errorf("expansion loop speedup %.2fx at 8 threads is below the paper's band", expSpeedup)
	}
	if rtSpeedup > 1.0 {
		t.Errorf("runtime privatization should yield nearly no speedup, got %.2fx", rtSpeedup)
	}
	if expSpeedup <= rtSpeedup {
		t.Errorf("expansion (%.2fx) must beat runtime privatization (%.2fx)", expSpeedup, rtSpeedup)
	}
	t.Logf("overheads: expansion %.2fx, rtpriv %.2fx; 8-thread loop speedups: expansion %.2fx, rtpriv %.2fx",
		expansionOverhead, rtOverhead, expSpeedup, rtSpeedup)
}
