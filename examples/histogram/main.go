// Histogram: a classic privatization pattern. Each iteration analyzes
// one image tile by building a brightness histogram in a shared scratch
// table, then derives the tile's contrast from it. The histogram is
// rewritten by every iteration — a spurious dependence that blocks
// parallelization until the table is expanded into per-thread copies.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"
	"strings"

	"gdsx"
)

const src = `
int hist[64];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

int tileContrast(int tile) {
    int i;
    // Reset and rebuild the shared histogram for this tile.
    for (i = 0; i < 64; i++) {
        hist[i] = 0;
    }
    long s = tile * 2654435761 + 99;
    for (i = 0; i < 400; i++) {
        s = s * 6364136223846793005 + 1442695040888963407;
        int pix = (int)((s >> 40) & 63);
        hist[pix] = hist[pix] + 1;
    }
    // Contrast: spread between the darkest and brightest deciles.
    int lo = 0;
    int seen = 0;
    for (i = 0; i < 64 && seen < 40; i++) {
        seen += hist[i];
        lo = i;
    }
    int hi = 63;
    seen = 0;
    for (i = 63; i >= 0 && seen < 40; i--) {
        seen += hist[i];
        hi = i;
    }
    return hi - lo;
}

int main() {
    seed = 7;
    int *contrast = (int*)malloc(64 * 4);
    int t;
    parallel for (t = 0; t < 64; t++) {
        contrast[t] = tileContrast(t);
    }
    long out = 0;
    for (t = 0; t < 64; t++) {
        out = out * 31 + contrast[t];
    }
    print_str("contrast checksum = ");
    print_long(out);
    print_char('\n');
    free(contrast);
    return 0;
}
`

func main() {
	prog, err := gdsx.Compile("histogram.c", src)
	if err != nil {
		log.Fatal(err)
	}
	native, err := prog.Run(gdsx.RunOptions{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("native:    ", native.Output)

	tr, out, err := gdsx.TransformAndRun(prog, gdsx.TransformOptions{},
		gdsx.RunOptions{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("8 threads: ", out.Output)
	if out.Output != native.Output {
		log.Fatal("outputs differ!")
	}

	rep := tr.Reports[0]
	fmt.Printf("expanded: %v\n", rep.Expanded)
	// Show how the global histogram was converted to N adjacent copies.
	for _, line := range strings.Split(tr.Source, "\n") {
		if strings.Contains(line, "hist") && strings.Contains(line, "malloc") {
			fmt.Println("Table 1 global rule:", strings.TrimSpace(line))
		}
	}
}
