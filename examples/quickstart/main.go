// Quickstart: run the paper's Figure 1 program through the whole
// pipeline — profile the loop's data dependences, classify its accesses
// (Definition 5), expand the contentious buffer, and execute the
// transformed program with real parallel threads, checking that the
// output is unchanged.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gdsx"
)

// The paper's Figure 1 pattern (extracted from SPEC CPU2000/bzip2): the
// zptr buffer is allocated once, then reinitialized and consumed by
// every iteration of the loop. The iterations are logically
// independent, but they all write the same buffer — a spurious
// dependence only privatization can remove.
const src = `
int main() {
    int m = 64;
    int *zptr = (int*)malloc(m * 4);
    int *out = (int*)malloc(50 * 4);
    int iter;
    parallel for (iter = 0; iter < 50; iter++) {
        int k;
        for (k = 0; k < m; k++) {
            zptr[k] = iter * k + 1;
        }
        int b = 0;
        for (k = 0; k < m; k++) {
            b += zptr[k];
        }
        out[iter] = b;
    }
    long total = 0;
    for (iter = 0; iter < 50; iter++) {
        total += out[iter];
    }
    print_str("total = ");
    print_long(total);
    print_char('\n');
    free(zptr);
    free(out);
    return 0;
}
`

func main() {
	prog, err := gdsx.Compile("figure1.c", src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Native sequential run: the reference output.
	native, err := prog.Run(gdsx.RunOptions{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("native:      ", native.Output)

	// 2. Profile + classify the parallel loop.
	loopID := prog.ParallelLoops()[0]
	pr, cls, err := prog.ClassifyLoop(loopID, gdsx.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	private := 0
	for _, c := range cls.Classes {
		if c.Private {
			private++
		}
	}
	fmt.Printf("profiled %d iterations: %d access classes, %d thread-private\n",
		pr.Iterations, len(cls.Classes), private)

	// 3. Expand the data structures.
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep := tr.Reports[0]
	fmt.Printf("expanded %d structure(s): %v\n", rep.Structures, rep.Expanded)
	fmt.Println("--- transformed source ---")
	fmt.Print(tr.Source)
	fmt.Println("--------------------------")

	// 4. Run the transformed program with real parallel threads.
	for _, n := range []int{1, 2, 4, 8} {
		res, err := gdsx.RunSource("figure1-x.c", tr.Source, gdsx.RunOptions{Threads: n})
		if err != nil {
			log.Fatal(err)
		}
		match := "OK"
		if res.Output != native.Output {
			match = "MISMATCH"
		}
		fmt.Printf("%d threads:   %s(%s)\n", n, res.Output[:len(res.Output)-1]+" ", match)
	}
}
