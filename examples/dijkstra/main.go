// Dijkstra: the MiBench benchmark from the paper's introduction.
// Conceptually ten shortest-path queries can run in parallel, but the
// per-query distance arrays and the priority queue must first be
// privatized — the exact motivating example of the paper (§2). This
// example transforms the benchmark, runs it at several thread counts,
// and reports the simulated speedup of the parallel loop.
//
//	go run ./examples/dijkstra
package main

import (
	"fmt"
	"log"

	"gdsx"
	"gdsx/internal/schedule"
	"gdsx/internal/workloads"
)

func main() {
	w := workloads.ByName("dijkstra")
	src := w.Source(workloads.ProfileScale)

	prog, err := gdsx.Compile("dijkstra.c", src)
	if err != nil {
		log.Fatal(err)
	}
	native, err := prog.Run(gdsx.RunOptions{Threads: 1, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("native: ", native.Output)

	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep := tr.Reports[0]
	fmt.Printf("privatized %d structures (%v); ordered sections in loops %v\n",
		rep.Structures, rep.Expanded, rep.SyncPlaced)

	// Real parallel execution must reproduce the output.
	for _, n := range []int{2, 4, 8} {
		res, err := gdsx.RunSource("dijkstra-x.c", tr.Source, gdsx.RunOptions{Threads: n})
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != native.Output {
			log.Fatalf("%d threads: output mismatch", n)
		}
	}
	fmt.Println("parallel outputs match at 2, 4 and 8 threads")

	// Simulated speedups from one traced run.
	traced, err := gdsx.RunSource("dijkstra-x.c", tr.Source, gdsx.RunOptions{Threads: 8, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	model := schedule.DefaultModel()
	base := schedule.SequentialTime(native)
	fmt.Println("simulated whole-program speedup:")
	for _, n := range []int{1, 2, 4, 8} {
		t, _, _, err := schedule.ProgramTime(traced, n, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d threads: %.2fx\n", n, float64(base)/float64(t))
	}
}
