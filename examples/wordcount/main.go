// Wordcount: a DOACROSS pipeline with an ordered commit. Each
// iteration tokenizes one chunk of a character stream using a shared
// scratch word-length table (privatized by expansion), then appends its
// counts to a running, order-sensitive digest — the residual
// loop-carried dependence around which the transformation places an
// ordered section, exactly like the paper's 256.bzip2 output stream.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"strings"

	"gdsx"
)

const src = `
char text[4096];
int lenTab[32];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void makeText() {
    seed = 2718;
    int i;
    for (i = 0; i < 4096; i++) {
        int r = nextRand() % 8;
        if (r == 0) {
            text[i] = ' ';
        } else {
            text[i] = (char)(97 + nextRand() % 26);
        }
    }
}

int countChunk(int chunk) {
    int base = chunk * 256;
    int i;
    for (i = 0; i < 32; i++) {
        lenTab[i] = 0;
    }
    int words = 0;
    int cur = 0;
    for (i = 0; i < 256; i++) {
        if (text[base + i] == ' ') {
            if (cur > 0) {
                if (cur > 31) { cur = 31; }
                lenTab[cur] = lenTab[cur] + 1;
                words++;
                cur = 0;
            }
        } else {
            cur++;
        }
    }
    if (cur > 0) {
        words++;
    }
    int weighted = 0;
    for (i = 0; i < 32; i++) {
        weighted += lenTab[i] * i;
    }
    return words * 1000 + weighted;
}

int main() {
    makeText();
    long digest = 0;
    int chunk;
    parallel doacross for (chunk = 0; chunk < 16; chunk++) {
        int c = countChunk(chunk);
        // Ordered commit: the digest depends on chunk order.
        digest = digest * 1000003 + c;
    }
    print_str("digest = ");
    print_long(digest);
    print_char('\n');
    return 0;
}
`

func main() {
	prog, err := gdsx.Compile("wordcount.c", src)
	if err != nil {
		log.Fatal(err)
	}
	native, err := prog.Run(gdsx.RunOptions{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("native:    ", native.Output)

	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep := tr.Reports[0]
	fmt.Printf("expanded %v; ordered section placed: %v\n", rep.Expanded, len(rep.SyncPlaced) > 0)

	// The ordered section must cover only the digest update, leaving
	// countChunk to run in parallel.
	if i := strings.Index(tr.Source, "__sync_wait"); i >= 0 {
		j := strings.Index(tr.Source, "__sync_post")
		fmt.Println("--- ordered section ---")
		fmt.Println(strings.TrimSpace(tr.Source[i : j+14]))
		fmt.Println("-----------------------")
	}

	for _, n := range []int{2, 8} {
		res, err := gdsx.RunSource("wordcount-x.c", tr.Source, gdsx.RunOptions{Threads: n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d threads: %s", n, res.Output)
		if res.Output != native.Output {
			log.Fatal("ordered output diverged!")
		}
	}
	fmt.Println("order preserved at every thread count")
}
