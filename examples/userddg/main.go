// Userddg: the paper's "graph from the programmer" workflow (§2). The
// dependence graph driving the expansion does not have to come from
// the profiler: this example profiles a loop, serializes the graph to
// JSON (the form `gdsx profile -json` prints for inspection), edits
// nothing — the programmer has "verified" it — and feeds it back
// through TransformOptions.Graphs. It then shows the flip side: a
// *wrong* graph (the programmer deletes the carried dependences of the
// shared accumulator) silently produces a differently-classified
// program, which is exactly why the paper pairs profiling with
// programmer verification.
//
//	go run ./examples/userddg
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"gdsx"
	"gdsx/internal/ddg"
)

const src = `
int main() {
    int scratch[32];
    int *out = (int*)malloc(16 * 4);
    int it;
    parallel for (it = 0; it < 16; it++) {
        int k;
        for (k = 0; k < 32; k++) {
            scratch[k] = it * k;
        }
        int s = 0;
        for (k = 0; k < 32; k++) {
            s += scratch[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 16; it++) { total += out[it]; }
    print_str("total = ");
    print_long(total);
    print_char('\n');
    free(out);
    return 0;
}
`

func main() {
	prog, err := gdsx.Compile("userddg.c", src)
	if err != nil {
		log.Fatal(err)
	}
	loopID := prog.ParallelLoops()[0]

	// Step 1: profile and serialize — what `gdsx profile -json` emits.
	pr, err := prog.ProfileLoop(loopID, gdsx.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(pr.Graph, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled graph: %d sites, %d edges, %d bytes of JSON\n",
		len(pr.Graph.Sites), len(pr.Graph.Edges()), len(data))

	// Step 2: the programmer inspects the JSON (here: verifies it
	// unchanged) and the pipeline consumes it instead of re-profiling.
	var verified ddg.Graph
	if err := json.Unmarshal(data, &verified); err != nil {
		log.Fatal(err)
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
		Graphs: map[int]*ddg.Graph{loopID: &verified},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded with the verified graph: %v\n", tr.Reports[0].Expanded)

	native, err := prog.Run(gdsx.RunOptions{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	out, err := gdsx.RunSource("userddg-x.c", tr.Source, gdsx.RunOptions{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-thread output matches native: %v\n", out.Output == native.Output)

	// Step 3: what verification is for — a graph stripped of the
	// scratch buffer's carried dependences no longer justifies its
	// expansion (Definition 5 condition 3 fails), so the structure
	// stays shared.
	var tampered ddg.Graph
	if err := json.Unmarshal(data, &tampered); err != nil {
		log.Fatal(err)
	}
	clean := ddg.NewGraph(tampered.Loop)
	for s, n := range tampered.Sites {
		clean.Sites[s] = n
	}
	for s, n := range tampered.Defs {
		clean.Defs[s] = n
	}
	for s := range tampered.UpwardExposed {
		clean.UpwardExposed[s] = true
	}
	for s := range tampered.DownwardExposed {
		clean.DownwardExposed[s] = true
	}
	for _, e := range tampered.Edges() {
		if !e.Carried {
			clean.AddEdge(e.Src, e.Dst, e.Kind, e.Carried)
		}
	}
	tr2, err := gdsx.Transform(prog, gdsx.TransformOptions{
		Graphs: map[int]*ddg.Graph{loopID: clean},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with carried edges deleted, expanded structures: %d (was %d) — "+
		"wrong graphs change the program, hence programmer verification\n",
		tr2.Reports[0].Structures, tr.Reports[0].Structures)
}
