package gdsx

// FuzzCompileRun drives arbitrary source text through the full
// frontend (lexer, parser, semantic analysis) and, when it compiles,
// through the execution engines — tree-walker, unoptimized compiled,
// optimized compiled — with tight operation and memory bounds. The
// frontend must reject garbage with an error — never a panic — and the
// engines must agree on the outcome of whatever survives to execution.

import (
	"errors"
	"testing"

	"gdsx/internal/interp"
	"gdsx/internal/workloads"
)

func FuzzCompileRun(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source(workloads.Test))
	}
	for _, a := range workloads.AdversarialAll() {
		f.Add(a.Profile(workloads.Test))
		f.Add(a.Expose(workloads.Test))
	}
	for _, a := range workloads.AdaptiveAll() {
		f.Add(a.Profile(workloads.Test))
		f.Add(a.Expose(workloads.Test))
	}
	f.Add(`int main() { return 0; }`)
	f.Add(`int g; int main() { int *p = &g; *p = 3; return g; }`)
	f.Add(`int main() { parallel for (;;) {} }`)
	// Address-taken locals: the register-promotion analysis must demote
	// exactly these, so aliasing stores stay visible to later reads.
	f.Add(`int main() { int a = 1; int *p = &a; *p = 7; return a + *p; }`)
	f.Add(`int set(int *x) { *x = 9; return *x; }
int main() { int a = 2; int b = set(&a); return a * 10 + b; }`)
	f.Add(`int main() {
	int i; int a; int s = 0;
	for (i = 0; i < 4; i++) { int *p = &a; a = i; s = s + *p + (int)sizeof a; }
	return s;
}`)

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile("fuzz.c", src)
		if err != nil {
			return // rejected cleanly — the only requirement for invalid input
		}
		// Keep runs tiny: fuzz inputs that compile are usually mutations
		// of the seed workloads and can contain unbounded loops.
		opts := RunOptions{
			MaxOps:  200000,
			MemSize: 1 << 22,
			Threads: 2,
		}
		// Parallel phase: robustness only. A mutated source can carry
		// parallel annotations on loops the expansion never sanctioned,
		// so parallel outcomes are nondeterministic (racy stores, and the
		// per-worker operation budget fires on whichever worker the
		// dynamic DOACROSS schedule loads most). The requirement here is
		// containment: any failure must be a structured RuntimeError, not
		// a process panic, deadlock, or hang.
		for _, eng := range []Engine{EngineTree, EngineCompiledNoOpt, EngineCompiled} {
			o := opts
			o.Engine = eng
			if _, rerr := prog.Run(o); rerr != nil {
				var re interp.RuntimeError
				if !errors.As(rerr, &re) {
					t.Fatalf("engine %v: unstructured failure %T: %v", eng, rerr, rerr)
				}
			}
		}
		// Chaos phase: the same parallel containment requirement must
		// hold with region recovery plus injected suspicions and forced
		// rollbacks — the ladder's snapshot/rollback/re-execute machinery
		// must never turn a mutated source into a panic or a hang.
		{
			o := opts
			o.Recover = &RecoverySpec{}
			o.FaultPlan = &FaultPlan{SuspectEvery: 2, RollbackEvery: 3}
			if _, rerr := prog.Run(o); rerr != nil {
				var re interp.RuntimeError
				if !errors.As(rerr, &re) {
					t.Fatalf("chaos run: unstructured failure %T: %v", rerr, rerr)
				}
			}
		}
		// Sequential phase: full differential. Deterministic execution
		// must produce identical output, exit code, and failure from both
		// engines.
		results := map[Engine]struct {
			out  string
			exit int64
			err  error
		}{}
		for _, eng := range []Engine{EngineTree, EngineCompiledNoOpt, EngineCompiled} {
			o := opts
			o.Engine = eng
			o.ForceSequential = true
			res, rerr := prog.Run(o)
			if rerr != nil {
				var re interp.RuntimeError
				if !errors.As(rerr, &re) {
					t.Fatalf("engine %v: unstructured failure %T: %v", eng, rerr, rerr)
				}
			}
			results[eng] = struct {
				out  string
				exit int64
				err  error
			}{res.Output, res.Exit, rerr}
		}
		tr := results[EngineTree]
		for _, eng := range []Engine{EngineCompiledNoOpt, EngineCompiled} {
			cp := results[eng]
			if (tr.err == nil) != (cp.err == nil) || tr.out != cp.out || tr.exit != cp.exit {
				t.Fatalf("sequential runs diverge:\ntree: exit=%d err=%v out=%q\n%v:   exit=%d err=%v out=%q",
					tr.exit, tr.err, tr.out, eng, cp.exit, cp.err, cp.out)
			}
		}
	})
}
