package gdsx

import (
	"fmt"
	"io"

	"gdsx/internal/guard"
	"gdsx/internal/obs"
)

// Registry, Tracer and HotSites re-export the observability component
// types so callers can assemble a custom Observer.
type (
	Registry = obs.Registry
	Tracer   = obs.Tracer
	HotSites = obs.HotSites
)

// NewRegistry, NewTracer and NewHotSites re-export the component
// constructors for callers assembling a custom Observer (e.g. a
// metrics-only observer for a long-lived expvar endpoint, where an
// event tracer's buffer would only grow).
func NewRegistry() *Registry      { return obs.NewRegistry() }
func NewTracer(limit int) *Tracer { return obs.NewTracer(limit) }
func NewHotSites() *HotSites      { return obs.NewHotSites() }

// PublishRegionStats folds per-region recovery health records into the
// registry under "region.loop<ID>.*" names, one instrument per field.
// This is the bridge from Result.Regions to the unified metrics
// pipeline: anything that renders a registry (the -metrics flag, the
// expvar endpoint) renders region health with it.
func PublishRegionStats(reg *Registry, regions []RegionStats) {
	for _, r := range regions {
		p := fmt.Sprintf("region.loop%d.", r.Loop)
		reg.Counter(p + "parallel_runs").Add(int64(r.ParallelRuns))
		reg.Counter(p + "seq_runs").Add(int64(r.SeqRuns))
		reg.Counter(p + "violations").Add(int64(r.Violations))
		reg.Counter(p + "faults").Add(int64(r.Faults))
		reg.Counter(p + "timeouts").Add(int64(r.Timeouts))
		reg.Counter(p + "rollbacks").Add(int64(r.Rollbacks))
		reg.Counter(p + "rollback_pages").Add(int64(r.RollbackPages))
		reg.Counter(p + "rollback_bytes").Add(r.RollbackBytes)
		reg.Counter(p + "snapshot_pages").Add(int64(r.SnapshotPages))
		reg.Counter(p + "snapshot_bytes").Add(r.SnapshotBytes)
		reg.Counter(p + "repromotions").Add(int64(r.Repromotions))
		demoted := int64(0)
		if r.Demoted {
			demoted = 1
		}
		reg.Gauge(p + "demoted").Set(demoted)
	}
}

// PublishGuardReports folds guard violation reports into the registry:
// a total per report plus one counter per violation rule, under
// "guard.report.*" names.
func PublishGuardReports(reg *Registry, reports []*guard.Report) {
	for _, rep := range reports {
		reg.Counter("guard.report.regions").Inc()
		reg.Counter("guard.report.violations").Add(int64(rep.Total))
		for _, v := range rep.Violations {
			reg.Counter("guard.report.rule." + v.Rule).Inc()
		}
	}
}

// PublishTierStats folds per-region guard-sampling tier records into
// the registry under "adapt.loop<ID>.*" names: the current sampling
// stride as a gauge (1 = full guarding) plus counters for the tier
// transitions.
func PublishTierStats(reg *Registry, tiers []TierStats) {
	for _, t := range tiers {
		p := fmt.Sprintf("adapt.loop%d.", t.Loop)
		reg.Gauge(p + "sample_k").Set(int64(t.K))
		reg.Gauge(p + "clean_streak").Set(int64(t.CleanStreak))
		reg.Counter(p + "suspicions").Add(int64(t.Suspicions))
		reg.Counter(p + "escalations").Add(int64(t.Escalations))
		reg.Counter(p + "promotions").Add(int64(t.Promotions))
		reg.Counter(p + "tier_violations").Add(int64(t.Violations))
	}
}

// PublishAdaptiveStats folds an adaptive run's ladder state into the
// registry: per-region tiers, the per-site-pair strike tallies of the
// final attempt ("adapt.strikes.<pair>"), the re-expansion count, and
// the chosen layout/copy count.
func PublishAdaptiveStats(reg *Registry, res *AdaptiveResult) {
	if res == nil {
		return
	}
	if res.Final != nil {
		PublishTierStats(reg, res.Final.Tiers)
	}
	for pair, n := range res.Strikes {
		reg.Counter("adapt.strikes." + pair).Add(int64(n))
	}
	reg.Counter("adapt.reexpansions").Add(int64(len(res.Reexpansions)))
	for _, rx := range res.Reexpansions {
		if rx.Failed {
			reg.Counter("adapt.reexpand_failures").Inc()
		}
	}
	reg.Gauge("adapt.attempts").Set(int64(res.Attempts))
	reg.Gauge("adapt.threads").Set(int64(res.Threads))
	reg.Gauge("adapt.layout." + res.Layout).Set(1)
}

// RenderHealthReport renders a guarded run's per-region health records
// and guard violation summary as metrics text: the stats are published
// into a scratch registry and rendered through the standard
// Registry.Render formatter, so the command-line report and the
// -metrics output share one format.
func RenderHealthReport(w io.Writer, res *GuardedResult) error {
	reg := obs.NewRegistry()
	PublishRegionStats(reg, res.Regions)
	PublishGuardReports(reg, res.Violations)
	return reg.Render(w)
}

// HotSiteFrames builds the frame resolver Folded needs from a compiled
// program: site IDs map to a two-frame stack of enclosing function and
// accessed expression with its source position. For guarded runs,
// resolve against GuardedResult.Expanded — the profile's site IDs live
// in the expanded program's space.
func HotSiteFrames(p *Program) func(site int) []string {
	return func(site int) []string {
		as := p.Info.Accesses[site]
		if as == nil {
			return nil
		}
		fn := "?"
		if as.Func != nil {
			fn = as.Func.Name
		}
		return []string{fn, fmt.Sprintf("%s @ %s", as.Text, as.Pos)}
	}
}

// WriteHotSites renders the profiler's hottest buckets as a table
// (top n, all when n <= 0) with sites resolved through frames.
func WriteHotSites(w io.Writer, h *HotSites, n int, frames func(site int) []string) error {
	rep := h.Top(n)
	for _, r := range rep {
		where := fmt.Sprintf("site#%d", r.Site)
		if fs := frames(r.Site); len(fs) > 0 {
			where = fs[len(fs)-1]
			if len(fs) > 1 {
				where = fs[0] + ": " + where
			}
		}
		cp := "-"
		if r.Copy >= 0 {
			cp = fmt.Sprintf("%d", r.Copy)
		}
		if _, err := fmt.Fprintf(w, "%10d loads %10d stores %12d bytes  copy %-3s %s\n",
			r.Loads, r.Stores, r.Bytes, cp, where); err != nil {
			return err
		}
	}
	return nil
}
