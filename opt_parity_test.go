package gdsx

// Differential parity for the compiled engine's optimization pipeline.
// TestOptEngineParity is the CI gate (`go test -run Parity -race`): for
// every workload it runs the expanded program under the tree-walker,
// the unoptimized compiled engine and the optimized compiled engine,
// and requires identical program output, exit codes and instruction
// counters; a second phase checks that runtime faults — null
// dereference, operation-budget exhaustion, injected allocation
// failure — surface identically (same error text, same failure site)
// whether or not the optimizer rewrote the faulting code.

import (
	"fmt"
	"testing"

	"gdsx/internal/interp"
	"gdsx/internal/workloads"
)

var parityEngines = map[string]Engine{
	"tree":  EngineTree,
	"noopt": EngineCompiledNoOpt,
	"opt":   EngineCompiled,
}

func TestOptEngineParity(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			src := w.Source(workloads.Test)
			prog, err := Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			for _, n := range []int{1, 2, 4} {
				results := map[string]Result{}
				for ename, eng := range parityEngines {
					res, rerr := RunSource(w.Name+".c", tr.Source,
						RunOptions{Threads: n, Engine: eng})
					if rerr != nil {
						t.Fatalf("N=%d %s: %v", n, ename, rerr)
					}
					results[ename] = res
				}
				ref := results["tree"]
				for _, ename := range []string{"noopt", "opt"} {
					res := results[ename]
					label := fmt.Sprintf("N=%d %s", n, ename)
					if res.Output != ref.Output {
						t.Errorf("%s: output diverges from tree (%d vs %d bytes)",
							label, len(res.Output), len(ref.Output))
					}
					if res.Exit != ref.Exit {
						t.Errorf("%s: exit %d != %d", label, res.Exit, ref.Exit)
					}
					if res.Counters[interp.CatWork] != ref.Counters[interp.CatWork] {
						t.Errorf("%s: work counter %d != %d", label,
							res.Counters[interp.CatWork], ref.Counters[interp.CatWork])
					}
					if res.Counters[interp.CatSync] != ref.Counters[interp.CatSync] {
						t.Errorf("%s: sync counter %d != %d", label,
							res.Counters[interp.CatSync], ref.Counters[interp.CatSync])
					}
					if n == 1 && res.Counters[interp.CatWait] != ref.Counters[interp.CatWait] {
						t.Errorf("%s: wait counter %d != %d", label,
							res.Counters[interp.CatWait], ref.Counters[interp.CatWait])
					}
				}
			}
		})
	}
}

// TestOptEngineFaultParity requires the optimizer to preserve fault
// behavior exactly: the same runtime error, with the same source
// position and message, from all three engines. The cases hit the
// paths the optimizer rewrites — promoted scalars around a faulting
// access, a fused loop condition driving a budget fault, and an
// allocation failure mid-loop.
func TestOptEngineFaultParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts RunOptions
	}{
		{
			// The faulting dereference sits between reads and writes of
			// promoted locals.
			name: "null-deref",
			src: `int main() {
				int a = 3;
				int *p = (int *)0;
				a = a + 1;
				return a + *p;
			}`,
		},
		{
			// A fused compare-and-branch back-edge drives the counter into
			// the budget; the fault must fire after the identical op count.
			name: "budget",
			src: `int main() {
				int i; int s;
				s = 0;
				for (i = 0; i < 1000000; i++) { s = s + i; }
				return s;
			}`,
			opts: RunOptions{MaxOps: 5000},
		},
		{
			// The nth allocation fails while promoted scalars carry loop
			// state.
			name: "failed-alloc",
			src: `int main() {
				int i; long total;
				total = 0;
				for (i = 0; i < 10; i++) {
					int *p = (int *)malloc(64);
					p[0] = i;
					total = total + p[0];
				}
				return (int)total;
			}`,
			opts: RunOptions{FailAlloc: 4},
		},
		{
			// Out-of-bounds past the simulated capacity through a promoted
			// pointer.
			name: "oob",
			src: `int main() {
				long big = 1024L * 1024L * 1024L;
				int *p = (int *)(big * 64L);
				return *p;
			}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := map[string]string{}
			for ename, eng := range parityEngines {
				o := tc.opts
				o.Engine = eng
				_, rerr := RunSource(tc.name+".c", tc.src, o)
				if rerr == nil {
					t.Fatalf("%s: expected a runtime error", ename)
				}
				errs[ename] = rerr.Error()
			}
			for _, ename := range []string{"noopt", "opt"} {
				if errs[ename] != errs["tree"] {
					t.Errorf("%s fault diverges:\ntree:  %s\n%s: %s",
						ename, errs["tree"], ename, errs[ename])
				}
			}
		})
	}
}
