package gdsx

// Scheduler parity: the three parallel-loop schedulers (static
// chunking, dynamic self-scheduling, work stealing) must agree on
// everything the program can observe — output bytes, work/sync
// instruction accounting, fault positions, and whether a guarded run
// is clean or violating. Only load balance (and therefore CatWait spin
// counts and steal counts) may differ. The guard comparison is
// deliberately status-only: a violation report's rule labels and
// iteration attribution depend on the iteration-to-thread mapping the
// scheduler chose (the copy mapping follows the schedule), so reports
// are schedule-dependent even though detection is not. Dynamic
// self-scheduling has no placement guarantee of its own — a
// slow-starting worker can hand every iteration to its sibling and
// honestly hide a cross-thread dependence — so guarded regions
// override it to work stealing (with a Result.Warnings entry), and
// the must-detect assertion holds for all three policies (see
// TestSchedulerGuardVerdictParity).

import (
	"errors"
	"strings"
	"testing"

	"gdsx/internal/interp"
	"gdsx/internal/workloads"
)

var parityScheds = []struct {
	name string
	pol  SchedPolicy
}{
	{"static", SchedStatic},
	{"dynamic", SchedDynamic},
	{"stealing", SchedStealing},
}

var parityThreads = []int{1, 2, 4, 8}

// TestSchedulerOutputAndCounterParity transforms every standard
// workload and runs it under each scheduler at 1/2/4/8 threads: output
// must match the native sequential run byte for byte, CatWork must be
// identical across schedulers (the same iterations execute the same
// ops, wherever they land), and CatSync must be identical between
// static and stealing (stealing charges one dispatch per worker
// exactly like static; self-scheduling legitimately charges per chunk
// grab instead).
func TestSchedulerOutputAndCounterParity(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(workloads.Test)
			prog, err := Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := prog.Run(RunOptions{ForceSequential: true})
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{ProfileSource: src})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			for _, nt := range parityThreads {
				counters := make([][interp.NumCats]int64, len(parityScheds))
				for i, ps := range parityScheds {
					res, err := RunSource(w.Name+"-x.c", tr.Source,
						RunOptions{Threads: nt, Sched: ps.pol})
					if err != nil {
						t.Fatalf("%s threads=%d: %v", ps.name, nt, err)
					}
					if res.Output != want.Output {
						t.Fatalf("%s threads=%d: output diverges from native", ps.name, nt)
					}
					counters[i] = res.Counters
				}
				for i, ps := range parityScheds[1:] {
					if counters[i+1][interp.CatWork] != counters[0][interp.CatWork] {
						t.Errorf("threads=%d: CatWork %d under %s, %d under %s",
							nt, counters[i+1][interp.CatWork], ps.name,
							counters[0][interp.CatWork], parityScheds[0].name)
					}
				}
				static, stealing := counters[0], counters[2]
				if static[interp.CatSync] != stealing[interp.CatSync] {
					t.Errorf("threads=%d: CatSync %d under stealing, %d under static",
						nt, stealing[interp.CatSync], static[interp.CatSync])
				}
			}
		})
	}
}

// TestSchedulerGuardVerdictParity checks the clean-vs-violating
// verdict across schedulers: profiled inputs stay violation-free and
// produce native output under every scheduler, and the adversarial
// exposing inputs trip the monitor on every multi-threaded run and
// fall back to byte-identical native output, no matter how iterations
// were placed on threads.
func TestSchedulerGuardVerdictParity(t *testing.T) {
	clean := []string{"md5", "256.bzip2"}
	for _, name := range clean {
		name := name
		t.Run("clean/"+name, func(t *testing.T) {
			w := workloads.ByName(name)
			src := w.Source(workloads.Test)
			prog, err := Compile(name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{Guard: true, ProfileSource: src})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			want, err := prog.Run(RunOptions{ForceSequential: true})
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			for _, ps := range parityScheds {
				for _, nt := range parityThreads {
					res, err := GuardedRun(prog, tr, RunOptions{Threads: nt, Sched: ps.pol})
					if err != nil {
						t.Fatalf("%s threads=%d: %v", ps.name, nt, err)
					}
					if res.FellBack || res.Violation != nil {
						t.Fatalf("%s threads=%d: guard fired on a profiled input:\n%v",
							ps.name, nt, res.Violation)
					}
					if res.Result.Output != want.Output {
						t.Fatalf("%s threads=%d: guarded output diverges", ps.name, nt)
					}
					// Guarded regions refuse dynamic self-scheduling (no
					// placement guarantee) and run under work stealing
					// instead; the adjustment must be reported, not silent.
					if ps.pol == SchedDynamic && nt >= 2 {
						found := false
						for _, w := range res.Result.Warnings {
							if strings.Contains(w, "dynamic schedule overridden") {
								found = true
							}
						}
						if !found {
							t.Errorf("threads=%d: dynamic guarded run carries no override warning: %v",
								nt, res.Result.Warnings)
						}
					}
				}
			}
		})
	}
	for _, a := range workloads.AdversarialAll() {
		a := a
		t.Run("violating/"+a.Name, func(t *testing.T) {
			prog, err := Compile(a.Name+".c", a.Expose(workloads.Test))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{
				Guard:         true,
				ProfileSource: a.Profile(workloads.Test),
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			want, err := prog.Run(RunOptions{ForceSequential: true})
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			for _, ps := range parityScheds {
				for _, nt := range parityThreads {
					res, err := GuardedRun(prog, tr, RunOptions{Threads: nt, Sched: ps.pol})
					if err != nil {
						t.Fatalf("%s threads=%d: %v", ps.name, nt, err)
					}
					if res.Result.Output != want.Output {
						t.Fatalf("%s threads=%d: output %q, want native %q",
							ps.name, nt, res.Result.Output, want.Output)
					}
					// Static partitioning spreads iterations across all
					// workers, and stealing pins each deque's first grain
					// to its owner, so under both the conflicting
					// iterations are guaranteed to land on different
					// threads and the monitor must fire. Dynamic
					// self-scheduling has no such guarantee, so guarded
					// regions override it to work stealing — the verdict
					// must match, and the run must say it adjusted.
					// (On fallback res.Result is the sequential
					// re-execution, which carries no warnings; the
					// override-warning assertion lives in the clean loop
					// above, where the guarded run's result survives.)
					if nt >= 2 && (!res.FellBack || res.Violation == nil) {
						t.Fatalf("%s threads=%d: scheduler hid the dependence violation",
							ps.name, nt)
					}
				}
			}
		})
	}
}

// TestSchedulerFaultMessageParity injects an allocation fault into a
// parallel worker under each scheduler: every policy must surface the
// same RuntimeError shape — an out-of-memory message anchored at the
// same source position, attributed to a parallel worker on
// multi-threaded runs. (Which iteration held the failing allocation is
// timing-dependent under every policy, so iteration numbers are not
// compared.)
func TestSchedulerFaultMessageParity(t *testing.T) {
	for _, nt := range []int{1, 2, 4} {
		var wantPos string
		for _, ps := range parityScheds {
			_, err := RunSource("pfault.c", parallelFaultSrc,
				RunOptions{Threads: nt, Sched: ps.pol, FailAlloc: 40})
			if err == nil {
				t.Fatalf("%s threads=%d: expected an allocation fault", ps.name, nt)
			}
			var re interp.RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("%s threads=%d: error is %T, want RuntimeError: %v", ps.name, nt, err, err)
			}
			if !strings.Contains(re.Msg, "out of memory") {
				t.Errorf("%s threads=%d: message %q lacks the allocation fault", ps.name, nt, re.Msg)
			}
			if nt >= 2 && !strings.Contains(re.Msg, "parallel worker") {
				t.Errorf("%s threads=%d: fault not attributed to a worker: %q", ps.name, nt, re.Msg)
			}
			pos := re.Pos.String()
			if wantPos == "" {
				wantPos = pos
			} else if pos != wantPos {
				t.Errorf("threads=%d: fault position %s under %s, %s under %s",
					nt, pos, ps.name, wantPos, parityScheds[0].name)
			}
		}
	}
}
