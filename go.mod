module gdsx

go 1.22
