package gdsx

// End-to-end tests of the adaptive speculation ladder: tiered guard
// sampling must let violations escape only between sample points and
// still converge to a sequential-identical final state; runtime
// re-expansion must resolve copy-count-shaped violation patterns; and
// commutative-update privatization must run reduction loops clean and
// parallel. Chaos injection (FaultPlan) exercises the same ladder with
// synthetic faults.

import (
	"strings"
	"testing"

	"gdsx/internal/ddg"
	"gdsx/internal/expand"
	"gdsx/internal/sema"
	"gdsx/internal/workloads"
)

var adaptEngines = []struct {
	name string
	eng  Engine
}{
	{"compiled", EngineCompiled},
	{"tree", EngineTree},
}

// adaptCompile compiles an adversarial pair's exposing program and its
// native sequential reference output.
func adaptCompile(t *testing.T, a *workloads.Adversarial) (*Program, string) {
	t.Helper()
	prog, err := Compile(a.Name+".c", a.Expose(workloads.Test))
	if err != nil {
		t.Fatalf("compile %s: %v", a.Name, err)
	}
	want, err := prog.Run(RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatalf("native run %s: %v", a.Name, err)
	}
	return prog, want.Output
}

// TestCommSiteDetection checks the semantic tagging of
// reduction-shaped updates: integer +=/-=/++/-- and the guarded
// min/max assignment patterns must be marked with their operator, and
// non-commutative shapes must not.
func TestCommSiteDetection(t *testing.T) {
	count := func(src string, op ddg.CommOp) int {
		t.Helper()
		prog, err := Compile("comm.c", src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		n := 0
		for _, o := range sema.CommSites(prog.Info) {
			if o == op {
				n++
			}
		}
		return n
	}
	// += on an integer tags load and store of the accumulator.
	if n := count(`long t; int main() { t += 3; return 0; }`, ddg.CommAdd); n != 2 {
		t.Errorf("+= tagged %d sites, want 2", n)
	}
	if n := count(`int c; int main() { c++; return 0; }`, ddg.CommAdd); n != 2 {
		t.Errorf("++ tagged %d sites, want 2", n)
	}
	// Guarded max: if (v > hi) hi = v; tags the store and the
	// condition's matching loads.
	if n := count(`long hi; int main() { long v = 9; if (v > hi) { hi = v; } return 0; }`,
		ddg.CommMax); n == 0 {
		t.Error("guarded max pattern not tagged")
	}
	if n := count(`long lo; int main() { long v = 9; if (v < lo) { lo = v; } return 0; }`,
		ddg.CommMin); n == 0 {
		t.Error("guarded min pattern not tagged")
	}
	// Floating-point addition is not associative: never tagged.
	if n := count(`double s; int main() { s += 0.5; return 0; }`, ddg.CommAdd); n != 0 {
		t.Errorf("float += tagged %d sites, want 0", n)
	}
	// A guarded assignment whose value is unrelated to the condition is
	// not a min/max.
	if n := count(`long hi; int main() { long v = 9; if (v > hi) { hi = v + 1; } return 0; }`,
		ddg.CommMax); n != 0 {
		t.Errorf("non-minmax guarded store tagged %d sites, want 0", n)
	}
}

// TestCommutativePrivatization runs the reduction workload guarded
// with commutative privatization: the three accumulators (sum,
// histogram, max) must be detected as commutative classes, the region
// must stay violation-free at every thread count on both engines, and
// the output must match the native sequential run. The privatizer's
// stats prove the mechanism actually engaged.
func TestCommutativePrivatization(t *testing.T) {
	w := workloads.CommReduce()
	prog, wantOut := adaptCompile(t, w)
	eopts := expand.Optimized()
	eopts.Commutative = true
	tr, err := Transform(prog, TransformOptions{
		Guard:         true,
		ProfileSource: w.Profile(workloads.Test),
		Expand:        &eopts,
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	classes := 0
	var notes []string
	for _, r := range tr.Reports {
		classes += r.CommClasses
		notes = append(notes, r.CommNotes...)
	}
	if classes != 3 {
		t.Fatalf("commutative classes = %d, want 3 (total, hist, hi):\n%s",
			classes, strings.Join(notes, "\n"))
	}
	for _, e := range adaptEngines {
		for _, nt := range []int{1, 2, 4, 8} {
			res, err := GuardedRun(prog, tr, RunOptions{Threads: nt, Engine: e.eng})
			if err != nil {
				t.Fatalf("%s threads=%d: %v", e.name, nt, err)
			}
			if res.FellBack || res.Violation != nil {
				t.Fatalf("%s threads=%d: privatized reduction still violates:\n%v",
					e.name, nt, res.Violation)
			}
			if res.Result.Output != wantOut {
				t.Fatalf("%s threads=%d: output %q, want %q",
					e.name, nt, res.Result.Output, wantOut)
			}
			if res.Comm == nil {
				t.Fatalf("%s threads=%d: no commutative runtime stats", e.name, nt)
			}
			// Single-thread parallel loops run inline without region
			// hooks — sequential semantics need no privatization.
			if nt >= 2 && (res.Comm.Redirected == 0 || res.Comm.Merged == 0) {
				t.Fatalf("%s threads=%d: privatizer never engaged: %+v",
					e.name, nt, res.Comm)
			}
		}
	}
}

// TestSampledGuardEscapeWindow drives the escape workload — one
// violating access per region execution, appearing only after the
// region earned a sampled tier — through tiered guard sampling with
// region recovery. The violation must escape detection on executions
// whose sampling phase misses it (committing a corrupt but
// self-healing state), be picked up as a suspicion when the rotating
// phase aligns, escalate the region back to full guarding, and leave
// a final state byte-identical to the native sequential run. Pinned
// to SchedStatic: the violating iteration's thread placement is what
// makes detection deterministic.
func TestSampledGuardEscapeWindow(t *testing.T) {
	a := workloads.AdversarialEscape()
	prog, wantOut := adaptCompile(t, a)
	tr, err := Transform(prog, TransformOptions{
		Guard:         true,
		ProfileSource: a.Profile(workloads.Test),
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	for _, e := range adaptEngines {
		for _, nt := range []int{1, 2, 4, 8} {
			res, err := GuardedRun(prog, tr, RunOptions{
				Threads: nt, Sched: SchedStatic, Engine: e.eng,
				Recover: &RecoverySpec{}, Sample: &TierSpec{},
			})
			if err != nil {
				t.Fatalf("%s threads=%d: %v", e.name, nt, err)
			}
			if res.Result.Output != wantOut {
				t.Fatalf("%s threads=%d: final state diverges: %q, want %q",
					e.name, nt, res.Result.Output, wantOut)
			}
			if res.FellBack {
				t.Fatalf("%s threads=%d: whole-program fallback despite region recovery", e.name, nt)
			}
			if nt < 2 {
				continue // single-thread placement reads its own copy: clean
			}
			if res.Suspicions < 1 {
				t.Errorf("%s threads=%d: sampled tier raised no suspicion", e.name, nt)
			}
			if res.Recovered < 1 {
				t.Errorf("%s threads=%d: no region was rolled back", e.name, nt)
			}
			esc := 0
			for _, ts := range res.Tiers {
				esc += ts.Escalations
			}
			if esc < 1 {
				t.Errorf("%s threads=%d: tier never escalated back to full guarding: %+v",
					e.name, nt, res.Tiers)
			}
		}
	}
}

// TestAdaptiveReexpansion drives the window workload — violations
// confined to one chunk-boundary-straddling window — through the
// adaptive driver at 4 threads. The same site pair strikes on every
// region execution, so the driver re-expands: the layout flip cannot
// help (the window is a placement problem, not a layout problem), the
// copy-count halving can — at 2 threads the window sits inside one
// chunk and the region runs clean and parallel.
func TestAdaptiveReexpansion(t *testing.T) {
	a := workloads.AdversarialWindow()
	prog, wantOut := adaptCompile(t, a)
	res, err := AdaptiveRun(prog, AdaptiveOptions{
		Transform: TransformOptions{ProfileSource: a.Profile(workloads.Test)},
		Run:       RunOptions{Threads: 4, Sched: SchedStatic},
	})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	if res.Final.Result.Output != wantOut {
		t.Fatalf("final output %q, want %q", res.Final.Result.Output, wantOut)
	}
	if res.Threads != 2 {
		t.Fatalf("final copy count = %d, want 2 (halved from 4); decisions: %+v",
			res.Threads, res.Reexpansions)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (strike out, flip layout, halve copies)", res.Attempts)
	}
	if len(res.Reexpansions) != 2 {
		t.Errorf("re-expansion decisions = %d, want 2: %+v", len(res.Reexpansions), res.Reexpansions)
	}
	if len(res.Final.Violations) != 0 {
		t.Errorf("final attempt still violates: %v", res.Final.Violations)
	}
	if len(res.Strikes) != 0 {
		t.Errorf("final attempt still strikes: %v", res.Strikes)
	}
}

// TestAdaptiveReexpandInjectedFailure checks the chaos hook on the
// re-expansion path: with FaultPlan.FailReexpand every decision is
// injected to fail, so the driver stops after the first attempt with
// the failure recorded — and the output is still correct, because
// each attempt's region recovery never depended on the adaptation.
func TestAdaptiveReexpandInjectedFailure(t *testing.T) {
	a := workloads.AdversarialWindow()
	prog, wantOut := adaptCompile(t, a)
	res, err := AdaptiveRun(prog, AdaptiveOptions{
		Transform: TransformOptions{ProfileSource: a.Profile(workloads.Test)},
		Run: RunOptions{
			Threads: 4, Sched: SchedStatic,
			FaultPlan: &FaultPlan{FailReexpand: 1},
		},
	})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	if res.Final.Result.Output != wantOut {
		t.Fatalf("final output %q, want %q", res.Final.Result.Output, wantOut)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (re-expansion injected to fail)", res.Attempts)
	}
	if len(res.Reexpansions) != 1 || !res.Reexpansions[0].Failed {
		t.Fatalf("want one failed re-expansion decision, got %+v", res.Reexpansions)
	}
	if !strings.Contains(res.Reexpansions[0].Reason, "fault plan") {
		t.Errorf("failure reason %q does not name the fault plan", res.Reexpansions[0].Reason)
	}
}

// TestChaosFaultPlanConvergence injects spurious suspicions and forced
// rollbacks into perfectly healthy guarded runs: the recovery ladder
// must absorb every injected fault — rollback, sequential re-execution,
// possibly demotion — and still finish with native-identical output,
// without inventing violation reports (the injections are not guard
// evidence) and without the whole-program fallback.
func TestChaosFaultPlanConvergence(t *testing.T) {
	victims := []*workloads.Adversarial{
		workloads.AdversarialEscape(),
		workloads.AdversarialWindow(),
	}
	for _, a := range victims {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// The Profile variant is the healthy program: every region
			// execution is clean, so every fault below is injected.
			src := a.Profile(workloads.Test)
			prog, err := Compile(a.Name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := prog.Run(RunOptions{ForceSequential: true})
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			tr, err := Transform(prog, TransformOptions{Guard: true, ProfileSource: src})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			res, err := GuardedRun(prog, tr, RunOptions{
				Threads: 4,
				Recover: &RecoverySpec{},
				Sample:  &TierSpec{},
				FaultPlan: &FaultPlan{
					SuspectEvery:  2,
					RollbackEvery: 3,
				},
			})
			if err != nil {
				t.Fatalf("guarded run: %v", err)
			}
			if res.Result.Output != want.Output {
				t.Fatalf("output diverges under chaos: %q, want %q",
					res.Result.Output, want.Output)
			}
			if res.FellBack {
				t.Fatal("whole-program fallback despite region recovery")
			}
			if res.Suspicions < 1 {
				t.Error("no injected suspicion was observed")
			}
			if res.Recovered < 1 {
				t.Error("no injected fault rolled a region back")
			}
			if len(res.Violations) != 0 {
				t.Errorf("injected faults must not produce guard reports: %v", res.Violations)
			}
		})
	}
}
