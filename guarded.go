package gdsx

import (
	"errors"
	"fmt"

	"gdsx/internal/guard"
	"gdsx/internal/interp"
	"gdsx/internal/rtpriv"
)

// TierSpec re-exports the guard monitor's sampling-tier configuration.
type TierSpec = guard.TierSpec

// TierStats re-exports the per-region sampling-tier health record.
type TierStats = guard.TierStats

// CommStats re-exports the commutative privatizer's statistics.
type CommStats = rtpriv.CommStats

// GuardedResult is the outcome of a guarded parallel execution.
type GuardedResult struct {
	// Result is the run that produced the program's output: the guarded
	// parallel run when no violation escaped (with RunOptions.Recover,
	// violating regions were rolled back and re-executed sequentially
	// inside that run), else the sequential re-execution of the native
	// program.
	Result Result
	// Violation is the first violation report, nil when none was
	// detected.
	Violation *guard.Report
	// Violations holds every violation the monitor detected. Without
	// recovery at most one exists (the abort ends the run); with
	// region-scoped recovery each entry corresponds to one rolled-back
	// region.
	Violations []*guard.Report
	// FellBack reports whether the output came from the whole-program
	// sequential fallback — the last resort when no region recovery is
	// configured.
	FellBack bool
	// Recovered counts parallel regions that were rolled back and
	// re-executed sequentially inside the guarded run (always 0 without
	// RunOptions.Recover).
	Recovered int
	// Suspicions counts rollbacks caused by sampled-tier suspicions
	// rather than confirmed violations (always 0 without
	// RunOptions.Sample). Suspicions charge no demotion strike.
	Suspicions int
	// Regions holds the per-region recovery health records (rollbacks,
	// demotions, snapshot cost) when the run used RunOptions.Recover.
	Regions []RegionStats
	// Tiers holds the per-region guard-sampling tier records when the
	// run used RunOptions.Sample.
	Tiers []TierStats
	// Comm holds the commutative privatizer's statistics when the
	// transformation planted __comm_note markers (see
	// expand.Options.Commutative); nil otherwise.
	Comm *CommStats
	// Expanded is the compiled expanded program the guarded run
	// executed. Hot-site profiles attribute cost to the expanded
	// program's access sites; resolve them against Expanded.Info (e.g.
	// via HotSiteFrames).
	Expanded *Program
}

// commClasses reports how many commutative classes the transformation
// handed to the runtime privatizer.
func (tr *TransformResult) commClasses() int {
	n := 0
	for _, r := range tr.Reports {
		n += r.CommClasses
	}
	return n
}

// GuardedRun executes a transformed program under the guarded-execution
// monitor. The transformation must have been produced with
// TransformOptions.Guard (or expand.Options.GuardNotes) so the expanded
// program carries its copy-geometry markers; without them the monitor
// sees no expanded structures and degrades to raw conflict detection.
//
// During the run, a per-thread access monitor logs every sited memory
// access; at each parallel region's end — the safe point — the logs are
// replayed against the expansion's assumptions (Definition 5 thread
// privacy, the profiled DDG's absence of unsynchronized carried
// dependences). If the input exposed a dependence the training profile
// never saw, the recovery ladder engages:
//
//  1. With opts.Recover set, the violating region alone is rolled back
//     to its entry snapshot and re-executed sequentially; the run then
//     continues in parallel. Regions that keep failing are demoted to
//     sequential execution (see RecoverySpec).
//  2. Without opts.Recover, the entire expanded run is discarded and
//     the native program re-executes sequentially — correct, but
//     O(program) cost for an O(region) fault.
//
// With opts.Sample set, each region additionally moves through guard
// sampling tiers: after a clean streak the monitor checks only every
// k-th iteration (k escalating geometrically), and any suspicious
// access — evidence that could be a sampling artifact — rolls the
// region back without a demotion strike and restores full guarding
// before the next region entry. Checkpoint/rollback remains the safety
// net: a region that commits under an unsampled violation is corrupt
// only until the tier realigns, which the escalation guarantees within
// k executions.
//
// If the transformation planted commutative-privatization markers
// (expand.Options.Commutative), the commutative runtime is attached:
// reduction-shaped accumulators get per-thread identity-initialized
// copies merged at region exit, so their carried flow never reaches
// the monitor.
//
// Caller-supplied opts.Hooks are chained after the monitor's hooks
// (monitor first), so both observe the run; on the whole-program
// fallback the caller's hooks observe the sequential re-execution
// alone. A FailAlloc injection is disarmed on any fallback or rollback
// rather than re-armed: the countdown's allocation numbering belongs
// to the parallel attempt, and replaying it would fire the fault at an
// unrelated allocation of the re-execution.
func GuardedRun(native *Program, tr *TransformResult, opts RunOptions) (*GuardedResult, error) {
	if native == nil || tr == nil {
		return nil, fmt.Errorf("gdsx: guarded execution needs the native program and its transform result")
	}
	exp, err := Compile(native.File+" (expanded)", tr.Source)
	if err != nil {
		return nil, fmt.Errorf("gdsx: compiling transformed program: %w", err)
	}
	return GuardedRunPrecompiled(native, tr, exp, opts)
}

// GuardedRunPrecompiled is GuardedRun with the expanded program's
// compilation hoisted out: exp must be a compilation of tr.Source.
// Callers that run the same transform repeatedly (the gdsxd service's
// transform cache) compile once and amortize parse+sema across runs.
func GuardedRunPrecompiled(native *Program, tr *TransformResult, exp *Program, opts RunOptions) (*GuardedResult, error) {
	if native == nil || tr == nil || exp == nil {
		return nil, fmt.Errorf("gdsx: guarded execution needs the native program, its transform result and the compiled expansion")
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	var tiers *guard.TierController
	if opts.Sample != nil {
		tiers = guard.NewTierController(*opts.Sample)
	}
	mon := guard.New(guard.Config{Threads: threads, Info: exp.Info, Obs: opts.Obs, Tiers: tiers})
	var comm *rtpriv.CommutativeRuntime
	chained := opts.Hooks
	if tr.commClasses() > 0 {
		comm = rtpriv.NewCommutative()
		chained = interp.ChainHooks(comm.Hooks(), chained)
	}
	gopts := opts
	gopts.Hooks = interp.ChainHooks(mon.Hooks(), chained)
	m := exp.NewMachine(gopts)
	if comm != nil {
		comm.Bind(m)
	}
	out, err := m.Run()
	finish := func(res *GuardedResult) *GuardedResult {
		if tiers != nil {
			res.Tiers = tiers.Snapshot()
		}
		if comm != nil {
			s := comm.Stats()
			res.Comm = &s
		}
		return res
	}
	if err == nil {
		res := &GuardedResult{
			Result:     out,
			Violations: mon.Reports(),
			Regions:    out.Regions,
			Expanded:   exp,
		}
		if len(res.Violations) > 0 {
			res.Violation = res.Violations[0]
		}
		for _, r := range out.Regions {
			res.Recovered += r.Rollbacks
			res.Suspicions += r.Suspicions
		}
		return finish(res), nil
	}
	var ve *guard.ViolationError
	var se *interp.SuspicionError
	if !errors.As(err, &ve) && !errors.As(err, &se) {
		return nil, err // a genuine runtime error, not a guard abort
	}
	// Dependence violation (or an unrecoverable sampled-tier suspicion)
	// with no region recovery configured: discard the expanded run (its
	// machine and memory are dropped wholesale) and re-execute the
	// native program sequentially for the correct output. The caller's
	// hooks observe this run; the monitor's do not (there is nothing
	// left to guard). The fault injection is disarmed — its countdown
	// already elapsed against the parallel attempt's allocation
	// sequence, and the native program allocates differently.
	sopts := opts // keeps opts.Hooks: the caller's hooks see the fallback
	sopts.ForceSequential = true
	sopts.FailAlloc = 0
	seq, serr := native.Run(sopts)
	if serr != nil {
		return nil, fmt.Errorf("gdsx: sequential re-execution after guard abort: %w", serr)
	}
	res := &GuardedResult{
		Result:     seq,
		Violations: mon.Reports(),
		FellBack:   true,
		Expanded:   exp,
	}
	if ve != nil {
		res.Violation = ve.Report
	} else {
		res.Suspicions = 1
	}
	return finish(res), nil
}
