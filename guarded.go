package gdsx

import (
	"errors"
	"fmt"

	"gdsx/internal/guard"
)

// GuardedResult is the outcome of a guarded parallel execution.
type GuardedResult struct {
	// Result is the run that produced the program's output: the guarded
	// parallel run when no violation was detected, else the sequential
	// re-execution of the native program.
	Result Result
	// Violation is the monitor's report when the parallel run was
	// aborted, nil otherwise.
	Violation *guard.Report
	// FellBack reports whether the output came from the sequential
	// fallback.
	FellBack bool
}

// GuardedRun executes a transformed program under the guarded-execution
// monitor. The transformation must have been produced with
// TransformOptions.Guard (or expand.Options.GuardNotes) so the expanded
// program carries its copy-geometry markers; without them the monitor
// sees no expanded structures and degrades to raw conflict detection.
//
// During the run, a per-thread access monitor logs every sited memory
// access; at each parallel region's end — the safe point — the logs are
// replayed against the expansion's assumptions (Definition 5 thread
// privacy, the profiled DDG's absence of unsynchronized carried
// dependences). If the input exposed a dependence the training profile
// never saw, the parallel region aborts, the expanded state is
// discarded, and the native program is re-executed sequentially,
// producing the output sequential execution would have produced. The
// returned GuardedResult says which path ran and carries the
// violation report when the guard fired.
func GuardedRun(native *Program, tr *TransformResult, opts RunOptions) (*GuardedResult, error) {
	if opts.Hooks != nil {
		return nil, fmt.Errorf("gdsx: guarded execution does not compose with custom hooks")
	}
	if native == nil || tr == nil {
		return nil, fmt.Errorf("gdsx: guarded execution needs the native program and its transform result")
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	exp, err := Compile(native.File+" (expanded)", tr.Source)
	if err != nil {
		return nil, fmt.Errorf("gdsx: compiling transformed program: %w", err)
	}
	mon := guard.New(guard.Config{Threads: threads, Info: exp.Info})
	gopts := opts
	gopts.Hooks = mon.Hooks()
	out, err := exp.Run(gopts)
	if err == nil {
		return &GuardedResult{Result: out}, nil
	}
	var ve *guard.ViolationError
	if !errors.As(err, &ve) {
		return nil, err // a genuine runtime error, not a guard abort
	}
	// Dependence violation: discard the expanded run (its machine and
	// memory are dropped wholesale) and re-execute the native program
	// sequentially for the correct output.
	sopts := opts
	sopts.Hooks = nil
	sopts.ForceSequential = true
	seq, serr := native.Run(sopts)
	if serr != nil {
		return nil, fmt.Errorf("gdsx: sequential re-execution after guard abort: %w", serr)
	}
	return &GuardedResult{Result: seq, Violation: ve.Report, FellBack: true}, nil
}
