// Package gdsx is a reproduction of "General Data Structure Expansion
// for Multi-threading" (Yu, Ko, Li — PLDI 2013). It compiles MiniC
// programs (a C subset), profiles loop-level data dependences, expands
// contentious data structures so each simulated thread works on its own
// copy, and executes the transformed program with real parallelism over
// a simulated shared memory.
//
// Typical use:
//
//	prog, err := gdsx.Compile("dijkstra.c", src)
//	res, err := gdsx.Transform(prog, gdsx.TransformOptions{})
//	out, err := gdsx.RunSource("dijkstra-par.c", res.Source, gdsx.RunOptions{Threads: 8})
package gdsx

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gdsx/internal/ast"
	"gdsx/internal/ddg"
	"gdsx/internal/interp"
	"gdsx/internal/mem"
	"gdsx/internal/obs"
	"gdsx/internal/parser"
	"gdsx/internal/profile"
	"gdsx/internal/sema"
)

// Program is a compiled (parsed and checked) MiniC program.
type Program struct {
	File   string
	Source string
	AST    *ast.Program
	Info   *sema.Info
}

// Compile parses and semantically checks a MiniC source file.
func Compile(file, src string) (*Program, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return &Program{File: file, Source: src, AST: prog, Info: info}, nil
}

// ParallelLoops returns the IDs of the program's parallel-annotated
// loops in ascending order.
func (p *Program) ParallelLoops() []int {
	var ids []int
	for id, l := range p.Info.Loops {
		if l.Par != ast.Sequential {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Print renders the (possibly transformed) program back to MiniC.
func (p *Program) Print() string { return ast.Print(p.AST) }

// RunOptions configure program execution.
type RunOptions struct {
	// Threads is the simulated thread count N (default 1).
	Threads int
	// MemSize is the simulated memory capacity (default 64 MiB).
	MemSize int64
	// StackSize is the per-thread stack size (default 1 MiB).
	StackSize int64
	// ForceSequential executes parallel loops on the main thread (used
	// to measure single-core overhead of transformed code).
	ForceSequential bool
	// Trace executes parallel loops sequentially while recording the
	// per-iteration cost traces consumed by the schedule simulator.
	Trace bool
	// MaxOps aborts the run after this many operations (0 = unlimited).
	MaxOps int64
	// MemLimit caps live allocated bytes below the simulated capacity
	// (0 = no cap); exceeding it fails the allocation like OOM.
	MemLimit int64
	// FailAlloc makes the nth allocation from program start fail with
	// an out-of-memory error (0 = disabled); fault injection for
	// robustness tests. Note that when a guarded run falls back or a
	// region rolls back, the injection is disarmed rather than rewound:
	// replaying the countdown would fire it at an unrelated allocation
	// of the re-execution (see GuardedRun).
	FailAlloc int64
	// Sched selects the parallel-loop scheduler: SchedStealing (the
	// default work-stealing dispatch), SchedStatic or SchedDynamic.
	// Every policy produces identical output, counters and guard
	// verdicts; only load balance differs.
	Sched SchedPolicy
	// DispatchChunk sets the iterations per shared-counter grab for
	// self-scheduled loops (0 = 1, the paper's DOACROSS chunk size).
	DispatchChunk int
	// Hooks intercept execution (profiling, runtime privatization).
	Hooks *interp.Hooks
	// Engine selects the execution engine. The zero value is
	// EngineCompiled, the closure-compiling engine; EngineTree selects
	// the tree-walking reference implementation. Both engines produce
	// byte-identical output and identical instruction counters.
	Engine Engine
	// Opt selects the compiled engine's optimization level. The zero
	// value enables the full pass pipeline (register promotion,
	// superinstruction fusion, profile-guided specialization); OptNone
	// disables it, matching EngineCompiledNoOpt.
	Opt OptLevel
	// OptProfile feeds a prior run's hot-site profile to the optimizer,
	// which specializes the hottest sites' memory accessors to their
	// observed access width. Nil disables specialization.
	OptProfile *SiteProfile
	// Recover enables region-scoped checkpoint/rollback recovery: each
	// parallel region snapshots mutable machine state on entry, and a
	// guard violation, worker fault or watchdog timeout rolls just that
	// region back and re-executes it sequentially, letting the rest of
	// the run keep its parallelism. &RecoverySpec{} selects the
	// defaults; nil disables recovery.
	Recover *RecoverySpec
	// RegionTimeout bounds each parallel region's wall-clock time
	// (0 = unbounded). With Recover set, a stuck region is rolled back
	// and re-executed sequentially; without it the run fails.
	RegionTimeout time.Duration
	// FaultPlan injects failures into otherwise-healthy parallel
	// regions (spurious guard suspicions, forced rollbacks) for chaos
	// testing of the recovery ladder. Inert without Recover: the
	// injected faults surface only at the region-commit decision, which
	// only recovery-enabled runs make. See interp.FaultPlan.
	FaultPlan *FaultPlan
	// Sample enables tiered guard sampling for guarded runs (GuardedRun
	// and the adaptive driver): regions start fully guarded and, after
	// a clean streak, drop to checking every k-th iteration, escalating
	// back to full guarding on any suspicious access. &TierSpec{}
	// selects the defaults; nil keeps every region fully guarded.
	// Ignored by plain Run (no guard monitor to sample).
	Sample *TierSpec
	// Obs attaches the runtime observability layer (package obs): an
	// event tracer with a Chrome trace-event exporter, a metrics
	// registry, and an optional per-access hot-site profiler. Nil
	// disables observability at zero cost. See NewObserver for the
	// common configuration.
	Obs *Observer
	// Ctx cancels the run cooperatively: when the context is cancelled
	// (deadline or explicit), the interpreter stops at its next safe
	// point — a statement boundary, a loop back-edge, an ordered-section
	// spin, or a scheduler idle loop — unwinds every parallel worker,
	// and returns *interp.CancelledError wrapping the context cause.
	// Nil (or a context that can never be cancelled) costs nothing.
	Ctx context.Context
	// Memory injects a caller-owned simulated memory (see NewMemory),
	// letting a service reuse pooled arenas across runs instead of
	// allocating MemSize fresh each time. The caller must Reset the
	// memory between runs; MemSize is ignored when Memory is set.
	Memory *mem.Memory
}

// Memory re-exports the simulated memory for pooled reuse across runs.
type Memory = mem.Memory

// NewMemory allocates a simulated memory of the given capacity in
// bytes (0 selects the default 64 MiB), for use with RunOptions.Memory.
func NewMemory(size int64) *Memory {
	if size <= 0 {
		size = 64 << 20
	}
	return mem.New(size)
}

// CancelledError re-exports the interpreter's cancellation error; a
// run whose RunOptions.Ctx was cancelled returns one wrapping the
// context cause (errors.Is(err, context.Canceled) works through it).
type CancelledError = interp.CancelledError

// Observer re-exports the observability bundle; see package obs for
// the component types.
type Observer = obs.Observer

// NewObserver builds the standard observability configuration: an
// event tracer and a metrics registry, whose cost is per-region and
// per-run rather than per-iteration — cheap enough to leave on. Two
// heavier tiers are opt-in: setting IterSpans on the returned observer
// adds a timed trace span per loop iteration (two clock reads per
// iteration — visible on tight loops), and hot attaches the per-access
// hot-site profiler, which forces every sited memory access through
// the interpreter's hook path. See BENCH_obs.json for the measured
// overhead of each tier.
func NewObserver(hot bool) *Observer {
	o := &Observer{
		Trace:   obs.NewTracer(0),
		Metrics: obs.NewRegistry(),
	}
	if hot {
		o.Hot = obs.NewHotSites()
	}
	return o
}

// RecoverySpec re-exports the interpreter's recovery configuration.
type RecoverySpec = interp.RecoverySpec

// FaultPlan re-exports the interpreter's chaos-injection plan.
type FaultPlan = interp.FaultPlan

// RegionStats re-exports the interpreter's per-region health record.
type RegionStats = interp.RegionStats

// Engine re-exports the interpreter's engine selector.
type Engine = interp.Engine

// Execution engines.
const (
	// EngineCompiled compiles each function body to a tree of
	// pre-resolved Go closures once, after checking (the default).
	EngineCompiled = interp.EngineCompiled
	// EngineTree walks the AST on every execution (reference engine).
	EngineTree = interp.EngineTree
	// EngineCompiledNoOpt is the compiled engine with the optimization
	// pipeline disabled (shorthand for EngineCompiled + OptNone).
	EngineCompiledNoOpt = interp.EngineCompiledNoOpt
)

// SchedPolicy re-exports the interpreter's scheduler selector.
type SchedPolicy = interp.SchedPolicy

// Parallel-loop scheduling policies.
const (
	// SchedStealing dispatches DOALL iterations through per-worker
	// work-stealing deques and DOACROSS iterations through chunked
	// self-scheduling (the default).
	SchedStealing = interp.SchedStealing
	// SchedStatic uses contiguous static chunks for every loop.
	SchedStatic = interp.SchedStatic
	// SchedDynamic self-schedules every loop from a shared counter.
	SchedDynamic = interp.SchedDynamic
)

// SchedFromString parses a scheduler name ("stealing", "static",
// "dynamic", or "" for the default).
func SchedFromString(s string) (SchedPolicy, bool) { return interp.SchedFromString(s) }

// OptLevel re-exports the compiled engine's optimization selector.
type OptLevel = interp.OptLevel

// Optimization levels for the compiled engine.
const (
	// OptDefault runs the full optimization pipeline (the zero value).
	OptDefault = interp.OptDefault
	// OptNone compiles every construct with the generic closures.
	OptNone = interp.OptNone
)

// SiteProfile re-exports the optimizer's hot-site profile input.
type SiteProfile = interp.SiteProfile

// SiteProfileFromReports converts the hot-site profiler's per-site
// report (Observer.Hot.Report(), or the same JSON re-read from the
// pipeline's -hotspots-json output) into the optimizer's profile form.
func SiteProfileFromReports(reps []obs.SiteReport) *SiteProfile {
	return interp.SiteProfileFromReports(reps)
}

// EngineFromString parses an engine name ("compiled", "compiled-noopt",
// "tree", or "" for the default).
func EngineFromString(s string) (Engine, bool) { return interp.EngineFromString(s) }

// Result re-exports the interpreter's run result.
type Result = interp.Result

func (o RunOptions) interpOptions() interp.Options {
	return interp.Options{
		NumThreads:      o.Threads,
		MemSize:         o.MemSize,
		StackSize:       o.StackSize,
		ForceSequential: o.ForceSequential,
		TraceParallel:   o.Trace,
		MaxOps:          o.MaxOps,
		MemLimit:        o.MemLimit,
		FailAlloc:       o.FailAlloc,
		Sched:           o.Sched,
		DispatchChunk:   o.DispatchChunk,
		Hooks:           o.Hooks,
		Engine:          o.Engine,
		Opt:             o.Opt,
		OptProfile:      o.OptProfile,
		Recover:         o.Recover,
		RegionTimeout:   o.RegionTimeout,
		FaultPlan:       o.FaultPlan,
		Obs:             o.Obs,
		Ctx:             o.Ctx,
		Memory:          o.Memory,
	}
}

// Run executes the program.
func (p *Program) Run(opts RunOptions) (Result, error) {
	m := interp.New(p.AST, p.Info, opts.interpOptions())
	return m.Run()
}

// NewMachine returns a configured interpreter for the program, for
// callers that need access to the simulated memory (e.g. the runtime-
// privatization baseline).
func (p *Program) NewMachine(opts RunOptions) *interp.Machine {
	return interp.New(p.AST, p.Info, opts.interpOptions())
}

// RunSource compiles and runs a MiniC source in one step.
func RunSource(file, src string, opts RunOptions) (Result, error) {
	prog, err := Compile(file, src)
	if err != nil {
		return Result{}, err
	}
	return prog.Run(opts)
}

// ProfileLoop runs the program sequentially and returns the loop-level
// data dependence graph of the given loop plus the dynamic origins each
// access touched.
func (p *Program) ProfileLoop(loopID int, opts RunOptions) (*profile.Result, error) {
	return profile.Loop(p.AST, p.Info, loopID, opts.interpOptions())
}

// ClassifyLoop profiles a loop and classifies its accesses per the
// paper's Definition 5.
func (p *Program) ClassifyLoop(loopID int, opts RunOptions) (*profile.Result, *ddg.Classification, error) {
	pr, err := p.ProfileLoop(loopID, opts)
	if err != nil {
		return nil, nil, err
	}
	return pr, ddg.Classify(pr.Graph, ddg.DefaultOptions()), nil
}

// Loop returns metadata for a loop ID.
func (p *Program) Loop(loopID int) (*sema.LoopInfo, error) {
	l, ok := p.Info.Loops[loopID]
	if !ok {
		return nil, fmt.Errorf("gdsx: no loop %d in %s", loopID, p.File)
	}
	return l, nil
}
