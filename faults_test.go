package gdsx

// Fault parity: a faulting MiniC program must produce the same
// structured RuntimeError — same source position, same message — from
// both execution engines, and a fault inside a parallel worker must
// unwind cleanly into an annotated error instead of crashing the
// process.

import (
	"errors"
	"strings"
	"testing"

	"gdsx/internal/interp"
)

func TestFaultParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts RunOptions
		want string // substring of the runtime error message
	}{
		{
			name: "null deref load",
			src:  `int main() { int *p = 0; return *p; }`,
			want: "null pointer dereference",
		},
		{
			name: "null deref store",
			src:  `int main() { long *p = 0; p[0] = 7; return 0; }`,
			want: "null pointer dereference (address 0)",
		},
		{
			name: "null deref field",
			src: `struct node { int v; struct node *next; };
				int main() { struct node *n = 0; return n->v; }`,
			want: "null pointer dereference",
		},
		{
			name: "out of bounds",
			src:  `int main() { long *p = (long*)malloc(16); return (int)p[100000000]; }`,
			want: "out-of-bounds access at address",
		},
		{
			name: "division by zero",
			src:  `int main() { int z = 0; return 10 / z; }`,
			want: "integer division by zero",
		},
		{
			name: "modulo by zero",
			src:  `int main() { int z = 0; return 10 % z; }`,
			want: "integer modulo by zero",
		},
		{
			name: "oom capacity",
			src: `int main() {
				int i;
				for (i = 0; i < 1000000; i++) { malloc(4096); }
				return 0;
			}`,
			opts: RunOptions{MemSize: 1 << 21}, // leaves room for the stack
			want: "out of memory allocating 4096 bytes (capacity",
		},
		{
			name: "oom limit",
			src: `int main() {
				int i;
				for (i = 0; i < 1000000; i++) { malloc(4096); }
				return 0;
			}`,
			opts: RunOptions{MemLimit: 1 << 21}, // the stack counts as live bytes
			want: "out of memory allocating 4096 bytes (limit",
		},
		{
			name: "oom fault injection",
			src: `int main() {
				long *a = (long*)malloc(64);
				long *b = (long*)malloc(64);
				a[0] = (long)b;
				return 0;
			}`,
			opts: RunOptions{FailAlloc: 3}, // 1 is main's frame, 2 is a
			want: "out of memory allocating 64 bytes (fault injection)",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			errs := map[Engine]error{}
			for _, eng := range []Engine{EngineTree, EngineCompiled} {
				opts := tc.opts
				opts.Engine = eng
				_, err := RunSource("fault.c", tc.src, opts)
				if err == nil {
					t.Fatalf("engine %v: expected a runtime error", eng)
				}
				var re interp.RuntimeError
				if !errors.As(err, &re) {
					t.Fatalf("engine %v: error is %T, want interp.RuntimeError: %v", eng, err, err)
				}
				if !re.Pos.IsValid() {
					t.Errorf("engine %v: fault carries no source position: %v", eng, err)
				}
				if !strings.Contains(re.Msg, tc.want) {
					t.Errorf("engine %v: message %q does not contain %q", eng, re.Msg, tc.want)
				}
				errs[eng] = err
			}
			if errs[EngineTree].Error() != errs[EngineCompiled].Error() {
				t.Errorf("engines disagree on the fault:\ntree:     %v\ncompiled: %v",
					errs[EngineTree], errs[EngineCompiled])
			}
		})
	}
}

// parallelFaultSrc faults inside a parallel loop: each iteration
// allocates private scratch, so fault injection lands inside a worker.
// Iterations touch only their own allocation and their own out[i] slot,
// keeping the program race-free up to the fault.
const parallelFaultSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long *scratch = (long*)malloc(256);
		scratch[0] = (long)i * 17;
		out[i] = scratch[0] + 3;
		free(scratch);
	}
	long s = 0;
	for (i = 0; i < N; i++) { s = s + out[i]; }
	print_long(s);
	print_char('\n');
	return 0;
}
`

// TestFaultInParallelWorker: an allocation failure inside a parallel
// worker must not crash the host process or deadlock the region; it
// unwinds into a RuntimeError annotated with the worker and iteration.
func TestFaultInParallelWorker(t *testing.T) {
	for _, eng := range []Engine{EngineTree, EngineCompiled} {
		for _, nt := range []int{1, 2, 4} {
			_, err := RunSource("pfault.c", parallelFaultSrc,
				RunOptions{Threads: nt, Engine: eng, FailAlloc: 40})
			if err == nil {
				t.Fatalf("engine %v threads=%d: expected an allocation fault", eng, nt)
			}
			var re interp.RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("engine %v threads=%d: error is %T, want RuntimeError: %v", eng, nt, err, err)
			}
			if !strings.Contains(re.Msg, "out of memory") {
				t.Errorf("engine %v threads=%d: message %q lacks the allocation fault", eng, nt, re.Msg)
			}
			// A one-thread region runs its chunk without the worker
			// annotation; multi-threaded faults must name the worker.
			if nt >= 2 && (!strings.Contains(re.Msg, "parallel worker") || !strings.Contains(re.Msg, "iteration")) {
				t.Errorf("engine %v threads=%d: fault not attributed to a worker: %q", eng, nt, re.Msg)
			}
		}
	}
}

// TestFaultFreeRunUnaffected: the same program with no fault injected
// completes normally at every thread count — the containment machinery
// must not perturb clean runs.
func TestFaultFreeRunUnaffected(t *testing.T) {
	want, err := RunSource("pfault.c", parallelFaultSrc, RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, nt := range []int{2, 4} {
		got, err := RunSource("pfault.c", parallelFaultSrc, RunOptions{Threads: nt})
		if err != nil {
			t.Fatalf("threads=%d: %v", nt, err)
		}
		if got.Output != want.Output {
			t.Fatalf("threads=%d: output %q, want %q", nt, got.Output, want.Output)
		}
	}
}
