package gdsx

// End-to-end tests of guarded parallel execution: the access monitor
// must detect dependence violations that an input exposes against the
// training profile, fall back to sequential re-execution with
// byte-identical native output, and stay silent (and overhead-only) on
// inputs the profile covers.

import (
	"strings"
	"testing"

	"gdsx/internal/guard"
	"gdsx/internal/workloads"
)

var guardThreads = []int{1, 2, 4, 8}

// guardTransform compiles the exposing program and transforms it with
// guard markers, profiling on the training source.
func guardTransform(t *testing.T, a *workloads.Adversarial) (*Program, *TransformResult) {
	t.Helper()
	native, err := Compile(a.Name+".c", a.Expose(workloads.Test))
	if err != nil {
		t.Fatalf("compile %s: %v", a.Name, err)
	}
	tr, err := Transform(native, TransformOptions{
		Guard:         true,
		ProfileSource: a.Profile(workloads.Test),
	})
	if err != nil {
		t.Fatalf("transform %s: %v", a.Name, err)
	}
	return native, tr
}

func sequentialOutput(t *testing.T, p *Program) string {
	t.Helper()
	out, err := p.Run(RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return out.Output
}

// TestGuardDetectsExposedDependence: the adversarial workloads run
// under -guard with the dependence-exposing input must trip the
// monitor on every multi-threaded run, fall back to sequential
// re-execution, and produce byte-identical native output at every
// thread count.
func TestGuardDetectsExposedDependence(t *testing.T) {
	for _, a := range workloads.AdversarialAll() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			native, tr := guardTransform(t, a)
			want := sequentialOutput(t, native)
			for _, nt := range guardThreads {
				res, err := GuardedRun(native, tr, RunOptions{Threads: nt})
				if err != nil {
					t.Fatalf("threads=%d: guarded run: %v", nt, err)
				}
				if res.Result.Output != want {
					t.Fatalf("threads=%d: output %q, want native %q (fellback=%v)",
						nt, res.Result.Output, want, res.FellBack)
				}
				if nt >= 2 {
					if !res.FellBack || res.Violation == nil {
						t.Fatalf("threads=%d: expected a dependence violation, got none", nt)
					}
					if res.Violation.Total == 0 || len(res.Violation.Violations) == 0 {
						t.Fatalf("threads=%d: empty violation report", nt)
					}
				}
			}
		})
	}
}

// TestGuardViolationReportNamesSites: the report must identify the
// true conflicting accesses of the stencil — the tmp[] write and the
// strided tmp[] read — with positions, iterations and threads.
func TestGuardViolationReportNamesSites(t *testing.T) {
	a := workloads.AdversarialStencil()
	native, tr := guardTransform(t, a)
	res, err := GuardedRun(native, tr, RunOptions{Threads: 4})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res.Violation == nil {
		t.Fatalf("expected a violation report")
	}
	found := false
	for _, v := range res.Violation.Violations {
		if v.Rule != guard.RuleCarriedFlow {
			continue
		}
		// The expanded program may rename the buffer (hoisted bases), but
		// the subscripts identify the true site pair: the strided read
		// against the per-iteration write.
		if !strings.Contains(v.Text, "(i + STRIDE) % 8") || !strings.Contains(v.OtherText, "i % 8") {
			continue
		}
		if v.Pos == "-" || v.OtherPos == "-" {
			t.Fatalf("carried-flow violation lacks source positions: %+v", v)
		}
		if v.Iter == v.OtherIter {
			t.Fatalf("carried-flow violation within one iteration: %+v", v)
		}
		found = true
	}
	if !found {
		t.Fatalf("no carried-flow violation naming the tmp site pair; report:\n%s", res.Violation)
	}
}

// TestGuardSilentOnProfiledInput: the same programs run under -guard
// with the training input must complete in parallel with zero
// violations and native-identical output.
func TestGuardSilentOnProfiledInput(t *testing.T) {
	for _, a := range workloads.AdversarialAll() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			native, err := Compile(a.Name+".c", a.Profile(workloads.Test))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(native, TransformOptions{Guard: true})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			want := sequentialOutput(t, native)
			for _, nt := range guardThreads {
				res, err := GuardedRun(native, tr, RunOptions{Threads: nt})
				if err != nil {
					t.Fatalf("threads=%d: %v", nt, err)
				}
				if res.FellBack || res.Violation != nil {
					t.Fatalf("threads=%d: unexpected violation:\n%s", nt, res.Violation)
				}
				if res.Result.Output != want {
					t.Fatalf("threads=%d: output %q, want %q", nt, res.Result.Output, want)
				}
			}
		})
	}
}

// TestGuardStandardWorkloadsClean: the eight paper workloads transform
// with guard markers and run guarded with zero violations and
// unchanged output — the guard must not misfire on correct expansions.
func TestGuardStandardWorkloadsClean(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			native, err := Compile(w.Name+".c", w.Source(workloads.Test))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tr, err := Transform(native, TransformOptions{Guard: true})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			want := sequentialOutput(t, native)
			res, err := GuardedRun(native, tr, RunOptions{Threads: 4})
			if err != nil {
				t.Fatalf("guarded run: %v", err)
			}
			if res.FellBack || res.Violation != nil {
				t.Fatalf("unexpected violation:\n%s", res.Violation)
			}
			if res.Result.Output != want {
				t.Fatalf("output %q, want %q", res.Result.Output, want)
			}
		})
	}
}

// TestGuardBothEngines: the monitor attaches at the shared hook layer,
// so both engines must detect the same violation and produce the same
// fallback output.
func TestGuardBothEngines(t *testing.T) {
	a := workloads.AdversarialStencil()
	native, tr := guardTransform(t, a)
	want := sequentialOutput(t, native)
	for _, eng := range []Engine{EngineCompiled, EngineTree} {
		res, err := GuardedRun(native, tr, RunOptions{Threads: 4, Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !res.FellBack || res.Violation == nil {
			t.Fatalf("engine %v: expected a violation", eng)
		}
		if res.Result.Output != want {
			t.Fatalf("engine %v: output %q, want %q", eng, res.Result.Output, want)
		}
	}
}
