package gdsx

// Cross-validation of the execution engines. The closure-compiling
// engine — with the optimization pipeline off and on — must be
// observationally identical to the tree-walking reference:
// byte-identical program output, identical exit codes, and identical
// instruction-category counters — for every workload, under every
// expansion configuration, at every thread count. Spin counts
// (CatWait) depend on real scheduling and are only compared at one
// thread, where no ordered-section waiting can occur. Memory-op counts
// must match exactly for the unoptimized engine; the optimized engine
// is exempt from that one comparison, since register promotion
// deliberately removes the memory traffic of scalar locals (allocator
// statistics still match exactly: promoted variables keep their
// stack slots).

import (
	"fmt"
	"testing"

	"gdsx/internal/expand"
	"gdsx/internal/interp"
	"gdsx/internal/workloads"
)

// engineVariants builds the program variants each workload is
// cross-validated on: the native source plus its expanded forms under
// the optimized and unoptimized configurations.
func engineVariants(t *testing.T, w *workloads.Workload) map[string]string {
	t.Helper()
	src := w.Source(workloads.Test)
	prog, err := Compile(w.Name+".c", src)
	if err != nil {
		t.Fatalf("%s: compile: %v", w.Name, err)
	}
	variants := map[string]string{"native": src}
	un := expand.Unoptimized()
	for name, eopts := range map[string]*expand.Options{"opt": nil, "unopt": &un} {
		tr, err := Transform(prog, TransformOptions{Expand: eopts})
		if err != nil {
			t.Fatalf("%s: transform (%s): %v", w.Name, name, err)
		}
		variants[name] = tr.Source
	}
	return variants
}

func TestEngineCrossValidation(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for vname, src := range engineVariants(t, w) {
				for _, n := range []int{1, 2, 4, 8} {
					// An un-expanded program with parallel annotations is
					// exactly what the paper calls incorrect: its threads
					// race, so its parallel runs are not deterministic under
					// either engine. Cross-validate the native variant
					// sequentially only.
					if vname == "native" && n > 1 {
						continue
					}
					tree, err := RunSource(w.Name+".c", src,
						RunOptions{Threads: n, Engine: EngineTree})
					if err != nil {
						t.Fatalf("%s/N=%d: tree run: %v", vname, n, err)
					}
					for ename, eng := range map[string]Engine{
						"noopt": EngineCompiledNoOpt,
						"opt":   EngineCompiled,
					} {
						label := fmt.Sprintf("%s/%s/N=%d", vname, ename, n)
						comp, err := RunSource(w.Name+".c", src,
							RunOptions{Threads: n, Engine: eng})
						if err != nil {
							t.Fatalf("%s: compiled run: %v", label, err)
						}
						if comp.Output != tree.Output {
							t.Errorf("%s: output diverges (%d vs %d bytes)",
								label, len(comp.Output), len(tree.Output))
						}
						if comp.Exit != tree.Exit {
							t.Errorf("%s: exit %d != %d", label, comp.Exit, tree.Exit)
						}
						if comp.Counters[interp.CatWork] != tree.Counters[interp.CatWork] {
							t.Errorf("%s: work counter %d != %d", label,
								comp.Counters[interp.CatWork], tree.Counters[interp.CatWork])
						}
						if comp.Counters[interp.CatSync] != tree.Counters[interp.CatSync] {
							t.Errorf("%s: sync counter %d != %d", label,
								comp.Counters[interp.CatSync], tree.Counters[interp.CatSync])
						}
						// Spin counts are timing-dependent under real parallel
						// DOACROSS execution; with one thread they must agree.
						if n == 1 && comp.Counters[interp.CatWait] != tree.Counters[interp.CatWait] {
							t.Errorf("%s: wait counter %d != %d", label,
								comp.Counters[interp.CatWait], tree.Counters[interp.CatWait])
						}
						// Register promotion keeps memory byte-identical but
						// stops counting the promoted scalars' traffic, so the
						// op count is only required to match without it.
						if eng == EngineCompiledNoOpt && comp.MemOps != tree.MemOps {
							t.Errorf("%s: memory ops %d != %d", label, comp.MemOps, tree.MemOps)
						}
						// End-state allocator statistics are deterministic at any
						// thread count; the high-water marks depend on how
						// concurrent allocations interleave, so they are only
						// required to match for sequential runs.
						if comp.MemStats.Live != tree.MemStats.Live ||
							comp.MemStats.Allocs != tree.MemStats.Allocs ||
							comp.MemStats.Blocks != tree.MemStats.Blocks {
							t.Errorf("%s: allocator stats %+v != %+v", label,
								comp.MemStats, tree.MemStats)
						}
						if n == 1 && comp.MemStats != tree.MemStats {
							t.Errorf("%s: allocator high water %+v != %+v", label,
								comp.MemStats, tree.MemStats)
						}
					}
				}
			}
		})
	}
}

// TestEngineHooksParity runs the dependence profiler — the heaviest
// Hooks consumer — under both engines and requires identical graphs.
func TestEngineHooksParity(t *testing.T) {
	w := workloads.ByName("dijkstra")
	src := w.Source(workloads.Test)
	graphs := map[Engine]string{}
	for _, eng := range []Engine{EngineTree, EngineCompiled} {
		prog, err := Compile(w.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range prog.ParallelLoops() {
			pr, err := prog.ProfileLoop(id, RunOptions{Engine: eng})
			if err != nil {
				t.Fatalf("engine %v: profile loop %d: %v", eng, id, err)
			}
			graphs[eng] += fmt.Sprintf("loop %d:\n%s", id, pr.Graph.String())
		}
	}
	if graphs[EngineTree] != graphs[EngineCompiled] {
		t.Errorf("dependence graphs diverge between engines:\ntree:\n%s\ncompiled:\n%s",
			graphs[EngineTree], graphs[EngineCompiled])
	}
}

// TestEngineTraceParity compares the schedule-simulator input (loop
// traces) produced by the two engines.
func TestEngineTraceParity(t *testing.T) {
	w := workloads.ByName("md5")
	src := w.Source(workloads.Test)
	var traces [2][]*interp.LoopTrace
	for i, eng := range []Engine{EngineTree, EngineCompiled} {
		res, err := RunSource(w.Name+".c", src, RunOptions{Threads: 1, Trace: true, Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		traces[i] = res.Traces
	}
	if len(traces[0]) != len(traces[1]) {
		t.Fatalf("trace count %d != %d", len(traces[1]), len(traces[0]))
	}
	for i := range traces[0] {
		a, b := traces[0][i], traces[1][i]
		if a.LoopID != b.LoopID || a.Kind != b.Kind || len(a.Iters) != len(b.Iters) {
			t.Fatalf("trace %d shape diverges", i)
		}
		for j := range a.Iters {
			if a.Iters[j] != b.Iters[j] {
				t.Errorf("trace %d iter %d: %+v != %+v", i, j, b.Iters[j], a.Iters[j])
			}
		}
	}
}
