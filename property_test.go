package gdsx

// End-to-end property test: randomly generated programs in the paper's
// privatization pattern (scratch structures rewritten and consumed by
// every iteration) must transform cleanly and produce output identical
// to native execution at every thread count. The generator draws the
// scratch structures from the dimensions the paper's Table 1 spans —
// global scalar/array, outer local scalar/array, heap buffer with
// constant or runtime size, optionally recast to short — under both
// DOALL and ordered DOACROSS loops.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

type genProgram struct {
	decls    []string
	funcs    []string
	init     []string
	writes   []string
	reads    []string
	frees    []string
	doacross bool
	useCtx   bool
	useMk    bool
}

func genSource(rng *rand.Rand) string {
	g := &genProgram{doacross: rng.Intn(2) == 0}
	nStruct := 1 + rng.Intn(3)
	for s := 0; s < nStruct; s++ {
		size := 8 + rng.Intn(24)
		name := fmt.Sprintf("scr%d", s)
		switch rng.Intn(8) {
		case 0: // global array
			g.decls = append(g.decls, fmt.Sprintf("int %s[%d];", name, size))
		case 1: // outer local array
			g.init = append(g.init, fmt.Sprintf("int %s[%d];", name, size))
		case 2: // heap buffer, constant size
			g.init = append(g.init, fmt.Sprintf("int *%s = (int*)malloc(%d);", name, size*4))
			g.frees = append(g.frees, fmt.Sprintf("free(%s);", name))
		case 3: // heap buffer, runtime size (forces fat-pointer spans)
			g.init = append(g.init, fmt.Sprintf("int %s_n = %d + dyn();", name, size))
			g.init = append(g.init, fmt.Sprintf("int *%s = (int*)malloc(%s_n * 4);", name, name))
			g.frees = append(g.frees, fmt.Sprintf("free(%s);", name))
		case 4: // global scalar accumulator reset each iteration
			g.decls = append(g.decls, fmt.Sprintf("int %s;", name))
			g.writes = append(g.writes, fmt.Sprintf("%s = it;", name))
			g.reads = append(g.reads, fmt.Sprintf("acc += %s;", name))
			continue
		case 5: // pointer held in a struct field (field promotion)
			if !g.useCtx {
				g.useCtx = true
				g.decls = append(g.decls, "struct ctx { int id; int *data; };")
			}
			cname := fmt.Sprintf("c%d", s)
			g.init = append(g.init,
				fmt.Sprintf("struct ctx %s;", cname),
				fmt.Sprintf("%s.data = (int*)malloc((%d + dyn()) * 4);", cname, size))
			g.writes = append(g.writes, fmt.Sprintf(
				"for (k = 0; k < %d; k++) { %s.data[k] = it + k * %d; }", size, cname, s+1))
			g.reads = append(g.reads, fmt.Sprintf(
				"for (k = 0; k < %d; k++) { acc += %s.data[k]; }", size, cname))
			g.frees = append(g.frees, fmt.Sprintf("free(%s.data);", cname))
			continue
		case 6: // buffer from a pointer-returning function (return promotion)
			if !g.useMk {
				g.useMk = true
				g.funcs = append(g.funcs,
					"int *mkbuf(int c, int n) { if (c > 0) { return (int*)malloc(n * 4); } return (int*)malloc(n * 8); }")
			}
			g.init = append(g.init, fmt.Sprintf("int *%s = mkbuf(%d, %d + dyn());", name, rng.Intn(2), size))
			g.frees = append(g.frees, fmt.Sprintf("free(%s);", name))
		case 7: // conditional selection between two buffers
			g.init = append(g.init,
				fmt.Sprintf("int *%sa = (int*)malloc((%d + dyn()) * 4);", name, size),
				fmt.Sprintf("int *%sb = (int*)malloc((%d + dyn()) * 8);", name, size))
			g.writes = append(g.writes, fmt.Sprintf(
				"{ int *sel%d = it %% 2 ? %sa : %sb; for (k = 0; k < %d; k++) { sel%d[k] = it - k; } "+
					"for (k = 0; k < %d; k++) { acc += sel%d[k]; } }",
				s, name, name, size, s, size, s))
			g.frees = append(g.frees,
				fmt.Sprintf("free(%sa);", name), fmt.Sprintf("free(%sb);", name))
			continue
		}
		if rng.Intn(3) == 0 {
			// Pointer-walk write (p = p + 1): exercises span
			// dead-store elimination under promotion.
			g.writes = append(g.writes, fmt.Sprintf(
				"{ int *w%d = %s; for (k = 0; k < %d; k++) { *w%d = it * %d + k; w%d = w%d + 1; } }",
				s, name, size, s, s+1, s, s))
		} else {
			g.writes = append(g.writes, fmt.Sprintf(
				"for (k = 0; k < %d; k++) { %s[k] = it * %d + k; }", size, name, s+1))
		}
		if rng.Intn(4) == 0 {
			// Recast consumption (the bzip2 pattern).
			g.init = append(g.init, "")
			g.writes = append(g.writes, fmt.Sprintf(
				"{ short *sp%d = (short*)%s; for (k = 0; k < %d; k++) { acc += sp%d[k]; } }",
				s, name, size*2, s))
		}
		g.reads = append(g.reads, fmt.Sprintf(
			"for (k = 0; k < %d; k++) { acc += %s[k]; }", size, name))
	}

	iters := 6 + rng.Intn(10)
	var sb strings.Builder
	sb.WriteString("int dyn() { return 3; }\n")
	for _, d := range g.decls {
		sb.WriteString(d + "\n")
	}
	for _, f := range g.funcs {
		sb.WriteString(f + "\n")
	}
	sb.WriteString("int main() {\n")
	for _, s := range g.init {
		if s != "" {
			sb.WriteString("    " + s + "\n")
		}
	}
	fmt.Fprintf(&sb, "    int *out = (int*)malloc(%d * 4);\n", iters)
	sb.WriteString("    long chain = 0;\n    int it;\n")
	kind := "parallel for"
	if g.doacross {
		kind = "parallel doacross for"
	}
	fmt.Fprintf(&sb, "    %s (it = 0; it < %d; it++) {\n", kind, iters)
	sb.WriteString("        int k;\n        int acc = 0;\n")
	for _, w := range g.writes {
		sb.WriteString("        " + w + "\n")
	}
	for _, r := range g.reads {
		sb.WriteString("        " + r + "\n")
	}
	sb.WriteString("        out[it] = acc;\n")
	if g.doacross {
		sb.WriteString("        chain = chain * 31 + acc;\n")
	}
	sb.WriteString("    }\n")
	fmt.Fprintf(&sb, "    long total = chain;\n    for (it = 0; it < %d; it++) { total = total * 7 + out[it]; }\n", iters)
	sb.WriteString("    print_long(total);\n    print_char('\\n');\n")
	for _, f := range g.frees {
		sb.WriteString("    " + f + "\n")
	}
	sb.WriteString("    free(out);\n    return 0;\n}\n")
	return sb.String()
}

func TestRandomProgramsSurviveExpansion(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is not short")
	}
	const cases = 40
	for seed := int64(0); seed < cases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src := genSource(rng)
			prog, err := Compile("gen.c", src)
			if err != nil {
				t.Fatalf("compile generated program: %v\n%s", err, src)
			}
			native, err := prog.Run(RunOptions{Threads: 1})
			if err != nil {
				t.Fatalf("native: %v\n%s", err, src)
			}
			tr, err := Transform(prog, TransformOptions{})
			if err != nil {
				t.Fatalf("transform: %v\n%s", err, src)
			}
			for _, n := range []int{1, 3, 8} {
				got, err := RunSource("gen-x.c", tr.Source, RunOptions{Threads: n})
				if err != nil {
					t.Fatalf("N=%d: %v\n--- generated ---\n%s\n--- transformed ---\n%s",
						n, err, src, tr.Source)
				}
				if got.Output != native.Output {
					t.Fatalf("N=%d: output %q != native %q\n--- generated ---\n%s\n--- transformed ---\n%s",
						n, got.Output, native.Output, src, tr.Source)
				}
			}
		})
	}
}
