package gdsx

// The expansion pass's documented restrictions must fail loudly with
// actionable diagnostics, never silently miscompile.

import (
	"strings"
	"testing"

	"gdsx/internal/expand"
)

func transformErr(t *testing.T, src string, opts *expand.Options) error {
	t.Helper()
	prog, err := Compile("err.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	_, err = Transform(prog, TransformOptions{Expand: opts})
	return err
}

func TestErrorExpandParameterStorage(t *testing.T) {
	// The address of a parameter escapes into the loop and is written
	// privately: parameters' own storage cannot be expanded.
	err := transformErr(t, `
int work(int seed) {
    int *p = &seed;
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        *p = it;
        out[it] = *p + 1;
    }
    int s = out[0];
    free(out);
    return s;
}
int main() { return work(3); }`, nil)
	if err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorReallocExpanded(t *testing.T) {
	err := transformErr(t, `
int main() {
    int *buf = (int*)malloc(64);
    buf = (int*)realloc(buf, 128);
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int k;
        for (k = 0; k < 16; k++) { buf[k] = it + k; }
        out[it] = buf[0] + buf[15];
    }
    long s = 0;
    for (it = 0; it < 8; it++) { s += out[it]; }
    print_long(s);
    free(buf);
    free(out);
    return 0;
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "realloc") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorMultiDimGlobalExpansion(t *testing.T) {
	err := transformErr(t, `
int grid[8][8];
int main() {
    int *out = (int*)malloc(6 * 4);
    int it;
    parallel for (it = 0; it < 6; it++) {
        int k;
        for (k = 0; k < 8; k++) { grid[k][k] = it + k; }
        out[it] = grid[0][0] + grid[7][7];
    }
    long s = 0;
    for (it = 0; it < 6; it++) { s += out[it]; }
    print_long(s);
    free(out);
    return 0;
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "multi-dimensional") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorAddressOfPromotedPointer(t *testing.T) {
	// &p where p must become a fat pointer would require double-level
	// promotion; the pass rejects it.
	err := transformErr(t, `
int dyn() { return 16; }
int main() {
    int n = dyn();
    int *buf = (int*)malloc(n * 4);
    int **pp = &buf;
    int *out = (int*)malloc(4 * 4);
    int it;
    parallel for (it = 0; it < 4; it++) {
        int k;
        for (k = 0; k < n; k++) { (*pp)[k] = it + k; }
        out[it] = buf[0];
    }
    long s = 0;
    for (it = 0; it < 4; it++) { s += out[it]; }
    print_long(s);
    free(buf);
    free(out);
    return 0;
}`, nil)
	if err == nil {
		t.Fatalf("expected a diagnostic for &promoted-pointer, got success")
	}
}

func TestErrorInterleavedNonHeap(t *testing.T) {
	opts := expand.Optimized()
	opts.Layout = expand.Interleaved
	err := transformErr(t, `
int scratch[16];
int main() {
    int *out = (int*)malloc(4 * 4);
    int it;
    parallel for (it = 0; it < 4; it++) {
        int k;
        for (k = 0; k < 16; k++) { scratch[k] = it + k; }
        out[it] = scratch[0];
    }
    long s = 0;
    for (it = 0; it < 4; it++) { s += out[it]; }
    print_long(s);
    free(out);
    return 0;
}`, &opts)
	if err == nil || !strings.Contains(err.Error(), "heap structures only") {
		t.Fatalf("err = %v", err)
	}
}

func TestOptionsPresets(t *testing.T) {
	o := expand.Optimized()
	if !o.AliasFilter || !o.ConstSpan || !o.SpanDSE || !o.HoistBases {
		t.Fatalf("Optimized() = %+v", o)
	}
	u := expand.Unoptimized()
	if u.AliasFilter || u.ConstSpan || u.SpanDSE || u.HoistBases {
		t.Fatalf("Unoptimized() = %+v", u)
	}
	if o.Layout != expand.Bonded || u.Layout != expand.Bonded {
		t.Fatalf("default layout must be bonded")
	}
	for l, want := range map[expand.Layout]string{
		expand.Bonded:      "bonded",
		expand.Interleaved: "interleaved",
		expand.Adaptive:    "adaptive",
	} {
		if l.String() != want {
			t.Errorf("Layout(%d).String() = %q", l, l.String())
		}
	}
}
