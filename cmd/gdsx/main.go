// Command gdsx is the driver for the general data structure expansion
// pipeline: it runs MiniC programs, profiles loop-level data
// dependences, prints Definition 5 classifications, and applies the
// expansion transformation, printing the transformed source.
//
// Usage:
//
//	gdsx run     [-threads N] [-seq] [-engine E] file.c  run a program
//	gdsx profile [-loop ID] [-json] file.c        profile dependences
//	gdsx expand  [-unopt] [-interleaved|-adaptive] file.c  transform and print
//	gdsx pipeline [-threads N] [-guard] file.c    transform, then run
//
// With -guard, the pipeline runs under the dependence-violation
// monitor: accesses are checked at each parallel region's end against
// the expansion's assumptions, and on violation the run falls back to
// sequential re-execution of the native program (see gdsx.GuardedRun).
// Adding -recover upgrades the fallback to region-scoped rollback: the
// violating (or faulting, or -region-timeout-exceeding) region alone
// re-executes sequentially and the rest of the run stays parallel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gdsx"
	"gdsx/internal/ddg"
	"gdsx/internal/expand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = runCmd(args)
	case "profile":
		err = profileCmd(args)
	case "expand":
		err = expandCmd(args)
	case "pipeline":
		err = pipelineCmd(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsx:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gdsx run      [-threads N] [-seq] [-engine compiled|tree] file.c
  gdsx profile  [-loop ID] [-json] file.c
  gdsx expand   [-unopt] [-interleaved|-adaptive] file.c
  gdsx pipeline [-threads N] [-engine compiled|tree] [-guard] [-recover]
                [-region-timeout D] [-profile-input train.c] file.c`)
	os.Exit(2)
}

func compileArg(fs *flag.FlagSet) (*gdsx.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one source file")
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return gdsx.Compile(file, string(src))
}

// engineFlag parses the -engine flag value ("compiled" or "tree").
func engineFlag(name string) (gdsx.Engine, error) {
	eng, ok := gdsx.EngineFromString(name)
	if !ok {
		return eng, fmt.Errorf("unknown engine %q (want compiled or tree)", name)
	}
	return eng, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	threads := fs.Int("threads", 1, "simulated thread count")
	seq := fs.Bool("seq", false, "force sequential execution of parallel loops")
	engineName := fs.String("engine", "compiled", "execution engine: compiled or tree")
	fs.Parse(args)
	engine, err := engineFlag(*engineName)
	if err != nil {
		return err
	}
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	res, err := prog.Run(gdsx.RunOptions{Threads: *threads, ForceSequential: *seq, Engine: engine})
	if err != nil {
		return err
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "exit=%d ops=%d mem-high-water=%d\n",
		res.Exit, res.Counters[0], res.MemStats.HighWaterData)
	return nil
}

func profileCmd(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	loopID := fs.Int("loop", 0, "loop ID to profile (default: every parallel loop)")
	asJSON := fs.Bool("json", false, "emit the dependence graphs as JSON for programmer verification")
	fs.Parse(args)
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	loops := prog.ParallelLoops()
	if *loopID != 0 {
		loops = []int{*loopID}
	}
	if len(loops) == 0 {
		return fmt.Errorf("no parallel loops; annotate one with 'parallel for'")
	}
	if *asJSON {
		graphs := map[int]*ddg.Graph{}
		for _, id := range loops {
			pr, err := prog.ProfileLoop(id, gdsx.RunOptions{})
			if err != nil {
				return err
			}
			graphs[id] = pr.Graph
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(graphs)
	}
	for _, id := range loops {
		pr, cls, err := prog.ClassifyLoop(id, gdsx.RunOptions{})
		if err != nil {
			return err
		}
		li, _ := prog.Loop(id)
		fmt.Printf("loop %d in %s (%s), %d iterations profiled\n",
			id, li.Func.Name, li.Par, pr.Iterations)
		fmt.Print(pr.Graph.String())
		for _, c := range cls.Classes {
			kind := "shared"
			if c.Private {
				kind = "PRIVATE"
			}
			fmt.Printf("  class %d (%s): sites %v\n", c.ID, kind, c.Sites)
			for _, s := range c.Sites {
				as := prog.Info.Accesses[s]
				if as != nil {
					rw := "load"
					if as.IsStore {
						rw = "store"
					}
					fmt.Printf("    %4d %-5s %-24s %s\n", s, rw, as.Text, as.Pos)
				}
			}
		}
		b := ddg.BreakdownOf(pr.Graph, cls)
		fmt.Printf("  dynamic accesses: %d free / %d expandable / %d carried (of %d)\n\n",
			b.Free, b.Expandable, b.Carried, b.Total)
	}
	return nil
}

func expandOpts(unopt, interleaved, adaptive *bool) *expand.Options {
	opts := expand.Optimized()
	if *unopt {
		opts = expand.Unoptimized()
	}
	if *interleaved {
		opts.Layout = expand.Interleaved
	}
	if *adaptive {
		opts.Layout = expand.Adaptive
	}
	return &opts
}

func expandCmd(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	unopt := fs.Bool("unopt", false, "disable the §3.4 optimizations")
	inter := fs.Bool("interleaved", false, "use the interleaved copy layout")
	adaptive := fs.Bool("adaptive", false, "choose the copy layout automatically (paper §6)")
	fs.Parse(args)
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{Expand: expandOpts(unopt, inter, adaptive)})
	if err != nil {
		return err
	}
	fmt.Print(tr.Source)
	for _, rep := range tr.Reports {
		fmt.Fprintf(os.Stderr, "loops %v: %d structures expanded (%s layout), %d pointers promoted, "+
			"%d span stores (+%d elided), ordered sections in loops %v\n",
			rep.LoopIDs, rep.Structures, rep.LayoutUsed, len(rep.Promoted),
			rep.SpanStores, rep.SpanStoresElided, rep.SyncPlaced)
		var objs []string
		for _, o := range rep.Expanded {
			objs = append(objs, o.String())
		}
		sort.Strings(objs)
		fmt.Fprintf(os.Stderr, "expanded: %v\npromoted: %v\n", objs, rep.Promoted)
	}
	return nil
}

func pipelineCmd(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	threads := fs.Int("threads", 4, "simulated thread count")
	engineName := fs.String("engine", "compiled", "execution engine: compiled or tree")
	guarded := fs.Bool("guard", false,
		"run under the dependence-violation monitor with sequential fallback")
	recoverRegions := fs.Bool("recover", false,
		"with -guard: roll back and re-execute a violating region sequentially "+
			"instead of discarding the whole run")
	regionTimeout := fs.Duration("region-timeout", 0,
		"with -recover: watchdog limit per parallel region (e.g. 500ms; 0 = unbounded)")
	profileInput := fs.String("profile-input", "",
		"alternate source file for the profiling runs (train/ref input split)")
	fs.Parse(args)
	engine, err := engineFlag(*engineName)
	if err != nil {
		return err
	}
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	native, err := prog.Run(gdsx.RunOptions{Threads: 1, Engine: engine})
	if err != nil {
		return err
	}
	topts := gdsx.TransformOptions{Guard: *guarded}
	if *profileInput != "" {
		psrc, err := os.ReadFile(*profileInput)
		if err != nil {
			return err
		}
		topts.ProfileSource = string(psrc)
	}
	ropts := gdsx.RunOptions{Threads: *threads, Engine: engine, RegionTimeout: *regionTimeout}
	if *recoverRegions && !*guarded {
		return fmt.Errorf("-recover requires -guard")
	}
	if *recoverRegions {
		ropts.Recover = &gdsx.RecoverySpec{}
	}
	if *guarded {
		tr, err := gdsx.Transform(prog, topts)
		if err != nil {
			return err
		}
		res, err := gdsx.GuardedRun(prog, tr, ropts)
		if err != nil {
			return err
		}
		fmt.Print(res.Result.Output)
		switch {
		case res.FellBack:
			fmt.Fprintf(os.Stderr, "guard: dependence violation detected; "+
				"parallel run discarded, output is the sequential re-execution\n%s\n",
				res.Violation)
		case res.Recovered > 0:
			fmt.Fprintf(os.Stderr, "guard: %d region failure(s) recovered by "+
				"rollback; the rest of the run stayed parallel\n", res.Recovered)
		default:
			fmt.Fprintf(os.Stderr, "guard: %d-thread run completed, no violations\n", *threads)
		}
		for _, r := range res.Regions {
			fmt.Fprintf(os.Stderr,
				"guard: region loop#%d: %d parallel, %d sequential, %d rollback(s)"+
					" (%d violation(s), %d fault(s), %d timeout(s))",
				r.Loop, r.ParallelRuns, r.SeqRuns, r.Rollbacks,
				r.Violations, r.Faults, r.Timeouts)
			if r.Demoted {
				fmt.Fprint(os.Stderr, " [demoted]")
			}
			if r.LastFailure != "" {
				fmt.Fprintf(os.Stderr, " last: %s", r.LastFailure)
			}
			fmt.Fprintln(os.Stderr)
		}
		status := "MATCH"
		if res.Result.Output != native.Output {
			status = "MISMATCH"
		}
		fmt.Fprintf(os.Stderr, "native vs guarded %d-thread expanded: %s (%d structures expanded)\n",
			*threads, status, tr.Reports[0].Structures)
		return nil
	}
	tr, out, err := gdsx.TransformAndRun(prog, topts, ropts)
	if err != nil {
		return err
	}
	fmt.Print(out.Output)
	status := "MATCH"
	if out.Output != native.Output {
		status = "MISMATCH"
	}
	fmt.Fprintf(os.Stderr, "native vs %d-thread expanded: %s (%d structures expanded)\n",
		*threads, status, tr.Reports[0].Structures)
	return nil
}
