// Command gdsx is the driver for the general data structure expansion
// pipeline: it runs MiniC programs, profiles loop-level data
// dependences, prints Definition 5 classifications, and applies the
// expansion transformation, printing the transformed source.
//
// Usage:
//
//	gdsx run     [-threads N] [-seq] [-engine E] file.c  run a program
//	gdsx profile [-loop ID] [-json] file.c        profile dependences
//	gdsx expand  [-unopt] [-interleaved|-adaptive] file.c  transform and print
//	gdsx pipeline [-threads N] [-guard] file.c    transform, then run
//
// With -guard, the pipeline runs under the dependence-violation
// monitor: accesses are checked at each parallel region's end against
// the expansion's assumptions, and on violation the run falls back to
// sequential re-execution of the native program (see gdsx.GuardedRun).
// Adding -recover upgrades the fallback to region-scoped rollback: the
// violating (or faulting, or -region-timeout-exceeding) region alone
// re-executes sequentially and the rest of the run stays parallel.
// Adding -sample-k K engages tiered guard sampling: after a clean
// streak the monitor checks only every k-th iteration, escalating back
// to full guarding on any suspicious access. -adapt runs the whole
// adaptive ladder (gdsx.AdaptiveRun): sampling, recovery, and — on
// repeated violations at one site pair — runtime re-expansion with a
// flipped copy layout or a halved copy count; with -metrics, the
// ladder's per-region tiers, strikes and final layout land in the
// registry output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gdsx"
	"gdsx/internal/ddg"
	"gdsx/internal/expand"
	"gdsx/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = runCmd(args)
	case "profile":
		err = profileCmd(args)
	case "expand":
		err = expandCmd(args)
	case "pipeline":
		err = pipelineCmd(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsx:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gdsx run      [-threads N] [-seq] [-engine compiled|compiled-noopt|tree]
                [-opt-profile sites.json] file.c
  gdsx profile  [-loop ID] [-json] file.c
  gdsx expand   [-unopt] [-interleaved|-adaptive] file.c
  gdsx pipeline [-threads N] [-engine compiled|compiled-noopt|tree] [-guard]
                [-recover] [-adapt] [-sample-k K] [-region-timeout D]
                [-profile-input train.c]
                [-hotspots] [-hotspots-json sites.json]
                [-opt-profile sites.json] file.c`)
	os.Exit(2)
}

func compileArg(fs *flag.FlagSet) (*gdsx.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one source file")
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return gdsx.Compile(file, string(src))
}

// engineFlag parses the -engine flag value ("compiled",
// "compiled-noopt" or "tree").
func engineFlag(name string) (gdsx.Engine, error) {
	eng, ok := gdsx.EngineFromString(name)
	if !ok {
		return eng, fmt.Errorf("unknown engine %q (want compiled, compiled-noopt or tree)", name)
	}
	return eng, nil
}

// readOptProfile loads a hot-site profile (the JSON a previous
// `pipeline -hotspots -hotspots-json` run wrote) for the compiled
// engine's site specializer. An empty path means no profile.
func readOptProfile(path string) (*gdsx.SiteProfile, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reps []obs.SiteReport
	if err := json.Unmarshal(data, &reps); err != nil {
		return nil, fmt.Errorf("opt-profile %s: %w", path, err)
	}
	return gdsx.SiteProfileFromReports(reps), nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	threads := fs.Int("threads", 1, "simulated thread count")
	seq := fs.Bool("seq", false, "force sequential execution of parallel loops")
	engineName := fs.String("engine", "compiled", "execution engine: compiled, compiled-noopt or tree")
	optProfile := fs.String("opt-profile", "",
		"hot-site profile JSON (from pipeline -hotspots-json) for site specialization")
	fs.Parse(args)
	engine, err := engineFlag(*engineName)
	if err != nil {
		return err
	}
	sites, err := readOptProfile(*optProfile)
	if err != nil {
		return err
	}
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	res, err := prog.Run(gdsx.RunOptions{Threads: *threads, ForceSequential: *seq,
		Engine: engine, OptProfile: sites})
	if err != nil {
		return err
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "exit=%d ops=%d mem-high-water=%d\n",
		res.Exit, res.Counters[0], res.MemStats.HighWaterData)
	return nil
}

func profileCmd(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	loopID := fs.Int("loop", 0, "loop ID to profile (default: every parallel loop)")
	asJSON := fs.Bool("json", false, "emit the dependence graphs as JSON for programmer verification")
	fs.Parse(args)
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	loops := prog.ParallelLoops()
	if *loopID != 0 {
		loops = []int{*loopID}
	}
	if len(loops) == 0 {
		return fmt.Errorf("no parallel loops; annotate one with 'parallel for'")
	}
	if *asJSON {
		graphs := map[int]*ddg.Graph{}
		for _, id := range loops {
			pr, err := prog.ProfileLoop(id, gdsx.RunOptions{})
			if err != nil {
				return err
			}
			graphs[id] = pr.Graph
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(graphs)
	}
	for _, id := range loops {
		pr, cls, err := prog.ClassifyLoop(id, gdsx.RunOptions{})
		if err != nil {
			return err
		}
		li, _ := prog.Loop(id)
		fmt.Printf("loop %d in %s (%s), %d iterations profiled\n",
			id, li.Func.Name, li.Par, pr.Iterations)
		fmt.Print(pr.Graph.String())
		for _, c := range cls.Classes {
			kind := "shared"
			if c.Private {
				kind = "PRIVATE"
			}
			fmt.Printf("  class %d (%s): sites %v\n", c.ID, kind, c.Sites)
			for _, s := range c.Sites {
				as := prog.Info.Accesses[s]
				if as != nil {
					rw := "load"
					if as.IsStore {
						rw = "store"
					}
					fmt.Printf("    %4d %-5s %-24s %s\n", s, rw, as.Text, as.Pos)
				}
			}
		}
		b := ddg.BreakdownOf(pr.Graph, cls)
		fmt.Printf("  dynamic accesses: %d free / %d expandable / %d carried (of %d)\n\n",
			b.Free, b.Expandable, b.Carried, b.Total)
	}
	return nil
}

func expandOpts(unopt, interleaved, adaptive *bool) *expand.Options {
	opts := expand.Optimized()
	if *unopt {
		opts = expand.Unoptimized()
	}
	if *interleaved {
		opts.Layout = expand.Interleaved
	}
	if *adaptive {
		opts.Layout = expand.Adaptive
	}
	return &opts
}

func expandCmd(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	unopt := fs.Bool("unopt", false, "disable the §3.4 optimizations")
	inter := fs.Bool("interleaved", false, "use the interleaved copy layout")
	adaptive := fs.Bool("adaptive", false, "choose the copy layout automatically (paper §6)")
	fs.Parse(args)
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{Expand: expandOpts(unopt, inter, adaptive)})
	if err != nil {
		return err
	}
	fmt.Print(tr.Source)
	for _, rep := range tr.Reports {
		fmt.Fprintf(os.Stderr, "loops %v: %d structures expanded (%s layout), %d pointers promoted, "+
			"%d span stores (+%d elided), ordered sections in loops %v\n",
			rep.LoopIDs, rep.Structures, rep.LayoutUsed, len(rep.Promoted),
			rep.SpanStores, rep.SpanStoresElided, rep.SyncPlaced)
		var objs []string
		for _, o := range rep.Expanded {
			objs = append(objs, o.String())
		}
		sort.Strings(objs)
		fmt.Fprintf(os.Stderr, "expanded: %v\npromoted: %v\n", objs, rep.Promoted)
	}
	return nil
}

func pipelineCmd(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	threads := fs.Int("threads", 4, "simulated thread count")
	engineName := fs.String("engine", "compiled", "execution engine: compiled, compiled-noopt or tree")
	guarded := fs.Bool("guard", false,
		"run under the dependence-violation monitor with sequential fallback")
	recoverRegions := fs.Bool("recover", false,
		"with -guard: roll back and re-execute a violating region sequentially "+
			"instead of discarding the whole run")
	adapt := fs.Bool("adapt", false,
		"adaptive guarded execution: guard-sampling tiers, region recovery, and "+
			"runtime re-expansion (layout flip, copy-count halving) on repeated "+
			"violations at one site pair (implies -guard -recover)")
	sampleK := fs.Int("sample-k", 0,
		"with -guard or -adapt: first sampled guard tier — after a clean streak "+
			"the monitor checks every k-th iteration, escalating back to full "+
			"guarding on suspicion (0 = full guarding; -adapt defaults to the "+
			"standard ladder)")
	regionTimeout := fs.Duration("region-timeout", 0,
		"with -recover: watchdog limit per parallel region (e.g. 500ms; 0 = unbounded)")
	profileInput := fs.String("profile-input", "",
		"alternate source file for the profiling runs (train/ref input split)")
	traceOut := fs.String("trace", "",
		"write a Chrome trace-event JSON of the expanded run (load in Perfetto)")
	metricsOut := fs.String("metrics", "",
		"write the run's metrics registry as text ('-' for stderr)")
	hotspots := fs.Bool("hotspots", false,
		"profile per-access hot sites and print the hottest to stderr (expensive)")
	hotspotsOut := fs.String("hotspots-out", "",
		"with -hotspots: also write the full profile as flamegraph folded stacks")
	hotspotsJSON := fs.String("hotspots-json", "",
		"with -hotspots: write the per-site profile as JSON (feed to -opt-profile)")
	optProfile := fs.String("opt-profile", "",
		"hot-site profile JSON from a previous -hotspots-json run; the compiled "+
			"engine specializes the hottest sites' accessors")
	fs.Parse(args)
	engine, err := engineFlag(*engineName)
	if err != nil {
		return err
	}
	sites, err := readOptProfile(*optProfile)
	if err != nil {
		return err
	}
	prog, err := compileArg(fs)
	if err != nil {
		return err
	}
	native, err := prog.Run(gdsx.RunOptions{Threads: 1, Engine: engine})
	if err != nil {
		return err
	}
	topts := gdsx.TransformOptions{Guard: *guarded}
	if *profileInput != "" {
		psrc, err := os.ReadFile(*profileInput)
		if err != nil {
			return err
		}
		topts.ProfileSource = string(psrc)
	}
	ropts := gdsx.RunOptions{Threads: *threads, Engine: engine,
		RegionTimeout: *regionTimeout, OptProfile: sites}
	if *recoverRegions && !*guarded && !*adapt {
		return fmt.Errorf("-recover requires -guard")
	}
	if *sampleK != 0 && !*guarded && !*adapt {
		return fmt.Errorf("-sample-k requires -guard or -adapt")
	}
	if *recoverRegions {
		ropts.Recover = &gdsx.RecoverySpec{}
	}
	switch {
	case *sampleK > 0:
		ropts.Sample = &gdsx.TierSpec{SampleK: *sampleK}
	case *adapt:
		ropts.Sample = &gdsx.TierSpec{}
	}
	if *hotspotsJSON != "" && !*hotspots {
		return fmt.Errorf("-hotspots-json requires -hotspots")
	}
	if *traceOut != "" || *metricsOut != "" || *hotspots {
		ropts.Obs = gdsx.NewObserver(*hotspots)
		// Per-iteration spans are what make the trace worth looking at
		// in Perfetto; a diagnostic pipeline run accepts their cost.
		ropts.Obs.IterSpans = *traceOut != ""
	}
	var tr *gdsx.TransformResult
	if !*adapt {
		// The adaptive driver transforms internally (and re-transforms on
		// a layout flip); transforming here would be wasted work.
		tr, err = gdsx.Transform(prog, topts)
		if err != nil {
			return err
		}
	}
	var out gdsx.Result
	// expanded is the compiled expanded program, which resolves the
	// hot-site profile's access-site IDs to source positions.
	var expanded *gdsx.Program
	if *adapt {
		ares, aerr := gdsx.AdaptiveRun(prog, gdsx.AdaptiveOptions{Transform: topts, Run: ropts})
		if aerr != nil {
			return aerr
		}
		tr = ares.Transform
		res := ares.Final
		out = res.Result
		expanded = res.Expanded
		fmt.Print(out.Output)
		fmt.Fprintf(os.Stderr, "adapt: %d attempt(s), %d re-expansion(s); final: %s layout, "+
			"%d copies, %d suspicion(s), %d region recover(ies)\n",
			ares.Attempts, len(ares.Reexpansions), ares.Layout, ares.Threads,
			res.Suspicions, res.Recovered)
		for _, rx := range ares.Reexpansions {
			if rx.Failed {
				fmt.Fprintf(os.Stderr, "adapt: attempt %d: re-expansion failed: %s\n",
					rx.Attempt, rx.Reason)
				continue
			}
			fmt.Fprintf(os.Stderr, "adapt: attempt %d: loop %d %s sites %d-%d: "+
				"%s -> %s at %d copies\n", rx.Attempt, rx.Loop, rx.Rule,
				rx.Site, rx.OtherSite, rx.From, rx.To, rx.Threads)
		}
		if err := gdsx.RenderHealthReport(os.Stderr, res); err != nil {
			return err
		}
		// Fold the ladder state into the run's registry: per-region tiers,
		// residual strikes, re-expansion decisions — what -metrics renders.
		if ropts.Obs != nil && ropts.Obs.Metrics != nil {
			gdsx.PublishRegionStats(ropts.Obs.Metrics, res.Regions)
			gdsx.PublishGuardReports(ropts.Obs.Metrics, res.Violations)
			gdsx.PublishAdaptiveStats(ropts.Obs.Metrics, ares)
		}
	} else if *guarded {
		res, gerr := gdsx.GuardedRun(prog, tr, ropts)
		if gerr != nil {
			return gerr
		}
		out = res.Result
		expanded = res.Expanded
		fmt.Print(out.Output)
		switch {
		case res.FellBack:
			fmt.Fprintf(os.Stderr, "guard: dependence violation detected; "+
				"parallel run discarded, output is the sequential re-execution\n%s\n",
				res.Violation)
		case res.Recovered > 0:
			fmt.Fprintf(os.Stderr, "guard: %d region failure(s) recovered by "+
				"rollback; the rest of the run stayed parallel\n", res.Recovered)
		default:
			fmt.Fprintf(os.Stderr, "guard: %d-thread run completed, no violations\n", *threads)
		}
		// Region health and violation-rule summary, rendered through the
		// metrics pipeline (one format for reports, -metrics and expvar).
		if err := gdsx.RenderHealthReport(os.Stderr, res); err != nil {
			return err
		}
		// And into the run's own registry, so -metrics output includes it.
		if ropts.Obs != nil && ropts.Obs.Metrics != nil {
			gdsx.PublishRegionStats(ropts.Obs.Metrics, res.Regions)
			gdsx.PublishGuardReports(ropts.Obs.Metrics, res.Violations)
			gdsx.PublishTierStats(ropts.Obs.Metrics, res.Tiers)
		}
	} else {
		expanded, err = gdsx.Compile(prog.File+" (expanded)", tr.Source)
		if err != nil {
			return err
		}
		out, err = expanded.Run(ropts)
		if err != nil {
			return err
		}
		fmt.Print(out.Output)
	}
	status := "MATCH"
	if out.Output != native.Output {
		status = "MISMATCH"
	}
	kind := ""
	if *guarded {
		kind = "guarded "
	}
	if *adapt {
		kind = "adaptive "
	}
	fmt.Fprintf(os.Stderr, "native vs %s%d-thread expanded: %s (%d structures expanded)\n",
		kind, *threads, status, tr.Reports[0].Structures)
	return writeObsOutputs(ropts.Obs, expanded, *traceOut, *metricsOut, *hotspots, *hotspotsOut, *hotspotsJSON)
}

// writeObsOutputs emits the observability artifacts the pipeline flags
// requested: the Chrome trace JSON, the metrics registry text, and the
// hot-site profile (top table on stderr, folded stacks or the raw
// per-site JSON the optimizer's -opt-profile flag re-reads to files).
func writeObsOutputs(o *gdsx.Observer, expanded *gdsx.Program, traceOut, metricsOut string, hotspots bool, hotspotsOut, hotspotsJSON string) error {
	if o == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := o.Trace.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if n := o.Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d events dropped (buffer full)\n", n)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open in https://ui.perfetto.dev)\n",
			o.Trace.Len(), traceOut)
	}
	if metricsOut != "" {
		w := os.Stderr
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := o.Metrics.Render(w); err != nil {
			return err
		}
	}
	if hotspots && o.Hot != nil {
		frames := func(site int) []string { return nil }
		if expanded != nil {
			frames = gdsx.HotSiteFrames(expanded)
		}
		fmt.Fprintln(os.Stderr, "hot sites (top 20, by access count):")
		if err := gdsx.WriteHotSites(os.Stderr, o.Hot, 20, frames); err != nil {
			return err
		}
		if hotspotsOut != "" {
			f, err := os.Create(hotspotsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := o.Hot.Folded(f, frames); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "hotspots: folded stacks -> %s\n", hotspotsOut)
		}
		if hotspotsJSON != "" {
			data, err := json.MarshalIndent(o.Hot.Report(), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(hotspotsJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "hotspots: site profile -> %s (use with -opt-profile)\n",
				hotspotsJSON)
		}
	}
	return nil
}
