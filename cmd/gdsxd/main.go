// Command gdsxd is the long-lived transform-and-run service: it
// accepts {source, input, options} requests over HTTP, runs the full
// parse→sema→expand→execute pipeline with per-request isolation and
// quotas, and degrades gracefully under load. See DESIGN.md §7.
//
// Endpoints:
//
//	POST /run               {"source": "...", "input": "...", "options": {...}}
//	GET  /healthz           process liveness (200 while the process runs)
//	GET  /readyz            traffic readiness (503 once draining)
//	GET  /stats             service counters as JSON
//	GET  /metrics           Prometheus text exposition of the service registry
//	GET  /debug/traces      retained request traces (slowest + recent errors) as JSON index
//	GET  /debug/traces/{id} one retained trace as Chrome trace-event JSON
//
// Every /run response carries an X-Request-ID header (the inbound one
// when the client sent a well-formed X-Request-ID, generated
// otherwise); sending one forces the request to be traced, so its
// trace is retrievable from /debug/traces/{id} afterwards.
//
// SIGTERM or SIGINT starts a graceful drain: in-flight requests
// finish, new ones get 503 draining, and the process exits 0 once the
// listener is down.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdsx/internal/serve"
	"gdsx/internal/serve/chaos"
)

func main() {
	var (
		addr     = flag.String("addr", ":8745", "listen address")
		maxConc  = flag.Int("max-concurrent", 0, "execution slots (0 = NumCPU, capped at 8)")
		queue    = flag.Int("queue", 0, "admission queue depth beyond the execution slots (0 = 32)")
		cacheN   = flag.Int("cache", 0, "transform cache entries (0 = 128)")
		rps      = flag.Float64("rps", 0, "per-tenant requests/sec (0 = 50, negative = unlimited)")
		burst    = flag.Float64("burst", 0, "per-tenant burst (0 = 2x rps)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		chaosOn  = flag.Bool("chaos", false, "mount the fault-injecting chaos middleware (testing only)")
		chaosPan = flag.Int("chaos-panic-every", 10, "with -chaos: panic on one in N requests")
		logDest  = flag.String("log", "", "structured request log destination: a file path, or - for stdout (empty = off)")
		traceN   = flag.Int("trace-sample", 0, "trace 1 in N requests without an X-Request-ID (0 = 8, negative = only explicit IDs)")
		retainN  = flag.Int("trace-retain", 0, "retained traces per pool on /debug/traces (0 = 32)")
	)
	flag.Parse()

	var reqLog io.Writer
	if *logDest == "-" {
		reqLog = os.Stdout
	} else if *logDest != "" {
		f, err := os.OpenFile(*logDest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("gdsxd: opening -log %s: %v", *logDest, err)
		}
		defer f.Close()
		reqLog = f
	}

	srv := serve.New(serve.Config{
		MaxConcurrent: *maxConc,
		QueueDepth:    *queue,
		CacheEntries:  *cacheN,
		Rate:          serve.RateLimit{RPS: *rps, Burst: *burst},
		TraceSample:   *traceN,
		TraceRetain:   *retainN,
		RequestLog:    reqLog,
	})
	var mws []func(http.Handler) http.Handler
	if *chaosOn {
		mws = append(mws, chaos.Middleware(chaos.Config{PanicEvery: *chaosPan}))
		log.Printf("gdsxd: chaos middleware armed (panic every ~%d requests)", *chaosPan)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("gdsxd: listen %s: %v", *addr, err)
	}
	log.Printf("gdsxd: listening on %s", ln.Addr())

	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		s := <-sig
		log.Printf("gdsxd: %v received, draining", s)
		close(stop)
	}()

	httpSrv := serve.NewHTTPServer(*addr, srv.Handler(mws...))
	if err := serve.ServeGraceful(httpSrv, ln, stop, *drainFor, srv.Drain); err != nil {
		log.Printf("gdsxd: shutdown: %v", err)
		os.Exit(1)
	}
	st := srv.Snapshot()
	fmt.Printf("gdsxd: drained clean (%d requests served, %d ok)\n", st.Requests, st.OK)
}
