// Command gdsxbench regenerates every table and figure of the paper's
// evaluation section (§4) over the eight workload programs and prints
// them as text tables. Results are deterministic: timing comes from
// the schedule simulator's operation counts, memory from the simulated
// allocator.
//
// Usage:
//
//	gdsxbench [-scale test|profile|bench] [-engine compiled|tree] [-exp all|table4|table5|fig8|...|fig14]
//	gdsxbench -bench-engines [-scale ...] [-o BENCH_engine.json]
//	gdsxbench -bench-opt [-quick] [-scale ...] [-o BENCH_opt.json]
//	gdsxbench -guard [-quick] [-scale ...] [-o BENCH_guard.json]
//	gdsxbench -recovery [-scale ...] [-o BENCH_recovery.json]
//	gdsxbench -obs [-quick] [-scale ...] [-o BENCH_obs.json]
//	gdsxbench -sched [-scale ...] [-o BENCH_sched.json]
//	gdsxbench -adapt [-quick] [-scale ...] [-o BENCH_adapt.json]
//	gdsxbench -serve-load [-quick] [-o BENCH_serve.json]
//
// The -bench-engines mode instead measures host wall-clock time of
// each workload under the tree-walking and closure-compiling engines
// and writes the comparison as JSON. The -bench-opt mode measures the
// compiled engine with its optimization pipeline on versus off;
// -bench-opt -quick is the CI smoke variant, which measures a workload
// subset and exits nonzero when the geomean speedup regresses more
// than 5% against the matching rows of the checked-in BENCH_opt.json. The -guard mode measures the
// guarded-execution monitor's overhead on violation-free parallel runs
// (use -scale profile: the monitor logs every access, so bench-scale
// inputs need log memory proportional to their operation count);
// -guard -quick is the CI smoke variant, which measures a workload
// subset and exits nonzero when the geomean overhead regresses more
// than 5% against the matching rows of the checked-in BENCH_guard.json. The
// -recovery mode compares region rollback-and-resume against the
// whole-program fallback on the violating adversarial inputs, and
// measures the region-snapshot overhead on violation-free runs. The
// -obs mode measures the observability layer's wall-clock overhead on
// expanded parallel runs plus a serve tier (request batches against a
// DisableObs gdsxd server vs. the default registry + head-sampled
// tracing configuration); -quick is the CI smoke variant (few
// workloads, no hot-profiler configuration) that exits nonzero when
// either the geomean runtime overhead or the serve-tier leave-on
// overhead exceeds 15%. The -sched mode replays the traced
// workloads through the schedule simulator under both DOALL dispatch
// policies (static chunking vs work stealing) and writes the scaling
// curves; the numbers are deterministic operation counts, so the JSON
// is stable across hosts. The -adapt mode measures the adaptive
// speculation ladder: the guard-sampling check cut on clean regions
// (deterministic event counts; must stay at 2x or better), the
// runtime re-expansion win over a stuck recovery baseline, and the
// commutative-privatization speedup over sequential execution;
// -adapt -quick is the CI smoke variant, which skips the wall-clock
// acceptance checks and exits nonzero when the check cut regresses
// more than 5% against the checked-in BENCH_adapt.json. The
// -serve-load mode drives the gdsxd service layer (internal/serve)
// with closed-loop concurrent HTTP clients across steady, mixed,
// burst and chaos scenarios and records p50/p99 latency, throughput,
// shed rate and cache hit rate; -serve-load -quick is the CI smoke
// variant, which runs the steady and burst scenarios at half volume
// and exits nonzero when the geomean p50 regresses more than 10% (or
// p99 more than 50%) against the matching rows of the checked-in
// BENCH_serve.json.
//
// With -http ADDR, any mode also serves expvar (including the live
// gdsx metrics registry under the "gdsx" variable) and net/http/pprof
// on ADDR for the duration of the run:
//
//	gdsxbench -http :8080 ...   # /debug/vars, /debug/pprof
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"gdsx"
	"gdsx/internal/bench"
	"gdsx/internal/serve"
	"gdsx/internal/workloads"
)

func main() {
	scale := flag.String("scale", "bench", "input scale: test, profile or bench")
	exp := flag.String("exp", "all", "experiment: all, table4, table5, fig8..fig14")
	engineName := flag.String("engine", "compiled", "execution engine: compiled or tree")
	benchEngines := flag.Bool("bench-engines", false,
		"measure tree vs compiled engine wall clock and write JSON")
	benchOpt := flag.Bool("bench-opt", false,
		"measure the compiled engine's optimization pipeline (on vs off) and write JSON")
	benchGuard := flag.Bool("guard", false,
		"measure guarded-execution monitor overhead on violation-free runs and write JSON")
	benchRecovery := flag.Bool("recovery", false,
		"measure region rollback-and-resume vs whole-program fallback, plus"+
			" no-violation snapshot overhead, and write JSON")
	benchObs := flag.Bool("obs", false,
		"measure observability-layer overhead on expanded parallel runs and write JSON")
	benchSched := flag.Bool("sched", false,
		"simulate DOALL scheduler scaling (static vs work-stealing) and write JSON")
	benchAdapt := flag.Bool("adapt", false,
		"measure the adaptive speculation ladder (guard-sampling check cut,"+
			" runtime re-expansion, commutative privatization) and write JSON")
	serveLoad := flag.Bool("serve-load", false,
		"drive the gdsxd service layer with closed-loop concurrent clients"+
			" (steady/mixed/burst/chaos) and write latency, shed-rate and"+
			" cache-hit-rate JSON")
	quick := flag.Bool("quick", false,
		"with -obs: CI smoke variant — few workloads, no hot-profiler config,"+
			" nonzero exit when geomean overhead exceeds 15%."+
			" With -bench-opt: measure the smoke subset and gate against"+
			" the checked-in BENCH_opt.json."+
			" With -guard: measure the smoke subset and gate against"+
			" the checked-in BENCH_guard.json."+
			" With -adapt: skip the wall-clock acceptance checks and gate"+
			" the sampling check cut against the checked-in BENCH_adapt.json."+
			" With -serve-load: run the steady and burst scenarios at half"+
			" volume and gate p50/p99 against the checked-in BENCH_serve.json")
	httpAddr := flag.String("http", "",
		"serve expvar (live gdsx metrics) and net/http/pprof on this address"+
			" during the run, e.g. :8080")
	outFile := flag.String("o", "", "output file (default BENCH_engine.json, BENCH_guard.json, BENCH_recovery.json or BENCH_obs.json)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	switch *scale {
	case "test":
		cfg.Scale = workloads.Test
	case "profile":
		cfg.Scale = workloads.ProfileScale
	case "bench":
		cfg.Scale = workloads.BenchScale
	default:
		fmt.Fprintln(os.Stderr, "gdsxbench: unknown scale", *scale)
		os.Exit(2)
	}
	engine, ok := gdsx.EngineFromString(*engineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "gdsxbench: unknown engine %q (want compiled or tree)\n", *engineName)
		os.Exit(2)
	}
	cfg.Engine = engine
	if *httpAddr != "" {
		// A metrics-only observer: every harness run publishes into one
		// registry, served live at /debug/vars; an event tracer here
		// would only accumulate memory across a long bench run.
		o := &gdsx.Observer{Metrics: gdsx.NewRegistry()}
		cfg.Obs = o
		expvar.Publish("gdsx", expvar.Func(func() any { return o.Metrics.Snapshot() }))
		// The hardened server (header/read/write/idle timeouts) shared
		// with gdsxd, drained gracefully when the run finishes instead of
		// dying mid-response with the process.
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench: http:", err)
			os.Exit(1)
		}
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- serve.ServeGraceful(serve.NewHTTPServer(*httpAddr, http.DefaultServeMux),
				ln, stop, 5*time.Second, nil)
		}()
		defer func() {
			close(stop)
			if err := <-done; err != nil {
				fmt.Fprintln(os.Stderr, "gdsxbench: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "gdsxbench: serving expvar and pprof on %s"+
			" (/debug/vars, /debug/pprof)\n", ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "gdsxbench: engine=%s scale=%s %s %s/%s\n",
		engine, *scale, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	h := bench.New(cfg)
	start := time.Now()

	if *serveLoad {
		rep, err := bench.ServeLoad(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *quick {
			gateServeRegression(rep, *outFile)
			return
		}
		writeJSON(rep, *outFile, "BENCH_serve.json", "serve-load measurement", start)
		return
	}

	if *benchObs {
		rep, err := h.ObsOverhead(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if !*quick || *outFile != "" {
			writeJSON(rep, *outFile, "BENCH_obs.json", "observability overhead", start)
		}
		if *quick && rep.GeomeanOverhead > 0.15 {
			fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: geomean observability overhead"+
				" %.1f%% exceeds the 15%% smoke budget\n", rep.GeomeanOverhead*100)
			os.Exit(1)
		}
		if *quick && rep.ServeOverhead > 0.15 {
			fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: serve-tier leave-on observability"+
				" overhead %.1f%% exceeds the 15%% smoke budget\n", rep.ServeOverhead*100)
			os.Exit(1)
		}
		return
	}

	if *benchOpt {
		rep, err := h.OptComparison(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *quick {
			gateOptRegression(rep, *outFile)
			return
		}
		writeJSON(rep, *outFile, "BENCH_opt.json", "optimization comparison", start)
		return
	}

	if *benchEngines {
		rep, err := h.EngineComparison()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if cfg.Scale != workloads.BenchScale {
			fmt.Fprintln(os.Stderr, "gdsxbench: note: at this scale per-run setup"+
				" (simulated-memory allocation) rivals the programs' execution time;"+
				" use -scale bench for a meaningful engine comparison")
		}
		writeJSON(rep, *outFile, "BENCH_engine.json", "engine comparison", start)
		return
	}

	if *benchGuard {
		if cfg.Scale == workloads.BenchScale {
			fmt.Fprintln(os.Stderr, "gdsxbench: note: the monitor logs every access;"+
				" bench-scale inputs need gigabytes of log memory. -scale profile"+
				" is the intended operating point.")
		}
		rep, err := h.GuardOverhead(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *quick {
			gateGuardRegression(rep, *outFile)
			return
		}
		writeJSON(rep, *outFile, "BENCH_guard.json", "guard overhead", start)
		return
	}

	if *benchAdapt {
		if cfg.Scale == workloads.BenchScale {
			fmt.Fprintln(os.Stderr, "gdsxbench: note: adaptive runs are guarded, so"+
				" the monitor logs every access; -scale profile is the intended"+
				" operating point for the smoke gate.")
		}
		rep, err := h.Adapt(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *quick {
			gateAdaptRegression(rep, *outFile)
			return
		}
		writeJSON(rep, *outFile, "BENCH_adapt.json", "adaptive-ladder measurement", start)
		return
	}

	if *benchSched {
		rep, err := h.SchedScaling()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		writeJSON(rep, *outFile, "BENCH_sched.json", "scheduler scaling", start)
		return
	}

	if *benchRecovery {
		if cfg.Scale == workloads.BenchScale {
			fmt.Fprintln(os.Stderr, "gdsxbench: note: recovery runs are guarded, so"+
				" the monitor logs every access; -scale profile is the intended"+
				" operating point.")
		}
		rep, err := h.Recovery()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		writeJSON(rep, *outFile, "BENCH_recovery.json", "recovery comparison", start)
		return
	}

	if *exp == "all" {
		rep, err := h.RunAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		fmt.Fprintf(os.Stderr, "\n(all experiments regenerated in %v at %s scale)\n",
			time.Since(start).Round(time.Millisecond), *scale)
		return
	}

	rep := &bench.Report{Threads: h.Threads()}
	var err error
	switch *exp {
	case "table4":
		rep.Table4, err = h.Table4()
	case "table5":
		rep.Table5, err = h.Table5()
	case "fig8":
		rep.Fig8, err = h.Figure8()
	case "fig9":
		rep.Fig9, rep.Fig9HMUn, rep.Fig9HMOp, err = h.Figure9()
	case "fig10":
		rep.Fig10, err = h.Figure10()
	case "fig11":
		rep.Fig11, rep.Fig11HM, err = h.Figure11()
	case "fig12":
		rep.Fig12, err = h.Figure12()
	case "fig13":
		rep.Fig13, err = h.Figure13()
	case "fig14":
		rep.Fig14, err = h.Figure14()
	case "ablation":
		var sync []bench.AblationSyncRow
		var hoist []bench.AblationHoistRow
		var layout []bench.AblationLayoutRow
		var chunk []bench.AblationChunkRow
		if sync, err = h.AblationSync(); err == nil {
			if hoist, err = h.AblationHoist(); err == nil {
				if layout, err = h.AblationLayout(); err == nil {
					chunk, err = h.AblationChunk()
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdsxbench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderAblations(sync, hoist))
		fmt.Print(bench.RenderLayoutAblation(layout))
		fmt.Print(bench.RenderChunkAblation(chunk))
		fmt.Fprintf(os.Stderr, "\n(regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
		return
	default:
		fmt.Fprintln(os.Stderr, "gdsxbench: unknown experiment", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	fmt.Print(rep.RenderPartial())
	fmt.Fprintf(os.Stderr, "\n(regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
}

// gateGuardRegression compares a quick -guard measurement against the
// matching rows of the checked-in BENCH_guard.json (or the -o
// override) and exits nonzero when the geomean overhead grew more than
// 5%. Guard overhead is lower-is-better (1.0x = free monitor), so the
// gate direction is inverted relative to gateOptRegression: it catches
// a change that reintroduces shared-cache-line traffic on the
// no-violation path, whose signature is the ratio climbing back toward
// the pre-epoch-buffer multiples.
func gateGuardRegression(rep *bench.GuardReport, baseFile string) {
	if baseFile == "" {
		baseFile = "BENCH_guard.json"
	}
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	var base bench.GuardReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gdsxbench: %s: %v\n", baseFile, err)
		os.Exit(1)
	}
	var names []string
	for _, row := range rep.Rows {
		names = append(names, row.Workload)
	}
	want, ok := base.GeomeanOver(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: %s lacks rows for the smoke subset %v\n",
			baseFile, names)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gdsxbench: quick geomean %.2fx vs checked-in %.2fx (same subset)\n",
		rep.Geomean, want)
	if rep.Geomean > want*1.05 {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: guard-monitor overhead regressed more"+
			" than 5%% against %s\n", baseFile)
		os.Exit(1)
	}
}

// gateAdaptRegression compares a quick -adapt measurement against the
// matching sampling rows of the checked-in BENCH_adapt.json (or the -o
// override) and exits nonzero when the geomean check cut fell more
// than 5%. The cut counts monitor events, not nanoseconds, so it is
// stable across hosts; a fall means the tier ladder stopped promoting
// clean regions (or the suspicion path started escalating them), whose
// signature is the ratio collapsing toward 1.0x.
func gateAdaptRegression(rep *bench.AdaptReport, baseFile string) {
	if baseFile == "" {
		baseFile = "BENCH_adapt.json"
	}
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	var base bench.AdaptReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gdsxbench: %s: %v\n", baseFile, err)
		os.Exit(1)
	}
	var names []string
	for _, row := range rep.Sampling {
		names = append(names, row.Workload)
	}
	want, ok := base.GeomeanOver(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: %s lacks sampling rows for the smoke subset %v\n",
			baseFile, names)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gdsxbench: quick check cut %.2fx vs checked-in %.2fx (same subset)\n",
		rep.SampleGeomean, want)
	if rep.SampleGeomean < want*0.95 {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: guard-sampling check cut regressed more"+
			" than 5%% against %s\n", baseFile)
		os.Exit(1)
	}
}

// gateOptRegression compares a quick -bench-opt measurement against
// the matching rows of the checked-in BENCH_opt.json (or the -o
// override) and exits nonzero on a >5% geomean regression. Wall-clock
// speedups on shared CI machines are noisy per workload; the geomean
// over the subset with a 5% allowance holds steady while still
// catching a disabled or broken pass, whose signature is the ratio
// collapsing toward 1.0x.
func gateOptRegression(rep *bench.OptReport, baseFile string) {
	if baseFile == "" {
		baseFile = "BENCH_opt.json"
	}
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	var base bench.OptReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gdsxbench: %s: %v\n", baseFile, err)
		os.Exit(1)
	}
	var names []string
	for _, row := range rep.Rows {
		names = append(names, row.Workload)
	}
	want, ok := base.GeomeanOver(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: %s lacks rows for the smoke subset %v\n",
			baseFile, names)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gdsxbench: quick geomean %.2fx vs checked-in %.2fx (same subset)\n",
		rep.Geomean, want)
	if rep.Geomean < want*0.95 {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: optimized-engine speedup regressed more"+
			" than 5%% against %s\n", baseFile)
		os.Exit(1)
	}
}

// gateServeRegression compares a quick -serve-load measurement against
// the matching scenarios of the checked-in BENCH_serve.json (or the -o
// override) and exits nonzero when the geomean p50 latency grew more
// than 10% or the geomean p99 more than 50%. What this catches is a
// structural regression — a lost cache hit path, admission doing work
// before shedding, the drain barrier serializing requests — whose
// signature is latency multiplying, not drifting: every one of those
// moves the median, which run-to-run is stable within a few percent.
// The p99 of a 48-request closed-loop scenario is its max sample, an
// extreme-value statistic whose noise on shared CI machines exceeds
// any threshold tight enough to be useful, so it gets only the
// multiplied-latency backstop.
func gateServeRegression(rep *bench.ServeLoadReport, baseFile string) {
	if baseFile == "" {
		baseFile = "BENCH_serve.json"
	}
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	var base bench.ServeLoadReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gdsxbench: %s: %v\n", baseFile, err)
		os.Exit(1)
	}
	var names []string
	for _, row := range rep.Rows {
		names = append(names, row.Scenario)
	}
	want99, ok := base.GeomeanOver(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: %s lacks rows for the smoke subset %v\n",
			baseFile, names)
		os.Exit(1)
	}
	want50, _ := base.GeomeanP50Over(names)
	got99, _ := rep.GeomeanOver(names)
	got50, _ := rep.GeomeanP50Over(names)
	fmt.Fprintf(os.Stderr, "gdsxbench: quick geomean p50 %.1fms vs checked-in %.1fms,"+
		" p99 %.1fms vs %.1fms (same subset)\n", got50, want50, got99, want99)
	if got50 > want50*1.10 {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: serve p50 latency regressed more"+
			" than 10%% against %s\n", baseFile)
		os.Exit(1)
	}
	if got99 > want99*1.50 {
		fmt.Fprintf(os.Stderr, "gdsxbench: FAIL: serve p99 latency regressed more"+
			" than 50%% against %s\n", baseFile)
		os.Exit(1)
	}
}

// writeJSON serializes a report to out (or the mode's default file).
func writeJSON(rep any, out, deflt, what string, start time.Time) {
	if out == "" {
		out = deflt
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gdsxbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\n(%s written to %s in %v)\n",
		what, out, time.Since(start).Round(time.Millisecond))
}
