package gdsx

import (
	"fmt"

	"gdsx/internal/alias"
	"gdsx/internal/ddg"
	"gdsx/internal/expand"
	"gdsx/internal/profile"
	"gdsx/internal/sema"
)

// TransformOptions configure the expansion pipeline.
type TransformOptions struct {
	// Loops restricts the transformation to these loop IDs; empty means
	// every parallel-annotated loop.
	Loops []int
	// Expand selects the expansion configuration. The zero value means
	// expand.Optimized().
	Expand *expand.Options
	// Classify tunes the Definition 5 classification.
	Classify *ddg.Options
	// ProfileOpts configure the profiling runs (memory size etc.).
	ProfileOpts RunOptions
	// ProfileSource, when non-empty, is an alternate version of the
	// program (typically a smaller input scale) used for the dependence
	// profiling runs, mirroring the paper's train/ref input split. It
	// must differ from the transformed source only in constants: the
	// loop and access-site numbering must match, which Transform
	// verifies.
	ProfileSource string
	// Graphs supplies dependence graphs directly (keyed by loop ID),
	// bypassing profiling for those loops. This is the paper's §2
	// "from the programmer" path: `gdsx profile -json` emits graphs,
	// the programmer verifies or edits them, and the pipeline consumes
	// them here. Supplying a wrong graph produces a wrong program —
	// exactly the contract the paper states.
	Graphs map[int]*ddg.Graph
	// Guard emits the guard markers (__expand_malloc/__expand_note)
	// that make the expanded program self-describing for the
	// guarded-execution monitor (see GuardedRun). It overrides any
	// Expand.GuardNotes setting.
	Guard bool
}

// TransformResult is the outcome of the full expansion pipeline.
type TransformResult struct {
	// Source is the transformed program, legal MiniC referencing
	// __tid/__nthreads.
	Source string
	// Reports holds one expansion report per transformed loop.
	Reports []*expand.Report
	// Profiles holds the dependence profile per transformed loop.
	Profiles map[int]*profile.Result
	// Classes holds the access classification per transformed loop.
	Classes map[int]*ddg.Classification
}

// Transform runs the full pipeline of the paper's Figure 7 on a fresh
// compilation of the program's source: dependence profiling of each
// candidate loop, Definition 5 classification, points-to analysis, and
// data structure expansion. The returned source is ready to compile and
// run with any thread count.
//
// The input Program is not modified; the pipeline works on a fresh
// parse of its source.
func Transform(p *Program, opts TransformOptions) (*TransformResult, error) {
	work, err := Compile(p.File, p.Source)
	if err != nil {
		return nil, err
	}
	loops := opts.Loops
	if len(loops) == 0 {
		loops = work.ParallelLoops()
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("gdsx: %s has no parallel loops to transform", p.File)
	}
	eopts := expand.Optimized()
	if opts.Expand != nil {
		eopts = *opts.Expand
	}
	if opts.Guard {
		eopts.GuardNotes = true
	}
	copts := ddg.DefaultOptions()
	if opts.Classify != nil {
		copts = *opts.Classify
	}
	if eopts.Commutative && copts.CommSites == nil {
		copts.CommSites = sema.CommSites(work.Info)
	}

	res := &TransformResult{
		Profiles: map[int]*profile.Result{},
		Classes:  map[int]*ddg.Classification{},
	}

	// Profile every candidate loop first (profiling does not mutate the
	// AST), then analyze aliases once, then expand all loops in one
	// pass (structures shared between loops must see every loop's
	// classification at once).
	profProg := work
	if opts.ProfileSource != "" {
		pp, err := Compile(p.File+" (profile input)", opts.ProfileSource)
		if err != nil {
			return nil, fmt.Errorf("gdsx: compiling profile input: %w", err)
		}
		if pp.AST.NumAccesses != work.AST.NumAccesses || pp.AST.NumLoops != work.AST.NumLoops ||
			pp.AST.NumAllocSites != work.AST.NumAllocSites {
			return nil, fmt.Errorf("gdsx: profile input is not structurally identical to the program "+
				"(accesses %d vs %d, loops %d vs %d)",
				pp.AST.NumAccesses, work.AST.NumAccesses, pp.AST.NumLoops, work.AST.NumLoops)
		}
		profProg = pp
	}

	var las []expand.LoopAnalysis
	for _, id := range loops {
		var g *ddg.Graph
		if user, ok := opts.Graphs[id]; ok {
			g = user
		} else {
			pr, err := profProg.ProfileLoop(id, opts.ProfileOpts)
			if err != nil {
				return nil, fmt.Errorf("gdsx: profiling loop %d: %w", id, err)
			}
			res.Profiles[id] = pr
			g = pr.Graph
		}
		res.Classes[id] = ddg.Classify(g, copts)
		las = append(las, expand.LoopAnalysis{ID: id, Graph: g, Class: res.Classes[id]})
	}
	an := alias.Analyze(work.AST, work.Info)

	rep, err := expand.Expand(expand.Input{
		Prog:  work.AST,
		Info:  work.Info,
		Loops: las,
		Alias: an,
	}, eopts)
	if err != nil {
		return nil, fmt.Errorf("gdsx: expanding: %w", err)
	}
	res.Reports = append(res.Reports, rep)

	res.Source = work.Print()
	// Verify the transformed program is still legal MiniC.
	if _, err := Compile(p.File+" (expanded)", res.Source); err != nil {
		return nil, fmt.Errorf("gdsx: transformed program does not recompile: %w\n--- transformed source ---\n%s", err, res.Source)
	}
	return res, nil
}

// TransformAndRun is a convenience wrapper: transform the program, then
// compile and execute the result.
func TransformAndRun(p *Program, topts TransformOptions, ropts RunOptions) (*TransformResult, Result, error) {
	tr, err := Transform(p, topts)
	if err != nil {
		return nil, Result{}, err
	}
	out, err := RunSource(p.File+" (expanded)", tr.Source, ropts)
	if err != nil {
		return tr, Result{}, fmt.Errorf("gdsx: running transformed program: %w\n--- transformed source ---\n%s", err, tr.Source)
	}
	return tr, out, nil
}
