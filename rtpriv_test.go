package gdsx

import (
	"testing"

	"gdsx/internal/schedule"
)

// The zptr program under runtime privatization: the untransformed code
// runs with the monitor, output must match native, and the monitor must
// actually have intercepted accesses and created copies.
func TestRuntimePrivatizationCorrect(t *testing.T) {
	prog, err := Compile("zptr.c", zptrSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	sites, err := prog.PrivateSites(RunOptions{})
	if err != nil {
		t.Fatalf("PrivateSites: %v", err)
	}
	if len(sites) == 0 {
		t.Fatalf("no private sites found")
	}
	for _, n := range []int{1, 2, 4, 8} {
		// Fresh compile per run: the monitor binds to one machine.
		prog, err := Compile("zptr.c", zptrSrc)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		res, st, err := prog.RunRuntimePrivatized(sites, RunOptions{Threads: n})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if res.Output != native.Output {
			t.Fatalf("N=%d: output %q != native %q", n, res.Output, native.Output)
		}
		if st.Monitored == 0 || st.Copies == 0 {
			t.Fatalf("N=%d: monitor idle: %+v", n, st)
		}
	}
}

// Runtime privatization must cost more ops than native execution.
func TestRuntimePrivatizationOverhead(t *testing.T) {
	prog, err := Compile("zptr.c", zptrSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	native, err := prog.Run(RunOptions{Threads: 1, ForceSequential: true})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	sites, err := prog.PrivateSites(RunOptions{})
	if err != nil {
		t.Fatalf("PrivateSites: %v", err)
	}
	prog2, _ := Compile("zptr.c", zptrSrc)
	res, _, err := prog2.RunRuntimePrivatized(sites, RunOptions{Threads: 1})
	if err != nil {
		t.Fatalf("rtpriv: %v", err)
	}
	if res.Counters[0] <= native.Counters[0] {
		t.Fatalf("rtpriv ops %d not above native %d", res.Counters[0], native.Counters[0])
	}
}

// Freed blocks must not leave stale private copies behind.
func TestRuntimePrivatizationFreeInvalidates(t *testing.T) {
	src := `
int main() {
    int *out = (int*)malloc(12 * 4);
    int iter;
    parallel for (iter = 0; iter < 12; iter++) {
        int k;
        int *buf = (int*)malloc(16 * 4);
        for (k = 0; k < 16; k++) {
            buf[k] = iter + k;
        }
        int s = 0;
        for (k = 0; k < 16; k++) {
            s += buf[k];
        }
        free(buf);
        out[iter] = s;
    }
    long total = 0;
    for (iter = 0; iter < 12; iter++) {
        total += out[iter];
    }
    print_long(total);
    free(out);
    return 0;
}`
	prog, err := Compile("freeinv.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	native, err := prog.Run(RunOptions{Threads: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	sites, err := prog.PrivateSites(RunOptions{})
	if err != nil {
		t.Fatalf("PrivateSites: %v", err)
	}
	prog2, _ := Compile("freeinv.c", src)
	res, _, err := prog2.RunRuntimePrivatized(sites, RunOptions{Threads: 4})
	if err != nil {
		t.Fatalf("rtpriv: %v", err)
	}
	if res.Output != native.Output {
		t.Fatalf("output %q != native %q", res.Output, native.Output)
	}
}

// Traced execution produces loop traces, and the schedule simulator
// derives a speedup > 1 from them for a parallelizable program.
func TestTraceParallelAndSimulate(t *testing.T) {
	prog, err := Compile("zptr.c", zptrSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tr, err := Transform(prog, TransformOptions{})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	xprog, err := Compile("zptr-x.c", tr.Source)
	if err != nil {
		t.Fatalf("Compile transformed: %v", err)
	}
	traced, err := xprog.Run(RunOptions{Threads: 8, Trace: true})
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if len(traced.Traces) == 0 {
		t.Fatalf("no traces recorded")
	}
	model := schedule.DefaultModel()
	t1, _, _, err := schedule.ProgramTime(traced, 1, model)
	if err != nil {
		t.Fatalf("ProgramTime(1): %v", err)
	}
	t8, _, _, err := schedule.ProgramTime(traced, 8, model)
	if err != nil {
		t.Fatalf("ProgramTime(8): %v", err)
	}
	if t8 >= t1 {
		t.Fatalf("no simulated speedup: t1=%d t8=%d", t1, t8)
	}
}
