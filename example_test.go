package gdsx_test

import (
	"fmt"
	"log"

	"gdsx"
)

// The paper's running pattern: a buffer rewritten by every iteration of
// a parallelizable loop.
const exampleSrc = `
int main() {
    int *buf = (int*)malloc(16 * 4);
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int k;
        for (k = 0; k < 16; k++) { buf[k] = it + k; }
        int s = 0;
        for (k = 0; k < 16; k++) { s += buf[k]; }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 8; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}
`

func ExampleCompile() {
	prog, err := gdsx.Compile("example.c", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(gdsx.RunOptions{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Output)
	// Output: 1408
}

func ExampleTransform() {
	prog, err := gdsx.Compile("example.c", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded %d structure(s)\n", tr.Reports[0].Structures)

	// The transformed program runs with real threads and produces the
	// same output.
	out, err := gdsx.RunSource("example-x.c", tr.Source, gdsx.RunOptions{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Output)
	// Output:
	// expanded 1 structure(s)
	// 1408
}

func ExampleProgram_ClassifyLoop() {
	prog, err := gdsx.Compile("example.c", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	loopID := prog.ParallelLoops()[0]
	_, cls, err := prog.ClassifyLoop(loopID, gdsx.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	private := 0
	for _, c := range cls.Classes {
		if c.Private {
			private++
		}
	}
	fmt.Printf("%d thread-private class(es)\n", private)
	// Output: 1 thread-private class(es)
}
