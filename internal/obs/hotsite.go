package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Geometry tracks the layout of expanded structures — the
// __expand_malloc/__expand_note markers the guarded expansion pass
// emits, delivered through the interpreter's Expand hook — and maps a
// concrete address to the expanded-copy index that owns it. The copy
// math mirrors the guard monitor's canonicalization: interleaved
// layout places element i of copy t at base + (i*nt + t)*esz; bonded
// layout gives copy t the contiguous span [base + t*span,
// base + (t+1)*span).
type Geometry struct {
	mu    sync.Mutex
	nt    int
	notes []geoNote // sorted by base
}

type geoNote struct {
	base, span, esz int64
}

// NewGeometry creates a geometry for a run at nthreads threads.
func NewGeometry(nthreads int) *Geometry {
	if nthreads < 1 {
		nthreads = 1
	}
	return &Geometry{nt: nthreads}
}

// Note records one expanded structure. Notes whose range the new one
// overlaps are dropped first (address reuse after a free), keeping a
// note that covers the new range exactly — re-noting the same
// structure is idempotent.
func (g *Geometry) Note(base, span, esz int64) {
	if g == nil || span <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	end := base + span*int64(g.nt)
	kept := g.notes[:0]
	for _, n := range g.notes {
		nEnd := n.base + n.span*int64(g.nt)
		if base < nEnd && end > n.base {
			continue
		}
		kept = append(kept, n)
	}
	g.notes = kept
	i := sort.Search(len(g.notes), func(i int) bool { return g.notes[i].base >= base })
	g.notes = append(g.notes, geoNote{})
	copy(g.notes[i+1:], g.notes[i:])
	g.notes[i] = geoNote{base: base, span: span, esz: esz}
}

// Copy maps an address to the index of the expanded copy containing
// it, or -1 when the address lies outside every expanded structure.
func (g *Geometry) Copy(addr int64) int {
	if g == nil {
		return -1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	i := sort.Search(len(g.notes), func(i int) bool { return g.notes[i].base > addr }) - 1
	if i < 0 {
		return -1
	}
	n := g.notes[i]
	off := addr - n.base
	if off >= n.span*int64(g.nt) {
		return -1
	}
	if n.esz > 0 {
		return int((off / n.esz) % int64(g.nt))
	}
	return int(off / n.span)
}

// SiteKey identifies one profile bucket: an access site of the
// expanded program and the expanded-copy index it touched (-1 for
// addresses outside every expanded structure).
type SiteKey struct {
	Site int `json:"site"`
	Copy int `json:"copy"`
}

// SiteCost accumulates the cost charged to one bucket. Ops is the
// simulated op cost (one per sited access — the Mem price every
// access pays); Bytes the Mem/MemAll traffic.
type SiteCost struct {
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
	Bytes  int64 `json:"bytes"`
}

const hotShards = 64

// HotSites is the per-access profiler: it attributes access cost to
// (site, copy) buckets. Recording is sharded by thread id so workers
// do not contend on one mutex; each record is a shard-local map
// update, which is the same order of cost the guard monitor pays per
// access. Nil-safe throughout.
type HotSites struct {
	shards [hotShards]hotShard
}

type hotShard struct {
	mu sync.Mutex
	m  map[SiteKey]*SiteCost
}

// NewHotSites creates an empty profiler.
func NewHotSites() *HotSites {
	h := &HotSites{}
	for i := range h.shards {
		h.shards[i].m = map[SiteKey]*SiteCost{}
	}
	return h
}

// Record charges one access at site, touching copy cp (-1 = not
// expanded), to the profile. No-op on nil.
func (h *HotSites) Record(tid, site, cp int, store bool, size int64) {
	if h == nil {
		return
	}
	sh := &h.shards[tid&(hotShards-1)]
	key := SiteKey{Site: site, Copy: cp}
	sh.mu.Lock()
	c, ok := sh.m[key]
	if !ok {
		c = &SiteCost{}
		sh.m[key] = c
	}
	if store {
		c.Stores++
	} else {
		c.Loads++
	}
	c.Bytes += size
	sh.mu.Unlock()
}

// SiteReport is one merged profile bucket.
type SiteReport struct {
	SiteKey
	SiteCost
}

// Report merges the shards and returns every bucket sorted by total
// access count descending (ties by site then copy, so output is
// deterministic).
func (h *HotSites) Report() []SiteReport {
	if h == nil {
		return nil
	}
	merged := map[SiteKey]SiteCost{}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for k, c := range sh.m {
			t := merged[k]
			t.Loads += c.Loads
			t.Stores += c.Stores
			t.Bytes += c.Bytes
			merged[k] = t
		}
		sh.mu.Unlock()
	}
	out := make([]SiteReport, 0, len(merged))
	for k, c := range merged {
		out = append(out, SiteReport{SiteKey: k, SiteCost: c})
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].Loads + out[i].Stores
		tj := out[j].Loads + out[j].Stores
		if ti != tj {
			return ti > tj
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Copy < out[j].Copy
	})
	return out
}

// Top returns the n hottest buckets (all of them when n <= 0).
func (h *HotSites) Top(n int) []SiteReport {
	rep := h.Report()
	if n > 0 && len(rep) > n {
		rep = rep[:n]
	}
	return rep
}

// Folded writes the profile in the flamegraph folded-stack text
// format: one line per bucket, semicolon-separated frames followed by
// a space and the sample weight (total accesses charged there). The
// frames callback resolves a site id to its stack (outermost first,
// e.g. function; source position and expression text); a nil callback
// or empty result falls back to "site#N". Expanded buckets get a
// final "copy N" frame so per-copy skew is visible in the flamegraph.
func (h *HotSites) Folded(w io.Writer, frames func(site int) []string) error {
	for _, r := range h.Report() {
		var fs []string
		if frames != nil {
			fs = frames(r.Site)
		}
		if len(fs) == 0 {
			fs = []string{fmt.Sprintf("site#%d", r.Site)}
		}
		if r.Copy >= 0 {
			fs = append(fs, fmt.Sprintf("copy %d", r.Copy))
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(fs, ";"), r.Loads+r.Stores); err != nil {
			return err
		}
	}
	return nil
}
