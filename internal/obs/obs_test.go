package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Every producer-facing entry point must be inert on nil receivers:
// that is the disabled fast path the interpreter relies on.
func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Emit(Event{Name: "region", Ph: 'B'})
	o.Counter("x").Add(3)
	o.Counter("x").Inc()
	o.Gauge("g").Set(7)
	o.Histogram("h").Observe(9)

	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}

	var hs *HotSites
	hs.Record(0, 1, 0, true, 8)
	if rep := hs.Report(); rep != nil {
		t.Fatalf("nil HotSites report: %v", rep)
	}

	var g *Geometry
	g.Note(0, 8, 0)
	if c := g.Copy(0); c != -1 {
		t.Fatalf("nil geometry copy = %d, want -1", c)
	}

	// Observer with all components nil.
	o2 := &Observer{}
	o2.Emit(Event{Name: "region"})
	o2.Counter("x").Inc()
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("interp.ops")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	if r.Counter("interp.ops") != c {
		t.Fatal("counter not interned")
	}

	g := r.Gauge("mem.live")
	g.Set(10)
	g.Set(4)
	if g.Value() != 4 || g.Max() != 10 {
		t.Fatalf("gauge value=%d max=%d, want 4/10", g.Value(), g.Max())
	}

	h := r.Histogram("bytes")
	for _, v := range []int64{1, 2, 3, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Min() != 1 || h.Max() != 1<<40 {
		t.Fatalf("hist count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 1+2+3+100+(1<<40) {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}

	snap := r.Snapshot()
	if snap.Counters["interp.ops"] != 6 {
		t.Fatalf("snapshot counter = %d", snap.Counters["interp.ops"])
	}
	if snap.Gauges["mem.live"].Max != 10 {
		t.Fatalf("snapshot gauge max = %d", snap.Gauges["mem.live"].Max)
	}
	if snap.Histograms["bytes"].Count != 5 {
		t.Fatalf("snapshot hist count = %d", snap.Histograms["bytes"].Count)
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter", "interp.ops", "gauge", "mem.live", "hist", "bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v int64
		b int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 62, 62}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.b {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.b)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Max(); got != 999 {
		t.Fatalf("gauge max = %d, want 999", got)
	}
}

func TestTracerLimitAndBatch(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Name: "region", Ph: 'B', TS: int64(i)})
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4/2", tr.Len(), tr.Dropped())
	}

	tr = NewTracer(4)
	batch := make([]Event, 6)
	for i := range batch {
		batch[i] = Event{Name: "iter", Ph: 'X', TS: int64(i)}
	}
	tr.EmitBatch(batch)
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("batch len=%d dropped=%d, want 4/2", tr.Len(), tr.Dropped())
	}
	tr.EmitBatch(nil)
}

func TestWriteChromeSchema(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Name: "region", Ph: 'B', TS: 1000, Tid: 0, Loop: 2, Iter: -1, V1: 4})
	tr.Emit(Event{Name: "iter", Ph: 'X', TS: 2000, Dur: 500, Tid: 1, Loop: 2, Iter: 7})
	tr.Emit(Event{Name: "guard-verdict", Ph: 'i', TS: 2500, Tid: 0, Loop: 2, Iter: -1, Label: "clean", V1: 12})
	tr.Emit(Event{Name: "region", Ph: 'E', TS: 3000, Tid: 0, Loop: 2, Iter: -1})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	sawIter := false
	for _, ev := range parsed.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		ph := ev["ph"].(string)
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event missing ts: %v", ev)
			}
		}
		if ev["name"] == "iter" {
			sawIter = true
			args := ev["args"].(map[string]any)
			if args["iter"].(float64) != 7 || args["loop"].(float64) != 2 {
				t.Fatalf("iter args wrong: %v", args)
			}
			if ev["dur"].(float64) != 0.5 { // 500ns = 0.5µs
				t.Fatalf("dur = %v, want 0.5", ev["dur"])
			}
		}
	}
	if !sawIter {
		t.Fatal("iter event missing from export")
	}
}

// Canonical must erase timestamps, durations, tids and
// address-valued fields, but keep everything else.
func TestCanonicalErasesNondeterminism(t *testing.T) {
	mk := func(ts, dur int64, tid int, base int64) *Tracer {
		tr := NewTracer(0)
		tr.Emit(Event{Name: "region", Ph: 'B', TS: ts, Tid: tid, Loop: 1, Iter: -1, V1: 2})
		tr.Emit(Event{Name: "iter", Ph: 'X', TS: ts + 1, Dur: dur, Tid: tid ^ 1, Loop: 1, Iter: 3})
		tr.Emit(Event{Name: "alloc", Ph: 'i', TS: ts + 2, Tid: tid, Iter: -1, Label: "xs", V1: base, V2: 64})
		tr.Emit(Event{Name: "region", Ph: 'E', TS: ts + 9, Tid: tid, Loop: 1, Iter: -1})
		return tr
	}
	a := mk(100, 5, 0, 0x1000)
	b := mk(900, 50, 1, 0x8000)
	if !reflect.DeepEqual(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical streams differ:\n%v\n%v", a.Canonical(), b.Canonical())
	}
	// But a real difference must show.
	c := mk(100, 5, 0, 0x1000)
	c.Emit(Event{Name: "rollback", Ph: 'i', Loop: 1, Iter: -1, Label: "violation"})
	if reflect.DeepEqual(a.Canonical(), c.Canonical()) {
		t.Fatal("canonical streams equal despite extra rollback event")
	}
}

func TestGeometryInterleaved(t *testing.T) {
	// 2 threads, interleaved int64 elements: element i of copy t at
	// base + (i*2 + t)*8.
	g := NewGeometry(2)
	g.Note(1000, 32, 8) // 4 elements per copy, total 64 bytes
	cases := []struct {
		addr int64
		cp   int
	}{
		{1000, 0}, {1008, 1}, {1016, 0}, {1024, 1}, {1056, 1},
		{999, -1}, {1064, -1},
	}
	for _, c := range cases {
		if got := g.Copy(c.addr); got != c.cp {
			t.Errorf("Copy(%d) = %d, want %d", c.addr, got, c.cp)
		}
	}
}

func TestGeometryBonded(t *testing.T) {
	// 2 threads, bonded: copy t spans [base+t*span, base+(t+1)*span).
	g := NewGeometry(2)
	g.Note(2000, 40, 0)
	cases := []struct {
		addr int64
		cp   int
	}{
		{2000, 0}, {2039, 0}, {2040, 1}, {2079, 1}, {2080, -1}, {1999, -1},
	}
	for _, c := range cases {
		if got := g.Copy(c.addr); got != c.cp {
			t.Errorf("Copy(%d) = %d, want %d", c.addr, got, c.cp)
		}
	}
}

func TestGeometryReuse(t *testing.T) {
	g := NewGeometry(2)
	g.Note(1000, 32, 8)
	// Address range reused by a later allocation: the stale note must
	// be dropped in favor of the new one.
	g.Note(1000, 32, 0)
	if got := g.Copy(1008); got != 0 {
		t.Fatalf("after re-note, Copy(1008) = %d, want 0 (bonded)", got)
	}
	// A second, disjoint structure coexists.
	g.Note(5000, 16, 8)
	if got := g.Copy(5008); got != 1 {
		t.Fatalf("Copy(5008) = %d, want 1", got)
	}
	if got := g.Copy(1040); got != 1 {
		t.Fatalf("Copy(1040) = %d, want 1 (bonded copy 1)", got)
	}
}

func TestHotSites(t *testing.T) {
	h := NewHotSites()
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Record(tid, 7, tid, i%2 == 0, 8)
				h.Record(tid, 3, -1, false, 4)
			}
		}(tid)
	}
	wg.Wait()

	rep := h.Report()
	if len(rep) != 5 { // site 7 x 4 copies + site 3
		t.Fatalf("got %d buckets, want 5: %+v", len(rep), rep)
	}
	if rep[0].Site != 3 || rep[0].Loads != 400 || rep[0].Copy != -1 {
		t.Fatalf("hottest bucket wrong: %+v", rep[0])
	}
	for _, r := range rep[1:] {
		if r.Site != 7 || r.Loads+r.Stores != 100 || r.Bytes != 800 {
			t.Fatalf("site-7 bucket wrong: %+v", r)
		}
	}
	if top := h.Top(2); len(top) != 2 {
		t.Fatalf("Top(2) len = %d", len(top))
	}

	var buf bytes.Buffer
	err := h.Folded(&buf, func(site int) []string {
		return []string{"main", fmt.Sprintf("expr@%d", site)}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "main;expr@3 400\n") {
		t.Fatalf("folded output missing site 3 line:\n%s", out)
	}
	if !strings.Contains(out, "main;expr@7;copy 0 100\n") {
		t.Fatalf("folded output missing per-copy line:\n%s", out)
	}
	// Fallback frames.
	buf.Reset()
	if err := h.Folded(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "site#3 400\n") {
		t.Fatalf("folded fallback missing:\n%s", buf.String())
	}
}
