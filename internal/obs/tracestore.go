package obs

import (
	"sort"
	"sync"
	"time"
)

// RetainedTrace is one request trace offered to the store, plus the
// request-level facts the trace index renders.
type RetainedTrace struct {
	ID     string
	Tenant string
	Start  time.Time
	Dur    time.Duration
	Status int
	Code   string // structured error code, "" on success
	Error  bool   // retain unconditionally in the error ring
	Tracer *Tracer
}

// TraceSummary is the JSON shape of one index entry on /debug/traces.
type TraceSummary struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant,omitempty"`
	Start  string  `json:"start"`
	DurMs  float64 `json:"dur_ms"`
	Status int     `json:"status"`
	Code   string  `json:"code,omitempty"`
	Error  bool    `json:"error"`
	Events int     `json:"events"`
}

// TraceStore is the tail-retention policy for request traces: two
// bounded pools, one keeping the N slowest successful requests (a new
// trace evicts the current fastest once full, only if it is slower)
// and one FIFO ring keeping the last N errored requests. Lookup by ID
// spans both pools. All methods are safe on a nil store.
type TraceStore struct {
	mu    sync.Mutex
	limit int
	slow  []*RetainedTrace // sorted ascending by Dur; slow[0] is the eviction candidate
	errs  []*RetainedTrace // FIFO, newest last
	byID  map[string]*RetainedTrace
}

// DefaultTraceRetain is the per-pool capacity of NewTraceStore(0).
const DefaultTraceRetain = 32

// NewTraceStore creates a store retaining up to limit slow traces plus
// up to limit error traces (limit <= 0 selects DefaultTraceRetain).
func NewTraceStore(limit int) *TraceStore {
	if limit <= 0 {
		limit = DefaultTraceRetain
	}
	return &TraceStore{limit: limit, byID: map[string]*RetainedTrace{}}
}

// Offer submits a finished request trace; the store decides whether to
// keep it. Error traces displace the oldest error; successful traces
// must beat the fastest retained slow trace once the pool fills.
// No-op on a nil store or a nil trace/tracer.
func (ts *TraceStore) Offer(rt *RetainedTrace) {
	if ts == nil || rt == nil || rt.Tracer == nil || rt.ID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.byID[rt.ID]; ok {
		// Duplicate ID (client reused an X-Request-ID): keep the first
		// retained trace so /debug/traces/{id} stays stable.
		return
	}
	if rt.Error {
		if len(ts.errs) >= ts.limit {
			old := ts.errs[0]
			ts.errs = ts.errs[1:]
			delete(ts.byID, old.ID)
		}
		ts.errs = append(ts.errs, rt)
		ts.byID[rt.ID] = rt
		return
	}
	if len(ts.slow) >= ts.limit {
		if rt.Dur <= ts.slow[0].Dur {
			return // faster than everything retained: not interesting
		}
		old := ts.slow[0]
		ts.slow = ts.slow[1:]
		delete(ts.byID, old.ID)
	}
	i := sort.Search(len(ts.slow), func(i int) bool { return ts.slow[i].Dur >= rt.Dur })
	ts.slow = append(ts.slow, nil)
	copy(ts.slow[i+1:], ts.slow[i:])
	ts.slow[i] = rt
	ts.byID[rt.ID] = rt
}

// Get returns the retained trace with the given ID, or nil.
func (ts *TraceStore) Get(id string) *RetainedTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

// List returns summaries of every retained trace, slowest-successful
// first, then errors newest-first.
func (ts *TraceStore) List() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.slow)+len(ts.errs))
	for i := len(ts.slow) - 1; i >= 0; i-- {
		out = append(out, summarize(ts.slow[i]))
	}
	for i := len(ts.errs) - 1; i >= 0; i-- {
		out = append(out, summarize(ts.errs[i]))
	}
	return out
}

func summarize(rt *RetainedTrace) TraceSummary {
	return TraceSummary{
		ID:     rt.ID,
		Tenant: rt.Tenant,
		Start:  rt.Start.UTC().Format(time.RFC3339Nano),
		DurMs:  float64(rt.Dur) / float64(time.Millisecond),
		Status: rt.Status,
		Code:   rt.Code,
		Error:  rt.Error,
		Events: rt.Tracer.Len(),
	}
}
