package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods
// are no-ops on a nil receiver, so a producer holding a counter from a
// disabled registry pays one branch per update and nothing else.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on nil.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins instrument with a tracked
// maximum. Like Counter, nil receivers are inert.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value, updating the running maximum.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the largest value ever set; zero on nil.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// HistogramBuckets is the fixed bucket count of every Histogram:
// bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0
// counts v <= 0 together with v == 1 ... see bucketOf), so the largest
// bucket absorbs everything from 2^62 up. Power-of-two buckets keep
// the histogram allocation-free and bounded regardless of the
// observation range, which is all the op-count and byte-size
// distributions here need.
const HistogramBuckets = 64

// Histogram is a bounded power-of-two-bucket histogram with tracked
// count/sum/min/max. Observe is lock-free; nil receivers are inert.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	minInit atomic.Bool
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for u := uint64(v - 1); u != 0; u >>= 1 {
		b++
	}
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	return b
}

// Observe records one observation. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if h.minInit.CompareAndSwap(false, true) {
		h.min.Store(v)
	} else {
		for {
			m := h.min.Load()
			if v >= m || h.min.CompareAndSwap(m, v) {
				break
			}
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; zero on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (zero when empty or nil).
func (h *Histogram) Min() int64 {
	if h == nil || !h.minInit.Load() {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (zero when empty or nil).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Buckets returns the non-empty buckets as (upper-bound, count) pairs,
// where an upper bound of 2^i means the bucket counted observations in
// (2^(i-1), 2^i].
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	for i := 0; i < HistogramBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, BucketCount{Le: int64(1) << uint(i), Count: n})
		}
	}
	return out
}

// BucketCount is one non-empty histogram bucket: Count observations
// were <= Le (and greater than the previous bucket's bound).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the power-of-two buckets: the containing bucket is
// found by cumulative rank and the estimate interpolates linearly
// inside it, clamped to the observed [Min, Max] so a single
// observation (or a single-bucket distribution whose extremes are
// known exactly) is returned exactly. An empty or nil histogram
// estimates 0. The estimate is taken over a live histogram, so a
// concurrent Observe may or may not be included — each side of the
// race is a valid point-in-time answer.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	v := HistogramView{Count: h.Count(), Min: h.Min(), Max: h.Max(), Buckets: h.Buckets()}
	return v.Quantile(q)
}

// Quantile estimates the q-quantile of a snapshotted histogram; see
// (*Histogram).Quantile. Snapshots are what /metrics consumers and the
// serve-load harness hold, so the estimator lives on the view.
func (v HistogramView) Quantile(q float64) float64 {
	if v.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range v.Buckets {
		if float64(cum)+float64(b.Count) < rank {
			cum += b.Count
			continue
		}
		// Bucket 0 (Le == 1) holds every observation <= 1, so its lower
		// edge is 0 for interpolation; the Min clamp below repairs the
		// estimate when the true floor is known to be higher (or lower:
		// the estimator is documented for the non-negative distributions
		// every producer here records).
		lo := float64(b.Le) / 2
		if b.Le == 1 {
			lo = 0
		}
		est := lo + (float64(b.Le)-lo)*(rank-float64(cum))/float64(b.Count)
		if min := float64(v.Min); est < min {
			est = min
		}
		if max := float64(v.Max); est > max {
			est = max
		}
		return est
	}
	return float64(v.Max)
}

// Registry is a named collection of instruments. Lookup interns the
// instrument on first use, so producers fetch instruments once and
// update them lock-free afterwards. All methods are safe on a nil
// Registry and return nil instruments, preserving the zero-cost
// disabled path end to end.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter interns and returns the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument's state, in a
// shape that marshals directly to JSON.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue    `json:"gauges,omitempty"`
	Histograms map[string]HistogramView `json:"histograms,omitempty"`
}

// GaugeValue is a snapshotted gauge: last value and running maximum.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramView is a snapshotted histogram.
type HistogramView struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the registry's current state. Safe on nil (returns
// an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramView{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = HistogramView{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Buckets: h.Buckets(),
		}
	}
	return s
}

// Render writes a stable, human-readable text dump of the registry —
// one instrument per line, sorted by name — the format `gdsx pipeline
// -metrics` emits.
func (r *Registry) Render(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter %-40s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		if _, err := fmt.Fprintf(w, "gauge   %-40s %d (max %d)\n", name, g.Value, g.Max); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		mean := int64(0)
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		if _, err := fmt.Fprintf(w, "hist    %-40s count=%d sum=%d min=%d mean=%d max=%d\n",
			name, h.Count, h.Sum, h.Min, mean, h.Max); err != nil {
			return err
		}
	}
	return nil
}
