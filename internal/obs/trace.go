package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one structured trace event. TS and Dur are nanoseconds on
// the tracer's clock; the Chrome exporter converts to the microsecond
// doubles the trace-event format specifies.
//
// Events use fixed fields instead of an args map so the hot producers
// (per-iteration spans) allocate nothing beyond the slice slot: Loop
// and Iter carry the loop-scoped identity (0 / -1 when not
// applicable), Label a short string detail (violation rule, failure
// kind, allocation label), and V1/V2 two event-specific values whose
// exported names the event schema table below assigns per event name.
type Event struct {
	Name  string // event type: "region", "iter", "guard-verdict", ...
	Ph    byte   // trace-event phase: 'B', 'E', 'X' or 'i'
	TS    int64  // ns since the tracer started
	Dur   int64  // ns, complete ('X') events only
	Tid   int    // simulated thread id
	Loop  int    // loop ID, 0 when the event is not loop-scoped
	Iter  int64  // iteration, -1 when not iteration-scoped
	Label string // short detail
	V1    int64  // first event-specific value (see eventSchema)
	V2    int64  // second event-specific value (see eventSchema)
}

// eventSchema names the V1/V2 values per event name for the JSON
// export, and marks values that are excluded from the canonical stream
// because they are not deterministic across runs (addresses assigned
// by racing in-region allocations).
type eventSchema struct {
	v1, v2  string
	v1Canon bool
	v2Canon bool
	// noCanon excludes the event from the canonical stream entirely:
	// whether it occurs at all (and how often) depends on real thread
	// timing, not on the simulated work.
	noCanon bool
}

var eventSchemas = map[string]eventSchema{
	"region":        {v1: "nthreads", v1Canon: true, v2Canon: true},
	"iter":          {v1Canon: true, v2Canon: true},
	"guard-verdict": {v1: "logged", v2: "violations", v1Canon: true, v2Canon: true},
	// Snapshot page/byte totals depend on which pages the region dirtied;
	// racing in-region allocations make the concrete page set (and hence
	// both values) nondeterministic at n > 1, so neither is canonical.
	"checkpoint-commit": {v1: "pages", v2: "bytes"},
	"rollback":          {v1: "pages", v2: "bytes"},
	"demote":            {v1: "strikes", v1Canon: true, v2Canon: true},
	"repromote":         {v1Canon: true, v2Canon: true},
	"alloc":             {v1: "base", v2: "size", v2Canon: true},
	"free":              {v1: "base"},
	"oom":               {v2: "size", v2Canon: true},
	"expand":            {v1: "base", v2: "span", v2Canon: true},
	// A steal happens when one worker outpaces another — pure host
	// scheduling. victim/count are real but unreproducible.
	"steal": {v1: "victim", v2: "count", noCanon: true},
	// The per-region scheduler summary is deterministic except for its
	// steal count.
	"sched": {v1: "steals", v2: "nthreads", v2Canon: true},
	// Service-level request spans (emitted by internal/serve into a
	// request-scoped tracer): pure wall-clock phases of the HTTP request
	// path, never part of a runtime-parity canonical stream.
	"queue-wait":   {noCanon: true},
	"cache-lookup": {noCanon: true},
	"build":        {noCanon: true},
	"execute":      {noCanon: true},
}

func schemaOf(name string) eventSchema {
	if s, ok := eventSchemas[name]; ok {
		return s
	}
	return eventSchema{v1: "v1", v2: "v2", v1Canon: true, v2Canon: true}
}

// DefaultTraceLimit bounds the event buffer of NewTracer(0): enough
// for every region-granularity event of any workload plus a generous
// iteration-span budget, at roughly 20 MiB of buffer.
const DefaultTraceLimit = 1 << 18

// ServiceTid is the simulated-thread id service-level producers emit
// request spans on. It sits far above any worker tid a runtime config
// can reach, so the request-phase track and the sim-thread tracks
// never collide in an exported trace.
const ServiceTid = 1000

// Tracer collects events from all threads of a run. Emission is a
// mutex-guarded append with an early-out once the limit is reached
// (dropped events are counted, never silently lost).
//
// Tag, when set (before the tracer is shared across goroutines),
// stamps every exported Chrome event with a request_id arg — the
// request-scoped tracers gdsxd opens per traced request set it to the
// request ID so runtime region/guard/rollback events are attributable
// to the request that produced them.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
	start   time.Time

	Tag string
}

// NewTracer creates a tracer holding at most limit events
// (limit <= 0 selects DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit, start: time.Now()}
}

// Now returns the current trace clock in nanoseconds since the tracer
// was created.
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// Emit appends one event, dropping it (and counting the drop) once the
// buffer is full.
func (t *Tracer) Emit(ev Event) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// EmitBatch appends a batch of events under one lock acquisition (used
// by the per-worker iteration-span buffers flushed at region end).
func (t *Tracer) EmitBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	t.mu.Lock()
	room := t.limit - len(t.events)
	if room < 0 {
		room = 0
	}
	if room >= len(evs) {
		t.events = append(t.events, evs...)
	} else {
		t.events = append(t.events, evs[:room]...)
		t.dropped += int64(len(evs) - room)
	}
	t.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of collected events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded because the buffer
// was full.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is the JSON shape of one Chrome trace-event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of a trace file, the shape
// Perfetto and chrome://tracing load directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the trace in the Chrome trace-event JSON
// object format. Simulated threads appear as tids of pid 1, named via
// metadata events so Perfetto labels the tracks.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	seen := map[int]bool{}
	tids := []int{}
	for _, ev := range events {
		if !seen[ev.Tid] {
			seen[ev.Tid] = true
			tids = append(tids, ev.Tid)
		}
	}
	sort.Ints(tids)
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Cat: "__metadata",
		Args: map[string]any{"name": "gdsx simulated machine"},
	})
	for _, tid := range tids {
		name := fmt.Sprintf("sim-thread-%d", tid)
		if tid == ServiceTid {
			name = "gdsxd-request"
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid, Cat: "__metadata",
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		sch := schemaOf(ev.Name)
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "gdsx",
			Ph:   string(ev.Ph),
			TS:   float64(ev.TS) / 1e3,
			Pid:  1,
			Tid:  ev.Tid,
		}
		if ev.Ph == 'X' {
			dur := float64(ev.Dur) / 1e3
			ce.Dur = &dur
		}
		if ev.Ph == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		args := map[string]any{}
		if ev.Loop != 0 {
			args["loop"] = ev.Loop
		}
		if ev.Iter >= 0 && ev.Name == "iter" {
			args["iter"] = ev.Iter
		}
		if ev.Label != "" {
			args["label"] = ev.Label
		}
		if sch.v1 != "" {
			args[sch.v1] = ev.V1
		}
		if sch.v2 != "" {
			args[sch.v2] = ev.V2
		}
		if t.Tag != "" {
			args["request_id"] = t.Tag
		}
		if len(args) > 0 {
			ce.Args = args
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// Canonical returns the event stream as a sorted multiset of strings
// with every nondeterministic dimension removed: timestamps and
// durations always, the worker thread id (DOACROSS dynamic scheduling
// assigns iterations to threads nondeterministically), and the values
// the schema marks non-canonical (addresses produced by racing
// in-region allocations). Two runs that did the same simulated work
// produce equal canonical streams, which is what the engine-parity
// test asserts.
func (t *Tracer) Canonical() []string {
	events := t.Events()
	out := make([]string, 0, len(events))
	for _, ev := range events {
		sch := schemaOf(ev.Name)
		if sch.noCanon {
			continue
		}
		v1, v2 := int64(0), int64(0)
		if sch.v1Canon {
			v1 = ev.V1
		}
		if sch.v2Canon {
			v2 = ev.V2
		}
		out = append(out, fmt.Sprintf("%s/%c loop=%d iter=%d label=%s v1=%d v2=%d",
			ev.Name, ev.Ph, ev.Loop, ev.Iter, ev.Label, v1, v2))
	}
	sort.Strings(out)
	return out
}
