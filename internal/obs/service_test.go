package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestQuantilePinned(t *testing.T) {
	// Empty and nil histograms estimate 0 at every q.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}
	if got := (&Histogram{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}

	// A single observation is returned exactly at every q: the Min/Max
	// clamp collapses the containing bucket's interpolation range.
	single := &Histogram{}
	single.Observe(100)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 100 {
			t.Fatalf("single-observation Quantile(%v) = %v, want 100", q, got)
		}
	}

	// Exact bucket boundaries: {1, 2, 4, 8} each land on a bucket's
	// upper edge, and with one observation per bucket the rank-q
	// estimate interpolates to exactly that edge.
	edges := &Histogram{}
	for _, v := range []int64{1, 2, 4, 8} {
		edges.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1},    // rank clamps to the first observation
		{0.25, 1}, // first bucket's edge
		{0.5, 2},
		{0.75, 4},
		{1, 8},
	} {
		if got := edges.Quantile(tc.q); got != tc.want {
			t.Fatalf("edges Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// Two-bucket distribution: 50 observations of 4, 50 of 16. Low
	// quantiles sit in the first bucket and clamp to Min=4; q=1 clamps
	// to Max=16.
	two := &Histogram{}
	for i := 0; i < 50; i++ {
		two.Observe(4)
		two.Observe(16)
	}
	if got := two.Quantile(0.25); got != 4 {
		t.Fatalf("two-bucket Quantile(0.25) = %v, want 4", got)
	}
	if got := two.Quantile(1); got != 16 {
		t.Fatalf("two-bucket Quantile(1) = %v, want 16", got)
	}
	// The q=0.75 estimate falls inside the (8,16] bucket: between 8 and
	// 16, clamped by neither extreme.
	if got := two.Quantile(0.75); got < 8 || got > 16 {
		t.Fatalf("two-bucket Quantile(0.75) = %v, want within [8,16]", got)
	}

	// q out of range clamps.
	if got := edges.Quantile(-1); got != 1 {
		t.Fatalf("Quantile(-1) = %v, want 1", got)
	}
	if got := edges.Quantile(2); got != 8 {
		t.Fatalf("Quantile(2) = %v, want 8", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i&1023) + 1)
	}
}

func TestLabeledParseName(t *testing.T) {
	if got := Labeled("serve.requests"); got != "serve.requests" {
		t.Fatalf("Labeled no-kv = %q", got)
	}
	name := Labeled("serve.errors", "code", "timeout", "tenant", "t1")
	if name != "serve.errors|code=timeout|tenant=t1" {
		t.Fatalf("Labeled = %q", name)
	}
	base, labels := ParseName(name)
	if base != "serve.errors" || len(labels) != 2 ||
		labels[0] != [2]string{"code", "timeout"} || labels[1] != [2]string{"tenant", "t1"} {
		t.Fatalf("ParseName = %q %v", base, labels)
	}
	base, labels = ParseName("plain")
	if base != "plain" || labels != nil {
		t.Fatalf("ParseName(plain) = %q %v", base, labels)
	}
	// Malformed segments are dropped, not rendered.
	base, labels = ParseName("x|nokv|k=v")
	if base != "x" || len(labels) != 1 || labels[0] != [2]string{"k", "v"} {
		t.Fatalf("ParseName(malformed) = %q %v", base, labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(10)
	r.Counter(Labeled("serve.errors", "code", "timeout")).Add(2)
	r.Counter(Labeled("serve.errors", "code", "oom")).Add(1)
	r.Gauge("serve.shed_level").Set(2)
	h := r.Histogram("serve.latency_us")
	h.Observe(3)  // bucket le=4
	h.Observe(3)  // bucket le=4
	h.Observe(12) // bucket le=16

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "gdsx"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE gdsx_serve_requests_total counter",
		"gdsx_serve_requests_total 10",
		"# TYPE gdsx_serve_errors_total counter",
		`gdsx_serve_errors_total{code="oom"} 1`,
		`gdsx_serve_errors_total{code="timeout"} 2`,
		"# TYPE gdsx_serve_shed_level gauge",
		"gdsx_serve_shed_level 2",
		"gdsx_serve_shed_level_max 2",
		"# TYPE gdsx_serve_latency_us histogram",
		`gdsx_serve_latency_us_bucket{le="4"} 2`,
		`gdsx_serve_latency_us_bucket{le="16"} 3`,
		`gdsx_serve_latency_us_bucket{le="+Inf"} 3`,
		"gdsx_serve_latency_us_sum 18",
		"gdsx_serve_latency_us_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and ascending by le.
	i4 := strings.Index(out, `le="4"`)
	i16 := strings.Index(out, `le="16"`)
	iInf := strings.Index(out, `le="+Inf"`)
	if !(i4 < i16 && i16 < iInf) {
		t.Fatalf("bucket order wrong (le=4 at %d, le=16 at %d, +Inf at %d):\n%s", i4, i16, iInf, out)
	}

	// One TYPE header per family, even with multiple labelled series.
	if n := strings.Count(out, "# TYPE gdsx_serve_errors_total counter"); n != 1 {
		t.Fatalf("errors family has %d TYPE headers, want 1:\n%s", n, out)
	}

	// Every non-comment line must match the exposition line shape.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	// Nil registry renders nothing and does not panic.
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf, "gdsx"); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, buf.String())
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("serve.tenant.requests", "tenant", `we"ird\te`+"\n"+`nant`)).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "gdsx"); err != nil {
		t.Fatal(err)
	}
	want := `gdsx_serve_tenant_requests_total{tenant="we\"ird\\te\nnant"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label missing %q:\n%s", want, buf.String())
	}
}

func TestTraceStoreRetention(t *testing.T) {
	mk := func(id string, dur time.Duration, isErr bool) *RetainedTrace {
		tr := NewTracer(16)
		tr.Tag = id
		tr.Emit(Event{Name: "execute", Ph: 'X', Dur: int64(dur), Tid: ServiceTid, Iter: -1})
		status, code := 200, ""
		if isErr {
			status, code = 500, "runtime_error"
		}
		return &RetainedTrace{
			ID: id, Tenant: "t", Start: time.Unix(0, 0), Dur: dur,
			Status: status, Code: code, Error: isErr, Tracer: tr,
		}
	}

	ts := NewTraceStore(2)
	ts.Offer(mk("a", 10*time.Millisecond, false))
	ts.Offer(mk("b", 30*time.Millisecond, false))
	// Pool full: "c" is slower than the fastest retained ("a") and
	// replaces it; "d" is faster than everything retained and is dropped.
	ts.Offer(mk("c", 20*time.Millisecond, false))
	ts.Offer(mk("d", 1*time.Millisecond, false))
	if ts.Get("a") != nil || ts.Get("d") != nil {
		t.Fatal("evicted/rejected traces still retrievable")
	}
	if ts.Get("b") == nil || ts.Get("c") == nil {
		t.Fatal("slowest traces not retained")
	}

	// Errors retain unconditionally, FIFO-bounded.
	ts.Offer(mk("e1", 1*time.Millisecond, true))
	ts.Offer(mk("e2", 1*time.Millisecond, true))
	ts.Offer(mk("e3", 1*time.Millisecond, true))
	if ts.Get("e1") != nil {
		t.Fatal("oldest error not evicted")
	}
	if ts.Get("e2") == nil || ts.Get("e3") == nil {
		t.Fatal("recent errors not retained")
	}

	// Error eviction must not disturb the slow pool.
	if ts.Get("b") == nil || ts.Get("c") == nil {
		t.Fatal("slow pool disturbed by error retention")
	}

	// Duplicate IDs keep the first retained trace.
	first := ts.Get("b")
	ts.Offer(mk("b", 99*time.Millisecond, false))
	if ts.Get("b") != first {
		t.Fatal("duplicate ID replaced original trace")
	}

	// Index: slowest-successful first, then errors newest-first.
	list := ts.List()
	if len(list) != 4 {
		t.Fatalf("List len = %d, want 4", len(list))
	}
	if list[0].ID != "b" || list[1].ID != "c" || list[2].ID != "e3" || list[3].ID != "e2" {
		t.Fatalf("List order wrong: %+v", list)
	}
	if list[2].Code != "runtime_error" || !list[2].Error || list[2].Status != 500 {
		t.Fatalf("error summary wrong: %+v", list[2])
	}
	if _, err := json.Marshal(list); err != nil {
		t.Fatalf("summaries not JSON-marshalable: %v", err)
	}

	// Nil-safety.
	var nilStore *TraceStore
	nilStore.Offer(mk("x", time.Millisecond, false))
	if nilStore.Get("x") != nil || nilStore.List() != nil {
		t.Fatal("nil store not inert")
	}
	ts.Offer(nil)
	ts.Offer(&RetainedTrace{ID: "no-tracer"})
}

func TestTracerTagInChromeExport(t *testing.T) {
	tr := NewTracer(0)
	tr.Tag = "req-42"
	tr.Emit(Event{Name: "queue-wait", Ph: 'X', TS: 0, Dur: 1000, Tid: ServiceTid, Iter: -1})
	tr.Emit(Event{Name: "region", Ph: 'B', TS: 2000, Tid: 0, Loop: 1, Iter: -1, V1: 4})
	tr.Emit(Event{Name: "region", Ph: 'E', TS: 5000, Tid: 0, Loop: 1, Iter: -1})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	sawService, sawRegion := false, false
	for _, ev := range parsed.TraceEvents {
		name := ev["name"].(string)
		if ev["ph"] == "M" {
			if name == "thread_name" && ev["tid"].(float64) == ServiceTid {
				if got := ev["args"].(map[string]any)["name"]; got != "gdsxd-request" {
					t.Fatalf("service track name = %v", got)
				}
				sawService = true
			}
			continue
		}
		args, _ := ev["args"].(map[string]any)
		if args["request_id"] != "req-42" {
			t.Fatalf("event %q missing request_id: %v", name, ev)
		}
		if name == "region" {
			sawRegion = true
		}
	}
	if !sawService || !sawRegion {
		t.Fatalf("export missing tracks: service=%v region=%v", sawService, sawRegion)
	}

	// Service spans stay out of the canonical stream.
	for _, line := range tr.Canonical() {
		if strings.HasPrefix(line, "queue-wait") {
			t.Fatalf("service span leaked into canonical stream: %q", line)
		}
	}
}
