package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label convention: registry instruments are keyed by flat strings, so
// labelled series encode their labels into the interned name as
// "base|key=value|key2=value2". Producers build such names with
// Labeled once per series and update the instrument lock-free
// afterwards; the Prometheus renderer splits the name back into a
// metric family plus a label set, and everything else (Render, the
// text dump, JSON snapshots) treats the name as opaque.

// Labeled returns the registry name for base carrying the given
// key/value label pairs (kv must alternate key, value).
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte('|')
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	return b.String()
}

// ParseName splits a registry name into its base and label pairs (nil
// for an unlabelled name).
func ParseName(name string) (base string, labels [][2]string) {
	parts := strings.Split(name, "|")
	base = parts[0]
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			continue // malformed segment: ignore rather than emit bad exposition
		}
		labels = append(labels, [2]string{k, v})
	}
	return base, labels
}

// promName sanitizes a metric base name into the Prometheus name
// charset [a-zA-Z0-9_:], prefixed with the namespace.
func promName(namespace, base string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promLabels renders a label set as {k="v",...}; extra pairs (the
// histogram "le") are appended after the parsed ones. Empty set
// renders as "".
func promLabels(labels [][2]string, extra ...[2]string) string {
	all := append(append([][2]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, promName("", kv[0]), promEscape(kv[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily is one metric family being assembled: its TYPE line plus
// every series' lines, grouped so the exposition parser sees each
// family's header exactly once. Series are keyed by their rendered
// label set for a stable output order; a series' own lines (a
// histogram's ascending-le buckets) keep insertion order.
type promFamily struct {
	typ    string
	series map[string][]string
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters gain a _total suffix,
// gauges are emitted as <name> and <name>_max, and the power-of-two
// histograms render as the standard cumulative <name>_bucket /
// <name>_sum / <name>_count triple whose le bounds are the bucket
// upper edges. Series with the same base (differing only in labels)
// share one family. Safe on a nil registry (renders nothing).
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	s := r.Snapshot()
	fams := map[string]*promFamily{}
	add := func(name, typ, seriesKey string, lines ...string) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ, series: map[string][]string{}}
			fams[name] = f
		}
		f.series[seriesKey] = append(f.series[seriesKey], lines...)
	}
	for name, v := range s.Counters {
		base, labels := ParseName(name)
		fam := promName(namespace, base) + "_total"
		ls := promLabels(labels)
		add(fam, "counter", ls, fmt.Sprintf("%s%s %d", fam, ls, v))
	}
	for name, g := range s.Gauges {
		base, labels := ParseName(name)
		fam := promName(namespace, base)
		ls := promLabels(labels)
		add(fam, "gauge", ls, fmt.Sprintf("%s%s %d", fam, ls, g.Value))
		maxFam := fam + "_max"
		add(maxFam, "gauge", ls, fmt.Sprintf("%s%s %d", maxFam, ls, g.Max))
	}
	for name, h := range s.Histograms {
		base, labels := ParseName(name)
		fam := promName(namespace, base)
		ls := promLabels(labels)
		var cum int64
		var lines []string
		for _, b := range h.Buckets {
			cum += b.Count
			lines = append(lines, fmt.Sprintf(`%s_bucket%s %d`,
				fam, promLabels(labels, [2]string{"le", fmt.Sprintf("%d", b.Le)}), cum))
		}
		lines = append(lines,
			fmt.Sprintf(`%s_bucket%s %d`, fam, promLabels(labels, [2]string{"le", "+Inf"}), h.Count),
			fmt.Sprintf("%s_sum%s %d", fam, ls, h.Sum),
			fmt.Sprintf("%s_count%s %d", fam, ls, h.Count))
		add(fam, "histogram", ls, lines...)
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, l := range f.series[k] {
				if _, err := fmt.Fprintln(w, l); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
