// Package obs is the runtime observability layer: a structured event
// tracer with a Chrome trace-event (Perfetto-loadable) exporter, a
// metrics registry of counters, gauges and bounded histograms, and a
// hot-site profiler that attributes memory-system cost to MiniC source
// positions per expanded copy.
//
// The package is deliberately a leaf: it imports only the standard
// library, so every layer of the stack — the interpreter (both
// engines, through the shared hook layer), the guard monitor, the
// region-recovery controller and the simulated allocator — can feed it
// without import cycles. All producers share one discipline: a nil
// *Observer (or a nil component inside one) short-circuits at the
// first branch, so a run without observability pays nothing beyond a
// pointer test.
//
// The three components are independent and independently priced:
//
//   - Trace and Metrics observe region-, iteration- and allocation-
//     granularity happenings: cheap enough to leave on (gdsxbench -obs
//     measures the overhead; BENCH_obs.json records it).
//   - Hot enables the per-access profile. It rides the interpreter's
//     Observe hook, which switches every sited memory access onto the
//     slow hook path — the same price the guard monitor pays — so it
//     is a separate opt-in (gdsx pipeline -hotspots).
package obs

// Observer bundles the observability components one run feeds. Any
// field may be nil to disable that component; a nil *Observer disables
// everything.
type Observer struct {
	// Trace receives structured events (region enter/exit, per-thread
	// iteration spans, guard verdicts, checkpoint/rollback/demotion,
	// allocator events).
	Trace *Tracer
	// Metrics receives counters, gauges and histograms.
	Metrics *Registry
	// Hot, when set, enables the per-access hot-site profiler. This is
	// the expensive component: it forces every sited memory access
	// through the interpreter's Observe hook.
	Hot *HotSites
	// IterSpans emits one trace span per parallel-loop iteration per
	// thread (name "iter"). Spans are buffered per worker and flushed
	// at the region's end, so the only per-iteration costs are two
	// clock reads and a slice append.
	IterSpans bool
	// AllocEvents emits one instant trace event per allocator
	// operation (alloc/free/oom). Metrics for the allocator are always
	// recorded when Metrics is set; only the per-operation trace
	// events are gated, since allocation-heavy programs can swamp the
	// trace buffer with them.
	AllocEvents bool
}

// Emit appends ev to the trace, stamping the current trace clock when
// the event carries no timestamp. Safe on a nil Observer or one
// without a Tracer.
func (o *Observer) Emit(ev Event) {
	if o == nil || o.Trace == nil {
		return
	}
	if ev.TS == 0 {
		ev.TS = o.Trace.Now()
	}
	o.Trace.Emit(ev)
}

// Counter returns the named counter, or a nil no-op counter when the
// observer carries no registry. Safe on a nil Observer.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or a nil no-op gauge. Safe on a nil
// Observer.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or a nil no-op histogram.
// Safe on a nil Observer.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}
