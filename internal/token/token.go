// Package token defines the lexical tokens of MiniC, the C subset used
// as the source language for general data structure expansion, together
// with source positions for diagnostics.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of MiniC token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123, 0x7f
	FLOAT  // 1.5, 2e10
	CHAR   // 'a'
	STRING // "abc"

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>
	NOT // ~

	LAND // &&
	LOR  // ||
	LNOT // !

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=
	INC       // ++
	DEC       // --
	ARROW     // ->
	DOT       // .
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	QUESTION  // ?
	LPAREN    // (
	RPAREN    // )
	LBRACK    // [
	RBRACK    // ]
	LBRACE    // {
	RBRACE    // }

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwUnsigned
	KwStruct
	KwTypedef
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwSizeof
	KwParallel // "parallel" loop annotation (DOALL)
	KwDoacross // "doacross" modifier for parallel loops
	KwStatic
	KwConst
	KwExtern
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", CHAR: "CHAR", STRING: "STRING",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>", NOT: "~",
	LAND: "&&", LOR: "||", LNOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", GTR: ">", LEQ: "<=", GEQ: ">=",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=",
	QUOASSIGN: "/=", REMASSIGN: "%=", ANDASSIGN: "&=", ORASSIGN: "|=",
	XORASSIGN: "^=", SHLASSIGN: "<<=", SHRASSIGN: ">>=",
	INC: "++", DEC: "--", ARROW: "->", DOT: ".", COMMA: ",",
	SEMICOLON: ";", COLON: ":", QUESTION: "?",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{", RBRACE: "}",
	KwVoid: "void", KwChar: "char", KwShort: "short", KwInt: "int",
	KwLong: "long", KwFloat: "float", KwDouble: "double", KwUnsigned: "unsigned",
	KwStruct: "struct", KwTypedef: "typedef",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do", KwFor: "for",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwSizeof: "sizeof", KwParallel: "parallel", KwDoacross: "doacross",
	KwStatic: "static", KwConst: "const", KwExtern: "extern",
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{}

func init() {
	for k := KwVoid; k <= KwExtern; k++ {
		Keywords[kindNames[k]] = k
	}
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwVoid && k <= KwExtern }

// IsAssign reports whether k is an assignment operator (including
// compound assignments such as += and <<=).
func (k Kind) IsAssign() bool { return k >= ASSIGN && k <= SHRASSIGN }

// CompoundOp returns the underlying binary operator of a compound
// assignment (ADD for ADDASSIGN, and so on). It panics for plain ASSIGN
// and for non-assignment kinds.
func (k Kind) CompoundOp() Kind {
	switch k {
	case ADDASSIGN:
		return ADD
	case SUBASSIGN:
		return SUB
	case MULASSIGN:
		return MUL
	case QUOASSIGN:
		return QUO
	case REMASSIGN:
		return REM
	case ANDASSIGN:
		return AND
	case ORASSIGN:
		return OR
	case XORASSIGN:
		return XOR
	case SHLASSIGN:
		return SHL
	case SHRASSIGN:
		return SHR
	}
	panic("token: not a compound assignment: " + k.String())
}

// Pos is a source position, 1-based in both line and column.
// The zero Pos is "no position".
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real location data.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as file:line:col, omitting empty parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its position and literal text.
// Lit holds the raw source spelling for IDENT, INT, FLOAT, CHAR and
// STRING tokens; it is empty for operators and keywords.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string
}

func (t Token) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
