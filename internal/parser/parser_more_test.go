package parser

import (
	"strings"
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestTypedefChains(t *testing.T) {
	prog := mustParse(t, `
typedef int word;
typedef word *wordp;
int main() {
    word w = 1;
    wordp p = &w;
    *p = 2;
    return w;
}`)
	var ptype *ctypes.Type
	ast.Inspect(prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok && d.Name == "p" {
			ptype = d.Type
		}
		return true
	})
	if ptype == nil || ptype.Kind != ctypes.Ptr || ptype.Elem.Kind != ctypes.Int {
		t.Fatalf("wordp resolved to %v", ptype)
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	prog := mustParse(t, `
struct tree {
    int v;
    struct tree *left;
    struct tree *right;
};
int main() { struct tree t; t.v = 1; return t.v; }`)
	var st *ctypes.Type
	for _, d := range prog.Decls {
		if sd, ok := d.(*ast.StructDef); ok {
			st = sd.Type
		}
	}
	if st.Size() != 24 {
		t.Fatalf("tree size = %d", st.Size())
	}
	if st.Field("left").Type.Elem != st {
		t.Fatal("self-referential pointer does not point back to the struct")
	}
}

func TestDirectStructSelfContainmentRejected(t *testing.T) {
	_, err := Parse("t.c", "struct s { struct s inner; }; int main() { return 0; }")
	if err == nil || !strings.Contains(err.Error(), "contains itself") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommaDeclarations(t *testing.T) {
	prog := mustParse(t, `
int a, *b, c[4];
int main() {
    int x, *y;
    y = &x;
    *y = 1;
    return a + c[0] + x;
}`)
	g := prog.Globals()
	if len(g) != 3 {
		t.Fatalf("globals = %d", len(g))
	}
	if g[0].Type.Kind != ctypes.Int || g[1].Type.Kind != ctypes.Ptr || g[2].Type.Kind != ctypes.Array {
		t.Fatalf("comma declarator types: %v %v %v", g[0].Type, g[1].Type, g[2].Type)
	}
}

func TestSyncMarkersParse(t *testing.T) {
	prog := mustParse(t, `
int main() {
    int i;
    int s;
    parallel doacross for (i = 0; i < 4; i++) {
        __sync_wait();
        s += i;
        __sync_post();
    }
    return s;
}`)
	var waits, posts int
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SyncWait:
			waits++
		case *ast.SyncPost:
			posts++
		}
		return true
	})
	if waits != 1 || posts != 1 {
		t.Fatalf("waits=%d posts=%d", waits, posts)
	}
}

func TestArrayParamDecays(t *testing.T) {
	prog := mustParse(t, `
int f(int a[16]) { return a[0]; }
int main() { int b[16]; return f(b); }`)
	f := prog.Func("f")
	if f.Params[0].Type.Kind != ctypes.Ptr {
		t.Fatalf("array param type = %v, want pointer decay", f.Params[0].Type)
	}
}

func TestTernaryChain(t *testing.T) {
	prog := mustParse(t, `
int main() {
    int a = 1;
    int b = a ? 1 : a ? 2 : 3;
    return b;
}`)
	_ = prog
}

func TestUnsignedForms(t *testing.T) {
	prog := mustParse(t, `
unsigned int a;
unsigned b;
unsigned char c;
unsigned short d;
unsigned long e;
int main() { return 0; }`)
	for _, g := range prog.Globals() {
		if !g.Type.Unsigned {
			t.Fatalf("%s not unsigned: %v", g.Name, g.Type)
		}
	}
}

func TestVoidParamList(t *testing.T) {
	prog := mustParse(t, "int f(void) { return 1; } int main() { return f(); }")
	if len(prog.Func("f").Params) != 0 {
		t.Fatal("f(void) should have no params")
	}
}

func TestEmptyStatement(t *testing.T) {
	mustParse(t, "int main() { ;;; return 0; }")
}

func TestPrintedSyncRoundTrip(t *testing.T) {
	src := `
int main() {
    int i;
    int s;
    parallel doacross for (i = 0; i < 4; i++) {
        __sync_wait();
        s += i;
        __sync_post();
    }
    return s;
}`
	prog := mustParse(t, src)
	printed := ast.Print(prog)
	if !strings.Contains(printed, "__sync_wait();") {
		t.Fatalf("printer lost sync markers:\n%s", printed)
	}
	mustParse(t, printed)
}
