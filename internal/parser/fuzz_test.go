package parser

import (
	"testing"

	"gdsx/internal/sema"
)

// FuzzParse asserts the frontend never panics: arbitrary input either
// parses (and then type-checks without panicking) or returns an error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"int main() { return 0; }",
		"struct s { int a; struct s *n; }; int main() { struct s v; return v.a; }",
		"int main() { int i; parallel doacross for (i=0;i<4;i++) { __sync_wait(); __sync_post(); } return i; }",
		"typedef int t; t main() { t x = (t)1.5; return x << 2 >> 1 & 3 | 4 ^ 5; }",
		"int a[3][4]; int main(int n) { int v[n]; return a[1][2] + sizeof(v); }",
		"int main() { char *s = \"x\\n\"; return s[0] ? 1 : 2; }",
		"int f(int*p){return *p++;} int main(){int x;return f(&x);}",
		"int main() { /* unterminated",
		"int main() { 0x }",
		"}{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.c", src)
		if err != nil {
			return
		}
		// Checking must not panic either.
		_, _ = sema.Check(prog)
	})
}
