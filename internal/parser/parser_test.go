package parser

import (
	"strings"
	"testing"

	"gdsx/internal/ast"
)

const sample = `
struct node {
    int val;
    struct node *next;
};

int gcount;
int table[16];
double ratio = 1.5;

int add(int a, int b) {
    return a + b;
}

int main() {
    int i;
    int n = 10;
    int a[10];
    struct node *head = 0;
    for (i = 0; i < n; i++) {
        struct node *p = (struct node*)malloc(sizeof(struct node));
        p->val = i;
        p->next = head;
        head = p;
        a[i] = add(i, gcount);
    }
    parallel for (i = 0; i < n; i++) {
        a[i] = a[i] * 2;
    }
    while (head != 0) {
        gcount += head->val;
        head = head->next;
    }
    print_int(gcount);
    return 0;
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse("sample.c", sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Func("main") == nil || prog.Func("add") == nil {
		t.Fatalf("missing functions")
	}
	if len(prog.Globals()) != 3 {
		t.Fatalf("globals = %d, want 3", len(prog.Globals()))
	}
	if prog.NumLoops != 3 {
		t.Fatalf("NumLoops = %d, want 3", prog.NumLoops)
	}
}

func TestParallelKinds(t *testing.T) {
	prog, err := Parse("p.c", `
int main() {
    int i;
    int s;
    parallel doacross for (i = 0; i < 4; i++) { s += i; }
    return 0;
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var got ast.ParKind
	ast.Inspect(prog, func(n ast.Node) bool {
		if f, ok := n.(*ast.For); ok {
			got = f.Par
		}
		return true
	})
	if got != ast.DOACROSS {
		t.Fatalf("Par = %v, want DOACROSS", got)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse("sample.c", sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	src := ast.Print(prog)
	prog2, err := Parse("rt.c", src)
	if err != nil {
		t.Fatalf("reparse printed source: %v\n%s", err, src)
	}
	src2 := ast.Print(prog2)
	if src != src2 {
		t.Fatalf("print not stable:\n--- first\n%s\n--- second\n%s", src, src2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing semi", "int main() { int x }", "expected"},
		{"bad struct", "int main() { struct nothere x; return 0; }", "undefined struct"},
		{"unterminated", "int main() { return 0;", "unexpected EOF"},
		{"bad dim", "int a[0]; int main() { return 0; }", "positive"},
		{"inner vla", "int main(int n) { int a[2][n]; return 0; }", "outermost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("e.c", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestCastVsParen(t *testing.T) {
	prog, err := Parse("c.c", `
typedef int myint;
int main() {
    int x = 3;
    long y = (long)x + 1;
    myint z = (x) + 1;
    short *sp = (short*)malloc(8);
    sp[0] = 1;
    return (int)y + z;
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	casts := 0
	ast.Inspect(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.Cast); ok {
			casts++
		}
		return true
	})
	if casts != 3 {
		t.Fatalf("casts = %d, want 3", casts)
	}
}
