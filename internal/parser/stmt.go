package parser

import (
	"gdsx/internal/ast"
	"gdsx/internal/token"
)

func (p *parser) blockStmt() (*ast.Block, error) {
	pos := p.cur().Pos
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	b := &ast.Block{}
	b.SetPos(pos)
	for !p.accept(token.RBRACE) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.at(token.LBRACE):
		return p.blockStmt()

	case p.startsType(0) && !(p.at(token.IDENT) && p.peekKind(1) != token.IDENT && p.peekKind(1) != token.MUL):
		// A type token starts a declaration. For typedef names we also
		// require the next token to look like a declarator, so that
		// expression statements naming a typedef-shadowing variable
		// still parse (MiniC forbids such shadowing anyway).
		return p.declStmt()

	case p.at(token.KwIf):
		p.next()
		if _, err := p.expect(token.LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els ast.Stmt
		if p.accept(token.KwElse) {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		s := &ast.If{Cond: cond, Then: then, Else: els}
		s.SetPos(pos)
		return s, nil

	case p.at(token.KwWhile):
		p.next()
		if _, err := p.expect(token.LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		p.loopID++
		s := &ast.While{Cond: cond, Body: body, ID: p.loopID}
		s.SetPos(pos)
		return s, nil

	case p.at(token.KwDo):
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		p.loopID++
		s := &ast.DoWhile{Body: body, Cond: cond, ID: p.loopID}
		s.SetPos(pos)
		return s, nil

	case p.at(token.KwParallel):
		p.next()
		par := ast.DOALL
		if p.accept(token.KwDoacross) {
			par = ast.DOACROSS
		}
		if !p.at(token.KwFor) {
			return nil, p.errf("expected 'for' after 'parallel'")
		}
		return p.forStmt(pos, par)

	case p.at(token.KwFor):
		return p.forStmt(pos, ast.Sequential)

	case p.at(token.KwReturn):
		p.next()
		s := &ast.Return{}
		s.SetPos(pos)
		if !p.at(token.SEMICOLON) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return s, nil

	case p.at(token.KwBreak):
		p.next()
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		s := &ast.Break{}
		s.SetPos(pos)
		return s, nil

	case p.at(token.KwContinue):
		p.next()
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		s := &ast.Continue{}
		s.SetPos(pos)
		return s, nil

	case p.at(token.SEMICOLON):
		p.next()
		b := &ast.Block{}
		b.SetPos(pos)
		return b, nil

	case p.at(token.IDENT) && p.peekKind(1) == token.LPAREN &&
		(p.cur().Lit == "__sync_wait" || p.cur().Lit == "__sync_post"):
		// Ordered-section markers, printed by the sync-placement pass
		// and re-parsed here so transformed programs stay legal MiniC.
		wait := p.cur().Lit == "__sync_wait"
		p.next()
		p.next()
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		if wait {
			s := &ast.SyncWait{}
			s.SetPos(pos)
			return s, nil
		}
		s := &ast.SyncPost{}
		s.SetPos(pos)
		return s, nil
	}

	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	s := &ast.ExprStmt{X: x}
	s.SetPos(pos)
	return s, nil
}

func (p *parser) forStmt(pos token.Pos, par ast.ParKind) (ast.Stmt, error) {
	p.next() // for
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	s := &ast.For{Par: par}
	s.SetPos(pos)
	if !p.accept(token.SEMICOLON) {
		if p.startsType(0) {
			d, err := p.declStmtNoSemi()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			es := &ast.ExprStmt{X: x}
			es.SetPos(x.Pos())
			s.Init = es
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
	}
	if !p.at(token.SEMICOLON) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	if !p.at(token.RPAREN) {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	p.loopID++
	s.ID = p.loopID
	return s, nil
}

func (p *parser) declStmt() (ast.Stmt, error) {
	d, err := p.declStmtNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) declStmtNoSemi() (*ast.DeclStmt, error) {
	pos := p.cur().Pos
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	ds := &ast.DeclStmt{}
	ds.SetPos(pos)
	for {
		dpos := p.cur().Pos
		name, t, vla, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		d, err := p.varRest(dpos, name, t, vla)
		if err != nil {
			return nil, err
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(token.COMMA) {
			break
		}
	}
	return ds, nil
}
