// Package parser implements a recursive-descent parser for MiniC.
// It owns the struct/typedef tables, so casts and declarations are
// resolved to ctypes values during parsing; the result is an ast.Program
// ready for semantic analysis.
package parser

import (
	"errors"
	"fmt"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/lexer"
	"gdsx/internal/token"
)

// Parse parses a MiniC translation unit. file names the source for
// positions only.
func Parse(file, src string) (*ast.Program, error) {
	lx := lexer.New(file, src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	p := &parser{toks: toks, structs: map[string]*ctypes.Type{}, typedefs: map[string]*ctypes.Type{}}
	prog := &ast.Program{File: file}
	defer func() {
		prog.NumLoops = p.loopID
	}()
	for !p.at(token.EOF) {
		d, err := p.extDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			prog.Decls = append(prog.Decls, d...)
		}
	}
	prog.NumLoops = p.loopID
	return prog, nil
}

type parser struct {
	toks     []token.Token
	pos      int
	structs  map[string]*ctypes.Type
	typedefs map[string]*ctypes.Type
	loopID   int
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.toks[p.pos].Kind == k }
func (p *parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------

// startsType reports whether the token at offset n begins a type.
func (p *parser) startsType(n int) bool {
	switch p.peekKind(n) {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwFloat, token.KwDouble, token.KwUnsigned, token.KwStruct,
		token.KwConst, token.KwStatic:
		return true
	case token.IDENT:
		_, ok := p.typedefs[p.toks[p.pos+n].Lit]
		return ok
	}
	return false
}

// baseType parses a type specifier without declarator parts:
// [const|static] [unsigned] primitive | struct NAME | typedef-name,
// followed by any number of '*'.
func (p *parser) baseType() (*ctypes.Type, error) {
	for p.accept(token.KwConst) || p.accept(token.KwStatic) || p.accept(token.KwExtern) {
	}
	unsigned := p.accept(token.KwUnsigned)
	var t *ctypes.Type
	switch {
	case p.accept(token.KwVoid):
		t = ctypes.VoidType
	case p.accept(token.KwChar):
		t = ctypes.CharType
	case p.accept(token.KwShort):
		p.accept(token.KwInt) // "short int"
		t = ctypes.ShortType
	case p.accept(token.KwInt):
		t = ctypes.IntType
	case p.accept(token.KwLong):
		p.accept(token.KwLong) // "long long"
		p.accept(token.KwInt)
		t = ctypes.LongType
	case p.accept(token.KwFloat):
		t = ctypes.FloatType
	case p.accept(token.KwDouble):
		t = ctypes.DoubleType
	case p.at(token.KwStruct):
		p.next()
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[name.Lit]
		if !ok {
			return nil, fmt.Errorf("%s: undefined struct %s", name.Pos, name.Lit)
		}
		t = st
	case p.at(token.IDENT):
		td, ok := p.typedefs[p.cur().Lit]
		if !ok {
			if unsigned {
				t = ctypes.IntType
				break
			}
			return nil, p.errf("expected type, found %s", p.cur())
		}
		p.next()
		t = td
	default:
		if unsigned { // bare "unsigned"
			t = ctypes.IntType
		} else {
			return nil, p.errf("expected type, found %s", p.cur())
		}
	}
	if unsigned {
		if !t.IsInteger() {
			return nil, p.errf("unsigned applied to non-integer type %s", t)
		}
		u := *t
		u.Unsigned = true
		t = &u
	}
	return t, nil
}

// typeName parses a full type for casts and sizeof: baseType plus any
// number of '*'.
func (p *parser) typeName() (*ctypes.Type, error) {
	t, err := p.baseType()
	if err != nil {
		return nil, err
	}
	for p.accept(token.MUL) {
		t = ctypes.PointerTo(t)
	}
	return t, nil
}

// declarator parses {'*'} IDENT {'[' expr? ']'} on top of base.
// It returns the declared name, the full type and, when the outermost
// array dimension is non-constant, its length expression.
func (p *parser) declarator(base *ctypes.Type) (string, *ctypes.Type, ast.Expr, error) {
	for p.accept(token.MUL) {
		base = ctypes.PointerTo(base)
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return "", nil, nil, err
	}
	// Collect array dimensions left to right; build type right to left.
	type dim struct {
		n   int64
		vla ast.Expr
	}
	var dims []dim
	for p.accept(token.LBRACK) {
		if p.accept(token.RBRACK) {
			dims = append(dims, dim{n: -1})
			continue
		}
		e, err := p.expr()
		if err != nil {
			return "", nil, nil, err
		}
		if _, err := p.expect(token.RBRACK); err != nil {
			return "", nil, nil, err
		}
		if n, ok := ast.FoldConst(e); ok {
			if n <= 0 {
				return "", nil, nil, fmt.Errorf("%s: array dimension must be positive", e.Pos())
			}
			dims = append(dims, dim{n: n})
		} else {
			dims = append(dims, dim{n: -1, vla: e})
		}
	}
	t := base
	var vlaLen ast.Expr
	for i := len(dims) - 1; i >= 0; i-- {
		d := dims[i]
		if d.n < 0 && i != 0 {
			return "", nil, nil, fmt.Errorf("%s: only the outermost array dimension may be dynamic", name.Pos)
		}
		t = ctypes.ArrayOf(t, d.n)
		if d.n < 0 {
			vlaLen = d.vla
		}
	}
	return name.Lit, t, vlaLen, nil
}

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

func (p *parser) extDecl() ([]ast.Decl, error) {
	switch {
	case p.at(token.KwTypedef):
		p.next()
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		name, t, vla, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if vla != nil {
			return nil, p.errf("typedef of dynamic array")
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		p.typedefs[name] = t
		return nil, nil

	case p.at(token.KwStruct) && p.peekKind(1) == token.IDENT && p.peekKind(2) == token.LBRACE:
		return p.structDef()
	}

	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	pos := p.cur().Pos
	name, t, vla, err := p.declarator(base)
	if err != nil {
		return nil, err
	}
	if p.at(token.LPAREN) {
		if vla != nil || t.Kind == ctypes.Array {
			return nil, p.errf("function returning array")
		}
		f, err := p.funcRest(pos, name, t)
		if err != nil {
			return nil, err
		}
		return []ast.Decl{f}, nil
	}
	// Global variable declaration(s).
	var decls []ast.Decl
	d, err := p.varRest(pos, name, t, vla)
	if err != nil {
		return nil, err
	}
	decls = append(decls, d)
	for p.accept(token.COMMA) {
		pos := p.cur().Pos
		name, t, vla, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		d, err := p.varRest(pos, name, t, vla)
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *parser) varRest(pos token.Pos, name string, t *ctypes.Type, vla ast.Expr) (*ast.VarDecl, error) {
	d := &ast.VarDecl{P: pos, Name: name, Type: t, VLALen: vla}
	if p.accept(token.ASSIGN) {
		init, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *parser) structDef() ([]ast.Decl, error) {
	pos := p.cur().Pos
	p.next() // struct
	name := p.next().Lit
	if _, ok := p.structs[name]; ok {
		return nil, fmt.Errorf("%s: struct %s redefined", pos, name)
	}
	// Pre-register so fields can hold struct NAME * (self reference).
	placeholder := &ctypes.Type{Kind: ctypes.Struct, Name: name}
	p.structs[name] = placeholder
	p.next() // {
	var fields []*ctypes.Field
	for !p.accept(token.RBRACE) {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		for {
			fname, ft, vla, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if vla != nil {
				return nil, p.errf("dynamic array in struct field")
			}
			if ft == placeholder {
				return nil, fmt.Errorf("%s: struct %s contains itself", pos, name)
			}
			fields = append(fields, &ctypes.Field{Name: fname, Type: ft})
			if !p.accept(token.COMMA) {
				break
			}
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	st := ctypes.NewStruct(name, fields)
	// Patch the placeholder in place so pointer fields created during
	// parsing refer to the completed type.
	*placeholder = *st
	p.structs[name] = placeholder
	return []ast.Decl{&ast.StructDef{P: pos, Type: placeholder}}, nil
}

func (p *parser) funcRest(pos token.Pos, name string, ret *ctypes.Type) (*ast.FuncDecl, error) {
	p.next() // (
	var params []*ast.VarDecl
	if !p.accept(token.RPAREN) {
		if p.at(token.KwVoid) && p.peekKind(1) == token.RPAREN {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return nil, err
				}
				ppos := p.cur().Pos
				pname, pt, vla, err := p.declarator(base)
				if err != nil {
					return nil, err
				}
				if vla != nil {
					return nil, p.errf("dynamic array parameter")
				}
				// Array parameters decay to pointers, as in C.
				if pt.Kind == ctypes.Array {
					pt = ctypes.PointerTo(pt.Elem)
				}
				params = append(params, &ast.VarDecl{P: ppos, Name: pname, Type: pt})
				if !p.accept(token.COMMA) {
					break
				}
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	return &ast.FuncDecl{P: pos, Name: name, Ret: ret, Params: params, Body: body}, nil
}
