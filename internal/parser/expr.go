package parser

import (
	"strconv"

	"gdsx/internal/ast"
	"gdsx/internal/token"
)

// expr parses a full expression, including comma-free assignments.
// MiniC has no comma operator; the comma is always a separator.
func (p *parser) expr() (ast.Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if k := p.cur().Kind; k.IsAssign() {
		pos := p.cur().Pos
		p.next()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		a := &ast.Assign{Op: k, LHS: lhs, RHS: rhs}
		a.SetPos(pos)
		return a, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (ast.Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.at(token.QUESTION) {
		return c, nil
	}
	pos := p.next().Pos
	then, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	els, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	e := &ast.Cond{C: c, Then: then, Else: els}
	e.SetPos(pos)
	return e, nil
}

// binLevels lists binary operators from loosest to tightest binding.
var binLevels = [][]token.Kind{
	{token.LOR},
	{token.LAND},
	{token.OR},
	{token.XOR},
	{token.AND},
	{token.EQL, token.NEQ},
	{token.LSS, token.GTR, token.LEQ, token.GEQ},
	{token.SHL, token.SHR},
	{token.ADD, token.SUB},
	{token.MUL, token.QUO, token.REM},
}

func (p *parser) binExpr(level int) (ast.Expr, error) {
	if level == len(binLevels) {
		return p.unaryExpr()
	}
	x, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		found := false
		for _, op := range binLevels[level] {
			if k == op {
				found = true
				break
			}
		}
		if !found {
			return x, nil
		}
		pos := p.next().Pos
		y, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		if k == token.LAND || k == token.LOR {
			e := &ast.Logical{Op: k, X: x, Y: y}
			e.SetPos(pos)
			x = e
		} else {
			e := &ast.Binary{Op: k, X: x, Y: y}
			e.SetPos(pos)
			x = e
		}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.ADD, token.SUB, token.NOT, token.LNOT, token.MUL, token.AND:
		op := p.next().Kind
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &ast.Unary{Op: op, X: x}
		e.SetPos(pos)
		return e, nil
	case token.INC, token.DEC:
		op := p.next().Kind
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &ast.IncDec{Op: op, X: x}
		e.SetPos(pos)
		return e, nil
	case token.KwSizeof:
		p.next()
		if p.at(token.LPAREN) && p.startsType(1) {
			p.next()
			t, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			e := &ast.SizeofType{Of: t}
			e.SetPos(pos)
			return e, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &ast.SizeofExpr{X: x}
		e.SetPos(pos)
		return e, nil
	case token.LPAREN:
		if p.startsType(1) {
			// Cast expression.
			p.next()
			t, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			e := &ast.Cast{To: t, X: x}
			e.SetPos(pos)
			return e, nil
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case token.LBRACK:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBRACK); err != nil {
				return nil, err
			}
			e := &ast.Index{X: x, I: idx}
			e.SetPos(pos)
			x = e
		case token.DOT, token.ARROW:
			arrow := p.next().Kind == token.ARROW
			name, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			e := &ast.Member{X: x, Name: name.Lit, Arrow: arrow}
			e.SetPos(pos)
			x = e
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				return nil, p.errf("called object is not a function name")
			}
			p.next()
			var args []ast.Expr
			if !p.accept(token.RPAREN) {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(token.COMMA) {
						break
					}
				}
				if _, err := p.expect(token.RPAREN); err != nil {
					return nil, err
				}
			}
			e := &ast.Call{Fun: id, Args: args}
			e.SetPos(pos)
			x = e
		case token.INC, token.DEC:
			op := p.next().Kind
			e := &ast.IncDec{Op: op, X: x, Post: true}
			e.SetPos(pos)
			x = e
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		e := &ast.Ident{Name: t.Lit}
		e.SetPos(t.Pos)
		return e, nil
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			// Values such as 0xffffffff that overflow int64 parsing in
			// base-detection mode are reparsed as unsigned.
			u, uerr := strconv.ParseUint(t.Lit, 0, 64)
			if uerr != nil {
				return nil, p.errf("bad integer literal %q: %v", t.Lit, err)
			}
			v = int64(u)
		}
		e := &ast.IntLit{Value: v}
		e.SetPos(t.Pos)
		return e, nil
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q: %v", t.Lit, err)
		}
		e := &ast.FloatLit{Value: v}
		e.SetPos(t.Pos)
		return e, nil
	case token.CHAR:
		p.next()
		e := &ast.IntLit{Value: int64(t.Lit[0])}
		e.SetPos(t.Pos)
		return e, nil
	case token.STRING:
		p.next()
		e := &ast.StringLit{Value: t.Lit}
		e.SetPos(t.Pos)
		return e, nil
	case token.LPAREN:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}
