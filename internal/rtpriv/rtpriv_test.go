package rtpriv

import (
	"testing"

	"gdsx/internal/interp"
	"gdsx/internal/parser"
	"gdsx/internal/sema"
)

// machineFor builds a machine over a trivial program so the monitor has
// a real simulated memory to manage.
func machineFor(t *testing.T) *interp.Machine {
	t.Helper()
	prog, err := parser.Parse("t.c", "int main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return interp.New(prog, info, interp.Options{})
}

func TestRedirectInactiveOutsideRegion(t *testing.T) {
	rt := New([]int{5}, DefaultModel())
	m := machineFor(t)
	rt.Bind(m)
	addr, cost := rt.Hooks().Redirect(5, 1234, 4, 0)
	if addr != 1234 || cost != 0 {
		t.Fatalf("monitor active outside parallel region: %d %d", addr, cost)
	}
}

func TestRedirectCopiesAndCharges(t *testing.T) {
	rt := New([]int{5}, DefaultModel())
	m := machineFor(t)
	rt.Bind(m)
	base, err := m.Mem().Alloc(64, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Store(base+8, 8, 0xabcdef)

	h := rt.Hooks()
	h.ParallelStart(1, 2)
	defer h.ParallelEnd(1)

	// Non-private site: untouched.
	if a, c := h.Redirect(9, base+8, 8, 0); a != base+8 || c != 0 {
		t.Fatalf("non-private site redirected: %d %d", a, c)
	}

	// Private site, first touch: copy created and charged.
	a0, c0 := h.Redirect(5, base+8, 8, 0)
	if a0 == base+8 {
		t.Fatalf("not redirected")
	}
	if c0 <= DefaultModel().AccessBase {
		t.Fatalf("first touch must charge copy-in: %d", c0)
	}
	// The copy carries the shared content (copy-in).
	if v := m.Mem().Load(a0, 8); v != 0xabcdef {
		t.Fatalf("copy-in lost data: %x", v)
	}

	// Second touch: same copy, no copy-in charge.
	a1, c1 := h.Redirect(5, base+16, 4, 0)
	if a1 != a0+8 {
		t.Fatalf("interior offset wrong: %d vs %d", a1, a0+8)
	}
	if c1 >= c0 {
		t.Fatalf("second touch should be cheaper: %d vs %d", c1, c0)
	}

	// A different thread gets its own copy.
	a2, _ := h.Redirect(5, base+8, 8, 1)
	if a2 == a0 {
		t.Fatalf("threads share a private copy")
	}

	st := rt.Stats()
	if st.Copies != 2 || st.Monitored != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateOnFree(t *testing.T) {
	rt := New([]int{5}, DefaultModel())
	m := machineFor(t)
	rt.Bind(m)
	base, _ := m.Mem().Alloc(32, 1, "")
	h := rt.Hooks()
	h.ParallelStart(1, 1)
	defer h.ParallelEnd(1)

	a0, _ := h.Redirect(5, base, 4, 0)
	m.Mem().Store(a0, 4, 77)
	h.Free(base)
	_ = m.Mem().Free(base)

	// Reallocate (likely the same base) and touch again: a fresh copy,
	// not the stale one.
	base2, _ := m.Mem().Alloc(32, 1, "")
	a1, _ := h.Redirect(5, base2, 4, 0)
	if v := m.Mem().Load(a1, 4); v != 0 {
		t.Fatalf("stale private copy survived free: %d", v)
	}
}

func TestEndFreesCopies(t *testing.T) {
	rt := New([]int{5}, DefaultModel())
	m := machineFor(t)
	rt.Bind(m)
	base, _ := m.Mem().Alloc(128, 1, "")
	h := rt.Hooks()
	h.ParallelStart(1, 4)
	for tid := 0; tid < 4; tid++ {
		h.Redirect(5, base, 8, tid)
	}
	before := m.Mem().Stats().Blocks
	h.ParallelEnd(1)
	after := m.Mem().Stats().Blocks
	if after >= before {
		t.Fatalf("copies not freed at region end: %d -> %d", before, after)
	}
}

func TestUnknownAddressPassesThrough(t *testing.T) {
	rt := New([]int{5}, DefaultModel())
	m := machineFor(t)
	rt.Bind(m)
	h := rt.Hooks()
	h.ParallelStart(1, 1)
	defer h.ParallelEnd(1)
	// An address outside any live block (e.g. a wild pointer) is left
	// alone but still charged for the failed lookup.
	a, c := h.Redirect(5, 7, 4, 0)
	if a != 7 || c == 0 {
		t.Fatalf("wild address handling: %d %d", a, c)
	}
}
