package rtpriv

import (
	"sync"
	"sync/atomic"

	"gdsx/internal/ddg"
	"gdsx/internal/interp"
)

// CommStats reports what the commutative privatizer did during a run.
type CommStats struct {
	Regions    int64 // parallel regions entered with at least one armed span
	Spans      int64 // accumulator spans privatized across all regions
	Redirected int64 // accesses redirected into private copies
	Merged     int64 // elements merged back into shared space
}

// commSpan is one armed accumulator: span bytes at base, merged in
// esz-byte elements under op.
type commSpan struct {
	base, span, esz int64
	op              ddg.CommOp
}

// commActive is a privatized span during one region: per-tid
// identity-initialized copies.
type commActive struct {
	commSpan
	copies []int64 // per-tid private copy base
}

// CommutativeRuntime privatizes reduction-shaped accumulators at run
// time. The expansion pass plants __comm_note(base, span, esz, op)
// markers before loops whose classifier-proven commutative classes it
// left unexpanded (see expand.Options.Commutative); the marker arms
// this runtime, which at the next region entry gives every thread an
// identity-initialized private copy of the accumulator, redirects the
// region's accesses to [base, base+span) into the accessing thread's
// copy, and merges the copies back under the operator at region exit.
//
// Correctness rests on the classifier's proof obligation: every access
// to the span inside the region is the same commutative update, so the
// merge order across threads cannot change the final value (integer
// operators only — the classifier never marks floating-point classes).
// The merge writes go through the snapshot-tracked store path, so a
// later rollback of the region reverts them like any other store.
type CommutativeRuntime struct {
	// Cost is the simulated op charge per redirected access (the range
	// check and base swap — far cheaper than rtpriv's general block
	// lookup). DefaultCommCost when zero.
	Cost int64

	m *interp.Machine

	mu     sync.Mutex
	armed  []commSpan
	active []commActive

	redirected atomic.Int64 // updated lock-free on worker threads
	stats      CommStats
}

// DefaultCommCost is the per-access charge of the commutative
// redirect: a bounds compare and an add.
const DefaultCommCost = 2

// NewCommutative creates a commutative privatizer. Bind the machine
// before running.
func NewCommutative() *CommutativeRuntime {
	return &CommutativeRuntime{Cost: DefaultCommCost}
}

// Bind attaches the machine whose memory the runtime manages.
func (r *CommutativeRuntime) Bind(m *interp.Machine) { r.m = m }

// Stats returns privatizer statistics after a run.
func (r *CommutativeRuntime) Stats() CommStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Redirected = r.redirected.Load()
	return s
}

// Hooks returns the interpreter hooks implementing the privatizer.
func (r *CommutativeRuntime) Hooks() *interp.Hooks {
	return &interp.Hooks{
		Commute:        r.commute,
		Redirect:       r.redirect,
		ParallelStart:  r.start,
		ParallelEnd:    r.end,
		ParallelCancel: r.cancel,
	}
}

// commute arms (or re-arms) a span for the next parallel region.
func (r *CommutativeRuntime) commute(base, span, esz, op int64) {
	if span <= 0 || esz <= 0 || span%esz != 0 {
		return
	}
	o := ddg.CommOp(op)
	if o != ddg.CommAdd && o != ddg.CommMin && o != ddg.CommMax {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.armed {
		if r.armed[i].base == base {
			r.armed[i] = commSpan{base: base, span: span, esz: esz, op: o}
			return
		}
	}
	r.armed = append(r.armed, commSpan{base: base, span: span, esz: esz, op: o})
}

func (r *CommutativeRuntime) start(loopID, nthreads int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A violation abort can unwind past end/cancel; any leftovers were
	// reclaimed by the region rollback, so just drop the stale state.
	r.active = nil
	if len(r.armed) == 0 {
		return
	}
	mem := r.m.Mem()
	for _, s := range r.armed {
		a := commActive{commSpan: s, copies: make([]int64, nthreads)}
		ok := true
		for t := 0; t < nthreads; t++ {
			nb, err := mem.Alloc(s.span, 0, "rtcomm")
			if err != nil {
				ok = false
				break
			}
			id := uint64(s.op.Identity(s.esz))
			for off := int64(0); off < s.span; off += s.esz {
				mem.Store(nb+off, int(s.esz), id)
			}
			a.copies[t] = nb
		}
		if !ok {
			// Out of memory for copies: run this span shared. The
			// carried flow then races and guarded execution catches it,
			// exactly as if the note had never been planted.
			for _, cb := range a.copies {
				if cb != 0 {
					_ = mem.Free(cb)
				}
			}
			continue
		}
		r.active = append(r.active, a)
		r.stats.Spans++
	}
	if len(r.active) > 0 {
		r.stats.Regions++
	}
	r.armed = r.armed[:0]
}

// redirect sends an access inside an active span to the accessing
// thread's private copy. Runs on the worker thread; the active slice
// is immutable during the region, so no lock is taken.
func (r *CommutativeRuntime) redirect(site int, addr, size int64, tid int) (int64, int64) {
	for i := range r.active {
		a := &r.active[i]
		if addr >= a.base && addr < a.base+a.span && tid < len(a.copies) {
			r.redirected.Add(1)
			cost := r.Cost
			if cost == 0 {
				cost = DefaultCommCost
			}
			return a.copies[tid] + (addr - a.base), cost
		}
	}
	return addr, 0
}

func (r *CommutativeRuntime) end(loopID int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mem := r.m.Mem()
	for _, a := range r.active {
		for off := int64(0); off < a.span; off += a.esz {
			v := sext(mem.Load(a.base+off, int(a.esz)), a.esz)
			for _, cb := range a.copies {
				v = a.op.Merge(v, sext(mem.Load(cb+off, int(a.esz)), a.esz))
			}
			mem.Store(a.base+off, int(a.esz), uint64(v))
			r.stats.Merged++
		}
		for _, cb := range a.copies {
			_ = mem.Free(cb)
		}
	}
	r.active = nil
}

// cancel discards the private copies of an abandoned region without
// merging.
func (r *CommutativeRuntime) cancel(loopID int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mem := r.m.Mem()
	for _, a := range r.active {
		for _, cb := range a.copies {
			_ = mem.Free(cb)
		}
	}
	r.active = nil
}

// sext sign-extends a little-endian value of esz bytes.
func sext(v uint64, esz int64) int64 {
	shift := 64 - esz*8
	return int64(v<<shift) >> shift
}

// Redirected reports whether any access was privatized (used by tests
// and the bench driver to assert the machinery engaged).
func (r *CommutativeRuntime) Redirected() bool {
	return r.redirected.Load() > 0
}
