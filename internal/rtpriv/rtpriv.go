// Package rtpriv implements the paper's comparison baseline (§4.2.1):
// runtime privatization in the style of SpiceC. The original,
// untransformed program runs with an access-control monitor attached;
// every thread-private memory access (per Definition 5) is intercepted,
// the containing data structure is located via the allocator metadata
// (the safe extension of SpiceC's "heap prefix" that tolerates interior
// pointers), and the access is redirected to a thread-local copy that
// is created — and filled from the shared space — on first touch.
//
// Each monitored access is charged a simulated op cost covering the
// runtime call, the block lookup and the map probe; copy-ins are
// charged per word. These charges flow into the interpreter's work
// counters, so the schedule simulator and the wall-clock measurements
// both see the monitoring overhead that makes this approach lose to
// compile-time expansion (paper Figures 10 and 13).
package rtpriv

import (
	"math/bits"
	"sync"

	"gdsx/internal/interp"
)

// Model holds the simulated cost constants of the monitor.
type Model struct {
	// AccessBase is charged on every monitored access: the runtime
	// call, the heap-prefix/block lookup and the private-map probe.
	AccessBase int64
	// LookupPerLevel is charged per binary-search level of the block
	// lookup.
	LookupPerLevel int64
	// CopySetup and CopyPerWord are charged when a private copy is
	// created and filled from the shared space.
	CopySetup   int64
	CopyPerWord int64
}

// DefaultModel returns monitor costs calibrated against SpiceC-class
// software access control: every monitored access pays a runtime call,
// a hash/heap-prefix probe and bookkeeping — one to two orders of
// magnitude more than the plain access it replaces, which is what makes
// the paper's Figures 10 and 13 come out the way they do.
func DefaultModel() Model {
	return Model{AccessBase: 110, LookupPerLevel: 5, CopySetup: 80, CopyPerWord: 1}
}

// Stats reports what the monitor did during a run.
type Stats struct {
	Monitored   int64 // accesses intercepted and redirected
	Copies      int64 // private copies created
	CopiedBytes int64 // bytes copied in
}

// Runtime is the privatization monitor for one program run. Create it
// with New, install Hooks() into the interpreter options, Bind the
// machine, then run.
type Runtime struct {
	model   Model
	private map[int]bool
	m       *interp.Machine

	mu     sync.Mutex
	active bool
	copies []map[int64]int64 // per-tid: shared block base -> private copy base

	stats Stats
}

// New creates a monitor redirecting the given private access sites
// (Definition 5 classification of the target loop(s)).
func New(privateSites []int, model Model) *Runtime {
	p := map[int]bool{}
	for _, s := range privateSites {
		p[s] = true
	}
	return &Runtime{model: model, private: p}
}

// Bind attaches the machine whose memory the monitor manages. Must be
// called before the machine runs.
func (r *Runtime) Bind(m *interp.Machine) { r.m = m }

// Stats returns monitor statistics after a run.
func (r *Runtime) Stats() Stats { return r.stats }

// Hooks returns the interpreter hooks implementing the monitor.
func (r *Runtime) Hooks() *interp.Hooks {
	return &interp.Hooks{
		Redirect:      r.redirect,
		Free:          r.invalidate,
		ParallelStart: r.start,
		ParallelEnd:   r.end,
	}
}

func (r *Runtime) start(loopID, nthreads int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.copies = make([]map[int64]int64, nthreads)
	for i := range r.copies {
		r.copies[i] = map[int64]int64{}
	}
	r.active = true
}

func (r *Runtime) end(loopID int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active = false
	for _, m := range r.copies {
		for _, copyBase := range m {
			_ = r.m.Mem().Free(copyBase)
		}
	}
	r.copies = nil
}

// invalidate drops private copies of a freed shared block so a later
// allocation reusing the address cannot see stale private data.
func (r *Runtime) invalidate(base int64) {
	if !r.active {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.copies {
		if copyBase, ok := m[base]; ok {
			_ = r.m.Mem().Free(copyBase)
			delete(m, base)
		}
	}
}

// redirect is the per-access monitor. It runs on the accessing thread;
// distinct tids touch distinct map entries, so only copy creation takes
// the lock.
func (r *Runtime) redirect(site int, addr, size int64, tid int) (int64, int64) {
	if !r.active || !r.private[site] {
		return addr, 0
	}
	if tid >= len(r.copies) {
		return addr, 0
	}
	mem := r.m.Mem()
	blk, ok := mem.Block(addr)
	if !ok {
		return addr, r.model.AccessBase
	}
	cost := r.model.AccessBase +
		r.model.LookupPerLevel*int64(bits.Len(uint(mem.Stats().Blocks)))
	copies := r.copies[tid]
	copyBase, ok := copies[blk.Base]
	if !ok {
		nb, err := mem.Alloc(blk.Size, 0, "rtpriv")
		if err != nil {
			// Out of memory for copies: fall back to the shared block
			// (the run will fail on a real race; benchmarks size
			// memory to avoid this).
			return addr, cost
		}
		mem.Memcpy(nb, blk.Base, blk.Size)
		copies[blk.Base] = nb
		copyBase = nb
		cost += r.model.CopySetup + r.model.CopyPerWord*(blk.Size+7)/8
		r.mu.Lock()
		r.stats.Copies++
		r.stats.CopiedBytes += blk.Size
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.stats.Monitored++
	r.mu.Unlock()
	return copyBase + (addr - blk.Base), cost
}
