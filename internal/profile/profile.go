// Package profile implements loop-level data dependence profiling, the
// mechanism the paper uses to obtain its dependence graphs (§4.1,
// refs [38, 39]). A program is executed sequentially under the
// interpreter with byte-granular shadow memory; every load and store
// inside the target loop is compared against the last writer/reader of
// each byte to emit flow/anti/output dependence edges, classified as
// loop-independent or loop-carried, plus the upwards-exposed-load and
// downwards-exposed-store properties of Definitions 2 and 3.
//
// Like practical dependence profilers, the shadow memory keeps only the
// most recent reader of each byte, so when several reads of an address
// precede a write in one iteration, the anti edge is recorded from the
// latest read. This compression never loses flow edges (the writer
// side is exact) and cannot flip a class between private and shared,
// because the reads it merges are already related by loop-independent
// flow dependences on the same address.
package profile

import (
	"fmt"

	"gdsx/internal/ast"
	"gdsx/internal/ddg"
	"gdsx/internal/interp"
	"gdsx/internal/sema"
)

// Origin identifies the data structure an access touched: a heap
// allocation site, a named global, or a thread stack (locals).
type Origin struct {
	Kind OriginKind
	// Site is the allocation-site ID for heap origins.
	Site int
	// Name is the global's name for global origins.
	Name string
}

// OriginKind discriminates Origin.
type OriginKind int

// Origin kinds.
const (
	OriginHeap OriginKind = iota
	OriginGlobal
	OriginStack
	OriginOther
)

func (o Origin) String() string {
	switch o.Kind {
	case OriginHeap:
		return fmt.Sprintf("heap#%d", o.Site)
	case OriginGlobal:
		return "global " + o.Name
	case OriginStack:
		return "stack"
	}
	return "other"
}

// Result is the outcome of profiling one loop.
type Result struct {
	Graph *ddg.Graph
	// Touched maps each access site executed in the loop to the set of
	// data-structure origins it touched (the dynamic points-to used to
	// cross-check the static alias analysis).
	Touched map[int]map[Origin]bool
	// Iterations is the total number of target-loop iterations profiled.
	Iterations int64
	// Run is the program's execution result.
	Run interp.Result
}

// shadow cells track the last writer and reader of each byte.
type cell struct {
	wSite int32
	wInst int32
	wIter int32
	rSite int32
	rInst int32
	rIter int32
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type shadow struct {
	pages map[int64]*[pageSize]cell
}

func (s *shadow) page(addr int64) *[pageSize]cell {
	p := s.pages[addr>>pageShift]
	if p == nil {
		p = new([pageSize]cell)
		s.pages[addr>>pageShift] = p
	}
	return p
}

func (s *shadow) cell(addr int64) *cell {
	return &s.page(addr)[addr&pageMask]
}

// DefSites returns the definition access sites of a checked program:
// declarations, allocations and argument bindings, whose stores mark
// fresh storage rather than data flow. Both the profiler and the
// guarded-execution monitor use the set to kill shadow history on
// object (re)definition.
func DefSites(info *sema.Info) map[int]bool {
	out := map[int]bool{}
	for id, as := range info.Accesses {
		if as.IsDef {
			out[id] = true
		}
	}
	return out
}

// Loop profiles the target loop of a checked program by running it
// sequentially. The returned graph contains every dependence observed
// on any dynamic instance of the loop.
func Loop(prog *ast.Program, info *sema.Info, loopID int, opts interp.Options) (*Result, error) {
	if _, ok := info.Loops[loopID]; !ok {
		return nil, fmt.Errorf("profile: no loop with ID %d", loopID)
	}
	res := &Result{
		Graph:   ddg.NewGraph(loopID),
		Touched: map[int]map[Origin]bool{},
	}
	sh := &shadow{pages: map[int64]*[pageSize]cell{}}

	// Definition sites (declarations and allocations) kill the shadow
	// history of their bytes: a recycled stack slot or heap address is
	// a fresh object, not a dependence on its previous tenant.
	defSite := DefSites(info)

	var (
		inLoop   bool
		instance int32 // current loop instance, starting at 1
		iter     int32 // current 0-based iteration within the instance
	)

	opts.NumThreads = 1
	var m *interp.Machine

	origin := func(addr int64) Origin {
		b, ok := m.Mem().Block(addr)
		if !ok {
			return Origin{Kind: OriginOther}
		}
		switch {
		case b.Site > 0:
			return Origin{Kind: OriginHeap, Site: b.Site}
		case len(b.Label) > 7 && b.Label[:7] == "global ":
			return Origin{Kind: OriginGlobal, Name: b.Label[7:]}
		case b.Label == "stack":
			return Origin{Kind: OriginStack}
		}
		return Origin{Kind: OriginOther}
	}

	touch := func(site int, addr int64) {
		set := res.Touched[site]
		if set == nil {
			set = map[Origin]bool{}
			res.Touched[site] = set
		}
		set[origin(addr)] = true
	}

	g := res.Graph
	hooks := &interp.Hooks{
		LoopEnter: func(id int) {
			if id == loopID {
				inLoop = true
				instance++
				iter = -1 // LoopIter fires before the first body execution
			}
		},
		LoopIter: func(id int, it int64) {
			if id == loopID {
				iter = int32(it)
			}
		},
		LoopExit: func(id int) {
			if id == loopID {
				inLoop = false
			}
		},
		Load: func(site int, addr, size int64) {
			if site == 0 {
				return
			}
			if !inLoop {
				// A read after the loop: any value last written inside
				// some instance makes that store downwards-exposed.
				for i := int64(0); i < size; i++ {
					c := sh.cell(addr + i)
					if c.wSite != 0 && c.wInst > 0 {
						g.DownwardExposed[int(c.wSite)] = true
					}
					c.rSite = int32(site)
					c.rInst = 0
					c.rIter = 0
				}
				return
			}
			g.AddSite(site)
			touch(site, addr)
			for i := int64(0); i < size; i++ {
				c := sh.cell(addr + i)
				switch {
				case c.wSite == 0 || c.wInst != instance:
					// Value comes from outside this loop instance.
					g.UpwardExposed[site] = true
					if c.wSite != 0 && c.wInst > 0 {
						// ... and from a store of an earlier instance:
						// that store's value survived the loop exit.
						g.DownwardExposed[int(c.wSite)] = true
					}
				case c.wIter == iter:
					g.AddEdge(int(c.wSite), site, ddg.Flow, false)
				default:
					g.AddEdge(int(c.wSite), site, ddg.Flow, true)
				}
				c.rSite = int32(site)
				c.rInst = instance
				c.rIter = iter
			}
		},
		Store: func(site int, addr, size int64) {
			if site == 0 {
				return
			}
			if defSite[site] {
				wInst, wIter := int32(0), int32(0)
				if inLoop {
					wInst, wIter = instance, iter
					g.Defs[site]++
				}
				for i := int64(0); i < size; i++ {
					c := sh.cell(addr + i)
					*c = cell{wSite: int32(site), wInst: wInst, wIter: wIter}
				}
				return
			}
			if !inLoop {
				for i := int64(0); i < size; i++ {
					c := sh.cell(addr + i)
					c.wSite = int32(site)
					c.wInst = 0
					c.wIter = 0
				}
				return
			}
			g.AddSite(site)
			touch(site, addr)
			for i := int64(0); i < size; i++ {
				c := sh.cell(addr + i)
				// Anti dependence from the last reader.
				if c.rSite != 0 && c.rInst == instance {
					g.AddEdge(int(c.rSite), site, ddg.Anti, c.rIter != iter)
				}
				// Output dependence from the last writer.
				if c.wSite != 0 && c.wInst == instance {
					g.AddEdge(int(c.wSite), site, ddg.Output, c.wIter != iter)
				}
				c.wSite = int32(site)
				c.wInst = instance
				c.wIter = iter
			}
		},
	}

	// Count iterations of the target loop.
	baseIter := hooks.LoopIter
	hooks.LoopIter = func(id int, it int64) {
		baseIter(id, it)
		if id == loopID {
			res.Iterations++
		}
	}

	opts.Hooks = hooks
	opts.ForceSequential = true
	m = interp.New(prog, info, opts)
	r, err := m.Run()
	if err != nil {
		return nil, err
	}
	res.Run = r
	return res, nil
}
