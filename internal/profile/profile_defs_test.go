package profile

import (
	"testing"

	"gdsx/internal/ddg"
	"gdsx/internal/interp"
)

// Regression test for the dijkstra serialization bug: parameter slots
// are rebound on every call, so reads of parameters in callees must not
// appear upwards-exposed nor carry dependences across iterations
// (their stack slots are reused at the same addresses).
func TestParamSlotsCarryNoHistory(t *testing.T) {
	prog, info, loopID := compile(t, `
int mix(int a, int b) {
    return a * 31 + b;
}
int main() {
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel doacross for (it = 0; it < 8; it++) {
        out[it] = mix(it, it + 1);
    }
    long s = 0;
    for (it = 0; it < 8; it++) { s += out[it]; }
    print_long(s);
    free(out);
    return 0;
}`)
	res, err := Loop(prog, info, loopID, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	for site := range g.Sites {
		as := info.Accesses[site]
		if as == nil || (as.Text != "a" && as.Text != "b") {
			continue
		}
		if g.UpwardExposed[site] {
			t.Errorf("parameter read %q wrongly upwards-exposed", as.Text)
		}
		if g.HasCarried(site, ddg.Anti) || g.HasCarried(site, ddg.Output) || g.HasCarried(site, ddg.Flow) {
			t.Errorf("parameter access %q wrongly carries a dependence", as.Text)
		}
	}
}

// TestDefsRecorded checks that in-loop allocations appear in Graph.Defs
// (the expansion pass keys "iteration-fresh" on this).
func TestDefsRecorded(t *testing.T) {
	res := profileFirst(t, `
int main() {
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int *tmp = (int*)malloc(16);
        tmp[0] = it;
        tmp[1] = it + 1;
        out[it] = tmp[0] + tmp[1];
        free(tmp);
    }
    print_int(out[3]);
    free(out);
    return 0;
}`)
	if len(res.Graph.Defs) == 0 {
		t.Fatalf("no definition sites recorded in the loop")
	}
	// The outer malloc must NOT be among the in-loop defs.
	// (There are exactly two allocation sites; one runs in the loop.)
	if len(res.Graph.Defs) > 3 {
		t.Fatalf("too many def sites: %v", res.Graph.Defs)
	}
}

// TestFreshHeapNotCarried: with allocation kill semantics, per-
// iteration malloc/free cycles must not fabricate carried dependences
// even though the allocator reuses addresses.
func TestFreshHeapNotCarried(t *testing.T) {
	res, cls := classifyAll(t, `
struct node { int v; struct node *next; };
int main() {
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        struct node *head = 0;
        int k;
        for (k = 0; k < 4; k++) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = it + k;
            n->next = head;
            head = n;
        }
        int s = 0;
        while (head != 0) {
            s += head->v;
            struct node *d = head;
            head = head->next;
            free(d);
        }
        out[it] = s;
    }
    print_int(out[5]);
    free(out);
    return 0;
}`)
	heapSite := func(s int) bool {
		for o := range res.Touched[s] {
			if o.Kind == OriginHeap {
				return true
			}
		}
		return false
	}
	for _, e := range res.Graph.Edges() {
		if e.Carried && (heapSite(e.Src) || heapSite(e.Dst)) {
			t.Errorf("fresh heap carries dependence %+v", e)
		}
	}
	_ = cls
}
