package profile

import (
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/ddg"
	"gdsx/internal/interp"
	"gdsx/internal/parser"
	"gdsx/internal/sema"
)

// compile parses and checks src, returning the program, tables and the
// ID of its first parallel loop.
func compile(t *testing.T, src string) (*ast.Program, *sema.Info, int) {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for id, l := range info.Loops {
		if l.Par != ast.Sequential {
			return prog, info, id
		}
	}
	t.Fatalf("no parallel loop in program")
	return nil, nil, 0
}

func profileFirst(t *testing.T, src string) *Result {
	t.Helper()
	prog, info, loopID := compile(t, src)
	res, err := Loop(prog, info, loopID, interp.Options{})
	if err != nil {
		t.Fatalf("Loop: %v", err)
	}
	return res
}

// classifyAll is a helper combining profiling and classification.
func classifyAll(t *testing.T, src string) (*Result, *ddg.Classification) {
	res := profileFirst(t, src)
	return res, ddg.Classify(res.Graph, ddg.DefaultOptions())
}

func TestPrivatizableBuffer(t *testing.T) {
	// The paper's Figure 1 pattern: zptr is initialized and then used
	// in every iteration; it must come out expandable.
	res, cls := classifyAll(t, `
int main() {
    int m = 16;
    int *zptr = (int*)malloc(m * 4);
    long acc = 0;
    int iter;
    int *out = (int*)malloc(8 * 4);
    parallel for (iter = 0; iter < 8; iter++) {
        int k;
        for (k = 0; k < m; k++) zptr[k] = iter + k;
        int b = 0;
        for (k = 0; k < m; k++) b += zptr[k];
        out[iter] = b;
    }
    print_int(out[3]);
    free(zptr);
    free(out);
    return 0;
}`)
	// Find the sites touching the heap block of zptr's alloc site.
	privateHeapSeen := false
	for site, origins := range res.Touched {
		for o := range origins {
			if o.Kind == OriginHeap && cls.Private(site) {
				privateHeapSeen = true
			}
		}
	}
	if !privateHeapSeen {
		t.Fatalf("no private heap accesses found; graph:\n%s", res.Graph)
	}
}

func TestAccumulatorIsShared(t *testing.T) {
	_, cls := classifyAll(t, `
int g;
int main() {
    int i;
    parallel for (i = 0; i < 8; i++) {
        g = g + i;
    }
    print_int(g);
    return 0;
}`)
	for _, c := range cls.Classes {
		if c.Private && !c.HasCarriedAntiOut {
			t.Fatalf("unexpected private class: %+v", c)
		}
	}
	// The accumulator's class must be shared via carried flow.
	foundCarriedFlow := false
	for _, c := range cls.Classes {
		if c.HasCarriedFlow && !c.Private {
			foundCarriedFlow = true
		}
	}
	if !foundCarriedFlow {
		t.Fatalf("accumulator not detected as carried flow")
	}
}

func TestUpwardsExposed(t *testing.T) {
	res, cls := classifyAll(t, `
int main() {
    int n = 8;
    int *in = (int*)malloc(n * 4);
    int *out = (int*)malloc(n * 4);
    int i;
    for (i = 0; i < n; i++) in[i] = i;
    parallel for (i = 0; i < n; i++) {
        out[i] = in[i] * 2;
    }
    print_int(out[5]);
    free(in);
    free(out);
    return 0;
}`)
	if len(res.Graph.UpwardExposed) == 0 {
		t.Fatalf("no upwards-exposed loads recorded:\n%s", res.Graph)
	}
	for site := range res.Graph.UpwardExposed {
		if cls.Private(site) {
			t.Fatalf("upwards-exposed site %d classified private", site)
		}
	}
}

func TestDownwardsExposed(t *testing.T) {
	res, _ := classifyAll(t, `
int main() {
    int n = 8;
    int *out = (int*)malloc(n * 4);
    int i;
    parallel for (i = 0; i < n; i++) {
        out[i] = i * 3;
    }
    long s = 0;
    for (i = 0; i < n; i++) s += out[i];
    print_long(s);
    free(out);
    return 0;
}`)
	if len(res.Graph.DownwardExposed) == 0 {
		t.Fatalf("no downwards-exposed stores recorded:\n%s", res.Graph)
	}
}

func TestScratchNotDownwardsExposed(t *testing.T) {
	// tmp is overwritten each iteration and never read after the loop:
	// it must be private even though out is downwards-exposed.
	res, cls := classifyAll(t, `
int main() {
    int n = 8;
    int *out = (int*)malloc(n * 4);
    int *tmp = (int*)malloc(4 * 4);
    int i;
    parallel for (i = 0; i < n; i++) {
        int k;
        for (k = 0; k < 4; k++) tmp[k] = i + k;
        out[i] = tmp[0] + tmp[3];
    }
    print_int(out[7]);
    free(tmp);
    free(out);
    return 0;
}`)
	// Identify tmp's heap origin: the private sites must include
	// accesses touching it.
	nPrivateHeap := 0
	for site, origins := range res.Touched {
		if !cls.Private(site) {
			continue
		}
		for o := range origins {
			if o.Kind == OriginHeap {
				nPrivateHeap++
			}
		}
	}
	if nPrivateHeap == 0 {
		t.Fatalf("tmp accesses not private:\n%s", res.Graph)
	}
}

func TestCarriedEdgesAcrossWhileInstances(t *testing.T) {
	// The parallel loop runs inside an enclosing sequential loop: each
	// instance must be profiled, and values flowing from one instance
	// to the next count as upward/downward exposure, not carried deps.
	res, _ := classifyAll(t, `
int main() {
    int n = 4;
    int *buf = (int*)malloc(n * 4);
    int r;
    int i;
    for (r = 0; r < 3; r++) {
        parallel for (i = 0; i < n; i++) {
            buf[i] = buf[i] + 1;
        }
    }
    print_int(buf[0]);
    free(buf);
    return 0;
}`)
	g := res.Graph
	// buf[i] reads the previous *instance*'s value: upward exposure.
	if len(g.UpwardExposed) == 0 {
		t.Fatalf("expected upwards exposure across instances:\n%s", g)
	}
	if len(g.DownwardExposed) == 0 {
		t.Fatalf("expected downwards exposure across instances:\n%s", g)
	}
	// No carried flow should be recorded on the heap buffer: each
	// instance writes before reading within the same iteration only.
	// (The induction variable itself does carry flow between
	// iterations; it is handled by the scheduler, not privatization.)
	heapSite := func(s int) bool {
		for o := range res.Touched[s] {
			if o.Kind == OriginHeap {
				return true
			}
		}
		return false
	}
	for _, e := range g.Edges() {
		if e.Kind == ddg.Flow && e.Carried && (heapSite(e.Src) || heapSite(e.Dst)) {
			t.Fatalf("unexpected carried flow edge %+v:\n%s", e, g)
		}
	}
}

func TestTouchedOrigins(t *testing.T) {
	res := profileFirst(t, `
int g;
int main() {
    int n = 4;
    int *h = (int*)malloc(n * 4);
    int i;
    parallel for (i = 0; i < n; i++) {
        h[i] = i;
        g = g + 1;
    }
    print_int(g + h[0]);
    free(h);
    return 0;
}`)
	var sawHeap, sawGlobal bool
	for _, origins := range res.Touched {
		for o := range origins {
			switch o.Kind {
			case OriginHeap:
				sawHeap = true
			case OriginGlobal:
				if o.Name == "g" {
					sawGlobal = true
				}
			}
		}
	}
	if !sawHeap || !sawGlobal {
		t.Fatalf("origins: heap=%v global=%v", sawHeap, sawGlobal)
	}
}

func TestIterationCount(t *testing.T) {
	res := profileFirst(t, `
int main() {
    int i;
    int a[16];
    parallel for (i = 0; i < 16; i++) { a[i] = i; }
    print_int(a[2]);
    return 0;
}`)
	// 16 body iterations + 1 failing condition check.
	if res.Iterations != 17 {
		t.Fatalf("iterations = %d, want 17", res.Iterations)
	}
}

func TestUnknownLoop(t *testing.T) {
	prog, info, _ := compile(t, `
int main() {
    int i;
    int a[4];
    parallel for (i = 0; i < 4; i++) { a[i] = i; }
    return 0;
}`)
	if _, err := Loop(prog, info, 999, interp.Options{}); err == nil {
		t.Fatalf("expected error for unknown loop")
	}
}
