package expand

import (
	"fmt"
	"sort"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/sema"
	"gdsx/internal/token"
)

// Base hoisting is the §3.4 overhead-reduction pass the paper obtains
// from the compiler's ordinary optimizers (copy propagation / common
// subexpression elimination): the redirected base address
// p + __tid*span/sizeof(elem) is loop-invariant, so instead of
// recomputing it at every access it is computed once — at the top of
// the parallel loop body for accesses in the loop itself, or at
// function entry for accesses in functions called from the loop (where
// __tid still evaluates correctly, and evaluates to 0 outside any
// parallel region). Hoisting applies only when the root pointer is not
// reassigned inside the hoist region.

// hoistKey identifies one hoisted base computation.
type hoistKey struct {
	fn   *ast.FuncDecl
	body *ast.Block  // non-nil: hoist into this loop body
	sym  *ast.Symbol // root variable
	elem int64       // element size for pointer plans, 0 for var bases
}

type hoistInfo struct {
	name string
	typ  *ctypes.Type
	init ast.Expr
}

// hoistFor returns (creating if needed) the hoisted temp for a key.
func (p *pass) hoistFor(key hoistKey, typ *ctypes.Type, mkInit func() ast.Expr) *hoistInfo {
	if p.hoists == nil {
		p.hoists = map[hoistKey]*hoistInfo{}
	}
	if hi, ok := p.hoists[key]; ok {
		return hi
	}
	p.tmpN++
	hi := &hoistInfo{
		name: fmt.Sprintf("__base%d", p.tmpN),
		typ:  typ,
		init: mkInit(),
	}
	p.hoists[key] = hi
	return hi
}

// hoistSite decides where a site's base computation may be hoisted:
// the target-loop body that lexically contains it, or its function's
// entry. ok is false when the root is reassigned inside that region.
func (p *pass) hoistSite(as *sema.AccessSite, root *ast.Symbol) (fn *ast.FuncDecl, body *ast.Block, ok bool) {
	var lc *loopCtx
	for i := range p.loops {
		for _, id := range as.Loops {
			if id == p.loops[i].an.ID {
				lc = &p.loops[i]
			}
		}
	}
	if lc != nil {
		b, isBlock := lc.stmt.Body.(*ast.Block)
		if !isBlock {
			return nil, nil, false
		}
		if root != nil && assignsTo(b, root) {
			return nil, nil, false
		}
		return lc.fn, b, true
	}
	if as.Func == nil || as.Func.Body == nil {
		return nil, nil, false
	}
	if root != nil && assignsTo(as.Func.Body, root) {
		return nil, nil, false
	}
	return as.Func, nil, true
}

// assignsTo reports whether the region contains an assignment,
// increment or declaration-with-initializer of sym (any of which would
// invalidate a hoisted base).
func assignsTo(region ast.Node, sym *ast.Symbol) bool {
	found := false
	ast.Inspect(region, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Assign:
			if id, ok := x.LHS.(*ast.Ident); ok && id.Sym == sym {
				found = true
			}
		case *ast.IncDec:
			if id, ok := x.X.(*ast.Ident); ok && id.Sym == sym {
				found = true
			}
		case *ast.VarDecl:
			if x.Sym == sym {
				found = true
			}
		}
		return !found
	})
	return found
}

// insertHoists materializes the hoisted declarations, prepending each
// to its loop body or function body in deterministic order.
func (p *pass) insertHoists() {
	if len(p.hoists) == 0 {
		return
	}
	type target struct {
		fn   *ast.FuncDecl
		body *ast.Block
	}
	grouped := map[target][]*hoistInfo{}
	for key, hi := range p.hoists {
		grouped[target{fn: key.fn, body: key.body}] = append(grouped[target{fn: key.fn, body: key.body}], hi)
	}
	for tgt, his := range grouped {
		sort.Slice(his, func(i, j int) bool { return his[i].name < his[j].name })
		var decls []ast.Stmt
		for _, hi := range his {
			d := &ast.VarDecl{Name: hi.name, Type: hi.typ, Init: hi.init}
			decls = append(decls, &ast.DeclStmt{Decls: []*ast.VarDecl{d}})
		}
		dst := tgt.body
		if dst == nil {
			dst = tgt.fn.Body
		}
		dst.Stmts = append(decls, dst.Stmts...)
	}
}

// cloneWithEntries clones an expression and registers the clone for
// entry mirroring, so pending rewrites of the original (".pointer"
// selection, copy indexing) apply to the clone too.
func (p *pass) cloneWithEntries(e ast.Expr) ast.Expr {
	c := ast.CloneExpr(e)
	p.clonePairs = append(p.clonePairs, [2]ast.Expr{e, c})
	return c
}

// hoistRootSym extracts the plain root variable of a hoistable pointer
// child expression (bare references only, possibly cast-wrapped).
func hoistRootSym(e ast.Expr) *ast.Symbol {
	switch x := stripCasts(e).(type) {
	case *ast.Ident:
		if x.Sym != nil && (x.Sym.Kind == ast.SymLocal || x.Sym.Kind == ast.SymParam ||
			x.Sym.Kind == ast.SymGlobal) {
			return x.Sym
		}
	}
	return nil
}

var _ = token.ASSIGN
