package expand

import (
	"fmt"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// rewriteFuncForPromotion performs the statement-level promotion
// rewrites in one function: splitting initializers of promoted
// declarations, inserting Table 3 span assignments after pointer
// assignments, materializing fat temporaries for call arguments and
// returns, and marking whole-fat copies.
func (p *pass) rewriteFuncForPromotion(fn *ast.FuncDecl) error {
	var err error
	ast.RewriteStmts(fn.Body, func(s ast.Stmt) []ast.Stmt {
		if err != nil {
			return []ast.Stmt{s}
		}
		var out []ast.Stmt
		out, err = p.promoteStmt(fn, s)
		if err != nil {
			return []ast.Stmt{s}
		}
		return out
	})
	return err
}

func (p *pass) promoteStmt(fn *ast.FuncDecl, s ast.Stmt) ([]ast.Stmt, error) {
	// Argument temporaries for calls anywhere in this statement.
	pre, err := p.fixCallArgs(s)
	if err != nil {
		return nil, err
	}

	switch x := s.(type) {
	case *ast.DeclStmt:
		d := x.Decls[0]
		if d.Sym == nil || d.Init == nil {
			break
		}
		sl := slot{sym: d.Sym}
		if p.promote[sl] {
			init := d.Init
			d.Init = nil
			idx := p.declIdx(d)
			post, perr := p.pointerStore(p.slotRef(d.Sym, idx), init, sl)
			if perr != nil {
				return nil, fmt.Errorf("%s: %v", d.Pos(), perr)
			}
			return append(append(pre, s), post...), nil
		}
		if p.expandedVar(d.Sym) {
			// The initializer applies to one copy; the others are only
			// ever written before read inside the loop (Definition 5),
			// so they can start zeroed.
			init := d.Init
			d.Init = nil
			st := assign(p.slotRef(d.Sym, p.declIdx(d)), init)
			return append(append(pre, s), st), nil
		}

	case *ast.ExprStmt:
		switch a := x.X.(type) {
		case *ast.Assign:
			post, perr := p.promoteAssign(a)
			if perr != nil {
				return nil, fmt.Errorf("%s: %v", a.Pos(), perr)
			}
			return append(append(pre, s), post...), nil
		case *ast.IncDec:
			if sl, prom := p.promotedSlotOf(a.X); prom {
				// p++ leaves the span unchanged; without dead-store
				// elimination the paper's pass still emits the
				// redundant p.span = p.span (§3.4).
				if !p.opts.SpanDSE {
					p.report.SpanStores++
					self := p.spanRefOfLHS(a.X, sl)
					if self != nil {
						return append(append(pre, s), assign(self, ast.CloneExpr(self))), nil
					}
				} else {
					p.report.SpanStoresElided++
				}
			}
		}

	case *ast.Return:
		if x.X == nil {
			break
		}
		if !p.promote[slot{fn: fn}] {
			break
		}
		if sl, prom := p.promotedSlotOf(stripCasts(x.X)); prom {
			_ = sl
			x.X = stripCasts(x.X)
			p.markBare(x.X)
			break
		}
		// Materialize a fat temporary.
		tmp, stmts, terr := p.fatTemp(fn.Ret, x.X)
		if terr != nil {
			return nil, fmt.Errorf("%s: return: %v", x.Pos(), terr)
		}
		x.X = tmp
		p.markBare(tmp)
		return append(append(pre, stmts...), s), nil
	}
	return append(pre, s), nil
}

// declIdx returns the copy index for the initializer of a declared
// variable: __tid inside the parallel loop body, 0 outside. For
// non-expanded variables the index is irrelevant.
func (p *pass) declIdx(d *ast.VarDecl) ast.Expr {
	if !p.expandedVar(d.Sym) {
		return nil
	}
	if p.bodyDecls[d.Sym] {
		return tidExpr()
	}
	return intLit(0)
}

// promoteAssign handles `lhs = rhs` and compound assignments whose LHS
// is a promoted slot, returning the Table 3 span statements.
func (p *pass) promoteAssign(a *ast.Assign) ([]ast.Stmt, error) {
	sl, prom := p.promotedSlotOf(a.LHS)
	if !prom {
		return nil, nil
	}
	if a.Op != token.ASSIGN {
		// p += i: pointer moves inside the same object.
		if !p.opts.SpanDSE {
			p.report.SpanStores++
			self := p.spanRefOfLHS(a.LHS, sl)
			if self != nil {
				return []ast.Stmt{assign(self, ast.CloneExpr(self))}, nil
			}
			return nil, nil
		}
		p.report.SpanStoresElided++
		return nil, nil
	}

	// Whole-fat copy: p = q with q itself a promoted slot reference of
	// the same fat type (a recast like (short*)zptr must instead copy
	// fieldwise, casting the pointer field).
	rhs := stripCasts(a.RHS)
	if rsl, rprom := p.promotedSlotOf(rhs); rprom && p.slotFatType(rsl) == p.slotFatType(sl) {
		a.RHS = rhs
		p.markBare(a.LHS)
		p.markBare(rhs)
		return nil, nil
	}
	// Whole-fat copy from a promoted-return call.
	if call, ok := rhs.(*ast.Call); ok && call.Fun.Sym != nil && call.Fun.Sym.Kind == ast.SymFunc {
		fsl := slot{fn: call.Fun.Sym.Fn}
		if p.promote[fsl] && p.slotFatType(fsl) == p.slotFatType(sl) {
			a.RHS = rhs
			p.markBare(a.LHS)
			return nil, nil
		}
	}

	spanLHS := p.spanRefOfLHS(a.LHS, sl)
	if spanLHS == nil {
		return nil, fmt.Errorf("unsupported span target %q", ast.PrintExpr(a.LHS))
	}
	spanRHS, elide, err := p.spanExpr(a.RHS, sl)
	if err != nil {
		return nil, err
	}
	if elide && p.opts.SpanDSE {
		p.report.SpanStoresElided++
		return nil, nil
	}
	p.report.SpanStores++
	return []ast.Stmt{assign(spanLHS, spanRHS)}, nil
}

// slotFatType returns the fat struct type a promoted slot now has
// (valid after mutatePromotedDecls).
func (p *pass) slotFatType(s slot) *ctypes.Type {
	switch {
	case s.sym != nil:
		return s.sym.Type
	case s.field != nil:
		return s.field.Type
	case s.fn != nil:
		return s.fn.Ret
	}
	return nil
}

// pointerStore builds `ref.pointer = rhs; ref.span = span(rhs);` for a
// promoted destination reference built by slotRef.
func (p *pass) pointerStore(ref ast.Expr, rhs ast.Expr, sl slot) ([]ast.Stmt, error) {
	// Whole-fat sources of the same fat type copy directly.
	bare := stripCasts(rhs)
	if rsl, rprom := p.promotedSlotOf(bare); rprom && p.slotFatType(rsl) == p.slotFatType(sl) {
		p.markBare(bare)
		return []ast.Stmt{assign(ref, bare)}, nil
	}
	if call, ok := bare.(*ast.Call); ok && call.Fun.Sym != nil &&
		call.Fun.Sym.Kind == ast.SymFunc {
		fsl := slot{fn: call.Fun.Sym.Fn}
		if p.promote[fsl] && p.slotFatType(fsl) == p.slotFatType(sl) {
			return []ast.Stmt{assign(ref, bare)}, nil
		}
	}
	spanRHS, _, err := p.spanExpr(rhs, sl)
	if err != nil {
		return nil, err
	}
	p.report.SpanStores++
	return []ast.Stmt{
		assign(member(cloneGenerated(ref), "pointer"), rhs),
		assign(member(cloneGenerated(ref), "span"), spanRHS),
	}, nil
}

// fatTemp declares a fat temporary initialized from a raw pointer
// expression (used for promoted returns and arguments).
func (p *pass) fatTemp(ft *ctypes.Type, rhs ast.Expr) (*ast.Ident, []ast.Stmt, error) {
	p.tmpN++
	name := fmt.Sprintf("__fat_tmp%d", p.tmpN)
	decl := &ast.VarDecl{Name: name, Type: ft}
	ds := &ast.DeclStmt{Decls: []*ast.VarDecl{decl}}
	spanRHS, _, err := p.spanExpr(rhs, slot{})
	if err != nil {
		return nil, nil, err
	}
	p.report.SpanStores++
	stmts := []ast.Stmt{
		ds,
		assign(member(ident(name), "pointer"), rhs),
		assign(member(ident(name), "span"), spanRHS),
	}
	return ident(name), stmts, nil
}

// fixCallArgs rewrites arguments passed to promoted parameters: bare
// promoted references pass the whole fat value; anything else is
// materialized into a fat temporary before the statement.
func (p *pass) fixCallArgs(s ast.Stmt) ([]ast.Stmt, error) {
	var pre []ast.Stmt
	var err error
	ast.Inspect(s, func(n ast.Node) bool {
		if err != nil {
			return false
		}
		// Do not descend into nested statements: RewriteStmts visits
		// them separately.
		switch n.(type) {
		case *ast.Block, *ast.If, *ast.For, *ast.While, *ast.DoWhile:
			if n != s {
				return false
			}
		}
		call, ok := n.(*ast.Call)
		if !ok || call.Fun.Sym == nil || call.Fun.Sym.Kind != ast.SymFunc {
			return true
		}
		callee := call.Fun.Sym.Fn
		for i, arg := range call.Args {
			if i >= len(callee.Params) {
				break
			}
			psl := slot{sym: callee.Params[i].Sym}
			if !p.promote[psl] {
				continue
			}
			bare := stripCasts(arg)
			if _, prom := p.promotedSlotOf(bare); prom {
				call.Args[i] = bare
				p.markBare(bare)
				continue
			}
			if c, ok := bare.(*ast.Call); ok && c.Fun.Sym != nil &&
				c.Fun.Sym.Kind == ast.SymFunc && p.promote[slot{fn: c.Fun.Sym.Fn}] {
				call.Args[i] = bare
				continue
			}
			ft := callee.Params[i].Sym.Type // already fat
			tmp, stmts, terr := p.fatTemp(ft, arg)
			if terr != nil {
				err = fmt.Errorf("%s: argument %d of %s: %v", call.Pos(), i+1, callee.Name, terr)
				return false
			}
			pre = append(pre, stmts...)
			call.Args[i] = tmp
			p.markBare(tmp)
		}
		return true
	})
	return pre, err
}

// ---------------------------------------------------------------------
// Span expressions (paper Table 3)
// ---------------------------------------------------------------------

// spanExpr derives the span of a right-hand side assigned to a promoted
// pointer. elide reports that the span provably does not change
// (p = p ± i), enabling the §3.4 dead-store elimination.
func (p *pass) spanExpr(rhs ast.Expr, lhs slot) (e ast.Expr, elide bool, err error) {
	switch x := stripCasts(rhs).(type) {
	case *ast.IntLit:
		if x.Value == 0 {
			return intLit(0), false, nil
		}
	case *ast.StringLit:
		return intLit(int64(len(x.Value)) + 1), false, nil
	case *ast.Unary:
		if x.Op == token.AND {
			// Table 3 "address taken": sizeof the whole variable, or
			// the whole struct for &s.f.
			return p.addrSpan(x.X)
		}
	case *ast.Call:
		switch x.Fun.Sym.Builtin {
		case ast.BMalloc, ast.BRealloc:
			return p.cloneSpanRef(x.Args[len(x.Args)-1]), false, nil
		case ast.BCalloc:
			return mul(p.cloneSpanRef(x.Args[0]), p.cloneSpanRef(x.Args[1])), false, nil
		}
	case *ast.Ident, *ast.Member:
		if sl, prom := p.promotedSlotOf(x); prom {
			ref := p.spanRefOfLHS(x, sl)
			if ref == nil {
				return nil, false, fmt.Errorf("unsupported span source %q", ast.PrintExpr(x))
			}
			return ref, sl == lhs, nil
		}
		if S, ok := p.constSpanOfExpr(x); ok && p.opts.ConstSpan {
			return intLit(S), false, nil
		}
	case *ast.Binary:
		if x.Op == token.ADD || x.Op == token.SUB {
			// Table 3 pointer arithmetic: the span follows the pointer
			// operand.
			if t := x.X.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
				return p.spanExpr(x.X, lhs)
			}
			if t := x.Y.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
				return p.spanExpr(x.Y, lhs)
			}
		}
	case *ast.Cond:
		// p = c ? a : b: the span follows the selected arm. The
		// condition is re-evaluated for the span store; MiniC
		// conditions here are side-effect-free selections.
		thenE, _, err := p.spanExpr(x.Then, lhs)
		if err != nil {
			return nil, false, err
		}
		elseE, _, err := p.spanExpr(x.Else, lhs)
		if err != nil {
			return nil, false, err
		}
		return &ast.Cond{C: p.cloneSpanRef(x.C), Then: thenE, Else: elseE}, false, nil
	}
	if S, ok := p.constSpanOfExpr(rhs); ok {
		return intLit(S), false, nil
	}
	return nil, false, fmt.Errorf("cannot derive span of %q", ast.PrintExpr(rhs))
}

// addrSpan implements Table 3's address-taken rules.
func (p *pass) addrSpan(lv ast.Expr) (ast.Expr, bool, error) {
	switch x := lv.(type) {
	case *ast.Ident:
		if x.Sym != nil && x.Sym.Type.HasStaticSize() {
			return intLit(x.Sym.Type.Size()), false, nil
		}
	case *ast.Member:
		// &s.f: the span covers the whole structure.
		var owner *ctypes.Type
		if x.Arrow {
			if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Ptr {
				owner = bt.Elem
			}
		} else {
			owner = x.X.ExprType()
		}
		if owner != nil && owner.Kind == ctypes.Struct {
			return intLit(owner.Size()), false, nil
		}
	case *ast.Index:
		// &a[i]: span of the underlying object.
		base, err := p.baseOf(x)
		if err == nil && base.varSym != nil && base.varSym.Type.HasStaticSize() {
			return intLit(base.varSym.Type.Size()), false, nil
		}
		if err == nil && base.ptr != nil {
			return p.spanExpr(base.ptr, slot{})
		}
	}
	return nil, false, fmt.Errorf("cannot derive span of address expression %q", ast.PrintExpr(lv))
}

// spanRefOfLHS builds a fresh reference to the span field of a promoted
// slot reference. Supported shapes: p, s.f and q->f (with q not itself
// subject to redirection).
func (p *pass) spanRefOfLHS(ref ast.Expr, sl slot) ast.Expr {
	switch x := ref.(type) {
	case *ast.Ident:
		idx := ast.Expr(nil)
		if p.expandedVar(x.Sym) {
			idx = p.idxExprFor(p.siteIdx[x])
		}
		return member(p.slotRefNamed(x.Name, idx), "span")
	case *ast.Member:
		switch b := x.X.(type) {
		case *ast.Ident:
			if b.Sym == nil {
				return nil
			}
			if x.Arrow {
				if _, prom := p.promotedSlotOf(b); prom {
					// q->f with q promoted: q.pointer->f.span.
					base := member(ident(b.Name), "pointer")
					m := &ast.Member{X: base, Name: x.Name, Arrow: true}
					return member(m, "span")
				}
				if p.expandedVar(b.Sym) {
					return nil
				}
				m := &ast.Member{X: ident(b.Name), Name: x.Name, Arrow: true}
				return member(m, "span")
			}
			var base ast.Expr = ident(b.Name)
			if p.expandedVar(b.Sym) {
				base = index(base, p.idxExprFor(p.siteIdx[b]))
			}
			m := &ast.Member{X: base, Name: x.Name}
			return member(m, "span")
		}
	}
	return nil
}

// slotRef builds a fresh reference to a (possibly expanded) variable,
// indexed by idx when expanded.
func (p *pass) slotRef(sym *ast.Symbol, idx ast.Expr) ast.Expr {
	return p.slotRefNamed(sym.Name, idxOrNil(idx, p.expandedVar(sym)))
}

func idxOrNil(idx ast.Expr, expanded bool) ast.Expr {
	if !expanded {
		return nil
	}
	if idx == nil {
		return intLit(0)
	}
	return idx
}

func (p *pass) slotRefNamed(name string, idx ast.Expr) ast.Expr {
	var e ast.Expr = ident(name)
	if idx != nil {
		e = index(e, idx)
	}
	return e
}

// expandedVar reports whether a variable's storage is in the expansion
// set.
func (p *pass) expandedVar(sym *ast.Symbol) bool {
	if sym == nil {
		return false
	}
	return p.expandSet[objVar(sym)]
}

// cloneSpanRef deep-copies an expression used inside generated span
// statements. The clone is registered for entry mirroring so rewrites
// of the original (copy indexing, pointer selection) also apply to it.
func (p *pass) cloneSpanRef(e ast.Expr) ast.Expr {
	c := ast.CloneExpr(e)
	p.clonePairs = append(p.clonePairs, [2]ast.Expr{e, c})
	return c
}

// cloneGenerated deep-copies generated reference trees (they contain
// no original nodes, so replacement sweeps ignore them by design).
func cloneGenerated(e ast.Expr) ast.Expr { return ast.CloneExpr(e) }
