package expand

import (
	"fmt"

	"gdsx/internal/alias"
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/sema"
	"gdsx/internal/token"
)

// computeExpansionSet decides which data structures are expanded. With
// AliasFilter (the §3.4 optimization) only structures reachable from
// thread-private accesses are expanded; without it, every global, every
// pre-loop heap site and every enclosing-function local is expanded.
//
// "Iteration-fresh" structures — locals declared inside the loop body
// and heap blocks allocated during an iteration — need no expansion:
// every iteration (and therefore every thread) works on distinct
// storage, so a private access whose targets are all fresh is left
// unredirected.
func (p *pass) computeExpansionSet() error {
	p.expandSet = map[alias.Object]bool{}
	p.skipSites = map[int]bool{}

	for _, site := range p.privateSites() {
		as := p.in.Info.Accesses[site]
		objs, ptrBased, err := p.accessObjects(as)
		if err != nil {
			return err
		}
		if len(objs) == 0 {
			if ptrBased {
				return fmt.Errorf("expand: %s: private access %q has no points-to targets", as.Pos, as.Text)
			}
			continue
		}
		fresh := 0
		for _, o := range objs {
			if p.isFresh(o) {
				fresh++
			}
		}
		if fresh == len(objs) {
			// All targets are iteration-fresh: nothing to expand, no
			// redirection needed.
			p.skipSites[site] = true
			continue
		}
		for _, o := range objs {
			if err := p.checkExpandable(o, as); err != nil {
				return err
			}
			p.expandSet[o] = true
		}
	}

	if !p.opts.AliasFilter {
		p.addAllStructures()
	}
	return nil
}

// isFresh reports whether the object is per-thread by construction: a
// local declared inside the loop body, a local of a function other than
// the one containing the loop (each call activates fresh storage), a
// parallel-loop induction variable (the scheduler gives each thread a
// private cell), or a heap site that allocates during the loop.
func (p *pass) isFresh(o alias.Object) bool {
	switch o.Kind {
	case alias.ObjVar:
		if p.indVars()[o.Sym] {
			return true
		}
		if o.Sym.Kind == ast.SymGlobal {
			return false
		}
		if p.bodyDecls[o.Sym] {
			return true
		}
		// Locals of functions that do not lexically contain any target
		// loop are per-invocation storage.
		df := p.declFunc(o.Sym)
		for _, lc := range p.loops {
			if df == lc.fn {
				return false
			}
		}
		return true
	case alias.ObjHeap:
		call := p.in.Info.Allocs[o.Site]
		if call == nil {
			return false
		}
		// Allocated during some target loop (observed dynamically by
		// the profiler via its definition site)?
		for _, lc := range p.loops {
			if _, in := lc.an.Graph.Defs[call.Acc.Store]; in {
				return true
			}
		}
		return false
	}
	return false
}

// indVars returns the induction variables of every parallel loop in
// the program; their storage is never expanded.
func (p *pass) indVars() map[*ast.Symbol]bool {
	if p.indVarSet == nil {
		p.indVarSet = map[*ast.Symbol]bool{}
		for _, l := range p.in.Info.Loops {
			if f, ok := l.Stmt.(*ast.For); ok && f.Par != ast.Sequential && f.IndVar != nil {
				p.indVarSet[f.IndVar] = true
			}
		}
	}
	return p.indVarSet
}

// declFunc returns the function whose body (or parameter list) declares
// sym, or nil for globals.
func (p *pass) declFunc(sym *ast.Symbol) *ast.FuncDecl {
	if p.symFunc == nil {
		p.symFunc = map[*ast.Symbol]*ast.FuncDecl{}
		for _, f := range p.in.Prog.Funcs() {
			fn := f
			for _, par := range fn.Params {
				p.symFunc[par.Sym] = fn
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if d, ok := n.(*ast.VarDecl); ok && d.Sym != nil {
					p.symFunc[d.Sym] = fn
				}
				return true
			})
		}
	}
	return p.symFunc[sym]
}

// checkExpandable verifies the object can be expanded per Table 1.
func (p *pass) checkExpandable(o alias.Object, as *sema.AccessSite) error {
	switch o.Kind {
	case alias.ObjVar:
		sym := o.Sym
		if sym.Kind == ast.SymParam {
			return fmt.Errorf("expand: %s: cannot expand parameter %s referenced by private access %q",
				as.Pos, sym.Name, as.Text)
		}
		if !sym.Type.HasStaticSize() {
			return fmt.Errorf("expand: cannot expand dynamically sized local %s", sym.Name)
		}
		if sym.Kind == ast.SymGlobal && sym.Type.Kind == ctypes.Array &&
			sym.Type.Elem.Kind == ctypes.Array {
			// Heap conversion of a multi-dimensional global would need
			// pointer-to-array declarators, which MiniC does not have.
			return fmt.Errorf("expand: %s: cannot expand multi-dimensional global %s", as.Pos, sym.Name)
		}
		return nil
	case alias.ObjHeap:
		call := p.in.Info.Allocs[o.Site]
		if call == nil {
			return fmt.Errorf("expand: unknown allocation site %d", o.Site)
		}
		if call.Fun.Sym.Builtin == ast.BRealloc && !p.isFresh(o) {
			return fmt.Errorf("expand: %s: realloc of an expanded structure is not supported", call.Pos())
		}
		return nil
	case alias.ObjStr:
		return fmt.Errorf("expand: %s: private access %q may write string storage", as.Pos, as.Text)
	}
	return fmt.Errorf("expand: unknown object kind")
}

// addAllStructures implements the no-alias-filter configuration: every
// global, every static-size local of the enclosing function declared
// outside the loop, and every heap site allocating before the loop is
// expanded, whether or not private accesses reach it.
func (p *pass) addAllStructures() {
	for _, g := range p.in.Info.Globals {
		if g.Sym.Type.Kind == ctypes.Array && g.Sym.Type.Elem.Kind == ctypes.Array {
			continue // see checkExpandable: not convertible in MiniC
		}
		p.expandSet[alias.Object{Kind: alias.ObjVar, Sym: g.Sym}] = true
	}
	seenFn := map[*ast.FuncDecl]bool{}
	for _, lc := range p.loops {
		if seenFn[lc.fn] {
			continue
		}
		seenFn[lc.fn] = true
		ast.Inspect(lc.fn.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.VarDecl); ok && d.Sym != nil &&
				!p.bodyDecls[d.Sym] && !p.indVars()[d.Sym] && d.Sym.Type.HasStaticSize() {
				p.expandSet[alias.Object{Kind: alias.ObjVar, Sym: d.Sym}] = true
			}
			return true
		})
	}
	for site, call := range p.in.Info.Allocs {
		inLoop := false
		for _, lc := range p.loops {
			if _, in := lc.an.Graph.Defs[call.Acc.Store]; in {
				inLoop = true
				break
			}
		}
		if inLoop || call.Fun.Sym.Builtin == ast.BRealloc {
			continue
		}
		p.expandSet[alias.Object{Kind: alias.ObjHeap, Site: site}] = true
	}
}

// countStructures groups the expanded objects into the dynamic data
// structures of the paper's Table 5: objects touched by one and the
// same private access (alternative allocation sites for one pointer)
// form a single structure.
func (p *pass) countStructures() int {
	parent := map[alias.Object]alias.Object{}
	var find func(o alias.Object) alias.Object
	find = func(o alias.Object) alias.Object {
		q, ok := parent[o]
		if !ok || q == o {
			parent[o] = o
			return o
		}
		r := find(q)
		parent[o] = r
		return r
	}
	for o := range p.expandSet {
		find(o)
	}
	for _, site := range p.privateSites() {
		if p.skipSites[site] {
			continue
		}
		objs, _, err := p.accessObjects(p.in.Info.Accesses[site])
		if err != nil || len(objs) < 2 {
			continue
		}
		first := objs[0]
		if !p.expandSet[first] {
			continue
		}
		for _, o := range objs[1:] {
			if p.expandSet[o] {
				parent[find(o)] = find(first)
			}
		}
	}
	roots := map[alias.Object]bool{}
	for o := range p.expandSet {
		roots[find(o)] = true
	}
	return len(roots)
}

// accessObjects returns the data structures an access may touch: the
// root variable for variable-based accesses, or the points-to targets
// of the dereferenced pointer expression.
func (p *pass) accessObjects(as *sema.AccessSite) (objs []alias.Object, ptrBased bool, err error) {
	node, ok := as.Node.(ast.Expr)
	if !ok {
		return nil, false, nil // definition sites
	}
	base, berr := p.baseOf(node)
	if berr != nil {
		return nil, false, fmt.Errorf("%s: access %q: %v", as.Pos, as.Text, berr)
	}
	if base.varSym != nil {
		return []alias.Object{{Kind: alias.ObjVar, Sym: base.varSym}}, false, nil
	}
	return p.in.Alias.PointsTo(base.ptr), true, nil
}

// baseRef describes the root of an access expression: either a named
// variable, or a pointer expression being dereferenced.
type baseRef struct {
	varSym *ast.Symbol
	ptr    ast.Expr
}

// baseOf resolves the root of an access node using the original
// (pre-transformation) types.
func (p *pass) baseOf(e ast.Expr) (baseRef, error) {
	switch x := e.(type) {
	case *ast.Ident:
		return baseRef{varSym: x.Sym}, nil
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			return p.baseOf(x.X)
		}
		return baseRef{ptr: x.X}, nil
	case *ast.Member:
		if x.Arrow {
			return baseRef{ptr: x.X}, nil
		}
		return p.baseOf(x.X)
	case *ast.Unary:
		if x.Op == token.MUL {
			return baseRef{ptr: x.X}, nil
		}
	}
	return baseRef{}, fmt.Errorf("unsupported access shape")
}
