// Package expand implements the paper's core contribution: general
// data structure expansion for multi-threading. Given a target loop,
// its loop-level data dependence graph, the access classification of
// Definition 5 and a points-to analysis, it rewrites the program so
// that every contentious data structure holds N adjacent copies
// (Table 1), pointers that may reach expanded structures become fat
// pointers carrying a span field (Figures 4–6, Table 3), and every
// memory access is redirected to its thread's copy or the shared copy
// (Table 2). For DOACROSS loops it also places ordered-section
// synchronization around the residual loop-carried dependences.
//
// The transformation is source-to-source: the mutated AST prints back
// to legal MiniC (referencing the __tid and __nthreads pseudo-
// variables), which the driver re-parses, re-checks and executes.
package expand

import (
	"fmt"
	"sort"

	"gdsx/internal/alias"
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/ddg"
	"gdsx/internal/sema"
	"gdsx/internal/token"
)

// Token aliases keep generated-AST helpers compact.
const (
	tokMUL    = token.MUL
	tokADD    = token.ADD
	tokQUO    = token.QUO
	tokASSIGN = token.ASSIGN
)

// Layout selects the copy layout of expanded structures (paper Fig. 2).
type Layout int

// Layouts.
const (
	// Bonded replicates a structure in its entirety, copies adjacent —
	// the paper's preferred mode (survives recasts, better locality).
	Bonded Layout = iota
	// Interleaved replicates each primitive element, copies of one
	// element adjacent. Implemented for primitive-element structures
	// only; it fails by construction on recast buffers, which is the
	// paper's argument for bonded mode.
	Interleaved
	// Adaptive implements the scheme the paper's §6 proposes as future
	// work: use the interleaved layout when every expanded structure
	// supports it (single-typed heap buffers accessed only inside the
	// loop), and fall back to bonded otherwise.
	Adaptive
)

func (l Layout) String() string {
	switch l {
	case Interleaved:
		return "interleaved"
	case Adaptive:
		return "adaptive"
	}
	return "bonded"
}

// Options control the transformation.
type Options struct {
	Layout Layout

	// AliasFilter expands only data structures that may be referenced
	// by thread-private accesses (§3.4). When false, every global,
	// heap site and enclosing-function local is expanded.
	AliasFilter bool

	// ConstSpan elides pointer promotion when every object a pointer
	// may reach has the same statically known size; the redirection
	// then uses the constant (§3.4 constant/copy propagation).
	ConstSpan bool

	// SpanDSE suppresses span stores that provably do not change the
	// span (p = p + 1 and p = p, §3.4 dead store elimination).
	SpanDSE bool

	// HoistBases hoists loop-invariant redirected base addresses
	// (p + __tid*span/sizeof(elem)) to the loop body top or function
	// entry, the effect the paper gets from the compiler's ordinary
	// copy-propagation/CSE once the pass has run (§3.4).
	HoistBases bool

	// ConservativeSync emulates a coarse DOACROSS sync placement by
	// ordering the entire loop body instead of the minimal residual
	// range. The paper notes its own placement algorithm "still has
	// room for improvement" (256.bzip2 and 456.hmmer were dominated by
	// synchronization); this option is the ablation that reproduces
	// that behaviour.
	ConservativeSync bool

	// GuardNotes makes the expanded program self-describing for the
	// guarded-execution monitor: expanded heap allocations become
	// __expand_malloc(span, esz) calls (the builtin multiplies by the
	// thread count itself and announces the copy geometry through
	// Hooks.Expand), and each expanded local declaration is followed by
	// an __expand_note(base, span, esz) marker. Off by default because
	// the marker calls change the generated code and therefore the
	// deterministic instruction counters.
	GuardNotes bool

	// Commutative enables runtime privatization of reduction-shaped
	// classes (ddg.Class.Commutative): the accumulator is left
	// unexpanded and a __comm_note(base, span, esz, op) marker is
	// planted before the loop so the runtime's commutative privatizer
	// can give each thread an identity-initialized copy and merge at
	// region exit. Requires the classifier to have run with
	// ddg.Options.CommSites populated, and the executing machine to
	// bind the commutative runtime — without it the marker is inert and
	// the carried flow remains (caught by guarded execution as before).
	Commutative bool
}

// Optimized returns the §3.4-optimized configuration (paper Fig. 9b).
func Optimized() Options {
	return Options{Layout: Bonded, AliasFilter: true, ConstSpan: true, SpanDSE: true, HoistBases: true}
}

// Unoptimized returns the configuration without the §3.4 optimizations
// (paper Fig. 9a): everything is expanded, every pointer that may
// reach an expanded structure is promoted, and every pointer
// assignment recomputes its span.
func Unoptimized() Options {
	return Options{Layout: Bonded}
}

// LoopAnalysis bundles the per-loop analyses: the profiled dependence
// graph and the Definition 5 classification.
type LoopAnalysis struct {
	ID    int
	Graph *ddg.Graph
	Class *ddg.Classification
}

// Input bundles the analyses the pass consumes. All parallel loops are
// transformed in one pass: expansion of a structure shared between
// loops must see every loop's classification at once.
type Input struct {
	Prog  *ast.Program
	Info  *sema.Info
	Loops []LoopAnalysis
	Alias *alias.Analysis
}

// Report describes what the pass did.
type Report struct {
	// LoopIDs lists the transformed loops.
	LoopIDs []int
	// Expanded lists the privatized abstract objects.
	Expanded []alias.Object
	// Structures counts privatized dynamic data structures the way the
	// paper's Table 5 does: allocation sites that are alternatives for
	// the same pointer (reached by one access, like hmmer's two mx
	// sites) count as one structure.
	Structures int
	// Promoted lists the pointer slots promoted to fat pointers.
	Promoted []string
	// PrivateSites is the number of thread-private access sites.
	PrivateSites int
	// SpanStores / SpanStoresElided count Table 3 statements inserted
	// and suppressed by optimization.
	SpanStores       int
	SpanStoresElided int
	// SyncPlaced lists the DOACROSS loops that received an ordered
	// section.
	SyncPlaced []int
	// LayoutUsed is the copy layout actually applied (relevant for
	// Adaptive).
	LayoutUsed Layout
	// CommClasses counts the commutative classes handed to the runtime
	// privatizer; CommNotes describes the planted markers.
	CommClasses int
	CommNotes   []string
}

// Expand applies the transformation for the program's parallel loops,
// mutating in.Prog. The caller re-parses the printed program before
// execution.
func Expand(in Input, opts Options) (*Report, error) {
	if len(in.Loops) == 0 {
		return nil, fmt.Errorf("expand: no loops to transform")
	}
	p := &pass{in: in, opts: opts, report: &Report{}}
	for _, la := range in.Loops {
		li, ok := in.Info.Loops[la.ID]
		if !ok {
			return nil, fmt.Errorf("expand: no loop %d", la.ID)
		}
		loop, ok := li.Stmt.(*ast.For)
		if !ok || loop.Par == ast.Sequential {
			return nil, fmt.Errorf("expand: loop %d is not a parallel candidate", la.ID)
		}
		p.loops = append(p.loops, loopCtx{an: la, stmt: loop, fn: li.Func})
		p.report.LoopIDs = append(p.report.LoopIDs, la.ID)
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.report, nil
}

// loopCtx pairs a target loop's analyses with its AST.
type loopCtx struct {
	an   LoopAnalysis
	stmt *ast.For
	fn   *ast.FuncDecl
}

type pass struct {
	in     Input
	opts   Options
	loops  []loopCtx
	report *Report

	// objects to expand and the pointer slots to promote.
	expandSet map[alias.Object]bool
	promote   map[slot]bool
	constSpan map[slot]int64 // slots with statically known span

	// skipSites are private sites whose targets are all iteration-fresh
	// and therefore need no redirection.
	skipSites map[int]bool

	// bodyDecls is the set of symbols declared inside the loop body.
	bodyDecls map[*ast.Symbol]bool
	// symFunc maps each local/param symbol to its declaring function.
	symFunc map[*ast.Symbol]*ast.FuncDecl
	// tmpN numbers generated temporaries.
	tmpN int
	// ptrPlans are the pointer-based redirections to perform.
	ptrPlans []*ptrPlan
	// fieldRefCache indexes Member expressions by field.
	fieldRefCache map[*ctypes.Field][]ast.Expr
	// siteIdx maps base Ident nodes of accesses to their access site.
	siteIdx map[*ast.Ident]int
	// entries holds the registered reference rewrites, applied in one
	// sweep by applyReplacements.
	entries map[ast.Expr]*replEntry
	// bare marks promoted references passed/copied as whole fat values.
	bare map[ast.Expr]bool
	// unitType snapshots each expanded variable's pre-expansion type.
	unitType map[*ast.Symbol]*ctypes.Type
	// globalConv records converted globals: -1 for scalar/record, or
	// the row count copies are apart for arrays.
	globalConv map[*ast.Symbol]int64
	// interleavedDone tracks Index nodes already rewritten.
	interleavedDone map[*ast.Index]bool
	// indVarSet caches the induction variables of parallel loops.
	indVarSet map[*ast.Symbol]bool
	// clonePairs records (original, clone) expression pairs whose
	// rewrite entries must be mirrored before the final sweep.
	clonePairs [][2]ast.Expr
	// hoists holds the hoisted base computations (see hoist.go).
	hoists map[hoistKey]*hoistInfo
	// commPlans are the commutative-privatization markers to plant.
	commPlans []commPlan

	// fat types per original pointee type string.
	fatTypes map[string]*ctypes.Type
}

// slot identifies a promotable pointer location: a named variable, a
// struct field, or a function's return value.
type slot struct {
	sym   *ast.Symbol   // variable slot (nil otherwise)
	owner *ctypes.Type  // struct type for field slots
	field *ctypes.Field // field slot
	fn    *ast.FuncDecl // return-value slot
}

func (s slot) String() string {
	switch {
	case s.sym != nil:
		return s.sym.Name
	case s.fn != nil:
		return s.fn.Name + "()"
	default:
		return s.owner.Name + "." + s.field.Name
	}
}

func (p *pass) run() error {
	p.collectBodyDecls()
	if err := p.computeExpansionSet(); err != nil {
		return err
	}
	// Count Table 5 structures before any rewriting invalidates the
	// type annotations countStructures relies on.
	p.report.Structures = p.countStructures()
	p.planCommNotes()
	if err := p.computePromotion(); err != nil {
		return err
	}
	if err := p.promotePointers(); err != nil {
		return err
	}
	// Constant spans must be evaluated after promotion finalizes struct
	// sizes but before expansion multiplies allocation sizes by the
	// thread count.
	if err := p.resolveConstPlans(); err != nil {
		return err
	}
	if err := p.expandTypes(); err != nil {
		return err
	}
	if err := p.redirectAccesses(); err != nil {
		return err
	}
	p.insertHoists()
	p.applyReplacements()
	if err := p.insertCommNotes(); err != nil {
		return err
	}
	for _, lc := range p.loops {
		if lc.stmt.Par != ast.DOACROSS {
			continue
		}
		placed, err := p.placeSync(lc)
		if err != nil {
			return err
		}
		if placed {
			p.report.SyncPlaced = append(p.report.SyncPlaced, lc.an.ID)
		}
	}
	p.finishReport()
	return nil
}

func (p *pass) collectBodyDecls() {
	p.bodyDecls = map[*ast.Symbol]bool{}
	for _, lc := range p.loops {
		ast.Inspect(lc.stmt.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.VarDecl); ok && d.Sym != nil {
				p.bodyDecls[d.Sym] = true
			}
			return true
		})
	}
}

func (p *pass) finishReport() {
	for o := range p.expandSet {
		p.report.Expanded = append(p.report.Expanded, o)
	}
	sort.Slice(p.report.Expanded, func(i, j int) bool {
		return objLess(p.report.Expanded[i], p.report.Expanded[j])
	})
	for s := range p.promote {
		p.report.Promoted = append(p.report.Promoted, s.String())
	}
	sort.Strings(p.report.Promoted)
	for _, site := range p.privateSites() {
		_ = site
		p.report.PrivateSites++
	}
}

func objLess(a, b alias.Object) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	an, bn := "", ""
	if a.Sym != nil {
		an = a.Sym.Name
	}
	if b.Sym != nil {
		bn = b.Sym.Name
	}
	return an < bn
}

// privateSites returns the non-definition access sites that are
// thread-private in at least one target loop, excluding loop-control
// (induction variable) accesses. A site private in one loop and shared
// in another is treated as private; this is sound here only when its
// shared uses are reads of data the other loop does not expand, which
// holds for the benchmark programs (shared helpers only read
// loop-invariant data).
func (p *pass) privateSites() []int {
	seen := map[int]bool{}
	var out []int
	for _, lc := range p.loops {
		for site := range lc.an.Graph.Sites {
			if seen[site] || !lc.an.Class.Private(site) {
				continue
			}
			as := p.in.Info.Accesses[site]
			if as == nil || as.IsDef {
				continue
			}
			if p.isControlSite(as) {
				continue
			}
			seen[site] = true
			out = append(out, site)
		}
	}
	sort.Ints(out)
	return out
}

// sitePrivate reports whether a site is private in some target loop.
func (p *pass) sitePrivate(site int) bool {
	for _, lc := range p.loops {
		if _, in := lc.an.Graph.Sites[site]; in && lc.an.Class.Private(site) {
			return true
		}
	}
	return false
}

// siteInAnyLoop reports whether the site executed inside any target loop.
func (p *pass) siteInAnyLoop(site int) bool {
	for _, lc := range p.loops {
		if _, in := lc.an.Graph.Sites[site]; in {
			return true
		}
	}
	return false
}

// isControlSite reports whether the access reads or writes a parallel
// loop's induction variable, which the parallel runtime privatizes
// natively.
func (p *pass) isControlSite(as *sema.AccessSite) bool {
	if id, ok := as.Node.(*ast.Ident); ok {
		return id.Sym != nil && p.indVars()[id.Sym]
	}
	return false
}

// ---------------------------------------------------------------------
// Generated-AST helpers
// ---------------------------------------------------------------------

func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }
func intLit(v int64) *ast.IntLit   { return &ast.IntLit{Value: v} }
func tidExpr() ast.Expr            { return ident("__tid") }
func nthExpr() ast.Expr            { return ident("__nthreads") }
func member(x ast.Expr, f string) *ast.Member {
	return &ast.Member{X: x, Name: f}
}
func index(x, i ast.Expr) *ast.Index { return &ast.Index{X: x, I: i} }

func mul(x, y ast.Expr) ast.Expr {
	if l, ok := x.(*ast.IntLit); ok {
		if l.Value == 1 {
			return y
		}
		if l.Value == 0 {
			return intLit(0)
		}
	}
	if l, ok := y.(*ast.IntLit); ok {
		if l.Value == 1 {
			return x
		}
		if l.Value == 0 {
			return intLit(0)
		}
	}
	return &ast.Binary{Op: tokMUL, X: x, Y: y}
}

func add(x, y ast.Expr) ast.Expr {
	if l, ok := y.(*ast.IntLit); ok && l.Value == 0 {
		return x
	}
	return &ast.Binary{Op: tokADD, X: x, Y: y}
}

func quo(x, y ast.Expr) ast.Expr {
	if l, ok := y.(*ast.IntLit); ok && l.Value == 1 {
		return x
	}
	return &ast.Binary{Op: tokQUO, X: x, Y: y}
}

func assign(lhs, rhs ast.Expr) *ast.ExprStmt {
	return &ast.ExprStmt{X: &ast.Assign{Op: tokASSIGN, LHS: lhs, RHS: rhs}}
}
