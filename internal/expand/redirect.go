package expand

import (
	"fmt"

	"gdsx/internal/alias"
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/ddg"
	"gdsx/internal/token"
)

func objVar(sym *ast.Symbol) alias.Object { return alias.Object{Kind: alias.ObjVar, Sym: sym} }

// expandTypes applies the paper's Table 1: expanded locals gain an
// outer [__nthreads] dimension, expanded globals are converted to heap
// objects allocated at program start, and expanded heap allocations
// multiply their size by the thread count.
func (p *pass) expandTypes() error {
	p.unitType = map[*ast.Symbol]*ctypes.Type{}
	p.globalConv = map[*ast.Symbol]int64{}

	var mainInit []ast.Stmt
	noteDecls := map[*ast.VarDecl]int64{} // expanded local decl -> per-copy span
	for o := range p.expandSet {
		switch o.Kind {
		case alias.ObjVar:
			sym := o.Sym
			p.unitType[sym] = sym.Type
			d := sym.Decl
			if d == nil {
				return fmt.Errorf("expand: no declaration for %s", sym.Name)
			}
			if sym.Kind == ast.SymGlobal {
				stmts, err := p.convertGlobal(sym, d)
				if err != nil {
					return err
				}
				mainInit = append(mainInit, stmts...)
				continue
			}
			if d.VLALen != nil {
				return fmt.Errorf("expand: cannot expand dynamically sized local %s", sym.Name)
			}
			// Local scalar/record/array: T a -> T a[N].
			span := d.Type.Size()
			d.Type = ctypes.ArrayOf(d.Type, -1)
			d.VLALen = nthExpr()
			sym.Type = d.Type
			if p.opts.GuardNotes {
				noteDecls[d] = span
			}

		case alias.ObjHeap:
			call := p.in.Info.Allocs[o.Site]
			switch call.Fun.Sym.Builtin {
			case ast.BMalloc:
				if p.opts.GuardNotes {
					call.Fun = ident("__expand_malloc")
					call.Args = append(call.Args, intLit(0))
				} else {
					call.Args[0] = mul(call.Args[0], nthExpr())
				}
			case ast.BCalloc:
				if p.opts.GuardNotes {
					call.Fun = ident("__expand_malloc")
					call.Args = []ast.Expr{mul(call.Args[0], call.Args[1]), intLit(0)}
				} else {
					call.Args[0] = mul(call.Args[0], nthExpr())
				}
			case ast.BRealloc:
				return fmt.Errorf("expand: realloc site %d cannot be expanded", o.Site)
			}
		}
	}
	if len(noteDecls) > 0 {
		if err := p.insertExpandNotes(noteDecls); err != nil {
			return err
		}
	}
	if len(mainInit) > 0 {
		// Deterministic order: sort by the printed form.
		sortStmts(mainInit)
		mainFn := p.in.Prog.Func("main")
		mainFn.Body.Stmts = append(mainInit, mainFn.Body.Stmts...)
	}
	return nil
}

// insertExpandNotes places an __expand_note(a, span, 0) marker directly
// after each expanded local declaration so the guard monitor learns the
// copy geometry of stack-expanded structures every time the frame is
// (re)entered.
func (p *pass) insertExpandNotes(noteDecls map[*ast.VarDecl]int64) error {
	remaining := len(noteDecls)
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		blk, ok := n.(*ast.Block)
		if !ok || remaining == 0 {
			return remaining > 0
		}
		for i := 0; i < len(blk.Stmts); i++ {
			ds, ok := blk.Stmts[i].(*ast.DeclStmt)
			if !ok {
				continue
			}
			var notes []ast.Stmt
			for _, d := range ds.Decls {
				span, want := noteDecls[d]
				if !want {
					continue
				}
				notes = append(notes, &ast.ExprStmt{X: &ast.Call{
					Fun:  ident("__expand_note"),
					Args: []ast.Expr{ident(d.Sym.Name), intLit(span), intLit(0)},
				}})
				remaining--
			}
			if len(notes) > 0 {
				blk.Stmts = append(blk.Stmts[:i+1], append(notes, blk.Stmts[i+1:]...)...)
				i += len(notes)
			}
		}
		return true
	})
	if remaining > 0 {
		return fmt.Errorf("expand: could not place %d guard note(s) (expanded local not declared in a block)", remaining)
	}
	return nil
}

func sortStmts(ss []ast.Stmt) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ast.PrintStmt(ss[j-1]) > ast.PrintStmt(ss[j]); j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
}

// convertGlobal rewrites `T g` into `R *g` plus an allocation of
// N copies at the start of main (Table 1's global rules; globals
// cannot be statically sized by a runtime thread count, which is the
// paper's motivation for heap conversion).
func (p *pass) convertGlobal(sym *ast.Symbol, d *ast.VarDecl) ([]ast.Stmt, error) {
	orig := sym.Type
	unitSize := orig.Size() // size of one copy, after field promotion
	elem := orig
	if orig.Kind == ctypes.Array {
		elem = orig.Elem
		p.globalConv[sym] = orig.Len // copies are Len rows apart
	} else {
		p.globalConv[sym] = -1 // scalar/record: copies indexed directly
	}
	newType := ctypes.PointerTo(elem)
	d.Type = newType
	sym.Type = newType
	init := d.Init
	d.Init = nil

	allocCall := &ast.Call{
		Fun:  ident("malloc"),
		Args: []ast.Expr{mul(intLit(unitSize), nthExpr())},
	}
	if p.opts.GuardNotes {
		allocCall = &ast.Call{
			Fun:  ident("__expand_malloc"),
			Args: []ast.Expr{intLit(unitSize), intLit(0)},
		}
	}
	alloc := assign(ident(sym.Name), &ast.Cast{To: newType, X: allocCall})
	out := []ast.Stmt{alloc}
	if init != nil {
		out = append(out, assign(index(ident(sym.Name), intLit(0)), init))
	}
	return out, nil
}

// redirectAccesses applies the paper's Table 2: every reference to an
// expanded variable is directed to a copy (its thread's copy for
// private accesses, copy 0 otherwise), and every redirected
// pointer-based access adds tid*span/sizeof(elem) to its pointer.
func (p *pass) redirectAccesses() error {
	layout := p.opts.Layout
	if layout == Adaptive {
		// The paper's §6 adaptive scheme: interleave when possible,
		// bond otherwise.
		if err := p.checkInterleaved(false); err == nil {
			layout = Interleaved
		} else {
			layout = Bonded
		}
	}
	p.report.LayoutUsed = layout
	if layout == Interleaved {
		return p.redirectInterleaved()
	}
	if err := p.redirectVarRefs(); err != nil {
		return err
	}
	for _, plan := range p.ptrPlans {
		if err := p.applyPtrPlan(plan); err != nil {
			return err
		}
	}
	return nil
}

// redirectVarRefs registers the copy-index rewriting of every original
// reference to an expanded variable.
func (p *pass) redirectVarRefs() error {
	var err error
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		if err != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Sym == nil || !p.expandedVar(id.Sym) {
			return true
		}
		idx := p.idxExprFor(p.siteIdx[id])
		sym := id.Sym
		if rows, isGlobal := p.globalConv[sym]; isGlobal {
			if rows < 0 {
				// Converted scalar/record global: g -> g[idx].
				err = p.setBase(id, func(e ast.Expr) ast.Expr {
					return index(e, cloneGenerated(idx))
				})
				return true
			}
			// Converted array global: g -> g + idx*rows, hoisted to the
			// loop body / function entry for private accesses when the
			// optimization is on (globals are never reassigned: array
			// variables are not assignable).
			if _, isTid := idx.(*ast.Ident); isTid && p.opts.HoistBases {
				if as := p.in.Info.Accesses[p.siteIdx[id]]; as != nil {
					if fn, body, ok := p.hoistSite(as, nil); ok {
						hi := p.hoistFor(
							hoistKey{fn: fn, body: body, sym: sym},
							sym.Type, // already R* after conversion
							func() ast.Expr {
								return add(ident(sym.Name), mul(tidExpr(), intLit(rows)))
							})
						err = p.setBase(id, func(e ast.Expr) ast.Expr {
							return ident(hi.name)
						})
						return true
					}
				}
			}
			err = p.setBase(id, func(e ast.Expr) ast.Expr {
				return add(e, mul(cloneGenerated(idx), intLit(rows)))
			})
			return true
		}
		// Expanded local: a -> a[idx].
		err = p.setBase(id, func(e ast.Expr) ast.Expr {
			return index(e, cloneGenerated(idx))
		})
		return true
	})
	return err
}

// applyPtrPlan wraps the pointer operand of one redirected private
// access: P becomes P + __tid * (span / sizeof(elem)). With HoistBases,
// bare-root operands instead read a base temporary computed once per
// loop body or function entry.
func (p *pass) applyPtrPlan(plan *ptrPlan) error {
	elems, err := p.planElems(plan)
	if err != nil {
		return err
	}
	child := func() ast.Expr {
		switch node := plan.node.(type) {
		case *ast.Unary:
			return node.X
		case *ast.Index:
			return node.X
		case *ast.Member:
			return node.X
		}
		return nil
	}()
	if child == nil {
		return fmt.Errorf("expand: unexpected redirected node %T", plan.node)
	}
	setChild := func(e ast.Expr) {
		switch node := plan.node.(type) {
		case *ast.Unary:
			node.X = e
		case *ast.Index:
			node.X = e
		case *ast.Member:
			node.X = e
		}
	}

	if p.opts.HoistBases {
		if root := hoistRootSym(child); root != nil && !p.expandedVar(root) {
			if as := p.in.Info.Accesses[plan.site]; as != nil {
				if fn, body, ok := p.hoistSite(as, root); ok {
					c := child
					hi := p.hoistFor(
						hoistKey{fn: fn, body: body, sym: root, elem: plan.elem},
						ctypes.PointerTo(plan.elemType),
						func() ast.Expr {
							return add(p.cloneWithEntries(c), mul(tidExpr(), elems))
						})
					setChild(ident(hi.name))
					return nil
				}
			}
		}
	}
	setChild(add(child, mul(tidExpr(), elems)))
	return nil
}

// planElems builds the element-count expression span/sizeof(elem) for
// one plan.
func (p *pass) planElems(plan *ptrPlan) (ast.Expr, error) {
	as := p.in.Info.Accesses[plan.site]
	if plan.hasConst {
		// Resolved by resolveConstPlans before allocation sizes were
		// multiplied by the thread count.
		return intLit(plan.constVal / plan.elem), nil
	}
	spanRef := p.spanRefOfLHS(plan.rootExpr, plan.root)
	if spanRef == nil {
		return nil, fmt.Errorf("expand: %s: cannot build span reference for %q", as.Pos, as.Text)
	}
	return quo(spanRef, intLit(plan.elem)), nil
}

// ---------------------------------------------------------------------
// Interleaved layout (paper Fig. 2b) — ablation support
// ---------------------------------------------------------------------

// redirectInterleaved implements the interleaved copy layout for the
// restricted case the ablation study needs: heap buffers of primitive
// elements whose every access is an Index inside the target loop.
// Element i of copy t lives at base + (i*N + t)*sizeof(elem). The
// paper prefers bonded mode precisely because this layout cannot
// survive recast buffers or interior pointers; those cases are
// rejected here, demonstrating the limitation.
func (p *pass) redirectInterleaved() error {
	return p.checkInterleaved(true)
}

// checkInterleaved validates that the expansion set supports the
// interleaved layout and, when apply is set, performs the rewriting.
func (p *pass) checkInterleaved(apply bool) error {
	// Validate the expansion set: heap objects only.
	elemOf := map[alias.Object]int64{}
	for o := range p.expandSet {
		if o.Kind != alias.ObjHeap {
			return fmt.Errorf("expand: interleaved layout supports heap structures only (got %s)", o)
		}
		call := p.in.Info.Allocs[o.Site]
		if call.Fun.Sym == nil {
			// Already rewritten to __expand_malloc by expandTypes under
			// GuardNotes; expandTypes rejects every allocator but
			// malloc/calloc before rewriting.
		} else {
			switch call.Fun.Sym.Builtin {
			case ast.BMalloc, ast.BCalloc:
			default:
				return fmt.Errorf("expand: interleaved layout: unsupported allocator at site %d", o.Site)
			}
		}
		elemOf[o] = 0
	}
	// Find every access touching an interleaved object.
	for id, as := range p.in.Info.Accesses {
		if as.IsDef {
			continue
		}
		node, ok := as.Node.(ast.Expr)
		if !ok {
			continue
		}
		base, err := p.baseOf(node)
		if err != nil || base.ptr == nil {
			continue
		}
		touches := false
		for _, o := range p.in.Alias.PointsTo(base.ptr) {
			if _, yes := elemOf[o]; yes {
				touches = true
				elem, _, err := pointeeSize(base.ptr)
				if err != nil {
					return err
				}
				if elemOf[o] != 0 && elemOf[o] != elem {
					return fmt.Errorf("expand: %s: interleaved layout cannot expand %s: "+
						"buffer is recast between element sizes %d and %d (the bzip2 zptr case; use bonded mode)",
						as.Pos, o, elemOf[o], elem)
				}
				elemOf[o] = elem
			}
		}
		if !touches {
			continue
		}
		if !p.siteInAnyLoop(id) {
			return fmt.Errorf("expand: %s: interleaved layout requires all accesses inside the loop (%q is outside)",
				as.Pos, as.Text)
		}
		idxNode, ok := node.(*ast.Index)
		if !ok {
			return fmt.Errorf("expand: %s: interleaved layout supports subscript accesses only (%q)",
				as.Pos, as.Text)
		}
		if !apply {
			continue
		}
		var idx ast.Expr = intLit(0)
		if p.sitePrivate(id) && !p.skipSites[id] {
			idx = tidExpr()
		}
		// a[i] -> a[i*N + idx]; registering on the index expression via
		// direct mutation (each Index node is visited at most once per
		// access pair because load and store share the node).
		if !p.interleavedDone[idxNode] {
			if p.interleavedDone == nil {
				p.interleavedDone = map[*ast.Index]bool{}
			}
			idxNode.I = add(mul(idxNode.I, nthExpr()), idx)
			p.interleavedDone[idxNode] = true
		}
	}
	if !apply {
		return nil
	}
	// Multiply the allocation sizes (with guard notes, the
	// __expand_malloc builtin performs the multiplication itself and
	// carries the element size so the monitor can invert the
	// interleaved address mapping).
	for o := range p.expandSet {
		call := p.in.Info.Allocs[o.Site]
		if p.opts.GuardNotes {
			// expandTypes already rewrote the call to
			// __expand_malloc(span, 0); record the element size.
			call.Args[1] = intLit(elemOf[o])
			continue
		}
		call.Args[0] = mul(call.Args[0], nthExpr())
	}
	return nil
}

// placeSync inserts one DOACROSS loop's ordered section: the smallest
// contiguous range of top-level body statements covering every shared
// access involved in a residual loop-carried dependence is bracketed
// with __sync_wait / __sync_post (§4.3).
func (p *pass) placeSync(lc loopCtx) (bool, error) {
	g, cls := lc.an.Graph, lc.an.Class
	residual := map[int]bool{}
	for site := range g.Sites {
		as := p.in.Info.Accesses[site]
		if as == nil || as.IsDef || p.isControlSite(as) {
			continue
		}
		// Private sites never need ordering: redirected ones touch
		// per-thread copies, and skipped ones touch iteration-fresh
		// storage.
		if cls.Private(site) {
			continue
		}
		if g.HasCarried(site, ddg.Flow) ||
			g.HasCarried(site, ddg.Anti) ||
			g.HasCarried(site, ddg.Output) {
			residual[site] = true
		}
	}
	if len(residual) == 0 {
		return false, nil
	}

	body, ok := lc.stmt.Body.(*ast.Block)
	if !ok {
		body = &ast.Block{Stmts: []ast.Stmt{lc.stmt.Body}}
		lc.stmt.Body = body
	}
	if p.opts.ConservativeSync {
		body.Stmts = append([]ast.Stmt{&ast.SyncWait{}}, append(body.Stmts, &ast.SyncPost{})...)
		return true, nil
	}
	lo, hi := -1, -1
	covered := map[int]bool{}
	for i, s := range body.Stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				for _, site := range accessIDsOf(e) {
					if residual[site] {
						found = true
						covered[site] = true
					}
				}
			}
			return true
		})
		if found {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	for site := range residual {
		if !covered[site] {
			// A residual access outside the lexical body (inside a
			// callee): order the entire body conservatively.
			lo, hi = 0, len(body.Stmts)-1
			break
		}
	}
	if lo < 0 {
		lo, hi = 0, len(body.Stmts)-1
	}
	var out []ast.Stmt
	out = append(out, body.Stmts[:lo]...)
	out = append(out, &ast.SyncWait{})
	out = append(out, body.Stmts[lo:hi+1]...)
	out = append(out, &ast.SyncPost{})
	out = append(out, body.Stmts[hi+1:]...)
	body.Stmts = out
	return true, nil
}

// accessIDsOf lists the access-site IDs attached to one expression node.
func accessIDsOf(e ast.Expr) []int {
	var acc ast.Access
	switch x := e.(type) {
	case *ast.Ident:
		acc = x.Acc
	case *ast.Index:
		acc = x.Acc
	case *ast.Member:
		acc = x.Acc
	case *ast.Unary:
		acc = x.Acc
	default:
		return nil
	}
	var out []int
	if acc.Load > 0 {
		out = append(out, acc.Load)
	}
	if acc.Store > 0 {
		out = append(out, acc.Store)
	}
	return out
}

var _ = token.ASSIGN // retain import for generated helpers
