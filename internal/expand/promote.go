package expand

import (
	"fmt"

	"gdsx/internal/alias"
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// ptrPlan captures, before any mutation, everything the redirection
// pass needs about one pointer-based private access: the element size
// of the dereferenced pointer and how to obtain its span (a constant,
// or the span field of a promoted root slot).
type ptrPlan struct {
	site     int
	node     ast.Expr     // the access node (Index, Member-arrow or Unary-deref)
	basePtr  ast.Expr     // the original pointer operand
	elem     int64        // byte size of the pointee element
	elemType *ctypes.Type // pointee type (for hoisted temporaries)
	hasConst bool         // span is a compile-time constant
	constVal int64        // the constant span, resolved by resolveConstPlans
	root     slot         // valid if !hasConst
	rootExpr ast.Expr
}

// resolveConstPlans computes the constant span values: after promotion
// (struct sizes final) and before Table 1 expansion (allocation sizes
// still original).
func (p *pass) resolveConstPlans() error {
	for _, plan := range p.ptrPlans {
		if !plan.hasConst {
			continue
		}
		as := p.in.Info.Accesses[plan.site]
		S, ok := commonSize(p.in, p.in.Alias.PointsTo(plan.basePtr))
		if !ok {
			return fmt.Errorf("expand: %s: span of %q is no longer a common constant after promotion",
				as.Pos, as.Text)
		}
		if S%plan.elem != 0 {
			return fmt.Errorf("expand: %s: span %d not divisible by element size %d",
				as.Pos, S, plan.elem)
		}
		plan.constVal = S
	}
	return nil
}

// computePromotion decides which pointer slots become fat pointers:
// the roots of redirected private accesses whose span is not a
// compile-time constant (§3.4 ConstSpan), closed backwards over every
// assignment that flows pointers into a promoted slot (so that
// Table 3's p.span = q.span always has a q.span to read).
func (p *pass) computePromotion() error {
	p.promote = map[slot]bool{}
	p.constSpan = map[slot]int64{}

	var work []slot
	mark := func(s slot) {
		if !p.promote[s] {
			p.promote[s] = true
			work = append(work, s)
		}
	}

	// Seeds: pointer-based private accesses that will be redirected.
	for _, site := range p.privateSites() {
		if p.skipSites[site] {
			continue
		}
		as := p.in.Info.Accesses[site]
		node, ok := as.Node.(ast.Expr)
		if !ok {
			continue
		}
		base, err := p.baseOf(node)
		if err != nil {
			return fmt.Errorf("%s: %v", as.Pos, err)
		}
		if base.varSym != nil {
			continue // variable-based: redirected without spans
		}
		elem, elemType, err := pointeeSize(base.ptr)
		if err != nil {
			return fmt.Errorf("%s: access %q: %v", as.Pos, as.Text, err)
		}
		plan := &ptrPlan{site: site, node: node, basePtr: base.ptr, elem: elem, elemType: elemType}
		if _, ok := p.constSpanOfExpr(base.ptr); ok && p.opts.ConstSpan {
			plan.hasConst = true
		} else {
			root, rootExpr, err := p.rootSlot(base.ptr)
			if err != nil {
				return fmt.Errorf("%s: access %q: %v", as.Pos, as.Text, err)
			}
			plan.root, plan.rootExpr = root, rootExpr
			mark(root)
		}
		p.ptrPlans = append(p.ptrPlans, plan)
	}

	// Unoptimized mode (paper Fig. 9a) promotes every pointer that may
	// reach an expanded structure, not only the ones redirection needs.
	if !p.opts.ConstSpan {
		if err := p.addUnoptimizedPromotions(); err != nil {
			return err
		}
		work = work[:0]
		for s := range p.promote {
			work = append(work, s)
		}
	}

	// Backward closure over pointer assignments.
	flows := p.collectFlows()
	seen := map[slot]bool{}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, rhs := range flows[s] {
			roots, err := p.spanSourceRoots(rhs)
			if err != nil {
				return err
			}
			for _, r := range roots {
				if p.opts.ConstSpan {
					if _, ok := p.slotConstSpan(r); ok {
						continue
					}
				}
				mark(r)
			}
		}
	}
	return nil
}

// pointeeSize returns the byte size and type of the element a pointer
// expression points at (1/char for void*).
func pointeeSize(ptr ast.Expr) (int64, *ctypes.Type, error) {
	t := ptr.ExprType()
	if t == nil {
		return 0, nil, fmt.Errorf("untyped pointer expression")
	}
	if t.Kind == ctypes.Array {
		t = ctypes.PointerTo(t.Elem)
	}
	if t.Kind != ctypes.Ptr {
		return 0, nil, fmt.Errorf("redirected base has non-pointer type %s", t)
	}
	if t.Elem.Kind == ctypes.Void {
		return 1, ctypes.CharType, nil
	}
	if !t.Elem.HasStaticSize() {
		return 0, nil, fmt.Errorf("pointee of dynamic size")
	}
	return t.Elem.Size(), t.Elem, nil
}

// constSpanOfExpr returns the size of the object(s) a pointer
// expression may reach if all targets have the same statically known
// size.
func (p *pass) constSpanOfExpr(ptr ast.Expr) (int64, bool) {
	return commonSize(p.in, p.in.Alias.PointsTo(ptr))
}

// slotConstSpan reports the statically known common span of everything
// a slot may point to.
func (p *pass) slotConstSpan(s slot) (int64, bool) {
	if v, ok := p.constSpan[s]; ok {
		return v, v >= 0
	}
	size, ok := commonSize(p.in, p.slotTargets(s))
	if !ok {
		p.constSpan[s] = -1
		return 0, false
	}
	p.constSpan[s] = size
	return size, true
}

func (p *pass) slotTargets(s slot) []alias.Object {
	switch {
	case s.sym != nil:
		return p.in.Alias.PointsToSym(s.sym)
	case s.fn != nil:
		return p.in.Alias.PointsToRet(s.fn)
	default:
		// Union over every reference to the field in the program.
		var out []alias.Object
		seen := map[alias.Object]bool{}
		for _, ref := range p.fieldRefs()[s.field] {
			for _, o := range p.in.Alias.PointsTo(ref) {
				if !seen[o] {
					seen[o] = true
					out = append(out, o)
				}
			}
		}
		return out
	}
}

// fieldRefs caches every Member expression per struct field.
func (p *pass) fieldRefs() map[*ctypes.Field][]ast.Expr {
	if p.fieldRefCache == nil {
		p.fieldRefCache = map[*ctypes.Field][]ast.Expr{}
		ast.Inspect(p.in.Prog, func(n ast.Node) bool {
			if m, ok := n.(*ast.Member); ok && m.Field != nil {
				p.fieldRefCache[m.Field] = append(p.fieldRefCache[m.Field], m)
			}
			return true
		})
	}
	return p.fieldRefCache
}

// commonSize returns the unique static size of the objects, if any.
func commonSize(in Input, objs []alias.Object) (int64, bool) {
	if len(objs) == 0 {
		return 0, false
	}
	var size int64 = -1
	for _, o := range objs {
		s, ok := objectSize(in, o)
		if !ok {
			return 0, false
		}
		if size >= 0 && s != size {
			return 0, false
		}
		size = s
	}
	return size, true
}

// objectSize returns the static byte size of an abstract object.
func objectSize(in Input, o alias.Object) (int64, bool) {
	switch o.Kind {
	case alias.ObjVar:
		if o.Sym.Type.HasStaticSize() {
			return o.Sym.Type.Size(), true
		}
	case alias.ObjHeap:
		call := in.Info.Allocs[o.Site]
		if call == nil {
			return 0, false
		}
		switch call.Fun.Sym.Builtin {
		case ast.BMalloc:
			return ast.FoldConst(call.Args[0])
		case ast.BCalloc:
			a, ok1 := ast.FoldConst(call.Args[0])
			b, ok2 := ast.FoldConst(call.Args[1])
			return a * b, ok1 && ok2
		case ast.BRealloc:
			return ast.FoldConst(call.Args[1])
		}
	}
	return 0, false
}

// rootSlot finds the pointer slot at the root of a pointer expression,
// looking through casts and pointer arithmetic.
func (p *pass) rootSlot(e ast.Expr) (slot, ast.Expr, error) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Sym == nil {
			return slot{}, nil, fmt.Errorf("unresolved identifier")
		}
		switch x.Sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
			if x.Sym.Type.Kind == ctypes.Array {
				return slot{}, nil, fmt.Errorf("array %s cannot be a promoted pointer slot", x.Name)
			}
			return slot{sym: x.Sym}, x, nil
		}
		return slot{}, nil, fmt.Errorf("%s is not a pointer variable", x.Name)
	case *ast.Member:
		if x.Field == nil {
			return slot{}, nil, fmt.Errorf("unresolved field")
		}
		var owner *ctypes.Type
		if x.Arrow {
			bt := x.X.ExprType()
			if bt == nil || bt.Kind != ctypes.Ptr {
				return slot{}, nil, fmt.Errorf("bad arrow base")
			}
			owner = bt.Elem
		} else {
			owner = x.X.ExprType()
		}
		return slot{owner: owner, field: x.Field}, x, nil
	case *ast.Cast:
		return p.rootSlot(x.X)
	case *ast.Binary:
		if x.Op == token.ADD || x.Op == token.SUB {
			if t := x.X.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
				return p.rootSlot(x.X)
			}
			if t := x.Y.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
				return p.rootSlot(x.Y)
			}
		}
		return slot{}, nil, fmt.Errorf("cannot root pointer expression %q", ast.PrintExpr(x))
	case *ast.Call:
		if x.Fun.Sym != nil && x.Fun.Sym.Kind == ast.SymFunc {
			return slot{fn: x.Fun.Sym.Fn}, x, nil
		}
		return slot{}, nil, fmt.Errorf("cannot promote result of %s", x.Fun.Name)
	}
	return slot{}, nil, fmt.Errorf("cannot root pointer expression %q", ast.PrintExpr(e))
}

// spanSourceRoots returns the pointer slots whose spans a right-hand
// side depends on (empty for terminal sources: allocations, address-of,
// null, strings, constant-size expressions).
func (p *pass) spanSourceRoots(rhs ast.Expr) ([]slot, error) {
	switch x := stripCasts(rhs).(type) {
	case *ast.IntLit:
		return nil, nil
	case *ast.StringLit:
		return nil, nil
	case *ast.Unary:
		if x.Op == token.AND {
			return nil, nil
		}
	case *ast.Call:
		switch x.Fun.Sym.Builtin {
		case ast.BMalloc, ast.BCalloc, ast.BRealloc:
			return nil, nil
		}
		if x.Fun.Sym.Kind == ast.SymFunc {
			return []slot{{fn: x.Fun.Sym.Fn}}, nil
		}
	case *ast.Cond:
		a, err := p.spanSourceRoots(x.Then)
		if err != nil {
			return nil, err
		}
		b, err := p.spanSourceRoots(x.Else)
		if err != nil {
			return nil, err
		}
		return append(a, b...), nil
	}
	if S, ok := p.constSpanOfExpr(rhs); ok && p.opts.ConstSpan {
		_ = S
		return nil, nil
	}
	root, _, err := p.rootSlot(stripCasts(rhs))
	if err != nil {
		return nil, fmt.Errorf("%s: cannot derive a span for %q: %v", rhs.Pos(), ast.PrintExpr(rhs), err)
	}
	return []slot{root}, nil
}

func stripCasts(e ast.Expr) ast.Expr {
	for {
		c, ok := e.(*ast.Cast)
		if !ok {
			return e
		}
		e = c.X
	}
}

// collectFlows gathers, for every pointer slot, the right-hand sides
// that flow into it: assignments, initializers, call arguments and
// returned expressions.
func (p *pass) collectFlows() map[slot][]ast.Expr {
	flows := map[slot][]ast.Expr{}
	addTo := func(lhs ast.Expr, rhs ast.Expr) {
		if rhs == nil {
			return
		}
		t := lhs.ExprType()
		if t == nil || t.Kind != ctypes.Ptr {
			return
		}
		if s, _, err := p.rootSlot(lhs); err == nil {
			flows[s] = append(flows[s], rhs)
		}
	}
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Assign:
			if x.Op == token.ASSIGN {
				addTo(x.LHS, x.RHS)
			}
		case *ast.VarDecl:
			if x.Init != nil && x.Sym != nil && x.Sym.Type.Kind == ctypes.Ptr {
				flows[slot{sym: x.Sym}] = append(flows[slot{sym: x.Sym}], x.Init)
			}
		case *ast.Call:
			if x.Fun.Sym != nil && x.Fun.Sym.Kind == ast.SymFunc {
				callee := x.Fun.Sym.Fn
				for i, arg := range x.Args {
					if i < len(callee.Params) && callee.Params[i].Type.Kind == ctypes.Ptr {
						s := slot{sym: callee.Params[i].Sym}
						flows[s] = append(flows[s], arg)
					}
				}
			}
		}
		return true
	})
	for _, fn := range p.in.Prog.Funcs() {
		if fn.Ret.Kind != ctypes.Ptr {
			continue
		}
		f := fn
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if r, ok := n.(*ast.Return); ok && r.X != nil {
				flows[slot{fn: f}] = append(flows[slot{fn: f}], r.X)
			}
			return true
		})
	}
	return flows
}

// In unoptimized mode (paper Fig. 9a) promotion additionally covers
// every pointer slot that may reach any expanded structure.
func (p *pass) addUnoptimizedPromotions() error {
	if p.opts.ConstSpan {
		return nil
	}
	targetsExpanded := func(objs []alias.Object) bool {
		for _, o := range objs {
			if p.expandSet[o] {
				return true
			}
		}
		return false
	}
	// Pointer variables.
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		d, ok := n.(*ast.VarDecl)
		if !ok || d.Sym == nil || d.Sym.Type.Kind != ctypes.Ptr {
			return true
		}
		if d.Sym.Kind == ast.SymParam {
			return true // promoted only via the backward closure
		}
		if targetsExpanded(p.in.Alias.PointsToSym(d.Sym)) {
			p.promote[slot{sym: d.Sym}] = true
		}
		return true
	})
	// Struct fields.
	for f, refs := range p.fieldRefs() {
		if f.Type.Kind != ctypes.Ptr {
			continue
		}
		for _, ref := range refs {
			if targetsExpanded(p.in.Alias.PointsTo(ref)) {
				m := ref.(*ast.Member)
				var owner *ctypes.Type
				if m.Arrow {
					owner = m.X.ExprType().Elem
				} else {
					owner = m.X.ExprType()
				}
				p.promote[slot{owner: owner, field: f}] = true
				break
			}
		}
	}
	return nil
}
