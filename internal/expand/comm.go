package expand

import (
	"fmt"
	"sort"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/ddg"
	"gdsx/internal/token"
)

// Commutative-update privatization. A class the classifier marked
// Commutative (every site the same reduction operator, every carried
// dependence internal to the class) cannot be expanded — its carried
// flow is real — but it does not need to be: each thread can apply its
// updates to a private identity-initialized copy and the copies merge
// under the operator at region exit. That machinery lives in the
// runtime (rtpriv); the pass's job is to leave the accumulator
// unexpanded and to arm the runtime by planting a
//
//	__comm_note(base, span, esz, op);
//
// marker directly before the parallel loop, so every region entry
// re-announces the accumulator's geometry and operator.
//
// Only statically sized named accumulators participate: an integer
// scalar (the note takes its address, which also pins it to simulated
// memory so the redirection hook sees the accesses) or a fixed-size
// integer array (histograms). Pointer-based accumulators would need
// the allocation geometry at note time and are left to the guard.

// commPlan is one marker to plant.
type commPlan struct {
	lc   *loopCtx
	sym  *ast.Symbol
	op   ddg.CommOp
	span int64 // total accumulator bytes
	esz  int64 // element bytes (merge granularity)
}

// planCommNotes selects the commutative classes the runtime can
// privatize. Runs after computeExpansionSet: an object the expansion
// already privatizes (reachable from thread-private accesses of
// another loop) keeps the expansion — redirecting those accesses
// requires the copies to exist — and forfeits the marker.
func (p *pass) planCommNotes() {
	if !p.opts.Commutative {
		return
	}
	seen := map[*ast.Symbol]bool{} // per loop below
	for i := range p.loops {
		lc := &p.loops[i]
		for k := range seen {
			delete(seen, k)
		}
		for _, c := range lc.an.Class.Classes {
			if !c.Commutative {
				continue
			}
			sym := p.commTarget(c)
			if sym == nil || seen[sym] || p.expandSet[objVar(sym)] {
				continue
			}
			span, esz, ok := commGeometry(sym.Type)
			if !ok {
				continue
			}
			seen[sym] = true
			p.commPlans = append(p.commPlans, commPlan{lc: lc, sym: sym, op: c.CommOp, span: span, esz: esz})
			p.report.CommClasses++
			p.report.CommNotes = append(p.report.CommNotes,
				fmt.Sprintf("loop %d: %s %s span=%d esz=%d", lc.an.ID, sym.Name, c.CommOp, span, esz))
		}
	}
	sort.Strings(p.report.CommNotes)
}

// commTarget resolves the single named variable every site of the
// class designates, or nil.
func (p *pass) commTarget(c *ddg.Class) *ast.Symbol {
	var sym *ast.Symbol
	for _, site := range c.Sites {
		as := p.in.Info.Accesses[site]
		if as == nil {
			return nil
		}
		var s *ast.Symbol
		switch n := as.Node.(type) {
		case *ast.Ident:
			s = n.Sym
		case *ast.Index:
			if id, ok := n.X.(*ast.Ident); ok && id.Sym != nil && id.Sym.Type != nil &&
				id.Sym.Type.Kind == ctypes.Array {
				s = id.Sym
			}
		}
		if s == nil || (sym != nil && s != sym) {
			return nil
		}
		sym = s
	}
	if sym == nil || p.bodyDecls[sym] {
		return nil
	}
	switch sym.Kind {
	case ast.SymGlobal, ast.SymLocal:
		return sym
	}
	return nil
}

// commGeometry returns the accumulator's (span, esz) or ok=false when
// the type is not a statically sized integer scalar or array.
func commGeometry(t *ctypes.Type) (span, esz int64, ok bool) {
	if t == nil || !t.HasStaticSize() {
		return 0, 0, false
	}
	elem := t
	if t.Kind == ctypes.Array {
		elem = t.Elem
	}
	if !elem.IsInteger() {
		return 0, 0, false
	}
	return t.Size(), elem.Size(), true
}

// insertCommNotes plants the planned markers directly before their
// loops.
func (p *pass) insertCommNotes() error {
	byLoop := map[*ast.For][]ast.Stmt{}
	for _, pl := range p.commPlans {
		base := ast.Expr(ident(pl.sym.Name))
		if pl.sym.Type.Kind != ctypes.Array {
			base = &ast.Unary{Op: token.AND, X: base}
		}
		byLoop[pl.lc.stmt] = append(byLoop[pl.lc.stmt], &ast.ExprStmt{X: &ast.Call{
			Fun:  ident("__comm_note"),
			Args: []ast.Expr{base, intLit(pl.span), intLit(pl.esz), intLit(int64(pl.op))},
		}})
	}
	remaining := len(byLoop)
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		blk, ok := n.(*ast.Block)
		if !ok || remaining == 0 {
			return remaining > 0
		}
		for i := 0; i < len(blk.Stmts); i++ {
			loop, ok := blk.Stmts[i].(*ast.For)
			if !ok {
				continue
			}
			notes := byLoop[loop]
			if len(notes) == 0 {
				continue
			}
			delete(byLoop, loop)
			remaining--
			blk.Stmts = append(blk.Stmts[:i], append(notes, blk.Stmts[i:]...)...)
			i += len(notes)
		}
		return true
	})
	if remaining > 0 {
		return fmt.Errorf("expand: could not place %d commutative note(s) (loop not directly inside a block)", remaining)
	}
	return nil
}
