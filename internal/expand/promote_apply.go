package expand

import (
	"fmt"
	"strings"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// replEntry describes the rewriting of one original expression node:
// an optional base transformation (copy indexing for expanded
// variables, pointer arithmetic for converted globals) and an optional
// ".pointer" selection for promoted slots. The base transformation is
// applied first, then the field selection, so a variable that is both
// expanded and promoted becomes p[idx].pointer.
type replEntry struct {
	mkBase     func(ast.Expr) ast.Expr
	addPointer bool
}

func (p *pass) entryFor(e ast.Expr) *replEntry {
	if p.entries == nil {
		p.entries = map[ast.Expr]*replEntry{}
	}
	en := p.entries[e]
	if en == nil {
		en = &replEntry{}
		p.entries[e] = en
	}
	return en
}

// setBase registers the base transformation of a node.
func (p *pass) setBase(e ast.Expr, f func(ast.Expr) ast.Expr) error {
	en := p.entryFor(e)
	if en.mkBase != nil {
		return fmt.Errorf("expand: conflicting rewrites for %q", ast.PrintExpr(e))
	}
	en.mkBase = f
	return nil
}

// setPointer registers the ".pointer" selection of a promoted slot
// reference.
func (p *pass) setPointer(e ast.Expr) { p.entryFor(e).addPointer = true }

// applyReplacements performs one bottom-up sweep per function (and
// global initializers), materializing all registered rewrites. Cloned
// expressions inside generated statements first inherit the entries of
// the originals they mirror.
func (p *pass) applyReplacements() {
	for _, pair := range p.clonePairs {
		p.mirrorEntries(pair[0], pair[1])
	}
	apply := func(e ast.Expr) ast.Expr {
		en, ok := p.entries[e]
		if !ok {
			return e
		}
		out := e
		if en.mkBase != nil {
			out = en.mkBase(out)
		}
		if en.addPointer {
			out = member(out, "pointer")
		}
		return out
	}
	ast.RewriteExprs(p.in.Prog, apply)
}

// mirrorEntries copies the rewrite entries of an original expression
// tree onto its structural clone (produced by ast.CloneExpr, so shapes
// match exactly).
func (p *pass) mirrorEntries(orig, clone ast.Expr) {
	if orig == nil || clone == nil {
		return
	}
	if en, ok := p.entries[orig]; ok {
		p.entries[clone] = en
	}
	switch o := orig.(type) {
	case *ast.Unary:
		p.mirrorEntries(o.X, clone.(*ast.Unary).X)
	case *ast.Binary:
		c := clone.(*ast.Binary)
		p.mirrorEntries(o.X, c.X)
		p.mirrorEntries(o.Y, c.Y)
	case *ast.Logical:
		c := clone.(*ast.Logical)
		p.mirrorEntries(o.X, c.X)
		p.mirrorEntries(o.Y, c.Y)
	case *ast.Cond:
		c := clone.(*ast.Cond)
		p.mirrorEntries(o.C, c.C)
		p.mirrorEntries(o.Then, c.Then)
		p.mirrorEntries(o.Else, c.Else)
	case *ast.Assign:
		c := clone.(*ast.Assign)
		p.mirrorEntries(o.LHS, c.LHS)
		p.mirrorEntries(o.RHS, c.RHS)
	case *ast.IncDec:
		p.mirrorEntries(o.X, clone.(*ast.IncDec).X)
	case *ast.Index:
		c := clone.(*ast.Index)
		p.mirrorEntries(o.X, c.X)
		p.mirrorEntries(o.I, c.I)
	case *ast.Member:
		p.mirrorEntries(o.X, clone.(*ast.Member).X)
	case *ast.Call:
		c := clone.(*ast.Call)
		for i := range o.Args {
			p.mirrorEntries(o.Args[i], c.Args[i])
		}
	case *ast.Cast:
		p.mirrorEntries(o.X, clone.(*ast.Cast).X)
	case *ast.SizeofExpr:
		p.mirrorEntries(o.X, clone.(*ast.SizeofExpr).X)
	}
}

// ---------------------------------------------------------------------
// Fat pointer types (paper Figures 5 and 6)
// ---------------------------------------------------------------------

// fatType returns (creating on first use) the promoted type of a
// pointer to pointee: struct { pointee *pointer; long span; }.
func (p *pass) fatType(pointee *ctypes.Type) *ctypes.Type {
	if p.fatTypes == nil {
		p.fatTypes = map[string]*ctypes.Type{}
	}
	key := sanitizeTypeName(pointee.String())
	if t, ok := p.fatTypes[key]; ok {
		return t
	}
	name := "__fat_" + key
	t := ctypes.NewStruct(name, []*ctypes.Field{
		{Name: "pointer", Type: ctypes.PointerTo(pointee)},
		{Name: "span", Type: ctypes.LongType},
	})
	p.fatTypes[key] = t
	def := &ast.StructDef{Type: t}
	p.insertStructDef(def, pointee)
	return t
}

func sanitizeTypeName(s string) string {
	s = strings.ReplaceAll(s, "struct ", "")
	s = strings.ReplaceAll(s, "*", "_p")
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "[", "_a")
	s = strings.ReplaceAll(s, "]", "")
	return s
}

// insertStructDef places a generated struct definition after the
// definition of the pointee's struct (if any), otherwise at the front
// of the program.
func (p *pass) insertStructDef(def *ast.StructDef, pointee *ctypes.Type) {
	base := pointee
	for base.Kind == ctypes.Ptr || base.Kind == ctypes.Array {
		base = base.Elem
	}
	at := 0
	if base.Kind == ctypes.Struct {
		for i, d := range p.in.Prog.Decls {
			if sd, ok := d.(*ast.StructDef); ok && sd.Type == base {
				at = i + 1
				break
			}
		}
	}
	decls := p.in.Prog.Decls
	decls = append(decls, nil)
	copy(decls[at+1:], decls[at:])
	decls[at] = def
	p.in.Prog.Decls = decls
}

// ---------------------------------------------------------------------
// promotePointers: the apply phase
// ---------------------------------------------------------------------

func (p *pass) promotePointers() error {
	p.normalizeDecls()
	p.buildSiteIdx()
	if err := p.mutatePromotedDecls(); err != nil {
		return err
	}
	for _, fn := range p.in.Prog.Funcs() {
		if err := p.rewriteFuncForPromotion(fn); err != nil {
			return err
		}
	}
	return p.registerRefRewrites()
}

// normalizeDecls splits multi-variable declaration statements into
// singletons so initializer rewrites can insert statements between
// them.
func (p *pass) normalizeDecls() {
	ast.RewriteStmts(p.in.Prog, func(s ast.Stmt) []ast.Stmt {
		ds, ok := s.(*ast.DeclStmt)
		if !ok || len(ds.Decls) <= 1 {
			return []ast.Stmt{s}
		}
		var out []ast.Stmt
		for _, d := range ds.Decls {
			nd := &ast.DeclStmt{Decls: []*ast.VarDecl{d}}
			nd.SetPos(d.Pos())
			out = append(out, nd)
		}
		return out
	})
}

// buildSiteIdx maps the base Ident of every variable-rooted access to
// its access site, so reference rewriting knows which copy index each
// reference uses.
func (p *pass) buildSiteIdx() {
	p.siteIdx = map[*ast.Ident]int{}
	for id, as := range p.in.Info.Accesses {
		node, ok := as.Node.(ast.Expr)
		if !ok || as.IsDef {
			continue
		}
		base, err := p.baseOf(node)
		if err != nil || base.varSym == nil {
			continue
		}
		if ident := rootIdent(node); ident != nil {
			// Loads and stores of the same node share the class (they
			// are always related by a loop-independent dependence), so
			// either site works; keep the smallest for determinism.
			if old, ok := p.siteIdx[ident]; !ok || id < old {
				p.siteIdx[ident] = id
			}
		}
	}
}

// rootIdent descends an access node to its base Ident (variable-rooted
// accesses only).
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return x
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			return rootIdent(x.X)
		}
	case *ast.Member:
		if !x.Arrow {
			return rootIdent(x.X)
		}
	}
	return nil
}

// idxExprFor returns the copy-index expression for a reference whose
// enclosing access is site (0 for sites outside the loop or shared
// sites, __tid for redirected private sites).
func (p *pass) idxExprFor(site int) ast.Expr {
	if site == 0 {
		return intLit(0)
	}
	if !p.siteInAnyLoop(site) {
		return intLit(0)
	}
	if p.skipSites[site] || !p.sitePrivate(site) {
		return intLit(0)
	}
	return tidExpr()
}

// mutatePromotedDecls swaps the declared types of promoted slots to
// their fat forms and relayouts affected structs.
func (p *pass) mutatePromotedDecls() error {
	for s := range p.promote {
		switch {
		case s.sym != nil:
			if s.sym.Type.Kind != ctypes.Ptr {
				return fmt.Errorf("expand: promoted slot %s is not a plain pointer", s)
			}
			ft := p.fatType(s.sym.Type.Elem)
			s.sym.Type = ft
			if s.sym.Decl != nil {
				s.sym.Decl.Type = ft
			}
		case s.field != nil:
			if s.field.Type.Kind != ctypes.Ptr {
				return fmt.Errorf("expand: promoted field %s is not a plain pointer", s)
			}
			if s.field.Type.Elem == s.owner {
				// struct T { T *next } would need mutually recursive
				// struct definitions, which definition-before-use
				// MiniC cannot print.
				return fmt.Errorf("expand: cannot promote self-referential field %s", s)
			}
			s.field.Type = p.fatType(s.field.Type.Elem)
		case s.fn != nil:
			if s.fn.Ret.Kind != ctypes.Ptr {
				return fmt.Errorf("expand: promoted return of %s is not a plain pointer", s.fn.Name)
			}
			s.fn.Ret = p.fatType(s.fn.Ret.Elem)
		}
	}
	// Struct sizes may have grown; relayout until stable (nested
	// structs converge in as many rounds as their nesting depth).
	for round := 0; round < 16; round++ {
		changed := false
		for _, d := range p.in.Prog.Decls {
			if sd, ok := d.(*ast.StructDef); ok {
				before := sd.Type.Size()
				ctypes.Relayout(sd.Type)
				if sd.Type.Size() != before {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// promotedSlotOf returns the promoted slot a reference expression
// denotes, if any.
func (p *pass) promotedSlotOf(e ast.Expr) (slot, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Sym != nil {
			s := slot{sym: x.Sym}
			if p.promote[s] {
				return s, true
			}
		}
	case *ast.Member:
		if x.Field != nil {
			for s := range p.promote {
				if s.field == x.Field {
					return s, true
				}
			}
		}
	}
	return slot{}, false
}

func (p *pass) markBare(e ast.Expr) {
	if p.bare == nil {
		p.bare = map[ast.Expr]bool{}
	}
	p.bare[e] = true
}

// registerRefRewrites adds the ".pointer" selection to every remaining
// reference of a promoted slot.
func (p *pass) registerRefRewrites() error {
	var err error
	ast.Inspect(p.in.Prog, func(n ast.Node) bool {
		if err != nil {
			return false
		}
		// Reject address-of on promoted slots early.
		if u, ok := n.(*ast.Unary); ok && u.Op == token.AND {
			if _, prom := p.promotedSlotOf(u.X); prom {
				err = fmt.Errorf("expand: %s: address of promoted pointer %q is not supported",
					u.Pos(), ast.PrintExpr(u.X))
				return false
			}
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if p.bare[e] {
			return true
		}
		if _, prom := p.promotedSlotOf(e); prom {
			p.setPointer(e)
		}
		return true
	})
	return err
}
