package mem

import (
	"sync"
	"testing"
)

func TestSnapshotRollbackRestoresBytesAndAllocator(t *testing.T) {
	m := New(1 << 16)
	a, err := m.Alloc(256, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 256; i += 8 {
		m.Store8(a+i, uint64(i)*7+1)
	}
	before := m.Stats()

	s := m.BeginSnapshot()
	for i := int64(0); i < 256; i += 8 {
		m.Store8(a+i, 0xdeadbeef)
	}
	b, err := m.Alloc(512, 2, "") // must vanish on rollback
	if err != nil {
		t.Fatal(err)
	}
	m.Memset(b, 0xff, 512)
	pages, bytes := m.Rollback(s)
	if pages == 0 || bytes == 0 {
		t.Fatalf("rollback restored nothing: %d pages, %d bytes", pages, bytes)
	}

	for i := int64(0); i < 256; i += 8 {
		if v := m.Load8(a + i); v != uint64(i)*7+1 {
			t.Fatalf("byte not restored at +%d: got %#x", i, v)
		}
	}
	after := m.Stats()
	if after != before {
		t.Fatalf("allocator stats not restored: %+v vs %+v", after, before)
	}
	if err := m.Free(b); err == nil {
		t.Fatal("allocation made during the snapshot survived rollback")
	}
	// The rolled-back region's addresses are free again.
	c, err := m.Alloc(512, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatalf("rolled-back block not reusable first-fit: got %d, want %d", c, b)
	}
}

func TestSnapshotCommitKeepsWrites(t *testing.T) {
	m := New(1 << 16)
	a, _ := m.Alloc(64, 1, "")
	s := m.BeginSnapshot()
	m.Store8(a, 42)
	if pages, _ := m.Commit(s); pages != 1 {
		t.Fatalf("expected 1 logged page, got %d", pages)
	}
	if v := m.Load8(a); v != 42 {
		t.Fatalf("commit lost a write: %d", v)
	}
	// The snapshot is gone; a new one can begin.
	s2 := m.BeginSnapshot()
	m.Store8(a, 99)
	m.Rollback(s2)
	if v := m.Load8(a); v != 42 {
		t.Fatalf("second snapshot rolled back to wrong value: %d", v)
	}
}

func TestSnapshotRollbackUndoesFree(t *testing.T) {
	m := New(1 << 16)
	a, _ := m.Alloc(128, 1, "")
	m.Store8(a, 7)
	s := m.BeginSnapshot()
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	// Reuse the freed block so its bytes are clobbered too.
	b, _ := m.Alloc(128, 2, "")
	if b != a {
		t.Fatalf("expected first-fit reuse for the test to bite: %d vs %d", b, a)
	}
	m.Store8(b, 1000)
	m.Rollback(s)
	if v := m.Load8(a); v != 7 {
		t.Fatalf("freed-then-clobbered block not restored: %d", v)
	}
	if err := m.Free(a); err != nil {
		t.Fatalf("block freed during snapshot should be live again: %v", err)
	}
}

func TestSnapshotRollbackDisarmsFailAlloc(t *testing.T) {
	m := New(1 << 16)
	s := m.BeginSnapshot()
	m.SetFailAlloc(1)
	if _, err := m.Alloc(64, 1, ""); err == nil {
		t.Fatal("fault injection did not fire")
	}
	m.Rollback(s)
	// The countdown belongs to the rolled-back attempt; it must not be
	// re-armed against the re-execution.
	if _, err := m.Alloc(64, 1, ""); err != nil {
		t.Fatalf("fault injection re-armed after rollback: %v", err)
	}
}

func TestSnapshotConcurrentWriters(t *testing.T) {
	m := New(1 << 20)
	const n = 64 * 1024
	a, err := m.Alloc(n, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i += 8 {
		m.Store8(a+i, uint64(i)+1)
	}
	s := m.BeginSnapshot()

	// Many writers share pages: every goroutine strides across the whole
	// block, so each page's pre-image claim is contended.
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w) * 8; i < n; i += workers * 8 {
				m.Store8(a+i, 0xabcdef)
			}
		}(w)
	}
	wg.Wait()

	m.Rollback(s)
	for i := int64(0); i < n; i += 8 {
		if v := m.Load8(a + i); v != uint64(i)+1 {
			t.Fatalf("concurrent rollback lost bytes at +%d: %#x", i, v)
		}
	}
}

func TestSnapshotNestingPanics(t *testing.T) {
	m := New(1 << 12)
	m.BeginSnapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginSnapshot did not panic")
		}
	}()
	m.BeginSnapshot()
}

func TestSnapshotNoteWriteCoversRawWrites(t *testing.T) {
	m := New(1 << 16)
	a, _ := m.Alloc(64, 1, "")
	m.Store8(a, 5)
	s := m.BeginSnapshot()
	m.NoteWrite(a, 8)
	copy(m.Bytes(a, 8), []byte{9, 9, 9, 9, 9, 9, 9, 9})
	m.Rollback(s)
	if v := m.Load8(a); v != 5 {
		t.Fatalf("raw write not rolled back: %d", v)
	}
}
