package mem

// Sharded allocation metadata for parallel regions. The simulated
// memory stays one flat byte array — sharding splits only the
// *metadata* (live-block index, free list) so that workers allocating
// inside a parallel region do not serialize on the global allocator
// lock. Each worker thread maps to one of numShards arenas; an arena
// owns slabs — address ranges carved from the global free list — and
// bump-allocates small blocks out of them, keeping its own live index
// and free list under its own lock. A copy-on-write registry of slab
// ranges routes Free, Block and Realloc for any address to the arena
// whose slab holds it, so blocks can be released from any thread (or
// after the region ends) regardless of who allocated them.
//
// Sequential allocations (tid < 0) and requests above shardMaxAlloc
// take the exact pre-sharding global path, so sequential execution is
// bit-identical with the unsharded allocator — including the next-fit
// cursor, the address layout, and every error message.

import (
	"fmt"
	"sort"
	"sync"
)

const (
	// numShards is the arena count. It is a power of two; threads map
	// by tid & (numShards-1), so runs with more than numShards workers
	// share arenas pairwise — still numShards-way less contended than
	// one global lock.
	numShards = 8
	// shardMaxAlloc is the largest request an arena serves; bigger
	// blocks go to the global allocator, where the free list can
	// satisfy them without dedicating a slab per size class.
	shardMaxAlloc = 32 << 10
	// slabSize is the address range an arena carves from the global
	// free list when its bump space runs out. One carve amortizes the
	// global lock over slabSize/size allocations.
	slabSize = 64 << 10
)

// shard is one arena: the allocation metadata private to the worker
// threads that map here.
type shard struct {
	mu   sync.Mutex
	live []Block // sorted by base
	free []Block // sorted by base, coalesced
	// [slabLo, slabHi) is the unconsumed remainder of the current slab.
	slabLo, slabHi int64
	_              [5]int64 // keep neighbouring shards off one cache line
}

// slabRange records that [base, end) was carved from the global free
// list for arena shard. The registry of these ranges is what routes an
// arbitrary address to the arena that owns its metadata.
type slabRange struct {
	base, end int64
	shard     int32
}

// slabOf returns the arena index owning addr, or -1 when addr lies
// outside every slab (global metadata). Lock-free: the registry is
// copy-on-write, published with an atomic pointer.
func (m *Memory) slabOf(addr int64) int {
	ps := m.slabs.Load()
	if ps == nil {
		return -1
	}
	s := *ps
	i := sort.Search(len(s), func(i int) bool { return s[i].end > addr })
	if i < len(s) && s[i].base <= addr {
		return int(s[i].shard)
	}
	return -1
}

// addSlab publishes a new slab range. Called with m.mu held, which
// serializes the writers; readers go through the atomic pointer.
func (m *Memory) addSlab(r slabRange) {
	var old []slabRange
	if ps := m.slabs.Load(); ps != nil {
		old = *ps
	}
	i := sort.Search(len(old), func(i int) bool { return old[i].base >= r.base })
	ns := make([]slabRange, 0, len(old)+1)
	ns = append(ns, old[:i]...)
	ns = append(ns, r)
	ns = append(ns, old[i:]...)
	m.slabs.Store(&ns)
}

// shardAlloc serves one small in-region request from the caller's
// arena: the arena free list first, then the bump slab, carving a new
// slab from the global free list when both run dry.
func (m *Memory) shardAlloc(tid int, size int64, site int, label string) (int64, error) {
	sh := &m.shards[tid&(numShards-1)]
	sh.mu.Lock()
	for {
		// Arena free list first: blocks previously released back here.
		for i := range sh.free {
			f := sh.free[i]
			if f.Size < size {
				continue
			}
			base := f.Base
			if f.Size == size {
				sh.free = append(sh.free[:i], sh.free[i+1:]...)
			} else {
				sh.free[i] = Block{Base: f.Base + size, Size: f.Size - size}
			}
			sh.live = insertSorted(sh.live, Block{Base: base, Size: size, Site: site, Label: label})
			sh.mu.Unlock()
			return base, nil
		}
		// Bump from the current slab.
		if sh.slabHi-sh.slabLo >= size {
			base := sh.slabLo
			sh.slabLo += size
			sh.live = insertSorted(sh.live, Block{Base: base, Size: size, Site: site, Label: label})
			sh.mu.Unlock()
			return base, nil
		}
		// Need a fresh slab. Drop the arena lock before taking the
		// global one — the snapshot and stats paths nest the two locks
		// the other way around, so holding both here would invert the
		// lock order. A sibling sharing this arena may install its own
		// slab while we carve; retiring the current remainder to the
		// arena free list keeps both slabs usable.
		sh.mu.Unlock()
		m.mu.Lock()
		base, ok := m.carve(slabSize)
		if ok {
			m.addSlab(slabRange{base: base, end: base + slabSize, shard: int32(tid & (numShards - 1))})
		}
		m.mu.Unlock()
		if !ok {
			// The global heap cannot fit a slab (tiny or fragmented
			// memory); serve this one request from the global path.
			return m.globalAlloc(size, site, label)
		}
		sh.mu.Lock()
		if sh.slabHi > sh.slabLo {
			sh.free = insertFreeSorted(sh.free, Block{Base: sh.slabLo, Size: sh.slabHi - sh.slabLo})
		}
		sh.slabLo, sh.slabHi = base, base+slabSize
	}
}

// shardFree releases the block based exactly at base from arena si and
// returns it for the caller's accounting.
func (m *Memory) shardFree(si int, base int64) (Block, error) {
	sh := &m.shards[si]
	sh.mu.Lock()
	i := findBase(sh.live, base)
	if i < 0 {
		sh.mu.Unlock()
		return Block{}, fmt.Errorf("mem: free of non-allocated address %d", base)
	}
	b := sh.live[i]
	sh.live = append(sh.live[:i], sh.live[i+1:]...)
	sh.free = insertFreeSorted(sh.free, Block{Base: b.Base, Size: b.Size})
	sh.mu.Unlock()
	return b, nil
}

// shardBlock looks addr up in arena si, interior pointers included.
func (m *Memory) shardBlock(si int, addr int64) (Block, bool) {
	sh := &m.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return blockAt(sh.live, addr)
}
