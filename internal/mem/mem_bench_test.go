package mem

import (
	"fmt"
	"testing"
)

// BenchmarkAllocZeroing measures allocation of large blocks, which is
// dominated by zeroing the returned memory. Alloc zeroes with clear()
// — a runtime memclr — rather than a byte loop; this benchmark is the
// regression guard for that.
func BenchmarkAllocZeroing(b *testing.B) {
	for _, size := range []int64{1 << 10, 1 << 16, 1 << 20} {
		b.Run(sizeName(size), func(b *testing.B) {
			m := New(size + 1<<12)
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				a, err := m.Alloc(size, 0, "")
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Free(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int64) string {
	switch {
	case n >= 1<<20:
		return "1MiB"
	case n >= 1<<16:
		return "64KiB"
	}
	return "1KiB"
}

// fragment builds a memory whose free list is a long run of small
// holes (allocate a contiguous run, then free every other block)
// followed by the bulk free extent — the worst case for a first-fit
// scan of large requests. The layout is built before the policy is
// set so both policies face the identical free list.
func fragment(b *testing.B, policy ScanPolicy) *Memory {
	b.Helper()
	m := New(64 << 20)
	const holes = 2000
	blocks := make([]int64, 0, 2*holes)
	for i := 0; i < 2*holes; i++ {
		a, err := m.Alloc(16, 0, "")
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, a)
	}
	for i := 0; i < len(blocks); i += 2 {
		if err := m.Free(blocks[i]); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkBlockLookup measures interior-pointer containment lookups
// against a heap of many live blocks — the "heap prefix" walk the
// runtime-privatization baseline performs on every guarded access. The
// block counts bracket the bench-scale workloads' live heaps. Lookups
// alternate between hits spread across the whole index and misses past
// the last block, defeating any single-entry caching.
func BenchmarkBlockLookup(b *testing.B) {
	for _, nblocks := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("blocks=%d", nblocks), func(b *testing.B) {
			m := New(int64(nblocks)*64 + 1<<20)
			bases := make([]int64, nblocks)
			for i := range bases {
				a, err := m.Alloc(32, 1, "")
				if err != nil {
					b.Fatal(err)
				}
				bases[i] = a
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := m.Block(bases[i%nblocks] + 17); !ok {
					b.Fatal("missing block")
				}
			}
		})
	}
}

// BenchmarkFragmentedAlloc allocates large blocks from a fragmented
// free list. FirstFit rescans every small hole on each call; NextFit's
// cursor stays parked in the bulk free extent.
func BenchmarkFragmentedAlloc(b *testing.B) {
	for _, pc := range []struct {
		name   string
		policy ScanPolicy
	}{{"first-fit", FirstFit}, {"next-fit", NextFit}} {
		b.Run(pc.name, func(b *testing.B) {
			m := fragment(b, pc.policy)
			m.SetScanPolicy(pc.policy)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := m.Alloc(4096, 0, "")
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Free(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
