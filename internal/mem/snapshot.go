package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Region-scoped snapshots: an incremental write log over the simulated
// memory. BeginSnapshot arms the log; from then on every store path
// saves the pre-image of a 4 KiB page the first time the page is
// written. Rollback copies the saved pages back and restores the
// allocator metadata captured at Begin, returning the memory to its
// exact pre-region state; Commit discards the log. The cost is
// proportional to the pages the region touches, not to the heap size —
// the property that makes per-region checkpointing affordable (the
// guarded-execution recovery path takes one per parallel region).
//
// Concurrency: parallel workers write the memory unsynchronized (that
// is the simulation's point), so the page log uses a per-page atomic
// claim. The first writer to reach an untouched page CAS-claims it,
// copies the pre-image, then publishes the page as logged; concurrent
// writers of the same page spin until the pre-image is safely copied
// before mutating. This is correct because every mutation path calls
// touch before writing (the Store* methods, Memset, Memcpy, Alloc's
// zeroing, and NoteWrite for callers that write through Bytes).

const (
	snapPageBits = 12
	snapPageSize = 1 << snapPageBits
)

// Page-claim states in snapState.flags.
const (
	pageClean   uint32 = iota // not yet written under this snapshot
	pageClaimed               // a writer is copying the pre-image
	pageLogged                // pre-image saved; writes may proceed
)

type savedPage struct {
	base int64
	data []byte
}

// snapState is the shared write log. It is reachable from Memory.snap
// while the snapshot is active; workers race on flags only.
type snapState struct {
	flags []atomic.Uint32 // one per page, indexed by addr >> snapPageBits

	mu    sync.Mutex
	pages []savedPage
	bytes int64
}

// shardSnap captures one metadata arena at Begin time.
type shardSnap struct {
	live, free     []Block
	slabLo, slabHi int64
}

// Snapshot captures the restorable state of a Memory: the write log
// plus the allocator metadata — global index and per-thread arenas —
// at Begin time.
type Snapshot struct {
	st *snapState

	live          []Block
	freeList      []Block
	cursor        int64
	liveBytes     int64
	liveData      int64
	highWater     int64
	highWaterData int64
	allocs        int64
	shards        [numShards]shardSnap
	slabs         *[]slabRange
}

// touch logs the pre-image of every page overlapping [addr, addr+n)
// that has not been logged yet. It must run before the write it covers.
func (s *snapState) touch(data []byte, addr, n int64) {
	if n <= 0 {
		return
	}
	last := (addr + n - 1) >> snapPageBits
	for p := addr >> snapPageBits; p <= last; p++ {
		f := &s.flags[p]
		for {
			switch f.Load() {
			case pageLogged:
			case pageClean:
				if !f.CompareAndSwap(pageClean, pageClaimed) {
					continue // another writer got the claim; re-check
				}
				base := p << snapPageBits
				end := base + snapPageSize
				if end > int64(len(data)) {
					end = int64(len(data))
				}
				img := make([]byte, end-base)
				copy(img, data[base:end])
				s.mu.Lock()
				s.pages = append(s.pages, savedPage{base: base, data: img})
				s.bytes += int64(len(img))
				s.mu.Unlock()
				f.Store(pageLogged)
			default: // pageClaimed: another writer is copying; wait
				runtime.Gosched()
				continue
			}
			break
		}
	}
}

// BeginSnapshot arms the write log and captures the allocator
// metadata. Only one snapshot may be active at a time: parallel regions
// do not nest, so a second Begin while one is active is a caller bug.
func (m *Memory) BeginSnapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap != nil {
		panic("mem: BeginSnapshot with a snapshot already active")
	}
	s := &Snapshot{
		st: &snapState{
			flags: make([]atomic.Uint32, (int64(len(m.data))+snapPageSize-1)>>snapPageBits),
		},
		live:          append([]Block(nil), m.live...),
		freeList:      append([]Block(nil), m.freeList...),
		cursor:        m.cursor,
		liveBytes:     m.liveBytes.Load(),
		liveData:      m.liveData.Load(),
		highWater:     m.highWater.Load(),
		highWaterData: m.highWaterData.Load(),
		allocs:        m.allocs.Load(),
		slabs:         m.slabs.Load(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		s.shards[i] = shardSnap{
			live:   append([]Block(nil), sh.live...),
			free:   append([]Block(nil), sh.free...),
			slabLo: sh.slabLo,
			slabHi: sh.slabHi,
		}
		sh.mu.Unlock()
	}
	m.snap = s.st
	return s
}

// Pages reports how many pages the write log holds and their total
// byte size — the incremental cost of the snapshot so far.
func (s *Snapshot) Pages() (pages int, bytes int64) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return len(s.st.pages), s.st.bytes
}

// Commit ends the snapshot keeping every write, and returns the size
// of the discarded log (the overhead the snapshot cost this region).
func (m *Memory) Commit(s *Snapshot) (pages int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap != s.st {
		panic("mem: Commit of an inactive snapshot")
	}
	m.snap = nil
	return len(s.st.pages), s.st.bytes
}

// Rollback ends the snapshot restoring the pre-images of every written
// page and the allocator metadata captured at Begin, and returns the
// restored log size. Allocations made since Begin vanish (their blocks
// return to the free list); frees since Begin are undone.
//
// The fault-injection countdown (SetFailAlloc) is deliberately
// disarmed rather than rewound: an injected fault that fired during
// the rolled-back attempt has made its point, and re-arming the
// counter would fire it at an unrelated allocation of the re-execution.
func (m *Memory) Rollback(s *Snapshot) (pages int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap != s.st {
		panic("mem: Rollback of an inactive snapshot")
	}
	m.snap = nil
	for _, p := range s.st.pages {
		copy(m.data[p.base:p.base+int64(len(p.data))], p.data)
	}
	m.live = s.live
	m.freeList = s.freeList
	m.cursor = s.cursor
	m.liveBytes.Store(s.liveBytes)
	m.liveData.Store(s.liveData)
	m.highWater.Store(s.highWater)
	m.highWaterData.Store(s.highWaterData)
	m.allocs.Store(s.allocs)
	m.failAt.Store(0)
	m.slabs.Store(s.slabs)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.live = s.shards[i].live
		sh.free = s.shards[i].free
		sh.slabLo, sh.slabHi = s.shards[i].slabLo, s.shards[i].slabHi
		sh.mu.Unlock()
	}
	return len(s.st.pages), s.st.bytes
}

// NoteWrite records an impending raw write to [addr, addr+n) with the
// active snapshot (no-op without one). Callers that mutate memory
// through the Bytes slice — bypassing the Store*/Memset/Memcpy methods
// — must call it before writing, or rollback cannot restore the bytes.
func (m *Memory) NoteWrite(addr, n int64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, n)
	}
}
