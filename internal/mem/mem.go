// Package mem implements the flat, byte-addressable simulated memory
// that MiniC programs execute against. All program data — globals,
// per-thread stacks and the heap — live in one shared byte array, so a
// MiniC address is simply an offset. This is what gives the paper's
// expansion arithmetic (copy t of a structure lives span bytes after
// copy t-1) its literal meaning, and what lets the dependence profiler
// observe every load and store.
//
// Loads and stores are unsynchronized, exactly like real memory;
// correctness of parallel execution relies on the transformation
// directing different threads to disjoint byte ranges. Allocation
// metadata is sharded: sequential allocations go through a global
// locked index, while small allocations by parallel-region workers go
// through per-thread arenas (see shard.go), so in-region malloc/free
// traffic does not serialize on one lock. Both paths support
// interior-pointer lookup, which the runtime-privatization baseline
// uses as its "heap prefix".
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gdsx/internal/obs"
)

// NullGuard is the number of reserved bytes at address 0 so that the
// null pointer never points into a valid object.
const NullGuard = 64

// ScanPolicy selects how Alloc scans the free list for a block.
type ScanPolicy int

const (
	// NextFit resumes scanning at the point where the previous
	// allocation was carved, wrapping around once (the default). On
	// allocation-heavy programs whose free list fragments, this turns
	// the scan from O(free blocks) per call into amortized O(1): the
	// cursor skips the long prefix of small holes that first-fit
	// re-examines on every single allocation.
	NextFit ScanPolicy = iota
	// FirstFit always scans from the lowest address (the reference
	// policy; packs tighter at the cost of rescanning fragments).
	FirstFit
)

// Block describes one live allocation.
type Block struct {
	Base int64
	Size int64
	// Site is the heap allocation-site ID for heap blocks, 0 otherwise.
	Site int
	// Label describes non-heap blocks ("global g", "stack t3", "str").
	Label string
}

// End returns the first address past the block.
func (b Block) End() int64 { return b.Base + b.Size }

// Memory is a simulated address space. The zero value is not usable;
// call New.
type Memory struct {
	data []byte

	mu sync.RWMutex
	// live is the global live-block index, sorted by base. One binary
	// search serves base-exact lookups (Free, Realloc) and
	// interior-pointer containment (Block) alike; keeping the blocks
	// themselves in the sorted slice — rather than a sorted base slice
	// pointing into a map — makes the hot Block lookup a single
	// cache-friendly search with no hashing, and snapshot capture a
	// flat copy.
	live     []Block
	freeList []Block // sorted by base, coalesced
	policy   ScanPolicy
	cursor   int64 // next-fit scan start (address, not index)

	// Accounting is atomic so the sharded allocation path updates it
	// without m.mu; the global path uses the same fields, and the
	// sequential values are exactly what the locked counters produced.
	liveBytes atomic.Int64
	highWater atomic.Int64
	allocs    atomic.Int64 // total number of successful allocations
	limit     atomic.Int64 // live-byte cap (0 = capacity only)
	failAt    atomic.Int64 // fault injection: fail when the countdown hits 0

	// Data-only accounting, excluding thread stacks: the paper's
	// Figure 14 measures program data, and Linux's lazy allocation
	// means unused stack reservations cost nothing there either.
	liveData      atomic.Int64
	highWaterData atomic.Int64

	// maxAddr is the highest address any allocation has ever reached,
	// the watermark that bounds Reset's data wipe: a pooled memory is
	// cleared up to here rather than over its full capacity.
	maxAddr atomic.Int64

	// shards are the per-thread metadata arenas and slabs the
	// copy-on-write registry of the address ranges they own (shard.go).
	shards [numShards]shard
	slabs  atomic.Pointer[[]slabRange]

	// snap is the active region snapshot's write log, nil outside one.
	// It is set and cleared only at parallel-region boundaries, which
	// happen-before/after all worker goroutines, so the plain reads in
	// the store paths are race-free.
	snap *snapState

	// obs is the allocator's observability feed, nil when disabled (set
	// once before execution starts, so the plain reads are race-free).
	obs *memObs
}

// memObs caches the allocator's observability instruments so the
// alloc/free paths update them without registry lookups.
type memObs struct {
	o        *obs.Observer
	cAllocs  *obs.Counter
	cFrees   *obs.Counter
	cOOMs    *obs.Counter
	gLive    *obs.Gauge // tracked max gives the high-water mark
	hAllocSz *obs.Histogram
}

// SetObs attaches the observability layer: allocation/free/OOM
// counters, an allocation-size histogram and a live-byte gauge are
// updated on every allocator operation, and with Observer.AllocEvents
// set each operation also emits an instant trace event. Call before
// execution starts.
func (m *Memory) SetObs(o *obs.Observer) {
	if o == nil {
		return
	}
	m.obs = &memObs{
		o:        o,
		cAllocs:  o.Counter("mem.allocs"),
		cFrees:   o.Counter("mem.frees"),
		cOOMs:    o.Counter("mem.oom"),
		gLive:    o.Gauge("mem.live"),
		hAllocSz: o.Histogram("mem.alloc_size"),
	}
}

// noteAlloc records a successful allocation. Every instrument is
// atomic, so no allocator lock needs to be held.
func (ob *memObs) noteAlloc(base, size int64, live int64, label string) {
	ob.cAllocs.Inc()
	ob.hAllocSz.Observe(size)
	ob.gLive.Set(live)
	if ob.o.AllocEvents {
		ob.o.Emit(obs.Event{Name: "alloc", Ph: 'i', Iter: -1, Label: label, V1: base, V2: size})
	}
}

// New creates a memory of the given capacity in bytes.
func New(capacity int64) *Memory {
	m := &Memory{
		data: make([]byte, capacity),
	}
	m.freeList = []Block{{Base: NullGuard, Size: capacity - NullGuard}}
	return m
}

// Cap returns the capacity of the memory.
func (m *Memory) Cap() int64 { return int64(len(m.data)) }

// SetScanPolicy selects the free-list scan policy for subsequent
// allocations. Programs must not depend on the address layout either
// way; see TestScanPolicyLayoutIndependence at the repository root.
func (m *Memory) SetScanPolicy(p ScanPolicy) {
	m.mu.Lock()
	m.policy = p
	m.cursor = 0
	m.mu.Unlock()
}

// SetLimit caps live allocated bytes at n (0 removes the cap, leaving
// only the capacity bound). Allocations that would push the live byte
// count past the limit fail like out-of-memory, which lets tests and
// operators bound a program's data footprint below the simulated
// capacity.
func (m *Memory) SetLimit(n int64) {
	m.limit.Store(n)
}

// SetFailAlloc arms the fault-injection hook: the nth Alloc call from
// now (1 = the very next) fails with an out-of-memory error. n <= 0
// disarms it. The counter includes every allocation — stacks, interned
// strings and heap blocks alike.
func (m *Memory) SetFailAlloc(n int64) {
	m.failAt.Store(n)
}

const align = 8

// Alloc reserves size bytes (rounded up to 8-byte alignment) and
// returns the base address. site tags heap allocations with their
// allocation-site ID; label tags everything else.
func (m *Memory) Alloc(size int64, site int, label string) (int64, error) {
	return m.AllocOn(-1, size, site, label)
}

// AllocOn reserves like Alloc, additionally routing small requests
// from parallel-region worker tid to that thread's metadata arena
// (shard.go). tid < 0 — sequential execution — and any request above
// shardMaxAlloc take the global path, which behaves bit-identically to
// the pre-sharding allocator.
func (m *Memory) AllocOn(tid int, size int64, site int, label string) (int64, error) {
	if size <= 0 {
		size = 1
	}
	size = (size + align - 1) &^ (align - 1)
	if m.tickFail() {
		m.noteOOM(size, "fault-injection")
		return 0, fmt.Errorf("mem: out of memory allocating %d bytes (fault injection)", size)
	}
	if !m.reserve(size) {
		m.noteOOM(size, "limit")
		return 0, fmt.Errorf("mem: out of memory allocating %d bytes (limit %d, live %d)",
			size, m.limit.Load(), m.liveBytes.Load())
	}
	var base int64
	var err error
	if tid >= 0 && size <= shardMaxAlloc {
		base, err = m.shardAlloc(tid, size, site, label)
	} else {
		base, err = m.globalAlloc(size, site, label)
	}
	if err != nil {
		m.liveBytes.Add(-size)
		m.noteOOM(size, "capacity")
		return 0, err
	}
	m.finishAlloc(base, size, label)
	return base, nil
}

// tickFail advances the fault-injection countdown by one allocation
// and reports whether this is the one that must fail.
func (m *Memory) tickFail() bool {
	for {
		v := m.failAt.Load()
		if v <= 0 {
			return false
		}
		if m.failAt.CompareAndSwap(v, v-1) {
			return v == 1
		}
	}
}

// reserve charges size bytes against the live count, enforcing the
// optional limit exactly even under concurrent allocation: the add
// happens first and is undone when it overshoots. Callers must
// un-reserve if the allocation subsequently fails.
func (m *Memory) reserve(size int64) bool {
	lim := m.limit.Load()
	if lim > 0 && m.liveBytes.Add(size) > lim {
		m.liveBytes.Add(-size)
		return false
	}
	if lim <= 0 {
		m.liveBytes.Add(size)
	}
	return true
}

// finishAlloc completes a successful allocation from either path:
// high-water and data accounting, snapshot logging, zeroing, and
// observability.
func (m *Memory) finishAlloc(base, size int64, label string) {
	live := m.liveBytes.Load()
	atomicMax(&m.highWater, live)
	atomicMax(&m.maxAddr, base+size)
	m.allocs.Add(1)
	if label != "stack" {
		atomicMax(&m.highWaterData, m.liveData.Add(size))
	}
	// Zero the block: C malloc does not guarantee this, but MiniC
	// does, which keeps program output deterministic. clear compiles
	// to a runtime memclr instead of a byte-at-a-time loop. The
	// zeroing may destroy bytes that were live at snapshot time
	// (freed then reallocated), so it logs like any other write.
	if s := m.snap; s != nil {
		s.touch(m.data, base, size)
	}
	clear(m.data[base : base+size])
	if ob := m.obs; ob != nil {
		ob.noteAlloc(base, size, live, label)
	}
}

// atomicMax raises a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// globalAlloc carves size bytes from the global free list and indexes
// the block in the global live index.
func (m *Memory) globalAlloc(size int64, site int, label string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	base, ok := m.carve(size)
	if !ok {
		return 0, fmt.Errorf("mem: out of memory allocating %d bytes (capacity %d, live %d)",
			size, len(m.data), m.liveBytes.Load()-size)
	}
	m.live = insertSorted(m.live, Block{Base: base, Size: size, Site: site, Label: label})
	return base, nil
}

// carve removes size bytes from the global free list and returns the
// base address, or false when no free block fits. Called with m.mu
// held; advances the next-fit cursor.
func (m *Memory) carve(size int64) (int64, bool) {
	n := len(m.freeList)
	start := 0
	if m.policy == NextFit && m.cursor > 0 {
		// Resume at the free block containing the cursor (the carve
		// point may have coalesced into a larger hole), else the next
		// one after it.
		start = sort.Search(n, func(i int) bool { return m.freeList[i].End() > m.cursor })
		if start == n {
			start = 0
		}
	}
	for k := 0; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		f := m.freeList[i]
		if f.Size < size {
			continue
		}
		base := f.Base
		if f.Size == size {
			m.freeList = append(m.freeList[:i], m.freeList[i+1:]...)
		} else {
			m.freeList[i] = Block{Base: f.Base + size, Size: f.Size - size}
		}
		m.cursor = base + size
		return base, true
	}
	return 0, false
}

// noteOOM records a failed allocation.
func (m *Memory) noteOOM(size int64, label string) {
	ob := m.obs
	if ob == nil {
		return
	}
	ob.cOOMs.Inc()
	if ob.o.AllocEvents {
		ob.o.Emit(obs.Event{Name: "oom", Ph: 'i', Iter: -1, Label: label, V2: size})
	}
}

// Free releases the block with the given base address, routing it to
// the arena whose slab holds it or to the global index. Freeing
// address 0 is a no-op, as in C.
func (m *Memory) Free(base int64) error {
	if base == 0 {
		return nil
	}
	var b Block
	if si := m.slabOf(base); si >= 0 {
		var err error
		if b, err = m.shardFree(si, base); err != nil {
			return err
		}
	} else {
		m.mu.Lock()
		i := findBase(m.live, base)
		if i < 0 {
			m.mu.Unlock()
			return fmt.Errorf("mem: free of non-allocated address %d", base)
		}
		b = m.live[i]
		m.live = append(m.live[:i], m.live[i+1:]...)
		m.freeList = insertFreeSorted(m.freeList, Block{Base: b.Base, Size: b.Size})
		m.mu.Unlock()
	}
	live := m.liveBytes.Add(-b.Size)
	if b.Label != "stack" {
		m.liveData.Add(-b.Size)
	}
	if ob := m.obs; ob != nil {
		ob.cFrees.Inc()
		ob.gLive.Set(live)
		if ob.o.AllocEvents {
			ob.o.Emit(obs.Event{Name: "free", Ph: 'i', Iter: -1, V1: base})
		}
	}
	return nil
}

// Realloc grows or shrinks the block at base to newSize, moving it if
// necessary, and returns the (possibly new) base address. Realloc of
// address 0 behaves like Alloc.
func (m *Memory) Realloc(base, newSize int64, site int) (int64, error) {
	return m.ReallocOn(-1, base, newSize, site)
}

// ReallocOn is Realloc with AllocOn's arena routing for the new block.
func (m *Memory) ReallocOn(tid int, base, newSize int64, site int) (int64, error) {
	if base == 0 {
		return m.AllocOn(tid, newSize, site, "")
	}
	old, ok := m.lookupExact(base)
	if !ok {
		return 0, fmt.Errorf("mem: realloc of non-allocated address %d", base)
	}
	nb, err := m.AllocOn(tid, newSize, site, old.Label)
	if err != nil {
		return 0, err
	}
	n := old.Size
	if newSize < n {
		n = newSize
	}
	copy(m.data[nb:nb+n], m.data[base:base+n])
	if err := m.Free(base); err != nil {
		return 0, err
	}
	return nb, nil
}

// lookupExact finds the live block based exactly at base in whichever
// index — arena or global — owns the address.
func (m *Memory) lookupExact(base int64) (Block, bool) {
	if si := m.slabOf(base); si >= 0 {
		sh := &m.shards[si]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if i := findBase(sh.live, base); i >= 0 {
			return sh.live[i], true
		}
		return Block{}, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i := findBase(m.live, base); i >= 0 {
		return m.live[i], true
	}
	return Block{}, false
}

// insertSorted adds b to a live-block index sorted by base.
func insertSorted(s []Block, b Block) []Block {
	i := sort.Search(len(s), func(i int) bool { return s[i].Base >= b.Base })
	s = append(s, Block{})
	copy(s[i+1:], s[i:])
	s[i] = b
	return s
}

// findBase returns the index of the block based exactly at base, or -1.
func findBase(s []Block, base int64) int {
	i := sort.Search(len(s), func(i int) bool { return s[i].Base >= base })
	if i < len(s) && s[i].Base == base {
		return i
	}
	return -1
}

// insertFreeSorted adds a free block, coalescing with neighbors.
func insertFreeSorted(s []Block, b Block) []Block {
	i := sort.Search(len(s), func(i int) bool { return s[i].Base >= b.Base })
	// Coalesce with predecessor.
	if i > 0 && s[i-1].End() == b.Base {
		s[i-1].Size += b.Size
		// Coalesce predecessor with successor.
		if i < len(s) && s[i-1].End() == s[i].Base {
			s[i-1].Size += s[i].Size
			s = append(s[:i], s[i+1:]...)
		}
		return s
	}
	// Coalesce with successor.
	if i < len(s) && b.End() == s[i].Base {
		s[i].Base = b.Base
		s[i].Size += b.Size
		return s
	}
	s = append(s, Block{})
	copy(s[i+1:], s[i:])
	s[i] = b
	return s
}

// blockAt returns the block of a sorted live index containing addr
// (which may be an interior pointer), and whether one exists.
func blockAt(s []Block, addr int64) (Block, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Base > addr })
	if i == 0 {
		return Block{}, false
	}
	if b := s[i-1]; addr < b.End() {
		return b, true
	}
	return Block{}, false
}

// Block returns the live block containing addr (which may be an
// interior pointer), and whether one exists. This lookup is the
// equivalent of the SpiceC "heap prefix" walk, extended — as the paper
// describes — to be safe for pointers into the middle of an object.
func (m *Memory) Block(addr int64) (Block, bool) {
	if si := m.slabOf(addr); si >= 0 {
		return m.shardBlock(si, addr)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return blockAt(m.live, addr)
}

// Stats reports allocator statistics.
type Stats struct {
	Live      int64 // bytes currently allocated
	HighWater int64 // maximum of Live over the run
	// HighWaterData is the high-water mark of non-stack allocations
	// (program data only), the quantity the paper's Figure 14 tracks.
	HighWaterData int64
	Allocs        int64 // number of Alloc calls
	Blocks        int   // live block count
}

// Stats returns a snapshot of allocator statistics.
func (m *Memory) Stats() Stats {
	m.mu.RLock()
	blocks := len(m.live)
	m.mu.RUnlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		blocks += len(sh.live)
		sh.mu.Unlock()
	}
	return Stats{
		Live: m.liveBytes.Load(), HighWater: m.highWater.Load(),
		HighWaterData: m.highWaterData.Load(), Allocs: m.allocs.Load(), Blocks: blocks,
	}
}

// ResetHighWater sets the high-water mark back to the current live
// byte count (used to measure a single phase of a program).
func (m *Memory) ResetHighWater() {
	m.highWater.Store(m.liveBytes.Load())
	m.highWaterData.Store(m.liveData.Load())
}

// Reset returns the memory to its freshly-created state so a pooled
// arena can be reused across runs: every block is released, the free
// list covers the whole address space again, shard arenas and the slab
// registry are emptied, accounting is zeroed, and the limit and
// fault-injection hooks are disarmed. The data wipe is proportional to
// the address high-water mark rather than the capacity, so pooling
// small runs in a large arena stays cheap. Not safe to call while any
// other operation on the memory is in flight.
func (m *Memory) Reset() {
	// Allocation zeroes every block it hands out, but wiping to the
	// watermark also erases freed-and-never-reused bytes, so a pooled
	// memory cannot leak one tenant's data into diagnostics of the next.
	clear(m.data[:m.maxAddr.Load()])
	m.mu.Lock()
	m.live = nil
	m.freeList = []Block{{Base: NullGuard, Size: int64(len(m.data)) - NullGuard}}
	m.cursor = 0
	m.mu.Unlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.live = nil
		sh.free = nil
		sh.slabLo, sh.slabHi = 0, 0
		sh.mu.Unlock()
	}
	m.slabs.Store(nil)
	m.liveBytes.Store(0)
	m.liveData.Store(0)
	m.highWater.Store(0)
	m.highWaterData.Store(0)
	m.allocs.Store(0)
	m.maxAddr.Store(0)
	m.limit.Store(0)
	m.failAt.Store(0)
	m.snap = nil
	m.obs = nil
}

// Bytes returns the n bytes at addr as a slice aliasing the memory.
func (m *Memory) Bytes(addr, n int64) []byte { return m.data[addr : addr+n] }

// Load reads a little-endian value of the given byte size (1, 2, 4, 8).
// Sub-8 sizes are sign- or zero-extended by the caller.
func (m *Memory) Load(addr int64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.data[addr])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[addr:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr:]))
	case 8:
		return binary.LittleEndian.Uint64(m.data[addr:])
	}
	panic(fmt.Sprintf("mem: load size %d", size))
}

// Size-specialized load/store accessors. The closure-compiled
// execution engine resolves access widths at compile time and calls
// these directly, skipping the size switch of Load/Store; they are
// small enough for the Go compiler to inline into the access closures.

// Load1 reads one byte (zero-extended).
func (m *Memory) Load1(addr int64) uint64 { return uint64(m.data[addr]) }

// Load2 reads a little-endian 2-byte value.
func (m *Memory) Load2(addr int64) uint64 {
	return uint64(binary.LittleEndian.Uint16(m.data[addr:]))
}

// Load4 reads a little-endian 4-byte value.
func (m *Memory) Load4(addr int64) uint64 {
	return uint64(binary.LittleEndian.Uint32(m.data[addr:]))
}

// Load8 reads a little-endian 8-byte value.
func (m *Memory) Load8(addr int64) uint64 {
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// Store1 writes one byte.
func (m *Memory) Store1(addr int64, v uint64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, 1)
	}
	m.data[addr] = byte(v)
}

// Store2 writes a little-endian 2-byte value.
func (m *Memory) Store2(addr int64, v uint64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, 2)
	}
	binary.LittleEndian.PutUint16(m.data[addr:], uint16(v))
}

// Store4 writes a little-endian 4-byte value.
func (m *Memory) Store4(addr int64, v uint64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, 4)
	}
	binary.LittleEndian.PutUint32(m.data[addr:], uint32(v))
}

// Store8 writes a little-endian 8-byte value.
func (m *Memory) Store8(addr int64, v uint64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, 8)
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// Store writes a little-endian value of the given byte size.
func (m *Memory) Store(addr int64, size int, v uint64) {
	if s := m.snap; s != nil {
		s.touch(m.data, addr, int64(size))
	}
	switch size {
	case 1:
		m.data[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.data[addr:], v)
	default:
		panic(fmt.Sprintf("mem: store size %d", size))
	}
}

// Memset fills n bytes at addr with v.
func (m *Memory) Memset(addr int64, v byte, n int64) {
	if sn := m.snap; sn != nil {
		sn.touch(m.data, addr, n)
	}
	s := m.data[addr : addr+n]
	if v == 0 {
		clear(s)
		return
	}
	for i := range s {
		s[i] = v
	}
}

// Memcpy copies n bytes from src to dst (regions may not overlap in
// MiniC programs; overlapping copies follow Go's copy semantics).
func (m *Memory) Memcpy(dst, src, n int64) {
	if s := m.snap; s != nil {
		s.touch(m.data, dst, n)
	}
	copy(m.data[dst:dst+n], m.data[src:src+n])
}
