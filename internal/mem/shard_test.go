package mem

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedAllocRoutesAndFrees exercises the arena path end to end:
// small allocations with a worker tid land in slabs, are found by
// exact and interior lookup, can be freed from any context, and their
// storage is reused by the owning arena.
func TestShardedAllocRoutesAndFrees(t *testing.T) {
	m := New(4 << 20)
	a, err := m.AllocOn(3, 100, 7, "")
	if err != nil {
		t.Fatalf("AllocOn: %v", err)
	}
	if si := m.slabOf(a); si != 3 {
		t.Fatalf("block at %d routed to arena %d, want 3", a, si)
	}
	b, ok := m.Block(a + 50) // interior pointer
	if !ok || b.Base != a || b.Size != 104 || b.Site != 7 {
		t.Fatalf("Block(%d) = %+v, %v", a+50, b, ok)
	}
	st := m.Stats()
	if st.Live != 104 || st.Blocks != 1 || st.Allocs != 1 {
		t.Fatalf("stats after alloc: %+v", st)
	}
	// Free from a sequential context (tid routing is irrelevant to
	// Free: the slab registry finds the owning arena).
	if err := m.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, ok := m.Block(a); ok {
		t.Fatal("freed block still found")
	}
	if st := m.Stats(); st.Live != 0 || st.Blocks != 0 {
		t.Fatalf("stats after free: %+v", st)
	}
	// The arena reuses its freed storage.
	a2, err := m.AllocOn(3, 100, 7, "")
	if err != nil {
		t.Fatalf("AllocOn again: %v", err)
	}
	if a2 != a {
		t.Fatalf("arena did not reuse freed block: got %d, want %d", a2, a)
	}
}

// TestShardedAllocZeroesReusedBlock pins the MiniC malloc-zeroes
// guarantee on the arena path, including reuse of a dirtied block.
func TestShardedAllocZeroesReusedBlock(t *testing.T) {
	m := New(1 << 20)
	a, err := m.AllocOn(0, 64, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Memset(a, 0xAB, 64)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	a2, err := m.AllocOn(0, 64, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Bytes(a2, 64) {
		if c != 0 {
			t.Fatalf("reused arena block not zeroed: % x", m.Bytes(a2, 64))
		}
	}
}

// TestShardedLargeAndSequentialUseGlobalPath verifies the routing
// boundary: big requests and tid -1 stay out of the arenas.
func TestShardedLargeAndSequentialUseGlobalPath(t *testing.T) {
	m := New(4 << 20)
	big, err := m.AllocOn(2, shardMaxAlloc+8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.AllocOn(-1, 64, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{big, seq} {
		if si := m.slabOf(a); si >= 0 {
			t.Fatalf("address %d landed in arena %d, want global", a, si)
		}
		if _, ok := m.Block(a); !ok {
			t.Fatalf("global lookup missed block at %d", a)
		}
	}
}

// TestShardedRealloc moves a block between the arena and global
// indices and preserves its contents.
func TestShardedRealloc(t *testing.T) {
	m := New(4 << 20)
	a, err := m.AllocOn(1, 16, 5, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Store8(a, 0xDEADBEEF)
	// Grow past the arena threshold: the new block must be global.
	nb, err := m.ReallocOn(1, a, shardMaxAlloc+8, 5)
	if err != nil {
		t.Fatalf("ReallocOn: %v", err)
	}
	if m.Load8(nb) != 0xDEADBEEF {
		t.Fatal("realloc lost contents")
	}
	if si := m.slabOf(nb); si >= 0 {
		t.Fatalf("grown block stayed in arena %d", si)
	}
	if _, ok := m.Block(a); ok {
		t.Fatal("old arena block still live after realloc")
	}
	// Shrink back: routed to the arena again.
	nb2, err := m.ReallocOn(1, nb, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Load8(nb2) != 0xDEADBEEF {
		t.Fatal("second realloc lost contents")
	}
	if si := m.slabOf(nb2); si != 1 {
		t.Fatalf("shrunk block routed to %d, want arena 1", si)
	}
}

// TestShardedSnapshotRollback covers the coherence requirement:
// rollback must restore arena metadata and the slab registry along
// with the global index, making in-region arena allocations vanish.
func TestShardedSnapshotRollback(t *testing.T) {
	m := New(4 << 20)
	pre, err := m.AllocOn(0, 128, 1, "") // arena block from before the region
	if err != nil {
		t.Fatal(err)
	}
	m.Store8(pre, 42)
	before := m.Stats()

	s := m.BeginSnapshot()
	var in []int64
	for tid := 0; tid < 4; tid++ {
		a, err := m.AllocOn(tid, 256, 2, "")
		if err != nil {
			t.Fatal(err)
		}
		m.Store8(a, uint64(tid)+1)
		in = append(in, a)
	}
	m.Store8(pre, 1337) // mutate pre-region data too
	m.Rollback(s)

	if got := m.Load8(pre); got != 42 {
		t.Fatalf("pre-region byte not restored: %d", got)
	}
	for _, a := range in {
		if _, ok := m.Block(a); ok {
			t.Fatalf("in-region arena block %d survived rollback", a)
		}
	}
	if after := m.Stats(); after != before {
		t.Fatalf("allocator stats not restored:\nbefore %+v\nafter  %+v", before, after)
	}
	// The pre-region arena block is still fully usable.
	if err := m.Free(pre); err != nil {
		t.Fatalf("free of pre-region arena block after rollback: %v", err)
	}
}

// TestShardedConcurrentAllocFree hammers the arenas from concurrent
// goroutines (run under -race in CI) and checks the global accounting
// comes out exact.
func TestShardedConcurrentAllocFree(t *testing.T) {
	m := New(64 << 20)
	const workers, rounds, keep = 8, 400, 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	remaining := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var blocks []int64
			for i := 0; i < rounds; i++ {
				a, err := m.AllocOn(w, int64(8+16*(i%7)), 1, "")
				if err != nil {
					errs <- err
					return
				}
				blocks = append(blocks, a)
				if len(blocks) > keep {
					if err := m.Free(blocks[0]); err != nil {
						errs <- err
						return
					}
					blocks = blocks[1:]
				}
			}
			remaining[w] = blocks
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var want int64
	blocks := 0
	for _, bs := range remaining {
		for _, a := range bs {
			b, ok := m.Block(a)
			if !ok {
				t.Fatalf("surviving block %d not found", a)
			}
			want += b.Size
			blocks++
		}
	}
	st := m.Stats()
	if st.Live != want || st.Blocks != blocks {
		t.Fatalf("stats disagree with surviving blocks: %+v, want Live=%d Blocks=%d",
			st, want, blocks)
	}
	for _, bs := range remaining {
		for _, a := range bs {
			if err := m.Free(a); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := m.Stats(); st.Live != 0 || st.Blocks != 0 {
		t.Fatalf("leak after freeing everything: %+v", st)
	}
}

// TestShardedLimitAndFailAllocApply verifies the byte limit and the
// fault-injection countdown cover the arena path too.
func TestShardedLimitAndFailAllocApply(t *testing.T) {
	m := New(4 << 20)
	m.SetLimit(256)
	if _, err := m.AllocOn(1, 200, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocOn(2, 200, 1, ""); err == nil {
		t.Fatal("limit not enforced on arena path")
	}
	m.SetLimit(0)
	m.SetFailAlloc(2)
	if _, err := m.AllocOn(1, 8, 1, ""); err != nil {
		t.Fatalf("countdown fired early: %v", err)
	}
	if _, err := m.AllocOn(1, 8, 1, ""); err == nil {
		t.Fatal("fault injection skipped the arena path")
	}
}

// BenchmarkAllocParallel measures contended allocation: every
// goroutine behaves like a parallel-region worker doing small
// malloc/free cycles. The sharded variant routes each goroutine to its
// own metadata arena; the global variant forces the pre-sharding
// single-lock path for comparison. Run with -cpu 1,4,8.
func BenchmarkAllocParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		tid  func(worker int) int
	}{
		{"global", func(int) int { return -1 }},
		{"sharded", func(w int) int { return w }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := New(256 << 20)
			var wid int32
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				tid := mode.tid(int(wid))
				wid++
				mu.Unlock()
				var blocks [64]int64
				i := 0
				for pb.Next() {
					if blocks[i] != 0 {
						if err := m.Free(blocks[i]); err != nil {
							panic(fmt.Sprintf("free: %v", err))
						}
					}
					a, err := m.AllocOn(tid, 64, 1, "")
					if err != nil {
						panic(fmt.Sprintf("alloc: %v", err))
					}
					blocks[i] = a
					i = (i + 1) % len(blocks)
				}
			})
		})
	}
}
