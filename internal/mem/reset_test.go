package mem

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestResetRestoresFreshState: after arbitrary traffic — global and
// sharded allocations, frees, a limit, armed fault injection — Reset
// must return the memory to its as-new state: empty indexes, zeroed
// accounting, a coalesced full-space free list, and the same address
// layout as a fresh memory on the next run.
func TestResetRestoresFreshState(t *testing.T) {
	m := New(1 << 20)
	fresh := New(1 << 20)

	m.SetLimit(1 << 19)
	m.SetFailAlloc(1_000_000)
	var addrs []int64
	for i := 0; i < 16; i++ {
		a, err := m.Alloc(128, i, "")
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		m.Store8(a, 0xdeadbeef)
		addrs = append(addrs, a)
	}
	for tid := 0; tid < 4; tid++ {
		if _, err := m.AllocOn(tid, 64, 0, ""); err != nil {
			t.Fatalf("shard alloc: %v", err)
		}
	}
	if err := m.Free(addrs[3]); err != nil {
		t.Fatalf("free: %v", err)
	}

	m.Reset()

	st := m.Stats()
	if st.Live != 0 || st.HighWater != 0 || st.Allocs != 0 || st.Blocks != 0 {
		t.Fatalf("stats not zeroed after Reset: %+v", st)
	}
	if si := m.slabOf(addrs[0]); si >= 0 {
		t.Fatalf("slab registry survived Reset (addr %d -> shard %d)", addrs[0], si)
	}
	// The wiped region must read as zero.
	for _, a := range addrs {
		if v := m.Load8(a); v != 0 {
			t.Fatalf("address %d holds %#x after Reset", a, v)
		}
	}
	// A reset memory must replay a fresh memory's layout exactly.
	for i := 0; i < 8; i++ {
		ra, err1 := m.Alloc(96, i, "")
		fa, err2 := fresh.Alloc(96, i, "")
		if err1 != nil || err2 != nil {
			t.Fatalf("post-reset alloc: %v / %v", err1, err2)
		}
		if ra != fa {
			t.Fatalf("alloc %d: reset memory at %d, fresh memory at %d", i, ra, fa)
		}
	}
	// The limit and the armed fault injection must be gone.
	if _, err := m.Alloc(1<<19+64, 0, ""); err != nil {
		t.Fatalf("limit survived Reset: %v", err)
	}
}

// TestResetReuseAcrossRuns pools one memory across many simulated
// runs, each leaving garbage behind; every run must observe identical
// allocator behaviour.
func TestResetReuseAcrossRuns(t *testing.T) {
	m := New(1 << 20)
	var wantFirst int64 = -1
	for run := 0; run < 5; run++ {
		a, err := m.Alloc(256, 1, "")
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if wantFirst < 0 {
			wantFirst = a
		} else if a != wantFirst {
			t.Fatalf("run %d: first alloc at %d, want %d", run, a, wantFirst)
		}
		m.Memset(a, 0xff, 256)
		for tid := 0; tid < 8; tid++ {
			if _, err := m.AllocOn(tid, 512, 2, ""); err != nil {
				t.Fatalf("run %d tid %d: %v", run, tid, err)
			}
		}
		m.Reset()
	}
}

// TestShardLimitNoOvershootConcurrent hammers the sharded allocation
// path from many goroutines under a live-byte limit: at no point may
// the accounted live bytes exceed the quota, and the survivors' sizes
// must sum to at most the quota. This is the service's tenant-quota
// guarantee: slab bump-allocation cannot overshoot, because the quota
// is reserved (atomically, add-then-undo) before any slab is touched.
func TestShardLimitNoOvershootConcurrent(t *testing.T) {
	const (
		limit   = 256 << 10
		workers = 8
		rounds  = 2000
		size    = 192 // sub-slab, so every request bump-allocates
	)
	m := New(8 << 20)
	m.SetLimit(limit)

	var (
		wg       sync.WaitGroup
		overshot atomic.Int64
		granted  atomic.Int64
		failed   atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var mine []int64
			for i := 0; i < rounds; i++ {
				a, err := m.AllocOn(tid, size, 7, "")
				if err != nil {
					failed.Add(1)
					// Free half of what we hold to let others proceed.
					for len(mine) > rounds/4 {
						last := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						if ferr := m.Free(last); ferr != nil {
							t.Errorf("free: %v", ferr)
							return
						}
					}
					continue
				}
				granted.Add(1)
				mine = append(mine, a)
				if live := m.Stats().Live; live > limit {
					overshot.Store(live)
				}
			}
		}(w)
	}
	wg.Wait()
	if v := overshot.Load(); v > 0 {
		t.Fatalf("live bytes overshot the limit: %d > %d", v, limit)
	}
	if live := m.Stats().Live; live > limit {
		t.Fatalf("final live bytes %d exceed limit %d", live, limit)
	}
	if failed.Load() == 0 {
		t.Fatalf("limit never engaged (granted %d, failed 0): test is vacuous", granted.Load())
	}
}

// TestShardLimitExactBoundary: requests that exactly fill the quota
// succeed; one more byte fails; freeing restores headroom byte-exactly.
func TestShardLimitExactBoundary(t *testing.T) {
	m := New(1 << 20)
	m.SetLimit(4096)
	var addrs []int64
	for i := 0; i < 4096/256; i++ {
		a, err := m.AllocOn(i%4, 256, 0, "")
		if err != nil {
			t.Fatalf("alloc %d within quota: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	if _, err := m.AllocOn(0, 8, 0, ""); err == nil {
		t.Fatal("allocation past the quota succeeded")
	}
	if err := m.Free(addrs[0]); err != nil {
		t.Fatalf("free: %v", err)
	}
	if _, err := m.AllocOn(1, 256, 0, ""); err != nil {
		t.Fatalf("freed headroom not reusable: %v", err)
	}
}

// TestShardLimitFailedAllocUnreserves: a request that passes the quota
// reservation but fails at the capacity layer (memory too small for a
// slab or a block) must give its reservation back — otherwise failed
// allocations would permanently shrink the tenant's quota.
func TestShardLimitFailedAllocUnreserves(t *testing.T) {
	m := New(64 << 10) // smaller than limit+slab, so capacity fails first
	m.SetLimit(1 << 20)
	// Exhaust capacity with one big global block.
	hold, err := m.Alloc(48<<10, 0, "")
	if err != nil {
		t.Fatalf("setup alloc: %v", err)
	}
	before := m.Stats().Live
	if _, err := m.Alloc(32<<10, 0, ""); err == nil {
		t.Fatal("expected a capacity failure")
	}
	if after := m.Stats().Live; after != before {
		t.Fatalf("failed alloc leaked reservation: live %d -> %d", before, after)
	}
	if err := m.Free(hold); err != nil {
		t.Fatalf("free: %v", err)
	}
}

// TestResetWipeIsWatermarkBounded allocates a small footprint in a
// large arena and checks the watermark tracks the footprint, not the
// capacity (the property that makes pooled Reset cheap).
func TestResetWipeIsWatermarkBounded(t *testing.T) {
	m := New(64 << 20)
	a, err := m.Alloc(1024, 0, "")
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if hw := m.maxAddr.Load(); hw > 1<<16 {
		t.Fatalf("watermark %d for a 1KiB footprint in a 64MiB arena", hw)
	}
	_ = a
	m.Reset()
	if hw := m.maxAddr.Load(); hw != 0 {
		t.Fatalf("watermark %d after Reset", hw)
	}
}

// sanity-check helper used by the fuzz-ish property below.
func sumLive(m *Memory) int64 {
	var s int64
	m.mu.RLock()
	for _, b := range m.live {
		s += b.Size
	}
	m.mu.RUnlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, b := range sh.live {
			s += b.Size
		}
		sh.mu.Unlock()
	}
	return s
}

// TestShardAccountingMatchesIndexes cross-checks the atomic live-byte
// counter against the ground truth of both block indexes after mixed
// concurrent traffic: the quota is only as sound as this invariant.
func TestShardAccountingMatchesIndexes(t *testing.T) {
	m := New(4 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var mine []int64
			for i := 0; i < 500; i++ {
				size := int64(16 + (i*37+tid*11)%400)
				a, err := m.AllocOn(tid, size, 0, "")
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, a)
				if i%3 == 0 && len(mine) > 0 {
					idx := (i * 13) % len(mine)
					if err := m.Free(mine[idx]); err != nil {
						t.Error(err)
						return
					}
					mine = append(mine[:idx], mine[idx+1:]...)
				}
			}
			for _, a := range mine {
				if err := m.Free(a); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := m.Stats().Live, sumLive(m); got != want {
		t.Fatalf("atomic live counter %d, index ground truth %d", got, want)
	}
	if live := m.Stats().Live; live != 0 {
		t.Fatalf("%d live bytes after freeing everything", live)
	}
}
