package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeBasic(t *testing.T) {
	m := New(1 << 16)
	a, err := m.Alloc(100, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if a < NullGuard {
		t.Fatalf("allocation inside null guard: %d", a)
	}
	if a%8 != 0 {
		t.Fatalf("unaligned allocation: %d", a)
	}
	b, err := m.Alloc(50, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if b < a+100 {
		t.Fatalf("overlapping allocations: %d after %d+100", b, a)
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free not detected")
	}
	if err := m.Free(0); err != nil {
		t.Fatal("free(NULL) must be a no-op")
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
}

func TestAllocZeroes(t *testing.T) {
	m := New(1 << 12)
	a, _ := m.Alloc(64, 0, "")
	m.Store(a, 8, 0xdeadbeef)
	_ = m.Free(a)
	b, _ := m.Alloc(64, 0, "")
	if b != a {
		t.Fatalf("expected first-fit reuse, got %d vs %d", b, a)
	}
	if v := m.Load(b, 8); v != 0 {
		t.Fatalf("reused block not zeroed: %x", v)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	m := New(1 << 12)
	a, _ := m.Alloc(16, 0, "")
	m.Store(a, 8, 0x1122334455667788)
	if v := m.Load(a, 1); v != 0x88 {
		t.Fatalf("byte = %x", v)
	}
	if v := m.Load(a, 2); v != 0x7788 {
		t.Fatalf("short = %x", v)
	}
	if v := m.Load(a, 4); v != 0x55667788 {
		t.Fatalf("int = %x", v)
	}
	m.Store(a+2, 2, 0xaaaa)
	if v := m.Load(a, 8); v != 0x11223344aaaa7788 {
		t.Fatalf("mixed = %x", v)
	}
}

func TestBlockLookupInterior(t *testing.T) {
	m := New(1 << 14)
	a, _ := m.Alloc(256, 7, "")
	blk, ok := m.Block(a + 100)
	if !ok || blk.Base != a || blk.Site != 7 {
		t.Fatalf("interior lookup failed: %+v ok=%v", blk, ok)
	}
	if _, ok := m.Block(a + 256); ok {
		t.Fatalf("one-past-end lookup must fail")
	}
	_ = m.Free(a)
	if _, ok := m.Block(a + 100); ok {
		t.Fatalf("lookup into freed block must fail")
	}
}

func TestRealloc(t *testing.T) {
	m := New(1 << 14)
	a, _ := m.Alloc(32, 3, "")
	for i := int64(0); i < 32; i++ {
		m.Bytes(a, 32)[i] = byte(i)
	}
	b, err := m.Realloc(a, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 32; i++ {
		if m.Bytes(b, 64)[i] != byte(i) {
			t.Fatalf("content lost at %d", i)
		}
	}
	c, err := m.Realloc(0, 16, 4)
	if err != nil || c == 0 {
		t.Fatalf("realloc(NULL) = %d, %v", c, err)
	}
}

func TestHighWaterAndDataStats(t *testing.T) {
	m := New(1 << 16)
	a, _ := m.Alloc(1000, 0, "")
	s, _ := m.Alloc(2000, 0, "stack")
	st := m.Stats()
	if st.HighWater < 3000 {
		t.Fatalf("high water %d", st.HighWater)
	}
	if st.HighWaterData >= 3000 || st.HighWaterData < 1000 {
		t.Fatalf("data high water %d should exclude the stack", st.HighWaterData)
	}
	_ = m.Free(a)
	_ = m.Free(s)
	if m.Stats().HighWater < 3000 {
		t.Fatalf("high water must not decrease")
	}
	m.ResetHighWater()
	if m.Stats().HighWater != 0 {
		t.Fatalf("reset high water = %d", m.Stats().HighWater)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(4096)
	if _, err := m.Alloc(1<<20, 0, ""); err == nil {
		t.Fatal("expected out-of-memory")
	}
}

func TestCoalescing(t *testing.T) {
	m := New(1 << 12)
	a, _ := m.Alloc(512, 0, "")
	b, _ := m.Alloc(512, 0, "")
	c, _ := m.Alloc(512, 0, "")
	_ = m.Free(a)
	_ = m.Free(c)
	_ = m.Free(b) // middle free must coalesce all three
	d, err := m.Alloc(1536, 0, "")
	if err != nil {
		t.Fatalf("coalesced allocation failed: %v", err)
	}
	if d != a {
		t.Fatalf("coalesced block should start at %d, got %d", a, d)
	}
}

// TestNextFitCursor checks that the default policy resumes scanning
// past a fragmented prefix instead of rescanning it, and that FirstFit
// still packs from the bottom.
func TestNextFitCursor(t *testing.T) {
	build := func(policy ScanPolicy) (*Memory, []int64) {
		m := New(1 << 16)
		m.SetScanPolicy(policy)
		var keep []int64
		for i := 0; i < 8; i++ {
			h, _ := m.Alloc(16, 0, "")
			k, _ := m.Alloc(16, 0, "")
			keep = append(keep, k)
			_ = m.Free(h)
		}
		return m, keep
	}

	m, keep := build(NextFit)
	a, err := m.Alloc(16, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if a <= keep[len(keep)-1] {
		t.Fatalf("next-fit allocation at %d rescanned the fragmented prefix (last live %d)",
			a, keep[len(keep)-1])
	}
	// After freeing the holes the allocator must still find them once
	// the cursor wraps: exhaust the tail, then allocate again.
	if _, err := m.Alloc(m.Cap(), 0, ""); err == nil {
		t.Fatal("expected out-of-memory for over-capacity request")
	}

	m2, keep2 := build(FirstFit)
	b, err := m2.Alloc(16, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if b >= keep2[0] {
		t.Fatalf("first-fit allocation at %d should reuse the first hole (before %d)", b, keep2[0])
	}
}

// TestNextFitWraps checks that a next-fit scan that starts past the
// only suitable hole wraps around and finds it.
func TestNextFitWraps(t *testing.T) {
	m := New(1 << 12)
	m.SetScanPolicy(NextFit)
	a, _ := m.Alloc(1024, 0, "")
	rest, _ := m.Alloc(1<<12-NullGuard-1024-256, 0, "") // leave a small tail
	_ = m.Free(a)                                       // hole at the bottom, cursor far past it
	b, err := m.Alloc(512, 0, "")
	if err != nil {
		t.Fatalf("wrap-around allocation failed: %v", err)
	}
	if b != a {
		t.Fatalf("expected wrap to hole at %d, got %d", a, b)
	}
	_ = m.Free(rest)
}

// Property: live blocks never overlap, interior lookups always resolve
// to the right block, and freeing everything returns the allocator to
// one maximal free extent.
func TestAllocatorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(1 << 16)
		type blk struct{ base, size int64 }
		var live []blk
		for step := 0; step < 120; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				size := int64(1 + rng.Intn(300))
				a, err := m.Alloc(size, 1, "")
				if err != nil {
					continue
				}
				// No overlap with existing blocks.
				for _, b := range live {
					if a < b.base+b.size && b.base < a+size {
						return false
					}
				}
				live = append(live, blk{a, size})
			} else {
				i := rng.Intn(len(live))
				if err := m.Free(live[i].base); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			// Spot-check interior lookup.
			if len(live) > 0 {
				b := live[rng.Intn(len(live))]
				got, ok := m.Block(b.base + rng.Int63n(b.size))
				if !ok || got.Base != b.base {
					return false
				}
			}
		}
		for _, b := range live {
			if err := m.Free(b.base); err != nil {
				return false
			}
		}
		// Everything freed: a maximal allocation must succeed again.
		if _, err := m.Alloc(1<<16-NullGuard, 0, ""); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
