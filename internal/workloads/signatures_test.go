package workloads_test

// Signature tests: each workload must exercise the specific paper
// mechanism it was designed around, visible in its transformed source.

import (
	"strings"
	"testing"

	"gdsx"
	"gdsx/internal/workloads"
)

func transformed(t *testing.T, name string) (*gdsx.TransformResult, string) {
	t.Helper()
	w := workloads.ByName(name)
	prog, err := gdsx.Compile(name+".c", w.Source(workloads.Test))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return tr, tr.Source
}

func TestBzip2SignatureRecastAndParamPromotion(t *testing.T) {
	tr, src := transformed(t, "256.bzip2")
	// zptr is passed as a promoted fat-pointer parameter...
	if !strings.Contains(src, "struct __fat_int zptr") {
		t.Errorf("zptr parameter not promoted:\n%s", src)
	}
	// ...and its short* recast view is redirected too (bonded mode
	// handles the recast; span division by the short size 2).
	if !strings.Contains(src, "/ 2") {
		t.Errorf("no short-granularity redirection in bzip2:\n%s", src)
	}
	// The ordered commit exists.
	found := false
	for _, rep := range tr.Reports {
		if len(rep.SyncPlaced) > 0 {
			found = true
		}
	}
	if !found || !strings.Contains(src, "__sync_wait") {
		t.Errorf("bzip2 ordered section missing")
	}
}

func TestHmmerSignatureAmbiguousSpans(t *testing.T) {
	tr, src := transformed(t, "456.hmmer")
	// The mx pointer has two runtime-sized allocation sites: it must
	// be promoted with runtime span tracking.
	promoted := false
	for _, rep := range tr.Reports {
		for _, p := range rep.Promoted {
			if strings.Contains(p, "mx") {
				promoted = true
			}
		}
	}
	if !promoted {
		t.Fatalf("mx not promoted: %+v", tr.Reports)
	}
	if !strings.Contains(src, ".span") {
		t.Errorf("no span fields in hmmer:\n%s", src)
	}
}

func TestMD5SignatureGlobalConversion(t *testing.T) {
	_, src := transformed(t, "md5")
	// The message-schedule global M becomes a heap object with N copies
	// (Table 1's global rule).
	if !strings.Contains(src, "unsigned int *M") {
		t.Errorf("M not heap-converted:\n%s", src)
	}
	if !strings.Contains(src, "M = (unsigned int*)malloc(64 * __nthreads)") {
		t.Errorf("M allocation missing:\n%s", src)
	}
}

func TestDijkstraSignatureFreshQueue(t *testing.T) {
	tr, src := transformed(t, "dijkstra")
	// Only the two global arrays are expanded; the queue nodes are
	// iteration-fresh and must remain untouched (no struct qitem
	// expansion, no fat qitem pointers).
	if strings.Contains(src, "__fat_qitem") {
		t.Errorf("queue nodes wrongly promoted:\n%s", src)
	}
	total := 0
	for _, rep := range tr.Reports {
		total += rep.Structures
	}
	if total != 2 {
		t.Errorf("dijkstra structures = %d, want 2", total)
	}
}

func TestH263SignatureTwoLoops(t *testing.T) {
	tr, _ := transformed(t, "h263-encoder")
	if len(tr.Reports) != 1 || len(tr.Reports[0].LoopIDs) != 2 {
		t.Fatalf("h263 must transform two loops in one pass: %+v", tr.Reports)
	}
}

func TestLBMSignatureSmallExpansion(t *testing.T) {
	tr, src := transformed(t, "470.lbm")
	// Only the two per-cell scratch structures expand; the grids stay
	// shared (they are upwards/downwards exposed).
	total := 0
	for _, rep := range tr.Reports {
		total += rep.Structures
	}
	if total != 2 {
		t.Fatalf("lbm structures = %d, want 2", total)
	}
	if !strings.Contains(src, "feq = (double*)malloc(72 * __nthreads)") {
		t.Errorf("feq not converted with 9 doubles per copy:\n%s", src)
	}
}
