package workloads

// Adversarial bundles a guard-evaluation program pair: the same MiniC
// source at a training constant and at an exposing constant. The two
// versions are structurally identical (same loops, access sites and
// allocation sites — only integer constants differ), so a dependence
// profile taken on the training version applies site-for-site to the
// exposing one, mirroring the paper's train/ref input split. The
// training version makes every iteration satisfy the thread-private
// pattern (write-then-read on scratch storage); the exposing version
// breaks it in a way only runtime monitoring can see.
//
// These programs are deliberately race-free even when the expansion
// assumption is violated: every thread still touches only its own
// copies plus disjoint output slots, so the miscomputation is
// deterministic and the guarded run stays clean under the Go race
// detector. The unsynchronized-conflict rule (a true data race) is
// exercised by guard unit tests on synthesized logs instead.
type Adversarial struct {
	Name string
	// Profile generates the training-input program.
	Profile func(Scale) string
	// Expose generates the dependence-exposing program.
	Expose func(Scale) string
}

// AdversarialAll returns the guard-evaluation workloads.
func AdversarialAll() []*Adversarial {
	return []*Adversarial{AdversarialStencil(), AdversarialKill(), AdversarialMultiRegion()}
}

// AdversarialByName returns the named adversarial workload or nil.
func AdversarialByName(name string) *Adversarial {
	for _, a := range AdversarialAll() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AdversarialStencil hides a loop-carried flow dependence behind an
// input constant. Training input (STRIDE=0): each iteration writes
// scratch slot i%8 of a global buffer and reads the same slot back —
// the canonical thread-private pattern (carried anti/output only).
// Exposing input (STRIDE=1): each iteration reads slot (i+1)%8, whose
// sequential value comes from iteration i-7 — a carried flow
// dependence. After expansion each thread reads its own copy, so
// iterations near chunk boundaries read stale or zero-filled data and
// the checksum diverges from sequential execution. The guard reports
// carried-flow (and stale-copy-read for never-written copy bytes)
// violations naming the tmp write/read site pair.
func AdversarialStencil() *Adversarial {
	return &Adversarial{
		Name:    "adversarial-stencil",
		Profile: func(s Scale) string { return stencilSource(s, 0) },
		Expose:  func(s Scale) string { return stencilSource(s, 1) },
	}
}

func stencilSource(s Scale, stride int) string {
	n := pick(s, 96, 192, 4096)
	return sprintf(stencilTemplate, n, stride)
}

// Template parameters: %[1]d = iterations, %[2]d = stride.
const stencilTemplate = `
int N = %[1]d;
int STRIDE = %[2]d;

// Scratch buffer: thread-private on the training input.
long tmp[8];

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        tmp[i %% 8] = (long)i * 2654435761 + 99991;
        out[i] = tmp[(i + STRIDE) %% 8] %% 65536;
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    int j;
    for (j = 0; j < 8; j++) {
        tmp[j] = (long)(j + 1) * 1000003;
    }
    kernel(out);
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("adversarial-stencil ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`

// AdversarialKill hides a conditional definition behind an input
// constant. Training input (WLIM=N): every iteration redefines the
// scratch accumulator before reading it — thread-private. Exposing
// input (WLIM=0): no iteration writes, so every read is
// upward-exposed; sequential execution reads the pre-loop values, but
// threads other than 0 read their zero-filled copies. The guard
// reports stale-copy-read violations for every non-zero thread. The
// scratch is an enclosing-function local, exercising the
// VLA-expansion + __expand_note path (the stencil exercises the
// converted-global + __expand_malloc path).
func AdversarialKill() *Adversarial {
	return &Adversarial{
		Name: "adversarial-kill",
		Profile: func(s Scale) string {
			n := killN(s)
			return sprintf(killTemplate, n, n)
		},
		Expose: func(s Scale) string {
			return sprintf(killTemplate, killN(s), 0)
		},
	}
}

func killN(s Scale) int { return pick(s, 96, 192, 4096) }

// Template parameters: %[1]d = iterations, %[2]d = write limit.
const killTemplate = `
int N = %[1]d;
int WLIM = %[2]d;

void kernel(long *out) {
    long acc[2];
    acc[0] = 1000003;
    acc[1] = 777;
    int i;
    parallel for (i = 0; i < N; i++) {
        if (i < WLIM) {
            acc[0] = (long)i * 31 + 5;
            acc[1] = (long)i + 7;
        }
        out[i] = acc[0] * 3 + acc[1];
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    kernel(out);
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("adversarial-kill ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`
