package workloads

// Multi-region adversarial programs for region-scoped recovery: where
// the single-region adversarials (adversarial.go) prove the guard
// detects a violation, these prove recovery contains one. The
// multiregion program has three parallel regions of which only the
// middle one violates on the exposing input, so a region-scoped
// recovery should re-execute region 2 sequentially while regions 1 and
// 3 keep their parallelism; the stuck program's exposing input makes
// every thread but 0 spin forever on its own zero-filled copy, which
// only a region watchdog can turn back into a completed run.

// AdversarialMultiRegion chains three parallel stencil-style regions
// through heap arrays (region 1 fills a, region 2 maps a to b, region
// 3 maps b to c). Each region privatizes its own scratch global on the
// training input (STRIDE=0); the exposing input (STRIDE=1) adds a
// carried flow dependence to region 2's scratch reads only. Regions 1
// and 3 stay clean on either input, and region 3 consumes region 2's
// output — so a run is only correct if region 2's recovery restored
// and recomputed b before region 3 read it.
func AdversarialMultiRegion() *Adversarial {
	return &Adversarial{
		Name:    "adversarial-multiregion",
		Profile: func(s Scale) string { return multiRegionSource(s, 0) },
		Expose:  func(s Scale) string { return multiRegionSource(s, 1) },
	}
}

func multiRegionSource(s Scale, stride int) string {
	n := pick(s, 96, 192, 4096)
	return sprintf(multiRegionTemplate, n, stride)
}

// Template parameters: %[1]d = iterations, %[2]d = stride.
const multiRegionTemplate = `
int N = %[1]d;
int STRIDE = %[2]d;

// Per-region scratch buffers: thread-private on the training input.
long t1[8];
long t2[8];
long t3[8];

void stage1(long *a) {
    int i;
    parallel for (i = 0; i < N; i++) {
        t1[i %% 8] = (long)i * 1103515245 + 12345;
        a[i] = t1[i %% 8] %% 4096;
    }
}

void stage2(long *a, long *b) {
    int i;
    parallel for (i = 0; i < N; i++) {
        t2[i %% 8] = a[i] * 31 + 7;
        b[i] = t2[(i + STRIDE) %% 8] %% 4096;
    }
}

void stage3(long *b, long *c) {
    int i;
    parallel for (i = 0; i < N; i++) {
        t3[i %% 8] = b[i] * 17 + 3;
        c[i] = t3[i %% 8] %% 4096;
    }
}

int main() {
    long *a = (long*)malloc(N * 8);
    long *b = (long*)malloc(N * 8);
    long *c = (long*)malloc(N * 8);
    int j;
    for (j = 0; j < 8; j++) {
        t1[j] = (long)(j + 1) * 7919;
        t2[j] = (long)(j + 1) * 104729;
        t3[j] = (long)(j + 1) * 1299709;
    }
    stage1(a);
    stage2(a, b);
    stage3(b, c);
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + c[i];
    }
    print_str("adversarial-multiregion ");
    print_long(s);
    print_char('\n');
    free(a);
    free(b);
    free(c);
    return 0;
}
`

// AdversarialStuck hides a cross-thread busy-wait behind an input
// constant. Training input (WLIM=N): every iteration sets the flag
// before waiting on it — write-then-read, thread-private, and the wait
// never spins. Exposing input (WLIM=1): only iteration 0 sets the
// flag. Sequential execution still terminates (iteration 0 runs
// first), but after expansion each thread waits on its own copy, and
// every thread except 0 spins forever on a zero-filled flag copy the
// region will never write. No safe-point check can see this — the
// region never reaches its safe point — which is exactly what the
// region watchdog (RunOptions.RegionTimeout) exists for.
//
// NOT part of AdversarialAll: the exposing program hangs by design on
// any multi-threaded run without a RegionTimeout, which generic
// detection tests do not set.
func AdversarialStuck() *Adversarial {
	return &Adversarial{
		Name: "adversarial-stuck",
		Profile: func(s Scale) string {
			n := stuckN(s)
			return sprintf(stuckTemplate, n, n)
		},
		Expose: func(s Scale) string {
			return sprintf(stuckTemplate, stuckN(s), 1)
		},
	}
}

func stuckN(s Scale) int { return pick(s, 64, 128, 1024) }

// Template parameters: %[1]d = iterations, %[2]d = flag-write limit.
const stuckTemplate = `
int N = %[1]d;
int WLIM = %[2]d;

// flag[0] is the condition every iteration waits on. The spin body
// touches only out[i] — per-iteration disjoint — because it never runs
// on the training input, so its access sites are unprofiled and stay
// unredirected; spinning on a shared scratch cell there would be a
// genuine cross-thread race rather than a stuck-but-race-free region.
long flag[1];

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        if (i < WLIM) {
            flag[0] = 1;
        }
        while (flag[0] == 0) {
            out[i] = out[i] + 1;
        }
        out[i] = (long)i * 3 + flag[0];
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    kernel(out);
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("adversarial-stuck ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`
