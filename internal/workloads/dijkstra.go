package workloads

// Dijkstra reproduces MiBench's dijkstra: each iteration of the
// outermost loop finds the shortest path between one source/destination
// pair over a shared adjacency matrix, using a malloc'd priority queue
// whose nodes are created and freed within the iteration. The per-pair
// distance and visited arrays are globals reused by every iteration —
// the two dynamic data structures the paper privatizes (Table 5:
// dijkstra = 2). The loop is DOACROSS because a running checksum of
// path lengths is accumulated in iteration order.
func Dijkstra() *Workload {
	return &Workload{
		Name:            "dijkstra",
		Suite:           "MiBench",
		Func:            "main",
		Level:           1,
		Parallelism:     "DOACROSS",
		PaperPrivatized: 2,
		PaperTimePct:    99.9,
		Source:          dijkstraSource,
	}
}

func dijkstraSource(s Scale) string {
	nodes := pick(s, 24, 32, 56)
	pairs := pick(s, 8, 20, 160)
	return sprintf(dijkstraTemplate, nodes, pairs)
}

// Template parameters: %[1]d = node count, %[2]d = pair count.
const dijkstraTemplate = `
int NONE = 9999999;

int AdjMatrix[%[1]d][%[1]d];
int gdist[%[1]d];
int gprev[%[1]d];

struct qitem {
    int node;
    int dist;
    struct qitem *next;
};

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initGraph() {
    int i;
    int j;
    seed = 42;
    for (i = 0; i < %[1]d; i++) {
        for (j = 0; j < %[1]d; j++) {
            int w = nextRand() %% 40;
            if (w < 4) {
                AdjMatrix[i][j] = w + 1;
            } else {
                if ((i + j) %% 7 == 0) {
                    AdjMatrix[i][j] = w %% 9 + 1;
                } else {
                    AdjMatrix[i][j] = NONE;
                }
            }
        }
        AdjMatrix[i][(i + 1) %% %[1]d] = 1 + i %% 5;
        AdjMatrix[i][i] = 0;
    }
}

struct qitem *enqueue(struct qitem *head, int node, int dist) {
    struct qitem *item = (struct qitem*)malloc(sizeof(struct qitem));
    item->node = node;
    item->dist = dist;
    // Insert in distance order (priority queue as a sorted list).
    if (head == 0 || head->dist >= dist) {
        item->next = head;
        return item;
    }
    struct qitem *cur = head;
    while (cur->next != 0 && cur->next->dist < dist) {
        cur = cur->next;
    }
    item->next = cur->next;
    cur->next = item;
    return head;
}

// pathHash walks the predecessor chain (the path printout of the
// original benchmark) and folds it into a hash.
int pathHash(int src, int dst) {
    int node = dst;
    int h = 0;
    int steps = 0;
    while (node != src && node < 9999999 && steps < %[1]d) {
        h = h * 17 + node;
        node = gprev[node];
        steps++;
    }
    return h;
}

int shortestPath(int src, int dst) {
    int i;
    for (i = 0; i < %[1]d; i++) {
        gdist[i] = NONE;
        gprev[i] = NONE;
    }
    gdist[src] = 0;
    struct qitem *queue = 0;
    queue = enqueue(queue, src, 0);
    while (queue != 0) {
        struct qitem *front = queue;
        int node = front->node;
        int dist = front->dist;
        queue = front->next;
        free(front);
        if (dist > gdist[node]) {
            continue;
        }
        int next;
        for (next = 0; next < %[1]d; next++) {
            int w = AdjMatrix[node][next];
            if (w < NONE) {
                int cand = dist + w;
                if (cand < gdist[next]) {
                    gdist[next] = cand;
                    gprev[next] = node;
                    queue = enqueue(queue, next, cand);
                }
            }
        }
    }
    return gdist[dst];
}

int main() {
    initGraph();
    int *lengths = (int*)malloc(%[2]d * 4);
    long checksum = 0;
    int pair;
    parallel doacross for (pair = 0; pair < %[2]d; pair++) {
        int src = pair %% %[1]d;
        int dst = (pair * 7 + 13) %% %[1]d;
        int len = shortestPath(src, dst);
        if (len >= 9999999) {
            len = -1;
        } else {
            len = len * 256 + pathHash(src, dst) %% 251;
        }
        lengths[pair] = len;
        checksum = checksum * 31 + len;
    }
    long out = checksum;
    int p;
    for (p = 0; p < %[2]d; p++) {
        out = out ^ (long)lengths[p] * (p + 1);
    }
    print_str("dijkstra ");
    print_long(out);
    print_char('\n');
    free(lengths);
    return 0;
}
`
