package workloads

// MPEG2Enc reproduces the MediaBench II mpeg2-encoder motion-estimation
// loop: a DOALL loop over macroblocks performs a full search over a
// reference window, using seven shared scratch structures that every
// iteration rewrites (Table 5: mpeg2-encoder = 7). As in the original,
// the candidate loop sits at nesting level 3: main's picture loop,
// the slice loop, and the parallel macroblock loop inside
// motion_estimation.
func MPEG2Enc() *Workload {
	return &Workload{
		Name:            "mpeg2-encoder",
		Suite:           "MediaBench II",
		Func:            "motion_estimation",
		Level:           3,
		Parallelism:     "DOALL",
		PaperPrivatized: 7,
		PaperTimePct:    70.6,
		Source:          mpeg2encSource,
	}
}

func mpeg2encSource(s Scale) string {
	mbsPerSlice := pick(s, 4, 8, 30)
	window := pick(s, 2, 3, 4)
	return sprintf(mpeg2encTemplate, mbsPerSlice, window)
}

// Template parameters: %[1]d = macroblocks per slice, %[2]d = search
// radius. The program processes 2 pictures x 2 slices.
const mpeg2encTemplate = `
int WIDTH = 128;
int HEIGHT = 64;

int refFrame[8192];
int curFrame[8192];

// The seven scratch structures privatized per macroblock.
int diffBuf[256];
int predBuf[256];
int sadRow[16];
int candX[81];
int candY[81];
int costTab[81];
int bestVec[4];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initFrames() {
    seed = 7;
    int i;
    for (i = 0; i < 8192; i++) {
        refFrame[i] = nextRand() %% 255;
        curFrame[i] = (refFrame[i] + nextRand() %% 9) %% 255;
    }
}

int pixelAt(int *frame, int x, int y) {
    if (x < 0) { x = 0; }
    if (y < 0) { y = 0; }
    if (x >= 128) { x = 127; }
    if (y >= 64) { y = 63; }
    return frame[y * 128 + x];
}

int estimateMB(int mb, int radius) {
    int mbx = (mb * 16) %% 112;
    int mby = ((mb * 16) / 112 * 16) %% 48;
    int ncand = 0;
    int dx;
    int dy;
    // Enumerate candidate vectors.
    for (dy = 0 - radius; dy <= radius; dy++) {
        for (dx = 0 - radius; dx <= radius; dx++) {
            candX[ncand] = dx;
            candY[ncand] = dy;
            ncand++;
        }
    }
    int best = 0;
    int bestSad = 99999999;
    int c;
    for (c = 0; c < ncand; c++) {
        int sad = 0;
        int row;
        for (row = 0; row < 16; row++) {
            int col;
            int rowSad = 0;
            for (col = 0; col < 16; col++) {
                int cv = pixelAt(curFrame, mbx + col, mby + row);
                int rv = pixelAt(refFrame, mbx + col + candX[c], mby + row + candY[c]);
                int d = cv - rv;
                if (d < 0) { d = 0 - d; }
                diffBuf[row * 16 + col] = d;
                rowSad += d;
            }
            sadRow[row] = rowSad;
            sad += rowSad;
        }
        costTab[c] = sad + (candX[c] * candX[c] + candY[c] * candY[c]) / 4;
        if (costTab[c] < bestSad) {
            bestSad = costTab[c];
            best = c;
        }
    }
    // Build the prediction for the winning vector.
    int row;
    int residual = 0;
    for (row = 0; row < 16; row++) {
        int col;
        for (col = 0; col < 16; col++) {
            predBuf[row * 16 + col] = pixelAt(refFrame, mbx + col + candX[best], mby + row + candY[best]);
            residual += diffBuf[row * 16 + col];
        }
    }
    bestVec[0] = candX[best];
    bestVec[1] = candY[best];
    bestVec[2] = bestSad;
    bestVec[3] = residual;
    return bestSad * 8 + bestVec[0] * 2 + bestVec[1] + predBuf[0] %% 7;
}

// motion_estimation processes one slice: the candidate loop over its
// macroblocks is at nesting level 3 (picture, slice, macroblock), as
// in the original encoder.
void motion_estimation(int *mvOut, int slice, int mbs, int radius) {
    int mb;
    parallel for (mb = 0; mb < mbs; mb++) {
        mvOut[slice * mbs + mb] = estimateMB(slice * mbs + mb, radius);
    }
}

int main() {
    initFrames();
    int PICS = 2;
    int SLICES = 2;
    int mbs = %[1]d;
    int *mvOut = (int*)malloc(4 * %[1]d * 4);
    long out = 0;
    int pic;
    for (pic = 0; pic < PICS; pic++) {
        int slice;
        for (slice = 0; slice < SLICES; slice++) {
            motion_estimation(mvOut, pic * SLICES + slice, mbs, %[2]d);
        }
    }
    int mb;
    for (mb = 0; mb < 4 * %[1]d; mb++) {
        out = out * 33 + mvOut[mb];
    }
    print_str("mpeg2-encoder ");
    print_long(out);
    print_char('\n');
    free(mvOut);
    return 0;
}
`

// MPEG2Dec reproduces the MediaBench II mpeg2-decoder picture-data
// loop: a DOALL loop over coded blocks dequantizes coefficients into a
// shared block buffer, applies a row/column integer transform through
// two more shared scratch buffers, and emits reconstructed samples
// (Table 5: mpeg2-decoder = 3 privatized structures).
func MPEG2Dec() *Workload {
	return &Workload{
		Name:            "mpeg2-decoder",
		Suite:           "MediaBench II",
		Func:            "picture_data",
		Level:           2,
		Parallelism:     "DOALL",
		PaperPrivatized: 3,
		PaperTimePct:    97.8,
		Source:          mpeg2decSource,
	}
}

func mpeg2decSource(s Scale) string {
	blocksPerPic := pick(s, 6, 16, 325)
	passes := pick(s, 2, 2, 3)
	return sprintf(mpeg2decTemplate, blocksPerPic, passes)
}

// Template parameters: %[1]d = blocks per picture, %[2]d = transform
// passes. The program decodes 4 pictures.
const mpeg2decTemplate = `
int qmatrix[64];
int coeffs[64];

// The three structures privatized per block.
int block[64];
int idctTmp[64];
int rowBuf[8];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initStream() {
    seed = 1234;
    int i;
    for (i = 0; i < 64; i++) {
        qmatrix[i] = 8 + nextRand() %% 24;
        coeffs[i] = nextRand() %% 256 - 128;
    }
}

int decodeBlock(int b, int passes) {
    int i;
    // Dequantize into the shared block buffer.
    for (i = 0; i < 64; i++) {
        int c = coeffs[(i + b * 17) %% 64];
        block[i] = c * qmatrix[i] / 16 + (b & 3);
    }
    int p;
    for (p = 0; p < passes; p++) {
        // Row transform (butterfly-style integer approximation).
        int r;
        for (r = 0; r < 8; r++) {
            int k;
            for (k = 0; k < 8; k++) {
                rowBuf[k] = block[r * 8 + k];
            }
            for (k = 0; k < 4; k++) {
                int a = rowBuf[k] + rowBuf[7 - k];
                int d = rowBuf[k] - rowBuf[7 - k];
                idctTmp[r * 8 + k] = a * 181 / 256 + d / 8;
                idctTmp[r * 8 + 7 - k] = a / 8 - d * 181 / 256;
            }
        }
        // Column transform back into block.
        int c;
        for (c = 0; c < 8; c++) {
            int k;
            for (k = 0; k < 4; k++) {
                int a = idctTmp[k * 8 + c] + idctTmp[(7 - k) * 8 + c];
                int d = idctTmp[k * 8 + c] - idctTmp[(7 - k) * 8 + c];
                block[k * 8 + c] = a * 181 / 256 + d / 8;
                block[(7 - k) * 8 + c] = a / 8 - d * 181 / 256;
            }
        }
    }
    int sum = 0;
    for (i = 0; i < 64; i++) {
        int v = block[i];
        if (v < -255) { v = -255; }
        if (v > 255) { v = 255; }
        sum = sum * 3 + v;
    }
    return sum;
}

// picture_data decodes one picture's blocks: the candidate loop is at
// nesting level 2 (picture, block), as in the original decoder.
void picture_data(int *recon, int pic, int blocks, int passes) {
    int b;
    parallel for (b = 0; b < blocks; b++) {
        recon[pic * blocks + b] = decodeBlock(pic * blocks + b, passes);
    }
}

int main() {
    initStream();
    int PICS = 4;
    int blocks = %[1]d;
    int *recon = (int*)malloc(4 * %[1]d * 4);
    int pic;
    for (pic = 0; pic < PICS; pic++) {
        picture_data(recon, pic, blocks, %[2]d);
    }
    long out = 0;
    int b;
    for (b = 0; b < 4 * %[1]d; b++) {
        out = out * 131 + recon[b];
    }
    print_str("mpeg2-decoder ");
    print_long(out);
    print_char('\n');
    free(recon);
    return 0;
}
`
