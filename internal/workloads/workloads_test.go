package workloads_test

import (
	"strings"
	"testing"

	"gdsx"
	"gdsx/internal/expand"
	"gdsx/internal/workloads"
)

func TestAllCompileAndRun(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(workloads.Test)
			prog, err := gdsx.Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			res, err := prog.Run(gdsx.RunOptions{Threads: 1})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !strings.Contains(res.Output, w.Name) {
				t.Fatalf("output %q does not carry the workload tag", res.Output)
			}
			// Deterministic across runs.
			res2, err := prog.Run(gdsx.RunOptions{Threads: 1})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if res.Output != res2.Output {
				t.Fatalf("nondeterministic output: %q vs %q", res.Output, res2.Output)
			}
		})
	}
}

// Every workload must transform cleanly, and the transformed program
// must reproduce the native output at several thread counts with real
// parallel execution.
func TestAllTransformedMatchNative(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(workloads.Test)
			prog, err := gdsx.Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			native, err := prog.Run(gdsx.RunOptions{Threads: 1})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
			if err != nil {
				t.Fatalf("Transform: %v", err)
			}
			for _, n := range []int{1, 2, 4, 8} {
				got, err := gdsx.RunSource(w.Name+"-x.c", tr.Source, gdsx.RunOptions{Threads: n})
				if err != nil {
					t.Fatalf("N=%d: %v\n--- transformed ---\n%s", n, err, tr.Source)
				}
				if got.Output != native.Output {
					t.Fatalf("N=%d: %q != native %q\n--- transformed ---\n%s",
						n, got.Output, native.Output, tr.Source)
				}
			}
		})
	}
}

// The unoptimized configuration (paper Fig. 9a: everything expanded,
// every reaching pointer promoted, no span DSE) must also preserve
// every workload's output.
func TestAllTransformedUnoptimizedMatchNative(t *testing.T) {
	un := expand.Unoptimized()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(workloads.Test)
			prog, err := gdsx.Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			native, err := prog.Run(gdsx.RunOptions{Threads: 1})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			tr, err := gdsx.Transform(prog, gdsx.TransformOptions{Expand: &un})
			if err != nil {
				t.Fatalf("Transform(unopt): %v", err)
			}
			for _, n := range []int{1, 4} {
				got, err := gdsx.RunSource(w.Name+"-u.c", tr.Source, gdsx.RunOptions{Threads: n})
				if err != nil {
					t.Fatalf("N=%d: %v\n--- transformed ---\n%s", n, err, tr.Source)
				}
				if got.Output != native.Output {
					t.Fatalf("N=%d: %q != native %q\n--- transformed ---\n%s",
						n, got.Output, native.Output, tr.Source)
				}
			}
		})
	}
}

// The number of privatized dynamic data structures must match the
// paper's Table 5.
func TestPrivatizedCountsMatchTable5(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(workloads.Test)
			prog, err := gdsx.Compile(w.Name+".c", src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
			if err != nil {
				t.Fatalf("Transform: %v", err)
			}
			total := 0
			for _, rep := range tr.Reports {
				total += rep.Structures
			}
			if total != w.PaperPrivatized {
				t.Errorf("privatized structures = %d, paper Table 5 says %d (%v)",
					total, w.PaperPrivatized, tr.Reports)
			}
		})
	}
}

func TestMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, w := range workloads.All() {
		if w.Name == "" || w.Suite == "" || w.Func == "" || w.Parallelism == "" {
			t.Errorf("incomplete metadata: %+v", w)
		}
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if w.LOC() < 50 {
			t.Errorf("%s: suspiciously small source (%d lines)", w.Name, w.LOC())
		}
		if got := workloads.ByName(w.Name); got == nil || got.Name != w.Name {
			t.Errorf("ByName(%q) = %v", w.Name, got)
		}
	}
	if workloads.ByName("no-such") != nil {
		t.Errorf("ByName of unknown workload should be nil")
	}
}
