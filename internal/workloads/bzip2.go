package workloads

// Bzip2 reproduces SPEC CPU2000 256.bzip2's compressStream loop: a
// DOACROSS loop compresses consecutive blocks of a shared input
// stream. Each iteration run-length-encodes its block, builds symbol
// frequencies and codes, and performs an index transform through the
// infamous zptr buffer — allocated once before the loop and recast
// between int* and short* views (the paper's §3.1 motivation for the
// bonded layout). Compressed lengths are appended to the output stream
// through a cursor carried across iterations, which forms the ordered
// section. Four structures are privatized (Table 5: 256.bzip2 = 4):
// zptr, the RLE buffer, the frequency table and the code table.
func Bzip2() *Workload {
	return &Workload{
		Name:            "256.bzip2",
		Suite:           "SPEC CPU2000",
		Func:            "compressStream",
		Level:           2,
		Parallelism:     "DOACROSS",
		PaperPrivatized: 4,
		PaperTimePct:    99.8,
		Source:          bzip2Source,
	}
}

func bzip2Source(s Scale) string {
	blockSize := pick(s, 64, 128, 512)
	blocks := pick(s, 6, 12, 250)
	return sprintf(bzip2Template, blockSize, blocks)
}

// Template parameters: %[1]d = block size, %[2]d = block count.
const bzip2Template = `
int BLOCK = %[1]d;
int NBLOCKS = %[2]d;

char input[%[1]d * %[2]d];
int outStream[%[2]d * 4];
int outCursor;

// The four structures privatized per block.
int rleBuf[%[1]d];
int freq[256];
int codeTab[256];
// zptr is allocated in compressStream before the loop and recast.

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initInput() {
    seed = 2024;
    int i;
    for (i = 0; i < BLOCK * NBLOCKS; i++) {
        int r = nextRand();
        if (r %% 3 == 0) {
            input[i] = (char)(r %% 16 + 97);
        } else {
            input[i] = (char)(input[(i + BLOCK - 1) %% (BLOCK * NBLOCKS)]);
        }
    }
}

int compressBlock(int blk, int *zptr) {
    int base = blk * BLOCK;
    int i;
    // Run-length encode the block into rleBuf.
    int n = 0;
    i = 0;
    while (i < BLOCK) {
        int c = input[base + i];
        int run = 1;
        while (i + run < BLOCK && input[base + i + run] == c && run < 255) {
            run++;
        }
        rleBuf[n] = c * 256 + run;
        n++;
        i += run;
    }
    // Symbol frequencies of the RLE output.
    for (i = 0; i < 256; i++) {
        freq[i] = 0;
    }
    for (i = 0; i < n; i++) {
        freq[rleBuf[i] / 256 & 255] += 1;
    }
    // Simple canonical-ish code lengths from frequencies.
    for (i = 0; i < 256; i++) {
        int f = freq[i];
        int len = 9;
        while (f > 0 && len > 2) {
            f = f / 2;
            len--;
        }
        codeTab[i] = len;
    }
    // Index transform through zptr: fill as int, consume as short
    // (the 256.bzip2 recast the paper discusses).
    for (i = 0; i < n; i++) {
        zptr[i] = (rleBuf[i] * 2654435761) %% 65536 * 65536 + i;
    }
    // Insertion sort of the low 16-bit keys region (kept tiny).
    int a;
    for (a = 1; a < n; a++) {
        int v = zptr[a];
        int b = a - 1;
        while (b >= 0 && zptr[b] > v) {
            zptr[b + 1] = zptr[b];
            b--;
        }
        zptr[b + 1] = v;
    }
    short *sp = (short*)zptr;
    int bits = 0;
    for (i = 0; i < n; i++) {
        int idx = sp[i * 2];
        if (idx < 0) { idx = 0 - idx; }
        bits += codeTab[rleBuf[idx %% n] / 256 & 255] * (rleBuf[idx %% n] & 255);
    }
    return bits / 8 + 1;
}

int compressStream() {
    int *zptr = (int*)malloc(BLOCK * 4);
    outCursor = 0;
    long crc = 0;
    int blk;
    parallel doacross for (blk = 0; blk < NBLOCKS; blk++) {
        int csize = compressBlock(blk, zptr);
        // Ordered commit: append to the output stream in block order.
        outStream[outCursor] = csize;
        outCursor = outCursor + 1;
        crc = crc * 131 + csize;
    }
    free(zptr);
    long out = crc;
    int i;
    for (i = 0; i < outCursor; i++) {
        out = out ^ (long)outStream[i] * (i + 1);
    }
    print_str("256.bzip2 ");
    print_long(out);
    print_char('\n');
    return (int)(out & 127);
}

int main() {
    initInput();
    return compressStream();
}
`
