package workloads

// H263Enc reproduces the MediaBench II h263-encoder, whose two hot
// loops the paper parallelizes separately (Table 4 lists NextTwoPB and
// MotionEstimatePicture, both DOALL at level 2). Between them six
// shared scratch structures are privatized (Table 5: h263-encoder = 6):
// three SAD/decision buffers in NextTwoPB and three candidate buffers
// in MotionEstimatePicture.
func H263Enc() *Workload {
	return &Workload{
		Name:            "h263-encoder",
		Suite:           "MediaBench II",
		Func:            "NextTwoPB",
		Level:           2,
		Parallelism:     "DOALL",
		PaperPrivatized: 6,
		PaperTimePct:    80.3, // 43.2% + 37.1% across the two loops
		Source:          h263Source,
	}
}

func h263Source(s Scale) string {
	mbs := pick(s, 4, 8, 170)
	frames := pick(s, 2, 3, 6)
	return sprintf(h263Template, mbs, frames)
}

// Template parameters: %[1]d = macroblocks per frame, %[2]d = frames.
const h263Template = `
int prevFrame[4096];
int nextFrame[4096];
int interpFrame[4096];

// NextTwoPB scratch (3 privatized structures).
int sadB[64];
int sadFwd[64];
int sadBwd[64];

// MotionEstimatePicture scratch (3 privatized structures).
int mvCand[49];
int mvCost[49];
int mePred[64];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initFrames() {
    seed = 99;
    int i;
    for (i = 0; i < 4096; i++) {
        prevFrame[i] = nextRand() %% 255;
        nextFrame[i] = (prevFrame[i] * 3 + nextRand() %% 17) %% 255;
        interpFrame[i] = (prevFrame[i] + nextFrame[i]) / 2;
    }
}

int clampPix(int idx) {
    if (idx < 0) { return 0; }
    if (idx >= 4096) { return 4095; }
    return idx;
}

// modeDecision decides the B/forward/backward coding mode for one MB.
int modeDecision(int mb) {
    int basePix = (mb * 64) %% 4096;
    int k;
    for (k = 0; k < 64; k++) {
        int p = prevFrame[clampPix(basePix + k)];
        int n = nextFrame[clampPix(basePix + k)];
        int b = interpFrame[clampPix(basePix + k)];
        int db = n - b;
        int df = n - p;
        int dw = p - b;
        if (db < 0) { db = 0 - db; }
        if (df < 0) { df = 0 - df; }
        if (dw < 0) { dw = 0 - dw; }
        sadB[k] = db;
        sadFwd[k] = df;
        sadBwd[k] = dw;
    }
    int sb = 0;
    int sf = 0;
    int sw = 0;
    for (k = 0; k < 64; k++) {
        sb += sadB[k];
        sf += sadFwd[k];
        sw += sadBwd[k];
    }
    if (sb <= sf && sb <= sw) { return 0 * 65536 + sb; }
    if (sf <= sw) { return 1 * 65536 + sf; }
    return 2 * 65536 + sw;
}

// searchMB searches motion vectors for one macroblock.
int searchMB(int mb) {
    int basePix = (mb * 64) %% 4096;
    int n = 0;
    int dx;
    int dy;
    for (dy = -3; dy <= 3; dy++) {
        for (dx = -3; dx <= 3; dx++) {
            mvCand[n] = dy * 64 + dx;
            n++;
        }
    }
    int c;
    int best = 0;
    for (c = 0; c < n; c++) {
        int k;
        int cost = 0;
        for (k = 0; k < 64; k++) {
            int cur = nextFrame[clampPix(basePix + k)];
            int ref = prevFrame[clampPix(basePix + k + mvCand[c])];
            int d = cur - ref;
            if (d < 0) { d = 0 - d; }
            cost += d;
        }
        mvCost[c] = cost;
        if (mvCost[c] < mvCost[best]) {
            best = c;
        }
    }
    int k;
    int acc = 0;
    for (k = 0; k < 64; k++) {
        mePred[k] = prevFrame[clampPix(basePix + k + mvCand[best])];
        acc += mePred[k];
    }
    return mvCost[best] * 16 + mvCand[best] + acc %% 13;
}

// NextTwoPB decides coding modes for one frame's macroblocks; its
// parallel loop is at level 2 (frame, macroblock), as in the paper.
void NextTwoPB(int *modes, int frame, int mbs) {
    int mb;
    parallel for (mb = 0; mb < mbs; mb++) {
        modes[frame * mbs + mb] = modeDecision(frame * mbs + mb);
    }
}

// MotionEstimatePicture searches motion vectors for one frame.
void MotionEstimatePicture(int *vectors, int frame, int mbs) {
    int mb;
    parallel for (mb = 0; mb < mbs; mb++) {
        vectors[frame * mbs + mb] = searchMB(frame * mbs + mb);
    }
}

int main() {
    initFrames();
    int total = %[1]d * %[2]d;
    int *modes = (int*)malloc(total * 4);
    int *vectors = (int*)malloc(total * 4);
    int frame;
    for (frame = 0; frame < %[2]d; frame++) {
        NextTwoPB(modes, frame, %[1]d);
        MotionEstimatePicture(vectors, frame, %[1]d);
    }
    long out = 0;
    int mb;
    for (mb = 0; mb < total; mb++) {
        out = out * 37 + modes[mb] + vectors[mb] * 3;
    }
    print_str("h263-encoder ");
    print_long(out);
    print_char('\n');
    free(modes);
    free(vectors);
    return 0;
}
`
