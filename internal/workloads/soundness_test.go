package workloads_test

// Soundness cross-check (DESIGN.md §2): the Andersen points-to
// analysis drives which structures are expanded, so for every access
// the profiler observed, the static points-to set must contain every
// heap allocation site the access dynamically touched. An unsound
// points-to would let the expansion pass redirect an access without
// expanding one of its targets — silent corruption.

import (
	"testing"

	"gdsx"
	"gdsx/internal/alias"
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/profile"
	"gdsx/internal/token"
	"gdsx/internal/workloads"
)

// ptrOf mirrors the expansion pass's base resolution: the pointer
// expression a deref-shaped access goes through, or nil for
// variable-rooted accesses.
func ptrOf(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			return ptrOf(x.X)
		}
		return x.X
	case *ast.Member:
		if x.Arrow {
			return x.X
		}
		return ptrOf(x.X)
	case *ast.Unary:
		if x.Op == token.MUL {
			return x.X
		}
	}
	return nil
}

func TestPointsToSoundOnWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := gdsx.Compile(w.Name+".c", w.Source(workloads.Test))
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			an := alias.Analyze(prog.AST, prog.Info)
			for _, loopID := range prog.ParallelLoops() {
				pr, err := prog.ProfileLoop(loopID, gdsx.RunOptions{})
				if err != nil {
					t.Fatalf("profile: %v", err)
				}
				for site, origins := range pr.Touched {
					as := prog.Info.Accesses[site]
					if as == nil || as.IsDef {
						continue
					}
					node, ok := as.Node.(ast.Expr)
					if !ok {
						continue
					}
					ptr := ptrOf(node)
					if ptr == nil {
						continue // variable-rooted: resolved syntactically
					}
					static := map[int]bool{}
					anyVar := false
					for _, o := range an.PointsTo(ptr) {
						switch o.Kind {
						case alias.ObjHeap:
							static[o.Site] = true
						case alias.ObjVar, alias.ObjStr:
							anyVar = true
						}
					}
					for o := range origins {
						if o.Kind == profile.OriginHeap && !static[o.Site] {
							t.Errorf("site %d (%q at %s): dynamically touched heap#%d "+
								"missing from static points-to %v",
								site, as.Text, as.Pos, o.Site, an.PointsTo(ptr))
						}
						if (o.Kind == profile.OriginGlobal || o.Kind == profile.OriginStack) &&
							!anyVar && len(static) == 0 {
							t.Errorf("site %d (%q): touched %v but static set empty",
								site, as.Text, o)
						}
					}
				}
			}
		})
	}
}
