package workloads

import (
	"fmt"
	"math"
	"strings"
)

// MD5 reproduces MiBench's md5 usage pattern: a DOALL loop hashes many
// independent messages. Every message is expanded into a shared global
// message-schedule buffer M[16] that is rewritten by each iteration —
// the single dynamic data structure the paper privatizes for md5
// (Table 5: md5 = 1).
func MD5() *Workload {
	return &Workload{
		Name:            "md5",
		Suite:           "MiBench",
		Func:            "main",
		Level:           1,
		Parallelism:     "DOALL",
		PaperPrivatized: 1,
		PaperTimePct:    99.8,
		Source:          md5Source,
	}
}

// md5Tables emits the MD5 K table and shift schedule as MiniC
// statements (MiniC has no array initializers).
func md5Tables() string {
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		k := uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * 4294967296.0))
		fmt.Fprintf(&sb, "    K[%d] = %d;\n", i, int64(k))
	}
	shifts := [4][4]int{
		{7, 12, 17, 22},
		{5, 9, 14, 20},
		{4, 11, 16, 23},
		{6, 10, 15, 21},
	}
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "    S[%d] = %d;\n", i, shifts[i/16][i%4])
	}
	return sb.String()
}

func md5Source(s Scale) string {
	msgs := pick(s, 12, 40, 1400)
	blocks := pick(s, 2, 3, 4)
	return sprintf(md5Template, md5Tables(), msgs, blocks)
}

// Template parameters: %[1]s = table init statements, %[2]d = message
// count, %[3]d = blocks per message.
const md5Template = `
unsigned int K[64];
int S[64];
unsigned int M[16];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initTables() {
%[1]s
}

unsigned int rotl(unsigned int x, int c) {
    return (x << c) | (x >> (32 - c));
}

unsigned int md5Message(int msg, int nblocks) {
    unsigned int a0 = 1732584193;
    unsigned int b0 = 4023233417;
    unsigned int c0 = 2562383102;
    unsigned int d0 = 271733878;
    int blk;
    for (blk = 0; blk < nblocks; blk++) {
        // Expand the message block into the shared schedule buffer.
        int w;
        unsigned int x = (unsigned int)(msg * 2654435761 + blk * 40503 + 12345);
        for (w = 0; w < 16; w++) {
            x = x * 1664525 + 1013904223;
            M[w] = x;
        }
        unsigned int A = a0;
        unsigned int B = b0;
        unsigned int C = c0;
        unsigned int D = d0;
        int i;
        for (i = 0; i < 64; i++) {
            unsigned int F;
            int g;
            if (i < 16) {
                F = (B & C) | (~B & D);
                g = i;
            } else if (i < 32) {
                F = (D & B) | (~D & C);
                g = (5 * i + 1) %% 16;
            } else if (i < 48) {
                F = B ^ C ^ D;
                g = (3 * i + 5) %% 16;
            } else {
                F = C ^ (B | ~D);
                g = (7 * i) %% 16;
            }
            F = F + A + K[i] + M[g];
            A = D;
            D = C;
            C = B;
            B = B + rotl(F, S[i]);
        }
        a0 = a0 + A;
        b0 = b0 + B;
        c0 = c0 + C;
        d0 = d0 + D;
    }
    return a0 ^ b0 ^ c0 ^ d0;
}

int main() {
    initTables();
    unsigned int *digests = (unsigned int*)malloc(%[2]d * 4);
    int msg;
    parallel for (msg = 0; msg < %[2]d; msg++) {
        digests[msg] = md5Message(msg, %[3]d);
    }
    unsigned int out = 0;
    for (msg = 0; msg < %[2]d; msg++) {
        out = out * 31 + digests[msg];
    }
    print_str("md5 ");
    print_long((long)out);
    print_char('\n');
    free(digests);
    return 0;
}
`
