package workloads

// Workloads for the adaptive speculation ladder: tiered guard
// sampling, runtime re-expansion, and commutative-update
// privatization. Unlike AdversarialAll's programs these are not in the
// plain guard-evaluation set — their violation patterns are
// scheduler-placement-dependent (window) or rare-per-region (escape),
// so the tests that drive them pin the schedule (SchedStatic) and the
// ladder configuration instead of asserting "violation at every
// thread count".

// AdaptiveAll returns the ladder-evaluation workloads.
func AdaptiveAll() []*Adversarial {
	return []*Adversarial{AdversarialEscape(), AdversarialWindow(), CommReduce()}
}

// AdversarialEscape exposes exactly one violating access per region
// execution, and only after the region has built a clean streak — the
// scenario tiered guard sampling must survive. The kernel is the
// stencil's thread-private scratch pattern, but the scratch writes are
// slot-determined (every writer of a slot stores the same value), so
// the region is idempotent: re-executing it from any committed state
// reproduces the same memory image, and the program's output depends
// only on the final execution. main runs the kernel REPS times; after
// CLEAN clean executions (enough for the sampled tier to engage) the
// exposing input (S=1) redirects iteration VIOL's read to scratch
// slot 8 — a slot no iteration writes. Sequentially that reads the
// pre-loop init value; in the expanded program the read lands in the
// accessing thread's copy, whose slot 8 is zero-filled — a
// stale-copy-read. Under full guarding every violating execution is
// caught; under sampling the violation escapes (and commits a corrupt
// but self-healing state) whenever iteration VIOL falls between
// sample points, until the rotating phase aligns, raises a suspicion,
// and escalates the region back to full guarding — after which every
// execution is caught and recovered, so the final state is
// sequential-identical. Run under SchedStatic: the placement of VIOL
// (thread nt/2 for the tested thread counts) is what makes the
// violation deterministic.
func AdversarialEscape() *Adversarial {
	return &Adversarial{
		Name:    "adversarial-escape",
		Profile: func(s Scale) string { return escapeSource(s, 0) },
		Expose:  func(s Scale) string { return escapeSource(s, 1) },
	}
}

func escapeSource(s Scale, stride int) string {
	n := pick(s, 96, 192, 4096)
	return sprintf(escapeTemplate, n, stride, n/2+1)
}

// Template parameters: %[1]d = iterations, %[2]d = exposing switch,
// %[3]d = the violating iteration.
const escapeTemplate = `
int N = %[1]d;
int STRIDE = %[2]d;
int VIOL = %[3]d;
int REPS = 10;
int CLEAN = 4;
int S = 0;

// Scratch: slots 0..7 are the thread-private pattern; slot 8 is never
// written inside the region (the exposing read's stale target).
long tmp[9];

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        tmp[i %% 8] = ((long)(i %% 8) + 1) * 2654435761 + 99991;
        long v = tmp[i %% 8 + S * (i == VIOL) * (8 - i %% 8)];
        out[i] = v %% 65536;
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    int j;
    for (j = 0; j < 9; j++) {
        tmp[j] = (long)(j + 1) * 1000003;
    }
    int r;
    for (r = 0; r < REPS; r++) {
        if (r >= CLEAN) {
            S = STRIDE;
        }
        kernel(out);
    }
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("adversarial-escape ");
    print_long(s);
    print_char('\n');
    free(out);
    return 0;
}
`

// AdversarialWindow confines its violations to one eight-iteration
// window, making them a function of the copy count — the scenario
// runtime re-expansion's copy-count move resolves. Iterations in
// [N/4, N/4+8) read the neighbouring scratch slot, whose sequential
// source is iteration i-7. Under SchedStatic with 4+ threads the
// window straddles a chunk boundary, so the source's write landed in
// another thread's copy: carried-flow and stale-copy-read violations
// at the same site pair, every region execution. With 2 threads the
// whole window and all its sources sit inside thread 0's chunk — the
// reads see their own copy's in-order writes, and the region is both
// clean and sequentially correct. An adaptive driver that halves the
// copy count after repeated same-pair strikes converts a
// demote-to-sequential region into a clean 2-thread parallel one.
func AdversarialWindow() *Adversarial {
	return &Adversarial{
		Name:    "adversarial-window",
		Profile: func(s Scale) string { return windowSource(s, 0) },
		Expose:  func(s Scale) string { return windowSource(s, 1) },
	}
}

func windowSource(s Scale, stride int) string {
	n := pick(s, 96, 192, 4096)
	return sprintf(windowTemplate, n, stride, n/4)
}

// Template parameters: %[1]d = iterations, %[2]d = exposing switch,
// %[3]d = window start.
const windowTemplate = `
int N = %[1]d;
int STRIDE = %[2]d;
int LO = %[3]d;
int REPS = 4;
int S = %[2]d;

// Heap scratch, touched only inside the parallel loop (never
// initialized outside it — every in-region read's source is an
// in-region write), so the re-expansion layout flip
// (bonded -> interleaved) is applicable to it.
long *tmp;

void kernel(long *out) {
    int i;
    parallel for (i = 0; i < N; i++) {
        tmp[i %% 8] = ((long)(i %% 8) + 1) * 2654435761 + 99991;
        long v = tmp[(i + S * (i >= LO) * (i < LO + 8)) %% 8];
        out[i] = v %% 65536;
    }
}

int main() {
    long *out = (long*)malloc(N * 8);
    tmp = (long*)malloc(64);
    int r;
    for (r = 0; r < REPS; r++) {
        kernel(out);
    }
    long s = 0;
    int i;
    for (i = 0; i < N; i++) {
        s = s * 31 + out[i];
    }
    print_str("adversarial-window ");
    print_long(s);
    print_char('\n');
    free(tmp);
    free(out);
    return 0;
}
`

// CommReduce is the commutative-update workload: a sum accumulator, a
// histogram and a running maximum, all updated with reduction-shaped
// operations inside a DOALL loop. The carried flow on all three is
// real — without commutative privatization a guarded run aborts (or
// rolls back) every region — but every update commutes, so the
// classifier marks the classes (Options.CommSites), the expansion
// plants __comm_note markers, and the commutative runtime gives each
// thread identity-initialized private copies merged at region exit:
// the loop runs clean, parallel, and beats sequential execution.
// Profile and Expose are the same program: the point is not a hidden
// dependence but a dependence expansion cannot remove. The kernel runs
// REPS times (the accumulators keep growing; the checksum covers the
// final state) so a clean streak exists for the sampling ladder to
// promote — the benchmark measures privatization composed with the
// sampled tier, the configuration a production reduction settles into.
func CommReduce() *Adversarial {
	src := func(s Scale) string {
		n := pick(s, 128, 256, 8192)
		return sprintf(commTemplate, n)
	}
	return &Adversarial{Name: "comm-reduce", Profile: src, Expose: src}
}

// Template parameter: %[1]d = iterations.
const commTemplate = `
int N = %[1]d;
int REPS = 6;

long total;
long hist[8];
long hi;

// Each iteration mixes its element through ROUNDS of a Lehmer-style
// recurrence before folding it into the accumulators. The mixing runs
// on a loop-local (register-promoted, never logged), so the iteration
// carries real parallelizable work and the three commutative updates
// are its only shared-memory traffic — the shape of a reduction worth
// parallelizing, rather than one that is all accumulator.
void kernel(long *a) {
    int i;
    parallel for (i = 0; i < N; i++) {
        long x = a[i];
        int t;
        for (t = 0; t < 16; t++) {
            x = (x * 1103515245 + 12345) %% 2147483647;
        }
        total += x;
        hist[i %% 8] += 1;
        if (x > hi) {
            hi = x;
        }
    }
}

int main() {
    long *a = (long*)malloc(N * 8);
    int i;
    for (i = 0; i < N; i++) {
        a[i] = ((long)i * 2654435761 + 99991) %% 100000;
    }
    total = 17;
    hi = -1;
    for (i = 0; i < 8; i++) {
        hist[i] = 0;
    }
    int r;
    for (r = 0; r < REPS; r++) {
        kernel(a);
    }
    long s = total * 1000003 + hi;
    for (i = 0; i < 8; i++) {
        s = s * 31 + hist[i];
    }
    print_str("comm-reduce ");
    print_long(s);
    print_char('\n');
    free(a);
    return 0;
}
`
