// Package workloads holds the eight MiniC benchmark programs that
// reproduce the loop and data-structure behaviour of the paper's
// Table 4 benchmarks (MiBench dijkstra and md5, MediaBench II
// mpeg2-encoder/decoder and h263-encoder, SPEC 256.bzip2, 456.hmmer and
// 470.lbm). Each program preserves the property that made its original
// interesting to the paper: the parallelism kind (DOALL/DOACROSS), the
// kind of contentious data structures (heap buffers, recast buffers,
// ambiguous allocation sites, globals, outer locals), and the number of
// structures Definition 5 privatizes (paper Table 5).
package workloads

import (
	"fmt"
	"strings"
)

// Scale selects the input size of a workload.
type Scale int

// Scales.
const (
	// Test is small enough for unit tests at any thread count.
	Test Scale = iota
	// Profile sizes the run for shadow-memory dependence profiling.
	ProfileScale
	// Bench sizes the run for the evaluation harness.
	BenchScale
)

// Workload describes one benchmark program.
type Workload struct {
	Name  string
	Suite string
	// Func is the function containing the parallelized loop(s), as in
	// the paper's Table 4.
	Func string
	// Level is the loop nesting level of the candidate loop (1 =
	// outermost), as reported in Table 4.
	Level int
	// Parallelism is "DOALL" or "DOACROSS".
	Parallelism string
	// PaperPrivatized is the number of privatized dynamic data
	// structures the paper reports in Table 5.
	PaperPrivatized int
	// PaperTimePct is the loop execution time share from Table 4.
	PaperTimePct float64
	// Source generates the MiniC program at a scale.
	Source func(Scale) string
}

// All returns the workloads in the paper's Table 4 order.
func All() []*Workload {
	return []*Workload{
		Dijkstra(),
		MD5(),
		MPEG2Enc(),
		MPEG2Dec(),
		H263Enc(),
		Bzip2(),
		Hmmer(),
		LBM(),
	}
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// LOC counts the non-blank source lines of the workload at bench scale
// (the paper's Table 4 reports benchmark code sizes the same way).
func (w *Workload) LOC() int {
	n := 0
	for _, line := range strings.Split(w.Source(BenchScale), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

func pick(s Scale, test, profile, bench int) int {
	switch s {
	case ProfileScale:
		return profile
	case BenchScale:
		return bench
	default:
		return test
	}
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
