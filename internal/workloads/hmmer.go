package workloads

// Hmmer reproduces SPEC CPU2006 456.hmmer's main_loop_serial: a
// DOACROSS loop scores one synthetic protein sequence per iteration
// against a profile HMM with a Viterbi dynamic program. Eight shared
// structures are rewritten by every iteration (Table 5: 456.hmmer = 8):
// the digitized sequence, the three DP rows (match/insert/delete), the
// special-state vector, the trace and score buffers, and the mx
// scratch buffer — which is allocated before the loop at one of two
// runtime-sized allocation sites, the paper's Figure 3 case that forces
// fat-pointer promotion with runtime spans. The running best score is
// tracked across iterations, forming the ordered section.
func Hmmer() *Workload {
	return &Workload{
		Name:            "456.hmmer",
		Suite:           "SPEC CPU2006",
		Func:            "main_loop_serial",
		Level:           2,
		Parallelism:     "DOACROSS",
		PaperPrivatized: 8,
		PaperTimePct:    99.9,
		Source:          hmmerSource,
	}
}

func hmmerSource(s Scale) string {
	m := pick(s, 16, 24, 48) // model length
	l := pick(s, 24, 32, 64) // sequence length
	n := pick(s, 6, 14, 220) // sequences
	return sprintf(hmmerTemplate, m, l, n)
}

// Template parameters: %[1]d = model length M, %[2]d = sequence length
// L, %[3]d = sequence count.
const hmmerTemplate = `
int M = %[1]d;
int L = %[2]d;

int matScore[%[1]d * 20];
int insScore[%[1]d * 20];
int trMove[%[1]d * 8];

// The eight structures privatized per sequence.
int dsq[%[2]d];
int mmx[%[1]d + 1];
int imx[%[1]d + 1];
int dmx[%[1]d + 1];
int xmx[5];
int tr[%[2]d + %[1]d];
int sc[%[2]d];
// ...plus the mx scratch buffer allocated in main_loop_serial.

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initModel() {
    seed = 456;
    int k;
    for (k = 0; k < M * 20; k++) {
        matScore[k] = nextRand() %% 64 - 24;
        insScore[k] = nextRand() %% 32 - 20;
    }
    for (k = 0; k < M * 8; k++) {
        trMove[k] = nextRand() %% 16 - 10;
    }
}

int max2(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int viterbi(int s, int *mx) {
    int i;
    int k;
    // Digitize the sequence into the shared buffer.
    long sq = s * 2654435761 + 12345;
    for (i = 0; i < L; i++) {
        sq = sq * 6364136223846793005 + 1442695040888963407;
        dsq[i] = (int)((sq >> 33) %% 20);
        if (dsq[i] < 0) { dsq[i] = 0 - dsq[i]; }
    }
    for (k = 0; k <= M; k++) {
        mmx[k] = -100000;
        imx[k] = -100000;
        dmx[k] = -100000;
    }
    mmx[0] = 0;
    xmx[0] = 0;
    xmx[1] = -100000;
    xmx[2] = -100000;
    xmx[3] = -100000;
    xmx[4] = -100000;
    int ntr = 0;
    for (i = 0; i < L; i++) {
        int x = dsq[i];
        int prevM = mmx[0];
        int prevI = imx[0];
        int prevD = dmx[0];
        mmx[0] = xmx[0];
        for (k = 1; k <= M; k++) {
            int curM = mmx[k];
            int curI = imx[k];
            int curD = dmx[k];
            int best = max2(prevM + trMove[(k - 1) * 8],
                            max2(prevI + trMove[(k - 1) * 8 + 1],
                                 prevD + trMove[(k - 1) * 8 + 2]));
            mmx[k] = best + matScore[(k - 1) * 20 + x];
            imx[k] = max2(curM + trMove[(k - 1) * 8 + 3],
                          curI + trMove[(k - 1) * 8 + 4]) + insScore[(k - 1) * 20 + x];
            dmx[k] = max2(mmx[k - 1] + trMove[(k - 1) * 8 + 5],
                          dmx[k - 1] + trMove[(k - 1) * 8 + 6]);
            // Record the winning move in the mx scratch row.
            mx[k %% (M + 1)] = best;
            prevM = curM;
            prevI = curI;
            prevD = curD;
        }
        xmx[1] = max2(xmx[1], mmx[M]);
        sc[i] = xmx[1];
        if (ntr < L + M) {
            // Indices 1..M only: every one is written by the k loop of
            // this same iteration before this read.
            tr[ntr] = mx[i %% M + 1];
            ntr++;
        }
    }
    int total = xmx[1];
    for (i = 0; i < L; i++) {
        total += sc[i] / 64;
    }
    for (i = 0; i < ntr; i++) {
        total += tr[i] / 256;
    }
    return total;
}

int main_loop_serial(int nseq) {
    // Figure 3: the scratch buffer comes from one of two differently
    // sized allocation sites; the choice is made at run time, so its
    // span is only known dynamically.
    int *mx;
    int m1 = (M + 1) * 4;
    int m2 = (M + 1) * 8 + nextRand() %% 8 * 4;
    if (nextRand() %% 2 == 0) {
        mx = (int*)malloc(m1);
    } else {
        mx = (int*)malloc(m2);
    }
    int best = -100000000;
    int bestIdx = -1;
    long hist = 0;
    int s;
    parallel doacross for (s = 0; s < nseq; s++) {
        int score = viterbi(s, mx);
        if (score > best) {
            best = score;
            bestIdx = s;
        }
        hist = hist * 31 + score;
    }
    free(mx);
    print_str("456.hmmer ");
    print_long(hist * 1000 + best %% 997 + bestIdx);
    print_char('\n');
    return 0;
}

int main() {
    initModel();
    return main_loop_serial(%[3]d);
}
`
