package workloads

// LBM reproduces SPEC CPU2006 470.lbm's performStreamCollide: a DOALL
// loop over grid rows streams and collides a D2Q9 lattice-Boltzmann
// distribution from a source grid into a destination grid. Two shared
// per-cell scratch structures are privatized (Table 5: 470.lbm = 2):
// the equilibrium distribution feq[9] and the velocity vector uv[2].
// The loop is extremely memory-intensive — the paper reports its
// speedup plateauing beyond 4 cores on memory bandwidth, which the
// schedule simulator's bandwidth bound reproduces.
func LBM() *Workload {
	return &Workload{
		Name:            "470.lbm",
		Suite:           "SPEC CPU2006",
		Func:            "performStreamCollide",
		Level:           2,
		Parallelism:     "DOALL",
		PaperPrivatized: 2,
		PaperTimePct:    99.1,
		Source:          lbmSource,
	}
}

func lbmSource(s Scale) string {
	w := pick(s, 12, 16, 40)
	h := pick(s, 8, 12, 40)
	steps := pick(s, 2, 3, 12)
	return sprintf(lbmTemplate, w, h, steps)
}

// Template parameters: %[1]d = width, %[2]d = height, %[3]d = steps.
const lbmTemplate = `
int W = %[1]d;
int H = %[2]d;

// The two structures privatized per cell update.
double feq[9];
double uv[2];

int cx[9];
int cy[9];
double wgt[9];

long seed;

int nextRand() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 32767);
}

void initLattice() {
    cx[0] = 0;  cy[0] = 0;  wgt[0] = 0.444444;
    cx[1] = 1;  cy[1] = 0;  wgt[1] = 0.111111;
    cx[2] = 0;  cy[2] = 1;  wgt[2] = 0.111111;
    cx[3] = -1; cy[3] = 0;  wgt[3] = 0.111111;
    cx[4] = 0;  cy[4] = -1; wgt[4] = 0.111111;
    cx[5] = 1;  cy[5] = 1;  wgt[5] = 0.027778;
    cx[6] = -1; cy[6] = 1;  wgt[6] = 0.027778;
    cx[7] = -1; cy[7] = -1; wgt[7] = 0.027778;
    cx[8] = 1;  cy[8] = -1; wgt[8] = 0.027778;
}

void initGrid(double *grid) {
    seed = 470;
    int i;
    for (i = 0; i < W * H * 9; i++) {
        grid[i] = wgt[i %% 9] * (1.0 + (double)(nextRand() %% 100) / 1000.0);
    }
}

void performStreamCollide(double *src, double *dst) {
    int y;
    parallel for (y = 0; y < H; y++) {
        int x;
        for (x = 0; x < W; x++) {
            int cell = (y * W + x) * 9;
            // Macroscopic density and velocity.
            double rho = 0.0;
            double ux = 0.0;
            double uy_ = 0.0;
            int q;
            for (q = 0; q < 9; q++) {
                double f = src[cell + q];
                rho += f;
                ux += f * (double)cx[q];
                uy_ += f * (double)cy[q];
            }
            if (rho < 0.000001) { rho = 0.000001; }
            uv[0] = ux / rho;
            uv[1] = uy_ / rho;
            double usq = uv[0] * uv[0] + uv[1] * uv[1];
            // Equilibrium distribution.
            for (q = 0; q < 9; q++) {
                double cu = uv[0] * (double)cx[q] + uv[1] * (double)cy[q];
                feq[q] = wgt[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq);
            }
            // Collide and stream into the destination grid.
            for (q = 0; q < 9; q++) {
                int nx = (x + cx[q] + W) %% W;
                int ny = (y + cy[q] + H) %% H;
                double f = src[cell + q];
                dst[(ny * W + nx) * 9 + q] = f - (f - feq[q]) / 1.85;
            }
        }
    }
}

int main() {
    initLattice();
    double *g0 = (double*)malloc(W * H * 9 * 8);
    double *g1 = (double*)malloc(W * H * 9 * 8);
    initGrid(g0);
    int t;
    for (t = 0; t < %[3]d; t++) {
        if (t %% 2 == 0) {
            performStreamCollide(g0, g1);
        } else {
            performStreamCollide(g1, g0);
        }
    }
    double mass = 0.0;
    double mom = 0.0;
    int i;
    double *final = g0;
    if (%[3]d %% 2 == 1) { final = g1; }
    for (i = 0; i < W * H * 9; i++) {
        mass += final[i];
        mom += final[i] * (double)cx[i %% 9];
    }
    long out = (long)(mass * 1000.0) * 100000 + (long)(mom * 1000.0);
    print_str("470.lbm ");
    print_long(out);
    print_char('\n');
    free(g0);
    free(g1);
    return 0;
}
`
