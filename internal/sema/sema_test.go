package sema

import (
	"strings"
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/parser"
)

func mustCheck(t *testing.T, src string) (*ast.Program, *Info) {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog, info
}

func TestAccessSites(t *testing.T) {
	_, info := mustCheck(t, `
int g;
int main() {
    int x = 1;      // store to x (init is handled at decl, no site)
    int *p = &x;
    *p = 2;         // store via deref, load of p
    x = x + g;      // store x, load x, load g
    return x;       // load x
}`)
	loads, stores, defs := 0, 0, 0
	for _, a := range info.Accesses {
		switch {
		case a.IsDef:
			defs++
		case a.IsStore:
			stores++
		default:
			loads++
		}
	}
	// Stores: *p, x. Loads: p (in *p), x, g, x (return), and &x operand
	// produces none. Defs: the declarations of x and p.
	if stores != 2 {
		t.Errorf("stores = %d, want 2", stores)
	}
	if defs != 2 {
		t.Errorf("defs = %d, want 2", defs)
	}
	if loads != 4 {
		t.Errorf("loads = %d, want 4", loads)
	}
}

func TestCompoundAssignHasLoadAndStore(t *testing.T) {
	_, info := mustCheck(t, `
int main() {
    int a[4];
    a[1] += 2;
    return 0;
}`)
	var both int
	for _, a := range info.Accesses {
		if idx, ok := a.Node.(*ast.Index); ok && a.IsStore && idx.Acc.Load > 0 && idx.Acc.Store > 0 {
			both++
		}
	}
	if both != 1 {
		t.Fatalf("compound-assigned index sites = %d, want 1", both)
	}
}

func TestLoopNesting(t *testing.T) {
	_, info := mustCheck(t, `
int main() {
    int i;
    int j;
    int s;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 3; j++) {
            s += i * j;
        }
    }
    return s;
}`)
	// The s += access sites must be nested in two loops.
	found := false
	for _, a := range info.Accesses {
		if a.Text == "s" && len(a.Loops) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no access to s recorded under two loops")
	}
}

func TestIndVarDetection(t *testing.T) {
	prog, _ := mustCheck(t, `
int main() {
    int i;
    int a[8];
    parallel for (i = 0; i < 8; i++) { a[i] = i; }
    return 0;
}`)
	var iv *ast.Symbol
	ast.Inspect(prog, func(n ast.Node) bool {
		if f, ok := n.(*ast.For); ok && f.Par == ast.DOALL {
			iv = f.IndVar
		}
		return true
	})
	if iv == nil || iv.Name != "i" {
		t.Fatalf("IndVar = %v, want i", iv)
	}
}

func TestAllocSites(t *testing.T) {
	_, info := mustCheck(t, `
int main() {
    int *a = (int*)malloc(40);
    int *b = (int*)calloc(10, 4);
    a = (int*)realloc(a, 80);
    free(a);
    free(b);
    return 0;
}`)
	if len(info.Allocs) != 3 {
		t.Fatalf("alloc sites = %d, want 3", len(info.Allocs))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined", "int main() { return x; }", "undefined: x"},
		{"redecl", "int main() { int x; int x; return 0; }", "redeclared"},
		{"bad field", "struct s { int a; }; int main() { struct s v; v.b = 1; return 0; }", "no field b"},
		{"assign to literal", "int main() { 3 = 4; return 0; }", "not assignable"},
		{"return in parallel", "int main() { int i; parallel for (i=0;i<2;i++) { return 1; } return 0; }", "return inside a parallel loop"},
		{"bad indvar", "double d; int main() { parallel for (d = 0; d < 2; d += 1) { } return 0; }", "induction variable"},
		{"no main", "int f() { return 0; }", "no main"},
		{"arg count", "int f(int a) { return a; } int main() { return f(1, 2); }", "expects 1 arguments"},
		{"ptr mismatch", "int main() { double *d; int *p; p = d; return 0; }", "incompatible pointer"},
		{"deref int", "int main() { int x; return *x; }", "dereferencing non-pointer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse("e.c", tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = Check(prog)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestVoidPtrImplicit(t *testing.T) {
	mustCheck(t, `
int main() {
    int *p = (int*)malloc(8);
    void *v = p;
    p = v;
    free(p);
    return 0;
}`)
}
