package sema

import (
	"strings"
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/parser"
)

func TestStructParamsAndReturns(t *testing.T) {
	mustCheck(t, `
struct pair { int a; int b; };
struct pair mk(int x) {
    struct pair p;
    p.a = x;
    p.b = x + 1;
    return p;
}
int use(struct pair p) { return p.a + p.b; }
int main() {
    struct pair v = mk(1);
    return use(v) + mk(2).a;
}`)
}

func TestVoidFunctions(t *testing.T) {
	_, info := mustCheck(t, `
int g;
void bump() { g++; }
void bump2() { g++; return; }
int main() {
    bump();
    bump2();
    return g;
}`)
	_ = info
}

func TestMissingReturnValue(t *testing.T) {
	prog, err := parser.Parse("t.c", "int f() { return; } int main() { return f(); }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "missing return value") {
		t.Fatalf("err = %v", err)
	}
}

func TestPseudoVariables(t *testing.T) {
	_, info := mustCheck(t, `
int main() {
    int n = __nthreads;
    int t = __tid;
    return n + t;
}`)
	if info.TID == nil || info.NTH == nil {
		t.Fatal("pseudo symbols missing")
	}
	// Pseudo-variables are registers: no access sites on their reads.
	for _, a := range info.Accesses {
		if a.Text == "__tid" || a.Text == "__nthreads" {
			t.Fatalf("pseudo-variable got an access site: %+v", a)
		}
	}
}

func TestPseudoVariablesReadOnly(t *testing.T) {
	prog, err := parser.Parse("t.c", "int main() { __tid = 1; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v", err)
	}
}

func TestParamDefSites(t *testing.T) {
	_, info := mustCheck(t, `
int f(int a, int *p) { return a + *p; }
int main() { int x = 1; return f(2, &x); }`)
	defs := 0
	for _, a := range info.Accesses {
		if a.IsDef {
			if d, ok := a.Node.(*ast.VarDecl); ok && d.Sym != nil && d.Sym.Kind == ast.SymParam {
				defs++
			}
		}
	}
	if defs != 2 {
		t.Fatalf("param def sites = %d, want 2", defs)
	}
}

func TestAllocDefSites(t *testing.T) {
	_, info := mustCheck(t, `
int main() {
    int *p = (int*)malloc(8);
    p = (int*)realloc(p, 16);
    free(p);
    return 0;
}`)
	allocDefs := 0
	for _, a := range info.Accesses {
		if a.IsDef {
			if _, ok := a.Node.(*ast.Call); ok {
				allocDefs++
			}
		}
	}
	if allocDefs != 2 {
		t.Fatalf("alloc def sites = %d, want 2 (malloc + realloc)", allocDefs)
	}
}

func TestAccessLoopsLexical(t *testing.T) {
	_, info := mustCheck(t, `
int g;
int helper() { return g; }
int main() {
	int i;
	parallel for (i = 0; i < 4; i++) {
		g = helper();
	}
	return 0;
}`)
	// The g load inside helper is lexically outside the loop.
	for _, a := range info.Accesses {
		if a.Text == "g" && !a.IsStore && a.Func != nil && a.Func.Name == "helper" {
			if len(a.Loops) != 0 {
				t.Fatalf("callee access has lexical loops %v", a.Loops)
			}
		}
		if a.Text == "g" && a.IsStore {
			if len(a.Loops) != 1 {
				t.Fatalf("loop store has lexical loops %v", a.Loops)
			}
		}
	}
}

func TestParallelForms(t *testing.T) {
	// Accepted induction forms: i++, i += c, i = i + c.
	for _, post := range []string{"i++", "i += 2", "i = i + 3"} {
		src := `
int main() {
    int i;
    int a[64];
    parallel for (i = 0; i < 60; ` + post + `) { a[i] = 1; }
    return 0;
}`
		prog, err := parser.Parse("t.c", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Check(prog); err != nil {
			t.Fatalf("post %q rejected: %v", post, err)
		}
	}
	// Rejected: decrement-only via i--.
	prog, err := parser.Parse("t.c", `
int main() {
    int i;
    parallel for (i = 4; i > 0; i--) { }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil {
		t.Fatal("i-- post should be rejected (use i += -1)")
	}
}

func TestShadowingScopes(t *testing.T) {
	_, info := mustCheck(t, `
int x;
int main() {
    int x = 1;
    {
        int x = 2;
        x = 3;
    }
    return x;
}`)
	// Three distinct x symbols: one global, two locals.
	syms := map[*ast.Symbol]bool{}
	for _, a := range info.Accesses {
		if id, ok := a.Node.(*ast.Ident); ok && id.Name == "x" {
			syms[id.Sym] = true
		}
		if d, ok := a.Node.(*ast.VarDecl); ok && d.Name == "x" {
			syms[d.Sym] = true
		}
	}
	if len(syms) < 2 {
		t.Fatalf("shadowed x symbols = %d", len(syms))
	}
}

func TestCharTypeOfStringIndex(t *testing.T) {
	prog, _ := mustCheck(t, `
int main() {
    char *s = "ab";
    return s[0];
}`)
	var idx *ast.Index
	ast.Inspect(prog, func(n ast.Node) bool {
		if i, ok := n.(*ast.Index); ok {
			idx = i
		}
		return true
	})
	if idx.ExprType().Kind != ctypes.Char {
		t.Fatalf("s[0] type = %v", idx.ExprType())
	}
}

func TestParallelBoundsMustBePure(t *testing.T) {
	for _, src := range []string{
		`int f() { return 4; } int main() { int i; int a[8]; parallel for (i = 0; i < f(); i++) { a[i] = 1; } return 0; }`,
		`int f() { return 2; } int main() { int i; int a[99]; parallel for (i = 0; i < 8; i += f()) { a[i] = 1; } return 0; }`,
	} {
		prog, err := parser.Parse("t.c", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "pure expression") {
			t.Fatalf("impure bounds accepted: %v", err)
		}
	}
}
