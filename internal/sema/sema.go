// Package sema performs semantic analysis of MiniC programs: name
// resolution with lexical scoping, type checking, slot assignment for
// activation records, and the numbering of memory-access sites,
// allocation sites and loops that the dependence profiler and the
// expansion pass key on.
package sema

import (
	"errors"
	"fmt"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/ddg"
	"gdsx/internal/token"
)

// AccessSite describes one static memory access (one direction of one
// expression node, or the implicit definition performed by a local
// declaration or heap allocation). Access sites are the vertices of
// the loop-level data dependence graph.
type AccessSite struct {
	ID      int
	IsStore bool
	Node    ast.Node // *ast.Ident, *ast.Index, *ast.Member, *ast.Unary, *ast.VarDecl or *ast.Call
	Pos     token.Pos
	Func    *ast.FuncDecl
	Text    string // printable form of the accessed expression
	// Loops contains the IDs of all loops lexically enclosing the
	// access, innermost last.
	Loops []int
	// IsDef marks implicit definition sites (declarations and heap
	// allocations) that exist only so the profiler sees fresh storage
	// as written; they are never redirected.
	IsDef bool
	// Comm marks the site as a commutative update: the load/store pair
	// of an integer += / -= / ++ / -- (CommAdd) or of a guarded
	// min/max update pattern (CommMin/CommMax). The classifier promotes
	// classes made entirely of same-operator commutative sites to
	// privatizable reductions (see ddg.Options.CommSites).
	Comm ddg.CommOp
}

// LoopInfo describes one loop in the program.
type LoopInfo struct {
	ID   int
	Stmt ast.Stmt // *ast.For, *ast.While or *ast.DoWhile
	Func *ast.FuncDecl
	Par  ast.ParKind
}

// Info is the result of Check.
type Info struct {
	Prog     *ast.Program
	Loops    map[int]*LoopInfo
	Accesses map[int]*AccessSite // by access ID
	Allocs   map[int]*ast.Call   // by allocation-site ID
	Globals  []*ast.VarDecl
	TID      *ast.Symbol // the __tid pseudo-variable
	NTH      *ast.Symbol // the __nthreads pseudo-variable
}

// Check analyzes prog in place: it resolves identifiers, types every
// expression, assigns access/alloc/loop identifiers, and returns the
// collected tables. The program must contain a main() function.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:     prog,
			Loops:    map[int]*LoopInfo{},
			Accesses: map[int]*AccessSite{},
			Allocs:   map[int]*ast.Call{},
		},
		globals:  map[string]*ast.Symbol{},
		builtins: map[string]*ast.Symbol{},
	}
	c.declareBuiltins()
	if err := c.program(prog); err != nil {
		return nil, err
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	prog.NumAccesses = c.accessID
	prog.NumAllocSites = c.allocID
	return c.info, nil
}

type checker struct {
	info     *Info
	globals  map[string]*ast.Symbol
	builtins map[string]*ast.Symbol
	errs     []error

	fn        *ast.FuncDecl
	scopes    []map[string]*ast.Symbol
	slotCount int
	loopStack []int // enclosing loop IDs, innermost last
	parDepth  int   // > 0 inside a parallel loop body
	loopDepth int   // loop nesting inside current function
	accessID  int
	allocID   int
	globalIdx int
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) declareBuiltins() {
	voidPtr := ctypes.PointerTo(ctypes.VoidType)
	charPtr := ctypes.PointerTo(ctypes.CharType)
	l, i, d, v := ctypes.LongType, ctypes.IntType, ctypes.DoubleType, ctypes.VoidType
	decl := func(name string, b ast.BuiltinKind, ret *ctypes.Type, params ...*ctypes.Type) {
		c.builtins[name] = &ast.Symbol{
			Name: name, Kind: ast.SymBuiltin, Builtin: b,
			Type: ctypes.FuncOf(ret, params),
		}
	}
	decl("malloc", ast.BMalloc, voidPtr, l)
	decl("calloc", ast.BCalloc, voidPtr, l, l)
	decl("realloc", ast.BRealloc, voidPtr, voidPtr, l)
	decl("free", ast.BFree, v, voidPtr)
	decl("memset", ast.BMemset, v, voidPtr, i, l)
	decl("memcpy", ast.BMemcpy, v, voidPtr, voidPtr, l)
	decl("print_int", ast.BPrintInt, v, i)
	decl("print_long", ast.BPrintLong, v, l)
	decl("print_double", ast.BPrintDouble, v, d)
	decl("print_char", ast.BPrintChar, v, i)
	decl("print_str", ast.BPrintStr, v, charPtr)
	decl("sqrt", ast.BSqrt, d, d)
	decl("fabs", ast.BFabs, d, d)
	decl("abs", ast.BAbs, i, i)
	// Guarded-expansion markers (see ast.BExpandMalloc/BExpandNote).
	decl("__expand_malloc", ast.BExpandMalloc, voidPtr, l, l)
	decl("__expand_note", ast.BExpandNote, v, voidPtr, l, l)
	// Commutative-update marker (see ast.BCommNote).
	decl("__comm_note", ast.BCommNote, v, voidPtr, l, l, l)

	c.info.TID = &ast.Symbol{Name: "__tid", Kind: ast.SymTID, Type: ctypes.IntType}
	c.info.NTH = &ast.Symbol{Name: "__nthreads", Kind: ast.SymNTH, Type: ctypes.IntType}
	c.builtins["__tid"] = c.info.TID
	c.builtins["__nthreads"] = c.info.NTH
}

func (c *checker) program(prog *ast.Program) error {
	// Pass 1: declare globals and functions.
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.VarDecl:
			if _, dup := c.globals[x.Name]; dup {
				c.errf(x.Pos(), "global %s redeclared", x.Name)
				continue
			}
			if x.VLALen != nil {
				c.errf(x.Pos(), "global %s has dynamic array size", x.Name)
			}
			sym := &ast.Symbol{
				Name: x.Name, Kind: ast.SymGlobal, Type: x.Type,
				Index: c.globalIdx, Decl: x,
			}
			c.globalIdx++
			x.Sym = sym
			c.globals[x.Name] = sym
			c.info.Globals = append(c.info.Globals, x)
		case *ast.FuncDecl:
			if _, dup := c.globals[x.Name]; dup {
				c.errf(x.Pos(), "%s redeclared", x.Name)
				continue
			}
			var params []*ctypes.Type
			for _, p := range x.Params {
				params = append(params, p.Type)
			}
			sym := &ast.Symbol{
				Name: x.Name, Kind: ast.SymFunc,
				Type: ctypes.FuncOf(x.Ret, params), Fn: x,
			}
			x.Sym = sym
			c.globals[x.Name] = sym
		}
	}
	// Pass 2: check global initializers (constants only).
	for _, d := range prog.Decls {
		if v, ok := d.(*ast.VarDecl); ok && v.Init != nil {
			init := c.expr(v.Init, rvalue)
			v.Init = init
			if init.ExprType() != nil && !isConstExpr(init) {
				c.errf(v.Pos(), "global initializer for %s is not constant", v.Name)
			}
			c.checkAssignable(v.Pos(), v.Type, init)
		}
	}
	// Pass 3: check function bodies.
	for _, d := range prog.Decls {
		if f, ok := d.(*ast.FuncDecl); ok {
			c.function(f)
		}
	}
	if prog.Func("main") == nil {
		c.errf(token.Pos{File: prog.File}, "program has no main function")
	}
	return nil
}

func isConstExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit:
		return true
	case *ast.Unary:
		return x.Op != token.MUL && x.Op != token.AND && isConstExpr(x.X)
	case *ast.Binary:
		return isConstExpr(x.X) && isConstExpr(x.Y)
	case *ast.Cast:
		return isConstExpr(x.X)
	case *ast.SizeofType:
		return true
	}
	return false
}

func (c *checker) function(f *ast.FuncDecl) {
	c.fn = f
	c.slotCount = 0
	c.scopes = []map[string]*ast.Symbol{{}}
	c.loopStack = nil
	c.parDepth = 0
	for _, p := range f.Params {
		if c.lookupLocal(p.Name) != nil {
			c.errf(p.Pos(), "parameter %s redeclared", p.Name)
			continue
		}
		sym := &ast.Symbol{
			Name: p.Name, Kind: ast.SymParam, Type: p.Type,
			Index: c.slotCount, Decl: p,
		}
		c.slotCount++
		p.Sym = sym
		c.scopes[0][p.Name] = sym
		// Binding an argument defines the parameter slot afresh on
		// every call; the profiler needs the definition site so reused
		// slots carry no stale shadow history (see package profile).
		c.accessID++
		p.Acc.Store = c.accessID
		c.info.Accesses[c.accessID] = &AccessSite{
			ID: c.accessID, IsStore: true, Node: p, Pos: p.Pos(), Func: f,
			Text: p.Name + " (param)", IsDef: true,
		}
	}
	c.stmt(f.Body)
	f.NumSlots = c.slotCount
	c.fn = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*ast.Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) *ast.Symbol {
	return c.scopes[len(c.scopes)-1][name]
}

func (c *checker) lookup(name string) *ast.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s := c.scopes[i][name]; s != nil {
			return s
		}
	}
	if s := c.globals[name]; s != nil {
		return s
	}
	return c.builtins[name]
}

func (c *checker) declareLocal(d *ast.VarDecl) {
	if c.lookupLocal(d.Name) != nil {
		c.errf(d.Pos(), "%s redeclared in this scope", d.Name)
		return
	}
	sym := &ast.Symbol{
		Name: d.Name, Kind: ast.SymLocal, Type: d.Type,
		Index: c.slotCount, Decl: d,
	}
	c.slotCount++
	d.Sym = sym
	c.scopes[len(c.scopes)-1][d.Name] = sym
	// Executing the declaration defines a fresh zeroed object; the
	// profiler needs that definition as a store site so that stack
	// addresses reused across iterations do not leak stale shadow
	// state (see package profile).
	c.accessID++
	d.Acc.Store = c.accessID
	c.info.Accesses[c.accessID] = &AccessSite{
		ID: c.accessID, IsStore: true, Node: d, Pos: d.Pos(), Func: c.fn,
		Text: d.Name + " (decl)", Loops: append([]int(nil), c.loopStack...),
		IsDef: true,
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		c.pushScope()
		for _, st := range x.Stmts {
			c.stmt(st)
		}
		c.popScope()
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			if d.VLALen != nil {
				d.VLALen = c.expr(d.VLALen, rvalue)
				if t := d.VLALen.ExprType(); t != nil && !t.IsInteger() {
					c.errf(d.Pos(), "array length of %s is not an integer", d.Name)
				}
			}
			if d.Init != nil {
				d.Init = c.expr(d.Init, rvalue)
				c.checkAssignable(d.Pos(), d.Type, d.Init)
			}
			c.declareLocal(d)
		}
	case *ast.ExprStmt:
		x.X = c.expr(x.X, rvalue)
	case *ast.If:
		x.Cond = c.expr(x.Cond, rvalue)
		c.wantScalar(x.Cond)
		c.stmt(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
		c.markCommMinMax(x)
	case *ast.For:
		c.forStmt(x)
	case *ast.While:
		x.Cond = c.expr(x.Cond, rvalue)
		c.wantScalar(x.Cond)
		c.enterLoop(x.ID, ast.Sequential, x)
		c.stmt(x.Body)
		c.exitLoop()
	case *ast.DoWhile:
		c.enterLoop(x.ID, ast.Sequential, x)
		c.stmt(x.Body)
		c.exitLoop()
		x.Cond = c.expr(x.Cond, rvalue)
		c.wantScalar(x.Cond)
	case *ast.Return:
		if c.parDepth > 0 {
			c.errf(x.Pos(), "return inside a parallel loop")
		}
		if x.X != nil {
			x.X = c.expr(x.X, rvalue)
			c.checkAssignable(x.Pos(), c.fn.Ret, x.X)
		} else if c.fn.Ret.Kind != ctypes.Void {
			c.errf(x.Pos(), "missing return value in %s", c.fn.Name)
		}
	case *ast.Break, *ast.Continue:
		if len(c.loopStack) == 0 {
			c.errf(x.Pos(), "break/continue outside a loop")
		}
	case *ast.SyncWait, *ast.SyncPost:
		// Inserted by passes; nothing to check.
	}
}

func (c *checker) enterLoop(id int, par ast.ParKind, s ast.Stmt) {
	c.loopStack = append(c.loopStack, id)
	c.info.Loops[id] = &LoopInfo{ID: id, Stmt: s, Func: c.fn, Par: par}
	if par != ast.Sequential {
		c.parDepth++
	}
}

func (c *checker) exitLoop() {
	id := c.loopStack[len(c.loopStack)-1]
	c.loopStack = c.loopStack[:len(c.loopStack)-1]
	if c.info.Loops[id].Par != ast.Sequential {
		c.parDepth--
	}
}

func (c *checker) forStmt(x *ast.For) {
	c.pushScope() // for-init scope
	if x.Init != nil {
		c.stmt(x.Init)
	}
	if x.Cond != nil {
		x.Cond = c.expr(x.Cond, rvalue)
		c.wantScalar(x.Cond)
	}
	if x.Post != nil {
		x.Post = c.expr(x.Post, rvalue)
	}
	if x.Par != ast.Sequential {
		c.bindIndVar(x)
	}
	c.enterLoop(x.ID, x.Par, x)
	c.stmt(x.Body)
	c.exitLoop()
	c.popScope()
}

// bindIndVar identifies the induction variable of a parallel for loop:
// Init must assign or declare a single integer local, Cond must compare
// it, and Post must step it.
func (c *checker) bindIndVar(x *ast.For) {
	var sym *ast.Symbol
	switch init := x.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) == 1 {
			sym = init.Decls[0].Sym
		}
	case *ast.ExprStmt:
		if a, ok := init.X.(*ast.Assign); ok && a.Op == token.ASSIGN {
			if id, ok := a.LHS.(*ast.Ident); ok {
				sym = id.Sym
			}
		}
	}
	if sym == nil || sym.Type == nil || !sym.Type.IsInteger() {
		c.errf(x.Pos(), "parallel for needs a single integer induction variable")
		return
	}
	if sym.Kind != ast.SymLocal && sym.Kind != ast.SymParam {
		c.errf(x.Pos(), "parallel for induction variable %s must be a local", sym.Name)
		return
	}
	step := func(e ast.Expr) bool {
		switch p := e.(type) {
		case *ast.IncDec:
			id, ok := p.X.(*ast.Ident)
			return ok && id.Sym == sym && p.Op == token.INC
		case *ast.Assign:
			id, ok := p.LHS.(*ast.Ident)
			if !ok || id.Sym != sym {
				return false
			}
			return p.Op == token.ADDASSIGN || p.Op == token.ASSIGN
		}
		return false
	}
	if x.Post == nil || !step(x.Post) {
		c.errf(x.Pos(), "parallel for must increment its induction variable in the post statement")
		return
	}
	if x.Cond == nil {
		c.errf(x.Pos(), "parallel for must have a bound condition")
		return
	}
	b, ok := x.Cond.(*ast.Binary)
	if !ok ||
		(b.Op != token.LSS && b.Op != token.LEQ && b.Op != token.GTR && b.Op != token.GEQ && b.Op != token.NEQ) {
		c.errf(x.Pos(), "parallel for condition must be a comparison")
		return
	}
	// The runtime evaluates the bound and step once at loop entry
	// (like OpenMP), so they must be pure expressions.
	if !pureExpr(b.X) || !pureExpr(b.Y) {
		c.errf(x.Pos(), "parallel for bound must be a pure expression (no calls or assignments)")
		return
	}
	if a, ok := x.Post.(*ast.Assign); ok && !pureExpr(a.RHS) {
		c.errf(x.Pos(), "parallel for step must be a pure expression (no calls or assignments)")
		return
	}
	x.IndVar = sym
}

// pureExpr reports whether evaluating e has no side effects and no
// dependence on evaluation count (no calls, assignments or increments).
func pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Call, *ast.Assign, *ast.IncDec:
			pure = false
		}
		return pure
	})
	return pure
}

func (c *checker) wantScalar(e ast.Expr) {
	if t := e.ExprType(); t != nil && !t.IsScalar() {
		c.errf(e.Pos(), "condition has non-scalar type %s", t)
	}
}
