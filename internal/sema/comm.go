package sema

// Commutative-update detection: the checker tags the access sites of
// reduction-shaped updates so the classifier (ddg.Options.CommSites)
// can promote whole access classes to privatizable reductions.
//
// Two shapes are recognized:
//
//	loc += e;   loc -= e;   loc++;   loc--;        (CommAdd)
//	if (e < loc) loc = e;                          (CommMin)
//	if (e > loc) loc = e;                          (CommMax)
//
// (and the mirrored comparisons). Only integer locations qualify:
// floating-point accumulation is not associative in finite precision,
// so privatizing it would change the bit-exact sequential result. The
// tag is per-site evidence only — whether a whole class is safely
// privatizable (same operator everywhere, no carried dependence
// crossing the class boundary) is the classifier's decision.

import (
	"gdsx/internal/ast"
	"gdsx/internal/ddg"
	"gdsx/internal/token"
)

// markComm tags the load/store sites of a location expression as a
// commutative update under op.
func (c *checker) markComm(e ast.Expr, op ddg.CommOp) {
	var acc *ast.Access
	switch n := e.(type) {
	case *ast.Ident:
		acc = &n.Acc
	case *ast.Index:
		acc = &n.Acc
	case *ast.Member:
		acc = &n.Acc
	case *ast.Unary:
		acc = &n.Acc
	default:
		return
	}
	if s := c.info.Accesses[acc.Load]; s != nil {
		s.Comm = op
	}
	if s := c.info.Accesses[acc.Store]; s != nil {
		s.Comm = op
	}
}

// markCommAssign tags an integer += / -= after the assignment has been
// checked (so the LHS sites exist).
func (c *checker) markCommAssign(x *ast.Assign) {
	if x.Op != token.ADDASSIGN && x.Op != token.SUBASSIGN {
		return
	}
	if lt := x.LHS.ExprType(); lt == nil || !lt.IsInteger() {
		return
	}
	c.markComm(x.LHS, ddg.CommAdd)
}

// markCommMinMax recognizes the guarded min/max update
//
//	if (e REL loc) loc = e;
//
// where REL is one of < <= > >=, the then-branch is the single plain
// assignment shown, and e/loc match the comparison operands
// structurally (by printed form). The location's read in the condition
// and its write in the branch are tagged CommMin (the smaller value is
// kept) or CommMax.
func (c *checker) markCommMinMax(x *ast.If) {
	if x.Else != nil {
		return
	}
	cond, ok := x.Cond.(*ast.Binary)
	if !ok {
		return
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	asg := singleAssign(x.Then)
	if asg == nil || asg.Op != token.ASSIGN {
		return
	}
	lt := asg.LHS.ExprType()
	if lt == nil || !lt.IsInteger() {
		return
	}
	locText := ast.PrintExpr(asg.LHS)
	valText := ast.PrintExpr(asg.RHS)
	xText, yText := ast.PrintExpr(cond.X), ast.PrintExpr(cond.Y)

	// Normalize to "value REL location".
	op := cond.Op
	switch {
	case xText == valText && yText == locText:
		// value REL loc: as is.
	case xText == locText && yText == valText:
		// loc REL value: mirror.
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	default:
		return
	}
	comm := ddg.CommMax
	if op == token.LSS || op == token.LEQ {
		// The store keeps the smaller value: a running minimum.
		comm = ddg.CommMin
	}
	c.markComm(asg.LHS, comm)
	// Tag the location's loads in the condition too (same printed
	// form), so the whole class carries the operator.
	tagLoads := func(e ast.Expr) {
		if ast.PrintExpr(e) == locText {
			c.markComm(e, comm)
		}
	}
	tagLoads(cond.X)
	tagLoads(cond.Y)
}

// singleAssign unwraps a then-branch that consists of exactly one
// expression-statement assignment (with or without braces).
func singleAssign(s ast.Stmt) *ast.Assign {
	if b, ok := s.(*ast.Block); ok {
		if len(b.Stmts) != 1 {
			return nil
		}
		s = b.Stmts[0]
	}
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	asg, ok := es.X.(*ast.Assign)
	if !ok {
		return nil
	}
	return asg
}

// CommSites extracts the commutative-site map for the classifier.
func CommSites(info *Info) map[int]ddg.CommOp {
	out := map[int]ddg.CommOp{}
	for id, s := range info.Accesses {
		if s.Comm != ddg.CommNone {
			out[id] = s.Comm
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
