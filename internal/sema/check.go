package sema

import (
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/ddg"
	"gdsx/internal/token"
)

// valueCtx describes how an expression's value is used, which
// determines the memory accesses it performs.
type valueCtx int

const (
	rvalue       valueCtx = iota // value is read
	storeCtx                     // location is written (plain assignment LHS)
	loadStoreCtx                 // location is read then written (compound assign, ++/--)
	addrCtx                      // only the address is taken (operand of &, base of .)
)

// record assigns access IDs for a location-designating node used in the
// given context. Locations of array type never produce accesses (their
// "value" is an address).
func (c *checker) record(e ast.Expr, acc *ast.Access, ctx valueCtx) {
	t := e.ExprType()
	if t == nil || t.Kind == ctypes.Array || t.Kind == ctypes.Func {
		return
	}
	add := func(isStore bool) int {
		c.accessID++
		site := &AccessSite{
			ID:      c.accessID,
			IsStore: isStore,
			Node:    e,
			Pos:     e.Pos(),
			Func:    c.fn,
			Text:    ast.PrintExpr(e),
			Loops:   append([]int(nil), c.loopStack...),
		}
		c.info.Accesses[site.ID] = site
		return site.ID
	}
	switch ctx {
	case rvalue:
		acc.Load = add(false)
	case storeCtx:
		acc.Store = add(true)
	case loadStoreCtx:
		acc.Load = add(false)
		acc.Store = add(true)
	case addrCtx:
		// Address formation is not itself an access, but it pins the
		// variable: once its address escapes, every aliasing load and
		// store must go through simulated memory.
		if id, ok := e.(*ast.Ident); ok && id.Sym != nil {
			id.Sym.AddrTaken = true
		}
	}
}

// expr type-checks e in the given context and returns it (expressions
// are checked in place; the return value allows future rewriting).
func (c *checker) expr(e ast.Expr, ctx valueCtx) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errf(x.Pos(), "undefined: %s", x.Name)
			x.SetType(ctypes.IntType)
			return x
		}
		x.Sym = sym
		x.SetType(sym.Type)
		switch sym.Kind {
		case ast.SymFunc, ast.SymBuiltin:
			if ctx != rvalue {
				c.errf(x.Pos(), "%s is not assignable", x.Name)
			}
		case ast.SymTID, ast.SymNTH:
			if ctx != rvalue {
				c.errf(x.Pos(), "%s is read-only", x.Name)
			}
			// Pseudo-variables are registers, not memory: no access ID.
		default:
			c.record(x, &x.Acc, ctx)
		}
		return x

	case *ast.IntLit:
		if ctx != rvalue {
			c.errf(x.Pos(), "literal is not assignable")
		}
		if x.ExprType() == nil {
			if x.Value == int64(int32(x.Value)) {
				x.SetType(ctypes.IntType)
			} else {
				x.SetType(ctypes.LongType)
			}
		}
		return x

	case *ast.FloatLit:
		x.SetType(ctypes.DoubleType)
		return x

	case *ast.StringLit:
		x.SetType(ctypes.PointerTo(ctypes.CharType))
		return x

	case *ast.Unary:
		return c.unary(x, ctx)

	case *ast.Binary:
		x.X = c.expr(x.X, rvalue)
		x.Y = c.expr(x.Y, rvalue)
		x.SetType(c.binaryType(x))
		if ctx != rvalue {
			c.errf(x.Pos(), "expression is not assignable")
		}
		return x

	case *ast.Logical:
		x.X = c.expr(x.X, rvalue)
		x.Y = c.expr(x.Y, rvalue)
		c.wantScalar(x.X)
		c.wantScalar(x.Y)
		x.SetType(ctypes.IntType)
		return x

	case *ast.Cond:
		x.C = c.expr(x.C, rvalue)
		c.wantScalar(x.C)
		x.Then = c.expr(x.Then, rvalue)
		x.Else = c.expr(x.Else, rvalue)
		tt, et := x.Then.ExprType(), x.Else.ExprType()
		switch {
		case tt == nil || et == nil:
			x.SetType(ctypes.IntType)
		case tt.IsArith() && et.IsArith():
			x.SetType(ctypes.Common(tt, et))
		case tt.Kind == ctypes.Ptr:
			x.SetType(tt)
		case et.Kind == ctypes.Ptr:
			x.SetType(et)
		default:
			x.SetType(tt)
		}
		return x

	case *ast.Assign:
		lctx := storeCtx
		if x.Op != token.ASSIGN {
			lctx = loadStoreCtx
		}
		x.LHS = c.expr(x.LHS, lctx)
		x.RHS = c.expr(x.RHS, rvalue)
		lt := x.LHS.ExprType()
		if x.Op == token.ASSIGN {
			c.checkAssignable(x.Pos(), lt, x.RHS)
		} else {
			rt := x.RHS.ExprType()
			if lt != nil && rt != nil {
				op := x.Op.CompoundOp()
				if lt.Kind == ctypes.Ptr && (op == token.ADD || op == token.SUB) {
					if !rt.IsInteger() {
						c.errf(x.Pos(), "pointer %s= needs an integer operand", op)
					}
				} else if !lt.IsArith() || !rt.IsArith() {
					c.errf(x.Pos(), "invalid operands to %s (%s and %s)", x.Op, lt, rt)
				} else if (op == token.REM || op == token.SHL || op == token.SHR ||
					op == token.AND || op == token.OR || op == token.XOR) &&
					(!lt.IsInteger() || !rt.IsInteger()) {
					c.errf(x.Pos(), "%s needs integer operands", x.Op)
				}
			}
		}
		x.SetType(lt)
		c.markCommAssign(x)
		if ctx != rvalue {
			c.errf(x.Pos(), "assignment is not assignable")
		}
		return x

	case *ast.IncDec:
		x.X = c.expr(x.X, loadStoreCtx)
		t := x.X.ExprType()
		if t != nil && !t.IsArith() && t.Kind != ctypes.Ptr {
			c.errf(x.Pos(), "invalid %s operand type %s", x.Op, t)
		}
		x.SetType(t)
		if t != nil && t.IsInteger() {
			c.markComm(x.X, ddg.CommAdd)
		}
		return x

	case *ast.Index:
		x.X = c.expr(x.X, rvalue)
		x.I = c.expr(x.I, rvalue)
		if it := x.I.ExprType(); it != nil && !it.IsInteger() {
			c.errf(x.I.Pos(), "array index is not an integer")
		}
		bt := x.X.ExprType()
		switch {
		case bt == nil:
			x.SetType(ctypes.IntType)
		case bt.Kind == ctypes.Array || bt.Kind == ctypes.Ptr:
			x.SetType(bt.Elem)
		default:
			c.errf(x.Pos(), "indexing non-array type %s", bt)
			x.SetType(ctypes.IntType)
		}
		c.record(x, &x.Acc, ctx)
		return x

	case *ast.Member:
		if x.Arrow {
			x.X = c.expr(x.X, rvalue)
		} else {
			x.X = c.expr(x.X, addrCtx)
		}
		bt := x.X.ExprType()
		var st *ctypes.Type
		switch {
		case bt == nil:
		case x.Arrow && bt.Kind == ctypes.Ptr && bt.Elem.Kind == ctypes.Struct:
			st = bt.Elem
		case !x.Arrow && bt.Kind == ctypes.Struct:
			st = bt
		default:
			c.errf(x.Pos(), "member access on non-struct type %s", bt)
		}
		if st != nil {
			f := st.Field(x.Name)
			if f == nil {
				c.errf(x.Pos(), "struct %s has no field %s", st.Name, x.Name)
			} else {
				x.Field = f
				x.SetType(f.Type)
			}
		}
		if x.ExprType() == nil {
			x.SetType(ctypes.IntType)
		}
		c.record(x, &x.Acc, ctx)
		return x

	case *ast.Call:
		return c.call(x, ctx)

	case *ast.Cast:
		x.X = c.expr(x.X, rvalue)
		ft := x.X.ExprType()
		if ft != nil {
			fromOK := ft.IsScalar() || ft.Kind == ctypes.Array
			toOK := x.To.IsScalar() || x.To.Kind == ctypes.Void
			if !fromOK || !toOK {
				c.errf(x.Pos(), "invalid cast from %s to %s", ft, x.To)
			}
			if x.To.Kind == ctypes.Ptr && ft.IsFloat() {
				c.errf(x.Pos(), "cannot cast floating value to pointer")
			}
		}
		x.SetType(x.To)
		if ctx != rvalue {
			c.errf(x.Pos(), "cast is not assignable")
		}
		return x

	case *ast.SizeofType:
		if !x.Of.HasStaticSize() {
			c.errf(x.Pos(), "sizeof dynamic type %s", x.Of)
		}
		x.SetType(ctypes.LongType)
		return x

	case *ast.SizeofExpr:
		// The operand is not evaluated: check it for types only, in an
		// address context so it produces no access sites.
		x.X = c.expr(x.X, addrCtx)
		if t := x.X.ExprType(); t != nil && !t.HasStaticSize() {
			c.errf(x.Pos(), "sizeof value of dynamic type %s", t)
		}
		x.SetType(ctypes.LongType)
		return x
	}
	panic("sema: unknown expression")
}

func (c *checker) unary(x *ast.Unary, ctx valueCtx) ast.Expr {
	switch x.Op {
	case token.AND:
		x.X = c.expr(x.X, addrCtx)
		if !isLvalue(x.X) {
			c.errf(x.Pos(), "cannot take the address of this expression")
		}
		t := x.X.ExprType()
		if t == nil {
			t = ctypes.IntType
		}
		// &array yields a pointer to the element type (decayed view),
		// which is what MiniC programs use it for.
		if t.Kind == ctypes.Array {
			t = t.Elem
		}
		x.SetType(ctypes.PointerTo(t))
		if ctx != rvalue {
			c.errf(x.Pos(), "address expression is not assignable")
		}
		return x
	case token.MUL:
		x.X = c.expr(x.X, rvalue)
		bt := x.X.ExprType()
		switch {
		case bt == nil:
			x.SetType(ctypes.IntType)
		case bt.Kind == ctypes.Ptr || bt.Kind == ctypes.Array:
			x.SetType(bt.Elem)
		default:
			c.errf(x.Pos(), "dereferencing non-pointer type %s", bt)
			x.SetType(ctypes.IntType)
		}
		c.record(x, &x.Acc, ctx)
		return x
	default:
		x.X = c.expr(x.X, rvalue)
		t := x.X.ExprType()
		if ctx != rvalue {
			c.errf(x.Pos(), "expression is not assignable")
		}
		switch x.Op {
		case token.LNOT:
			c.wantScalar(x.X)
			x.SetType(ctypes.IntType)
		case token.NOT:
			if t != nil && !t.IsInteger() {
				c.errf(x.Pos(), "~ needs an integer operand, got %s", t)
			}
			x.SetType(promoteInt(t))
		case token.SUB, token.ADD:
			if t != nil && !t.IsArith() {
				c.errf(x.Pos(), "unary %s needs an arithmetic operand, got %s", x.Op, t)
			}
			if t != nil && t.IsFloat() {
				x.SetType(t)
			} else {
				x.SetType(promoteInt(t))
			}
		}
		return x
	}
}

func promoteInt(t *ctypes.Type) *ctypes.Type {
	if t == nil {
		return ctypes.IntType
	}
	if t.IsInteger() && t.Size() < 4 {
		if t.Unsigned {
			return ctypes.UIntType
		}
		return ctypes.IntType
	}
	return t
}

func (c *checker) binaryType(x *ast.Binary) *ctypes.Type {
	xt, yt := x.X.ExprType(), x.Y.ExprType()
	if xt == nil || yt == nil {
		return ctypes.IntType
	}
	// Arrays decay to pointers in binary expressions.
	if xt.Kind == ctypes.Array {
		xt = ctypes.PointerTo(xt.Elem)
	}
	if yt.Kind == ctypes.Array {
		yt = ctypes.PointerTo(yt.Elem)
	}
	switch x.Op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		if xt.Kind == ctypes.Ptr || yt.Kind == ctypes.Ptr {
			if xt.Kind != yt.Kind && !isZeroLit(x.X) && !isZeroLit(x.Y) {
				c.errf(x.Pos(), "comparison of %s and %s", xt, yt)
			}
		} else if !xt.IsArith() || !yt.IsArith() {
			c.errf(x.Pos(), "comparison of %s and %s", xt, yt)
		}
		return ctypes.IntType
	case token.ADD:
		if xt.Kind == ctypes.Ptr && yt.IsInteger() {
			return xt
		}
		if yt.Kind == ctypes.Ptr && xt.IsInteger() {
			return yt
		}
	case token.SUB:
		if xt.Kind == ctypes.Ptr && yt.Kind == ctypes.Ptr {
			return ctypes.LongType
		}
		if xt.Kind == ctypes.Ptr && yt.IsInteger() {
			return xt
		}
	case token.REM, token.SHL, token.SHR, token.AND, token.OR, token.XOR:
		if !xt.IsInteger() || !yt.IsInteger() {
			c.errf(x.Pos(), "%s needs integer operands (%s and %s)", x.Op, xt, yt)
			return ctypes.IntType
		}
		if x.Op == token.SHL || x.Op == token.SHR {
			return promoteInt(xt)
		}
		return ctypes.Common(xt, yt)
	}
	if !xt.IsArith() || !yt.IsArith() {
		c.errf(x.Pos(), "invalid operands to %s (%s and %s)", x.Op, xt, yt)
		return ctypes.IntType
	}
	return ctypes.Common(xt, yt)
}

func isZeroLit(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	return ok && l.Value == 0
}

func isLvalue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Sym == nil || x.Sym.Kind == ast.SymGlobal ||
			x.Sym.Kind == ast.SymLocal || x.Sym.Kind == ast.SymParam
	case *ast.Index, *ast.Member:
		return true
	case *ast.Unary:
		return x.Op == token.MUL
	}
	return false
}

func (c *checker) call(x *ast.Call, ctx valueCtx) ast.Expr {
	// addrCtx is allowed: selecting a field of a struct-returning call
	// (f().field) takes the address of the returned temporary.
	if ctx == storeCtx || ctx == loadStoreCtx {
		c.errf(x.Pos(), "call result is not assignable")
	}
	sym := c.lookup(x.Fun.Name)
	if sym == nil {
		c.errf(x.Pos(), "undefined function %s", x.Fun.Name)
		x.SetType(ctypes.IntType)
		return x
	}
	x.Fun.Sym = sym
	x.Fun.SetType(sym.Type)
	if sym.Kind != ast.SymFunc && sym.Kind != ast.SymBuiltin {
		c.errf(x.Pos(), "%s is not a function", x.Fun.Name)
		x.SetType(ctypes.IntType)
		return x
	}
	ft := sym.Type
	if len(x.Args) != len(ft.Params) {
		c.errf(x.Pos(), "%s expects %d arguments, got %d", x.Fun.Name, len(ft.Params), len(x.Args))
	}
	for i, a := range x.Args {
		x.Args[i] = c.expr(a, rvalue)
		if i < len(ft.Params) {
			c.checkAssignable(a.Pos(), ft.Params[i], x.Args[i])
		}
	}
	switch sym.Builtin {
	case ast.BMalloc, ast.BCalloc, ast.BRealloc, ast.BExpandMalloc:
		c.allocID++
		x.AllocSite = c.allocID
		c.info.Allocs[c.allocID] = x
		// The allocation defines the fresh block (see AccessSite.IsDef).
		c.accessID++
		x.Acc.Store = c.accessID
		c.info.Accesses[c.accessID] = &AccessSite{
			ID: c.accessID, IsStore: true, Node: x, Pos: x.Pos(), Func: c.fn,
			Text: sym.Name + " (alloc)", Loops: append([]int(nil), c.loopStack...),
			IsDef: true,
		}
	}
	x.SetType(ft.Ret)
	return x
}

// checkAssignable verifies that the value of rhs may be assigned to a
// location of type lt, applying C's implicit conversion rules.
func (c *checker) checkAssignable(pos token.Pos, lt *ctypes.Type, rhs ast.Expr) {
	rt := rhs.ExprType()
	if lt == nil || rt == nil {
		return
	}
	if rt.Kind == ctypes.Array {
		rt = ctypes.PointerTo(rt.Elem) // decay
	}
	switch {
	case lt.IsArith() && rt.IsArith():
	case lt.Kind == ctypes.Ptr && rt.Kind == ctypes.Ptr:
		if !lt.Elem.Equal(rt.Elem) && lt.Elem.Kind != ctypes.Void && rt.Elem.Kind != ctypes.Void {
			c.errf(pos, "incompatible pointer assignment: %s = %s", lt, rt)
		}
	case lt.Kind == ctypes.Ptr && isZeroLit(rhs):
	case lt.Kind == ctypes.Struct && lt == rt:
	case lt.Kind == ctypes.Void:
	default:
		c.errf(pos, "cannot assign %s to %s", rt, lt)
	}
}
