package guard

import (
	"gdsx/internal/ddg"
	"gdsx/internal/interp"
)

// Shadow pages, byte-granular like the profiler's.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// shadowCell stores 1-based indices into the merged event slice of the
// last write and last read that touched the byte; 0 means none since
// the last definition.
type shadowCell struct {
	w, r int32
}

type shadow struct {
	pages map[int64]*[pageSize]shadowCell
}

func newShadow() *shadow { return &shadow{pages: map[int64]*[pageSize]shadowCell{}} }

func (s *shadow) cell(addr int64) *shadowCell {
	p := s.pages[addr>>pageBits]
	if p == nil {
		p = new([pageSize]shadowCell)
		s.pages[addr>>pageBits] = p
	}
	return &p[addr&pageMask]
}

// mergeLogs interleaves the per-thread logs by iteration number,
// reconstructing the sequential schedule: iterations partition across
// threads and each thread logs its iterations in increasing order, so
// a k-way merge on Iter (ties broken by thread, for pre-loop setup
// events) is a stable sequential ordering.
func mergeLogs(logs [][]interp.Access) []interp.Access {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	merged := make([]interp.Access, 0, total)
	idx := make([]int, len(logs))
	for {
		best := -1
		for t := range logs {
			if idx[t] >= len(logs[t]) {
				continue
			}
			if best < 0 || logs[t][idx[t]].Iter < logs[best][idx[best]].Iter {
				best = t
			}
		}
		if best < 0 {
			return merged
		}
		merged = append(merged, logs[best][idx[best]])
		idx[best]++
	}
}

// replay checks one region's logs and returns a report, or nil when
// the region is violation-free.
func (m *Monitor) replay(logs [][]interp.Access) *Report {
	merged := mergeLogs(logs)
	if len(merged) == 0 {
		return nil
	}
	nt := m.cfg.Threads
	notes := append([]note(nil), m.regionNotes...)
	raw := newShadow()
	can := newShadow()
	g := m.cfg.Graphs[m.loop]

	rep := &Report{Loop: m.loop, Threads: m.nthreads}
	seen := map[vioKey]bool{}
	record := func(rule string, ev interp.Access, addr int64, cp int, other *interp.Access) {
		rep.Total++
		key := vioKey{rule: rule, site: ev.Site}
		if other != nil {
			key.other = other.Site
		}
		if seen[key] || len(rep.Violations) >= m.cfg.MaxViolations {
			return
		}
		seen[key] = true
		rep.Violations = append(rep.Violations, m.newViolation(rule, ev, addr, cp, other))
	}

	for i := range merged {
		ev := merged[i]
		id := int32(i + 1)
		if ev.Def {
			// Fresh storage: kill the byte history and any stale
			// expansion note the addresses shadow.
			for a := ev.Addr; a < ev.Addr+ev.Size; a++ {
				c := raw.cell(a)
				c.w, c.r = 0, 0
				if cn, _, ok := canonical(notes, nt, a); ok {
					cc := can.cell(cn)
					cc.w, cc.r = 0, 0
				}
			}
			notes = dropStale(notes, nt, ev.Addr, ev.Size)
			continue
		}
		// One violation per (event, rule): byte-granular scanning would
		// otherwise multiply-count a single bad access.
		var flagged [4]bool
		for a := ev.Addr; a < ev.Addr+ev.Size; a++ {
			rc := raw.cell(a)

			// Raw shadow: unsynchronized cross-thread conflicts (V4).
			check := func(prev int32, kind int) {
				if prev == 0 || flagged[3] {
					return
				}
				p := &merged[prev-1]
				if p.Iter == ev.Iter || p.Tid == ev.Tid {
					return // same iteration or thread program order
				}
				if p.Ordered && ev.Ordered {
					return // both inside the ordered section: serialized
				}
				if g != nil && edgeProfiled(g, p, &ev, kind) {
					return // a dependence the profile already knew
				}
				flagged[3] = true
				record(RuleConflict, ev, a, -1, p)
			}
			if ev.Store {
				check(rc.w, kindOutput)
				check(rc.r, kindAnti)
			} else {
				check(rc.w, kindFlow)
			}

			// Canonical shadow: expansion-semantics checks (V1–V3).
			if cn, cp, ok := canonical(notes, nt, a); ok {
				cc := can.cell(cn)
				if cp != 0 && cp != ev.Tid && !flagged[2] {
					// V3: a copy belonging to another thread.
					var other *interp.Access
					if cc.w != 0 {
						other = &merged[cc.w-1]
					}
					flagged[2] = true
					record(RuleForeignCopy, ev, a, cp, other)
				}
				if ev.Store {
					cc.w = id
				} else {
					switch {
					case cc.w == rc.w:
						// The sequential data source is the very write this
						// copy holds (or both are pre-region and the read
						// goes through the original storage): correct.
						// cc.w == 0 == rc.w with cp != 0 falls through below.
						if cc.w == 0 && cp != 0 && !flagged[1] {
							// V2: sequentially this read would see pre-loop
							// data, but copy cp started zero-filled.
							flagged[1] = true
							record(RuleStaleCopy, ev, a, cp, nil)
						}
					case cc.w != 0:
						// V1: sequentially the read's data source is a write
						// that landed in a different copy — a dependence the
						// thread-private classification ruled out.
						if !flagged[0] {
							flagged[0] = true
							record(RuleCarriedFlow, ev, a, cp, &merged[cc.w-1])
						}
					}
					cc.r = id
				}
			}

			// Update the raw shadow after the checks.
			if ev.Store {
				rc.w = id
			} else {
				rc.r = id
			}
		}
	}
	if rep.Total == 0 {
		return nil
	}
	return rep
}

// Dependence kinds for exact-edge tolerance checks.
const (
	kindFlow = iota
	kindAnti
	kindOutput
)

// edgeProfiled reports whether the profiled graph contains the carried
// dependence between the two conflicting accesses.
func edgeProfiled(g *ddg.Graph, p, ev *interp.Access, kind int) bool {
	k := ddg.Flow
	switch kind {
	case kindAnti:
		k = ddg.Anti
	case kindOutput:
		k = ddg.Output
	}
	return g.HasEdge(p.Site, ev.Site, k, true)
}
