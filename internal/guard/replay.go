package guard

import (
	"sort"

	"gdsx/internal/ddg"
	"gdsx/internal/interp"
)

// Shadow pages, byte-granular like the profiler's.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// shadowCell stores 1-based indices into the merged event slice of the
// last write and last read that touched the byte; 0 means none since
// the last definition. wm tracks the write that physically survives at
// the byte under same-thread out-of-order execution: among a run of
// writes by one thread it is the one with the latest execution order
// (largest seq), which under work stealing need not be the last one in
// iteration order. ep tags the replay epoch the indices belong to: a
// cell written in an earlier epoch reads as empty, which lets the
// shadows persist across safe points without ever being cleared.
type shadowCell struct {
	w, r, wm int32
	ep       uint32
}

// shadow is a flat page table over the simulated address space
// (observed addresses are bounds-checked before the hook fires, so
// they index the table directly). Pages allocate on first touch and
// live for the monitor's lifetime; the epoch tag makes prior regions'
// contents invisible, so a replay touches exactly the bytes it checks
// and pays nothing to reset state between regions.
type shadow struct {
	pages []*[pageSize]shadowCell
}

func (s *shadow) cell(addr int64, ep uint32) *shadowCell {
	idx := addr >> pageBits
	if idx >= int64(len(s.pages)) {
		grown := make([]*[pageSize]shadowCell, idx+1)
		copy(grown, s.pages)
		s.pages = grown
	}
	p := s.pages[idx]
	if p == nil {
		p = new([pageSize]shadowCell)
		s.pages[idx] = p
	}
	c := &p[addr&pageMask]
	if c.ep != ep {
		*c = shadowCell{ep: ep}
	}
	return c
}

// logSeg is a run of consecutive events one thread logged for one
// iteration — a zero-copy subslice of a log chunk. seq orders a
// thread's segments by logging time, so sorting by (iter, tid, seq)
// reconstructs the sequential schedule even when work stealing makes
// a thread's iteration numbers non-monotonic.
type logSeg struct {
	iter int64
	tid  int
	seq  int
	evs  []interp.Access
}

// mergeLogs rebuilds the sequential schedule from the per-thread logs
// into m.merged (reused across safe points): split every chunk into
// per-iteration segments, sort the segments by (iteration, thread,
// per-thread order), and concatenate. Ties on iteration go to the
// lowest thread id — the order the old k-way merge over statically
// scheduled logs produced. Alongside the merged events it fills
// m.seqs with each event's per-thread segment ordinal, which records
// the thread's true program order: under work stealing a thread may
// execute its iterations out of iteration order, and the replay's
// same-thread serialization excuse must check the order the thread
// actually ran, not the order the merge reconstructs.
func (m *Monitor) mergeLogs() []interp.Access {
	segs := m.segs[:0]
	total := 0
	for t := range m.tlogs {
		l := &m.tlogs[t]
		seq := 0
		addChunk := func(c []interp.Access) {
			total += len(c)
			for len(c) > 0 {
				iter := c[0].Iter
				i := 1
				for i < len(c) && c[i].Iter == iter {
					i++
				}
				segs = append(segs, logSeg{iter: iter, tid: t, seq: seq, evs: c[:i]})
				seq++
				c = c[i:]
			}
		}
		for _, c := range l.full {
			addChunk(c)
		}
		addChunk(l.cur)
	}
	sort.Slice(segs, func(i, j int) bool {
		a, b := &segs[i], &segs[j]
		if a.iter != b.iter {
			return a.iter < b.iter
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		return a.seq < b.seq
	})
	m.segs = segs
	if cap(m.merged) < total {
		m.merged = make([]interp.Access, 0, total)
		m.seqs = make([]int32, 0, total)
	}
	merged, seqs := m.merged[:0], m.seqs[:0]
	for _, s := range segs {
		merged = append(merged, s.evs...)
		for range s.evs {
			seqs = append(seqs, int32(s.seq))
		}
	}
	m.merged, m.seqs = merged, seqs
	return merged
}

// replay checks one region's logs and returns a report, or nil when
// the region is violation-free. Everything it reads from the logs is
// copied into the report before it returns, so the caller may recycle
// the log chunks immediately.
func (m *Monitor) replay() *Report {
	merged := m.mergeLogs()
	if len(merged) == 0 {
		return nil
	}
	nt := m.cfg.Threads
	notes := append([]note(nil), m.regionNotes...)
	m.epoch++
	if m.epoch == 0 {
		// Epoch wrap: drop the pages so a stale tag cannot collide.
		m.raw.pages, m.can.pages = nil, nil
		m.epoch = 1
	}
	ep := m.epoch
	raw, can := &m.raw, &m.can
	g := m.cfg.Graphs[m.loop]

	rep := &Report{Loop: m.loop, Threads: m.nthreads}
	seen := map[vioKey]bool{}
	record := func(rule string, ev interp.Access, addr int64, cp int, other *interp.Access) {
		rep.Total++
		if rep.ByRule == nil {
			rep.ByRule = map[string]int{}
		}
		rep.ByRule[rule]++
		key := vioKey{rule: rule, site: ev.Site}
		if other != nil {
			key.other = other.Site
		}
		if seen[key] || len(rep.Violations) >= m.cfg.MaxViolations {
			return
		}
		seen[key] = true
		rep.Violations = append(rep.Violations, m.newViolation(rule, ev, addr, cp, other))
	}

	for i := range merged {
		ev := merged[i]
		id := int32(i + 1)
		if ev.Def {
			// Fresh storage: kill the byte history and any stale
			// expansion note the addresses shadow.
			for a := ev.Addr; a < ev.Addr+ev.Size; a++ {
				c := raw.cell(a, ep)
				c.w, c.r, c.wm = 0, 0, 0
				if cn, _, ok := canonical(notes, nt, a); ok {
					cc := can.cell(cn, ep)
					cc.w, cc.r = 0, 0
				}
			}
			notes = dropStale(notes, nt, ev.Addr, ev.Size)
			continue
		}
		// One violation per (event, rule): byte-granular scanning would
		// otherwise multiply-count a single bad access.
		var flagged [4]bool
		for a := ev.Addr; a < ev.Addr+ev.Size; a++ {
			rc := raw.cell(a, ep)
			cn, cp, inExp := canonical(notes, nt, a)

			// Raw shadow: unsynchronized conflicts (V4) — cross-thread
			// pairs no ordered section serializes, and same-thread pairs
			// a stolen out-of-order execution failed to serialize.
			check := func(prev int32, kind int) {
				if prev == 0 || flagged[3] {
					return
				}
				p := &merged[prev-1]
				if p.Iter == ev.Iter {
					return // same iteration: executed by one thread
				}
				if p.Tid == ev.Tid {
					if m.seqs[prev-1] < m.seqs[i] {
						return // the thread really executed p first
					}
					// Out of iteration order: a stolen range ran this
					// thread's later iteration first. A write-write pair
					// inside an expanded structure is still harmless —
					// the classification proved the structure dead after
					// the region, and a read observing the wrong
					// survivor is caught through the read's own checks
					// below — but a pair involving a read saw (or
					// exposed) a wrong value, and live-out shared state
					// depends on write order.
					if kind == kindOutput && inExp {
						return
					}
				} else {
					if p.Ordered && ev.Ordered {
						return // both inside the ordered section: serialized
					}
					if g != nil && edgeProfiled(g, p, &ev, kind) {
						return // a dependence the profile already knew
					}
				}
				flagged[3] = true
				record(RuleConflict, ev, a, -1, p)
			}
			if ev.Store {
				check(rc.w, kindOutput)
				check(rc.r, kindAnti)
			} else {
				check(rc.w, kindFlow)
				// The sequential data source rc.w may have executed in
				// order, yet an iteration-earlier write of the same
				// thread executed after it and physically holds the byte
				// when this read runs.
				if !flagged[3] && rc.w != 0 && rc.wm != 0 && rc.wm != rc.w {
					pm, pw := &merged[rc.wm-1], &merged[rc.w-1]
					if pm.Tid == ev.Tid && pw.Tid == ev.Tid &&
						pm.Iter != ev.Iter && m.seqs[rc.wm-1] < m.seqs[i] {
						flagged[3] = true
						record(RuleConflict, ev, a, -1, pm)
					}
				}
			}

			// Canonical shadow: expansion-semantics checks (V1–V3).
			if inExp {
				cc := can.cell(cn, ep)
				if cp != 0 && cp != ev.Tid && !flagged[2] {
					// V3: a copy belonging to another thread.
					var other *interp.Access
					if cc.w != 0 {
						other = &merged[cc.w-1]
					}
					flagged[2] = true
					record(RuleForeignCopy, ev, a, cp, other)
				}
				if ev.Store {
					cc.w = id
				} else {
					switch {
					case cc.w == rc.w:
						// The sequential data source is the very write this
						// copy holds (or both are pre-region and the read
						// goes through the original storage): correct.
						// cc.w == 0 == rc.w with cp != 0 falls through below.
						if cc.w == 0 && cp != 0 && !flagged[1] {
							// V2: sequentially this read would see pre-loop
							// data, but copy cp started zero-filled.
							flagged[1] = true
							record(RuleStaleCopy, ev, a, cp, nil)
						}
					case cc.w != 0:
						// V1: sequentially the read's data source is a write
						// that landed in a different copy — a dependence the
						// thread-private classification ruled out.
						if !flagged[0] {
							flagged[0] = true
							record(RuleCarriedFlow, ev, a, cp, &merged[cc.w-1])
						}
					}
					cc.r = id
				}
			}

			// Update the raw shadow after the checks. wm keeps the write
			// that physically survives: within one thread the larger seq
			// executed later (equal seq = same segment, where replay
			// order is execution order); a write from another thread has
			// no comparable order and just becomes the new baseline.
			if ev.Store {
				if rc.wm == 0 {
					rc.wm = id
				} else if pm := &merged[rc.wm-1]; pm.Tid != ev.Tid ||
					m.seqs[rc.wm-1] <= m.seqs[i] {
					rc.wm = id
				}
				rc.w = id
			} else {
				rc.r = id
			}
		}
	}
	if rep.Total == 0 {
		return nil
	}
	return rep
}

// Dependence kinds for exact-edge tolerance checks.
const (
	kindFlow = iota
	kindAnti
	kindOutput
)

// edgeProfiled reports whether the profiled graph contains the carried
// dependence between the two conflicting accesses.
func edgeProfiled(g *ddg.Graph, p, ev *interp.Access, kind int) bool {
	k := ddg.Flow
	switch kind {
	case kindAnti:
		k = ddg.Anti
	case kindOutput:
		k = ddg.Output
	}
	return g.HasEdge(p.Site, ev.Site, k, true)
}
