package guard

// Unit tests drive the monitor through its hook interface with
// synthesized access logs. The unsynchronized-conflict rule is only
// testable this way: a real run exhibiting it would be a genuine data
// race on the simulated memory, which the race detector (rightly)
// rejects.

import (
	"testing"

	"gdsx/internal/ddg"
	"gdsx/internal/interp"
)

// runRegion feeds one parallel region through the monitor and returns
// the report the ParallelEnd safe point produced (nil when clean).
func runRegion(t *testing.T, m *Monitor, nt int, evs []interp.Access) (rep *Report) {
	t.Helper()
	h := m.Hooks()
	h.ParallelStart(1, nt)
	for _, ev := range evs {
		h.Observe(ev)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ab, ok := r.(interp.Abort)
		if !ok {
			panic(r)
		}
		ve, ok := ab.Err.(*ViolationError)
		if !ok {
			t.Fatalf("abort with %T, want *ViolationError", ab.Err)
		}
		rep = ve.Report
	}()
	h.ParallelEnd(1)
	return nil
}

func access(site int, addr, size int64, tid int, iter int64, store bool) interp.Access {
	return interp.Access{Site: site, Addr: addr, Size: size, Tid: tid, Iter: iter, Store: store}
}

func singleRule(t *testing.T, rep *Report, rule string) Violation {
	t.Helper()
	if rep == nil {
		t.Fatalf("expected a %s violation, got none", rule)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("report has no violations: %+v", rep)
	}
	v := rep.Violations[0]
	if v.Rule != rule {
		t.Fatalf("rule %q, want %q (report: %s)", v.Rule, rule, rep)
	}
	return v
}

func TestConflictCrossThread(t *testing.T) {
	m := New(Config{Threads: 2})
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 5000, 8, 0, 0, true),
		access(11, 5000, 8, 1, 1, false),
	})
	v := singleRule(t, rep, RuleConflict)
	if v.Site != 11 || v.OtherSite != 10 {
		t.Fatalf("site pair (%d, %d), want (11, 10)", v.Site, v.OtherSite)
	}
	if v.Tid != 1 || v.OtherTid != 0 || v.Iter != 1 || v.OtherIter != 0 {
		t.Fatalf("wrong attribution: %+v", v)
	}
}

func TestConflictNeedsWrite(t *testing.T) {
	m := New(Config{Threads: 2})
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 5000, 8, 0, 0, false),
		access(11, 5000, 8, 1, 1, false),
	})
	if rep != nil {
		t.Fatalf("read-read flagged: %s", rep)
	}
}

func TestConflictSameThreadLegal(t *testing.T) {
	m := New(Config{Threads: 2})
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 5000, 8, 0, 0, true),
		access(11, 5000, 8, 0, 2, false),
	})
	if rep != nil {
		t.Fatalf("same-thread program order flagged: %s", rep)
	}
}

func TestConflictOrderedSectionExempt(t *testing.T) {
	m := New(Config{Threads: 2})
	w := access(10, 5000, 8, 0, 0, true)
	w.Ordered = true
	r := access(11, 5000, 8, 1, 1, false)
	r.Ordered = true
	if rep := runRegion(t, m, 2, []interp.Access{w, r}); rep != nil {
		t.Fatalf("ordered-section pair flagged: %s", rep)
	}
	// One side outside the ordered section is not serialized.
	r2 := access(11, 5000, 8, 1, 1, false)
	m2 := New(Config{Threads: 2})
	if rep := runRegion(t, m2, 2, []interp.Access{w, r2}); rep == nil {
		t.Fatalf("half-ordered conflict not flagged")
	}
}

func TestConflictProfiledEdgeTolerated(t *testing.T) {
	g := ddg.NewGraph(1)
	g.AddEdge(10, 11, ddg.Flow, true)
	m := New(Config{Threads: 2, Graphs: map[int]*ddg.Graph{1: g}})
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 5000, 8, 0, 0, true),
		access(11, 5000, 8, 1, 1, false),
	})
	if rep != nil {
		t.Fatalf("profiled carried flow flagged: %s", rep)
	}
	// The reverse direction is not in the graph.
	m2 := New(Config{Threads: 2, Graphs: map[int]*ddg.Graph{1: g}})
	rep = runRegion(t, m2, 2, []interp.Access{
		access(11, 5000, 8, 0, 0, true),
		access(10, 5000, 8, 1, 1, false),
	})
	if rep == nil {
		t.Fatalf("unprofiled conflict direction not flagged")
	}
}

func TestDefKillsHistory(t *testing.T) {
	m := New(Config{Threads: 2})
	def := access(12, 5000, 8, 1, 1, true)
	def.Def = true
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 5000, 8, 0, 0, true),
		def, // iteration-fresh storage reusing the address
		access(11, 5000, 8, 1, 1, true),
	})
	if rep != nil {
		t.Fatalf("redefined storage flagged: %s", rep)
	}
}

func TestForeignCopyBonded(t *testing.T) {
	m := New(Config{Threads: 4})
	m.Hooks().Expand(8000, 16, 0) // copies at 8000, 8016, 8032, 8048
	rep := runRegion(t, m, 4, []interp.Access{
		access(10, 8016+4, 8, 0, 0, true), // thread 0 writing copy 1
	})
	v := singleRule(t, rep, RuleForeignCopy)
	if v.Copy != 1 || v.Tid != 0 {
		t.Fatalf("copy %d thread %d, want copy 1 thread 0", v.Copy, v.Tid)
	}
}

func TestOwnAndSharedCopyLegal(t *testing.T) {
	m := New(Config{Threads: 4})
	m.Hooks().Expand(8000, 16, 0)
	rep := runRegion(t, m, 4, []interp.Access{
		access(10, 8032, 8, 2, 2, true),  // thread 2 in its own copy
		access(11, 8032, 8, 2, 2, false), // reads its own write back
		access(12, 8000, 8, 0, 0, true),  // thread 0 in the shared copy
	})
	if rep != nil {
		t.Fatalf("own/shared copy access flagged: %s", rep)
	}
}

func TestCarriedFlowAcrossCopies(t *testing.T) {
	m := New(Config{Threads: 2})
	m.Hooks().Expand(8000, 16, 0)
	rep := runRegion(t, m, 2, []interp.Access{
		access(10, 8000, 8, 0, 0, true),     // iteration 0 writes copy 0
		access(11, 8000+16, 8, 1, 5, false), // iteration 5 reads copy 1: stale
	})
	v := singleRule(t, rep, RuleCarriedFlow)
	if v.OtherSite != 10 || v.Site != 11 {
		t.Fatalf("site pair (%d, %d), want (11, 10)", v.Site, v.OtherSite)
	}
	if v.OtherIter != 0 || v.Iter != 5 {
		t.Fatalf("iteration pair (%d, %d), want (5, 0)", v.Iter, v.OtherIter)
	}
}

func TestStaleCopyRead(t *testing.T) {
	m := New(Config{Threads: 2})
	m.Hooks().Expand(8000, 16, 0)
	rep := runRegion(t, m, 2, []interp.Access{
		access(11, 8000+16, 8, 1, 3, false), // nothing ever wrote the byte
	})
	v := singleRule(t, rep, RuleStaleCopy)
	if v.Copy != 1 {
		t.Fatalf("copy %d, want 1", v.Copy)
	}
	// The same read through the original storage is the pre-loop value.
	m2 := New(Config{Threads: 2})
	m2.Hooks().Expand(8000, 16, 0)
	if rep := runRegion(t, m2, 2, []interp.Access{access(11, 8004, 8, 0, 0, false)}); rep != nil {
		t.Fatalf("copy-0 pre-loop read flagged: %s", rep)
	}
}

func TestPrivatePatternLegal(t *testing.T) {
	// The canonical thread-private pattern: every iteration writes its
	// copy before reading it. No rule may fire.
	m := New(Config{Threads: 2})
	m.Hooks().Expand(8000, 16, 0)
	var evs []interp.Access
	for iter := int64(0); iter < 8; iter++ {
		tid := int(iter / 4) // static chunks 0-3 and 4-7
		base := int64(8000 + tid*16)
		evs = append(evs,
			access(10, base, 8, tid, iter, true),
			access(11, base, 8, tid, iter, false))
	}
	if rep := runRegion(t, m, 2, evs); rep != nil {
		t.Fatalf("thread-private pattern flagged: %s", rep)
	}
}

func TestCanonicalInterleaved(t *testing.T) {
	// Interleaved layout: element i of copy t at base + (i*nt + t)*esz.
	notes := []note{{base: 4000, span: 32, esz: 8}} // 4 elements, 2 copies
	nt := 2
	for _, tc := range []struct {
		addr  int64
		canon int64
		copy  int
	}{
		{4000, 4000, 0}, // elem 0 copy 0
		{4008, 4000, 1}, // elem 0 copy 1
		{4016, 4008, 0}, // elem 1 copy 0
		{4024, 4008, 1}, // elem 1 copy 1
		{4060, 4028, 1}, // last byte: elem 3 copy 1, offset 4
	} {
		canon, cp, ok := canonical(notes, nt, tc.addr)
		if !ok || canon != tc.canon || cp != tc.copy {
			t.Fatalf("canonical(%d) = (%d, %d, %v), want (%d, %d, true)",
				tc.addr, canon, cp, ok, tc.canon, tc.copy)
		}
	}
	if _, _, ok := canonical(notes, nt, 4064); ok {
		t.Fatalf("address past the expanded range canonicalized")
	}
	if _, _, ok := canonical(notes, nt, 3999); ok {
		t.Fatalf("address before the expanded range canonicalized")
	}
}

func TestNoteSupersedeAndFree(t *testing.T) {
	m := New(Config{Threads: 2})
	h := m.Hooks()
	h.Expand(8000, 16, 0)
	h.Expand(8008, 8, 0) // overlapping re-allocation supersedes
	if len(m.notes) != 1 || m.notes[0].base != 8008 {
		t.Fatalf("supersede failed: %+v", m.notes)
	}
	h.Free(8008)
	if len(m.notes) != 0 {
		t.Fatalf("free left notes: %+v", m.notes)
	}
}

func TestViolationTotalAndDedup(t *testing.T) {
	m := New(Config{Threads: 2, MaxViolations: 4})
	var evs []interp.Access
	for i := int64(0); i < 10; i++ {
		evs = append(evs,
			access(10, 6000+i*8, 8, 0, 0, true),
			access(11, 6000+i*8, 8, 1, 1, false))
	}
	rep := runRegion(t, m, 2, evs)
	if rep == nil {
		t.Fatalf("no report")
	}
	if rep.Total != 10 {
		t.Fatalf("total %d, want 10", rep.Total)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("distinct %d, want 1 (same site pair)", len(rep.Violations))
	}
}
