// Package guard implements guarded parallel execution: a runtime
// access monitor that checks an expanded parallel run against the
// assumptions the transformation made from its training profile — the
// Definition 5 thread-private classification and the profiled
// loop-level DDG — and reports a dependence violation when an input
// exposes behaviour the profile never saw.
//
// The monitor is engine-agnostic: it attaches to the shared hook layer
// (Hooks.Observe / Hooks.Expand / Hooks.ParallelStart / ParallelEnd),
// so both the tree-walking and the closure-compiled engine are guarded
// by the same code. The expanded program is made self-describing by
// the expansion pass's GuardNotes mode: __expand_malloc and
// __expand_note markers announce the copy geometry (base address,
// per-copy span, element size for the interleaved layout) of every
// expanded structure, which lets the monitor map any concrete address
// back to (canonical native address, copy index) without needing
// access-site identities to survive the source-to-source rewrite.
//
// During a parallel region every thread appends its sited accesses to
// a private log of fixed-size pooled chunks — the no-violation path
// takes zero shared-cache-line writes. At the region's end — the safe
// point — the logs are merged in iteration order (reconstructing the
// sequential schedule, under any scheduling policy) and replayed
// against two byte-granular shadows:
//
//   - a canonical shadow, indexed by de-expanded addresses, which
//     detects reads whose sequential data source was another
//     iteration's write into a different copy (carried-flow), reads of
//     never-initialized non-zero copies that sequentially would have
//     seen pre-loop data (stale-copy-read), and accesses landing in a
//     copy belonging to neither the shared copy 0 nor the accessing
//     thread (foreign-copy-access);
//   - a raw shadow, indexed by concrete addresses, which detects
//     cross-thread cross-iteration conflicts with at least one write
//     that no ordered section serializes (unsynchronized-conflict) —
//     the dependences the profiled DDG missed.
//
// A detected violation aborts the run via interp.Abort from the
// ParallelEnd hook; the driver then discards the expanded run and
// re-executes the native program sequentially.
package guard

import (
	"fmt"
	"sort"
	"sync"

	"gdsx/internal/ddg"
	"gdsx/internal/interp"
	"gdsx/internal/obs"
	"gdsx/internal/sema"
)

// Config configures a Monitor.
type Config struct {
	// Threads is the thread count the program was expanded for; it must
	// match the machine's NumThreads (the __expand_malloc builtin
	// allocates span*Threads bytes under the same assumption).
	Threads int

	// Info is the checked info of the *expanded* program; violation
	// reports resolve site IDs to source positions and text through it.
	Info *sema.Info

	// Graphs optionally maps loop IDs to dependence graphs whose site
	// IDs live in Info's space. When a graph is present for the
	// monitored loop, raw cross-thread conflicts matching a profiled
	// carried edge are tolerated (exact-edge mode, used by unit tests
	// and native-program monitoring); without a graph every
	// unsynchronized cross-thread conflict is a violation, which is the
	// right default for expanded DOALL/DOACROSS programs where the
	// residual profiled dependences are ordered-section protected.
	Graphs map[int]*ddg.Graph

	// MaxViolations caps the number of distinct violations kept in the
	// report (the total count is always exact). Default 16.
	MaxViolations int

	// CheckOwnStack makes the monitor log the accesses parallel workers
	// make to their own stacks instead of waiving them as thread-private
	// (per-thread stacks are disjoint address ranges that live exactly
	// as long as the region, so the Definition 5 classification rules
	// them out before expansion ever runs). The waiver removes the bulk
	// of the in-region log volume; the one behaviour it gives up is
	// attribution through an escaped stack local where the owning
	// thread's side of the conflict is the waived access. Enable for
	// exhaustive logs when debugging such a case.
	CheckOwnStack bool

	// Obs optionally receives the monitor's observability feed: a
	// guard-verdict trace event per safe-point replay, per-thread
	// log-size histograms, and replay/violation counters. Nil disables
	// the feed.
	Obs *obs.Observer

	// Tiers attaches the adaptive sampling-tier controller (see
	// adaptive.go): regions that stay clean drop to sampled checking,
	// and flow-shaped evidence seen under sampling raises a suspicion
	// (rollback + sequential re-execution, no strike) instead of a
	// violation. Nil keeps every region fully guarded — the pre-adaptive
	// behaviour.
	Tiers *TierController
}

// note records the copy geometry of one expanded structure:
// [base, base+span*threads) holds the copies; esz > 0 selects the
// interleaved layout with that element size, esz == 0 the bonded one.
type note struct {
	base, span, esz int64
}

// Monitor is the guarded-execution access monitor. Install its Hooks()
// on the machine that runs the expanded program.
type Monitor struct {
	cfg Config

	// mu guards notes; expansion markers and frees execute in
	// sequential program context, but the lock keeps the monitor safe
	// against future in-region allocation patterns.
	mu    sync.Mutex
	notes []note // sorted by base

	// Region state. active is written by ParallelStart/ParallelEnd on
	// the spawning thread, which happens-before/after all worker
	// goroutines, and each worker appends only to its own log slot.
	active      bool
	loop        int
	nthreads    int
	tlogs       []tlog
	regionNotes []note

	// Sampling plan of the active region (from Config.Tiers):
	// sampleK <= 1 is full guarding, otherwise only iterations with
	// Iter % sampleK == samplePhase are logged (plus every Def event,
	// which kills byte history and must never be missed).
	sampleK     int
	samplePhase int64

	// chunkPool recycles sealed log chunks across regions (guarded by
	// mu); steady-state logging allocates nothing.
	chunkPool [][]interp.Access

	// Replay scratch, reused across safe points: the merged event
	// buffer, the segment table it is built from, and the two shadows,
	// whose epoch tag makes prior regions' contents invisible without
	// clearing a byte.
	merged []interp.Access
	seqs   []int32
	segs   []logSeg
	raw    shadow
	can    shadow
	epoch  uint32

	// reports accumulates every violation the monitor detected, in
	// region order. With region-scoped recovery a run can survive
	// several violating regions, so one run may collect several reports.
	reports []*Report
}

// logChunkCap is the event capacity of one log chunk. Fixed-size
// chunks replace a growing slice so logging never pays the copy-and-
// clear of slice growth: a full chunk is sealed and a fresh one drawn
// from the pool.
const logChunkCap = 4096

// tlog is one thread's append-only access log: the active chunk plus
// the sealed chunks preceding it. Only the owning thread appends, so
// the append path is lock-free; the monitor's mutex is taken once per
// logChunkCap events to draw a chunk from the pool.
type tlog struct {
	cur  []interp.Access
	full [][]interp.Access
}

// count returns the number of events the log holds.
func (l *tlog) count() int {
	n := len(l.cur)
	for _, c := range l.full {
		n += len(c)
	}
	return n
}

// New creates a Monitor.
func New(cfg Config) *Monitor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 16
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	return &Monitor{cfg: cfg}
}

// Hooks returns the interpreter hooks that feed the monitor.
func (m *Monitor) Hooks() *interp.Hooks {
	return &interp.Hooks{
		Observe: m.observe,
		// The monitor checks cross-iteration effects, which exist only
		// inside parallel regions: RegionOnly lets the engines keep the
		// sequential fast path (including register promotion) between
		// regions instead of funnelling every access through the hook.
		RegionOnly: true,
		// A worker's own stack is thread-private by construction, so
		// those accesses can neither conflict across threads nor alias
		// an expanded structure; see Config.CheckOwnStack.
		PrivateStacks:  !m.cfg.CheckOwnStack,
		Expand:         m.noteExpand,
		Free:           m.free,
		ParallelStart:  m.parallelStart,
		ParallelEnd:    m.parallelEnd,
		ParallelCancel: m.parallelCancel,
		// Guarded regions must not run under dynamic self-scheduling,
		// whose placement makes detection timing-dependent; the machine
		// substitutes work stealing and reports a structured warning.
		Guarded: true,
	}
}

// Reports returns every violation report the monitor has raised, in
// region order. Under region-scoped recovery each report corresponds
// to one rolled-back region; without recovery at most one exists (the
// abort ends the run).
func (m *Monitor) Reports() []*Report {
	return append([]*Report(nil), m.reports...)
}

func (m *Monitor) total(n note) int64 { return n.span * int64(m.cfg.Threads) }

// noteExpand records the geometry of an expanded structure. A marker
// covering addresses of an earlier note supersedes it (recycled heap
// blocks, re-entered frames).
func (m *Monitor) noteExpand(base, span, esz int64) {
	if span <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := base + span*int64(m.cfg.Threads)
	out := m.notes[:0]
	for _, n := range m.notes {
		if base < n.base+m.total(n) && end > n.base {
			continue // superseded
		}
		out = append(out, n)
	}
	m.notes = append(out, note{base: base, span: span, esz: esz})
	sort.Slice(m.notes, func(i, j int) bool { return m.notes[i].base < m.notes[j].base })
}

// free drops the note of a freed expanded heap structure.
func (m *Monitor) free(base int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range m.notes {
		if n.base == base {
			m.notes = append(m.notes[:i], m.notes[i+1:]...)
			return
		}
	}
}

func (m *Monitor) parallelStart(loopID, nthreads int) {
	m.mu.Lock()
	m.regionNotes = append(m.regionNotes[:0], m.notes...)
	m.mu.Unlock()
	m.loop = loopID
	m.nthreads = nthreads
	m.sampleK, m.samplePhase = 1, 0
	if tc := m.cfg.Tiers; tc != nil {
		m.sampleK, m.samplePhase = tc.plan(loopID)
	}
	if cap(m.tlogs) >= nthreads {
		m.tlogs = m.tlogs[:nthreads]
	} else {
		m.tlogs = make([]tlog, nthreads)
	}
	m.active = true
}

// observe appends the access to the observing thread's log. Each
// worker owns its slot, so the append path is synchronization-free;
// outside a parallel region the monitor is inert.
func (m *Monitor) observe(ev interp.Access) {
	if !m.active || ev.Tid >= len(m.tlogs) {
		return
	}
	// Sampled tier: whole iterations are skipped (never single accesses,
	// which would tear write/read pairs within an iteration), except
	// definition events — a Def kills byte history and drops stale
	// expansion notes, and missing one would manufacture false evidence.
	if m.sampleK > 1 && !ev.Def && ev.Iter%int64(m.sampleK) != m.samplePhase {
		return
	}
	l := &m.tlogs[ev.Tid]
	if len(l.cur) == cap(l.cur) {
		if l.cur != nil {
			l.full = append(l.full, l.cur)
		}
		l.cur = m.getChunk()
	}
	l.cur = append(l.cur, ev)
}

// getChunk draws an empty chunk from the pool (or allocates one).
func (m *Monitor) getChunk() []interp.Access {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.chunkPool); n > 0 {
		c := m.chunkPool[n-1]
		m.chunkPool = m.chunkPool[:n-1]
		return c
	}
	return make([]interp.Access, 0, logChunkCap)
}

// recycleLogs returns every chunk of the region's logs to the pool and
// resets the per-thread logs. It runs before a violation abort
// unwinds, so the chunks never leak.
func (m *Monitor) recycleLogs() {
	m.mu.Lock()
	for i := range m.tlogs {
		l := &m.tlogs[i]
		for _, c := range l.full {
			m.chunkPool = append(m.chunkPool, c[:0])
		}
		if l.cur != nil {
			m.chunkPool = append(m.chunkPool, l.cur[:0])
		}
		l.cur, l.full = nil, nil
	}
	m.mu.Unlock()
}

// parallelEnd is the safe point: replay the region's logs and abort
// the run on a detected violation. The panic unwinds as interp.Abort,
// which Machine.Run converts into the returned error; it also wins
// over a worker fault re-raised through this deferred hook, because a
// violation explains the fault.
func (m *Monitor) parallelEnd(loopID int) {
	if !m.active {
		return
	}
	m.active = false
	rep := m.replay()
	// Flow-shaped evidence found under a sampled tier may be a sampling
	// artifact (the true data source could be an unlogged write): demote
	// it to a suspicion — rollback + sequential re-execution without a
	// strike — and escalate the region back to full guarding, which
	// settles the question on the next execution. Hard evidence
	// (foreign-copy, unsynchronized-conflict) stays a violation at any
	// tier.
	suspicion := rep != nil && m.sampleK > 1 && !rep.hardEvidence()
	m.emitVerdict(loopID, rep, suspicion)
	m.recycleLogs()
	tc := m.cfg.Tiers
	switch {
	case rep == nil:
		if tc != nil {
			tc.noteClean(loopID)
		}
	case suspicion:
		if tc != nil {
			tc.noteSuspicion(loopID)
		}
		detail := "flow-shaped evidence under sampled guarding"
		if len(rep.Violations) > 0 {
			v := rep.Violations[0]
			detail = fmt.Sprintf("[%s] site %d %s at %s (iteration %d, thread %d)",
				v.Rule, v.Site, v.Text, v.Pos, v.Iter, v.Tid)
		}
		panic(interp.Abort{Err: &interp.SuspicionError{Loop: loopID, Detail: detail}})
	default:
		if tc != nil {
			tc.noteViolation(loopID)
		}
		m.reports = append(m.reports, rep)
		panic(interp.Abort{Err: &ViolationError{Report: rep}})
	}
}

// emitVerdict publishes the outcome of one safe-point replay: a
// guard-verdict trace event (labelled "clean" or with the first
// violation's rule) plus replay/log-size/violation metrics. It runs
// before the violation panic, so an aborted region's verdict is still
// recorded.
func (m *Monitor) emitVerdict(loopID int, rep *Report, suspicion bool) {
	o := m.cfg.Obs
	if o == nil {
		return
	}
	var logged int64
	hLog := o.Histogram("guard.log_size")
	for i := range m.tlogs {
		n := int64(m.tlogs[i].count())
		logged += n
		hLog.Observe(n)
	}
	o.Counter("guard.replays").Inc()
	o.Counter("guard.events_logged").Add(logged)
	if m.sampleK > 1 {
		o.Counter("guard.sampled_replays").Inc()
	}
	label := "clean"
	var total int64
	switch {
	case suspicion:
		total = int64(rep.Total)
		o.Counter("guard.suspicions").Inc()
		label = "suspicion"
		if len(rep.Violations) > 0 {
			label = "suspicion:" + rep.Violations[0].Rule
		}
	case rep != nil:
		total = int64(rep.Total)
		o.Counter("guard.violations").Add(total)
		o.Counter("guard.violating_regions").Inc()
		if len(rep.Violations) > 0 {
			label = rep.Violations[0].Rule
		}
	}
	o.Emit(obs.Event{Name: "guard-verdict", Ph: 'i', Loop: loopID, Iter: -1,
		Label: label, V1: logged, V2: total})
}

// parallelCancel discards a cancelled region's logs without the
// safe-point replay: the region was abandoned mid-flight (watchdog
// timeout), so the per-thread logs are truncated at arbitrary points
// and replaying them would manufacture false violations.
func (m *Monitor) parallelCancel(loopID int) {
	if !m.active {
		return
	}
	m.active = false
	m.recycleLogs()
	if o := m.cfg.Obs; o != nil {
		o.Counter("guard.discarded_regions").Inc()
		o.Emit(obs.Event{Name: "guard-verdict", Ph: 'i', Loop: loopID, Iter: -1,
			Label: "discarded"})
	}
}

// canonical maps a concrete address to its de-expanded (canonical)
// address and copy index. ok is false for addresses outside every
// expanded structure.
func canonical(notes []note, nt int, a int64) (canon int64, copy int, ok bool) {
	i := sort.Search(len(notes), func(i int) bool { return notes[i].base > a }) - 1
	if i < 0 {
		return 0, 0, false
	}
	n := notes[i]
	if a >= n.base+n.span*int64(nt) {
		return 0, 0, false
	}
	off := a - n.base
	if n.esz > 0 {
		// Interleaved: element i of copy t at base + (i*nt + t)*esz.
		copy = int((off / n.esz) % int64(nt))
		canon = n.base + (off/(n.esz*int64(nt)))*n.esz + off%n.esz
		return canon, copy, true
	}
	// Bonded: copy t spans [base + t*span, base + (t+1)*span).
	copy = int(off / n.span)
	canon = n.base + off%n.span
	return canon, copy, true
}

// dropStale removes notes overlapped by a definition of fresh storage
// (a callee frame or in-loop allocation reusing addresses), keeping a
// note whose full expanded range the definition covers exactly — that
// is the expanded allocation's own definition event.
func dropStale(notes []note, nt int, base, size int64) []note {
	out := notes[:0]
	for _, n := range notes {
		end := n.base + n.span*int64(nt)
		if base < end && base+size > n.base &&
			!(base == n.base && base+size == end) {
			continue
		}
		out = append(out, n)
	}
	return out
}
