package guard

import "testing"

// TestTierLadder walks one region through the sampling ladder: full
// guarding until a clean streak, promotion to the first sampled tier
// with a rotating phase, escalation back to full on a suspicion (with
// a doubled re-earn streak), re-promotion, and escalation on a
// confirmed violation.
func TestTierLadder(t *testing.T) {
	tc := NewTierController(TierSpec{}) // defaults: promote after 3, k=4

	if k, _ := tc.plan(1); k != 1 {
		t.Fatalf("fresh region plans k=%d, want 1 (full guarding)", k)
	}
	for i := 0; i < 3; i++ {
		tc.noteClean(1)
	}
	k, p1 := tc.plan(1)
	if k != 4 {
		t.Fatalf("after 3 clean executions k=%d, want 4", k)
	}
	_, p2 := tc.plan(1)
	_, p3 := tc.plan(1)
	if p2 != (p1+1)%4 || p3 != (p2+1)%4 {
		t.Errorf("phase does not rotate per execution: %d, %d, %d", p1, p2, p3)
	}

	tc.noteSuspicion(1)
	if k, _ := tc.plan(1); k != 1 {
		t.Fatalf("after a suspicion k=%d, want 1 (escalated to full)", k)
	}
	// The promotion streak doubled: 3 cleans no longer suffice.
	for i := 0; i < 3; i++ {
		tc.noteClean(1)
	}
	if k, _ := tc.plan(1); k != 1 {
		t.Fatal("region re-promoted before re-earning the doubled streak")
	}
	for i := 0; i < 3; i++ {
		tc.noteClean(1)
	}
	if k, _ := tc.plan(1); k != 4 {
		t.Fatal("region not re-promoted after the doubled streak")
	}

	// A clean streak at a sampled tier escalates k geometrically, up to
	// the cap.
	for i := 0; i < 3; i++ {
		tc.noteClean(1)
	}
	if k, _ := tc.plan(1); k != 8 {
		t.Fatalf("after a clean sampled streak k=%d, want 8", k)
	}
	for i := 0; i < 30; i++ {
		tc.noteClean(1)
	}
	if k, _ := tc.plan(1); k != 64 {
		t.Fatalf("escalation not capped: k=%d, want 64", k)
	}

	tc.noteViolation(1)
	if k, _ := tc.plan(1); k != 1 {
		t.Fatal("confirmed violation did not restore full guarding")
	}

	snaps := tc.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d regions, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Loop != 1 || s.Tier != "full" || s.K != 1 {
		t.Errorf("snapshot %+v: want loop 1 at the full tier", s)
	}
	if s.Suspicions != 1 || s.Violations != 1 {
		t.Errorf("snapshot %+v: want 1 suspicion and 1 violation", s)
	}
	if s.Escalations != 2 {
		t.Errorf("snapshot records %d escalations, want 2", s.Escalations)
	}
	if s.Promotions < 2 {
		t.Errorf("snapshot records %d promotions, want at least 2", s.Promotions)
	}
}

// TestTierSpecDefaults checks the zero-value backfill.
func TestTierSpecDefaults(t *testing.T) {
	var s TierSpec
	if s.promoteAfter() != 3 || s.sampleK() != 4 || s.maxK() != 64 {
		t.Errorf("zero spec resolves to promote=%d k=%d max=%d, want 3/4/64",
			s.promoteAfter(), s.sampleK(), s.maxK())
	}
	s = TierSpec{SampleK: 1, MaxK: 2}
	if s.sampleK() != 2 {
		t.Errorf("SampleK=1 resolves to %d, want 2", s.sampleK())
	}
	if s.maxK() != 2 {
		t.Errorf("MaxK=2 resolves to %d, want 2", s.maxK())
	}
	s = TierSpec{SampleK: 8, MaxK: 4}
	if s.maxK() != 8 {
		t.Errorf("MaxK below SampleK resolves to %d, want 8", s.maxK())
	}
}
