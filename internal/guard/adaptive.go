// Adaptive guard sampling tiers: regions start fully guarded, and once
// they have proven clean for a streak of executions the monitor drops
// to sampled checking — only every k-th iteration's accesses are
// logged, with k escalating geometrically while the region stays
// clean. Sampling keeps the two hard rules sound (a foreign-copy
// access is a property of the single access; an unsynchronized
// conflict is witnessed by two logged events and no missing event can
// excuse it), while evidence for the two flow-shaped rules can be a
// sampling artifact (the true data source may be an unlogged write),
// so under a sampled tier those demote to *suspicions*: the region
// rolls back and re-executes sequentially — output stays correct
// without a strike — and the tier escalates back to full guarding,
// which settles the question on the next execution. The sampling phase
// rotates every execution, so evidence parked on unsampled iterations
// is picked up within at most k executions of the region.

package guard

import (
	"fmt"
	"sort"
	"sync"
)

// TierSpec parameterizes the sampling ladder. The zero value of any
// field selects its default.
type TierSpec struct {
	// PromoteAfter is the clean-execution streak required to leave full
	// guarding for the first sampled tier, and to escalate k at a
	// sampled tier (default 3).
	PromoteAfter int
	// SampleK is the sampling period of the first sampled tier: one in
	// k iterations is checked (default 4; values < 2 mean 2).
	SampleK int
	// MaxK caps the geometric escalation of the sampling period
	// (default 64).
	MaxK int
}

func (s TierSpec) promoteAfter() int {
	if s.PromoteAfter <= 0 {
		return 3
	}
	return s.PromoteAfter
}

func (s TierSpec) sampleK() int {
	if s.SampleK < 2 {
		if s.SampleK == 0 {
			return 4
		}
		return 2
	}
	return s.SampleK
}

func (s TierSpec) maxK() int {
	k := s.MaxK
	if k <= 0 {
		k = 64
	}
	if k < s.sampleK() {
		k = s.sampleK()
	}
	return k
}

// tierState is the ladder position of one region (keyed by loop ID).
type tierState struct {
	k     int // current sampling period; 1 = full guarding
	clean int // clean-execution streak at the current tier
	execs int // total planned executions (rotates the sampling phase)
	// promoteAt is the streak required to leave full guarding; it
	// doubles on every suspicion (a region that keeps looking
	// suspicious has to re-earn trust), capped at 64x the spec value.
	promoteAt int

	suspicions  int
	violations  int
	escalations int // demotions back to full guarding
	promotions  int // moves to a sampled tier or a higher k
}

// TierController holds the sampling-ladder state of every region,
// shared across the program runs of an adaptive session so tier
// positions survive re-expansion. The zero value is not usable; create
// one with NewTierController.
type TierController struct {
	spec TierSpec
	mu   sync.Mutex
	loop map[int]*tierState
}

// NewTierController creates a controller for the given spec.
func NewTierController(spec TierSpec) *TierController {
	return &TierController{spec: spec, loop: map[int]*tierState{}}
}

func (tc *TierController) state(loop int) *tierState {
	st := tc.loop[loop]
	if st == nil {
		st = &tierState{k: 1, promoteAt: tc.spec.promoteAfter()}
		tc.loop[loop] = st
	}
	return st
}

// plan returns the sampling period and phase for the next execution of
// the region: k == 1 means full guarding, k > 1 logs only iterations
// with iter % k == phase (plus every definition event). The phase
// rotates per execution so no iteration stays unsampled forever.
func (tc *TierController) plan(loop int) (k int, phase int64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	st := tc.state(loop)
	st.execs++
	if st.k <= 1 {
		return 1, 0
	}
	return st.k, int64((st.execs - 1) % st.k)
}

// noteClean records a clean execution: a long enough streak promotes
// the region from full guarding to the first sampled tier, or doubles
// k at a sampled tier (up to MaxK).
func (tc *TierController) noteClean(loop int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	st := tc.state(loop)
	st.clean++
	if st.k <= 1 {
		if st.clean >= st.promoteAt {
			st.k = tc.spec.sampleK()
			st.clean = 0
			st.promotions++
		}
		return
	}
	if st.clean >= tc.spec.promoteAfter() && st.k < tc.spec.maxK() {
		st.k = min(st.k*2, tc.spec.maxK())
		st.clean = 0
		st.promotions++
	}
}

// noteSuspicion escalates the region back to full guarding after a
// sampled-tier suspicion and doubles the streak it must re-earn.
func (tc *TierController) noteSuspicion(loop int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	st := tc.state(loop)
	st.suspicions++
	if st.k > 1 {
		st.escalations++
	}
	st.k = 1
	st.clean = 0
	if st.promoteAt < 64*tc.spec.promoteAfter() {
		st.promoteAt *= 2
	}
}

// noteViolation escalates the region back to full guarding after a
// confirmed violation (strike accounting is the recovery controller's
// job, not the tier's).
func (tc *TierController) noteViolation(loop int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	st := tc.state(loop)
	st.violations++
	if st.k > 1 {
		st.escalations++
	}
	st.k = 1
	st.clean = 0
}

// TierStats is the published ladder position of one region.
type TierStats struct {
	Loop int `json:"loop"`
	// Tier is "full" or "sampled/k<period>".
	Tier string `json:"tier"`
	K    int    `json:"k"`
	// CleanStreak is the current clean-execution streak.
	CleanStreak int `json:"clean_streak"`
	Suspicions  int `json:"suspicions,omitempty"`
	Violations  int `json:"violations,omitempty"`
	Escalations int `json:"escalations,omitempty"`
	Promotions  int `json:"promotions,omitempty"`
}

// Snapshot returns the ladder position of every region, sorted by loop
// ID.
func (tc *TierController) Snapshot() []TierStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]TierStats, 0, len(tc.loop))
	for id, st := range tc.loop {
		ts := TierStats{
			Loop: id, K: st.k, Tier: "full",
			CleanStreak: st.clean,
			Suspicions:  st.suspicions,
			Violations:  st.violations,
			Escalations: st.escalations,
			Promotions:  st.promotions,
		}
		if st.k > 1 {
			ts.Tier = fmt.Sprintf("sampled/k%d", st.k)
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loop < out[j].Loop })
	return out
}
