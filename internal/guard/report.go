package guard

import (
	"fmt"
	"strings"

	"gdsx/internal/interp"
)

// Violation rules.
const (
	// RuleCarriedFlow: a read whose sequential data source is another
	// iteration's write that landed in a different copy — a
	// loop-carried flow dependence the thread-private classification
	// (Definition 5) ruled out on the training input.
	RuleCarriedFlow = "carried-flow"
	// RuleStaleCopy: a read through a non-zero copy of a byte no
	// iteration has written; sequential execution would observe the
	// pre-loop value, but copies other than 0 start zero-filled.
	RuleStaleCopy = "stale-copy-read"
	// RuleForeignCopy: an access landing in a copy that belongs to
	// neither the shared copy 0 nor the accessing thread.
	RuleForeignCopy = "foreign-copy-access"
	// RuleConflict: a cross-thread, cross-iteration conflict on the
	// same concrete address with at least one write and no ordered
	// section serializing both sides — an unsynchronized dependence
	// absent from the profiled DDG.
	RuleConflict = "unsynchronized-conflict"
)

// Violation describes one detected dependence violation. Site/Pos/Text
// identify the violating access in the expanded program; the Other*
// fields identify the conflicting access when one exists (a
// stale-copy-read has no in-region counterpart).
type Violation struct {
	Rule string `json:"rule"`
	Addr int64  `json:"addr"`

	Site int    `json:"site"`
	Pos  string `json:"pos"`
	Text string `json:"text"`
	Iter int64  `json:"iter"`
	Tid  int    `json:"tid"`
	// Copy is the copy index the access landed in, or -1 when the
	// address is outside every expanded structure.
	Copy int `json:"copy"`

	OtherSite int    `json:"other_site,omitempty"`
	OtherPos  string `json:"other_pos,omitempty"`
	OtherText string `json:"other_text,omitempty"`
	OtherIter int64  `json:"other_iter,omitempty"`
	OtherTid  int    `json:"other_tid,omitempty"`
}

// Report collects the violations of one parallel region.
type Report struct {
	Loop    int `json:"loop"`
	Threads int `json:"threads"`
	// Total counts every flagged access; Violations keeps the first
	// occurrence of each distinct (rule, site, other-site) triple, up
	// to the configured cap.
	Total      int         `json:"total_violations"`
	Violations []Violation `json:"violations"`
	// ByRule counts every flagged access per rule (not capped, unlike
	// Violations). The sampled-tier classifier uses it: foreign-copy and
	// unsynchronized-conflict evidence is sound under sampling, while
	// the flow-shaped rules may be sampling artifacts.
	ByRule map[string]int `json:"by_rule,omitempty"`
}

// hardEvidence reports whether the report contains evidence that
// cannot be a sampling artifact: a foreign-copy access is a property
// of the single logged access, and an unsynchronized conflict is
// witnessed by two logged events that no unlogged event could excuse.
// The flow-shaped rules (carried-flow, stale-copy-read) infer a data
// source from the absence of intervening writes — which sampling can
// fake — so they are soft evidence.
func (r *Report) hardEvidence() bool {
	return r.ByRule[RuleForeignCopy] > 0 || r.ByRule[RuleConflict] > 0
}

// vioKey dedups reported violations.
type vioKey struct {
	rule        string
	site, other int
}

func (m *Monitor) newViolation(rule string, ev interp.Access, addr int64, cp int, other *interp.Access) Violation {
	v := Violation{
		Rule: rule, Addr: addr,
		Site: ev.Site, Iter: ev.Iter, Tid: ev.Tid, Copy: cp,
	}
	v.Pos, v.Text = m.siteInfo(ev.Site, ev.Store)
	if other != nil {
		v.OtherSite, v.OtherIter, v.OtherTid = other.Site, other.Iter, other.Tid
		v.OtherPos, v.OtherText = m.siteInfo(other.Site, other.Store)
	}
	return v
}

// siteInfo resolves a site ID against the expanded program's info.
func (m *Monitor) siteInfo(site int, store bool) (pos, text string) {
	pos, text = "-", "?"
	if m.cfg.Info == nil {
		return
	}
	as := m.cfg.Info.Accesses[site]
	if as == nil {
		return
	}
	kind := "read of"
	if store {
		kind = "write to"
	}
	return as.Pos.String(), fmt.Sprintf("%s %q", kind, as.Text)
}

// String renders the report for terminals and logs.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %d (%d threads): %d dependence violation(s), %d distinct\n",
		r.Loop, r.Threads, r.Total, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  [%s] site %d %s at %s (iteration %d, thread %d, copy %d)\n",
			v.Rule, v.Site, v.Text, v.Pos, v.Iter, v.Tid, v.Copy)
		if v.OtherSite != 0 || v.OtherText != "" {
			fmt.Fprintf(&sb, "    conflicts with site %d %s at %s (iteration %d, thread %d)\n",
				v.OtherSite, v.OtherText, v.OtherPos, v.OtherIter, v.OtherTid)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ViolationError aborts a guarded run; the driver catches it and falls
// back to sequential re-execution of the native program.
type ViolationError struct {
	Report *Report
}

func (e *ViolationError) Error() string {
	r := e.Report
	msg := fmt.Sprintf("guard: %d dependence violation(s) detected in parallel loop %d", r.Total, r.Loop)
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		msg += fmt.Sprintf("; first: [%s] site %d %s at %s (iteration %d, thread %d)",
			v.Rule, v.Site, v.Text, v.Pos, v.Iter, v.Tid)
	}
	return msg
}
