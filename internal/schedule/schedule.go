// Package schedule computes the simulated parallel execution time of
// traced parallel loops. The interpreter executes a parallel loop once,
// sequentially, recording each iteration's op cost and ordered-section
// boundaries (interp.LoopTrace); this package replays that trace under
// the runtime's scheduling policies — static chunking for DOALL,
// dynamic chunk-1 with ordered sections for DOACROSS — for any thread
// count, on a machine model with a configurable memory-bandwidth bound.
//
// This substitutes for the paper's 8-core Opteron: speedups are
// deterministic functions of the program's real operation counts and
// dependence structure rather than of the host's core count, while the
// phenomena the paper reports (DOACROSS synchronization plateaus,
// bandwidth-bound loops, load imbalance) emerge from the same causes.
package schedule

import (
	"fmt"

	"gdsx/internal/ast"
	"gdsx/internal/interp"
	"gdsx/internal/obs"
)

// Policy selects the DOALL dispatch model. DOACROSS loops always use
// the ordered dynamic pipeline, as in the runtime.
type Policy int

const (
	// PolicyStatic models contiguous static chunks — the reference
	// scheduler, and the zero value so the paper-figure models are
	// unchanged.
	PolicyStatic Policy = iota
	// PolicyStealing mirrors the runtime's work-stealing scheduler
	// (interp/sched.go): the static initial partition with the first
	// grain pinned, owners consuming grain-sized pieces from the
	// front, and an idle thread stealing the upper half of a victim's
	// remainder — always the lowest range that still lies above the
	// thief's last executed iteration.
	PolicyStealing
)

// Model holds the cost constants of the simulated machine, in
// interpreter ops (one op ≈ one simple instruction).
type Model struct {
	// Policy is the DOALL dispatch model (default PolicyStatic).
	Policy Policy
	// SpawnPerRegion is the cost of forking/joining a parallel region
	// (the Gomp fork the paper's Figure 11 shows as 1-core slowdown).
	SpawnPerRegion int64
	// StaticDispatch is charged once per thread per DOALL region.
	StaticDispatch int64
	// DynamicDispatch is charged per iteration grab in DOACROSS loops.
	DynamicDispatch int64
	// DynamicChunk is the DOACROSS chunk size (iterations per grab).
	// The paper uses 1; larger chunks narrow the ordered-section
	// pipeline (see the chunk-sweep ablation). 0 means 1.
	DynamicChunk int
	// MemBandwidth is the aggregate memory-system throughput in cache
	// lines per op (the interpreter counts the lines that miss each
	// thread's modeled 64 KiB cache). Loops whose threads collectively
	// stream more than this stall on memory — the paper's 470.lbm
	// plateau. The default corresponds to a DDR2-era shared memory bus
	// relative to the interpreter's op granularity.
	MemBandwidth float64
	// SharedCacheBW is the aggregate shared-cache/bus throughput in
	// memory accesses per op. Even cache-resident loops saturate the
	// shared levels of the hierarchy as threads are added, which is
	// what keeps the paper's best speedups below the core count.
	SharedCacheBW float64
}

// DefaultModel returns cost constants resembling a small-scale CMP.
func DefaultModel() Model {
	return Model{
		SpawnPerRegion:  1200,
		StaticDispatch:  60,
		DynamicDispatch: 60,
		MemBandwidth:    0.006,
		SharedCacheBW:   2.0,
	}
}

// Breakdown is the simulated execution of one loop instance: the
// makespan and the aggregate thread-time split into useful work,
// scheduling/synchronization, and waiting (the paper's Figure 12
// do_wait / cpu_relax time).
type Breakdown struct {
	Time int64 // makespan in ops
	Busy int64 // aggregate useful ops across threads
	Sync int64 // aggregate scheduling + ordered-section signalling
	Wait int64 // aggregate idle/waiting ops across threads
}

// Add accumulates another breakdown (used to total a program's loops).
func (b *Breakdown) Add(o Breakdown) {
	b.Time += o.Time
	b.Busy += o.Busy
	b.Sync += o.Sync
	b.Wait += o.Wait
}

// Publish records the breakdown in a metrics registry under
// prefix+".time"/".busy"/".sync"/".wait" gauges, so simulated-schedule
// results surface through the same observability pipeline as runtime
// metrics. Safe on a nil registry.
func (b Breakdown) Publish(r *obs.Registry, prefix string) {
	r.Gauge(prefix + ".time").Set(b.Time)
	r.Gauge(prefix + ".busy").Set(b.Busy)
	r.Gauge(prefix + ".sync").Set(b.Sync)
	r.Gauge(prefix + ".wait").Set(b.Wait)
}

// Simulate replays one loop trace with n threads.
func Simulate(tr *interp.LoopTrace, n int, m Model) Breakdown {
	if n < 1 {
		n = 1
	}
	var b Breakdown
	switch tr.Kind {
	case ast.DOALL:
		if m.Policy == PolicyStealing {
			b = simulateStealing(tr, n, m)
		} else {
			b = simulateStatic(tr, n, m)
		}
	case ast.DOACROSS:
		b = simulateDynamic(tr, n, m)
	default:
		// Sequential trace: straight-line cost.
		b = Breakdown{Time: tr.Ops(), Busy: tr.Ops()}
	}
	// Bandwidth bounds: the loop cannot finish before the memory
	// system has served its DRAM traffic (cache misses) nor before the
	// shared cache/bus has served every access.
	var miss, all int64
	for _, c := range tr.Iters {
		miss += c.Mem
		all += c.MemAll
	}
	for _, bound := range []struct {
		traffic int64
		rate    float64
		toWait  bool
	}{
		// DRAM saturation idles whole cores — the paper observes it as
		// do_wait/cpu_relax time (470.lbm).
		{miss, m.MemBandwidth, true},
		// Shared-cache/bus contention stretches the instructions
		// themselves: it reads as longer work.
		{all, m.SharedCacheBW, false},
	} {
		if bound.rate <= 0 {
			continue
		}
		bw := int64(float64(bound.traffic) / bound.rate)
		if bw > b.Time {
			if bound.toWait {
				b.Wait += (bw - b.Time) * int64(n)
			} else {
				b.Busy += (bw - b.Time) * int64(n)
			}
			b.Time = bw
		}
	}
	return b
}

// simulateStatic models DOALL static chunking: thread t executes a
// contiguous chunk; the region ends when the slowest thread finishes.
func simulateStatic(tr *interp.LoopTrace, n int, m Model) Breakdown {
	k := int64(len(tr.Iters))
	chunk := k / int64(n)
	rem := k % int64(n)
	var maxT int64
	busyPer := make([]int64, n)
	for t := 0; t < n; t++ {
		lo := int64(t)*chunk + min(int64(t), rem)
		hi := lo + chunk
		if int64(t) < rem {
			hi++
		}
		var busy int64
		for i := lo; i < hi; i++ {
			busy += tr.Iters[i].Total()
		}
		busyPer[t] = busy
		tot := busy + m.StaticDispatch
		if tot > maxT {
			maxT = tot
		}
	}
	b := Breakdown{Time: maxT + m.SpawnPerRegion}
	for t := 0; t < n; t++ {
		b.Busy += busyPer[t]
		b.Sync += m.StaticDispatch
		b.Wait += maxT - m.StaticDispatch - busyPer[t] // barrier idle
	}
	b.Sync += m.SpawnPerRegion
	return b
}

// simulateStealing models the work-stealing DOALL scheduler as a
// discrete-event simulation: threads start on the static partition and
// the thread with the earliest clock acts next — consuming a grain
// from its own deque, or, when empty, stealing the upper half of the
// lowest eligible victim range above its floor (the same victim choice
// and monotonicity rule as interp's runStealing). Each steal is
// charged one StaticDispatch, so a run with zero steals costs exactly
// what simulateStatic charges.
func simulateStealing(tr *interp.LoopTrace, n int, m Model) Breakdown {
	k := int64(len(tr.Iters))
	type deque struct{ lo, hi, pin int64 }
	dq := make([]deque, n)
	chunk := k / int64(n)
	rem := k % int64(n)
	const stealGrainDiv = 8 // as interp/sched.go
	grain := max(1, chunk/stealGrainDiv)
	for t := int64(0); t < int64(n); t++ {
		lo := t*chunk + min(t, rem)
		hi := lo + chunk
		if t < rem {
			hi++
		}
		dq[t] = deque{lo: lo, hi: hi, pin: min(lo+grain, hi)}
	}
	free := make([]int64, n)  // each thread's clock
	busy := make([]int64, n)  // useful ops per thread
	sync := make([]int64, n)  // dispatch + steal ops per thread
	floor := make([]int64, n) // last executed iteration per thread
	retired := make([]bool, n)
	for t := 0; t < n; t++ {
		free[t] = m.StaticDispatch // one dispatch per worker, as static
		sync[t] = m.StaticDispatch
		floor[t] = -1
	}
	for {
		t := -1
		for j := 0; j < n; j++ {
			if !retired[j] && (t < 0 || free[j] < free[t]) {
				t = j
			}
		}
		if t < 0 {
			break
		}
		d := &dq[t]
		if d.lo >= d.hi {
			best, bestLo := -1, int64(0)
			for v := 0; v < n; v++ {
				if v == t {
					continue
				}
				avail := dq[v].hi - max(dq[v].lo, dq[v].pin)
				if avail <= 0 {
					continue
				}
				lo := dq[v].hi - (avail+1)/2
				if lo <= floor[t] {
					continue
				}
				if best < 0 || lo < bestLo {
					best, bestLo = v, lo
				}
			}
			if best < 0 {
				// All remaining work is claimed or below the floor:
				// this thread idles until the region drains.
				retired[t] = true
				continue
			}
			v := &dq[best]
			avail := v.hi - max(v.lo, v.pin)
			lo := v.hi - (avail+1)/2
			*d = deque{lo: lo, hi: v.hi, pin: lo}
			v.hi = lo
			free[t] += m.StaticDispatch
			sync[t] += m.StaticDispatch
			// Fall through: the thief executes its first grain as part
			// of the same action. (The runtime's thief also proceeds
			// straight from put to take; making the pair atomic here
			// guarantees every simulation step consumes an iteration,
			// so the event loop terminates.)
		}
		lo := d.lo
		hi := min(lo+grain, d.hi)
		d.lo = hi
		for i := lo; i < hi; i++ {
			c := tr.Iters[i].Total()
			free[t] += c
			busy[t] += c
			floor[t] = i
		}
	}
	var maxT int64
	for t := 0; t < n; t++ {
		if free[t] > maxT {
			maxT = free[t]
		}
	}
	b := Breakdown{Time: maxT + m.SpawnPerRegion}
	for t := 0; t < n; t++ {
		b.Busy += busy[t]
		b.Sync += sync[t]
		b.Wait += maxT - free[t] // idle until the slowest thread finishes
	}
	b.Sync += m.SpawnPerRegion
	return b
}

// simulateDynamic models DOACROSS dynamic self-scheduling with chunk
// size one and an ordered section: iteration i's ordered part cannot
// start before iteration i-1's ordered part finished.
func simulateDynamic(tr *interp.LoopTrace, n int, m Model) Breakdown {
	chunk := m.DynamicChunk
	if chunk < 1 {
		chunk = 1
	}
	free := make([]int64, n) // next time each thread is available
	busy := make([]int64, n) // useful ops per thread
	sync := make([]int64, n) // dispatch ops per thread
	wait := make([]int64, n) // ordered-section stall per thread
	var orderedFree int64    // release time of the previous ordered section
	for lo := 0; lo < len(tr.Iters); lo += chunk {
		hi := lo + chunk
		if hi > len(tr.Iters) {
			hi = len(tr.Iters)
		}
		// Dynamic scheduling hands the next chunk to the first thread
		// to reach the work queue.
		t := 0
		for j := 1; j < n; j++ {
			if free[j] < free[t] {
				t = j
			}
		}
		free[t] += m.DynamicDispatch
		sync[t] += m.DynamicDispatch
		for _, c := range tr.Iters[lo:hi] {
			waitStart := free[t] + c.Pre
			entry := waitStart
			if c.Ordered > 0 || c.Post > 0 {
				if orderedFree > entry {
					wait[t] += orderedFree - entry
					entry = orderedFree
				}
				exit := entry + c.Ordered
				orderedFree = exit
				free[t] = exit + c.Post
			} else {
				free[t] = waitStart
			}
			busy[t] += c.Total()
		}
	}
	var b Breakdown
	var maxT int64
	for t := 0; t < n; t++ {
		if free[t] > maxT {
			maxT = free[t]
		}
	}
	b.Time = maxT + m.SpawnPerRegion
	for t := 0; t < n; t++ {
		b.Busy += busy[t]
		b.Sync += sync[t]
		b.Wait += wait[t] + (maxT - free[t]) // final join idle
	}
	b.Sync += m.SpawnPerRegion
	return b
}


// ProgramTime computes the simulated execution time of a whole traced
// run with n threads: the sequential ops outside parallel loops plus
// each loop instance's simulated makespan. It also returns the
// aggregate loop breakdown (Figure 12) and the loop-only times.
func ProgramTime(res interp.Result, n int, m Model) (total int64, loops Breakdown, loopSeqOps int64, err error) {
	var traced int64
	for _, tr := range res.Traces {
		traced += tr.Ops()
		b := Simulate(tr, n, m)
		loops.Add(b)
		loopSeqOps += tr.Ops()
	}
	seq := res.Counters[interp.CatWork] - traced
	if seq < 0 {
		return 0, Breakdown{}, 0, fmt.Errorf("schedule: inconsistent trace: loop ops %d exceed total %d",
			traced, res.Counters[interp.CatWork])
	}
	return seq + loops.Time, loops, loopSeqOps, nil
}

// SequentialTime returns the simulated time of the same run executed
// entirely sequentially (the native baseline): simply its total op
// count.
func SequentialTime(res interp.Result) int64 {
	return res.Counters[interp.CatWork]
}
