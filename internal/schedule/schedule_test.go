package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gdsx/internal/ast"
	"gdsx/internal/interp"
)

// flat returns a DOALL trace of k identical iterations of c ops each.
func flat(k int, c int64) *interp.LoopTrace {
	tr := &interp.LoopTrace{Kind: ast.DOALL}
	for i := 0; i < k; i++ {
		tr.Iters = append(tr.Iters, interp.IterCost{Pre: c})
	}
	return tr
}

// noOverhead is a model without fixed costs, for exact arithmetic.
var noOverhead = Model{}

func TestStaticPerfectSplit(t *testing.T) {
	tr := flat(8, 1000)
	b := Simulate(tr, 4, noOverhead)
	if b.Time != 2000 {
		t.Fatalf("time = %d, want 2000", b.Time)
	}
	if b.Busy != 8000 {
		t.Fatalf("busy = %d, want 8000", b.Busy)
	}
	if b.Wait != 0 {
		t.Fatalf("wait = %d, want 0", b.Wait)
	}
}

func TestStaticImbalance(t *testing.T) {
	// 5 iterations over 4 threads: one thread gets 2.
	tr := flat(5, 1000)
	b := Simulate(tr, 4, noOverhead)
	if b.Time != 2000 {
		t.Fatalf("time = %d, want 2000", b.Time)
	}
	// Three threads idle for 1000 each at the barrier.
	if b.Wait != 3000 {
		t.Fatalf("wait = %d, want 3000", b.Wait)
	}
}

func TestStaticSingleThreadMatchesSum(t *testing.T) {
	tr := flat(7, 123)
	b := Simulate(tr, 1, noOverhead)
	if b.Time != 7*123 {
		t.Fatalf("time = %d, want %d", b.Time, 7*123)
	}
}

func TestDynamicUnorderedScales(t *testing.T) {
	tr := &interp.LoopTrace{Kind: ast.DOACROSS}
	for i := 0; i < 16; i++ {
		tr.Iters = append(tr.Iters, interp.IterCost{Pre: 500})
	}
	b1 := Simulate(tr, 1, noOverhead)
	b4 := Simulate(tr, 4, noOverhead)
	if b1.Time != 8000 {
		t.Fatalf("t1 = %d", b1.Time)
	}
	if b4.Time != 2000 {
		t.Fatalf("t4 = %d, want 2000", b4.Time)
	}
}

func TestDynamicOrderedSerializes(t *testing.T) {
	// Fully ordered iterations cannot speed up at all.
	tr := &interp.LoopTrace{Kind: ast.DOACROSS}
	for i := 0; i < 10; i++ {
		tr.Iters = append(tr.Iters, interp.IterCost{Ordered: 700})
	}
	b8 := Simulate(tr, 8, noOverhead)
	if b8.Time != 7000 {
		t.Fatalf("fully ordered time = %d, want 7000", b8.Time)
	}
	if b8.Wait == 0 {
		t.Fatalf("expected ordered-section waiting")
	}
}

func TestDynamicPipelineOverlap(t *testing.T) {
	// Pre work overlaps; the ordered tail pipelines: with enough
	// threads the bound is startup + sum of ordered sections.
	tr := &interp.LoopTrace{Kind: ast.DOACROSS}
	for i := 0; i < 8; i++ {
		tr.Iters = append(tr.Iters, interp.IterCost{Pre: 900, Ordered: 100})
	}
	b8 := Simulate(tr, 8, noOverhead)
	want := int64(900 + 8*100) // first Pre, then ordered chain
	if b8.Time != want {
		t.Fatalf("time = %d, want %d", b8.Time, want)
	}
}

func TestStealingMatchesStaticWhenBalanced(t *testing.T) {
	// A perfectly balanced loop never steals: the stealing model must
	// charge exactly what the static model charges.
	tr := flat(8, 1000)
	m := Model{SpawnPerRegion: 1200, StaticDispatch: 60}
	ms := m
	ms.Policy = PolicyStealing
	st, sl := Simulate(tr, 4, m), Simulate(tr, 4, ms)
	if st != sl {
		t.Fatalf("balanced loop: stealing %+v != static %+v", sl, st)
	}
}

func TestStealingBeatsStaticOnImbalance(t *testing.T) {
	// Cheap early iterations, expensive late ones: static leaves the
	// high-tid threads with all the work; stealing lets the early
	// finishers take the upper halves (their floor allows it, since the
	// expensive work lies above the iterations they executed).
	tr := &interp.LoopTrace{Kind: ast.DOALL}
	for i := 0; i < 16; i++ {
		c := int64(1)
		if i >= 8 {
			c = 1000
		}
		tr.Iters = append(tr.Iters, interp.IterCost{Pre: c})
	}
	ms := noOverhead
	ms.Policy = PolicyStealing
	st, sl := Simulate(tr, 2, noOverhead), Simulate(tr, 2, ms)
	if st.Time != 8000 {
		t.Fatalf("static time = %d, want 8000", st.Time)
	}
	if sl.Time >= st.Time {
		t.Fatalf("stealing (%d) did not beat static (%d)", sl.Time, st.Time)
	}
	if sl.Busy != st.Busy {
		t.Fatalf("stealing lost work: busy %d != %d", sl.Busy, st.Busy)
	}
}

func TestStealingFloorBlocksDownwardSteals(t *testing.T) {
	// The mirror of the monotonicity invariant: when the expensive work
	// lies in LOW iterations, a thread that already executed higher
	// iterations may not steal it (its executed set must stay strictly
	// increasing), so stealing degenerates to static.
	tr := &interp.LoopTrace{Kind: ast.DOALL}
	for i := 0; i < 16; i++ {
		c := int64(1000)
		if i >= 8 {
			c = 1
		}
		tr.Iters = append(tr.Iters, interp.IterCost{Pre: c})
	}
	ms := noOverhead
	ms.Policy = PolicyStealing
	st, sl := Simulate(tr, 2, noOverhead), Simulate(tr, 2, ms)
	if sl.Time != st.Time {
		t.Fatalf("floor-blocked stealing time %d, want static %d", sl.Time, st.Time)
	}
}

func TestStealingBusyConservation(t *testing.T) {
	// Property: the stealing model neither loses nor duplicates work,
	// for arbitrary cost shapes and thread counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &interp.LoopTrace{Kind: ast.DOALL}
		var want int64
		for i := 0; i < 1+rng.Intn(40); i++ {
			c := int64(rng.Intn(800))
			tr.Iters = append(tr.Iters, interp.IterCost{Pre: c})
			want += c
		}
		m := DefaultModel()
		m.MemBandwidth, m.SharedCacheBW = 0, 0 // no stall inflation
		m.Policy = PolicyStealing
		for _, n := range []int{1, 2, 3, 8, 16} {
			if got := Simulate(tr, n, m).Busy; got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthBound(t *testing.T) {
	tr := flat(8, 1000)
	for i := range tr.Iters {
		tr.Iters[i].Mem = 500
	}
	m := Model{MemBandwidth: 0.5} // 4000 misses need 8000 time
	b := Simulate(tr, 8, m)
	if b.Time != 8000 {
		t.Fatalf("bw-bound time = %d, want 8000", b.Time)
	}
	// Sequentially the compute bound dominates (8000 >= 8000): equal.
	b1 := Simulate(tr, 1, m)
	if b1.Time != 8000 {
		t.Fatalf("seq time = %d, want 8000", b1.Time)
	}
}

func TestSharedCacheBound(t *testing.T) {
	tr := flat(4, 1000)
	for i := range tr.Iters {
		tr.Iters[i].MemAll = 800
	}
	m := Model{SharedCacheBW: 1.0} // 3200 accesses -> >= 3200 time
	b4 := Simulate(tr, 4, m)
	if b4.Time != 3200 {
		t.Fatalf("time = %d, want 3200", b4.Time)
	}
}

func TestMonotonicInThreadsUniform(t *testing.T) {
	// Property: with uniform iteration costs, more threads never
	// increase the makespan. (With non-uniform costs, static chunk
	// boundaries shift between thread counts and small regressions are
	// possible — a real property of OpenMP static scheduling, checked
	// with a tolerance below.)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := ast.DOALL
		if rng.Intn(2) == 0 {
			kind = ast.DOACROSS
		}
		tr := &interp.LoopTrace{Kind: kind}
		k := 1 + rng.Intn(30)
		c := interp.IterCost{
			Pre:     int64(rng.Intn(1000)),
			Ordered: int64(rng.Intn(100)),
			Post:    int64(rng.Intn(100)),
		}
		for i := 0; i < k; i++ {
			tr.Iters = append(tr.Iters, c)
		}
		m := DefaultModel()
		prev := Simulate(tr, 1, m).Time
		for _, n := range []int{2, 4, 8, 16} {
			cur := Simulate(tr, n, m).Time
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoughlyMonotonicInThreads(t *testing.T) {
	// Property: with arbitrary iteration costs, the makespan never
	// regresses by more than the largest single iteration (the bound
	// on static-chunk boundary anomalies).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := ast.DOALL
		if rng.Intn(2) == 0 {
			kind = ast.DOACROSS
		}
		tr := &interp.LoopTrace{Kind: kind}
		k := 1 + rng.Intn(30)
		var maxIter int64
		for i := 0; i < k; i++ {
			c := interp.IterCost{
				Pre:     int64(rng.Intn(1000)),
				Ordered: int64(rng.Intn(100)),
				Post:    int64(rng.Intn(100)),
			}
			if c.Total() > maxIter {
				maxIter = c.Total()
			}
			tr.Iters = append(tr.Iters, c)
		}
		m := DefaultModel()
		prev := Simulate(tr, 1, m).Time
		for _, n := range []int{2, 4, 8, 16} {
			cur := Simulate(tr, n, m).Time
			if cur > prev+maxIter {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyConservation(t *testing.T) {
	// Property: aggregate busy time equals the trace's total ops
	// regardless of thread count (no work is lost or duplicated),
	// absent bandwidth stalls.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &interp.LoopTrace{Kind: ast.DOALL}
		var want int64
		for i := 0; i < 1+rng.Intn(20); i++ {
			c := int64(rng.Intn(500))
			tr.Iters = append(tr.Iters, interp.IterCost{Pre: c})
			want += c
		}
		for _, n := range []int{1, 3, 8} {
			if got := Simulate(tr, n, noOverhead).Busy; got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramTime(t *testing.T) {
	res := interp.Result{}
	res.Counters[interp.CatWork] = 10000
	tr := flat(8, 1000) // 8000 loop ops
	res.Traces = []*interp.LoopTrace{tr}
	total, loops, loopOps, err := ProgramTime(res, 4, noOverhead)
	if err != nil {
		t.Fatal(err)
	}
	if loopOps != 8000 {
		t.Fatalf("loopOps = %d", loopOps)
	}
	if loops.Time != 2000 {
		t.Fatalf("loop time = %d", loops.Time)
	}
	// 2000 sequential ops outside the loop + 2000 simulated loop time.
	if total != 4000 {
		t.Fatalf("total = %d, want 4000", total)
	}
	if SequentialTime(res) != 10000 {
		t.Fatalf("sequential = %d", SequentialTime(res))
	}
}

func TestProgramTimeInconsistent(t *testing.T) {
	res := interp.Result{}
	res.Counters[interp.CatWork] = 100
	res.Traces = []*interp.LoopTrace{flat(8, 1000)}
	if _, _, _, err := ProgramTime(res, 2, noOverhead); err == nil {
		t.Fatal("expected inconsistency error")
	}
}
