// Package ast defines the abstract syntax tree for MiniC programs,
// together with cloning, traversal, and a source printer. The data
// structure expansion pass rewrites this tree in place; the printer
// renders the transformed tree back to legal MiniC so every stage of
// the transformation is inspectable and re-parsable.
package ast

import (
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is the interface of expression nodes. After semantic analysis,
// ExprType reports the checked type of the expression.
type Expr interface {
	Node
	ExprType() *ctypes.Type
	exprNode()
}

// Stmt is the interface of statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is the interface of top-level declaration nodes.
type Decl interface {
	Node
	declNode()
}

// Access carries the static memory-access identifiers assigned by
// semantic analysis to expressions that can read or write simulated
// memory. The zero value means "no access of that direction". These
// identifiers are the vertices of the loop-level data dependence graph
// (paper Definition 1).
type Access struct {
	Load  int // > 0 if this node performs a memory load
	Store int // > 0 if this node performs a memory store
}

// SymKind classifies what a resolved identifier denotes.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
	SymBuiltin // runtime intrinsics: malloc, print_int, ...
	SymTID     // the __tid pseudo-variable (current thread index)
	SymNTH     // the __nthreads pseudo-variable (thread count)
)

// BuiltinKind identifies a runtime intrinsic function.
type BuiltinKind int

// Builtin functions provided by the runtime.
const (
	BNone BuiltinKind = iota
	BMalloc
	BCalloc
	BRealloc
	BFree
	BMemset
	BMemcpy
	BPrintInt
	BPrintLong
	BPrintDouble
	BPrintChar
	BPrintStr
	BSqrt
	BFabs
	BAbs
	// BExpandMalloc and BExpandNote are markers the guarded expansion
	// pass emits (see internal/expand, Options.GuardNotes):
	// __expand_malloc(span, esz) allocates span*__nthreads bytes and
	// reports the expanded extent to the access monitor;
	// __expand_note(base, span, esz) reports an expanded stack or
	// global object without allocating. esz is the element size for
	// interleaved layout, 0 for bonded.
	BExpandMalloc
	BExpandNote
	// BCommNote is the marker the expansion pass emits ahead of a
	// parallel region for a commutative-update object (see
	// internal/expand, Options.Commutative):
	// __comm_note(base, span, esz, op) arms per-thread privatization of
	// the span-byte object at base for the next region; elements are esz
	// bytes and merge under op (see ddg.CommOp) at region exit.
	BCommNote
)

// Symbol is the semantic object an identifier resolves to. Symbols are
// created by the sema package and shared by all references.
type Symbol struct {
	Name    string
	Kind    SymKind
	Type    *ctypes.Type
	Index   int      // slot index among a function's locals/params, or global index
	Decl    *VarDecl // defining declaration for variables
	Fn      *FuncDecl
	Builtin BuiltinKind

	// AddrTaken is set by sema when the variable's address is observed
	// (&x, sizeof x, or as the base of a member access). Variables whose
	// address is never taken can only be reached through their name,
	// which makes them safe for register promotion in the compiled
	// engine.
	AddrTaken bool
}

func (s *Symbol) String() string { return s.Name }

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

type exprBase struct {
	P token.Pos
	T *ctypes.Type
}

func (e *exprBase) Pos() token.Pos         { return e.P }
func (e *exprBase) ExprType() *ctypes.Type { return e.T }
func (e *exprBase) SetType(t *ctypes.Type) { e.T = t }
func (e *exprBase) SetPos(p token.Pos)     { e.P = p }

// Ident is a reference to a named variable or function.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
	Acc  Access
}

// IntLit is an integer constant. Type defaults to int, or long when the
// value does not fit in 32 bits.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating constant (double).
type FloatLit struct {
	exprBase
	Value float64
}

// StringLit is a string constant; it evaluates to a char* into an
// interned, NUL-terminated buffer.
type StringLit struct {
	exprBase
	Value string
}

// Unary is a prefix operator application. Op is one of SUB, ADD, LNOT,
// NOT, MUL (dereference), AND (address-of).
type Unary struct {
	exprBase
	Op token.Kind
	X  Expr
	// Acc is set for dereferences (Op == MUL), which access memory.
	Acc Access
}

// Binary is a binary operator application (no assignment, no &&/|| —
// see Logical).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Logical is a short-circuit && or || expression.
type Logical struct {
	exprBase
	Op   token.Kind // LAND or LOR
	X, Y Expr
}

// Cond is the ternary ?: expression.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Assign is an assignment expression; Op is ASSIGN or a compound
// assignment token. The LHS carries the store access; for compound
// assignments it also carries a load access.
type Assign struct {
	exprBase
	Op  token.Kind
	LHS Expr
	RHS Expr
}

// IncDec is ++x, --x, x++ or x--.
type IncDec struct {
	exprBase
	Op   token.Kind // INC or DEC
	X    Expr
	Post bool
}

// Index is the subscript expression X[I].
type Index struct {
	exprBase
	X, I Expr
	Acc  Access
}

// Member is a field selection X.Name or X->Name.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *ctypes.Field
	Acc   Access
}

// Call is a function or builtin invocation.
type Call struct {
	exprBase
	Fun  *Ident
	Args []Expr
	// AllocSite is a positive identifier when this call is a heap
	// allocation (malloc/calloc/realloc); it names the allocation site
	// for the points-to analysis and the expansion pass.
	AllocSite int
	// Acc.Store is the implicit definition the allocation performs on
	// the fresh block (the profiler needs it so reused addresses do not
	// leak dependences from dead blocks).
	Acc Access
}

// Cast is an explicit type conversion (T)X, including pointer recasts
// such as the bzip2 short*/int* pattern.
type Cast struct {
	exprBase
	To *ctypes.Type
	X  Expr
}

// SizeofType is sizeof(T).
type SizeofType struct {
	exprBase
	Of *ctypes.Type
}

// SizeofExpr is sizeof expr.
type SizeofExpr struct {
	exprBase
	X Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Logical) exprNode()    {}
func (*Cond) exprNode()       {}
func (*Assign) exprNode()     {}
func (*IncDec) exprNode()     {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Call) exprNode()       {}
func (*Cast) exprNode()       {}
func (*SizeofType) exprNode() {}
func (*SizeofExpr) exprNode() {}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos     { return s.P }
func (s *stmtBase) SetPos(p token.Pos) { s.P = p }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// If is the conditional statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ParKind classifies the parallelism annotation on a loop.
type ParKind int

// Parallel loop kinds.
const (
	Sequential ParKind = iota
	DOALL              // independent iterations, static chunking
	DOACROSS           // cross-iteration deps, dynamic chunk-1 + ordered sync
)

func (k ParKind) String() string {
	switch k {
	case DOALL:
		return "DOALL"
	case DOACROSS:
		return "DOACROSS"
	}
	return "sequential"
}

// For is a C for loop. Loops annotated "parallel for" (DOALL) or
// "parallel doacross for" carry Par != Sequential and are the
// candidates for expansion + parallel execution. Every loop in a
// program gets a unique positive ID for profiling.
type For struct {
	stmtBase
	Init Stmt // nil, DeclStmt or ExprStmt
	Cond Expr // nil means true
	Post Expr // nil allowed
	Body Stmt
	Par  ParKind
	ID   int

	// Filled by sema for parallel loops: the induction variable
	// (single local scalar assigned in Init and stepped in Post).
	IndVar *Symbol
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
	ID   int
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
	ID   int
}

// Return returns from the enclosing function.
type Return struct {
	stmtBase
	X Expr // nil for void
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue advances the innermost loop.
type Continue struct{ stmtBase }

// SyncWait blocks until all prior iterations of the enclosing DOACROSS
// loop have executed their matching SyncPost (ordered-section entry).
// Inserted by the sync-placement pass; not written in source programs.
type SyncWait struct{ stmtBase }

// SyncPost signals completion of the current iteration's ordered
// section (ordered-section exit).
type SyncPost struct{ stmtBase }

func (*Block) stmtNode()    {}
func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*SyncWait) stmtNode() {}
func (*SyncPost) stmtNode() {}

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

// VarDecl declares a variable (global or local) or a parameter.
// For a VLA (outermost array dimension of dynamic length), Type has
// Len < 0 on its outer array and VLALen holds the length expression.
type VarDecl struct {
	P      token.Pos
	Name   string
	Type   *ctypes.Type
	VLALen Expr // nil unless outer array dimension is dynamic
	Init   Expr // nil if none
	Sym    *Symbol
	// Acc.Store is the implicit definition executing the declaration
	// performs (local declarations create a fresh zeroed object each
	// time they execute; see package profile).
	Acc Access
}

func (d *VarDecl) Pos() token.Pos { return d.P }
func (d *VarDecl) declNode()      {}

// FuncDecl defines a function.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Ret    *ctypes.Type
	Params []*VarDecl
	Body   *Block
	Sym    *Symbol

	// Filled by sema.
	NumSlots int // locals+params slot count for activation records
}

func (d *FuncDecl) Pos() token.Pos { return d.P }
func (d *FuncDecl) declNode()      {}

// StructDef records a struct type definition for printing.
type StructDef struct {
	P    token.Pos
	Type *ctypes.Type
}

func (d *StructDef) Pos() token.Pos { return d.P }
func (d *StructDef) declNode()      {}

// Program is a parsed MiniC translation unit. It implements Node so
// tree-walking helpers accept it as a root.
type Program struct {
	File  string
	Decls []Decl

	// NumLoops is the number of loop IDs assigned (IDs are 1..NumLoops).
	NumLoops int
	// NumAccesses is the number of access IDs assigned (1..NumAccesses).
	NumAccesses int
	// NumAllocSites is the number of heap allocation sites (1..N).
	NumAllocSites int
}

// Pos implements Node; a program has no single position.
func (p *Program) Pos() token.Pos { return token.Pos{} }

// Funcs returns the function declarations of the program in order.
func (p *Program) Funcs() []*FuncDecl {
	var fs []*FuncDecl
	for _, d := range p.Decls {
		if f, ok := d.(*FuncDecl); ok {
			fs = append(fs, f)
		}
	}
	return fs
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, d := range p.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Name == name {
			return f
		}
	}
	return nil
}

// Globals returns the global variable declarations in order.
func (p *Program) Globals() []*VarDecl {
	var gs []*VarDecl
	for _, d := range p.Decls {
		if v, ok := d.(*VarDecl); ok {
			gs = append(gs, v)
		}
	}
	return gs
}
