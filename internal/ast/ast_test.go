package ast

import (
	"testing"

	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

func bin(op token.Kind, x, y Expr) *Binary { return &Binary{Op: op, X: x, Y: y} }
func lit(v int64) *IntLit                  { return &IntLit{Value: v} }
func id(n string) *Ident                   { return &Ident{Name: n} }

func TestPrintPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(token.ADD, lit(1), bin(token.MUL, lit(2), lit(3))), "1 + 2 * 3"},
		{bin(token.MUL, bin(token.ADD, lit(1), lit(2)), lit(3)), "(1 + 2) * 3"},
		{bin(token.SUB, lit(1), bin(token.SUB, lit(2), lit(3))), "1 - (2 - 3)"},
		{&Unary{Op: token.MUL, X: bin(token.ADD, id("p"), lit(1))}, "*(p + 1)"},
		{&Index{X: bin(token.ADD, id("p"), id("t")), I: id("k")}, "(p + t)[k]"},
		{bin(token.AND, bin(token.SHR, id("x"), lit(3)), lit(255)), "x >> 3 & 255"},
		{&Assign{Op: token.ASSIGN, LHS: id("a"), RHS: &Assign{Op: token.ASSIGN, LHS: id("b"), RHS: lit(0)}}, "a = b = 0"},
		{&Cond{C: id("c"), Then: lit(1), Else: lit(2)}, "c ? 1 : 2"},
		{&Member{X: &Member{X: id("a"), Name: "b"}, Name: "c"}, "a.b.c"},
		{&Member{X: id("p"), Name: "f", Arrow: true}, "p->f"},
		{&Cast{To: ctypes.PointerTo(ctypes.ShortType), X: id("z")}, "(short*)z"},
		{&Logical{Op: token.LAND, X: id("a"), Y: &Logical{Op: token.LOR, X: id("b"), Y: id("c")}}, "a && (b || c)"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.e); got != c.want {
			t.Errorf("PrintExpr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintFloat(t *testing.T) {
	if got := PrintExpr(&FloatLit{Value: 2}); got != "2.0" {
		t.Errorf("float 2 prints %q", got)
	}
	if got := PrintExpr(&FloatLit{Value: 1.5}); got != "1.5" {
		t.Errorf("float 1.5 prints %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := &Index{
		X: &Member{X: id("s"), Name: "buf"},
		I: bin(token.ADD, id("i"), lit(1)),
	}
	orig.Acc = Access{Load: 7}
	c := CloneExpr(orig).(*Index)
	if c == orig || c.X == orig.X || c.I == orig.I {
		t.Fatal("clone shares nodes")
	}
	if c.Acc.Load != 0 {
		t.Fatal("clone must not inherit access IDs")
	}
	// Mutating the clone must not affect the original.
	c.I = lit(99)
	if PrintExpr(orig) != "s.buf[i + 1]" {
		t.Fatalf("original changed: %s", PrintExpr(orig))
	}
	if PrintExpr(c) != "s.buf[99]" {
		t.Fatalf("clone wrong: %s", PrintExpr(c))
	}
}

func TestFoldConst(t *testing.T) {
	cases := []struct {
		e    Expr
		want int64
		ok   bool
	}{
		{bin(token.ADD, lit(2), bin(token.MUL, lit(3), lit(4))), 14, true},
		{bin(token.SHL, lit(1), lit(10)), 1024, true},
		{bin(token.QUO, lit(7), lit(0)), 0, false},
		{&Unary{Op: token.SUB, X: lit(5)}, -5, true},
		{&SizeofType{Of: ctypes.IntType}, 4, true},
		{bin(token.ADD, id("x"), lit(1)), 0, false},
	}
	for i, c := range cases {
		got, ok := FoldConst(c.e)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: FoldConst = %d,%v want %d,%v", i, got, ok, c.want, c.ok)
		}
	}
}

func TestRewriteExprsBottomUp(t *testing.T) {
	// Replace every IntLit 1 with 2 inside a statement; the sweep must
	// reach nested expressions.
	s := &ExprStmt{X: &Assign{Op: token.ASSIGN, LHS: id("a"),
		RHS: bin(token.ADD, lit(1), &Index{X: id("b"), I: lit(1)})}}
	RewriteExprs(s, func(e Expr) Expr {
		if l, ok := e.(*IntLit); ok && l.Value == 1 {
			return lit(2)
		}
		return e
	})
	if got := PrintStmt(s); got != "a = 2 + b[2];" {
		t.Fatalf("rewritten = %q", got)
	}
}

func TestRewriteStmtsSplice(t *testing.T) {
	// Duplicate every expression statement, including inside nested
	// blocks and loop bodies.
	body := &Block{Stmts: []Stmt{
		&ExprStmt{X: id("a")},
		&While{Cond: id("c"), Body: &ExprStmt{X: id("b")}},
	}}
	count := 0
	RewriteStmts(body, func(s Stmt) []Stmt {
		if _, ok := s.(*ExprStmt); ok {
			count++
			return []Stmt{s, s}
		}
		return []Stmt{s}
	})
	if count != 2 {
		t.Fatalf("visited %d expr statements", count)
	}
	if len(body.Stmts) != 3 {
		t.Fatalf("top level not spliced: %d", len(body.Stmts))
	}
	w := body.Stmts[2].(*While)
	wb, ok := w.Body.(*Block)
	if !ok || len(wb.Stmts) != 2 {
		t.Fatalf("loop body not wrapped and spliced: %T", w.Body)
	}
}

func TestInspectPrune(t *testing.T) {
	e := bin(token.ADD, bin(token.MUL, lit(1), lit(2)), lit(3))
	var seen int
	Inspect(e, func(n Node) bool {
		seen++
		_, isMul := n.(*Binary)
		if isMul && n.(*Binary).Op == token.MUL {
			return false // prune: skip 1 and 2
		}
		return true
	})
	if seen != 3 { // ADD, MUL, 3
		t.Fatalf("seen = %d, want 3", seen)
	}
}

func TestProgramHelpers(t *testing.T) {
	f := &FuncDecl{Name: "main", Ret: ctypes.IntType, Body: &Block{}}
	g := &VarDecl{Name: "g", Type: ctypes.IntType}
	p := &Program{Decls: []Decl{g, f}}
	if p.Func("main") != f || p.Func("other") != nil {
		t.Fatal("Func lookup")
	}
	if len(p.Funcs()) != 1 || len(p.Globals()) != 1 {
		t.Fatal("collections")
	}
}
