package ast

// Inspect traverses the AST rooted at n in depth-first order, calling f
// for each node. If f returns false for a node, its children are not
// visited. Nil children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Inspect(p, f)
		}
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *VarDecl:
		if x.VLALen != nil {
			Inspect(x.VLALen, f)
		}
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *StructDef:
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *ExprStmt:
		Inspect(x.X, f)
	case *If:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *For:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *While:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *DoWhile:
		Inspect(x.Body, f)
		Inspect(x.Cond, f)
	case *Return:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *Break, *Continue, *SyncWait, *SyncPost:
	case *Ident, *IntLit, *FloatLit, *StringLit, *SizeofType:
	case *Unary:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Logical:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Cond:
		Inspect(x.C, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *Assign:
		Inspect(x.LHS, f)
		Inspect(x.RHS, f)
	case *IncDec:
		Inspect(x.X, f)
	case *Index:
		Inspect(x.X, f)
		Inspect(x.I, f)
	case *Member:
		Inspect(x.X, f)
	case *Call:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Cast:
		Inspect(x.X, f)
	case *SizeofExpr:
		Inspect(x.X, f)
	default:
		panic("ast: Inspect: unknown node")
	}
}

// RewriteExprs walks the subtree rooted at n and replaces every
// expression e with f(e), applied bottom-up (children first). The
// callback must return a non-nil expression; returning its argument
// leaves the node unchanged. Statements and declarations are traversed
// but never replaced.
func RewriteExprs(n Node, f func(Expr) Expr) {
	rw := func(e Expr) Expr {
		if e == nil {
			return nil
		}
		return rewriteExpr(e, f)
	}
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Decls {
			RewriteExprs(d, f)
		}
	case *FuncDecl:
		if x.Body != nil {
			RewriteExprs(x.Body, f)
		}
	case *VarDecl:
		x.VLALen = rw(x.VLALen)
		x.Init = rw(x.Init)
	case *StructDef:
	case *Block:
		for _, s := range x.Stmts {
			RewriteExprs(s, f)
		}
	case *DeclStmt:
		for _, d := range x.Decls {
			RewriteExprs(d, f)
		}
	case *ExprStmt:
		x.X = rw(x.X)
	case *If:
		x.Cond = rw(x.Cond)
		RewriteExprs(x.Then, f)
		if x.Else != nil {
			RewriteExprs(x.Else, f)
		}
	case *For:
		if x.Init != nil {
			RewriteExprs(x.Init, f)
		}
		x.Cond = rw(x.Cond)
		x.Post = rw(x.Post)
		RewriteExprs(x.Body, f)
	case *While:
		x.Cond = rw(x.Cond)
		RewriteExprs(x.Body, f)
	case *DoWhile:
		RewriteExprs(x.Body, f)
		x.Cond = rw(x.Cond)
	case *Return:
		x.X = rw(x.X)
	case *Break, *Continue, *SyncWait, *SyncPost:
	default:
		panic("ast: RewriteExprs: unknown statement")
	}
}

func rewriteExpr(e Expr, f func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *Ident, *IntLit, *FloatLit, *StringLit, *SizeofType:
	case *Unary:
		x.X = rewriteExpr(x.X, f)
	case *Binary:
		x.X = rewriteExpr(x.X, f)
		x.Y = rewriteExpr(x.Y, f)
	case *Logical:
		x.X = rewriteExpr(x.X, f)
		x.Y = rewriteExpr(x.Y, f)
	case *Cond:
		x.C = rewriteExpr(x.C, f)
		x.Then = rewriteExpr(x.Then, f)
		x.Else = rewriteExpr(x.Else, f)
	case *Assign:
		x.LHS = rewriteExpr(x.LHS, f)
		x.RHS = rewriteExpr(x.RHS, f)
	case *IncDec:
		x.X = rewriteExpr(x.X, f)
	case *Index:
		x.X = rewriteExpr(x.X, f)
		x.I = rewriteExpr(x.I, f)
	case *Member:
		x.X = rewriteExpr(x.X, f)
	case *Call:
		for i, a := range x.Args {
			x.Args[i] = rewriteExpr(a, f)
		}
	case *Cast:
		x.X = rewriteExpr(x.X, f)
	case *SizeofExpr:
		x.X = rewriteExpr(x.X, f)
	default:
		panic("ast: rewriteExpr: unknown expression")
	}
	return f(e)
}

// RewriteStmts walks the statement lists in the subtree rooted at n and
// replaces each statement s with the slice f(s), applied to the
// statements of every Block (recursively, bottom-up). Returning
// []Stmt{s} leaves s in place; returning more statements splices them.
// Non-block statement positions (loop bodies, if branches) are wrapped
// in a Block first if f wants to splice there, so f sees every
// statement exactly once.
func RewriteStmts(n Node, f func(Stmt) []Stmt) {
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Decls {
			if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
				RewriteStmts(fd.Body, f)
			}
		}
	case *Block:
		var out []Stmt
		for _, s := range x.Stmts {
			rewriteChildStmts(s, f)
			out = append(out, f(s)...)
		}
		x.Stmts = out
	default:
		rewriteChildStmts(n, f)
	}
}

func rewriteChildStmts(s Node, f func(Stmt) []Stmt) {
	wrap := func(child Stmt) Stmt {
		if child == nil {
			return nil
		}
		if b, ok := child.(*Block); ok {
			RewriteStmts(b, f)
			return b
		}
		rewriteChildStmts(child, f)
		repl := f(child)
		if len(repl) == 1 {
			return repl[0]
		}
		b := &Block{Stmts: repl}
		b.SetPos(child.Pos())
		return b
	}
	switch x := s.(type) {
	case *Block:
		RewriteStmts(x, f)
	case *If:
		x.Then = wrap(x.Then)
		x.Else = wrap(x.Else)
	case *For:
		x.Body = wrap(x.Body)
	case *While:
		x.Body = wrap(x.Body)
	case *DoWhile:
		x.Body = wrap(x.Body)
	}
}
