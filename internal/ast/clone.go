package ast

// CloneExpr returns a deep copy of an expression. Symbols, types and
// field descriptors are shared (the expansion pipeline re-parses and
// re-checks transformed programs, so sharing is safe); access IDs are
// cleared on the copy so cloned nodes never alias profiling sites.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ident:
		c := *x
		c.Acc = Access{}
		return &c
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *StringLit:
		c := *x
		return &c
	case *Unary:
		c := *x
		c.Acc = Access{}
		c.X = CloneExpr(x.X)
		return &c
	case *Binary:
		c := *x
		c.X = CloneExpr(x.X)
		c.Y = CloneExpr(x.Y)
		return &c
	case *Logical:
		c := *x
		c.X = CloneExpr(x.X)
		c.Y = CloneExpr(x.Y)
		return &c
	case *Cond:
		c := *x
		c.C = CloneExpr(x.C)
		c.Then = CloneExpr(x.Then)
		c.Else = CloneExpr(x.Else)
		return &c
	case *Assign:
		c := *x
		c.LHS = CloneExpr(x.LHS)
		c.RHS = CloneExpr(x.RHS)
		return &c
	case *IncDec:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *Index:
		c := *x
		c.Acc = Access{}
		c.X = CloneExpr(x.X)
		c.I = CloneExpr(x.I)
		return &c
	case *Member:
		c := *x
		c.Acc = Access{}
		c.X = CloneExpr(x.X)
		return &c
	case *Call:
		c := *x
		c.Acc = Access{}
		c.Fun = CloneExpr(x.Fun).(*Ident)
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	case *Cast:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *SizeofType:
		c := *x
		return &c
	case *SizeofExpr:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	}
	panic("ast: CloneExpr: unknown expression")
}
