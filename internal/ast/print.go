package ast

import (
	"fmt"
	"strings"

	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// Print renders the program as MiniC source. The output of Print on a
// transformed tree is itself valid MiniC, which keeps every stage of
// the expansion pipeline inspectable and re-parsable.
func Print(p *Program) string {
	var pr printer
	for i, d := range p.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.sb.String()
}

// PrintStmt renders a single statement (used in tests and diagnostics).
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.sb.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, precLowest)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(s string)                   { p.sb.WriteString(s) }
func (p *printer) f(format string, args ...any) { fmt.Fprintf(&p.sb, format, args...) }

func (p *printer) nl() {
	p.w("\n")
	for i := 0; i < p.indent; i++ {
		p.w("    ")
	}
}

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *StructDef:
		p.f("struct %s {", x.Type.Name)
		p.indent++
		for _, fld := range x.Type.Fields {
			p.nl()
			p.w(declString(fld.Type, fld.Name, nil))
			p.w(";")
		}
		p.indent--
		p.nl()
		p.w("};")
		p.nl()
	case *VarDecl:
		p.varDecl(x)
		p.w(";")
		p.nl()
	case *FuncDecl:
		p.f("%s %s(", typePrefix(x.Ret), x.Name)
		for i, par := range x.Params {
			if i > 0 {
				p.w(", ")
			}
			p.w(declString(par.Type, par.Name, nil))
		}
		p.w(") ")
		p.block(x.Body)
		p.nl()
	}
}

func (p *printer) varDecl(d *VarDecl) {
	var vla string
	if d.VLALen != nil {
		vla = PrintExpr(d.VLALen)
	}
	p.w(declString(d.Type, d.Name, &vla))
	if d.Init != nil {
		p.w(" = ")
		p.expr(d.Init, precAssign)
	}
}

// declString renders "T name" with C declarator syntax for pointers and
// arrays. vla, when non-nil, is the textual length of the outermost
// dynamic array dimension.
func declString(t *ctypes.Type, name string, vla *string) string {
	suffix := ""
	for t.Kind == ctypes.Array {
		if t.Len < 0 {
			length := ""
			if vla != nil {
				length = *vla
			}
			suffix += "[" + length + "]"
		} else {
			suffix += fmt.Sprintf("[%d]", t.Len)
		}
		t = t.Elem
	}
	stars := ""
	for t.Kind == ctypes.Ptr {
		stars += "*"
		t = t.Elem
	}
	return fmt.Sprintf("%s %s%s%s", typePrefix(t), stars, name, suffix)
}

func typePrefix(t *ctypes.Type) string {
	switch t.Kind {
	case ctypes.Struct:
		return "struct " + t.Name
	case ctypes.Ptr:
		return typePrefix(t.Elem) + "*"
	default:
		return t.String()
	}
}

func (p *printer) block(b *Block) {
	p.w("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.w("}")
}

func (p *printer) stmtOrBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.block(x)
	case *DeclStmt:
		for i, d := range x.Decls {
			if i > 0 {
				p.nl()
			}
			p.varDecl(d)
			p.w(";")
		}
	case *ExprStmt:
		p.expr(x.X, precLowest)
		p.w(";")
	case *If:
		p.w("if (")
		p.expr(x.Cond, precLowest)
		p.w(") ")
		if _, ok := x.Then.(*Block); ok {
			p.block(x.Then.(*Block))
		} else {
			p.stmtOrBlock(x.Then)
		}
		if x.Else != nil {
			if _, ok := x.Then.(*Block); ok {
				p.w(" else ")
			} else {
				p.nl()
				p.w("else ")
			}
			if eb, ok := x.Else.(*Block); ok {
				p.block(eb)
			} else {
				p.stmtOrBlock(x.Else)
			}
		}
	case *For:
		switch x.Par {
		case DOALL:
			p.w("parallel ")
		case DOACROSS:
			p.w("parallel doacross ")
		}
		p.w("for (")
		if x.Init != nil {
			switch init := x.Init.(type) {
			case *ExprStmt:
				p.expr(init.X, precLowest)
			case *DeclStmt:
				for i, d := range init.Decls {
					if i > 0 {
						p.w(", ")
					}
					p.varDecl(d)
				}
			}
		}
		p.w("; ")
		if x.Cond != nil {
			p.expr(x.Cond, precLowest)
		}
		p.w("; ")
		if x.Post != nil {
			p.expr(x.Post, precLowest)
		}
		p.w(") ")
		p.stmtBody(x.Body)
	case *While:
		p.w("while (")
		p.expr(x.Cond, precLowest)
		p.w(") ")
		p.stmtBody(x.Body)
	case *DoWhile:
		p.w("do ")
		p.stmtBody(x.Body)
		p.w(" while (")
		p.expr(x.Cond, precLowest)
		p.w(");")
	case *Return:
		p.w("return")
		if x.X != nil {
			p.w(" ")
			p.expr(x.X, precLowest)
		}
		p.w(";")
	case *Break:
		p.w("break;")
	case *Continue:
		p.w("continue;")
	case *SyncWait:
		p.w("__sync_wait();")
	case *SyncPost:
		p.w("__sync_post();")
	}
}

func (p *printer) stmtBody(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
	} else {
		p.stmtOrBlock(s)
	}
}

// Operator precedence levels, loosest to tightest.
const (
	precLowest = iota
	precAssign
	precCond
	precLOr
	precLAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
)

func binPrec(op token.Kind) int {
	switch op {
	case token.LOR:
		return precLOr
	case token.LAND:
		return precLAnd
	case token.OR:
		return precBitOr
	case token.XOR:
		return precBitXor
	case token.AND:
		return precBitAnd
	case token.EQL, token.NEQ:
		return precEq
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return precRel
	case token.SHL, token.SHR:
		return precShift
	case token.ADD, token.SUB:
		return precAdd
	case token.MUL, token.QUO, token.REM:
		return precMul
	}
	panic("ast: binPrec: " + op.String())
}

// expr prints e, parenthesizing if its precedence is looser than min.
func (p *printer) expr(e Expr, min int) {
	prec := exprPrec(e)
	if prec < min {
		p.w("(")
		p.exprBody(e)
		p.w(")")
		return
	}
	p.exprBody(e)
}

func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Assign:
		return precAssign
	case *Cond:
		return precCond
	case *Binary:
		return binPrec(x.Op)
	case *Logical:
		return binPrec(x.Op)
	case *Unary, *Cast, *SizeofExpr, *SizeofType:
		return precUnary
	case *IncDec:
		if x.Post {
			return precPostfix
		}
		return precUnary
	case *Index, *Member, *Call:
		return precPostfix
	default:
		return precPostfix + 1 // atoms
	}
}

func (p *printer) exprBody(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.w(x.Name)
	case *IntLit:
		p.f("%d", x.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.w(s)
	case *StringLit:
		p.f("%q", x.Value)
	case *Unary:
		p.w(x.Op.String())
		p.expr(x.X, precUnary)
	case *Binary:
		prec := binPrec(x.Op)
		p.expr(x.X, prec)
		p.f(" %s ", x.Op)
		p.expr(x.Y, prec+1)
	case *Logical:
		prec := binPrec(x.Op)
		p.expr(x.X, prec)
		p.f(" %s ", x.Op)
		p.expr(x.Y, prec+1)
	case *Cond:
		p.expr(x.C, precLOr)
		p.w(" ? ")
		p.expr(x.Then, precAssign)
		p.w(" : ")
		p.expr(x.Else, precCond)
	case *Assign:
		p.expr(x.LHS, precUnary)
		p.f(" %s ", x.Op)
		p.expr(x.RHS, precAssign)
	case *IncDec:
		if x.Post {
			p.expr(x.X, precPostfix)
			p.w(x.Op.String())
		} else {
			p.w(x.Op.String())
			p.expr(x.X, precUnary)
		}
	case *Index:
		p.expr(x.X, precPostfix)
		p.w("[")
		p.expr(x.I, precLowest)
		p.w("]")
	case *Member:
		p.expr(x.X, precPostfix)
		if x.Arrow {
			p.w("->")
		} else {
			p.w(".")
		}
		p.w(x.Name)
	case *Call:
		p.w(x.Fun.Name)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a, precAssign)
		}
		p.w(")")
	case *Cast:
		p.f("(%s)", castTypeString(x.To))
		p.expr(x.X, precUnary)
	case *SizeofType:
		p.f("sizeof(%s)", castTypeString(x.Of))
	case *SizeofExpr:
		p.w("sizeof(")
		p.expr(x.X, precLowest)
		p.w(")")
	}
}

func castTypeString(t *ctypes.Type) string {
	stars := ""
	for t.Kind == ctypes.Ptr {
		stars += "*"
		t = t.Elem
	}
	return typePrefix(t) + stars
}
