package ast

import "gdsx/internal/token"

// FoldConst evaluates integer constant expressions built from literals,
// sizeof with static types, unary -/~/! and binary arithmetic.
func FoldConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, true
	case *SizeofType:
		if x.Of.HasStaticSize() {
			return x.Of.Size(), true
		}
	case *Unary:
		v, ok := FoldConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.NOT:
			return ^v, true
		case token.LNOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		a, ok := FoldConst(x.X)
		if !ok {
			return 0, false
		}
		b, ok := FoldConst(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL:
			return a << uint(b), true
		case token.SHR:
			return a >> uint(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
	}
	return 0, false
}
