package ddg

// CommOp identifies the merge operator of a commutative-update access
// class: reduction-shaped updates (sum/count accumulation, running
// min/max) whose cross-iteration order does not affect the final
// value, so each thread may apply them to a private identity-
// initialized copy and the copies merge at region exit. The operator
// codes travel through the __comm_note marker (see ast.BCommNote) as
// plain integers.
type CommOp int

// Commutative merge operators. Only integer element types participate:
// floating-point accumulation is mathematically commutative but not
// associative in finite precision, so privatizing it would change the
// bit-exact sequential result.
const (
	CommNone CommOp = iota
	// CommAdd merges by addition; += and -= updates and ++/-- counters
	// (a -= accumulates a negative delta, which addition merges
	// correctly).
	CommAdd
	// CommMin merges by minimum (running-minimum updates).
	CommMin
	// CommMax merges by maximum (running-maximum updates).
	CommMax
)

func (op CommOp) String() string {
	switch op {
	case CommAdd:
		return "add"
	case CommMin:
		return "min"
	case CommMax:
		return "max"
	}
	return "none"
}

// Identity returns the identity element of op for a signed integer
// element of esz bytes: merging the identity into any value leaves the
// value unchanged, so untouched cells of a private copy are no-ops at
// merge time.
func (op CommOp) Identity(esz int64) int64 {
	switch op {
	case CommMin:
		// Largest representable value: min(x, id) == x.
		return 1<<(esz*8-1) - 1
	case CommMax:
		// Smallest representable value: max(x, id) == x.
		return -(1 << (esz*8 - 1))
	}
	return 0 // CommAdd
}

// Merge combines a shared value with a private copy's value under op.
func (op CommOp) Merge(shared, priv int64) int64 {
	switch op {
	case CommMin:
		return min(shared, priv)
	case CommMax:
		return max(shared, priv)
	}
	return shared + priv // CommAdd
}
