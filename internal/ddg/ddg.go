// Package ddg implements the loop-level data dependence graph of the
// paper's Definition 1, the exposed-access properties of Definitions
// 2–3, the access-class equivalence of Definition 4, and the
// thread-private classification of Definition 5. The graph is built by
// the dependence profiler (package profile) or by hand in tests, and
// consumed by the expansion pass.
package ddg

import (
	"fmt"
	"sort"
	"strings"
)

// DepKind is the kind of a data dependence.
type DepKind int

// Dependence kinds.
const (
	Flow   DepKind = iota // read after write
	Anti                  // write after read
	Output                // write after write
)

func (k DepKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("DepKind(%d)", int(k))
}

// Edge is a data dependence between two access sites. Carried
// distinguishes loop-carried from loop-independent dependences with
// respect to the graph's loop.
type Edge struct {
	Src, Dst int
	Kind     DepKind
	Carried  bool
}

// Graph is the loop-level data dependence graph of one loop
// (paper Definition 1).
type Graph struct {
	Loop  int
	edges map[Edge]int64 // edge -> dynamic occurrence count

	// Sites maps every access site executed inside the loop to its
	// dynamic execution count.
	Sites map[int]int64

	// Defs maps definition sites (declarations, allocations) executed
	// inside the loop to their execution count. They are kept separate
	// from Sites: they kill shadow history but are not memory accesses.
	Defs map[int]int64

	// UpwardExposed marks load sites whose value came from outside the
	// loop at least once (Definition 2). DownwardExposed marks store
	// sites whose value was read after the loop (Definition 3).
	UpwardExposed   map[int]bool
	DownwardExposed map[int]bool
}

// NewGraph creates an empty dependence graph for the given loop ID.
func NewGraph(loop int) *Graph {
	return &Graph{
		Loop:            loop,
		edges:           map[Edge]int64{},
		Sites:           map[int]int64{},
		Defs:            map[int]int64{},
		UpwardExposed:   map[int]bool{},
		DownwardExposed: map[int]bool{},
	}
}

// AddSite records one dynamic execution of an access site in the loop.
func (g *Graph) AddSite(site int) { g.Sites[site]++ }

// AddEdge records one dynamic occurrence of a dependence.
func (g *Graph) AddEdge(src, dst int, kind DepKind, carried bool) {
	g.edges[Edge{Src: src, Dst: dst, Kind: kind, Carried: carried}]++
}

// Edges returns the distinct dependence edges in a deterministic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return !a.Carried && b.Carried
	})
	return es
}

// Count returns the dynamic occurrence count of an edge.
func (g *Graph) Count(e Edge) int64 { return g.edges[e] }

// HasEdge reports whether the dependence was observed during
// profiling. The guarded-execution monitor uses it to distinguish a
// profiled (and therefore synchronized or tolerated) conflict from a
// dependence the training input never exposed.
func (g *Graph) HasEdge(src, dst int, kind DepKind, carried bool) bool {
	return g.edges[Edge{Src: src, Dst: dst, Kind: kind, Carried: carried}] > 0
}

// HasCarried reports whether site participates (as either endpoint) in
// a loop-carried dependence of the given kind.
func (g *Graph) HasCarried(site int, kind DepKind) bool {
	for e := range g.edges {
		if e.Carried && e.Kind == kind && (e.Src == site || e.Dst == site) {
			return true
		}
	}
	return false
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %d: %d sites, %d edges\n", g.Loop, len(g.Sites), len(g.edges))
	for _, e := range g.Edges() {
		carried := "independent"
		if e.Carried {
			carried = "carried"
		}
		fmt.Fprintf(&sb, "  %d -> %d %s (%s) x%d\n", e.Src, e.Dst, e.Kind, carried, g.edges[e])
	}
	return sb.String()
}
