package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifyPrivate(t *testing.T) {
	// Site 1 stores, site 2 loads the same location in each iteration:
	// independent flow 1->2, carried anti 2->1, carried output 1->1.
	g := NewGraph(1)
	g.AddSite(1)
	g.AddSite(2)
	g.AddEdge(1, 2, Flow, false)
	g.AddEdge(2, 1, Anti, true)
	g.AddEdge(1, 1, Output, true)
	cls := Classify(g, DefaultOptions())
	if len(cls.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(cls.Classes))
	}
	if !cls.Private(1) || !cls.Private(2) {
		t.Fatalf("sites not private: %+v", cls.Classes[0])
	}
}

func TestClassifyCarriedFlowBlocks(t *testing.T) {
	g := NewGraph(1)
	g.AddSite(1)
	g.AddSite(2)
	g.AddEdge(1, 2, Flow, true) // accumulator pattern
	g.AddEdge(1, 1, Output, true)
	cls := Classify(g, DefaultOptions())
	if cls.Private(1) || cls.Private(2) {
		t.Fatalf("carried flow must block privatization")
	}
}

func TestClassifyUpwardExposedBlocks(t *testing.T) {
	g := NewGraph(1)
	g.AddSite(1)
	g.AddSite(2)
	g.AddEdge(1, 2, Flow, false)
	g.AddEdge(2, 1, Anti, true)
	g.UpwardExposed[2] = true
	cls := Classify(g, DefaultOptions())
	if cls.Private(1) {
		t.Fatalf("upwards-exposed load must block privatization")
	}
}

func TestClassifyDownwardExposedBlocks(t *testing.T) {
	g := NewGraph(1)
	g.AddSite(1)
	g.AddEdge(1, 1, Output, true)
	g.DownwardExposed[1] = true
	cls := Classify(g, DefaultOptions())
	if cls.Private(1) {
		t.Fatalf("downwards-exposed store must block privatization")
	}
}

func TestClassifyNeedsCarriedAntiOrOutput(t *testing.T) {
	// Loop-independent flow only: no dependence to remove, so under
	// Definition 5 the class stays shared...
	g := NewGraph(1)
	g.AddSite(1)
	g.AddSite(2)
	g.AddEdge(1, 2, Flow, false)
	cls := Classify(g, DefaultOptions())
	if cls.Private(1) {
		t.Fatalf("class without carried anti/output must stay shared by default")
	}
	// ... but the relaxed option (paper's noted relaxation) privatizes it.
	relaxed := Classify(g, Options{RequireCarriedAntiOrOutput: false})
	if !relaxed.Private(1) {
		t.Fatalf("relaxed option should privatize")
	}
}

// TestEquivalenceTransitivity reproduces the paper's L1–L4 example: a
// conditional alias chains two accesses into one class, so the whole
// class is classified together.
func TestEquivalenceTransitivity(t *testing.T) {
	g := NewGraph(1)
	for s := 1; s <= 4; s++ {
		g.AddSite(s)
	}
	g.AddEdge(1, 2, Flow, false) // *p store -> *p load (same iteration)
	g.AddEdge(2, 3, Anti, false) // *p load -> a[i] store
	g.AddEdge(3, 3, Output, true)
	g.UpwardExposed[4] = true // unrelated shared access
	cls := Classify(g, DefaultOptions())
	c1 := cls.ClassOf(1)
	if c1 == nil || len(c1.Sites) != 3 {
		t.Fatalf("sites 1,2,3 must share a class, got %+v", c1)
	}
	if cls.ClassOf(4) == c1 {
		t.Fatalf("site 4 must be in its own class")
	}
}

func TestClassifyPartition(t *testing.T) {
	// Property: classes partition the sites regardless of how edges
	// arrived.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(1)
		n := 2 + rng.Intn(20)
		for s := 1; s <= n; s++ {
			g.AddSite(s)
		}
		for i := 0; i < n*2; i++ {
			src := 1 + rng.Intn(n)
			dst := 1 + rng.Intn(n)
			g.AddEdge(src, dst, DepKind(rng.Intn(3)), rng.Intn(2) == 0)
		}
		cls := Classify(g, DefaultOptions())
		seen := map[int]bool{}
		total := 0
		for _, c := range cls.Classes {
			for _, s := range c.Sites {
				if seen[s] {
					return false
				}
				seen[s] = true
				if cls.ClassOf(s) != c {
					return false
				}
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyOrderInvariant(t *testing.T) {
	// Property: inserting the same edges in a different order yields
	// the same private-site set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		type edge struct {
			src, dst int
			kind     DepKind
			carried  bool
		}
		var edges []edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, edge{
				1 + rng.Intn(n), 1 + rng.Intn(n),
				DepKind(rng.Intn(3)), rng.Intn(2) == 0,
			})
		}
		build := func(perm []int) map[int]bool {
			g := NewGraph(1)
			for s := 1; s <= n; s++ {
				g.AddSite(s)
			}
			for _, i := range perm {
				e := edges[i]
				g.AddEdge(e.src, e.dst, e.kind, e.carried)
			}
			cls := Classify(g, DefaultOptions())
			out := map[int]bool{}
			for s := 1; s <= n; s++ {
				out[s] = cls.Private(s)
			}
			return out
		}
		fwd := make([]int, len(edges))
		for i := range fwd {
			fwd[i] = i
		}
		rev := rng.Perm(len(edges))
		a, b := build(fwd), build(rev)
		for s := 1; s <= n; s++ {
			if a[s] != b[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	g := NewGraph(1)
	for i := 0; i < 10; i++ {
		g.AddSite(1) // private (carried anti)
	}
	for i := 0; i < 5; i++ {
		g.AddSite(2) // carried flow -> "with carried dep"
	}
	for i := 0; i < 3; i++ {
		g.AddSite(3) // no deps at all -> free
	}
	g.AddEdge(1, 1, Anti, true)
	g.AddEdge(2, 2, Flow, true)
	cls := Classify(g, DefaultOptions())
	b := BreakdownOf(g, cls)
	if b.Expandable != 10 || b.Carried != 5 || b.Free != 3 || b.Total != 18 {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := NewGraph(7)
	g.AddEdge(3, 1, Flow, true)
	g.AddEdge(1, 2, Anti, false)
	g.AddEdge(1, 2, Flow, false)
	es := g.Edges()
	if len(es) != 3 || es[0].Src != 1 || es[2].Src != 3 {
		t.Fatalf("edges = %+v", es)
	}
	if g.Count(es[0]) != 1 {
		t.Fatalf("count = %d", g.Count(es[0]))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := NewGraph(3)
	g.AddSite(1)
	g.AddSite(2)
	g.Defs[9] = 4
	g.AddEdge(1, 2, Flow, false)
	g.AddEdge(2, 1, Anti, true)
	g.AddEdge(1, 1, Output, true)
	g.UpwardExposed[2] = true
	g.DownwardExposed[1] = true

	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Loop != 3 || len(back.Sites) != 2 || back.Defs[9] != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !back.UpwardExposed[2] || !back.DownwardExposed[1] {
		t.Fatalf("exposure lost")
	}
	a := Classify(g, DefaultOptions())
	b := Classify(&back, DefaultOptions())
	for s := 1; s <= 2; s++ {
		if a.Private(s) != b.Private(s) {
			t.Fatalf("classification changed after round trip (site %d)", s)
		}
	}
}

func TestJSONBadKind(t *testing.T) {
	var g Graph
	err := g.UnmarshalJSON([]byte(`{"loop":1,"sites":{},"edges":[{"src":1,"dst":2,"kind":"bogus"}]}`))
	if err == nil {
		t.Fatal("bad kind accepted")
	}
}
