package ddg

import "sort"

// Class is one access class: an equivalence class of memory accesses
// under the loop-independent-dependence relation (paper Definition 4).
type Class struct {
	ID      int
	Sites   []int // sorted
	Private bool  // thread-private per Definition 5

	// Diagnosis of why the class is or is not private.
	HasUpwardExposed   bool
	HasDownwardExposed bool
	HasCarriedFlow     bool
	HasCarriedAntiOut  bool

	// Commutative marks a shared class whose carried flow is entirely
	// reduction-shaped: every site is a commutative update under the
	// same operator (Options.CommSites) and every carried dependence
	// incident to the class stays inside it — no outside access reads
	// or writes the locations mid-loop. Such a class cannot be
	// expanded, but each thread can update a private identity-
	// initialized copy and merge at region exit.
	Commutative bool
	CommOp      CommOp
}

// Options tune the classification.
type Options struct {
	// RequireCarriedAntiOrOutput enforces Definition 5's condition 3:
	// a class is privatized only when at least one of its accesses is
	// involved in a loop-carried anti- or output dependence (i.e. the
	// expansion is actually needed to remove a dependence). Disabling
	// it is the relaxation the paper mentions after Definition 5,
	// trading memory for uniformity; it is benchmarked as an ablation.
	RequireCarriedAntiOrOutput bool

	// CommSites maps access-site IDs to the commutative-update operator
	// the frontend detected at the site (+=/-=/++/-- are CommAdd,
	// guarded min/max updates CommMin/CommMax). Classes whose every
	// site carries the same operator — and whose carried dependences
	// stay inside the class — are marked Commutative. Nil or empty
	// disables the marking.
	CommSites map[int]CommOp
}

// DefaultOptions matches the paper's Definition 5 exactly.
func DefaultOptions() Options {
	return Options{RequireCarriedAntiOrOutput: true}
}

// Classification is the partition of a loop's accesses into classes
// and the resulting shared/private split.
type Classification struct {
	Classes   []*Class
	siteClass map[int]*Class
}

// ClassOf returns the access class containing site, or nil.
func (c *Classification) ClassOf(site int) *Class { return c.siteClass[site] }

// Private reports whether site is a thread-private access
// (Definition 5). Sites not in the loop are shared.
func (c *Classification) Private(site int) bool {
	cl := c.siteClass[site]
	return cl != nil && cl.Private
}

// PrivateSites returns all private access sites, sorted.
func (c *Classification) PrivateSites() []int {
	var out []int
	for s, cl := range c.siteClass {
		if cl.Private {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Classify partitions the accesses of g into access classes by
// union-find over loop-independent dependences (Definition 4), then
// marks each class thread-private or shared per Definition 5.
func Classify(g *Graph, opts Options) *Classification {
	// Union-find over sites.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for site := range g.Sites {
		find(site)
	}
	for e := range g.edges {
		if !e.Carried {
			union(e.Src, e.Dst)
		}
	}

	groups := map[int][]int{}
	for site := range g.Sites {
		r := find(site)
		groups[r] = append(groups[r], site)
	}

	// Deterministic class order: by smallest member.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		sort.Ints(groups[r])
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	cls := &Classification{siteClass: map[int]*Class{}}
	for i, r := range roots {
		c := &Class{ID: i + 1, Sites: groups[r]}
		for _, s := range c.Sites {
			if g.UpwardExposed[s] {
				c.HasUpwardExposed = true
			}
			if g.DownwardExposed[s] {
				c.HasDownwardExposed = true
			}
			if g.HasCarried(s, Flow) {
				c.HasCarriedFlow = true
			}
			if g.HasCarried(s, Anti) || g.HasCarried(s, Output) {
				c.HasCarriedAntiOut = true
			}
		}
		c.Private = !c.HasUpwardExposed && !c.HasDownwardExposed && !c.HasCarriedFlow
		if opts.RequireCarriedAntiOrOutput && !c.HasCarriedAntiOut {
			c.Private = false
		}
		for _, s := range c.Sites {
			cls.siteClass[s] = c
		}
		cls.Classes = append(cls.Classes, c)
	}
	if len(opts.CommSites) > 0 {
		for _, c := range cls.Classes {
			markCommutative(g, cls, c, opts.CommSites)
		}
	}
	return cls
}

// markCommutative decides whether a shared class is a privatizable
// reduction: it must carry a flow dependence (the accumulator pattern —
// a private class needs no merge machinery), every site must be a
// commutative update under one operator, and every carried dependence
// touching the class must stay inside it, which proves no outside
// access observes or overwrites the accumulator's locations mid-loop
// (e.g. a[i] += a[i-1] is rejected: the carried flow into the stencil
// read crosses the class boundary).
func markCommutative(g *Graph, cls *Classification, c *Class, comm map[int]CommOp) {
	if c.Private || !c.HasCarriedFlow {
		return
	}
	op := CommNone
	for _, s := range c.Sites {
		o := comm[s]
		if o == CommNone || (op != CommNone && o != op) {
			return
		}
		op = o
	}
	for e := range g.edges {
		if !e.Carried {
			continue
		}
		if (cls.siteClass[e.Src] == c) != (cls.siteClass[e.Dst] == c) {
			return
		}
	}
	c.Commutative, c.CommOp = true, op
}

// Breakdown categorizes the dynamic accesses of the loop for the
// paper's Figure 8: accesses free of any loop-carried dependence,
// expandable (thread-private) accesses, and accesses involved in a
// loop-carried dependence that cannot be removed by expansion.
type Breakdown struct {
	Free       int64 // free of loop-carried dependences
	Expandable int64 // thread-private per Definition 5
	Carried    int64 // remaining accesses with loop-carried dependences
	Total      int64
}

// BreakdownOf computes the Figure 8 categorization for g under cls.
func BreakdownOf(g *Graph, cls *Classification) Breakdown {
	var b Breakdown
	for site, n := range g.Sites {
		b.Total += n
		carried := g.HasCarried(site, Flow) || g.HasCarried(site, Anti) || g.HasCarried(site, Output)
		switch {
		case cls.Private(site):
			b.Expandable += n
		case carried:
			b.Carried += n
		default:
			b.Free += n
		}
	}
	return b
}
