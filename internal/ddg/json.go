package ddg

// JSON serialization of dependence graphs. The paper (§2) allows the
// loop-level dependence graph to come "either from the programmer, the
// compiler, or tools that perform data dependence profiling ... with
// programmer verification": this encoding is the interchange format —
// `gdsx profile -json` emits it, a programmer can inspect and edit it,
// and the Transform pipeline accepts it back in place of a fresh
// profiling run.

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Loop            int           `json:"loop"`
	Sites           map[int]int64 `json:"sites"`
	Defs            map[int]int64 `json:"defs,omitempty"`
	UpwardExposed   []int         `json:"upward_exposed,omitempty"`
	DownwardExposed []int         `json:"downward_exposed,omitempty"`
	Edges           []jsonEdge    `json:"edges"`
}

type jsonEdge struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Kind    string `json:"kind"`
	Carried bool   `json:"carried"`
	Count   int64  `json:"count,omitempty"`
}

// MarshalJSON encodes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Loop:  g.Loop,
		Sites: g.Sites,
		Defs:  g.Defs,
	}
	for s := range g.UpwardExposed {
		jg.UpwardExposed = append(jg.UpwardExposed, s)
	}
	for s := range g.DownwardExposed {
		jg.DownwardExposed = append(jg.DownwardExposed, s)
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{
			Src: e.Src, Dst: e.Dst, Kind: e.Kind.String(),
			Carried: e.Carried, Count: g.Count(e),
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph (e.g. one edited by a programmer).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = *NewGraph(jg.Loop)
	for s, n := range jg.Sites {
		g.Sites[s] = n
	}
	for s, n := range jg.Defs {
		g.Defs[s] = n
	}
	for _, s := range jg.UpwardExposed {
		g.UpwardExposed[s] = true
	}
	for _, s := range jg.DownwardExposed {
		g.DownwardExposed[s] = true
	}
	for _, e := range jg.Edges {
		var k DepKind
		switch e.Kind {
		case "flow":
			k = Flow
		case "anti":
			k = Anti
		case "output":
			k = Output
		default:
			return fmt.Errorf("ddg: unknown dependence kind %q", e.Kind)
		}
		count := e.Count
		if count <= 0 {
			count = 1
		}
		g.edges[Edge{Src: e.Src, Dst: e.Dst, Kind: k, Carried: e.Carried}] = count
	}
	return nil
}
