package serve

import (
	"sync"
)

// Shed levels: the degradation ladder trades execution quality for
// admission capacity, in order of increasing harm, before the server
// refuses work. Each level includes everything above it.
const (
	// ShedNone: full quality — profile-specialized compiled execution,
	// opportunistic profile harvest on a cache entry's first run.
	ShedNone = 0
	// ShedNoSpecialize: drop profile-guided specialization and its
	// harvest run overhead (the harvest's hot-site profiler forces every
	// sited access through the hook path — the first thing to go).
	ShedNoSpecialize = 1
	// ShedSampleGuards: additionally force guarded runs onto aggressive
	// guard-sampling tiers (promote after 1 clean region, start at
	// every-8th-iteration checks), cutting monitor cost to its floor
	// while checkpoint/rollback keeps correctness.
	ShedSampleGuards = 2
	// ShedSequential: additionally demote new requests to single-thread
	// execution — no worker stacks, no region machinery, minimum memory
	// and scheduler footprint per request. The last step before 429s.
	ShedSequential = 3

	shedMax = ShedSequential
)

// Ladder tracks queue pressure as an exponentially-weighted moving
// average of admission-queue occupancy and maps it to a shed level
// with hysteresis: the level steps up when the EWMA crosses a
// threshold and steps down only when it falls a margin below it, so
// bursty arrivals don't make quality oscillate.
type Ladder struct {
	mu    sync.Mutex
	ewma  float64
	level int

	// configuration (fixed at construction)
	alpha float64
	up    [shedMax]float64 // up[i]: occupancy to enter level i+1
	down  float64          // hysteresis margin below up[level-1] to leave
}

// NewLadder returns a ladder with the production thresholds: levels
// engage at 25/50/75% sustained occupancy and release 15 points lower.
func NewLadder() *Ladder {
	return &Ladder{
		alpha: 0.2,
		up:    [shedMax]float64{0.25, 0.50, 0.75},
		down:  0.15,
	}
}

// Observe folds one occupancy sample (queued+running over capacity,
// taken at each admission) into the EWMA and returns the level the
// arriving request should run at.
func (l *Ladder) Observe(occupancy float64) int {
	if occupancy < 0 {
		occupancy = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ewma = l.alpha*occupancy + (1-l.alpha)*l.ewma
	for l.level < shedMax && l.ewma >= l.up[l.level] {
		l.level++
	}
	for l.level > 0 && l.ewma < l.up[l.level-1]-l.down {
		l.level--
	}
	return l.level
}

// Level returns the current shed level without folding in a sample.
func (l *Ladder) Level() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// Pressure returns the current occupancy EWMA.
func (l *Ladder) Pressure() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ewma
}
