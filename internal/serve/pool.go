package serve

import "gdsx"

// MemPool recycles simulated-memory arenas across requests. Allocating
// a fresh 64 MiB arena per request is the single largest per-request
// allocation the service would make; pooling replaces it with a
// watermark-bounded Reset (see mem.Memory.Reset). The pool is a
// bounded free list: Get falls back to a fresh arena when empty, Put
// drops the arena when full, so the pool never blocks a request and
// its footprint is capped at size × capacity.
type MemPool struct {
	free  chan *gdsx.Memory
	bytes int64
}

// NewMemPool returns a pool holding at most capacity arenas of the
// given byte size (0 selects the 64 MiB default).
func NewMemPool(capacity int, bytes int64) *MemPool {
	if capacity < 1 {
		capacity = 1
	}
	if bytes <= 0 {
		bytes = 64 << 20
	}
	return &MemPool{free: make(chan *gdsx.Memory, capacity), bytes: bytes}
}

// Get returns a reset arena, allocating a fresh one when the pool is
// empty.
func (p *MemPool) Get() *gdsx.Memory {
	select {
	case m := <-p.free:
		return m
	default:
		return gdsx.NewMemory(p.bytes)
	}
}

// Put resets the arena and returns it to the pool; a full pool drops
// it for the garbage collector. Reset here (not in Get) keeps the
// request's data from lingering in the pool — tenant isolation, not
// just hygiene.
func (p *MemPool) Put(m *gdsx.Memory) {
	if m == nil {
		return
	}
	m.Reset()
	select {
	case p.free <- m:
	default:
	}
}
