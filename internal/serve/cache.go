package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"gdsx"
)

// Entry is one cached transform-pipeline result: the compiled native
// program, its transform (profiling + expansion — the expensive part),
// and the compiled expanded program. Entries are immutable after
// construction except for the harvested optimization profile, which is
// published once via an atomic pointer.
//
// Machine-level closure compilation is deliberately NOT cached: the
// compiled closures capture their Machine, so each run builds its own.
// What the cache removes is the parse→sema→profile→expand pipeline,
// which dominates small-request latency.
type Entry struct {
	Native   *gdsx.Program
	Tr       *gdsx.TransformResult
	Expanded *gdsx.Program
	// Err is set instead of the programs when the pipeline rejected the
	// source; caching rejections keeps a thundering herd of the same
	// broken source from re-running sema each time.
	Err *Error
	// transient marks an Err that depends on the building request's
	// circumstances (its deadline, its quota) rather than the source
	// itself; such entries are evicted after delivery instead of
	// poisoning the key for later, better-resourced requests.
	transient bool

	// profile is the hot-site profile harvested from this entry's first
	// full-quality run, used to specialize later compiled runs (shed
	// level 0 only; see ladder.go).
	profile atomic.Pointer[gdsx.SiteProfile]
}

// Profile returns the harvested optimization profile, nil before the
// first harvest.
func (e *Entry) Profile() *gdsx.SiteProfile { return e.profile.Load() }

// SetProfile publishes a harvested profile; first writer wins so a
// concurrent duplicate harvest cannot flip-flop specialization.
func (e *Entry) SetProfile(p *gdsx.SiteProfile) {
	if p != nil {
		e.profile.CompareAndSwap(nil, p)
	}
}

type cacheKey struct {
	hash  [sha256.Size]byte
	guard bool
}

type cacheSlot struct {
	key   cacheKey
	entry *Entry
}

type flightCall struct {
	done  chan struct{}
	entry *Entry
}

// Cache is the LRU transform cache with single-flight deduplication:
// concurrent requests for the same (source, guard) key compile once,
// and everyone — leader and followers — gets the same Entry. The key
// hashes the combined Input+Source text plus the guard flag, the only
// option that changes the transform itself (everything else is a
// run-time knob).
type Cache struct {
	mu     sync.Mutex
	max    int
	lru    *list.List // front = most recent; values are *cacheSlot
	slots  map[cacheKey]*list.Element
	flight map[cacheKey]*flightCall

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns a cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:    max,
		lru:    list.New(),
		slots:  map[cacheKey]*list.Element{},
		flight: map[cacheKey]*flightCall{},
	}
}

// Key computes the cache key for a request.
func Key(source string, guard bool) cacheKey {
	return cacheKey{hash: sha256.Sum256([]byte(source)), guard: guard}
}

// Remove evicts key if resident (transient build failures must not
// stick).
func (c *Cache) Remove(key cacheKey) {
	c.mu.Lock()
	if el, ok := c.slots[key]; ok {
		c.lru.Remove(el)
		delete(c.slots, key)
	}
	c.mu.Unlock()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the entry for key, building it with build on a miss.
// Exactly one caller runs build per key at a time; concurrent callers
// block on the leader's result (which they share, error or not). The
// second return reports whether the entry came from cache.
func (c *Cache) Get(key cacheKey, build func() *Entry) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.slots[key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheSlot).entry, true
	}
	if fc, ok := c.flight[key]; ok {
		// A leader is already building this key: piggyback. Counted as a
		// hit — the request paid no pipeline cost of its own.
		c.mu.Unlock()
		<-fc.done
		c.hits.Add(1)
		return fc.entry, true
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[key] = fc
	c.mu.Unlock()

	c.misses.Add(1)
	entry := build()
	if entry == nil {
		entry = &Entry{Err: errf(CodePanic, "transform pipeline returned nothing")}
	}
	fc.entry = entry

	c.mu.Lock()
	delete(c.flight, key)
	if _, ok := c.slots[key]; !ok {
		c.slots[key] = c.lru.PushFront(&cacheSlot{key: key, entry: entry})
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.slots, oldest.Value.(*cacheSlot).key)
		}
	}
	c.mu.Unlock()
	close(fc.done)
	return entry, false
}
