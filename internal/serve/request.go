// Package serve implements gdsxd, the long-lived multi-tenant
// transform-and-run service: it accepts {source, input, options}
// requests over HTTP and runs the full parse→sema→expand→execute
// pipeline with per-request isolation (panic recovery, memory quotas,
// cooperative deadline cancellation), admission control (bounded
// queue, per-tenant token buckets), a load-shedding ladder that
// degrades execution quality before refusing work, and an LRU
// transform cache with single-flight deduplication. See DESIGN.md §7.
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"gdsx"
)

// Code classifies a request's failure; every non-200 response carries
// exactly one. The vocabulary is part of the service API: clients and
// the chaos harness key off it, so additions are fine but renames are
// breaking.
type Code string

const (
	CodeOK        Code = "ok"
	CodeBadReq    Code = "bad_request"   // malformed JSON or invalid options
	CodeCompile   Code = "compile_error" // parse or sema rejection
	CodeTransform Code = "transform_error"
	CodeRuntime   Code = "runtime_error" // MiniC fault (null deref, OOB, ...)
	CodeOOM       Code = "oom"           // memory quota or capacity exhausted
	CodeCancelled Code = "cancelled"     // client disconnected mid-run
	CodeTimeout   Code = "timeout"       // request deadline elapsed mid-run
	CodeRateLimit Code = "rate_limited"  // per-tenant token bucket empty
	CodeQueueFull Code = "queue_full"    // admission queue at capacity
	CodeDraining  Code = "draining"      // server is shutting down
	CodePanic     Code = "internal_panic"
)

// Error is a structured request failure: a stable code plus a
// human-readable detail. It is both the handler's JSON error body and
// a Go error, so the execution path can return it directly.
type Error struct {
	Code   Code   `json:"code"`
	Detail string `json:"detail,omitempty"`
}

func (e *Error) Error() string { return string(e.Code) + ": " + e.Detail }

func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Options are the client-settable execution knobs. Every field is
// validated and clamped against the server's Limits — a tenant cannot
// request more threads, memory or time than the operator allows.
type Options struct {
	// Threads is the simulated thread count (default 4, clamped to the
	// server's MaxThreads).
	Threads int `json:"threads,omitempty"`
	// Engine selects "compiled" (default), "compiled-noopt" or "tree".
	Engine string `json:"engine,omitempty"`
	// Sched selects "stealing" (default), "static" or "dynamic".
	Sched string `json:"sched,omitempty"`
	// Guard runs the expanded program under the guarded-execution
	// monitor with region recovery (slower, but survives inputs the
	// profile never saw).
	Guard bool `json:"guard,omitempty"`
	// MemLimit caps the request's live simulated bytes (default and
	// ceiling come from the server's Limits).
	MemLimit int64 `json:"mem_limit,omitempty"`
	// MaxOps bounds the simulated operation count (0 = server default).
	MaxOps int64 `json:"max_ops,omitempty"`
	// TimeoutMs bounds wall-clock execution; the deadline cancels the
	// interpreter cooperatively mid-region (0 = server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// FaultSuspectEvery / FaultRollbackEvery arm the interpreter's
	// chaos fault plan (spurious guard suspicions / forced rollbacks
	// every nth healthy region). Only honored when Guard is set; used
	// by the chaos harness to exercise the recovery ladder end to end.
	FaultSuspectEvery  int `json:"fault_suspect_every,omitempty"`
	FaultRollbackEvery int `json:"fault_rollback_every,omitempty"`
}

// Request is the body of POST /run.
type Request struct {
	// Source is the MiniC program (required).
	Source string `json:"source"`
	// Input, when non-empty, is prepended to Source — the idiom for
	// supplying data declarations to a reusable kernel without editing
	// the kernel text (and without a second cache entry per data set:
	// the cache key covers the combined text).
	Input string `json:"input,omitempty"`
	// Tenant identifies the caller for rate limiting ("" is its own
	// tenant). The X-Tenant header overrides it.
	Tenant  string  `json:"tenant,omitempty"`
	Options Options `json:"options"`
}

// Response is the body of a successful POST /run.
type Response struct {
	Output string `json:"output"`
	// Ops is the simulated work-instruction count.
	Ops int64 `json:"ops"`
	// CacheHit reports whether the transform cache served this request.
	CacheHit bool `json:"cache_hit"`
	// ShedLevel is the degradation level the request ran at (0 = full
	// quality; see ladder.go).
	ShedLevel int `json:"shed_level"`
	// Recovered counts parallel regions rolled back and re-executed
	// sequentially (guarded runs only).
	Recovered int `json:"recovered,omitempty"`
	// Violations counts guard violations absorbed by recovery.
	Violations int     `json:"violations,omitempty"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

// Limits are the server-side validation bounds. The zero value is
// filled with production defaults by fill().
type Limits struct {
	MaxSourceBytes int64
	MaxBodyBytes   int64
	MaxThreads     int
	DefaultThreads int
	MaxMemLimit    int64
	DefMemLimit    int64
	MaxOps         int64 // ceiling AND default: an unbounded run can pin a worker forever
	MaxTimeout     time.Duration
	DefTimeout     time.Duration
}

func (l *Limits) fill() {
	if l.MaxSourceBytes <= 0 {
		l.MaxSourceBytes = 1 << 20
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = l.MaxSourceBytes + (64 << 10)
	}
	if l.MaxThreads <= 0 {
		l.MaxThreads = 16
	}
	if l.DefaultThreads <= 0 {
		l.DefaultThreads = 4
	}
	if l.MaxMemLimit <= 0 {
		l.MaxMemLimit = 48 << 20
	}
	if l.DefMemLimit <= 0 {
		l.DefMemLimit = 16 << 20
	}
	if l.MaxOps <= 0 {
		l.MaxOps = 500_000_000
	}
	if l.MaxTimeout <= 0 {
		l.MaxTimeout = 30 * time.Second
	}
	if l.DefTimeout <= 0 {
		l.DefTimeout = 10 * time.Second
	}
}

// ParseRequest decodes and validates a request body against the
// limits. It must never panic on any input (FuzzServeRequest holds it
// to that): every rejection is a structured bad_request Error.
func ParseRequest(body []byte, lim Limits) (*Request, *Error) {
	lim.fill()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, errf(CodeBadReq, "body exceeds %d bytes", lim.MaxBodyBytes)
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errf(CodeBadReq, "invalid JSON: %v", err)
	}
	if req.Source == "" {
		return nil, errf(CodeBadReq, "source is required")
	}
	if int64(len(req.Source))+int64(len(req.Input)) > lim.MaxSourceBytes {
		return nil, errf(CodeBadReq, "source exceeds %d bytes", lim.MaxSourceBytes)
	}
	if len(req.Tenant) > 256 {
		return nil, errf(CodeBadReq, "tenant name exceeds 256 bytes")
	}
	o := &req.Options
	if o.Threads < 0 || o.Threads > lim.MaxThreads {
		return nil, errf(CodeBadReq, "threads %d out of range [0, %d]", o.Threads, lim.MaxThreads)
	}
	if o.Threads == 0 {
		o.Threads = lim.DefaultThreads
	}
	if _, ok := gdsx.EngineFromString(o.Engine); !ok {
		return nil, errf(CodeBadReq, "unknown engine %q", o.Engine)
	}
	if _, ok := gdsx.SchedFromString(o.Sched); !ok {
		return nil, errf(CodeBadReq, "unknown scheduler %q", o.Sched)
	}
	if o.MemLimit < 0 || o.MemLimit > lim.MaxMemLimit {
		return nil, errf(CodeBadReq, "mem_limit %d out of range [0, %d]", o.MemLimit, lim.MaxMemLimit)
	}
	if o.MemLimit == 0 {
		o.MemLimit = lim.DefMemLimit
	}
	if o.MaxOps < 0 || o.MaxOps > lim.MaxOps {
		return nil, errf(CodeBadReq, "max_ops %d out of range [0, %d]", o.MaxOps, lim.MaxOps)
	}
	if o.MaxOps == 0 {
		o.MaxOps = lim.MaxOps
	}
	if o.TimeoutMs < 0 || time.Duration(o.TimeoutMs)*time.Millisecond > lim.MaxTimeout {
		return nil, errf(CodeBadReq, "timeout_ms %d out of range [0, %d]",
			o.TimeoutMs, lim.MaxTimeout.Milliseconds())
	}
	if o.TimeoutMs == 0 {
		o.TimeoutMs = lim.DefTimeout.Milliseconds()
	}
	if o.FaultSuspectEvery < 0 || o.FaultRollbackEvery < 0 {
		return nil, errf(CodeBadReq, "fault plan intervals must be non-negative")
	}
	if (o.FaultSuspectEvery > 0 || o.FaultRollbackEvery > 0) && !o.Guard {
		return nil, errf(CodeBadReq, "fault plan requires guard: true (the plan drives the recovery ladder)")
	}
	return &req, nil
}
