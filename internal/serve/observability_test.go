package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink: the server writes log lines
// from handler goroutines while the test polls for them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func fetch(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	code, body, err := fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	return code, body
}

// waitFor polls cond until it holds or the deadline passes. The
// request's observability settles in a deferred finishRequest that can
// run after the client has already received the response, so trace and
// log assertions poll briefly instead of racing it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRequestFollowEndToEnd is the acceptance walk: one request sent
// with an X-Request-ID is followable through the structured log, the
// retained Chrome trace (service spans plus runtime region events
// stamped with the ID), and the per-tenant counters on /metrics.
func TestRequestFollowEndToEnd(t *testing.T) {
	logbuf := &syncBuffer{}
	s := New(Config{Rate: RateLimit{RPS: -1}, RequestLog: logbuf})
	ts := newTS(t, s)

	const reqID = "e2e-req-001"
	body, err := json.Marshal(Request{Source: parSrc})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-ID", reqID)
	hreq.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, respBody)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("response X-Request-ID = %q, want %q", got, reqID)
	}

	// 1. The structured log line carries the ID and the request facts.
	waitFor(t, "request log line", func() bool {
		return strings.Contains(logbuf.String(), reqID)
	})
	var line map[string]any
	logged := strings.TrimSpace(logbuf.String())
	if err := json.Unmarshal([]byte(strings.Split(logged, "\n")[0]), &line); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", logged, err)
	}
	if line["id"] != reqID || line["tenant"] != "acme" || line["status"].(float64) != 200 {
		t.Fatalf("log line wrong: %v", line)
	}
	if line["traced"] != true {
		t.Fatalf("explicit X-Request-ID not traced: %v", line)
	}
	for _, key := range []string{"time", "shed_level", "cache_hit", "queue_ms", "exec_ms", "total_ms"} {
		if _, ok := line[key]; !ok {
			t.Fatalf("log line missing %q: %v", key, line)
		}
	}

	// 2. The retained trace is a valid Chrome span tree: service spans
	// for every request phase, runtime region events, all stamped with
	// the request ID.
	waitFor(t, "trace retention", func() bool {
		code, _ := getBody(t, ts.URL+"/debug/traces/"+reqID)
		return code == http.StatusOK
	})
	_, traceBody := getBody(t, ts.URL+"/debug/traces/"+reqID)
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(traceBody, &chrome); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		seen[ev.Name] = true
		if got := ev.Args["request_id"]; got != reqID {
			t.Fatalf("event %q request_id = %v, want %q", ev.Name, got, reqID)
		}
	}
	for _, span := range []string{"queue-wait", "cache-lookup", "build", "execute", "region"} {
		if !seen[span] {
			t.Fatalf("trace missing %q (saw %v)", span, seen)
		}
	}

	// 3. The trace index lists it.
	_, idxBody := getBody(t, ts.URL+"/debug/traces")
	var idx []map[string]any
	if err := json.Unmarshal(idxBody, &idx); err != nil {
		t.Fatalf("trace index not JSON: %v", err)
	}
	found := false
	for _, e := range idx {
		if e["id"] == reqID {
			found = true
			if e["tenant"] != "acme" {
				t.Fatalf("index entry wrong: %v", e)
			}
		}
	}
	if !found {
		t.Fatalf("trace index missing %s: %s", reqID, idxBody)
	}

	// 4. Per-tenant counters for the request are on /metrics.
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`gdsx_serve_tenant_requests_total{tenant="acme"} 1`,
		`gdsx_serve_tenant_ok_total{tenant="acme"} 1`,
		`gdsx_serve_tenant_regions_total{tenant="acme"}`,
		"gdsx_serve_requests_total 1",
		"gdsx_serve_latency_us_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

func newTS(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestStatsMigrationEquivalence drives mixed traffic and asserts the
// registry-backed /stats keeps the pre-migration JSON contract: same
// field names, and values that match an independent tally of the
// traffic.
func TestStatsMigrationEquivalence(t *testing.T) {
	_, ts := testServer(t, Config{})
	// 3 successes (1 build + 2 cache hits), 2 compile errors, 1 bad
	// request.
	for i := 0; i < 3; i++ {
		resp, body := postRun(t, ts.URL, Request{Source: seqSrc})
		decodeOK(t, resp, body)
	}
	for i := 0; i < 2; i++ {
		resp, body := postRun(t, ts.URL, Request{Source: "int main( {"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("compile error status %d, body %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	code, raw := getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	// The migration must not rename or drop any field.
	var asMap map[string]any
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "ok", "errors", "panics", "shed_level", "pressure",
		"runs_by_level", "cache_hits", "cache_misses", "cache_entries",
		"queued", "draining",
	} {
		if _, ok := asMap[key]; !ok {
			t.Fatalf("/stats missing field %q: %s", key, raw)
		}
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 6 {
		t.Fatalf("requests = %d, want 6", st.Requests)
	}
	if st.OK != 3 {
		t.Fatalf("ok = %d, want 3", st.OK)
	}
	if st.Errors["compile_error"] != 2 || st.Errors["bad_request"] != 1 {
		t.Fatalf("errors = %v, want compile_error:2 bad_request:1", st.Errors)
	}
	if st.Panics != 0 || st.Draining {
		t.Fatalf("unexpected panics/draining: %+v", st)
	}
	if len(st.RunsByLevel) != shedMax+1 {
		t.Fatalf("runs_by_level has %d levels, want %d", len(st.RunsByLevel), shedMax+1)
	}
	var runs int64
	for _, n := range st.RunsByLevel {
		runs += n
	}
	// Every request that reached execute (successes + compile errors).
	if runs != 5 {
		t.Fatalf("runs_by_level sums to %d, want 5", runs)
	}
	if st.CacheHits < 2 || st.CacheMisses < 1 {
		t.Fatalf("cache hits/misses = %d/%d", st.CacheHits, st.CacheMisses)
	}
}

// promLineRE is the exposition text format's line shape: a metric name
// with optional labels, one space, a number.
var promLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestConcurrentTraceExport hammers /run from 8 clients (unique
// X-Request-IDs, so every request is traced) while scrapers pull
// /metrics and /debug/traces concurrently — under -race this is the
// torn-snapshot check; the assertions verify parseable exposition
// output and valid Chrome traces with request IDs on runtime region
// events throughout.
func TestConcurrentTraceExport(t *testing.T) {
	s := New(Config{Rate: RateLimit{RPS: -1}, MaxConcurrent: 4, QueueDepth: 64})
	ts := newTS(t, s)

	const clients, perClient = 8, 4
	var load, scrapers sync.WaitGroup
	errs := make(chan error, clients+2)
	stop := make(chan struct{})

	for c := 0; c < clients; c++ {
		load.Add(1)
		go func(c int) {
			defer load.Done()
			for i := 0; i < perClient; i++ {
				id := fmt.Sprintf("hammer-%d-%d", c, i)
				body, _ := json.Marshal(Request{Source: parSrc})
				hreq, _ := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
				hreq.Header.Set("X-Request-ID", id)
				hreq.Header.Set("X-Tenant", fmt.Sprintf("tenant-%d", c%3))
				resp, err := http.DefaultClient.Do(hreq)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %s: status %d", id, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Scrapers run until the load finishes, validating every scrape.
	scrape := func(validate func() error) {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := validate(); err != nil {
				errs <- err
				return
			}
		}
	}
	scrapers.Add(2)
	go scrape(func() error {
		code, body, err := fetch(ts.URL + "/metrics")
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("/metrics status %d", code)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if strings.HasPrefix(line, "#") || line == "" {
				continue
			}
			if !promLineRE.MatchString(line) {
				return fmt.Errorf("malformed exposition line %q", line)
			}
		}
		return nil
	})
	go scrape(func() error {
		code, body, err := fetch(ts.URL + "/debug/traces")
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("/debug/traces status %d", code)
		}
		var idx []struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &idx); err != nil {
			return fmt.Errorf("trace index: %w", err)
		}
		for _, e := range idx[:min(len(idx), 2)] {
			code, tb, err := fetch(ts.URL + "/debug/traces/" + e.ID)
			if err != nil {
				return err
			}
			if code != http.StatusOK {
				// Retention may rotate the trace out between the index
				// read and the fetch; that is not a torn export.
				continue
			}
			var chrome struct {
				TraceEvents []struct {
					Name string         `json:"name"`
					Args map[string]any `json:"args"`
					Ph   string         `json:"ph"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(tb, &chrome); err != nil {
				return fmt.Errorf("trace %s not Chrome JSON: %w", e.ID, err)
			}
			for _, ev := range chrome.TraceEvents {
				if ev.Ph == "M" {
					continue
				}
				if ev.Args["request_id"] != e.ID {
					return fmt.Errorf("trace %s: event %q carries request_id %v",
						e.ID, ev.Name, ev.Args["request_id"])
				}
			}
		}
		return nil
	})

	done := make(chan struct{})
	go func() {
		load.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		close(stop)
		scrapers.Wait()
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		close(stop)
		scrapers.Wait()
		t.Fatal("load did not finish in time")
	}
	close(stop)
	scrapers.Wait()

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the dust settles the store holds retained hammer traces.
	waitFor(t, "retained traces", func() bool {
		_, body := getBody(t, ts.URL+"/debug/traces")
		var idx []struct {
			ID string `json:"id"`
		}
		return json.Unmarshal(body, &idx) == nil && len(idx) > 0
	})
}

// TestDisableObs verifies the baseline configuration the serve
// obs-overhead tier measures: no request IDs, observability endpoints
// 404, /run untouched.
func TestDisableObs(t *testing.T) {
	_, ts := testServer(t, Config{DisableObs: true})
	resp, body := postRun(t, ts.URL, Request{Source: seqSrc})
	r := decodeOK(t, resp, body)
	if r.Output != "42\n" {
		t.Fatalf("output %q", r.Output)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "" {
		t.Fatalf("DisableObs still assigns request IDs: %q", got)
	}
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/traces/x"} {
		code, _ := getBody(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, code)
		}
	}
	// /stats stays servable (live fields only).
	code, _ := getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
}

// TestTraceSampling pins the head-sampling policy: TraceSample 1
// traces everything, negative traces only explicit IDs.
func TestTraceSampling(t *testing.T) {
	logbuf := &syncBuffer{}
	s := New(Config{Rate: RateLimit{RPS: -1}, TraceSample: -1, RequestLog: logbuf})
	ts := newTS(t, s)
	resp, body := postRun(t, ts.URL, Request{Source: seqSrc})
	decodeOK(t, resp, body)
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no generated request ID")
	}
	waitFor(t, "log line", func() bool { return strings.Contains(logbuf.String(), id) })
	if strings.Contains(logbuf.String(), `"traced":true`) {
		t.Fatalf("negative TraceSample still traced: %s", logbuf.String())
	}
	code, _ := getBody(t, ts.URL+"/debug/traces/"+id)
	if code != http.StatusNotFound {
		t.Fatalf("untraced request retained a trace (status %d)", code)
	}

	s2 := New(Config{Rate: RateLimit{RPS: -1}, TraceSample: 1})
	ts2 := newTS(t, s2)
	resp2, body2 := postRun(t, ts2.URL, Request{Source: seqSrc})
	decodeOK(t, resp2, body2)
	id2 := resp2.Header.Get("X-Request-ID")
	waitFor(t, "sampled trace", func() bool {
		code, _ := getBody(t, ts2.URL+"/debug/traces/"+id2)
		return code == http.StatusOK
	})
}

// TestInvalidRequestIDRejected: a hostile X-Request-ID is replaced,
// not echoed.
func TestInvalidRequestIDRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	body, _ := json.Marshal(Request{Source: seqSrc})
	hreq, _ := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
	// A quote would break out of a label value; over-long IDs bloat the
	// store. Both must be replaced by a generated ID. (A newline-bearing
	// header never leaves Go's http client, so it can't be tested here.)
	evil := `bad "id` + strings.Repeat("a", 130)
	hreq.Header.Set("X-Request-ID", evil)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == evil || got == "" {
		t.Fatalf("hostile ID handling wrong: %q", got)
	}
}
