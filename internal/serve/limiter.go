package serve

import (
	"sync"
	"time"
)

// RateLimit configures the per-tenant token buckets: each tenant
// accrues RPS tokens per second up to Burst, and each request spends
// one. RPS <= 0 disables rate limiting.
type RateLimit struct {
	RPS   float64
	Burst float64
}

func (r *RateLimit) fill() {
	if r.Burst <= 0 {
		r.Burst = 2 * r.RPS
	}
	if r.Burst < 1 {
		r.Burst = 1
	}
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is a per-tenant token-bucket rate limiter. Buckets are
// created on first sight of a tenant and swept once the table grows
// past maxBuckets (full buckets carry no state worth keeping — a
// refill on next sight reconstructs them exactly).
type Limiter struct {
	cfg RateLimit
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

const maxBuckets = 16384

// NewLimiter returns a limiter with the given configuration; a zero
// RPS means Allow always succeeds.
func NewLimiter(cfg RateLimit) *Limiter {
	cfg.fill()
	return &Limiter{cfg: cfg, now: time.Now, buckets: map[string]*bucket{}}
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false plus the wait until a token accrues — the
// Retry-After hint.
func (l *Limiter) Allow(tenant string) (bool, time.Duration) {
	if l.cfg.RPS <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.cfg.RPS
	b.last = now
	if b.tokens > l.cfg.Burst {
		b.tokens = l.cfg.Burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.cfg.RPS * float64(time.Second))
	return false, wait
}

// sweepLocked drops buckets that have fully refilled; if none have
// (every tenant is actively limited), the table is allowed to grow —
// correctness over the size cap.
func (l *Limiter) sweepLocked(now time.Time) {
	for t, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.cfg.RPS >= l.cfg.Burst {
			delete(l.buckets, t)
		}
	}
}
