package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with the timeouts a
// long-lived service needs: slow-loris request bodies, dead clients
// and idle keep-alives all get bounded instead of pinning a goroutine
// forever. Shared by gdsxd and gdsxbench -http so neither ships a bare
// ListenAndServe.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

// ServeGraceful serves srv on ln until stop fires, then drains: it
// calls onDrain (which should stop admitting work and wait for
// in-flight requests — nil to skip) and shuts the listener down
// gracefully, all under drainTimeout. It returns nil on a clean drain,
// else the first error.
func ServeGraceful(srv *http.Server, ln net.Listener, stop <-chan struct{}, drainTimeout time.Duration, onDrain func(context.Context) error) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	var derr error
	if onDrain != nil {
		derr = onDrain(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil && derr == nil {
		derr = err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && derr == nil {
		derr = err
	}
	return derr
}
