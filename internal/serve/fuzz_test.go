package serve

import (
	"testing"
	"time"
)

// FuzzServeRequest holds ParseRequest to its contract: on any byte
// sequence it returns exactly one of (request, error), never panics,
// and every accepted request's options are inside the server's limits
// — the properties the admission path relies on without re-checking.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"source":"int main(){return 0;}"}`))
	f.Add([]byte(`{"source":"int main(){return 0;}","input":"int N = 4;","tenant":"t"}`))
	f.Add([]byte(`{"source":"x","options":{"threads":8,"engine":"tree","sched":"static"}}`))
	f.Add([]byte(`{"source":"x","options":{"guard":true,"fault_rollback_every":2}}`))
	f.Add([]byte(`{"source":"x","options":{"mem_limit":-1}}`))
	f.Add([]byte(`{"source":"x","options":{"timeout_ms":999999999}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"source":123}`))
	f.Add([]byte(``))

	var lim Limits
	lim.fill()
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data, Limits{})
		if (req == nil) == (err == nil) {
			t.Fatalf("want exactly one of request/error, got %v / %v", req, err)
		}
		if err != nil {
			if err.Code != CodeBadReq {
				t.Fatalf("rejection code %q, want bad_request", err.Code)
			}
			return
		}
		o := req.Options
		if req.Source == "" {
			t.Fatal("accepted a request without source")
		}
		if o.Threads < 1 || o.Threads > lim.MaxThreads {
			t.Fatalf("accepted threads %d", o.Threads)
		}
		if o.MemLimit < 1 || o.MemLimit > lim.MaxMemLimit {
			t.Fatalf("accepted mem_limit %d", o.MemLimit)
		}
		if o.MaxOps < 1 || o.MaxOps > lim.MaxOps {
			t.Fatalf("accepted max_ops %d", o.MaxOps)
		}
		if o.TimeoutMs < 1 || time.Duration(o.TimeoutMs)*time.Millisecond > lim.MaxTimeout {
			t.Fatalf("accepted timeout_ms %d", o.TimeoutMs)
		}
		if (o.FaultSuspectEvery > 0 || o.FaultRollbackEvery > 0) && !o.Guard {
			t.Fatal("accepted a fault plan without guard")
		}
	})
}
