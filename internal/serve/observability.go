package serve

// Service observability: per-request tracing with tail retention,
// the registry-backed metrics surface (/metrics, /stats), and the
// structured request log. The design constraint throughout is that an
// untraced request must stay on the runtime's fast path: attaching an
// obs.Observer to a run switches the optimizer off scalar register
// promotion, so tracing is head-sampled (plus forced for requests
// that arrive with an X-Request-ID) and everything else — counters,
// histograms, the per-tenant region hook — uses only region-level
// instruments that leave the access path alone.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"time"

	"gdsx/internal/interp"
	"gdsx/internal/obs"
)

// requestTraceLimit bounds one request's trace buffer. Request traces
// carry region-granularity runtime events plus a handful of service
// spans; 4096 events is generous for any single request while keeping
// a full retention store under a few MiB.
const requestTraceLimit = 4096

// validRequestID accepts the inbound X-Request-ID charset: anything
// else is treated as absent and a fresh ID is generated, so a hostile
// header can't smuggle bytes into logs or label values.
var validRequestID = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,128}$`)

// genID returns a fresh 16-hex-char request ID.
func genID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// reqState carries one request's observability context through the
// handler: identity, the optional request-scoped tracer, and the
// request-level facts the log line and trace index render. A reqState
// from a DisableObs server has an empty ID and nil tracer, and every
// method on it is inert.
type reqState struct {
	id     string
	tenant string
	start  time.Time
	traced bool

	tracer *obs.Tracer
	obs    *obs.Observer

	status   int
	code     Code
	level    int
	cacheHit bool
	queueNS  int64
	execNS   int64
}

// beginRequest assigns the request its ID (honoring a well-formed
// inbound X-Request-ID) and decides whether it is traced: forced when
// the client sent an ID, head-sampled 1-in-TraceSample otherwise.
func (s *Server) beginRequest(r *http.Request) *reqState {
	rq := &reqState{start: time.Now(), status: http.StatusOK}
	if s.reg == nil {
		return rq
	}
	forced := false
	if id := r.Header.Get("X-Request-ID"); validRequestID.MatchString(id) {
		rq.id, forced = id, true
	} else {
		rq.id = genID()
	}
	if forced || (s.cfg.TraceSample > 0 && s.seq.Add(1)%int64(s.cfg.TraceSample) == 0) {
		rq.traced = true
		rq.tracer = obs.NewTracer(requestTraceLimit)
		rq.tracer.Tag = rq.id
		rq.obs = &obs.Observer{Trace: rq.tracer, Metrics: s.reg}
	}
	return rq
}

// span opens a service-level span on the request trace and returns
// the closure that completes it (with an optional label, e.g. the
// cache-lookup verdict). Inert when the request is untraced.
func (rq *reqState) span(name string) func(label string) {
	if rq == nil || rq.tracer == nil {
		return func(string) {}
	}
	ts := rq.tracer.Now()
	return func(label string) {
		rq.tracer.Emit(obs.Event{
			Name: name, Ph: 'X', TS: ts, Dur: rq.tracer.Now() - ts,
			Tid: obs.ServiceTid, Iter: -1, Label: label,
		})
	}
}

// requestLogLine is the JSON shape of one structured request-log line.
type requestLogLine struct {
	Time      string  `json:"time"`
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant,omitempty"`
	Status    int     `json:"status"`
	Code      string  `json:"code,omitempty"`
	ShedLevel int     `json:"shed_level"`
	CacheHit  bool    `json:"cache_hit"`
	QueueMs   float64 `json:"queue_ms"`
	ExecMs    float64 `json:"exec_ms"`
	TotalMs   float64 `json:"total_ms"`
	Traced    bool    `json:"traced"`
}

// finishRequest settles a request's observability: the latency
// histogram and per-tenant counters, the log line, and the trace
// store offer. Admission refusals (rate-limit, queue-full, draining)
// are errors to the client but not retained error traces — under
// overload they arrive by the thousand and would wash every
// interesting failure out of the ring.
func (s *Server) finishRequest(rq *reqState) {
	if s.reg == nil {
		return
	}
	total := time.Since(rq.start)
	s.reg.Histogram("serve.latency_us").Observe(total.Microseconds())
	tenant := rq.tenant
	s.reg.Counter(obs.Labeled("serve.tenant.requests", "tenant", tenant)).Inc()
	if rq.status == http.StatusOK {
		s.reg.Counter(obs.Labeled("serve.tenant.ok", "tenant", tenant)).Inc()
	} else {
		s.reg.Counter(obs.Labeled("serve.tenant.errors", "tenant", tenant)).Inc()
	}

	if s.logw != nil {
		line := requestLogLine{
			Time:      rq.start.UTC().Format(time.RFC3339Nano),
			ID:        rq.id,
			Tenant:    rq.tenant,
			Status:    rq.status,
			Code:      string(rq.code),
			ShedLevel: rq.level,
			CacheHit:  rq.cacheHit,
			QueueMs:   float64(rq.queueNS) / 1e6,
			ExecMs:    float64(rq.execNS) / 1e6,
			TotalMs:   float64(total) / 1e6,
			Traced:    rq.traced,
		}
		buf, err := json.Marshal(line)
		if err == nil {
			s.logMu.Lock()
			s.logw.Write(append(buf, '\n'))
			s.logMu.Unlock()
		}
	}

	if rq.tracer != nil {
		isErr := rq.code != "" &&
			rq.code != CodeRateLimit && rq.code != CodeQueueFull && rq.code != CodeDraining
		s.traces.Offer(&obs.RetainedTrace{
			ID: rq.id, Tenant: rq.tenant, Start: rq.start, Dur: total,
			Status: rq.status, Code: string(rq.code), Error: isErr, Tracer: rq.tracer,
		})
	}
}

// tenantHooks returns the per-run hook layer counting parallel regions
// per tenant. It carries only region-level hooks, so chaining it under
// the observability adapter (Machine.New composes the two through
// ChainHooks) keeps scalar promotion and the fast access path.
func (s *Server) tenantHooks(tenant string) *interp.Hooks {
	if s.reg == nil {
		return nil
	}
	regions := s.reg.Counter(obs.Labeled("serve.tenant.regions", "tenant", tenant))
	return &interp.Hooks{
		ParallelStart: func(loopID, nthreads int) { regions.Inc() },
	}
}

// handleMetrics renders the registry in Prometheus text exposition
// format, refreshing the point-in-time gauges at scrape time and
// appending the families whose source of truth lives outside the
// registry (the cache's own hit/miss counters, the ladder's float
// pressure, the draining flag).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	s.reg.Gauge("serve.shed_level").Set(int64(s.ladder.Level()))
	s.reg.Gauge("serve.queued").Set(s.queued.Load())
	s.reg.Gauge("serve.cache_entries").Set(int64(s.cache.Len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w, "gdsx")
	hits, misses := s.cache.Stats()
	fmt.Fprintf(w, "# TYPE gdsx_serve_cache_hits_total counter\ngdsx_serve_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE gdsx_serve_cache_misses_total counter\ngdsx_serve_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE gdsx_serve_pressure gauge\ngdsx_serve_pressure %g\n", s.ladder.Pressure())
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# TYPE gdsx_serve_draining gauge\ngdsx_serve_draining %d\n", draining)
}

// handleTraceIndex serves the retained-trace index as JSON: the N
// slowest successful requests plus the most recent errors.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	list := s.traces.List()
	if list == nil {
		list = []obs.TraceSummary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(list)
}

// handleTraceGet serves one retained trace as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" {
		s.handleTraceIndex(w, r)
		return
	}
	rt := s.traces.Get(id)
	if rt == nil {
		http.Error(w, "no retained trace with that id", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rt.Tracer.WriteChrome(w)
}

// runLevelCounter names the per-shed-level run counter.
func runLevelCounter(level int) string {
	return obs.Labeled("serve.runs", "level", strconv.Itoa(level))
}
