package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// parSrc is a compute-heavy DOALL kernel: enough work per request to
// make concurrency tests meaningful, small enough to finish fast.
const parSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		int j;
		for (j = 0; j < 400; j++) { acc = acc + (long)i * j; }
		out[i] = acc;
	}
	long s = 0;
	for (i = 0; i < N; i++) { s = s + out[i]; }
	print_long(s);
	print_char('\n');
	return 0;
}
`

// slowSrc runs long enough that every deadline in these tests fires
// first; cancellation is the only way it ends quickly.
const slowSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		long j;
		for (j = 0; j < 50000000; j++) { acc = acc + j; }
		out[i] = acc;
	}
	print_long(out[0]);
	print_char('\n');
	return 0;
}
`

// seqSrc has no parallel loops: the service must run it native.
const seqSrc = `
int main() {
	print_long(42);
	print_char('\n');
	return 0;
}
`

// hogSrc leaks allocations, so a small quota kills it with OOM.
const hogSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long *scratch = (long*)malloc(65536);
		scratch[0] = (long)i;
		out[i] = scratch[0];
	}
	print_long(out[5]);
	print_char('\n');
	return 0;
}
`

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Rate.RPS == 0 {
		cfg.Rate.RPS = -1 // tests opt in to rate limiting explicitly
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeOK(t *testing.T, resp *http.Response, body []byte) Response {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decoding response %s: %v", body, err)
	}
	return r
}

func decodeErr(t *testing.T, body []byte) Error {
	t.Helper()
	var e Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %s: %v", body, err)
	}
	return e
}

func TestRunEndpointBasics(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, body := postRun(t, ts.URL, Request{Source: parSrc})
	r := decodeOK(t, resp, body)
	if r.Output == "" || r.Ops == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	want := r.Output

	resp, body = postRun(t, ts.URL, Request{Source: parSrc})
	r = decodeOK(t, resp, body)
	if !r.CacheHit {
		t.Fatal("second identical request must hit the transform cache")
	}
	if r.Output != want {
		t.Fatalf("cached run output %q, first run %q", r.Output, want)
	}

	// A sequential program runs native, same pipeline.
	resp, body = postRun(t, ts.URL, Request{Source: seqSrc})
	if r := decodeOK(t, resp, body); r.Output != "42\n" {
		t.Fatalf("sequential output %q, want 42", r.Output)
	}
}

func TestEnginesAndSchedulersAgree(t *testing.T) {
	_, ts := testServer(t, Config{})
	var want string
	for _, engine := range []string{"compiled", "compiled-noopt", "tree"} {
		for _, sched := range []string{"stealing", "static", "dynamic"} {
			resp, body := postRun(t, ts.URL, Request{
				Source:  parSrc,
				Options: Options{Engine: engine, Sched: sched},
			})
			r := decodeOK(t, resp, body)
			if want == "" {
				want = r.Output
			} else if r.Output != want {
				t.Fatalf("%s/%s output %q, want %q", engine, sched, r.Output, want)
			}
		}
	}
}

func TestInputPrepended(t *testing.T) {
	_, ts := testServer(t, Config{})
	kernel := `
int main() {
	print_long((long)N * 2);
	print_char('\n');
	return 0;
}
`
	resp, body := postRun(t, ts.URL, Request{Source: kernel, Input: "int N = 21;"})
	if r := decodeOK(t, resp, body); r.Output != "42\n" {
		t.Fatalf("output %q, want 42", r.Output)
	}
	// A different input is a different cache key.
	resp, body = postRun(t, ts.URL, Request{Source: kernel, Input: "int N = 50;"})
	r := decodeOK(t, resp, body)
	if r.Output != "100\n" || r.CacheHit {
		t.Fatalf("second input: output %q, hit %v", r.Output, r.CacheHit)
	}
}

func TestStructuredErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   Code
	}{
		{"malformed JSON", `{"source": `, 400, CodeBadReq},
		{"no source", `{}`, 400, CodeBadReq},
		{"bad engine", `{"source":"int main(){return 0;}","options":{"engine":"jit"}}`, 400, CodeBadReq},
		{"bad threads", `{"source":"int main(){return 0;}","options":{"threads":9999}}`, 400, CodeBadReq},
		{"parse error", `{"source":"int main( {"}`, 400, CodeCompile},
		{"sema error", `{"source":"int main() { return x; }"}`, 400, CodeCompile},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, buf.Bytes())
			}
			if e := decodeErr(t, buf.Bytes()); e.Code != tc.code {
				t.Fatalf("code %q, want %q", e.Code, tc.code)
			}
		})
	}
}

func TestRuntimeFaultIsStructured(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postRun(t, ts.URL, Request{
		Source: `int main() { long *p = (long*)0; return (int)p[0]; }`,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != CodeRuntime {
		t.Fatalf("code %q, want runtime_error", e.Code)
	}
}

func TestMemQuotaOOM(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postRun(t, ts.URL, Request{
		Source:  hogSrc,
		Options: Options{MemLimit: 256 << 10},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != CodeOOM {
		t.Fatalf("code %q, want oom", e.Code)
	}
	// The arena goes back to the pool reset: the next request must be
	// unaffected.
	resp, body = postRun(t, ts.URL, Request{Source: seqSrc})
	decodeOK(t, resp, body)
}

func TestTimeoutMidRun(t *testing.T) {
	_, ts := testServer(t, Config{})
	start := time.Now()
	resp, body := postRun(t, ts.URL, Request{
		Source:  slowSrc,
		Options: Options{TimeoutMs: 300},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != CodeTimeout {
		t.Fatalf("code %q, want timeout", e.Code)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("timeout took %v to fire", el)
	}
}

func TestClientCancelMidRun(t *testing.T) {
	s, _ := testServer(t, Config{})
	h := s.Handler()
	body, _ := json.Marshal(Request{Source: slowSrc, Options: Options{TimeoutMs: 20000}})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/run", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()
	time.Sleep(200 * time.Millisecond) // let it get into the region
	cancel()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}
	if rec.Code != 499 {
		t.Fatalf("status %d, want 499 (body %s)", rec.Code, rec.Body.Bytes())
	}
	if e := decodeErr(t, rec.Body.Bytes()); e.Code != CodeCancelled {
		t.Fatalf("code %q, want cancelled", e.Code)
	}
}

func TestGuardedRunWithFaultPlan(t *testing.T) {
	_, ts := testServer(t, Config{})
	probe, body := postRun(t, ts.URL, Request{Source: parSrc})
	want := decodeOK(t, probe, body).Output

	resp, body := postRun(t, ts.URL, Request{
		Source:  parSrc,
		Options: Options{Guard: true, FaultRollbackEvery: 1},
	})
	r := decodeOK(t, resp, body)
	if r.Output != want {
		t.Fatalf("guarded chaos output %q, want %q", r.Output, want)
	}
	if r.Recovered == 0 {
		t.Fatal("fault plan forced rollbacks but Recovered = 0")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	const clients = 10
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		ok, full  int
		badStatus []int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postRun(t, ts.URL, Request{Source: parSrc})
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				full++
				if e := decodeErr(t, body); e.Code != CodeQueueFull {
					t.Errorf("429 code %q, want queue_full", e.Code)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				badStatus = append(badStatus, resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if len(badStatus) > 0 {
		t.Fatalf("unexpected statuses %v", badStatus)
	}
	if ok == 0 || full == 0 {
		t.Fatalf("burst of %d on capacity 2: ok=%d full=%d — backpressure never engaged", clients, ok, full)
	}
}

func TestPerTenantRateLimit(t *testing.T) {
	_, ts := testServer(t, Config{Rate: RateLimit{RPS: 0.5, Burst: 1}})
	post := func(tenant string) (*http.Response, []byte) {
		body, _ := json.Marshal(Request{Source: seqSrc, Tenant: tenant})
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	if resp, body := post("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp.StatusCode, body)
	}
	resp, body := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request in burst window: %d %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != CodeRateLimit {
		t.Fatalf("code %q, want rate_limited", e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited response without Retry-After")
	}
	// A different tenant has its own bucket.
	if resp, body := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant blocked: %d %s", resp.StatusCode, body)
	}
}

func TestDrainLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Fatalf("healthz %d", got)
	}
	if got := get("/readyz"); got != 200 {
		t.Fatalf("readyz %d", got)
	}

	// One slow request in flight, then drain: Drain must wait for it.
	started := make(chan struct{})
	finished := make(chan int, 1)
	go func() {
		close(started)
		resp, _ := postRun(t, ts.URL, Request{Source: slowSrc, Options: Options{TimeoutMs: 500}})
		finished <- resp.StatusCode
	}()
	<-started
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain's contract is server-side: no handler still in flight. The
	// client goroutine delivers its status a moment later, so assert the
	// counter directly and then wait for the response.
	if n := s.inflight.Load(); n != 0 {
		t.Fatalf("Drain returned with %d requests in flight", n)
	}
	if st := <-finished; st != http.StatusGatewayTimeout {
		t.Fatalf("in-flight request finished with %d, want its own 504", st)
	}

	if got := get("/readyz"); got != 503 {
		t.Fatalf("readyz after drain %d, want 503", got)
	}
	if got := get("/healthz"); got != 200 {
		t.Fatalf("healthz after drain %d, want 200 (process is alive)", got)
	}
	resp, body := postRun(t, ts.URL, Request{Source: seqSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain run: %d %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != CodeDraining {
		t.Fatalf("code %q, want draining", e.Code)
	}
}

func TestShedLadderEngagesUnderPressure(t *testing.T) {
	l := NewLadder()
	for i := 0; i < 50; i++ {
		l.Observe(1.0)
	}
	if l.Level() != ShedSequential {
		t.Fatalf("sustained full occupancy reached level %d, want %d", l.Level(), ShedSequential)
	}
	// Pressure releases: the ladder must step back down, through every
	// level, with hysteresis (a single low sample is not enough).
	l2 := NewLadder()
	for i := 0; i < 50; i++ {
		l2.Observe(0.3)
	}
	if l2.Level() != ShedNoSpecialize {
		t.Fatalf("30%% occupancy at level %d, want %d", l2.Level(), ShedNoSpecialize)
	}
	l2.Observe(0.0)
	if l2.Level() != ShedNoSpecialize {
		t.Fatal("one low sample released the level: hysteresis missing")
	}
	for i := 0; i < 50; i++ {
		l2.Observe(0.0)
	}
	if l2.Level() != ShedNone {
		t.Fatalf("sustained idle left level %d", l2.Level())
	}
}

func TestShedSequentialStillCorrect(t *testing.T) {
	// Force the ladder to max shed and verify a request still produces
	// the right answer, just sequentially.
	s, ts := testServer(t, Config{})
	for i := 0; i < 50; i++ {
		s.ladder.Observe(1.0)
	}
	resp, body := postRun(t, ts.URL, Request{Source: parSrc})
	r := decodeOK(t, resp, body)
	if r.ShedLevel != ShedSequential {
		t.Fatalf("shed level %d, want %d", r.ShedLevel, ShedSequential)
	}
	resp2, body2 := postRun(t, ts.URL, Request{Source: parSrc, Options: Options{Engine: "tree"}})
	if r2 := decodeOK(t, resp2, body2); r2.Output != r.Output {
		t.Fatalf("shed output %q != %q", r.Output, r2.Output)
	}
}

func TestLimiterClock(t *testing.T) {
	l := NewLimiter(RateLimit{RPS: 10, Burst: 2})
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.Allow("t")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms]", wait)
	}
	now = now.Add(wait)
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("request after the hinted wait still denied")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	var builds atomic32
	release := make(chan struct{})
	var wg sync.WaitGroup
	key := Key("src", false)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Get(key, func() *Entry {
				builds.add(1)
				<-release
				return &Entry{}
			})
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := builds.load(); n != 1 {
		t.Fatalf("%d builds for one key under concurrency, want 1", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 15 {
		t.Fatalf("hits=%d misses=%d, want 15/1", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		c.Get(Key(fmt.Sprintf("src%d", i), false), func() *Entry { return &Entry{} })
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	// src0 was evicted; src1 and src2 remain (hit-check the survivors
	// first — a miss inserts and evicts).
	if _, hit := c.Get(Key("src1", false), func() *Entry { return &Entry{} }); !hit {
		t.Fatal("recent entry src1 was evicted")
	}
	if _, hit := c.Get(Key("src2", false), func() *Entry { return &Entry{} }); !hit {
		t.Fatal("recent entry src2 was evicted")
	}
	if _, hit := c.Get(Key("src0", false), func() *Entry { return &Entry{} }); hit {
		t.Fatal("oldest entry was not evicted")
	}
}

// atomic32 avoids importing sync/atomic just for a test counter helper
// name clash with the package's own atomics.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func TestNoGoroutineLeakAcrossMixedTraffic(t *testing.T) {
	s, ts := testServer(t, Config{MaxConcurrent: 4})
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	mixed := []Request{
		{Source: parSrc},
		{Source: seqSrc},
		{Source: hogSrc, Options: Options{MemLimit: 256 << 10}},
		{Source: slowSrc, Options: Options{TimeoutMs: 200}},
		{Source: parSrc, Options: Options{Guard: true}},
	}
	for round := 0; round < 3; round++ {
		for _, req := range mixed {
			wg.Add(1)
			go func(r Request) {
				defer wg.Done()
				resp, _ := postRun(t, ts.URL, r)
				resp.Body.Close()
			}(req)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Idle keep-alive connections hold goroutines on both sides;
		// they are connection reuse, not a leak — drop them before
		// comparing.
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d: leak", before, after)
	}
	if st := s.Snapshot(); st.Queued != 0 {
		t.Fatalf("queued %d after traffic drained", st.Queued)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	postRun(t, ts.URL, Request{Source: seqSrc})
	postRun(t, ts.URL, Request{Source: seqSrc})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 2 || st.OK < 2 {
		t.Fatalf("stats %+v missed the traffic", st)
	}
	if st.CacheHits < 1 {
		t.Fatalf("stats cache hits %d, want >= 1", st.CacheHits)
	}
}
