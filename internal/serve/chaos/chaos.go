// Package chaos is the fault-injection layer for gdsxd's robustness
// proof. It has two halves: a server-side middleware that injects
// handler panics and response stalls (mounted INSIDE the server's
// recovery layer, so every injected panic must come back as a
// structured 500), and client-side request generators — slow-loris
// bodies, OOM-quota requests, mid-run context cancellations,
// FaultPlan-armed guard rollbacks — used by the serve-load harness and
// the chaos tests. Nothing here runs in production paths; gdsxd mounts
// the middleware only behind its -chaos flag.
package chaos

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults the middleware injects. Every interval
// is "one in N requests" (0 disables that fault).
type Config struct {
	// PanicEvery makes one in N requests panic inside the handler
	// chain.
	PanicEvery int
	// DelayEvery makes one in N requests stall for Delay before being
	// handled (simulating a slow dependency).
	DelayEvery int
	Delay      time.Duration
	// Seed makes the injection schedule reproducible.
	Seed int64
}

// Middleware returns the fault-injecting middleware. Mount it inside
// the server's recovery layer: srv.Handler(chaos.Middleware(cfg)).
func Middleware(cfg Config) func(http.Handler) http.Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.Seed))
	roll := func(n int) bool {
		if n <= 0 {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return rng.Intn(n) == 0
	}
	var injected atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if roll(cfg.PanicEvery) {
				injected.Add(1)
				panic("chaos: injected handler panic")
			}
			if roll(cfg.DelayEvery) {
				d := cfg.Delay
				if d <= 0 {
					d = 50 * time.Millisecond
				}
				select {
				case <-time.After(d):
				case <-r.Context().Done():
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// SlowBody returns an io.Reader that dribbles data out in chunks with
// a pause between each — a cooperative slow-loris body for exercising
// the HTTP server's read timeouts without holding a real socket open.
func SlowBody(data []byte, chunk int, pause time.Duration) io.Reader {
	if chunk <= 0 {
		chunk = 1
	}
	return &slowReader{data: data, chunk: chunk, pause: pause}
}

type slowReader struct {
	data  []byte
	chunk int
	pause time.Duration
	off   int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	if s.off > 0 && s.pause > 0 {
		time.Sleep(s.pause)
	}
	n := s.chunk
	if n > len(p) {
		n = len(p)
	}
	if rem := len(s.data) - s.off; n > rem {
		n = rem
	}
	copy(p, s.data[s.off:s.off+n])
	s.off += n
	return n, nil
}

// CancelAfter returns a context that cancels itself after d — the
// client that disconnects mid-region.
func CancelAfter(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	timer := time.AfterFunc(d, cancel)
	return ctx, func() { timer.Stop(); cancel() }
}
