package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"gdsx/internal/serve"
)

const chaosParSrc = `
int N = 48;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		int j;
		for (j = 0; j < 400; j++) { acc = acc + (long)i * j; }
		out[i] = acc;
	}
	long s = 0;
	for (i = 0; i < N; i++) { s = s + out[i]; }
	print_long(s);
	print_char('\n');
	return 0;
}
`

const chaosSlowSrc = `
int N = 48;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		long j;
		for (j = 0; j < 50000000; j++) { acc = acc + j; }
		out[i] = acc;
	}
	print_long(out[0]);
	print_char('\n');
	return 0;
}
`

const chaosHogSrc = `
int N = 48;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long *scratch = (long*)malloc(65536);
		scratch[0] = (long)i;
		out[i] = scratch[0];
	}
	print_long(out[5]);
	print_char('\n');
	return 0;
}
`

// knownCodes is the full structured-error vocabulary: every failed
// chaos request must map onto one of these.
var knownCodes = map[serve.Code]bool{
	serve.CodeBadReq: true, serve.CodeCompile: true, serve.CodeTransform: true,
	serve.CodeRuntime: true, serve.CodeOOM: true, serve.CodeCancelled: true,
	serve.CodeTimeout: true, serve.CodeRateLimit: true, serve.CodeQueueFull: true,
	serve.CodeDraining: true, serve.CodePanic: true,
}

// TestChaosRun drives the full fault menu — injected handler panics,
// slow-loris bodies, OOM-quota requests, contexts cancelled mid-region,
// FaultPlan-forced rollbacks inside guarded runs, malformed JSON —
// through a live server and asserts the robustness contract: the
// process survives everything, every failure is a structured error
// from the known vocabulary, and no goroutines leak once traffic
// drains.
func TestChaosRun(t *testing.T) {
	srv := serve.New(serve.Config{
		MaxConcurrent: 4,
		QueueDepth:    8,
		Rate:          serve.RateLimit{RPS: -1},
	})
	ts := httptest.NewServer(srv.Handler(Middleware(Config{
		PanicEvery: 4,
		DelayEvery: 7,
		Delay:      20 * time.Millisecond,
		Seed:       42,
	})))
	defer ts.Close()

	before := runtime.NumGoroutine()
	body := func(src string, opts serve.Options) []byte {
		b, _ := json.Marshal(serve.Request{Source: src, Options: opts})
		return b
	}

	type attack struct {
		name string
		do   func(client *http.Client) (*http.Response, error)
	}
	attacks := []attack{
		{"normal", func(c *http.Client) (*http.Response, error) {
			return c.Post(ts.URL+"/run", "application/json", bytes.NewReader(body(chaosParSrc, serve.Options{})))
		}},
		{"guarded fault plan", func(c *http.Client) (*http.Response, error) {
			return c.Post(ts.URL+"/run", "application/json",
				bytes.NewReader(body(chaosParSrc, serve.Options{Guard: true, FaultRollbackEvery: 2})))
		}},
		{"oom quota", func(c *http.Client) (*http.Response, error) {
			return c.Post(ts.URL+"/run", "application/json",
				bytes.NewReader(body(chaosHogSrc, serve.Options{MemLimit: 256 << 10})))
		}},
		{"deadline mid-region", func(c *http.Client) (*http.Response, error) {
			return c.Post(ts.URL+"/run", "application/json",
				bytes.NewReader(body(chaosSlowSrc, serve.Options{TimeoutMs: 150})))
		}},
		{"cancel mid-region", func(c *http.Client) (*http.Response, error) {
			ctx, cancel := CancelAfter(context.Background(), 100*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/run",
				bytes.NewReader(body(chaosSlowSrc, serve.Options{TimeoutMs: 10000})))
			req.Header.Set("Content-Type", "application/json")
			return c.Do(req)
		}},
		{"slow-loris body", func(c *http.Client) (*http.Response, error) {
			req, _ := http.NewRequest("POST", ts.URL+"/run",
				SlowBody(body(chaosParSrc, serve.Options{}), 40, 2*time.Millisecond))
			req.Header.Set("Content-Type", "application/json")
			return c.Do(req)
		}},
		{"malformed JSON", func(c *http.Client) (*http.Response, error) {
			return c.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(`{"source": {{{`)))
		}},
	}

	const rounds = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
		badBody  []string
	)
	for round := 0; round < rounds; round++ {
		for _, a := range attacks {
			wg.Add(1)
			go func(a attack) {
				defer wg.Done()
				client := &http.Client{Timeout: 60 * time.Second}
				resp, err := a.do(client)
				if err != nil {
					// Client-side cancellation kills the transport call;
					// that is the attack working, not a server failure.
					return
				}
				defer resp.Body.Close()
				raw, _ := io.ReadAll(resp.Body)
				mu.Lock()
				defer mu.Unlock()
				statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					var r serve.Response
					if json.Unmarshal(raw, &r) != nil || r.Output == "" {
						badBody = append(badBody, fmt.Sprintf("%s: 200 with body %q", a.name, raw))
					}
					return
				}
				var e serve.Error
				if json.Unmarshal(raw, &e) != nil || !knownCodes[e.Code] {
					badBody = append(badBody, fmt.Sprintf("%s: status %d with unstructured body %q", a.name, resp.StatusCode, raw))
				}
			}(a)
		}
	}
	wg.Wait()

	if len(badBody) > 0 {
		t.Fatalf("unstructured failures:\n%v", badBody)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no request survived the chaos run: %v", statuses)
	}
	if statuses[http.StatusInternalServerError] == 0 {
		t.Fatalf("panic injection (1 in 4) never surfaced as a structured 500: %v", statuses)
	}

	// The process must still serve cleanly after the storm.
	resp, err := http.Post(ts.URL+"/run", "application/json",
		bytes.NewReader(body(chaosParSrc, serve.Options{})))
	if err != nil {
		t.Fatalf("post-chaos request: %v", err)
	}
	resp.Body.Close()

	st := srv.Snapshot()
	if st.Panics == 0 {
		t.Fatal("stats recorded no panics despite injection")
	}

	// Zero goroutine leaks once traffic drains.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d after chaos run", before, after)
	}
}

// TestSlowBodyDribbles pins the slow-loris generator's contract: all
// bytes arrive, in order, across many reads.
func TestSlowBodyDribbles(t *testing.T) {
	data := []byte("0123456789abcdef")
	r := SlowBody(data, 3, time.Millisecond)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}
