package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdsx"
	"gdsx/internal/interp"
	"gdsx/internal/obs"
)

// Config configures a Server. The zero value is filled with production
// defaults by New.
type Config struct {
	// Limits bound what a single request may ask for.
	Limits Limits
	// MaxConcurrent is the number of requests executing at once
	// (default: NumCPU, capped at 8 — each run spawns its own workers).
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait for an
	// execution slot before arrivals get 429 queue_full (default 32).
	QueueDepth int
	// CacheEntries bounds the transform cache (default 128).
	CacheEntries int
	// PoolArenas bounds the memory pool (default MaxConcurrent).
	PoolArenas int
	// ArenaBytes is the pooled arena capacity; it must cover
	// Limits.MaxMemLimit (default 64 MiB).
	ArenaBytes int64
	// Rate is the per-tenant token bucket (default 50 req/s, burst
	// 100; RPS < 0 disables rate limiting).
	Rate RateLimit
	// TraceSample head-samples request tracing: 1 in TraceSample
	// requests without an inbound X-Request-ID gets a request-scoped
	// trace (default 8; negative disables sampling so only requests
	// that arrive with an X-Request-ID are traced). Traced requests
	// run with the runtime observer attached, which costs them scalar
	// register promotion — sampling is what keeps the leave-on
	// overhead inside the obs budget.
	TraceSample int
	// TraceRetain bounds each retention pool of /debug/traces: the N
	// slowest successful requests plus the N most recent errors
	// (default obs.DefaultTraceRetain).
	TraceRetain int
	// RequestLog, when set, receives one JSON line per finished
	// request (id, tenant, status, error code, shed level, cache hit,
	// queue/exec/total durations).
	RequestLog io.Writer
	// DisableObs turns the whole observability layer off — no
	// registry, no request IDs, no tracing, no logging — leaving
	// /stats counters zeroed and /metrics and /debug/traces returning
	// 404. This is the baseline configuration the serve tier of
	// `gdsxbench -obs` measures leave-on overhead against.
	DisableObs bool
}

func (c *Config) fill() {
	c.Limits.fill()
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
		if c.MaxConcurrent > 8 {
			c.MaxConcurrent = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.PoolArenas <= 0 {
		c.PoolArenas = c.MaxConcurrent
	}
	if c.ArenaBytes <= 0 {
		c.ArenaBytes = 64 << 20
	}
	if c.ArenaBytes < c.Limits.MaxMemLimit {
		c.ArenaBytes = c.Limits.MaxMemLimit
	}
	if c.Rate.RPS == 0 {
		c.Rate = RateLimit{RPS: 50, Burst: 100}
	}
	if c.TraceSample == 0 {
		c.TraceSample = 8
	}
}

// Server is the gdsxd request processor: admission control, the
// degradation ladder, the transform cache, pooled memory, and the
// recovered execution path. It is an http.Handler factory — mount
// Handler() on any listener.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *MemPool
	limiter *Limiter
	ladder  *Ladder

	sem      chan struct{} // execution slots
	slots    int           // MaxConcurrent + QueueDepth: total admission capacity
	queued   atomic.Int64  // admitted (waiting + executing)
	inflight atomic.Int64  // handlers inside the drain barrier
	draining atomic.Bool

	// The observability surface: all service counters, gauges and
	// histograms live in reg (nil when Config.DisableObs — every
	// instrument call then no-ops through obs's nil-receiver
	// discipline); traces is the tail-retention store behind
	// /debug/traces; logw the structured request log; seq the
	// head-sampling sequence.
	reg    *obs.Registry
	traces *obs.TraceStore
	logMu  sync.Mutex
	logw   io.Writer
	seq    atomic.Int64
}

// New returns a configured Server.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		pool:    NewMemPool(cfg.PoolArenas, cfg.ArenaBytes),
		limiter: NewLimiter(cfg.Rate),
		ladder:  NewLadder(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		slots:   cfg.MaxConcurrent + cfg.QueueDepth,
	}
	if !cfg.DisableObs {
		s.reg = obs.NewRegistry()
		s.traces = obs.NewTraceStore(cfg.TraceRetain)
		s.logw = cfg.RequestLog
		// Pre-intern the always-rendered instruments so /metrics and
		// /stats expose stable families from the first scrape, not only
		// after the first event of each kind.
		s.reg.Counter("serve.requests")
		s.reg.Counter("serve.ok")
		s.reg.Counter("serve.panics")
		for lvl := 0; lvl <= shedMax; lvl++ {
			s.reg.Counter(runLevelCounter(lvl))
		}
		s.reg.Gauge("serve.shed_level")
		s.reg.Gauge("serve.queued")
		s.reg.Gauge("serve.cache_entries")
		s.reg.Histogram("serve.latency_us")
		s.reg.Histogram("serve.queue_depth")
		s.reg.Histogram("serve.exec_us")
		s.reg.Histogram("serve.build_us")
	}
	return s
}

// Handler returns the service's HTTP handler. Optional middleware (the
// chaos injector) is applied INSIDE the panic-recovery layer, so an
// injected panic becomes a structured 500 exactly like a real one.
func (s *Server) Handler(inner ...func(http.Handler) http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraceIndex)
	mux.HandleFunc("/debug/traces/", s.handleTraceGet)
	var h http.Handler = mux
	for i := len(inner) - 1; i >= 0; i-- {
		h = inner[i](h)
	}
	return s.recoverMW(h)
}

// recoverMW converts any handler panic into a structured 500. This is
// the process-survival guarantee: no request, however hostile, kills
// gdsxd.
func (s *Server) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.reg.Counter("serve.panics").Inc()
				s.writeError(w, nil, errf(CodePanic, "request handler panicked: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Drain stops admitting work and waits for in-flight requests to
// finish (or ctx to expire). After Drain, /readyz reports 503 and /run
// refuses with draining; /healthz stays 200 so orchestrators see a
// live process that is merely done taking traffic.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain expired with %d requests in flight: %w", s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// Stats is the /stats response body.
type Stats struct {
	Requests    int64            `json:"requests"`
	OK          int64            `json:"ok"`
	Errors      map[string]int64 `json:"errors,omitempty"`
	Panics      int64            `json:"panics"`
	ShedLevel   int              `json:"shed_level"`
	Pressure    float64          `json:"pressure"`
	RunsByLevel []int64          `json:"runs_by_level"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	CacheLen    int              `json:"cache_entries"`
	Queued      int64            `json:"queued"`
	Draining    bool             `json:"draining"`
}

// Snapshot returns the current service statistics, derived from one
// point-in-time registry snapshot (the same source /metrics renders)
// plus the live admission/cache/ladder state. On a DisableObs server
// the registry-backed counters read zero; the live fields still work.
func (s *Server) Snapshot() Stats {
	snap := s.reg.Snapshot()
	hits, misses := s.cache.Stats()
	st := Stats{
		Requests:    snap.Counters["serve.requests"],
		OK:          snap.Counters["serve.ok"],
		Panics:      snap.Counters["serve.panics"],
		ShedLevel:   s.ladder.Level(),
		Pressure:    s.ladder.Pressure(),
		RunsByLevel: make([]int64, shedMax+1),
		CacheHits:   hits,
		CacheMisses: misses,
		CacheLen:    s.cache.Len(),
		Queued:      s.queued.Load(),
		Draining:    s.draining.Load(),
	}
	for lvl := 0; lvl <= shedMax; lvl++ {
		st.RunsByLevel[lvl] = snap.Counters[runLevelCounter(lvl)]
	}
	for name, n := range snap.Counters {
		base, labels := obs.ParseName(name)
		if base != "serve.errors" || n == 0 || len(labels) != 1 || labels[0][0] != "code" {
			continue
		}
		if st.Errors == nil {
			st.Errors = map[string]int64{}
		}
		st.Errors[labels[0][1]] = n
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rq := s.beginRequest(r)
	defer s.finishRequest(rq)
	s.reg.Counter("serve.requests").Inc()
	if rq.id != "" {
		w.Header().Set("X-Request-ID", rq.id)
	}
	if r.Method != http.MethodPost {
		s.writeError(w, rq, errf(CodeBadReq, "POST only"))
		return
	}
	// The drain barrier must be entered before the draining check: Drain
	// sets the flag first and then waits for inflight to hit zero, so a
	// handler observed at flag-set time is either already counted (Drain
	// waits for it) or will see the flag and refuse below.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, rq, errf(CodeDraining, "server is shutting down"))
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes+1))
	if err != nil {
		s.writeError(w, rq, errf(CodeBadReq, "reading body: %v", err))
		return
	}
	req, perr := ParseRequest(body, s.cfg.Limits)
	if perr != nil {
		s.writeError(w, rq, perr)
		return
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		tenant = h
	}
	rq.tenant = tenant
	if ok, wait := s.limiter.Allow(tenant); !ok {
		w.Header().Set("Retry-After", retryAfter(wait))
		s.writeError(w, rq, errf(CodeRateLimit, "tenant %q over rate limit", tenant))
		return
	}

	// Admission: claim a queue slot (backpressure) and fold the observed
	// occupancy into the shed ladder — the arriving request runs at
	// whatever quality the sustained pressure dictates.
	n := s.queued.Add(1)
	defer s.queued.Add(-1)
	s.reg.Histogram("serve.queue_depth").Observe(n)
	if int(n) > s.slots {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, rq, errf(CodeQueueFull, "admission queue full (%d)", s.slots))
		return
	}
	level := s.ladder.Observe(float64(n) / float64(s.slots))
	rq.level = level
	s.reg.Gauge("serve.shed_level").Set(int64(level))
	qwait := time.Now()
	endQueue := rq.span("queue-wait")
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		endQueue("cancelled")
		rq.queueNS = int64(time.Since(qwait))
		s.writeError(w, rq, errf(CodeCancelled, "client went away while queued"))
		return
	}
	defer func() { <-s.sem }()
	endQueue("")
	rq.queueNS = int64(time.Since(qwait))

	resp, rerr := s.execute(r.Context(), req, level, rq)
	if rerr != nil {
		s.writeError(w, rq, rerr)
		return
	}
	rq.cacheHit = resp.CacheHit
	s.reg.Counter("serve.ok").Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// buildEntry runs the parse→sema(→profile→expand→sema) pipeline for a
// cache miss. Pipeline rejections are cached as negative entries. The
// transform's dependence-profiling runs execute the program, so they
// carry the building request's context and the server's op ceiling —
// otherwise a slow source would pin the build forever, past every
// request deadline. Failures that reflect the builder's circumstances
// rather than the source (deadline, quota) are marked transient.
func buildEntry(ctx context.Context, file, src string, guarded bool, lim Limits) *Entry {
	native, err := gdsx.Compile(file, src)
	if err != nil {
		return &Entry{Err: errf(CodeCompile, "%v", err)}
	}
	e := &Entry{Native: native}
	if len(native.ParallelLoops()) == 0 {
		// Nothing to expand: the native program is the execution plan.
		return e
	}
	tr, err := gdsx.Transform(native, gdsx.TransformOptions{
		Guard:       guarded,
		ProfileOpts: gdsx.RunOptions{Ctx: ctx, MaxOps: lim.MaxOps},
	})
	if err != nil {
		pe := classifyRunError(ctx, err)
		if pe.Code == CodeTimeout || pe.Code == CodeCancelled || pe.Code == CodeOOM {
			return &Entry{Err: pe, transient: true}
		}
		return &Entry{Err: errf(CodeTransform, "%v", err)}
	}
	exp, err := gdsx.Compile(file+" (expanded)", tr.Source)
	if err != nil {
		return &Entry{Err: errf(CodeTransform, "compiling expansion: %v", err)}
	}
	e.Tr, e.Expanded = tr, exp
	return e
}

func (s *Server) execute(ctx context.Context, req *Request, level int, rq *reqState) (*Response, *Error) {
	start := time.Now()
	s.reg.Counter(runLevelCounter(level)).Inc()
	src := req.Source
	if req.Input != "" {
		src = req.Input + "\n" + req.Source
	}
	o := req.Options

	// The request deadline covers the whole pipeline, transform included
	// — a cache miss on a pathological source must not outlive the
	// request that caused it.
	timeout := time.Duration(o.TimeoutMs) * time.Millisecond
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	key := Key(src, o.Guard)
	endLookup := rq.span("cache-lookup")
	entry, hit := s.cache.Get(key, func() *Entry {
		endBuild := rq.span("build")
		t0 := time.Now()
		e := buildEntry(rctx, "request.c", src, o.Guard, s.cfg.Limits)
		s.reg.Histogram("serve.build_us").Observe(time.Since(t0).Microseconds())
		endBuild("")
		return e
	})
	if hit {
		endLookup("hit")
	} else {
		endLookup("miss")
	}
	if entry.Err != nil {
		if entry.transient {
			s.cache.Remove(key)
		}
		return nil, entry.Err
	}

	arena := s.pool.Get()
	defer s.pool.Put(arena)

	engine, _ := gdsx.EngineFromString(o.Engine)
	sched, _ := gdsx.SchedFromString(o.Sched)
	ropts := gdsx.RunOptions{
		Threads:  o.Threads,
		Engine:   engine,
		Sched:    sched,
		MemLimit: o.MemLimit,
		MaxOps:   o.MaxOps,
		Ctx:      rctx,
		Memory:   arena,
		Recover:  &gdsx.RecoverySpec{},
		// The watchdog composes with the context deadline: the deadline
		// cancels the whole run cooperatively, while a region stuck past
		// its share is rolled back and demoted without failing the run.
		RegionTimeout: timeout,
	}
	if level >= ShedSequential {
		ropts.Threads = 1
		ropts.ForceSequential = true
	}
	// Per-tenant region accounting rides the hook chain on every
	// request (region-level only — keeps the fast access path); the
	// request-scoped observer is attached only to traced requests,
	// which is where the runtime's region/guard/rollback events pick
	// up the request ID via the tracer's tag.
	ropts.Hooks = s.tenantHooks(rq.tenant)
	if rq.traced {
		ropts.Obs = rq.obs
	}

	resp := &Response{CacheHit: hit, ShedLevel: level}
	execStart := time.Now()
	endExec := rq.span("execute")
	defer func() {
		endExec("")
		rq.execNS = int64(time.Since(execStart))
		s.reg.Histogram("serve.exec_us").Observe(time.Since(execStart).Microseconds())
	}()
	if o.Guard && entry.Tr != nil {
		if level >= ShedSampleGuards {
			ropts.Sample = &gdsx.TierSpec{PromoteAfter: 1, SampleK: 8}
		}
		if o.FaultSuspectEvery > 0 || o.FaultRollbackEvery > 0 {
			ropts.FaultPlan = &gdsx.FaultPlan{
				SuspectEvery:  o.FaultSuspectEvery,
				RollbackEvery: o.FaultRollbackEvery,
			}
		}
		gres, err := gdsx.GuardedRunPrecompiled(entry.Native, entry.Tr, entry.Expanded, ropts)
		if err != nil {
			return nil, classifyRunError(rctx, err)
		}
		resp.Output = gres.Result.Output
		resp.Ops = totalOps(gres.Result)
		resp.Recovered = gres.Recovered
		resp.Violations = len(gres.Violations)
	} else {
		prog := entry.Expanded
		if prog == nil {
			prog = entry.Native
		}
		// Profile-guided specialization, shed level 0 only: the first run
		// of a cache entry pays for a hot-site harvest; every later run
		// reuses the published profile for free. A traced request shares
		// its observer with the harvest (one observer per run) instead of
		// attaching a second one.
		harvest := (*gdsx.Observer)(nil)
		if level <= ShedNone && engine == gdsx.EngineCompiled {
			if p := entry.Profile(); p != nil {
				ropts.OptProfile = p
			} else if rq.traced {
				rq.obs.Hot = obs.NewHotSites()
				harvest = rq.obs
			} else {
				harvest = gdsx.NewObserver(true)
				ropts.Obs = harvest
			}
		}
		res, err := prog.Run(ropts)
		if err != nil {
			return nil, classifyRunError(rctx, err)
		}
		if harvest != nil {
			entry.SetProfile(gdsx.SiteProfileFromReports(harvest.Hot.Report()))
		}
		resp.Output = res.Output
		resp.Ops = totalOps(res)
		for _, reg := range res.Regions {
			resp.Recovered += reg.Rollbacks
		}
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

func totalOps(r gdsx.Result) int64 {
	var n int64
	for _, c := range r.Counters {
		n += c
	}
	return n
}

// classifyRunError maps an execution error onto the service's code
// vocabulary. Cancellation is split by cause: a deadline that elapsed
// is the service's timeout; anything else means the client went away.
func classifyRunError(ctx context.Context, err error) *Error {
	var ce *gdsx.CancelledError
	if errors.As(err, &ce) {
		if errors.Is(context.Cause(ctx), context.DeadlineExceeded) || errors.Is(ce.Cause, context.DeadlineExceeded) {
			return errf(CodeTimeout, "%v", err)
		}
		return errf(CodeCancelled, "%v", err)
	}
	// Quota exhaustion surfaces as a RuntimeError when a program
	// allocation fails, but as a bare mem error when the interpreter's
	// own allocations (worker stacks) hit the limit — match the message,
	// not the type.
	if strings.Contains(err.Error(), "out of memory") {
		return errf(CodeOOM, "%v", err)
	}
	var re interp.RuntimeError
	if errors.As(err, &re) {
		return errf(CodeRuntime, "%v", err)
	}
	return errf(CodeRuntime, "%v", err)
}

func statusFor(code Code) int {
	switch code {
	case CodeBadReq, CodeCompile, CodeTransform:
		return http.StatusBadRequest
	case CodeRuntime, CodeOOM:
		return http.StatusUnprocessableEntity
	case CodeCancelled:
		return 499 // client closed request (nginx convention)
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeRateLimit, CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the structured error response, counts it per code,
// and settles the request's outcome on rq (nil from layers without a
// request context, e.g. the panic recoverer).
func (s *Server) writeError(w http.ResponseWriter, rq *reqState, e *Error) {
	s.reg.Counter(obs.Labeled("serve.errors", "code", string(e.Code))).Inc()
	if rq != nil {
		rq.status = statusFor(e.Code)
		rq.code = e.Code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusFor(e.Code))
	json.NewEncoder(w).Encode(e)
}

func retryAfter(wait time.Duration) string {
	secs := int(wait/time.Second) + 1
	return strconv.Itoa(secs)
}
