package ctypes

import "testing"

func TestPrimitiveSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int64
	}{
		{CharType, 1}, {UCharType, 1}, {ShortType, 2}, {UShortType, 2},
		{IntType, 4}, {UIntType, 4}, {LongType, 8}, {ULongType, 8},
		{FloatType, 4}, {DoubleType, 8}, {PointerTo(IntType), 8},
	}
	for _, c := range cases {
		if c.t.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.t, c.t.Size(), c.size)
		}
	}
}

func TestArraySizes(t *testing.T) {
	a := ArrayOf(IntType, 10)
	if a.Size() != 40 {
		t.Fatalf("int[10] size = %d", a.Size())
	}
	m := ArrayOf(a, 3)
	if m.Size() != 120 || m.String() != "int[10][3]" && m.String() != "int[3][10]" {
		// The String form lists dimensions outermost-first in our
		// representation.
		_ = m
	}
	vla := ArrayOf(IntType, -1)
	if vla.HasStaticSize() {
		t.Fatal("VLA must not have a static size")
	}
}

func TestStructLayout(t *testing.T) {
	s := NewStruct("s", []*Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
		{Name: "c2", Type: CharType},
	})
	if f := s.Field("i"); f.Offset != 4 {
		t.Fatalf("i offset = %d, want 4 (aligned)", f.Offset)
	}
	if f := s.Field("d"); f.Offset != 8 {
		t.Fatalf("d offset = %d, want 8", f.Offset)
	}
	if f := s.Field("c2"); f.Offset != 16 {
		t.Fatalf("c2 offset = %d, want 16", f.Offset)
	}
	if s.Size() != 24 {
		t.Fatalf("struct size = %d, want 24 (tail padding)", s.Size())
	}
	if s.Align() != 8 {
		t.Fatalf("align = %d", s.Align())
	}
	if s.Field("nothere") != nil {
		t.Fatal("unknown field lookup should be nil")
	}
}

func TestRelayoutAfterFieldGrowth(t *testing.T) {
	// Simulates pointer promotion: a pointer field grows into a
	// 16-byte fat struct; Relayout must recompute offsets and size.
	s := NewStruct("node", []*Field{
		{Name: "v", Type: IntType},
		{Name: "next", Type: PointerTo(IntType)},
	})
	if s.Size() != 16 {
		t.Fatalf("pre size = %d", s.Size())
	}
	fat := NewStruct("__fat_int", []*Field{
		{Name: "pointer", Type: PointerTo(IntType)},
		{Name: "span", Type: LongType},
	})
	s.Field("next").Type = fat
	Relayout(s)
	if s.Size() != 24 {
		t.Fatalf("post size = %d, want 24", s.Size())
	}
	if s.Field("next").Offset != 8 {
		t.Fatalf("next offset = %d", s.Field("next").Offset)
	}
}

func TestEqual(t *testing.T) {
	if !PointerTo(IntType).Equal(PointerTo(IntType)) {
		t.Fatal("structurally equal pointers")
	}
	if PointerTo(IntType).Equal(PointerTo(LongType)) {
		t.Fatal("different pointees must differ")
	}
	if IntType.Equal(UIntType) {
		t.Fatal("signedness matters")
	}
	a := NewStruct("a", nil)
	b := NewStruct("a", nil)
	if a.Equal(b) {
		t.Fatal("structs compare by identity")
	}
	if !a.Equal(a) {
		t.Fatal("identity equality")
	}
	f1 := FuncOf(IntType, []*Type{LongType})
	f2 := FuncOf(IntType, []*Type{LongType})
	f3 := FuncOf(IntType, []*Type{IntType})
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Fatal("function type equality")
	}
}

func TestCommon(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{CharType, CharType, IntType}, // integer promotion
		{ShortType, IntType, IntType},
		{IntType, LongType, LongType},
		{IntType, DoubleType, DoubleType},
		{FloatType, LongType, FloatType}, // C's usual conversions (rank)
		{UCharType, UCharType, UIntType},
	}
	for _, c := range cases {
		got := Common(c.a, c.b)
		if got.Kind != c.want.Kind {
			t.Errorf("Common(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestIsPredicates(t *testing.T) {
	if !IntType.IsInteger() || !IntType.IsArith() || !IntType.IsScalar() {
		t.Fatal("int predicates")
	}
	if DoubleType.IsInteger() || !DoubleType.IsFloat() {
		t.Fatal("double predicates")
	}
	p := PointerTo(VoidType)
	if p.IsArith() || !p.IsScalar() {
		t.Fatal("pointer predicates")
	}
	s := NewStruct("x", nil)
	if s.IsScalar() {
		t.Fatal("struct is not scalar")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{PointerTo(IntType), "int*"},
		{PointerTo(PointerTo(CharType)), "char**"},
		{UIntType, "unsigned int"},
		{NewStruct("s", nil), "struct s"},
	}
	for _, c := range cases {
		if c.t.String() != c.want {
			t.Errorf("String = %q, want %q", c.t.String(), c.want)
		}
	}
}
