// Package ctypes implements the MiniC type system: primitive types with
// C-like sizes, pointers, arrays, structs with laid-out fields, and
// function signatures. Sizes and field offsets are what the simulated
// memory uses, so the paper's address arithmetic (spans, bonded layout)
// is expressed in these units.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind enumerates the type constructors of MiniC.
type Kind int

// Type kinds.
const (
	Void   Kind = iota
	Char        // 1 byte
	Short       // 2 bytes
	Int         // 4 bytes
	Long        // 8 bytes
	Float       // 4 bytes
	Double      // 8 bytes
	Ptr         // 8 bytes
	Array
	Struct
	Func
)

var kindNames = [...]string{
	Void: "void", Char: "char", Short: "short", Int: "int", Long: "long",
	Float: "float", Double: "double", Ptr: "ptr", Array: "array",
	Struct: "struct", Func: "func",
}

func (k Kind) String() string { return kindNames[k] }

// Field is a named struct member at a fixed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
	Index  int
}

// Type describes a MiniC type. Types are compared structurally except
// for structs, which compare by identity (each struct definition yields
// one *Type shared by all its uses).
type Type struct {
	Kind     Kind
	Unsigned bool  // for Char..Long
	Elem     *Type // Ptr and Array element type
	Len      int64 // Array length; VLA < 0 (length supplied by a decl-site expression)

	// Struct.
	Name   string
	Fields []*Field
	size   int64
	align  int64

	// Func.
	Ret    *Type
	Params []*Type
}

// Predefined primitive types. These are shared instances; primitive
// types may also be constructed fresh (equality is structural).
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	UCharType  = &Type{Kind: Char, Unsigned: true}
	ShortType  = &Type{Kind: Short}
	UShortType = &Type{Kind: Short, Unsigned: true}
	IntType    = &Type{Kind: Int}
	UIntType   = &Type{Kind: Int, Unsigned: true}
	LongType   = &Type{Kind: Long}
	ULongType  = &Type{Kind: Long, Unsigned: true}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Ptr, Elem: elem} }

// ArrayOf returns the type elem[n]. A negative n denotes a VLA whose
// length expression lives at the declaration site.
func ArrayOf(elem *Type, n int64) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type.
func FuncOf(ret *Type, params []*Type) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params}
}

// NewStruct creates a struct type and lays out its fields with natural
// alignment (each field aligned to min(its size, 8)).
func NewStruct(name string, fields []*Field) *Type {
	t := &Type{Kind: Struct, Name: name, Fields: fields}
	var off, maxAlign int64
	maxAlign = 1
	for i, f := range fields {
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		f.Offset = off
		f.Index = i
		off += f.Type.Size()
	}
	t.size = alignUp(off, maxAlign)
	if t.size == 0 {
		t.size = 1
	}
	t.align = maxAlign
	return t
}

// Relayout recomputes a struct's field offsets, size and alignment
// after its field types were mutated (the pointer-promotion pass grows
// fields into fat-pointer structs in place).
func Relayout(t *Type) {
	if t.Kind != Struct {
		return
	}
	var off, maxAlign int64
	maxAlign = 1
	for i, f := range t.Fields {
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		f.Offset = off
		f.Index = i
		off += f.Type.Size()
	}
	t.size = alignUp(off, maxAlign)
	if t.size == 0 {
		t.size = 1
	}
	t.align = maxAlign
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Field returns the struct field with the given name, or nil.
func (t *Type) Field(name string) *Field {
	for _, f := range t.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Size returns the byte size of the type. VLA arrays and function types
// have no static size; Size panics for them.
func (t *Type) Size() int64 {
	switch t.Kind {
	case Void:
		return 1 // as in GCC's void arithmetic extension
	case Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Long, Double, Ptr:
		return 8
	case Array:
		if t.Len < 0 {
			panic("ctypes: Size of VLA " + t.String())
		}
		return t.Len * t.Elem.Size()
	case Struct:
		return t.size
	}
	panic("ctypes: Size of " + t.String())
}

// HasStaticSize reports whether Size may be called on t.
func (t *Type) HasStaticSize() bool {
	switch t.Kind {
	case Func:
		return false
	case Array:
		return t.Len >= 0 && t.Elem.HasStaticSize()
	case Struct:
		return true
	default:
		return true
	}
}

// Align returns the natural alignment of the type.
func (t *Type) Align() int64 {
	switch t.Kind {
	case Array:
		return t.Elem.Align()
	case Struct:
		return t.align
	case Void:
		return 1
	default:
		return t.Size()
	}
}

// IsInteger reports whether t is an integer type (char through long).
func (t *Type) IsInteger() bool { return t.Kind >= Char && t.Kind <= Long }

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArith reports whether t is an arithmetic (integer or floating) type.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == Ptr }

// Equal reports type equality: structural for primitives, pointers and
// arrays; identity for structs.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case Struct:
		return false // identity compared above
	case Ptr:
		return t.Elem.Equal(u.Elem)
	case Array:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case Func:
		if !t.Ret.Equal(u.Ret) || len(t.Params) != len(u.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(u.Params[i]) {
				return false
			}
		}
		return true
	default:
		return t.Unsigned == u.Unsigned
	}
}

// Common returns the usual-arithmetic-conversion result type of a
// binary operation over a and b.
func Common(a, b *Type) *Type {
	rank := func(t *Type) int {
		switch t.Kind {
		case Double:
			return 7
		case Float:
			return 6
		case Long:
			return 5
		case Int:
			return 4
		case Short:
			return 3
		case Char:
			return 2
		}
		return 0
	}
	hi := a
	if rank(b) > rank(a) {
		hi = b
	}
	// Integer ops are carried out in at least int width.
	if hi.IsInteger() && rank(hi) < 4 {
		if hi.Unsigned {
			return UIntType
		}
		return IntType
	}
	return hi
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Ptr:
		return t.Elem.String() + "*"
	case Array:
		if t.Len < 0 {
			return fmt.Sprintf("%s[]", t.Elem)
		}
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Struct:
		return "struct " + t.Name
	case Func:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ","))
	default:
		if t.Unsigned {
			return "unsigned " + t.Kind.String()
		}
		return t.Kind.String()
	}
}
