package interp

// Table-driven tests for the compiler's constant folder, focused on
// the short-circuit forms (&& / || / ?:). Folding must be tick-exact:
// the tree-walker never evaluates — or ticks — the branch a decided
// condition skips, so the folded tick count covers only the taken
// path. A decided left operand folds the whole expression even when
// the other side is not constant.

import (
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/parser"
	"gdsx/internal/sema"
)

// foldExpr parses `int main(...) { return <expr>; }` and returns the
// checked return expression, giving the folder the same typed AST the
// compiler sees. The x parameter supplies a non-constant operand.
func foldExpr(t *testing.T, expr string) ast.Expr {
	t.Helper()
	src := "int main(int x) { return " + expr + "; }"
	prog, err := parser.Parse("fold_test.c", src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	if _, err := sema.Check(prog); err != nil {
		t.Fatalf("check %q: %v", expr, err)
	}
	for _, d := range prog.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Name != "main" {
			continue
		}
		ret, ok := fn.Body.Stmts[len(fn.Body.Stmts)-1].(*ast.Return)
		if !ok {
			t.Fatalf("%q: last statement is not a return", expr)
		}
		return ret.X
	}
	t.Fatalf("%q: no main", expr)
	return nil
}

func TestConstFoldShortCircuit(t *testing.T) {
	tests := []struct {
		expr  string
		want  int64 // folded value
		ticks int64 // tree-walker ticks for the taken path
	}{
		// Both operands constant: 1 tick per literal + 1 for the node.
		{"1 && 2", 1, 3},
		{"1 && 0", 0, 3},
		{"7 || 0", 1, 2}, // right side short-circuited: 1 literal + node
		{"0 || 3", 1, 3},
		{"0 && 0", 0, 2},
		// A decided left folds over a non-constant right.
		{"0 && x", 0, 2},
		{"1 || x", 1, 2},
		// Nested folds accumulate exactly.
		{"(1 && 2) || x", 1, 4},
		{"0 && (x || 1)", 0, 2},
		// Conditional: condition plus the taken branch only.
		{"1 ? 2 : 3", 2, 3},
		{"0 ? 2 : 3", 3, 3},
		{"1 ? 2 : x", 2, 3},
		{"0 ? x : 4", 4, 3},
		{"(1 && 0) ? x : 9", 9, 5},
		// Mixed float condition folds through truth().
		{"0.0 || 5", 1, 3},
		{"2.5 && 1", 1, 3},
	}
	c := &compiler{}
	for _, tc := range tests {
		t.Run(tc.expr, func(t *testing.T) {
			e := foldExpr(t, tc.expr)
			v, n, ok := c.constEval(e)
			if !ok {
				t.Fatalf("constEval(%q): not folded", tc.expr)
			}
			if v.I != tc.want {
				t.Errorf("constEval(%q) = %+v, want I=%d", tc.expr, v, tc.want)
			}
			if n != tc.ticks {
				t.Errorf("constEval(%q) ticks = %d, want %d", tc.expr, n, tc.ticks)
			}
		})
	}
}

// TestConstFoldUndecided pins the cases that must NOT fold: a
// non-constant operand the short-circuit rules cannot skip.
func TestConstFoldUndecided(t *testing.T) {
	for _, expr := range []string{
		"x && 1", "x || 0", "1 && x", "0 || x",
		"x ? 1 : 2", "1 ? x : 2",
	} {
		t.Run(expr, func(t *testing.T) {
			e := foldExpr(t, expr)
			if v, n, ok := (&compiler{}).constEval(e); ok {
				t.Errorf("constEval(%q) folded to %+v (ticks %d), want not folded", expr, v, n)
			}
		})
	}
}
