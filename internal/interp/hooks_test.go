package interp

import (
	"fmt"
	"reflect"
	"testing"
)

// layerHooks builds a hook set whose every callback appends
// "<name>:<event>" to log, so chained invocation order is observable.
func layerHooks(name string, log *[]string) *Hooks {
	note := func(event string) { *log = append(*log, name+":"+event) }
	return &Hooks{
		Load:      func(site int, addr, size int64) { note("load") },
		Store:     func(site int, addr, size int64) { note("store") },
		LoopEnter: func(loopID int) { note("loop-enter") },
		LoopIter:  func(loopID int, iter int64) { note("loop-iter") },
		LoopExit:  func(loopID int) { note("loop-exit") },
		Redirect: func(site int, addr, size int64, tid int) (int64, int64) {
			note("redirect")
			return addr + 1, 1 // shift so composition is observable
		},
		Free:           func(base int64) { note("free") },
		ParallelStart:  func(loopID, nthreads int) { note("parallel-start") },
		ParallelEnd:    func(loopID int) { note("parallel-end") },
		IterStart:      func(loopID int, iter int64, tid int) { note("iter-start") },
		IterEnd:        func(loopID int, iter int64, tid int) { note("iter-end") },
		ParallelCancel: func(loopID int) { note("parallel-cancel") },
		Observe:        func(ev Access) { note("observe") },
		Expand:         func(base, span, esz int64) { note("expand") },
	}
}

// fireAll invokes every callback of a chained hook set once.
func fireAll(t *testing.T, h *Hooks) {
	t.Helper()
	h.Load(1, 100, 8)
	h.Store(1, 100, 8)
	h.LoopEnter(1)
	h.LoopIter(1, 0)
	h.LoopExit(1)
	h.Redirect(1, 100, 8, 0)
	h.Free(100)
	h.ParallelStart(1, 4)
	h.ParallelEnd(1)
	h.IterStart(1, 0, 0)
	h.IterEnd(1, 0, 0)
	h.ParallelCancel(1)
	h.Observe(Access{Site: 1, Addr: 100, Size: 8})
	h.Expand(100, 64, 8)
}

// TestChainHooksOrder pins the documented contract for three or more
// chained layers: every event reaches the layers left to right, under
// either associativity, for every hook kind.
func TestChainHooksOrder(t *testing.T) {
	events := []string{
		"load", "store", "loop-enter", "loop-iter", "loop-exit",
		"redirect", "free", "parallel-start", "parallel-end",
		"iter-start", "iter-end", "parallel-cancel", "observe", "expand",
	}
	for _, nesting := range []string{"right", "left"} {
		t.Run(nesting, func(t *testing.T) {
			var log []string
			a := layerHooks("a", &log)
			b := layerHooks("b", &log)
			c := layerHooks("c", &log)
			var chained *Hooks
			if nesting == "right" {
				// The stack GuardedRun + Machine.New builds:
				// ChainHooks(obs, ChainHooks(monitor, user)).
				chained = ChainHooks(a, ChainHooks(b, c))
			} else {
				chained = ChainHooks(ChainHooks(a, b), c)
			}
			fireAll(t, chained)
			var want []string
			for _, ev := range events {
				want = append(want, "a:"+ev, "b:"+ev, "c:"+ev)
			}
			if !reflect.DeepEqual(log, want) {
				t.Fatalf("chained hook order (%s nesting):\ngot  %v\nwant %v",
					nesting, log, want)
			}
		})
	}
}

// TestChainHooksRedirectComposes pins Redirect's value threading: each
// layer observes the address the previous one produced, and the
// simulated costs add.
func TestChainHooksRedirectComposes(t *testing.T) {
	var seen []int64
	layer := func(shift int64) *Hooks {
		return &Hooks{Redirect: func(site int, addr, size int64, tid int) (int64, int64) {
			seen = append(seen, addr)
			return addr + shift, shift
		}}
	}
	h := ChainHooks(layer(1), ChainHooks(layer(10), layer(100)))
	addr, cost := h.Redirect(0, 1000, 8, 0)
	if addr != 1111 || cost != 111 {
		t.Fatalf("composed redirect = (%d, %d), want (1111, 111)", addr, cost)
	}
	if !reflect.DeepEqual(seen, []int64{1000, 1001, 1011}) {
		t.Fatalf("each layer must see its predecessor's address: %v", seen)
	}
}

// TestChainHooksNilLayers: chaining with nil layers returns the other
// side unchanged, and partially populated layers only chain the
// callbacks that exist.
func TestChainHooksNilLayers(t *testing.T) {
	var log []string
	a := layerHooks("a", &log)
	if got := ChainHooks(a, nil); got != a {
		t.Fatal("ChainHooks(a, nil) must return a")
	}
	if got := ChainHooks(nil, a); got != a {
		t.Fatal("ChainHooks(nil, a) must return a")
	}
	partial := &Hooks{Free: func(base int64) { log = append(log, "p:free") }}
	h := ChainHooks(a, partial)
	if h.Observe == nil || h.Load == nil {
		t.Fatal("chaining must preserve a's callbacks")
	}
	h.Free(1)
	if fmt.Sprint(log) != "[a:free p:free]" {
		t.Fatalf("partial chain order: %v", log)
	}
}

// TestHasAccessHooks pins the fast-path predicate both engines key
// their load/store compilation on.
func TestHasAccessHooks(t *testing.T) {
	var h *Hooks
	if h.HasAccessHooks() {
		t.Fatal("nil hooks have no access hooks")
	}
	regionOnly := &Hooks{
		ParallelStart: func(loopID, nthreads int) {},
		ParallelEnd:   func(loopID int) {},
		IterStart:     func(loopID int, iter int64, tid int) {},
		IterEnd:       func(loopID int, iter int64, tid int) {},
		LoopEnter:     func(loopID int) {},
		Free:          func(base int64) {},
		Expand:        func(base, span, esz int64) {},
	}
	if regionOnly.HasAccessHooks() {
		t.Fatal("region-level hooks must stay off the access slow path")
	}
	for name, h := range map[string]*Hooks{
		"load":     {Load: func(site int, addr, size int64) {}},
		"store":    {Store: func(site int, addr, size int64) {}},
		"redirect": {Redirect: func(site int, addr, size int64, tid int) (int64, int64) { return addr, 0 }},
		"observe":  {Observe: func(ev Access) {}},
	} {
		if !h.HasAccessHooks() {
			t.Fatalf("%s is a per-access hook", name)
		}
	}
}
