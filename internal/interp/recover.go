package interp

import (
	"sort"
	"sync"

	"gdsx/internal/mem"
	"gdsx/internal/obs"
)

// Region-scoped recovery: with Options.Recover set, every parallel
// region begins by snapshotting the machine's mutable state (an
// incremental write log over the simulated memory plus the output
// buffer, counters and allocator metadata). If the region fails — a
// guard monitor aborts at the safe point, a worker faults, or the
// region watchdog expires — the snapshot is rolled back and the region
// re-executes sequentially on the spawning thread, after which the run
// continues with parallel execution for subsequent regions. Sequential
// execution of the expanded program on thread 0 touches only copy 0 of
// every expanded structure, so the re-execution reproduces native
// sequential semantics exactly.
//
// A per-region health record adaptively demotes regions that keep
// failing: after MaxStrikes recovered failures the region runs
// sequentially without even attempting parallelism (and without
// snapshot cost); a non-zero Cooldown re-promotes it for another try
// after that many sequential executions.

// RecoverySpec configures region-scoped checkpoint/rollback recovery.
// The zero value is a usable default (demote after 2 strikes, never
// re-promote).
type RecoverySpec struct {
	// MaxStrikes demotes a region to sequential-only execution after
	// this many recovered failures (default 2; 1 demotes on the first
	// failure). Strikes accumulate over the run — they are not reset by
	// successful parallel executions.
	MaxStrikes int
	// Cooldown re-promotes a demoted region after this many sequential
	// executions, giving parallel execution another chance with one
	// remaining strike (0 = demoted for the rest of the run).
	Cooldown int
}

func (s RecoverySpec) maxStrikes() int {
	if s.MaxStrikes <= 0 {
		return 2
	}
	return s.MaxStrikes
}

// FailKind classifies why a parallel region was rolled back.
type FailKind int

const (
	// FailViolation: the guard monitor detected a dependence violation
	// at the region's safe point.
	FailViolation FailKind = iota
	// FailFault: a worker raised a runtime fault (OOM, null
	// dereference, ...) inside the region.
	FailFault
	// FailTimeout: the region watchdog (Options.RegionTimeout) expired.
	FailTimeout
	// FailSuspicion: the guard monitor, running at a sampled tier, saw
	// evidence consistent with a dependence violation but possibly a
	// sampling artifact. The region rolls back and re-executes
	// sequentially like a violation, but no demotion strike is charged —
	// the tier controller escalates the region back to full guarding
	// instead, which either confirms a real violation on the next
	// execution or proves the region clean.
	FailSuspicion
)

func (k FailKind) String() string {
	switch k {
	case FailViolation:
		return "violation"
	case FailFault:
		return "worker fault"
	case FailTimeout:
		return "timeout"
	case FailSuspicion:
		return "suspicion"
	}
	return "unknown"
}

// RegionStats is the health record of one parallel region (keyed by
// loop ID), exposed through Result.Regions when recovery is enabled.
type RegionStats struct {
	Loop int `json:"loop"`
	// ParallelRuns counts parallel executions that committed.
	ParallelRuns int `json:"parallel_runs"`
	// SeqRuns counts sequential executions: recovery re-executions
	// after a rollback plus runs while the region was demoted.
	SeqRuns    int `json:"seq_runs"`
	Violations int `json:"violations"`
	Faults     int `json:"faults"`
	Timeouts   int `json:"timeouts"`
	// Suspicions counts sampled-tier rollbacks that charged no strike
	// (see FailSuspicion).
	Suspicions int `json:"suspicions,omitempty"`
	// Rollbacks counts rolled-back parallel attempts, with the total
	// pre-image pages and bytes the rollbacks restored.
	Rollbacks     int   `json:"rollbacks"`
	RollbackPages int   `json:"rollback_pages"`
	RollbackBytes int64 `json:"rollback_bytes"`
	// SnapshotPages/Bytes total the write-log size of committed
	// (successful) parallel runs: the snapshot overhead paid on the
	// no-violation path.
	SnapshotPages int   `json:"snapshot_pages"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Demoted reports whether the region ended the run demoted;
	// Repromotions counts cooldown-driven returns to parallel execution.
	Demoted      bool   `json:"demoted"`
	Repromotions int    `json:"repromotions"`
	LastFailure  string `json:"last_failure,omitempty"`
}

type regionHealth struct {
	stats    RegionStats
	strikes  int
	cooldown int
}

// recoveryState is the per-machine recovery controller. Regions only
// start on the spawning (main) thread, but the mutex keeps the
// controller safe if that ever changes; it is taken once per region.
type recoveryState struct {
	spec    RecoverySpec
	o       *obs.Observer // nil when the run is unobserved
	mu      sync.Mutex
	regions map[int]*regionHealth
}

func newRecoveryState(spec RecoverySpec, o *obs.Observer) *recoveryState {
	return &recoveryState{spec: spec, o: o, regions: map[int]*regionHealth{}}
}

func (rc *recoveryState) health(loop int) *regionHealth {
	h := rc.regions[loop]
	if h == nil {
		h = &regionHealth{stats: RegionStats{Loop: loop}}
		rc.regions[loop] = h
	}
	return h
}

// admit decides whether the region may attempt parallel execution.
// Demoted regions run sequentially until their cooldown (if any)
// elapses; a re-promoted region gets one remaining strike, so another
// failure demotes it again immediately.
func (rc *recoveryState) admit(loop int) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	h := rc.health(loop)
	if !h.stats.Demoted {
		return true
	}
	if rc.spec.Cooldown > 0 && h.cooldown <= 0 {
		h.stats.Demoted = false
		h.stats.Repromotions++
		h.strikes = rc.spec.maxStrikes() - 1
		rc.o.Counter("recover.repromotions").Inc()
		rc.o.Emit(obs.Event{Name: "repromote", Ph: 'i', Loop: loop, Iter: -1})
		return true
	}
	h.cooldown--
	h.stats.SeqRuns++
	rc.o.Counter("recover.seq_runs").Inc()
	return false
}

func (rc *recoveryState) noteSuccess(loop int, pages int, bytes int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	h := rc.health(loop)
	h.stats.ParallelRuns++
	h.stats.SnapshotPages += pages
	h.stats.SnapshotBytes += bytes
	rc.o.Counter("recover.commits").Inc()
	rc.o.Counter("recover.snapshot_pages").Add(int64(pages))
	rc.o.Counter("recover.snapshot_bytes").Add(bytes)
	rc.o.Emit(obs.Event{Name: "checkpoint-commit", Ph: 'i', Loop: loop, Iter: -1,
		V1: int64(pages), V2: bytes})
}

func (rc *recoveryState) noteFailure(loop int, fail *regionFault, pages int, bytes int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	h := rc.health(loop)
	switch fail.kind {
	case FailViolation:
		h.stats.Violations++
		rc.o.Counter("recover.rollbacks.violation").Inc()
	case FailFault:
		h.stats.Faults++
		rc.o.Counter("recover.rollbacks.fault").Inc()
	case FailTimeout:
		h.stats.Timeouts++
		rc.o.Counter("recover.rollbacks.timeout").Inc()
	case FailSuspicion:
		h.stats.Suspicions++
		rc.o.Counter("recover.rollbacks.suspicion").Inc()
	}
	h.stats.Rollbacks++
	h.stats.RollbackPages += pages
	h.stats.RollbackBytes += bytes
	h.stats.SeqRuns++ // the sequential re-execution that follows
	if fail.err != nil {
		h.stats.LastFailure = fail.err.Error()
	}
	rc.o.Counter("recover.rollbacks").Inc()
	rc.o.Counter("recover.rollback_pages").Add(int64(pages))
	rc.o.Counter("recover.rollback_bytes").Add(bytes)
	rc.o.Counter("recover.seq_runs").Inc()
	rc.o.Emit(obs.Event{Name: "rollback", Ph: 'i', Loop: loop, Iter: -1,
		Label: fail.kind.String(), V1: int64(pages), V2: bytes})
	if fail.kind == FailSuspicion {
		// A suspicion is possibly a sampling artifact: the tier
		// controller escalates the region back to full guarding, which
		// settles the question on the next execution. Charging a strike
		// here would let artifacts demote a clean region.
		return
	}
	h.strikes++
	if h.strikes >= rc.spec.maxStrikes() {
		h.stats.Demoted = true
		h.cooldown = rc.spec.Cooldown
		rc.o.Counter("recover.demotions").Inc()
		rc.o.Emit(obs.Event{Name: "demote", Ph: 'i', Loop: loop, Iter: -1,
			V1: int64(h.strikes)})
	}
}

// snapshot returns the per-region stats sorted by loop ID.
func (rc *recoveryState) snapshot() []RegionStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]RegionStats, 0, len(rc.regions))
	for _, h := range rc.regions {
		out = append(out, h.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loop < out[j].Loop })
	return out
}

// regionFault carries a contained parallel-region failure (worker
// fault or watchdog timeout) out of the region as a panic. With
// recovery enabled it triggers rollback; without, Machine.Run unwraps
// err, preserving the error callers saw before recovery existed.
type regionFault struct {
	kind FailKind
	err  error
}

// regionSnapshot captures everything a region rollback must restore
// beyond the simulated memory: the output buffer length, the machine
// and spawning-thread counters, and the string-intern table (interned
// addresses allocated inside the region die with the rollback).
type regionSnapshot struct {
	ms        *mem.Snapshot
	outLen    int
	counters  [NumCats]int64
	memOps    int64
	tCounters [NumCats]int64
	tMemOps   int64
	strings   map[string]int64
}

// beginRegionSnapshot is called on the spawning thread at region entry,
// before the loop initializer and bounds evaluation, so a rollback can
// re-execute the loop from scratch.
func (t *thread) beginRegionSnapshot() *regionSnapshot {
	m := t.m
	strs := make(map[string]int64, len(m.strings))
	for k, v := range m.strings {
		strs[k] = v
	}
	s := &regionSnapshot{
		ms:        m.mem.BeginSnapshot(),
		counters:  m.counters,
		memOps:    m.memOps,
		tCounters: t.counters,
		tMemOps:   t.memOps,
		strings:   strs,
	}
	m.outMu.Lock()
	s.outLen = m.out.Len()
	m.outMu.Unlock()
	return s
}

// rollbackRegion restores the snapshot, returning the restored write
// log's size. Runs on the spawning thread after every worker has
// joined, so no other goroutine touches the machine.
func (t *thread) rollbackRegion(s *regionSnapshot) (pages int, bytes int64) {
	m := t.m
	pages, bytes = m.mem.Rollback(s.ms)
	m.outMu.Lock()
	m.out.Truncate(s.outLen)
	m.outMu.Unlock()
	m.counters = s.counters
	m.memOps = s.memOps
	t.counters = s.tCounters
	t.memOps = s.tMemOps
	m.strings = s.strings
	return pages, bytes
}
