package interp

// ChainHooks composes two hook sets into one: for every event, a's
// hook runs first, then b's. Either argument may be nil, in which case
// the other is returned unchanged. Redirect composes — b observes (and
// may further redirect) the address a produced, and the simulated op
// costs add. GuardedRun uses this to run the guard monitor's hooks
// ahead of caller-supplied ones.
//
// Chaining three or more layers: ChainHooks is associative, so
// ChainHooks(a, ChainHooks(b, c)) and ChainHooks(ChainHooks(a, b), c)
// both invoke every hook in the order a, b, c — left argument first,
// all the way down. The full stack of a guarded, observed run with
// user hooks is ChainHooks(obs, ChainHooks(monitor, user)): the
// observability adapter runs first (Machine.New prepends it), then the
// guard monitor (GuardedRun prepends it to the caller's hooks), then
// the user's. Layers that must see an event before a later layer can
// abort the region rely on this order — see the caveat below.
//
// Caveat: an aborted region may cut the chain short. When a layer's
// ParallelEnd panics (the guard monitor raising a violation at the
// safe point), every later layer's ParallelEnd never runs for that
// region. This is why the observability adapter is chained ahead of
// the monitor: its region-end event is recorded before a violation
// panic unwinds.
// HasAccessHooks reports whether the set carries a per-access hook —
// Redirect, Load, Store or Observe — i.e. whether attaching it forces
// every sited memory access through the engines' slow path. Hook sets
// with only region- and loop-level interest (the observability
// adapter's standard tier) leave loads and stores on the fast path.
// Safe on nil.
func (h *Hooks) HasAccessHooks() bool {
	return h != nil &&
		(h.Redirect != nil || h.Load != nil || h.Store != nil || h.Observe != nil)
}

// regionOnly reports whether every per-access hook in the set declared
// region-only interest (vacuously true for a set carrying none).
func (h *Hooks) regionOnly() bool {
	return !h.HasAccessHooks() || h.RegionOnly
}

// privateStacks reports whether the set's Observe hook (if any) waived
// own-stack accesses.
func (h *Hooks) privateStacks() bool {
	return h == nil || h.Observe == nil || h.PrivateStacks
}

func ChainHooks(a, b *Hooks) *Hooks {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	// The chain's access-path concessions hold only when every layer
	// that uses the relevant hook made them.
	c := &Hooks{
		RegionOnly:    a.regionOnly() && b.regionOnly(),
		PrivateStacks: a.privateStacks() && b.privateStacks(),
		Guarded:       a.Guarded || b.Guarded,
	}
	if a.Load != nil || b.Load != nil {
		af, bf := a.Load, b.Load
		c.Load = func(site int, addr, size int64) {
			if af != nil {
				af(site, addr, size)
			}
			if bf != nil {
				bf(site, addr, size)
			}
		}
	}
	if a.Store != nil || b.Store != nil {
		af, bf := a.Store, b.Store
		c.Store = func(site int, addr, size int64) {
			if af != nil {
				af(site, addr, size)
			}
			if bf != nil {
				bf(site, addr, size)
			}
		}
	}
	if a.LoopEnter != nil || b.LoopEnter != nil {
		af, bf := a.LoopEnter, b.LoopEnter
		c.LoopEnter = func(loopID int) {
			if af != nil {
				af(loopID)
			}
			if bf != nil {
				bf(loopID)
			}
		}
	}
	if a.LoopIter != nil || b.LoopIter != nil {
		af, bf := a.LoopIter, b.LoopIter
		c.LoopIter = func(loopID int, iter int64) {
			if af != nil {
				af(loopID, iter)
			}
			if bf != nil {
				bf(loopID, iter)
			}
		}
	}
	if a.LoopExit != nil || b.LoopExit != nil {
		af, bf := a.LoopExit, b.LoopExit
		c.LoopExit = func(loopID int) {
			if af != nil {
				af(loopID)
			}
			if bf != nil {
				bf(loopID)
			}
		}
	}
	if a.Redirect != nil || b.Redirect != nil {
		af, bf := a.Redirect, b.Redirect
		c.Redirect = func(site int, addr, size int64, tid int) (int64, int64) {
			var cost int64
			if af != nil {
				var c1 int64
				addr, c1 = af(site, addr, size, tid)
				cost += c1
			}
			if bf != nil {
				var c2 int64
				addr, c2 = bf(site, addr, size, tid)
				cost += c2
			}
			return addr, cost
		}
	}
	if a.Free != nil || b.Free != nil {
		af, bf := a.Free, b.Free
		c.Free = func(base int64) {
			if af != nil {
				af(base)
			}
			if bf != nil {
				bf(base)
			}
		}
	}
	if a.ParallelStart != nil || b.ParallelStart != nil {
		af, bf := a.ParallelStart, b.ParallelStart
		c.ParallelStart = func(loopID, nthreads int) {
			if af != nil {
				af(loopID, nthreads)
			}
			if bf != nil {
				bf(loopID, nthreads)
			}
		}
	}
	if a.ParallelEnd != nil || b.ParallelEnd != nil {
		af, bf := a.ParallelEnd, b.ParallelEnd
		c.ParallelEnd = func(loopID int) {
			if af != nil {
				af(loopID)
			}
			if bf != nil {
				bf(loopID)
			}
		}
	}
	if a.IterStart != nil || b.IterStart != nil {
		af, bf := a.IterStart, b.IterStart
		c.IterStart = func(loopID int, iter int64, tid int) {
			if af != nil {
				af(loopID, iter, tid)
			}
			if bf != nil {
				bf(loopID, iter, tid)
			}
		}
	}
	if a.IterEnd != nil || b.IterEnd != nil {
		af, bf := a.IterEnd, b.IterEnd
		c.IterEnd = func(loopID int, iter int64, tid int) {
			if af != nil {
				af(loopID, iter, tid)
			}
			if bf != nil {
				bf(loopID, iter, tid)
			}
		}
	}
	if a.ParallelCancel != nil || b.ParallelCancel != nil {
		af, bf := a.ParallelCancel, b.ParallelCancel
		c.ParallelCancel = func(loopID int) {
			if af != nil {
				af(loopID)
			}
			if bf != nil {
				bf(loopID)
			}
		}
	}
	if a.Observe != nil || b.Observe != nil {
		af, bf := a.Observe, b.Observe
		c.Observe = func(ev Access) {
			if af != nil {
				af(ev)
			}
			if bf != nil {
				bf(ev)
			}
		}
	}
	if a.Expand != nil || b.Expand != nil {
		af, bf := a.Expand, b.Expand
		c.Expand = func(base, span, esz int64) {
			if af != nil {
				af(base, span, esz)
			}
			if bf != nil {
				bf(base, span, esz)
			}
		}
	}
	if a.Commute != nil || b.Commute != nil {
		af, bf := a.Commute, b.Commute
		c.Commute = func(base, span, esz, op int64) {
			if af != nil {
				af(base, span, esz, op)
			}
			if bf != nil {
				bf(base, span, esz, op)
			}
		}
	}
	return c
}
