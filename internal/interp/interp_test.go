package interp

import (
	"strings"
	"testing"

	"gdsx/internal/parser"
	"gdsx/internal/sema"
)

// run executes src and returns the result, failing the test on error.
func run(t *testing.T, src string, opts Options) Result {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	res, err := New(prog, info, opts).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func runErr(t *testing.T, src string, opts Options) error {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	_, err = New(prog, info, opts).Run()
	return err
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
int main() {
    int a = 7;
    int b = 3;
    print_int(a + b); print_char('\n');
    print_int(a - b); print_char('\n');
    print_int(a * b); print_char('\n');
    print_int(a / b); print_char('\n');
    print_int(a % b); print_char('\n');
    print_int(a << 2); print_char('\n');
    print_int(a >> 1); print_char('\n');
    print_int(a & b); print_char('\n');
    print_int(a | b); print_char('\n');
    print_int(a ^ b); print_char('\n');
    print_int(-a); print_char('\n');
    print_int(~a); print_char('\n');
    print_int(!a); print_char('\n');
    return 0;
}`, Options{})
	want := "10\n4\n21\n2\n1\n28\n3\n3\n7\n4\n-7\n-8\n0\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestIntegerWidths(t *testing.T) {
	res := run(t, `
int main() {
    char c = 200;            // wraps to -56
    unsigned char uc = 200;
    short s = 70000;         // wraps to 4464
    unsigned short us = 70000;
    int i = 5000000000;      // wraps
    long l = 5000000000;
    print_int(c); print_char('\n');
    print_int(uc); print_char('\n');
    print_int(s); print_char('\n');
    print_int(us); print_char('\n');
    print_int(i); print_char('\n');
    print_long(l); print_char('\n');
    return 0;
}`, Options{})
	want := "-56\n200\n4464\n4464\n705032704\n5000000000\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestUnsignedOps(t *testing.T) {
	res := run(t, `
int main() {
    unsigned int a = 4000000000;
    unsigned int b = 3;
    print_long((long)(a / b)); print_char('\n');
    print_int(a > 5);  print_char('\n'); // unsigned compare
    unsigned int c = a >> 4;
    print_long((long)c); print_char('\n');
    return 0;
}`, Options{})
	want := "1333333333\n1\n250000000\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestFloatOps(t *testing.T) {
	res := run(t, `
int main() {
    double d = 2.5;
    float f = 0.5;
    print_double(d * 2.0 + f); print_char('\n');
    print_double(sqrt(16.0)); print_char('\n');
    print_double(fabs(0.0 - 3.25)); print_char('\n');
    print_int((int)(d * 2.0)); print_char('\n');
    return 0;
}`, Options{})
	want := "5.500000\n4.000000\n3.250000\n5\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 8) break;
        s += i;
    }
    int j = 0;
    while (j < 5) { s += 100; j++; }
    do { s += 1000; } while (0);
    print_int(s);
    return 0;
}`, Options{})
	// 0+1+2+4+5+6+7 = 25; +500; +1000
	if res.Output != "1525" {
		t.Fatalf("output = %q, want 1525", res.Output)
	}
}

func TestPointersAndArrays(t *testing.T) {
	res := run(t, `
int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i * i;
    int *p = a;
    int *q = &a[4];
    print_long(q - p); print_char('\n');
    print_int(*(p + 2)); print_char('\n');
    p += 3;
    print_int(*p); print_char('\n');
    p++;
    print_int(*p); print_char('\n');
    int m[3][4];
    m[2][3] = 42;
    print_int(m[2][3]); print_char('\n');
    return 0;
}`, Options{})
	want := "4\n4\n9\n16\n42\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestStructsAndLists(t *testing.T) {
	res := run(t, `
struct node {
    int val;
    struct node *next;
};
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 5; i++) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->val = i;
        n->next = head;
        head = n;
    }
    int s = 0;
    while (head != 0) {
        s = s * 10 + head->val;
        struct node *dead = head;
        head = head->next;
        free(dead);
    }
    print_int(s);
    return 0;
}`, Options{})
	if res.Output != "43210" {
		t.Fatalf("output = %q, want 43210", res.Output)
	}
}

func TestStructValueSemantics(t *testing.T) {
	res := run(t, `
struct point { int x; int y; };
int main() {
    struct point a;
    struct point b;
    a.x = 1; a.y = 2;
    b = a;
    b.x = 99;
    print_int(a.x); print_int(b.x); print_int(b.y);
    return 0;
}`, Options{})
	if res.Output != "1992" {
		t.Fatalf("output = %q, want 1992", res.Output)
	}
}

func TestRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(15));
    return 0;
}`, Options{})
	if res.Output != "610" {
		t.Fatalf("output = %q, want 610", res.Output)
	}
}

func TestShortIntRecast(t *testing.T) {
	// The bzip2 zptr pattern: one buffer viewed as both short and int.
	res := run(t, `
int main() {
    int *zptr = (int*)malloc(4 * 4);
    int k;
    for (k = 0; k < 4; k++) zptr[k] = 65536 + k;
    short *sp = (short*)zptr;
    print_int(sp[0]); print_char(' ');
    print_int(sp[1]); print_char(' ');
    print_int(sp[2]); print_char('\n');
    sp[0] = 7;
    print_int(zptr[0]); print_char('\n');
    free(zptr);
    return 0;
}`, Options{})
	want := "0 1 1\n65543\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	res := run(t, `
int g = 40;
int h;
double r = 2.5;
int arr[4];
int main() {
    h = g + 2;
    arr[1] = h;
    print_int(arr[1]);
    print_double(r);
    return 0;
}`, Options{})
	if res.Output != "422.500000" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStrings(t *testing.T) {
	res := run(t, `
int main() {
    char *s = "hello";
    print_str(s);
    print_char(' ');
    print_int(s[1]);
    return 0;
}`, Options{})
	if res.Output != "hello 101" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestVLA(t *testing.T) {
	res := run(t, `
int sum(int n) {
    int a[n];
    int i;
    for (i = 0; i < n; i++) a[i] = i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}
int main() {
    print_int(sum(10));
    print_char(' ');
    print_int(sum(100));
    return 0;
}`, Options{})
	if res.Output != "45 4950" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestMemBuiltins(t *testing.T) {
	res := run(t, `
int main() {
    char *a = (char*)malloc(8);
    char *b = (char*)malloc(8);
    memset(a, 65, 7);
    a[7] = 0;
    memcpy(b, a, 8);
    b[0] = 66;
    print_str(b);
    a = (char*)realloc(a, 16);
    print_str(a);
    free(a);
    free(b);
    return 0;
}`, Options{})
	if res.Output != "BAAAAAAAAAAAAA" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestTernaryLogical(t *testing.T) {
	res := run(t, `
int sideEffect(int *p) { *p = *p + 1; return 1; }
int main() {
    int n = 0;
    int x = (n == 0) ? 10 : 20;
    print_int(x);
    // Short circuit: sideEffect must not run.
    if (n != 0 && sideEffect(&n)) { }
    if (n == 0 || sideEffect(&n)) { }
    print_int(n);
    return 0;
}`, Options{})
	if res.Output != "100" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestExitCode(t *testing.T) {
	res := run(t, `int main() { return 42; }`, Options{})
	if res.Exit != 42 {
		t.Fatalf("exit = %d, want 42", res.Exit)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div zero", "int main() { int z = 0; return 1 / z; }", "division by zero"},
		{"null deref", "int main() { int *p = 0; return *p; }", "null pointer"},
		{"double free", "int main() { int *p = (int*)malloc(4); free(p); free(p); return 0; }", "free of non-allocated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// parSum is a DOALL loop already in expanded form (disjoint slices per
// iteration), so it is safe to run with any thread count.
const parSum = `
int main() {
    int n = 1000;
    int *a = (int*)malloc(n * 4);
    int *partial = (int*)malloc(8 * 4);
    int i;
    for (i = 0; i < n; i++) a[i] = i;
    parallel for (i = 0; i < n; i++) {
        a[i] = a[i] * 2;
    }
    long s = 0;
    for (i = 0; i < n; i++) s += a[i];
    print_long(s);
    free(a);
    free(partial);
    return 0;
}`

func TestParallelDOALLMatchesSequential(t *testing.T) {
	seq := run(t, parSum, Options{NumThreads: 1})
	for _, n := range []int{2, 4, 8} {
		par := run(t, parSum, Options{NumThreads: n})
		if par.Output != seq.Output {
			t.Fatalf("N=%d: output %q != sequential %q", n, par.Output, seq.Output)
		}
	}
}

func TestParallelInductionVarAfterLoop(t *testing.T) {
	src := `
int main() {
    int i;
    int a[64];
    parallel for (i = 0; i < 64; i++) { a[i] = i; }
    print_int(i);
    return 0;
}`
	for _, n := range []int{1, 3, 8} {
		res := run(t, src, Options{NumThreads: n})
		if res.Output != "64" {
			t.Fatalf("N=%d: i after loop = %q, want 64", n, res.Output)
		}
	}
}

func TestParallelStep(t *testing.T) {
	src := `
int main() {
    int i;
    int s[128];
    parallel for (i = 10; i < 100; i += 7) { s[i] = 1; }
    int c = 0;
    for (i = 0; i < 128; i++) c += s[i];
    print_int(c);
    return 0;
}`
	want := run(t, src, Options{NumThreads: 1}).Output
	got := run(t, src, Options{NumThreads: 4}).Output
	if got != want || want != "13" {
		t.Fatalf("got %q seq %q, want 13", got, want)
	}
}

func TestDoacrossOrdered(t *testing.T) {
	// An ordered DOACROSS loop: each iteration appends to a shared
	// cursor inside the ordered section, so output must be in
	// iteration order regardless of thread count. SyncWait/SyncPost
	// are inserted here via the AST directly by the sync pass in
	// normal operation; in this test the loop runs sequentially when
	// no markers exist, so we only check dynamic scheduling safety of
	// independent work.
	src := `
int main() {
    int n = 200;
    int *out = (int*)malloc(n * 4);
    int i;
    parallel doacross for (i = 0; i < n; i++) {
        out[i] = i * 3;
    }
    long s = 0;
    for (i = 0; i < n; i++) s += out[i];
    print_long(s);
    free(out);
    return 0;
}`
	want := run(t, src, Options{NumThreads: 1}).Output
	got := run(t, src, Options{NumThreads: 6}).Output
	if got != want {
		t.Fatalf("doacross output %q != %q", got, want)
	}
}

func TestForceSequential(t *testing.T) {
	res := run(t, parSum, Options{NumThreads: 8, ForceSequential: true})
	if res.Output != "999000" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestNestedParallelRunsSequentially(t *testing.T) {
	src := `
int main() {
    int i;
    int j;
    int a[16][16];
    parallel for (i = 0; i < 16; i++) {
        int jj;
        parallel for (jj = 0; jj < 16; jj++) {
            a[i][jj] = i * 16 + jj;
        }
    }
    int s = 0;
    for (i = 0; i < 16; i++) { for (j = 0; j < 16; j++) { s += a[i][j]; } }
    print_int(s);
    return 0;
}`
	res := run(t, src, Options{NumThreads: 4})
	if res.Output != "32640" {
		t.Fatalf("output = %q, want 32640", res.Output)
	}
}

func TestTidNthreads(t *testing.T) {
	src := `
int main() {
    int i;
    int *hits = (int*)malloc(__nthreads * 4);
    parallel for (i = 0; i < 64; i++) {
        hits[__tid] = hits[__tid] + 1;
    }
    int s = 0;
    for (i = 0; i < __nthreads; i++) s += hits[i];
    print_int(s);
    free(hits);
    return 0;
}`
	res := run(t, src, Options{NumThreads: 4})
	if res.Output != "64" {
		t.Fatalf("output = %q, want 64", res.Output)
	}
}

func TestHooksObserveAccesses(t *testing.T) {
	prog, err := parser.Parse("t.c", `
int main() {
    int a[4];
    int i;
    for (i = 0; i < 4; i++) a[i] = i;
    int s = 0;
    for (i = 0; i < 4; i++) s += a[i];
    return s;
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	var loads, stores, iters int
	hooks := &Hooks{
		Load:     func(site int, addr, size int64) { loads++ },
		Store:    func(site int, addr, size int64) { stores++ },
		LoopIter: func(loopID int, iter int64) { iters++ },
	}
	res, err := New(prog, info, Options{Hooks: hooks}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Exit != 6 {
		t.Fatalf("exit = %d", res.Exit)
	}
	// LoopIter fires before every condition check, including the final
	// failing one: two loops x (4 iterations + 1) = 10.
	if loads == 0 || stores == 0 || iters != 10 {
		t.Fatalf("loads=%d stores=%d iters=%d", loads, stores, iters)
	}
}

func TestCounters(t *testing.T) {
	res := run(t, parSum, Options{NumThreads: 4})
	if res.Counters[CatWork] == 0 {
		t.Fatalf("no work counted")
	}
	if res.Counters[CatSync] == 0 {
		t.Fatalf("no scheduling ops counted")
	}
}

func TestMemStats(t *testing.T) {
	res := run(t, `
int main() {
    int *p = (int*)malloc(1000);
    free(p);
    return 0;
}`, Options{})
	if res.MemStats.HighWater == 0 {
		t.Fatalf("high water = 0")
	}
}
