package interp

import (
	"strings"
	"testing"
	"time"
)

func TestFloat32Rounding(t *testing.T) {
	res := run(t, `
int main() {
    float f = 0.1;
    double d = 0.1;
    // float has fewer bits: the difference is visible after scaling.
    double diff = (double)f - d;
    if (diff < 0.0) { diff = 0.0 - diff; }
    print_int(diff > 0.0000000001);
    print_int(diff < 0.0000001);
    return 0;
}`, Options{})
	if res.Output != "11" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCharPointerWalk(t *testing.T) {
	res := run(t, `
int main() {
    char *s = "abcdef";
    char *p = s;
    int n = 0;
    while (*p != 0) {
        n++;
        p++;
    }
    print_int(n);
    print_long(p - s);
    return 0;
}`, Options{})
	if res.Output != "66" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCondWithPointers(t *testing.T) {
	res := run(t, `
int main() {
    int a = 10;
    int b = 20;
    int c = 1;
    int *p = c ? &a : &b;
    *p = 99;
    print_int(a);
    print_int(b);
    return 0;
}`, Options{})
	if res.Output != "9920" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestDeepRecursionWithinStack(t *testing.T) {
	res := run(t, `
int depth(int n) {
    if (n == 0) { return 0; }
    return 1 + depth(n - 1);
}
int main() {
    print_int(depth(2000));
    return 0;
}`, Options{})
	if res.Output != "2000" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	err := runErr(t, `
int boom(int n) {
    int pad[512];
    pad[0] = n;
    return boom(n + 1) + pad[0];
}
int main() { return boom(0); }`, Options{StackSize: 1 << 16})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfMemoryDetected(t *testing.T) {
	err := runErr(t, `
int main() {
    long *p = (long*)malloc(99999999);
    p[0] = 1;
    return 0;
}`, Options{MemSize: 1 << 20})
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelDownwardStep(t *testing.T) {
	src := `
int main() {
    int i;
    int a[64];
    parallel for (i = 63; i >= 0; i += -1) {
        a[i] = i * 2;
    }
    long s = 0;
    for (i = 0; i < 64; i++) { s += a[i]; }
    print_long(s);
    return 0;
}`
	want := run(t, src, Options{NumThreads: 1}).Output
	got := run(t, src, Options{NumThreads: 4}).Output
	if want != got || want != "4032" {
		t.Fatalf("want %q got %q", want, got)
	}
}

func TestParallelNEQCondition(t *testing.T) {
	src := `
int main() {
    int i;
    int a[32];
    parallel for (i = 0; i != 32; i++) {
        a[i] = 1;
    }
    int s = 0;
    for (i = 0; i < 32; i++) { s += a[i]; }
    print_int(s);
    return 0;
}`
	got := run(t, src, Options{NumThreads: 3}).Output
	if got != "32" {
		t.Fatalf("got %q", got)
	}
}

func TestParallelZeroIterations(t *testing.T) {
	src := `
int main() {
    int i;
    int a[4];
    parallel for (i = 5; i < 5; i++) {
        a[0] = 1;
    }
    print_int(i);
    print_int(a[0]);
    return 0;
}`
	got := run(t, src, Options{NumThreads: 4}).Output
	if got != "50" {
		t.Fatalf("got %q", got)
	}
}

func TestSizeofForms(t *testing.T) {
	res := run(t, `
struct s { int a; double b; };
int main() {
    struct s v;
    int arr[10];
    print_long(sizeof(int));
    print_char(' ');
    print_long(sizeof(struct s));
    print_char(' ');
    print_long(sizeof(arr));
    print_char(' ');
    print_long(sizeof(v));
    print_char(' ');
    print_long(sizeof(char*));
    return 0;
}`, Options{})
	if res.Output != "4 16 40 16 8" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStringInterning(t *testing.T) {
	res := run(t, `
int main() {
    char *a = "same";
    char *b = "same";
    print_int(a == b);
    return 0;
}`, Options{})
	if res.Output != "1" {
		t.Fatalf("interned literals should share storage: %q", res.Output)
	}
}

func TestStructReturnByValue(t *testing.T) {
	res := run(t, `
struct pair { int a; int b; };
struct pair mk(int x) {
    struct pair p;
    p.a = x;
    p.b = x * 2;
    return p;
}
int main() {
    struct pair q = mk(21);
    struct pair r;
    r = mk(5);
    print_int(q.a + q.b + r.a + r.b);
    print_int(mk(3).b);
    return 0;
}`, Options{})
	if res.Output != "786" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStructParamByValue(t *testing.T) {
	res := run(t, `
struct pair { int a; int b; };
int sum(struct pair p) {
    p.a = 999; // must not affect the caller's copy
    return p.a + p.b;
}
int main() {
    struct pair v;
    v.a = 1;
    v.b = 2;
    int s = sum(v);
    print_int(v.a);
    print_int(s);
    return 0;
}`, Options{})
	if res.Output != "11001" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestDoWhileAndBreakDepth(t *testing.T) {
	res := run(t, `
int main() {
    int i = 0;
    int j;
    int hits = 0;
    do {
        for (j = 0; j < 10; j++) {
            if (j == 3) { break; }
            hits++;
        }
        i++;
    } while (i < 4);
    print_int(hits);
    return 0;
}`, Options{})
	if res.Output != "12" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestTraceOrderedSplit(t *testing.T) {
	// A DOACROSS body with explicit sync markers must record the
	// ordered-section split in its trace.
	prog := `
int main() {
    long acc = 0;
    int *buf = (int*)malloc(64);
    int i;
    parallel doacross for (i = 0; i < 8; i++) {
        int k;
        int s = 0;
        for (k = 0; k < 16; k++) { s += i * k; }
        __sync_wait();
        acc = acc * 3 + s;
        __sync_post();
        buf[i %% 16] = s;
    }
    print_long(acc);
    free(buf);
    return 0;
}`
	res := run(t, strings.ReplaceAll(prog, "%%", "%"), Options{TraceParallel: true, NumThreads: 4})
	if len(res.Traces) != 1 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	tr := res.Traces[0]
	if len(tr.Iters) != 8 {
		t.Fatalf("iterations = %d", len(tr.Iters))
	}
	for i, c := range tr.Iters {
		if c.Pre <= 0 || c.Ordered <= 0 || c.Post <= 0 {
			t.Fatalf("iter %d: bad split %+v", i, c)
		}
	}
}

func TestMaxOpsGuard(t *testing.T) {
	err := runErr(t, `
int main() {
    while (1) { }
    return 0;
}`, Options{MaxOps: 10000})
	if err == nil || !strings.Contains(err.Error(), "operation budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrintBuiltins(t *testing.T) {
	res := run(t, `
int main() {
    print_double(0.0 - 2.5);
    print_char(' ');
    print_int(abs(-7));
    print_char(' ');
    print_double(fabs(0.0 - 1.25));
    print_char(' ');
    print_long(-9000000000);
    return 0;
}`, Options{})
	if res.Output != "-2.500000 7 1.250000 -9000000000" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestMemsetPatterns(t *testing.T) {
	res := run(t, `
int main() {
    int buf[4];
    memset(buf, 255, 16);
    print_int(buf[3]);
    memset(buf, 0, 16);
    print_int(buf[0] + buf[3]);
    memset(buf, 1, 0);
    print_int(buf[0]);
    return 0;
}`, Options{})
	if res.Output != "-100" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestUnsignedCharRoundTrip(t *testing.T) {
	res := run(t, `
int main() {
    unsigned char b[4];
    int i;
    for (i = 0; i < 4; i++) { b[i] = (unsigned char)(250 + i); }
    int s = 0;
    for (i = 0; i < 4; i++) { s += b[i]; }
    print_int(s);
    return 0;
}`, Options{})
	if res.Output != "1006" {
		t.Fatalf("output = %q", res.Output)
	}
}

// Regression test: a nested parallel loop (executed sequentially by
// each worker) must not corrupt the worker's ordered-section ticket in
// the enclosing DOACROSS loop. Before the fix, execSeqFor's DOACROSS
// bookkeeping overwrote t.curIter and the __sync_wait below deadlocked
// or misordered.
func TestNestedParallelInsideOrderedDoacross(t *testing.T) {
	src := `
int main() {
    long chain = 0;
    int i;
    int scratch[96];
    parallel doacross for (i = 0; i < 12; i++) {
        int j;
        parallel doacross for (j = 0; j < 8; j++) {
            scratch[i * 8 + j] = i + j;
        }
        int s = 0;
        for (j = 0; j < 8; j++) { s += scratch[i * 8 + j]; }
        __sync_wait();
        chain = chain * 31 + s;
        __sync_post();
    }
    print_long(chain);
    return 0;
}`
	want := run(t, src, Options{NumThreads: 1}).Output
	done := make(chan string, 1)
	go func() {
		done <- run(t, src, Options{NumThreads: 4}).Output
	}()
	select {
	case got := <-done:
		if got != want {
			t.Fatalf("ordered chain diverged: %q vs %q", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("deadlock: nested loop corrupted the ordered-section ticket")
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	res := run(t, `
int main() {
    int a = 100;
    a -= 30;  print_int(a); print_char(' ');
    a *= 2;   print_int(a); print_char(' ');
    a /= 7;   print_int(a); print_char(' ');
    a %= 6;   print_int(a); print_char(' ');
    a <<= 4;  print_int(a); print_char(' ');
    a >>= 2;  print_int(a); print_char(' ');
    a |= 9;   print_int(a); print_char(' ');
    a &= 12;  print_int(a); print_char(' ');
    a ^= 5;   print_int(a); print_char(' ');
    double d = 10.0;
    d /= 4.0;
    d *= 3.0;
    d -= 0.5;
    d += 0.25;
    print_double(d);
    unsigned int u = 4000000000;
    u /= 3;
    u %= 1000;
    print_char(' ');
    print_long((long)u);
    int *base = (int*)malloc(16);
    int *p = base;
    p += 2;
    p -= 1;
    print_char(' ');
    print_long(p - base);
    free(base);
    return 0;
}`, Options{})
	want := "70 140 20 2 32 8 9 8 13 7.250000 333 1"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestCompoundDivModByZero(t *testing.T) {
	for _, op := range []string{"/=", "%="} {
		err := runErr(t, `
int main() {
    int a = 5;
    int z = 0;
    a `+op+` z;
    return a;
}`, Options{})
		if err == nil {
			t.Fatalf("%s by zero not detected", op)
		}
	}
}

func TestFloatCompoundOnUnsigned(t *testing.T) {
	res := run(t, `
int main() {
    unsigned int u = 3000000000;
    double d = 0.0;
    d += u;          // unsigned-to-float must not go negative
    print_int(d > 2999999999.0);
    float f = u;
    print_int(f > 0.0);
    return 0;
}`, Options{})
	if res.Output != "11" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestParallelLEQAndGEQBounds(t *testing.T) {
	src := `
int main() {
    int i;
    int a[64];
    parallel for (i = 0; i <= 20; i++) { a[i] = 1; }
    int j;
    parallel for (j = 40; j >= 25; j += -1) { a[j] = 1; }
    int s = 0;
    for (i = 0; i < 64; i++) { s += a[i]; }
    print_int(s);
    return 0;
}`
	want := run(t, src, Options{NumThreads: 1}).Output
	got := run(t, src, Options{NumThreads: 5}).Output
	if want != got || want != "37" {
		t.Fatalf("want %q got %q", want, got)
	}
}

func TestParallelBoundOnLeft(t *testing.T) {
	// Mirrored comparison: bound on the left of the induction variable.
	src := `
int main() {
    int i;
    int a[32];
    parallel for (i = 0; 32 > i; i++) { a[i] = 2; }
    int s = 0;
    for (i = 0; i < 32; i++) { s += a[i]; }
    print_int(s);
    return 0;
}`
	got := run(t, src, Options{NumThreads: 4}).Output
	if got != "64" {
		t.Fatalf("got %q", got)
	}
}
