package interp

import (
	"sync/atomic"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/mem"
	"gdsx/internal/token"
)

// thread is one simulated execution context: a thread index, a private
// stack region inside the shared memory, and instruction counters.
type thread struct {
	m   *Machine
	tid int

	stackBase int64
	sp        int64
	stackEnd  int64

	counters [NumCats]int64
	memOps   int64
	memMiss  int64

	// cacheTags models a 64 KiB 4-way set-associative per-thread cache
	// (256 sets x 4 ways of 64-byte lines, LRU within a set). Accesses
	// that miss it count as memory-system traffic for the schedule
	// simulator's bandwidth bound; hits are core-local.
	// Entry = line address + 1 (0 = empty); way 0 is most recent.
	cacheTags [256][4]int64

	// ts is non-nil while tracing a parallel loop instance.
	ts *traceState

	// order is non-nil while executing iterations of a DOACROSS loop;
	// curIter is the 0-based iteration the thread is executing and
	// posted records whether the ordered section was already signalled.
	order   *orderState
	curIter int64
	posted  bool

	// inOrdered is set between SyncWait and SyncPost, so the access
	// monitor can tell synchronized accesses apart.
	inOrdered bool

	// cancel is shared by all workers of a parallel region; a worker
	// that faults sets it so its siblings stop at the next safe point.
	cancel *atomic.Bool

	// retVal holds the value of an executed return statement.
	retVal value

	// parallel marks threads executing inside a parallel loop; nested
	// parallel loops then run sequentially, as with non-nested OpenMP.
	parallel bool

	// isMain gates the profiling hooks to sequential execution.
	isMain bool
}

func (m *Machine) newThread(tid int) (*thread, error) {
	base, err := m.mem.Alloc(m.opts.StackSize, 0, "stack")
	if err != nil {
		return nil, err
	}
	return &thread{
		m: m, tid: tid,
		stackBase: base, sp: base, stackEnd: base + m.opts.StackSize,
		isMain: tid == 0 && !m.inParallel,
	}, nil
}

// release frees the thread's stack region.
func (t *thread) release() {
	_ = t.m.mem.Free(t.stackBase)
}

// allocTid routes this thread's heap allocations: workers inside a
// parallel region allocate from their per-thread metadata arena
// (mem.AllocOn), sequential execution takes the allocator's global
// path — keeping sequential runs bit-identical to the unsharded
// allocator.
func (t *thread) allocTid() int {
	if t.parallel {
		return t.tid
	}
	return -1
}

// alloca reserves size bytes on the thread stack, 8-byte aligned.
func (t *thread) alloca(size int64, pos token.Pos) int64 {
	size = (size + 7) &^ 7
	if t.sp+size > t.stackEnd {
		rterrf(pos, "stack overflow (%d-byte frame, %d free)", size, t.stackEnd-t.sp)
	}
	a := t.sp
	t.sp += size
	// Stack slots are reused; zero them so programs see deterministic
	// values, mirroring the allocator's zeroing of heap blocks. clear
	// compiles to a runtime memclr instead of a byte loop. The write
	// bypasses the Store paths, so tell the region snapshot (if one is
	// active) before destroying the bytes.
	t.m.mem.NoteWrite(a, size)
	clear(t.m.mem.Bytes(a, size))
	return a
}

// frame is one function activation. slots maps Symbol.Index of the
// function's params and locals to their memory addresses.
type frame struct {
	fn    *ast.FuncDecl
	slots []int64
	// regs holds the Go-native values of register-promoted scalars,
	// indexed like slots. Allocated by callCompiled only when the
	// optimizing compiler promoted something in this function; the
	// promoted closures keep the backing memory in sync (writes go
	// through), so regs[i] always equals a typed load of slots[i].
	regs []value
}

// bindArgs pushes a fresh activation record for fn and copies the
// already-evaluated argument values into the parameter slots. Struct
// arguments arrive as addresses and are copied by value.
func (t *thread) bindArgs(fn *ast.FuncDecl, args []value, pos token.Pos) *frame {
	f := &frame{fn: fn, slots: make([]int64, fn.NumSlots)}
	for i, p := range fn.Params {
		size := p.Type.Size()
		addr := t.alloca(size, pos)
		f.slots[p.Sym.Index] = addr
		if p.Type.Kind == ctypes.Struct {
			t.m.mem.Memcpy(addr, args[i].I, size)
		} else {
			t.storeTyped(addr, p.Type, args[i])
		}
		// Argument binding defines the parameter slot (see the matching
		// definition site created by sema).
		if h := t.m.opts.Hooks; h != nil {
			if h.Store != nil && t.isMain {
				h.Store(p.Acc.Store, addr, size)
			}
			if h.Observe != nil && t.observeOK(h, addr, size) {
				h.Observe(Access{Site: p.Acc.Store, Addr: addr, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
			}
		}
	}
	return f
}

// finishCall pops the activation record and materializes the call's
// result value from the executed body's control outcome.
func (t *thread) finishCall(fn *ast.FuncDecl, mark int64, c ctrl, pos token.Pos) value {
	if c == ctrlReturn && fn.Ret.Kind == ctypes.Struct {
		// The returned struct may live in the callee frame; copy it
		// out through a buffer before the stack region is reused.
		size := fn.Ret.Size()
		buf := append([]byte(nil), t.m.mem.Bytes(t.retVal.I, size)...)
		t.sp = mark
		dst := t.alloca(size, pos)
		copy(t.m.mem.Bytes(dst, size), buf)
		return iv(dst)
	}
	t.sp = mark
	if c == ctrlReturn {
		return t.retVal
	}
	// Falling off the end of a non-void function yields 0, which
	// matches what the benchmarks expect from C's main.
	return value{}
}

// call invokes fn with already-evaluated argument values under the
// tree-walking engine.
func (t *thread) call(fn *ast.FuncDecl, args []value, pos token.Pos) value {
	mark := t.sp
	f := t.bindArgs(fn, args, pos)
	c := t.execBlock(f, fn.Body)
	return t.finishCall(fn, mark, c, pos)
}

// callCompiled invokes a closure-compiled function with
// already-evaluated argument values.
func (t *thread) callCompiled(cf *compiledFunc, args []value, pos token.Pos) value {
	mark := t.sp
	f := t.bindArgs(cf.fn, args, pos)
	if cf.nregs > 0 {
		f.regs = make([]value, cf.nregs)
		// Promoted parameters start life holding their bound argument
		// (already converted to the parameter type by the call site).
		for _, pp := range cf.pparams {
			f.regs[pp.slot] = args[pp.arg]
		}
	}
	c := cf.body(t, f)
	return t.finishCall(cf.fn, mark, c, pos)
}

func (t *thread) count(cat int, n int64) { t.counters[cat] += n }

// observeOK reports whether the hook chain's Observe wants an event
// from t for [addr, addr+size). Two concessions narrow the feed (see
// Hooks.RegionOnly and Hooks.PrivateStacks): sequential-context events
// when every observing layer is region-only, and a worker's accesses
// to its own stack when every observing layer waived them. Skipped
// own-stack events include the matching definition events — the
// addresses are never checked, so their history never needs resetting.
func (t *thread) observeOK(h *Hooks, addr, size int64) bool {
	if h.RegionOnly && !t.parallel {
		return false
	}
	if h.PrivateStacks && t.parallel && addr >= t.stackBase && addr+size <= t.stackEnd {
		return false
	}
	return true
}

// checkAccess validates a memory access against the reserved null page
// and the capacity of the simulated memory, raising a positioned
// runtime error instead of crashing the interpreter. It runs after
// Redirect, on the address the program actually touches.
func (t *thread) checkAccess(pos token.Pos, addr, size int64) {
	if addr >= mem.NullGuard && addr+size <= t.m.mem.Cap() && size >= 0 {
		return
	}
	if addr >= 0 && addr < mem.NullGuard {
		rterrf(pos, "null pointer dereference (address %d)", addr)
	}
	rterrf(pos, "out-of-bounds access at address %d (%d bytes, memory capacity %d)",
		addr, size, t.m.mem.Cap())
}
