package interp

// Engine selects how a Machine executes MiniC code.
//
// The tree-walking engine (the original implementation in eval.go and
// exec.go) re-dispatches on AST node kind and re-resolves names on
// every evaluation. The closure-compiling engine walks each function
// body once, after sema, and produces a tree of pre-resolved Go
// closures: variables become fixed frame-slot or global-table indices,
// types, sizes and conversion paths are chosen at compile time,
// constant subtrees fold to a single closure, and the per-node switch
// disappears from the hot path.
//
// Both engines execute against the same thread, frame and Machine
// structures, fire the profiling Hooks at exactly the same points with
// the same access-site IDs, and maintain identical work/sync/wait
// counters and cache-model traffic, so every consumer — the dependence
// profiler, the runtime-privatization baseline, the trace-driven
// schedule simulator — observes the same execution either way.
type Engine int

// Engines. The zero value is the compiled engine, so it is the
// default everywhere an Options struct is built without setting one.
const (
	// EngineCompiled executes pre-compiled closure trees with the
	// optimization pipeline applied (default).
	EngineCompiled Engine = iota
	// EngineTree walks the AST directly (the reference implementation).
	EngineTree
	// EngineCompiledNoOpt is the compiled engine with the optimization
	// pipeline disabled (register promotion, superinstruction fusion,
	// site specialization). Machine construction normalizes it to
	// EngineCompiled with Options.Opt = OptNone; it exists so command
	// flags and tests can name the unoptimized configuration.
	EngineCompiledNoOpt
)

// String names the engine as accepted by the -engine command flags.
func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineCompiledNoOpt:
		return "compiled-noopt"
	}
	return "compiled"
}

// EngineFromString parses an -engine flag value. Unknown names report
// ok == false.
func EngineFromString(s string) (Engine, bool) {
	switch s {
	case "", "compiled":
		return EngineCompiled, true
	case "tree":
		return EngineTree, true
	case "compiled-noopt":
		return EngineCompiledNoOpt, true
	}
	return EngineCompiled, false
}
