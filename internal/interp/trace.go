package interp

import "gdsx/internal/ast"

// IterCost is the simulated cost of one loop iteration, in interpreter
// operations ("ops"). For ordered DOACROSS bodies the cost splits into
// the part before the ordered section, the ordered section itself, and
// the rest; DOALL iterations put everything in Pre. Mem counts the
// memory accesses performed, which the schedule simulator uses for its
// bandwidth bound.
type IterCost struct {
	Pre     int64
	Ordered int64
	Post    int64
	Mem     int64 // cache-missing accesses (DRAM traffic)
	MemAll  int64 // all memory accesses (shared-cache/bus traffic)
}

// Total returns the full op cost of the iteration.
func (c IterCost) Total() int64 { return c.Pre + c.Ordered + c.Post }

// LoopTrace records one dynamic execution (instance) of a parallel
// loop under TraceParallel: the loop kind and the per-iteration costs,
// in iteration order. The schedule simulator replays it for any thread
// count.
type LoopTrace struct {
	LoopID int
	Kind   ast.ParKind
	Iters  []IterCost
}

// Ops returns the total op cost across all iterations.
func (tr *LoopTrace) Ops() int64 {
	var s int64
	for _, c := range tr.Iters {
		s += c.Total()
	}
	return s
}

// traceState is the per-thread bookkeeping while tracing a parallel
// loop instance.
type traceState struct {
	trace       *LoopTrace
	iterStart   int64 // CatWork snapshot at iteration start
	memStart    int64
	memAllStart int64
	waitMark    int64 // snapshot at __sync_wait, -1 if not seen
	postMark    int64 // snapshot at __sync_post, -1 if not seen
}

// beginIter snapshots the counters at the start of an iteration.
func (ts *traceState) beginIter(t *thread) {
	ts.iterStart = t.counters[CatWork]
	ts.memStart = t.memMiss
	ts.memAllStart = t.memOps
	ts.waitMark = -1
	ts.postMark = -1
}

// endIter finalizes the iteration's cost record.
func (ts *traceState) endIter(t *thread) {
	total := t.counters[CatWork] - ts.iterStart
	mem := t.memMiss - ts.memStart
	memAll := t.memOps - ts.memAllStart
	var c IterCost
	switch {
	case ts.waitMark >= 0 && ts.postMark >= 0:
		c.Pre = ts.waitMark - ts.iterStart
		c.Ordered = ts.postMark - ts.waitMark
		c.Post = total - c.Pre - c.Ordered
	case ts.waitMark >= 0:
		// Wait without post: the runtime auto-posts at iteration end.
		c.Pre = ts.waitMark - ts.iterStart
		c.Ordered = total - c.Pre
	default:
		c.Pre = total
	}
	c.Mem = mem
	c.MemAll = memAll
	ts.trace.Iters = append(ts.trace.Iters, c)
}
