package interp

import (
	"math"

	"gdsx/internal/ast"
)

// evalCall dispatches user function calls and runtime builtins.
func (t *thread) evalCall(f *frame, x *ast.Call) value {
	sym := x.Fun.Sym
	if sym.Kind == ast.SymFunc {
		args := make([]value, len(x.Args))
		for i, a := range x.Args {
			args[i] = convert(t.eval(f, a), a.ExprType(), sym.Type.Params[i])
		}
		return t.call(sym.Fn, args, x.Pos())
	}

	arg := func(i int) value { return t.eval(f, x.Args[i]) }

	// allocDef reports the definition of a fresh heap block to the
	// profiler (see AccessSite.IsDef).
	allocDef := func(base, size int64) {
		if h := t.m.opts.Hooks; h != nil {
			if h.Store != nil && t.isMain {
				h.Store(x.Acc.Store, base, size)
			}
			if h.Observe != nil && t.observeOK(h, base, size) {
				h.Observe(Access{Site: x.Acc.Store, Addr: base, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
			}
		}
	}

	switch sym.Builtin {
	case ast.BMalloc:
		n := arg(0).I
		a, err := t.m.mem.AllocOn(t.allocTid(), n, x.AllocSite, "")
		if err != nil {
			rterrf(x.Pos(), "%v", err)
		}
		allocDef(a, n)
		return iv(a)
	case ast.BCalloc:
		n := arg(0).I * arg(1).I
		a, err := t.m.mem.AllocOn(t.allocTid(), n, x.AllocSite, "")
		if err != nil {
			rterrf(x.Pos(), "%v", err)
		}
		allocDef(a, n)
		return iv(a)
	case ast.BRealloc:
		p := arg(0).I
		n := arg(1).I
		if h := t.m.opts.Hooks; h != nil && h.Free != nil && p != 0 {
			h.Free(p)
		}
		a, err := t.m.mem.ReallocOn(t.allocTid(), p, n, x.AllocSite)
		if err != nil {
			rterrf(x.Pos(), "%v", err)
		}
		allocDef(a, n)
		return iv(a)
	case ast.BFree:
		p := arg(0).I
		if h := t.m.opts.Hooks; h != nil && h.Free != nil && p != 0 {
			h.Free(p)
		}
		if err := t.m.mem.Free(p); err != nil {
			rterrf(x.Pos(), "%v", err)
		}
		return value{}
	case ast.BMemset:
		p, v, n := arg(0).I, arg(1).I, arg(2).I
		if n > 0 {
			t.checkAccess(x.Pos(), p, n)
			t.m.mem.Memset(p, byte(v), n)
		}
		return value{}
	case ast.BMemcpy:
		d, s, n := arg(0).I, arg(1).I, arg(2).I
		if n > 0 {
			t.checkAccess(x.Pos(), s, n)
			t.checkAccess(x.Pos(), d, n)
			t.m.mem.Memcpy(d, s, n)
		}
		return value{}
	case ast.BExpandMalloc:
		// Guard marker emitted by the expansion pass in place of an
		// expanded allocation: span bytes per thread copy, esz = element
		// size for interleaved layout (0 = bonded). Allocates all
		// NumThreads copies in one block, like the plain expansion.
		span, esz := arg(0).I, arg(1).I
		n := span * int64(t.m.opts.NumThreads)
		a, err := t.m.mem.AllocOn(t.allocTid(), n, x.AllocSite, "")
		if err != nil {
			rterrf(x.Pos(), "%v", err)
		}
		if h := t.m.opts.Hooks; h != nil && h.Expand != nil {
			h.Expand(a, span, esz)
		}
		allocDef(a, n)
		return iv(a)
	case ast.BExpandNote:
		// Guard marker after an expanded stack/global object: notes the
		// extent of its thread copies without allocating.
		base, span, esz := arg(0).I, arg(1).I, arg(2).I
		if h := t.m.opts.Hooks; h != nil && h.Expand != nil {
			h.Expand(base, span, esz)
		}
		return value{}
	case ast.BCommNote:
		// Commutative-update marker: arms per-thread privatization of
		// [base, base+span) for the next parallel region, merging under
		// op at region exit. Inert without a Commute consumer.
		base, span, esz, op := arg(0).I, arg(1).I, arg(2).I, arg(3).I
		if h := t.m.opts.Hooks; h != nil && h.Commute != nil {
			h.Commute(base, span, esz, op)
		}
		return value{}
	case ast.BPrintInt:
		t.m.printf("%d", arg(0).I)
		return value{}
	case ast.BPrintLong:
		t.m.printf("%d", arg(0).I)
		return value{}
	case ast.BPrintDouble:
		t.m.printf("%.6f", toFloat(arg(0), x.Args[0].ExprType()))
		return value{}
	case ast.BPrintChar:
		t.m.printf("%c", rune(arg(0).I))
		return value{}
	case ast.BPrintStr:
		p := arg(0).I
		// Read up to the NUL terminator.
		var bs []byte
		for {
			t.checkAccess(x.Pos(), p, 1)
			b := byte(t.m.mem.Load(p, 1))
			if b == 0 {
				break
			}
			bs = append(bs, b)
			p++
		}
		t.m.printf("%s", bs)
		return value{}
	case ast.BSqrt:
		return fv(math.Sqrt(toFloat(arg(0), x.Args[0].ExprType())))
	case ast.BFabs:
		return fv(math.Abs(toFloat(arg(0), x.Args[0].ExprType())))
	case ast.BAbs:
		v := arg(0).I
		if v < 0 {
			v = -v
		}
		return iv(v)
	}
	rterrf(x.Pos(), "unknown builtin %s", sym.Name)
	return value{}
}
