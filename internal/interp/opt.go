// Optimization pipeline for the compiled engine.
//
// compileProgram runs three passes between sema and closure emission,
// all off when Options.Opt == OptNone (the compiled-noopt engine):
//
//  1. Scalar register promotion (opt_promote.go): locals whose address
//     is never taken live in Go-native frame slots (frame.regs) in
//     addition to their simulated-memory alloca. Reads come from the
//     register; writes update the register and write through to the
//     backing bytes, so simulated memory stays byte-identical to an
//     unoptimized run and every tree-walked or unfused read remains
//     correct. Promotion is disabled whenever an observer could see
//     the difference: per-access hooks, parallel tracing, or an
//     attached Observer (whose mem_ops metric counts cache touches).
//
//  2. Superinstruction fusion (opt_fuse.go): constant and promoted
//     operands are folded into their consumers — indexed addressing
//     (base + i*scale), binary operands, loop compare-and-branch,
//     compound assignment and ++/-- on promoted slots — eliminating
//     closure indirections while preserving exact work-counter totals
//     and fault order.
//
//  3. Profile-guided site specialization (opt_fuse.go): with a
//     SiteProfile attached, the top-K hottest access sites get a
//     single flattened accessor closure (cache touch + bounds check +
//     direct LoadN/StoreN) instead of the generic two-closure chain;
//     every other site keeps the generic path.
package interp

import (
	"sort"

	"gdsx/internal/obs"
)

// OptLevel selects how much of the optimization pipeline the compiled
// engine applies. The zero value is the full pipeline.
type OptLevel int

const (
	// OptDefault applies the full pipeline (promotion, fusion, and —
	// when a profile is attached — site specialization).
	OptDefault OptLevel = iota
	// OptNone compiles exactly the closures the engine emitted before
	// the pipeline existed; -engine compiled-noopt selects this.
	OptNone
)

// DefaultProfileTopK is how many of the hottest sites a SiteProfile
// specializes when TopK is left zero.
const DefaultProfileTopK = 16

// SiteProfile carries per-access-site weights from a previous profiled
// run (gdsx pipeline -hotspots-json). The compiler specializes the
// TopK heaviest sites; everything else keeps the generic accessors.
type SiteProfile struct {
	// Weights maps an access-site ID to its observed load+store count.
	Weights map[int]int64
	// TopK bounds how many sites are specialized (0 means
	// DefaultProfileTopK).
	TopK int
}

// SiteProfileFromReports builds a profile from the hot-site reports an
// Observer produces, merging expansion copies of the same site.
func SiteProfileFromReports(reps []obs.SiteReport) *SiteProfile {
	p := &SiteProfile{Weights: map[int]int64{}}
	for _, r := range reps {
		p.Weights[r.Site] += r.Loads + r.Stores
	}
	return p
}

// hotSet returns the TopK heaviest sites. Ties break toward the lower
// site ID so the set is deterministic.
func (p *SiteProfile) hotSet() map[int]bool {
	if p == nil || len(p.Weights) == 0 {
		return nil
	}
	k := p.TopK
	if k <= 0 {
		k = DefaultProfileTopK
	}
	sites := make([]int, 0, len(p.Weights))
	for s := range p.Weights {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		wi, wj := p.Weights[sites[i]], p.Weights[sites[j]]
		if wi != wj {
			return wi > wj
		}
		return sites[i] < sites[j]
	})
	if len(sites) > k {
		sites = sites[:k]
	}
	hot := make(map[int]bool, len(sites))
	for _, s := range sites {
		hot[s] = true
	}
	return hot
}

// optConfig is the compiler's resolved view of the pipeline switches.
type optConfig struct {
	// fuse enables superinstruction fusion and constant-operand
	// folding. Fusion preserves every observable (tick totals, cache
	// traffic, hook events, fault positions), so it only turns off at
	// OptNone.
	fuse bool
	// promote enables scalar register promotion. Promoted reads skip
	// the cache model, so promotion additionally requires that nothing
	// observes per-access state: no access hooks, no parallel tracing,
	// no attached Observer.
	promote bool
	// hot is the set of access sites to specialize, nil without a
	// profile.
	hot map[int]bool
}

func newOptConfig(m *Machine) optConfig {
	if m.opts.Opt == OptNone {
		return optConfig{}
	}
	cfg := optConfig{fuse: true}
	// An access chain that waived both sequential-context events and
	// own-stack worker events (the guard monitor) keeps promotion: the
	// scalars promotion hides are exactly frame slots — sequential-
	// context ones under RegionOnly, worker-own-stack ones (helpers
	// called from loop bodies) under PrivateStacks.
	cfg.promote = (m.accessHooks == nil ||
		(m.accessHooks.RegionOnly && m.accessHooks.PrivateStacks)) &&
		!m.opts.TraceParallel && m.opts.Obs == nil
	if m.accessHooks == nil {
		cfg.hot = m.opts.OptProfile.hotSet()
	}
	return cfg
}
