package interp

// Table-driven tests for the scalar conversion helpers. These pin the
// C conversion semantics both execution engines rely on: convC (the
// compiled engine's specialization of convert) is checked against the
// same tables via compile.go's unit under test being identical by
// construction, so the tables here are the single source of truth for
// what a MiniC cast does.

import (
	"math"
	"testing"

	"gdsx/internal/ctypes"
)

func TestTruncInt(t *testing.T) {
	tests := []struct {
		name string
		in   int64
		ty   *ctypes.Type
		want int64
	}{
		{"char identity", 42, ctypes.CharType, 42},
		{"char wraps", 200, ctypes.CharType, -56},
		{"char negative", -1, ctypes.CharType, -1},
		{"char sign extend", 0x180, ctypes.CharType, -128},
		{"uchar wraps", 200, ctypes.UCharType, 200},
		{"uchar zero extend", -1, ctypes.UCharType, 255},
		{"uchar masks high bits", 0x1ff, ctypes.UCharType, 0xff},
		{"short identity", -30000, ctypes.ShortType, -30000},
		{"short wraps", 0x8000, ctypes.ShortType, -32768},
		{"ushort zero extend", -1, ctypes.UShortType, 65535},
		{"int identity", -2000000000, ctypes.IntType, -2000000000},
		{"int wraps", 1 << 31, ctypes.IntType, math.MinInt32},
		{"int wraps large", 0x1_0000_0001, ctypes.IntType, 1},
		{"uint zero extend", -1, ctypes.UIntType, math.MaxUint32},
		{"uint masks", 0x1_2345_6789, ctypes.UIntType, 0x2345_6789},
		{"long identity", math.MinInt64, ctypes.LongType, math.MinInt64},
		{"ulong identity", -1, ctypes.ULongType, -1}, // 64-bit: representation unchanged
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := truncInt(tc.in, tc.ty)
			if got.I != tc.want {
				t.Errorf("truncInt(%d, %s) = %+v, want I=%d", tc.in, tc.ty, got, tc.want)
			}
		})
	}
}

func TestConvert(t *testing.T) {
	intPtr := ctypes.PointerTo(ctypes.IntType)
	arr := ctypes.ArrayOf(ctypes.IntType, 4)
	tests := []struct {
		name     string
		in       value
		from, to *ctypes.Type
		want     value
	}{
		{"nil types pass through", iv(7), nil, nil, iv(7)},
		{"array decays unchanged", iv(1024), arr, intPtr, iv(1024)},

		// Float-to-float: double→float rounds through float32.
		{"double to float rounds", fv(1.1), ctypes.DoubleType, ctypes.FloatType,
			fv(float64(float32(1.1)))},
		{"float to double identity", fv(2.5), ctypes.FloatType, ctypes.DoubleType, fv(2.5)},

		// Integer-to-float: signedness of the source decides.
		{"int to double", iv(-3), ctypes.IntType, ctypes.DoubleType, fv(-3)},
		{"ulong to double is unsigned", iv(-1), ctypes.ULongType, ctypes.DoubleType,
			fv(float64(uint64(math.MaxUint64)))},
		{"uint to float", iv(1 << 31), ctypes.UIntType, ctypes.FloatType, fv(1 << 31)},

		// Float-to-integer: C truncation toward zero, then width.
		{"double to int truncates", fv(3.99), ctypes.DoubleType, ctypes.IntType, iv(3)},
		{"double to int negative", fv(-3.99), ctypes.DoubleType, ctypes.IntType, iv(-3)},
		{"double to char wraps", fv(300), ctypes.DoubleType, ctypes.CharType, iv(44)},
		{"double to uchar wraps", fv(300), ctypes.DoubleType, ctypes.UCharType, iv(44)},

		// Integer-to-integer: width and signedness of the target.
		{"long to char", iv(0x1234_5678_9abc_def0), ctypes.LongType, ctypes.CharType,
			iv(-16)}, // low byte 0xf0 sign-extended
		{"long to ushort", iv(-1), ctypes.LongType, ctypes.UShortType, iv(0xffff)},
		{"int to long sign extends", iv(-5), ctypes.IntType, ctypes.LongType, iv(-5)},

		// Pointer conversions keep the address bits.
		{"long to pointer", iv(4096), ctypes.LongType, intPtr, iv(4096)},
		{"pointer to long", iv(4096), intPtr, ctypes.LongType, iv(4096)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := convert(tc.in, tc.from, tc.to)
			if got != tc.want {
				t.Errorf("convert(%+v, %s, %s) = %+v, want %+v",
					tc.in, tc.from, tc.to, got, tc.want)
			}
		})
	}
}

// TestConvCMatchesConvert drives the compiled engine's pre-resolved
// conversion closures over the same cases as TestConvert, pinning the
// two implementations together.
func TestConvCMatchesConvert(t *testing.T) {
	intPtr := ctypes.PointerTo(ctypes.IntType)
	types := []*ctypes.Type{
		ctypes.CharType, ctypes.UCharType, ctypes.ShortType, ctypes.UShortType,
		ctypes.IntType, ctypes.UIntType, ctypes.LongType, ctypes.ULongType,
		ctypes.FloatType, ctypes.DoubleType, intPtr,
	}
	intInputs := []value{
		iv(0), iv(1), iv(-1), iv(127), iv(128), iv(255), iv(256),
		iv(math.MaxInt32), iv(math.MinInt32), iv(math.MaxInt64), iv(math.MinInt64),
	}
	floatInputs := []value{
		fv(0), fv(0.5), fv(-0.5), fv(3.99), fv(-3.99), fv(1e10), fv(-1e10),
	}
	for _, from := range types {
		// The evaluator only feeds a conversion values carried in the
		// field the source type selects.
		inputs := intInputs
		if from.IsFloat() {
			inputs = floatInputs
		}
		for _, to := range types {
			cv := convC(from, to)
			for _, in := range inputs {
				want := convert(in, from, to)
				if got := cv(in); got != want {
					t.Errorf("convC(%s→%s)(%+v) = %+v, want %+v", from, to, in, got, want)
				}
			}
		}
	}
}
