package interp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdsx/internal/ast"
	"gdsx/internal/obs"
	"gdsx/internal/token"
)

// loopBounds describes the iteration space of a parallel for loop:
// iteration k executes with indvar = start + k*step, for k in [0, n).
type loopBounds struct {
	start, step, n int64
}

// bounds computes the iteration space. Parallel loops require
// loop-invariant bound and step expressions (as in OpenMP); both are
// evaluated once, here.
func (t *thread) bounds(f *frame, x *ast.For) loopBounds {
	iv := x.IndVar
	start := t.loadTyped(t.symAddr(f, iv, x.Pos()), iv.Type).I

	// Step from the post expression.
	var step int64
	switch p := x.Post.(type) {
	case *ast.IncDec:
		step = 1
	case *ast.Assign:
		switch p.Op {
		case token.ADDASSIGN:
			step = t.eval(f, p.RHS).I
		case token.ASSIGN:
			b, ok := p.RHS.(*ast.Binary)
			if !ok || b.Op != token.ADD {
				rterrf(x.Pos(), "unsupported parallel loop step")
			}
			if id, ok := b.X.(*ast.Ident); ok && id.Sym == iv {
				step = t.eval(f, b.Y).I
			} else if id, ok := b.Y.(*ast.Ident); ok && id.Sym == iv {
				step = t.eval(f, b.X).I
			} else {
				rterrf(x.Pos(), "unsupported parallel loop step")
			}
		}
	}
	if step == 0 {
		rterrf(x.Pos(), "parallel loop has zero step")
	}

	// Bound from the condition.
	cond := x.Cond.(*ast.Binary)
	op := cond.Op
	var bound int64
	if id, ok := cond.X.(*ast.Ident); ok && id.Sym == iv {
		bound = t.eval(f, cond.Y).I
	} else if id, ok := cond.Y.(*ast.Ident); ok && id.Sym == iv {
		bound = t.eval(f, cond.X).I
		// Mirror the comparison so the induction variable is on the left.
		switch op {
		case token.LSS:
			op = token.GTR
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		}
	} else {
		rterrf(x.Pos(), "parallel loop condition does not test the induction variable")
	}

	var n int64
	switch op {
	case token.LSS:
		if step > 0 && bound > start {
			n = (bound - start + step - 1) / step
		}
	case token.LEQ:
		if step > 0 && bound >= start {
			n = (bound-start)/step + 1
		}
	case token.GTR:
		if step < 0 && bound < start {
			n = (start - bound + (-step) - 1) / (-step)
		}
	case token.GEQ:
		if step < 0 && bound <= start {
			n = (start-bound)/(-step) + 1
		}
	case token.NEQ:
		if step != 0 && (bound-start)%step == 0 && (bound-start)/step > 0 {
			n = (bound - start) / step
		}
	}
	return loopBounds{start: start, step: step, n: n}
}

// hasSyncStmts reports whether the loop body contains ordered-section
// markers placed by the sync-placement pass.
func hasSyncStmts(body ast.Stmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SyncWait, *ast.SyncPost:
			found = true
		}
		return !found
	})
	return found
}

// bodyFn executes a loop body (or other statement) for one of the two
// engines; the parallel-loop machinery below is engine-agnostic and
// receives the body as a closure.
type bodyFn func(t *thread, f *frame) ctrl

// runParallelFor executes a parallel-annotated for loop with
// N = Options.NumThreads simulated threads, one goroutine each.
// Dispatch follows Options.Sched: under the default SchedStealing,
// DOALL loops run on per-worker work-stealing deques (see sched.go)
// and DOACROSS loops self-schedule in chunks; SchedStatic restores the
// paper's Gomp schedules (§4.3) — static chunking for DOALL, dynamic
// chunk-1 plus ordered-section tickets for DOACROSS — and SchedDynamic
// self-schedules everything from a shared counter. init executes the loop
// initializer (nil when the loop has none) and body one iteration's
// body; seq executes the entire loop sequentially on the calling
// thread (the engine's sequential-for path), used by region recovery
// and demotion. Both engines share everything else.
//
// Without Options.Recover the parallel attempt's failures propagate as
// panics (Machine.Run unwraps them into errors); with it, a guard
// abort, worker fault or watchdog timeout rolls the region back to its
// entry snapshot and re-executes just this loop via seq, so the run
// survives at O(region) cost. Sequential execution returns whatever
// control outcome the loop produced (a sequential re-execution may
// legally break or return, which a parallel run rejects).
func (t *thread) runParallelFor(f *frame, x *ast.For, init, body, seq bodyFn) ctrl {
	rc := t.m.recovery
	if rc == nil {
		t.parallelAttempt(f, x, init, body)
		return ctrlNext
	}
	if !rc.admit(x.ID) {
		// Demoted: run sequentially without snapshot or region hooks.
		return seq(t, f)
	}
	snap := t.beginRegionSnapshot()
	var fail *regionFault
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			switch v := r.(type) {
			case Abort:
				// The guard monitor aborted at the safe point: a
				// confirmed dependence violation, or — under sampled
				// guarding — a suspicion that may be a sampling artifact
				// and therefore charges no demotion strike.
				kind := FailViolation
				if suspicious(v.Err) {
					kind = FailSuspicion
				}
				fail = &regionFault{kind: kind, err: v.Err}
			case regionFault:
				fail = &v
			default:
				// A fault in region setup (bounds evaluation, spawning)
				// or an interpreter bug — not a contained worker fault.
				// Recovery cannot assume sequential re-execution
				// converges (a zero-step parallel loop re-executed
				// sequentially never terminates), so keep the state and
				// propagate.
				t.m.mem.Commit(snap.ms)
				panic(r)
			}
		}()
		t.parallelAttempt(f, x, init, body)
	}()
	if fail == nil {
		// Chaos injection (Options.FaultPlan): an otherwise-committing
		// region may be hit with a spurious suspicion or a forced
		// rollback, exercising the ladder's recovery paths on demand.
		switch {
		case t.m.faults.injectSuspect():
			fail = &regionFault{kind: FailSuspicion,
				err: &SuspicionError{Loop: x.ID, Detail: "injected by fault plan"}}
		case t.m.faults.injectRollback():
			fail = &regionFault{kind: FailFault,
				err: fmt.Errorf("fault plan: injected rollback")}
		}
	}
	if fail == nil {
		pages, bytes := t.m.mem.Commit(snap.ms)
		rc.noteSuccess(x.ID, pages, bytes)
		return ctrlNext
	}
	pages, bytes := t.rollbackRegion(snap)
	rc.noteFailure(x.ID, fail, pages, bytes)
	// Re-execute only this region, sequentially, from the restored
	// pre-region state. On thread 0 the expanded program touches only
	// copy 0 of every expanded structure, so this reproduces native
	// sequential semantics.
	return seq(t, f)
}

// parallelAttempt runs one parallel execution of the region. It
// returns normally on success and panics on failure: interp.Abort for
// a guard violation (raised by the monitor's safe-point hook),
// regionFault for a contained worker fault or a watchdog timeout.
func (t *thread) parallelAttempt(f *frame, x *ast.For, init, body bodyFn) {
	if init != nil {
		init(t, f)
	}
	lb := t.bounds(f, x)
	iv := x.IndVar
	ivAddr := t.symAddr(f, iv, x.Pos())
	n := lb.n
	nt := t.m.opts.NumThreads
	if h := t.m.opts.Hooks; h != nil && h.ParallelStart != nil {
		h.ParallelStart(x.ID, nt)
	}
	var timedOut atomic.Bool
	t.m.inParallel = true
	defer func() {
		t.m.inParallel = false
		h := t.m.opts.Hooks
		if h == nil {
			return
		}
		if timedOut.Load() || t.m.stop.Load() {
			// The region was abandoned mid-flight (watchdog timeout or
			// machine-level context cancellation): per-thread logs are
			// partial, so the monitor must discard them rather than run
			// its safe-point replay on a truncated schedule.
			if h.ParallelCancel != nil {
				h.ParallelCancel(x.ID)
			}
			return
		}
		if h.ParallelEnd != nil {
			h.ParallelEnd(x.ID)
		}
	}()

	ordered := x.Par == ast.DOACROSS && hasSyncStmts(x.Body)
	var order *orderState
	if ordered {
		order = &orderState{}
	}
	var next atomic.Int64 // dynamic-schedule iteration counter
	chunk := int64(t.m.opts.DispatchChunk)
	if chunk < 1 {
		chunk = 1
	}
	policy := t.m.opts.Sched
	if policy == SchedDynamic && t.m.opts.Hooks != nil && t.m.opts.Hooks.Guarded {
		// Dynamic self-scheduling has no placement guarantee: a
		// slow-starting worker can let a sibling run every iteration,
		// leaving a real cross-iteration dependence on one thread where
		// the monitor honestly cannot see it. Guarded regions therefore
		// run under work stealing (which pins each deque's first grain
		// to its owner, so conflicting iterations are spread across
		// threads) and the substitution is reported as a structured
		// warning rather than silently weakening detection.
		policy = SchedStealing
		t.m.warnf("loop %d: dynamic schedule overridden to work stealing for guarded execution", x.ID)
		if o := t.m.opts.Obs; o != nil {
			o.Emit(obs.Event{Name: "sched-override", Ph: 'i', Loop: x.ID, Iter: -1,
				Label: "dynamic->stealing"})
		}
	}
	var st *stealState
	if x.Par == ast.DOALL && policy == SchedStealing {
		st = newStealState(n, nt)
	}

	workers := make([]*thread, nt)
	for i := 0; i < nt; i++ {
		w, err := t.m.newThread(i)
		if err != nil {
			rterrf(x.Pos(), "spawning thread %d: %v", i, err)
		}
		w.parallel = true
		workers[i] = w
	}

	// Worker-fault containment: the first fault (in iteration order, to
	// match what sequential execution would hit first) cancels the
	// remaining workers at their next safe point — the iteration
	// dispatch, or the ordered-section spin, where a dead predecessor
	// would otherwise leave them waiting forever — and is re-raised on
	// the spawning thread as a positioned runtime error.
	var cancel atomic.Bool
	// Region watchdog: a stuck region (a worker spinning on state a
	// cancelled or misbehaving sibling will never produce) is cancelled
	// at the workers' next safe point — iteration dispatch, the
	// ordered-section spin, or any loop back-edge.
	if d := t.m.opts.RegionTimeout; d > 0 {
		timer := time.AfterFunc(d, func() {
			timedOut.Store(true)
			cancel.Store(true)
		})
		defer timer.Stop()
	}
	var wg sync.WaitGroup
	faults := make([]*workerFault, nt)
	for i := 0; i < nt; i++ {
		w := workers[i]
		w.cancel = &cancel
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(regionCanceled); ok {
						return
					}
					faults[idx] = &workerFault{iter: workers[idx].curIter, tid: idx, val: r}
					cancel.Store(true)
				}
			}()
			wf := &frame{fn: f.fn, slots: make([]int64, len(f.slots))}
			copy(wf.slots, f.slots)
			// Private induction variable cell on the worker's stack.
			pvAddr := w.alloca(iv.Type.Size(), x.Pos())
			wf.slots[iv.Index] = pvAddr
			switch {
			case x.Par == ast.DOALL && st != nil:
				w.runStealing(wf, x, lb, pvAddr, st, body)
			case x.Par == ast.DOALL && policy == SchedStatic:
				w.runStaticChunk(wf, x, lb, pvAddr, body)
			case x.Par == ast.DOALL:
				w.runDOALLDynamic(wf, x, lb, pvAddr, &next, chunk, body)
			case policy == SchedStatic:
				w.runOrderedStatic(wf, x, lb, pvAddr, order, body)
			default:
				w.runDynamic(wf, x, lb, pvAddr, &next, chunk, order, body)
			}
		}(i)
	}
	wg.Wait()
	if o := t.m.opts.Obs; o != nil {
		var steals int64
		if st != nil {
			steals = st.steals.Load()
		}
		o.Emit(obs.Event{Name: "sched", Ph: 'i', Loop: x.ID, Iter: -1,
			Label: policy.String(), V1: steals, V2: int64(nt)})
	}

	for _, w := range workers {
		w.cancel = nil
		t.m.mergeCounters(w)
		w.release()
	}
	// Machine-level cancellation takes precedence over any worker fault
	// that raced with it: cancelled workers exit via regionCanceled (no
	// fault recorded), so honoring a raced fault here would make the
	// reported error depend on scheduling. The cancellation propagates
	// as a run-level panic — region recovery must not retry it.
	if t.m.stop.Load() {
		t.raiseCancelled()
	}
	if fault := firstFault(faults); fault != nil {
		if re, ok := fault.val.(RuntimeError); ok {
			// Annotate and re-panic as a contained region failure; the
			// region recovery (or, without one, Machine.Run) turns it
			// into the error callers see. The panic unwinds through the
			// deferred ParallelEnd above, so a guard monitor still gets
			// its safe-point check (a detected dependence violation
			// there takes precedence over the worker fault).
			// The message names the iteration but not the executing
			// worker: the iteration is sequential semantics, while the
			// iteration-to-thread assignment is a scheduling accident
			// (under work stealing it varies run to run), and fault
			// messages must be identical across scheduling policies.
			panic(regionFault{kind: FailFault, err: RuntimeError{Pos: re.Pos,
				Msg: fmt.Sprintf("%s (parallel worker, iteration %d)", re.Msg, fault.iter)}})
		}
		panic(fault.val) // interpreter bug: propagate unchanged
	}
	if timedOut.Load() {
		panic(regionFault{kind: FailTimeout, err: RuntimeError{Pos: x.Pos(),
			Msg: fmt.Sprintf("parallel region timed out after %v", t.m.opts.RegionTimeout)}})
	}
	// Sequential semantics after the loop: the induction variable holds
	// its first value failing the condition.
	t.storeTyped(ivAddr, iv.Type, truncInt(lb.start+n*lb.step, iv.Type))
}

// workerFault records a panic caught in a parallel worker.
type workerFault struct {
	iter int64
	tid  int
	val  any
}

// regionCanceled is panicked inside a worker whose region was cancelled
// by a sibling's fault; the worker's recover swallows it.
type regionCanceled struct{}

// firstFault selects the fault of the earliest iteration (ties broken
// by thread ID), deterministically matching the fault sequential
// execution would reach first.
func firstFault(faults []*workerFault) *workerFault {
	var first *workerFault
	for _, fa := range faults {
		if fa == nil {
			continue
		}
		if first == nil || fa.iter < first.iter {
			first = fa
		}
	}
	return first
}

// runStaticChunk executes a contiguous block of iterations (DOALL
// static scheduling, as with Gomp's static chunking).
func (w *thread) runStaticChunk(f *frame, x *ast.For, lb loopBounds, pvAddr int64, body bodyFn) {
	nt := int64(w.m.opts.NumThreads)
	chunk := lb.n / nt
	rem := lb.n % nt
	lo := int64(w.tid)*chunk + min(int64(w.tid), rem)
	hi := lo + chunk
	if int64(w.tid) < rem {
		hi++
	}
	var iterStart, iterEnd func(loopID int, iter int64, tid int)
	if h := w.m.opts.Hooks; h != nil {
		iterStart, iterEnd = h.IterStart, h.IterEnd
	}
	w.counters[CatSync]++ // one dispatch per chunk
	for k := lo; k < hi; k++ {
		if w.cancel != nil && w.cancel.Load() {
			return // a sibling worker faulted; stop at the safe point
		}
		w.curIter = k
		w.storeTyped(pvAddr, x.IndVar.Type, value{I: lb.start + k*lb.step})
		if iterStart != nil {
			iterStart(x.ID, k, w.tid)
		}
		c := body(w, f)
		if iterEnd != nil {
			iterEnd(x.ID, k, w.tid)
		}
		if c == ctrlBreak {
			rterrf(x.Pos(), "break out of a parallel loop")
		}
		if c == ctrlReturn {
			rterrf(x.Pos(), "return out of a parallel loop")
		}
	}
}

// runDynamic executes iterations grabbed in chunk-sized pieces from a
// shared counter (DOACROSS self-scheduling; the paper uses chunk 1),
// entering ordered sections in iteration order via the ticket in
// order. Dispatch is charged as one CatSync op per iteration under
// every chunk size, so counters stay policy-independent.
func (w *thread) runDynamic(f *frame, x *ast.For, lb loopBounds, pvAddr int64, next *atomic.Int64, chunk int64, order *orderState, body bodyFn) {
	w.order = order
	defer func() { w.order = nil }()
	var iterStart, iterEnd func(loopID int, iter int64, tid int)
	if h := w.m.opts.Hooks; h != nil {
		iterStart, iterEnd = h.IterStart, h.IterEnd
	}
	for {
		lo := next.Add(chunk) - chunk
		if lo >= lb.n {
			return
		}
		hi := min(lo+chunk, lb.n)
		for k := lo; k < hi; k++ {
			if w.cancel != nil && w.cancel.Load() {
				return // a sibling worker faulted; stop at the safe point
			}
			w.counters[CatSync]++ // one dispatch per iteration
			w.curIter = k
			w.posted = false
			w.inOrdered = false
			w.storeTyped(pvAddr, x.IndVar.Type, value{I: lb.start + k*lb.step})
			if iterStart != nil {
				iterStart(x.ID, k, w.tid)
			}
			c := body(w, f)
			if iterEnd != nil {
				iterEnd(x.ID, k, w.tid)
			}
			if c == ctrlBreak || c == ctrlReturn {
				rterrf(x.Pos(), "break/return out of a parallel loop")
			}
			// If the ordered section was skipped on this path, post now
			// so later iterations are not blocked forever.
			if order != nil && !w.posted {
				w.syncPost()
			}
		}
	}
}
