package interp

import (
	"gdsx/internal/obs"
)

// obsAdapter feeds the observability layer from the interpreter's hook
// layer. One adapter serves one machine; its region state (the
// per-thread iteration-span buffers) is created at ParallelStart on
// the spawning thread, written by each worker in its own slot, and
// flushed at ParallelEnd/Cancel after every worker has joined, so no
// synchronization beyond the region's own happens-before edges is
// needed.
type obsAdapter struct {
	o   *obs.Observer
	geo *obs.Geometry // nil unless the hot-site profiler is enabled

	cRegions *obs.Counter
	cExpands *obs.Counter
	hIters   *obs.Histogram // iterations observed per region

	// Per-region iteration-span state (IterSpans only).
	spans  [][]obs.Event // per-tid buffered spans
	starts []int64       // per-tid start timestamp of the current iteration
}

// obsHooks builds the hook set feeding o. Only the hooks a component
// needs are registered: in particular Observe — which switches every
// sited memory access onto the interpreter's slow hook path — is
// registered only when the hot-site profiler is enabled, so the cheap
// trace/metrics configuration never pays per-access cost.
func obsHooks(o *obs.Observer, nthreads int) *Hooks {
	a := &obsAdapter{
		o:        o,
		cRegions: o.Counter("interp.regions.parallel"),
		cExpands: o.Counter("interp.expansions"),
		hIters:   o.Histogram("interp.region_iters"),
	}
	if o.Hot != nil {
		a.geo = obs.NewGeometry(nthreads)
	}
	h := &Hooks{
		ParallelStart:  a.parallelStart,
		ParallelEnd:    a.parallelEnd,
		ParallelCancel: a.parallelCancel,
		Expand:         a.expand,
	}
	if o.Trace != nil && o.IterSpans {
		h.IterStart = a.iterStart
		h.IterEnd = a.iterEnd
	}
	if o.Hot != nil {
		h.Observe = a.observe
	}
	return h
}

func (a *obsAdapter) parallelStart(loopID, nthreads int) {
	a.cRegions.Inc()
	a.o.Emit(obs.Event{Name: "region", Ph: 'B', Loop: loopID, Iter: -1, V1: int64(nthreads)})
	if a.o.Trace != nil && a.o.IterSpans {
		a.spans = make([][]obs.Event, nthreads)
		a.starts = make([]int64, nthreads)
	}
}

func (a *obsAdapter) iterStart(loopID int, iter int64, tid int) {
	a.starts[tid] = a.o.Trace.Now()
}

func (a *obsAdapter) iterEnd(loopID int, iter int64, tid int) {
	start := a.starts[tid]
	a.spans[tid] = append(a.spans[tid], obs.Event{
		Name: "iter", Ph: 'X', TS: start, Dur: a.o.Trace.Now() - start,
		Tid: tid, Loop: loopID, Iter: iter,
	})
}

// finishRegion flushes the buffered spans and emits the region-end
// event; label distinguishes a completed region from a cancelled one.
func (a *obsAdapter) finishRegion(loopID int, label string) {
	if a.spans != nil {
		var n int64
		for tid, evs := range a.spans {
			n += int64(len(evs))
			a.o.Trace.EmitBatch(evs)
			a.spans[tid] = nil
		}
		a.hIters.Observe(n)
	}
	a.o.Emit(obs.Event{Name: "region", Ph: 'E', Loop: loopID, Iter: -1, Label: label})
}

func (a *obsAdapter) parallelEnd(loopID int)    { a.finishRegion(loopID, "") }
func (a *obsAdapter) parallelCancel(loopID int) { a.finishRegion(loopID, "cancelled") }

func (a *obsAdapter) expand(base, span, esz int64) {
	a.cExpands.Inc()
	if a.geo != nil {
		a.geo.Note(base, span, esz)
	}
	label := "bonded"
	if esz > 0 {
		label = "interleaved"
	}
	a.o.Emit(obs.Event{Name: "expand", Ph: 'i', Iter: -1, Label: label, V1: base, V2: span})
}

// observe feeds the hot-site profiler: each sited access is charged to
// its (site, expanded-copy) bucket. Definition events are synthetic
// (fresh-storage markers, not program accesses) and are skipped.
func (a *obsAdapter) observe(ev Access) {
	if ev.Def {
		return
	}
	a.o.Hot.Record(ev.Tid, ev.Site, a.geo.Copy(ev.Addr), ev.Store, ev.Size)
}
