// Superinstruction fusion and profile-guided site specialization
// (passes 2 and 3 of the optimization pipeline, see opt.go).
//
// Fusion collapses closure chains whose links cannot observe or be
// observed: compile-time constants and register-promoted scalars have
// no cache traffic, fire no hooks, and fault only on the
// used-before-declaration check — so a consumer may evaluate them
// inline, bump the work counter by their static tick count up front,
// and skip the per-node closure calls. Operand order (and therefore
// fault order) is preserved; work-counter totals per statement are
// exact, which keeps MaxOps budgets and iteration cost traces
// identical to the unoptimized engine.
package interp

import (
	"math"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// convNC is convC except that statically-identity conversions return
// nil, letting fusion sites skip the call entirely. (Go function
// values cannot be compared against idConv, so the nil sentinel is the
// only way to detect identity.) Integer-typed values always carry
// F == 0, so widening to a full 8-byte slot is an identity too.
func convNC(from, to *ctypes.Type) cconv {
	if from == nil || to == nil || from.Kind == ctypes.Array {
		return nil
	}
	switch {
	case to.IsFloat() && from.IsFloat():
		if to.Kind == ctypes.Float {
			return func(v value) value { return fv(float64(float32(v.F))) }
		}
		return nil
	case to.IsFloat():
		if from.Unsigned {
			return func(v value) value { return fv(float64(uint64(v.I))) }
		}
		return func(v value) value { return fv(float64(v.I)) }
	case from.IsFloat(): // to integer
		tr := truncC(to)
		return func(v value) value { return tr(int64(v.F)) }
	case to.Kind == ctypes.Ptr:
		return nil
	case to.IsInteger():
		if to.HasStaticSize() && to.Size() == 8 {
			return nil
		}
		tr := truncC(to)
		return func(v value) value { return tr(v.I) }
	}
	return nil
}

// orIdent replaces a nil (identity) conversion with idConv so closure
// emitters that do not special-case identity can call it untested.
func orIdent(cv cconv) cconv {
	if cv == nil {
		return idConv
	}
	return cv
}

// fuseOperand compiles e into an unticked evaluator when e is free of
// memory traffic, hooks and faults other than the declared check:
// compile-time constants and register-promoted scalars. ticks is the
// number of work-counter ticks the tree-walker would record for the
// subtree; the consumer adds them to its own bump.
func (c *compiler) fuseOperand(e ast.Expr) (ev cexpr, ticks int64, ok bool) {
	if !c.opt.fuse {
		return nil, 0, false
	}
	if v, n, okc := c.constEval(e); okc {
		return func(t *thread, f *frame) value { return v }, n, true
	}
	if id, oki := e.(*ast.Ident); oki && c.isPromoted(id.Sym) {
		idx, name, pos := id.Sym.Index, id.Sym.Name, id.Pos()
		return func(t *thread, f *frame) value {
			if f.slots[idx] == 0 {
				rterrf(pos, "variable %s used before its declaration executed", name)
			}
			return f.regs[idx]
		}, 1, true
	}
	return nil, 0, false
}

// fuseBase compiles the base of an index expression into an unticked
// address evaluator when it is a register-promoted pointer.
func (c *compiler) fuseBase(e ast.Expr) (ev func(t *thread, f *frame) int64, ticks int64, ok bool) {
	if !c.opt.fuse {
		return nil, 0, false
	}
	id, oki := e.(*ast.Ident)
	if !oki || !c.isPromoted(id.Sym) || id.Sym.Type == nil || id.Sym.Type.Kind != ctypes.Ptr {
		return nil, 0, false
	}
	idx, name, pos := id.Sym.Index, id.Sym.Name, id.Pos()
	return func(t *thread, f *frame) int64 {
		if f.slots[idx] == 0 {
			rterrf(pos, "variable %s used before its declaration executed", name)
		}
		return f.regs[idx].I
	}, 1, true
}

// promotedLoad emits the read closure for a register-promoted scalar:
// one tick, the declared check, a register read. Replaces the
// tick → slot lookup → cache touch → bounds check → typed load chain.
func (c *compiler) promotedLoad(sym *ast.Symbol, pos token.Pos) cexpr {
	idx, name := sym.Index, sym.Name
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		if f.slots[idx] == 0 {
			rterrf(pos, "variable %s used before its declaration executed", name)
		}
		return f.regs[idx]
	}
}

// compilePromotedAssign emits plain and compound assignment to a
// register-promoted scalar. The declared check runs before the RHS
// (matching the generic emitter's address computation), the register
// takes the new value, and the write goes through to the backing
// bytes raw — no cache touch, no bounds check: the address came from a
// successful alloca, and promotion is off whenever hooks watch.
// Compound assignment is the load–binop–store superinstruction: the
// old value is a register read instead of a memory load.
func (c *compiler) compilePromotedAssign(x *ast.Assign, id *ast.Ident) cexpr {
	sym := id.Sym
	lt := x.LHS.ExprType()
	idx, name := sym.Index, sym.Name
	pos := x.Pos()
	st := c.storerFor(lt)
	n := int64(1)
	var cr cexpr
	if fr, rn, ok := c.fuseOperand(x.RHS); ok {
		cr, n = fr, n+rn
	} else {
		cr = c.compileExpr(x.RHS)
	}
	if x.Op == token.ASSIGN {
		cv := convNC(x.RHS.ExprType(), lt)
		if cv == nil {
			return func(t *thread, f *frame) value {
				t.counters[CatWork] += n
				a := f.slots[idx]
				if a == 0 {
					rterrf(pos, "variable %s used before its declaration executed", name)
				}
				nv := cr(t, f)
				f.regs[idx] = nv
				st(t, a, nv)
				return nv
			}
		}
		return func(t *thread, f *frame) value {
			t.counters[CatWork] += n
			a := f.slots[idx]
			if a == 0 {
				rterrf(pos, "variable %s used before its declaration executed", name)
			}
			nv := cv(cr(t, f))
			f.regs[idx] = nv
			st(t, a, nv)
			return nv
		}
	}
	cop := compoundC(pos, x.Op.CompoundOp(), lt, x.RHS.ExprType())
	return func(t *thread, f *frame) value {
		t.counters[CatWork] += n
		a := f.slots[idx]
		if a == 0 {
			rterrf(pos, "variable %s used before its declaration executed", name)
		}
		old := f.regs[idx]
		rv := cr(t, f)
		nv := cop(old, rv)
		f.regs[idx] = nv
		st(t, a, nv)
		return nv
	}
}

// compilePromotedIncDec emits ++/-- on a register-promoted scalar as a
// single closure: declared check, register step, raw write-through.
func (c *compiler) compilePromotedIncDec(x *ast.IncDec, id *ast.Ident) cexpr {
	ty := x.ExprType()
	sym := id.Sym
	idx, name := sym.Index, sym.Name
	pos := x.Pos()
	st := c.storerFor(ty)
	step := c.incDecStep(x, ty)
	if x.Post {
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := f.slots[idx]
			if a == 0 {
				rterrf(pos, "variable %s used before its declaration executed", name)
			}
			old := f.regs[idx]
			nv := step(old)
			f.regs[idx] = nv
			st(t, a, nv)
			return old
		}
	}
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		a := f.slots[idx]
		if a == 0 {
			rterrf(pos, "variable %s used before its declaration executed", name)
		}
		nv := step(f.regs[idx])
		f.regs[idx] = nv
		st(t, a, nv)
		return nv
	}
}

// fusedIndexAddr emits the base + i*scale addressing superinstruction
// when the base pointer or the index (or both) can evaluate unticked;
// nil falls back to the generic two-closure chain.
func (c *compiler) fusedIndexAddr(x *ast.Index, esz int64) caddr {
	if !c.opt.fuse {
		return nil
	}
	fb, bn, bok := c.fuseBase(x.X)
	fi, in, iok := c.fuseOperand(x.I)
	if !bok && !iok {
		return nil
	}
	n := int64(0)
	var ob caddr
	if bok {
		ob, n = fb, n+bn
	} else {
		ob = c.compileBase(x.X)
	}
	var oi cexpr
	if iok {
		oi, n = fi, n+in
	} else {
		oi = c.compileExpr(x.I)
	}
	return func(t *thread, f *frame) int64 {
		t.counters[CatWork] += n
		b := ob(t, f)
		i := oi(t, f)
		return b + i.I*esz
	}
}

// isCmpOp reports whether op is one of the six comparisons.
func isCmpOp(op token.Kind) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// cmpIntBoolC compiles an integer comparison straight to bool, so
// fused loop conditions skip the value boxing of cmpInt plus the truth
// test.
func cmpIntBoolC(op token.Kind, unsigned bool) func(a, b int64) bool {
	if unsigned {
		switch op {
		case token.EQL:
			return func(a, b int64) bool { return a == b }
		case token.NEQ:
			return func(a, b int64) bool { return a != b }
		case token.LSS:
			return func(a, b int64) bool { return uint64(a) < uint64(b) }
		case token.GTR:
			return func(a, b int64) bool { return uint64(a) > uint64(b) }
		case token.LEQ:
			return func(a, b int64) bool { return uint64(a) <= uint64(b) }
		case token.GEQ:
			return func(a, b int64) bool { return uint64(a) >= uint64(b) }
		}
		return nil
	}
	switch op {
	case token.EQL:
		return func(a, b int64) bool { return a == b }
	case token.NEQ:
		return func(a, b int64) bool { return a != b }
	case token.LSS:
		return func(a, b int64) bool { return a < b }
	case token.GTR:
		return func(a, b int64) bool { return a > b }
	case token.LEQ:
		return func(a, b int64) bool { return a <= b }
	case token.GEQ:
		return func(a, b int64) bool { return a >= b }
	}
	return nil
}

// compileCondTest compiles a loop condition to a bool-returning
// closure. With fusion on, integer compare-and-branch conditions —
// the back-edge test of virtually every counted loop — evaluate both
// operands and compare in a single closure; constant and promoted
// conditions shrink further. The generic path wraps the ordinary
// expression closure and is emission-identical to the unoptimized
// engine.
func (c *compiler) compileCondTest(e ast.Expr) func(t *thread, f *frame) bool {
	if c.opt.fuse {
		if tst := c.fusedCondTest(e); tst != nil {
			return tst
		}
	}
	cond := c.compileExpr(e)
	tr := truthC(e.ExprType())
	return func(t *thread, f *frame) bool { return tr(cond(t, f)) }
}

func (c *compiler) fusedCondTest(e ast.Expr) func(t *thread, f *frame) bool {
	if v, n, ok := c.constEval(e); ok {
		res := truth(v, e.ExprType())
		return func(t *thread, f *frame) bool {
			t.counters[CatWork] += n
			return res
		}
	}
	x, ok := e.(*ast.Binary)
	if !ok || !isCmpOp(x.Op) {
		if fx, n, okf := c.fuseOperand(e); okf {
			tr := truthC(e.ExprType())
			return func(t *thread, f *frame) bool {
				t.counters[CatWork] += n
				return tr(fx(t, f))
			}
		}
		return nil
	}
	xt, yt := x.X.ExprType(), x.Y.ExprType()
	if xt == nil || yt == nil || !xt.IsInteger() || !yt.IsInteger() {
		return nil
	}
	common := ctypes.Common(xt, yt)
	cmp := cmpIntBoolC(x.Op, common.Unsigned)
	if cmp == nil {
		return nil
	}
	n := int64(1)
	ox, xn, xok := c.fuseOperand(x.X)
	if xok {
		n += xn
	} else {
		ox = c.compileExpr(x.X)
	}
	oy, yn, yok := c.fuseOperand(x.Y)
	if yok {
		n += yn
	} else {
		oy = c.compileExpr(x.Y)
	}
	cvx, cvy := convNC(xt, common), convNC(yt, common)
	if cvx == nil && cvy == nil {
		return func(t *thread, f *frame) bool {
			t.counters[CatWork] += n
			a := ox(t, f)
			b := oy(t, f)
			return cmp(a.I, b.I)
		}
	}
	fcx, fcy := orIdent(cvx), orIdent(cvy)
	return func(t *thread, f *frame) bool {
		t.counters[CatWork] += n
		a := fcx(ox(t, f))
		b := fcy(oy(t, f))
		return cmp(a.I, b.I)
	}
}

// ---------------------------------------------------------------------
// Profile-guided site specialization
// ---------------------------------------------------------------------

// hotLoadAcc builds the flattened accessor for a profiled-hot load
// site: cache touch, bounds check and the direct fixed-width load in
// one closure, replacing the generic touch/check closure calling into
// a separate typed-load closure. Only meaningful on the no-access-hook
// fast path; ok == false falls back to the generic accessor.
func (c *compiler) hotLoadAcc(pos token.Pos, site int, ty *ctypes.Type) (func(t *thread, addr int64) value, bool) {
	if !c.opt.hot[site] || c.hooks.HasAccessHooks() || ty == nil {
		return nil, false
	}
	mm := c.mem
	size := accSize(ty)
	switch ty.Kind {
	case ctypes.Float:
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return fv(float64(math.Float32frombits(uint32(mm.Load4(addr)))))
		}, true
	case ctypes.Double:
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return fv(math.Float64frombits(mm.Load8(addr)))
		}, true
	case ctypes.Ptr:
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return iv(int64(mm.Load8(addr)))
		}, true
	}
	if !ty.IsInteger() || !ty.HasStaticSize() {
		return nil, false
	}
	switch ty.Size() {
	case 1:
		if ty.Unsigned {
			return func(t *thread, addr int64) value {
				t.touchCache(addr)
				t.checkAccess(pos, addr, size)
				return iv(int64(uint8(mm.Load1(addr))))
			}, true
		}
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return iv(int64(int8(mm.Load1(addr))))
		}, true
	case 2:
		if ty.Unsigned {
			return func(t *thread, addr int64) value {
				t.touchCache(addr)
				t.checkAccess(pos, addr, size)
				return iv(int64(uint16(mm.Load2(addr))))
			}, true
		}
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return iv(int64(int16(mm.Load2(addr))))
		}, true
	case 4:
		if ty.Unsigned {
			return func(t *thread, addr int64) value {
				t.touchCache(addr)
				t.checkAccess(pos, addr, size)
				return iv(int64(uint32(mm.Load4(addr))))
			}, true
		}
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return iv(int64(int32(mm.Load4(addr))))
		}, true
	case 8:
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return iv(int64(mm.Load8(addr)))
		}, true
	}
	return nil, false
}

// hotStoreAcc is hotLoadAcc's store-side twin.
func (c *compiler) hotStoreAcc(pos token.Pos, site int, ty *ctypes.Type) (func(t *thread, addr int64, v value), bool) {
	if !c.opt.hot[site] || c.hooks.HasAccessHooks() || ty == nil {
		return nil, false
	}
	mm := c.mem
	size := accSize(ty)
	switch ty.Kind {
	case ctypes.Float:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store4(addr, uint64(math.Float32bits(float32(v.F))))
		}, true
	case ctypes.Double:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store8(addr, math.Float64bits(v.F))
		}, true
	case ctypes.Ptr:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store8(addr, uint64(v.I))
		}, true
	}
	if !ty.IsInteger() || !ty.HasStaticSize() {
		return nil, false
	}
	switch ty.Size() {
	case 1:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store1(addr, uint64(v.I))
		}, true
	case 2:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store2(addr, uint64(v.I))
		}, true
	case 4:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store4(addr, uint64(v.I))
		}, true
	case 8:
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			mm.Store8(addr, uint64(v.I))
		}, true
	}
	return nil, false
}
