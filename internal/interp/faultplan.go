package interp

import "sync"

// FaultPlan injects deterministic failures into the adaptive
// speculation ladder, for chaos testing: the ladder must converge to a
// correct (possibly sequential) execution no matter where spurious
// suspicions, forced rollbacks or re-expansion failures land. All
// counters are 1-based "every Nth" frequencies; 0 disables that
// injection. Injection points are deterministic functions of region
// execution order, so a seeded plan reproduces exactly.
//
// Suspect/rollback injection piggybacks on the region-recovery
// machinery: without Options.Recover those two injections are inert.
type FaultPlan struct {
	// SuspectEvery raises a spurious guard suspicion on every Nth
	// parallel region execution that would otherwise commit: the region
	// rolls back and re-executes sequentially (no demotion strike),
	// exactly like a sampled-tier suspicion.
	SuspectEvery int
	// RollbackEvery forces a rollback (counted as a worker fault, with
	// a demotion strike) on every Nth otherwise-successful parallel
	// region execution.
	RollbackEvery int
	// FailReexpand fails every Nth runtime re-expansion attempt
	// (consumed by the adaptive driver in package gdsx, not by the
	// machine).
	FailReexpand int
}

// faultState tracks a machine's consumption of its FaultPlan. Regions
// start only on the spawning thread, but the mutex keeps injection
// safe if that ever changes.
type faultState struct {
	mu        sync.Mutex
	plan      FaultPlan
	suspects  int
	rollbacks int
}

// injectSuspect reports whether this region execution should suffer a
// spurious suspicion.
func (fs *faultState) injectSuspect() bool {
	if fs == nil || fs.plan.SuspectEvery <= 0 {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.suspects++
	return fs.suspects%fs.plan.SuspectEvery == 0
}

// injectRollback reports whether this region execution should be
// force-rolled-back as a fault.
func (fs *faultState) injectRollback() bool {
	if fs == nil || fs.plan.RollbackEvery <= 0 {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rollbacks++
	return fs.rollbacks%fs.plan.RollbackEvery == 0
}

// SuspicionError is the structured error a guard monitor (or the fault
// plan) raises for a suspicious access seen under sampled guarding:
// the evidence is consistent with a dependence violation but may be a
// sampling artifact, so the region rolls back and re-executes
// sequentially without charging a demotion strike, and the monitor
// escalates the region back to full guarding.
type SuspicionError struct {
	Loop int
	// Detail describes the suspicious evidence (rule name, sites).
	Detail string
}

func (e *SuspicionError) Error() string {
	return "guard suspicion (sampled tier): " + e.Detail
}

// Suspicion marks the error for the region-recovery classifier.
func (e *SuspicionError) Suspicion() bool { return true }

// suspicious reports whether err (typically an Abort payload) is a
// sampling-tier suspicion rather than a confirmed violation.
func suspicious(err error) bool {
	s, ok := err.(interface{ Suspicion() bool })
	return ok && s.Suspicion()
}
