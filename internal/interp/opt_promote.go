// Scalar register promotion (pass 1 of the optimization pipeline, see
// opt.go). The analysis here decides which of a function's locals and
// parameters may live in Go-native frame registers; the promoted
// closure variants themselves are emitted by compile_expr.go /
// compile_stmt.go next to the generic ones they replace.
//
// Promotion is write-through: a promoted variable keeps its alloca
// (layout, stack-overflow faults and allocator statistics are
// unchanged) and every write updates both the register and the backing
// bytes. Simulated memory therefore stays byte-identical to an
// unoptimized run, which makes any remaining memory-path read of the
// variable — tree-walked parallel-loop bounds, an unfused consumer, a
// post-run memory dump — still correct. Only the reverse direction is
// unsound: a write that bypasses the register (an out-of-object store
// landing in the slot, or tree-walked code mutating it) would leave
// the register stale. The promotion criteria below rule those out for
// well-defined programs, and parallel regions fall back wholesale.
package interp

import (
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
)

// promotableType reports whether values of t fit a frame register: a
// scalar of statically known power-of-two width. Arrays and structs
// are excluded (they are accessed through their address), as are VLA
// element types.
func promotableType(t *ctypes.Type) bool {
	if t == nil || !t.HasStaticSize() {
		return false
	}
	if t.Kind == ctypes.Ptr || t.IsFloat() {
		return true
	}
	if !t.IsInteger() {
		return false
	}
	switch t.Size() {
	case 1, 2, 4, 8:
		return true
	}
	return false
}

// promotableSlots returns, indexed by Symbol.Index, which of fn's
// locals and parameters the compiler promotes; nil when promotion is
// off or nothing qualifies. A slot qualifies when its address is never
// taken (sema's AddrTaken bit), its type fits a register, and it is
// not touched by any parallel-annotated loop the machine would
// actually run in parallel.
func (c *compiler) promotableSlots(fn *ast.FuncDecl) []bool {
	if !c.opt.promote {
		return nil
	}
	promoted := make([]bool, fn.NumSlots)
	mark := func(sym *ast.Symbol, d *ast.VarDecl) {
		if sym == nil || (sym.Kind != ast.SymLocal && sym.Kind != ast.SymParam) {
			return
		}
		if sym.AddrTaken || !promotableType(sym.Type) {
			return
		}
		if d != nil && d.VLALen != nil {
			return
		}
		promoted[sym.Index] = true
	}
	for _, p := range fn.Params {
		mark(p.Sym, p)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok {
			mark(d.Sym, d)
		}
		return true
	})
	// Parallel regions run their bounds through the tree-walker, copy
	// only the slot table into worker frames, and roll memory (not
	// registers) back on recovery — so every symbol a parallel loop
	// subtree mentions stays in memory. The exclusion matches the
	// compile-time condition under which compileFor emits the parallel
	// path at all; with one thread and no forced machinery nothing is
	// excluded.
	if (c.m.opts.NumThreads > 1 || c.m.opts.ParallelizeSingle) && !c.m.opts.ForceSequential {
		demote := func(sym *ast.Symbol) {
			if sym != nil && (sym.Kind == ast.SymLocal || sym.Kind == ast.SymParam) &&
				sym.Index < len(promoted) {
				promoted[sym.Index] = false
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			fo, ok := n.(*ast.For)
			if !ok || fo.Par == ast.Sequential {
				return true
			}
			ast.Inspect(fo, func(inner ast.Node) bool {
				switch x := inner.(type) {
				case *ast.Ident:
					demote(x.Sym)
				case *ast.VarDecl:
					demote(x.Sym)
				}
				return true
			})
			return true
		})
	}
	for _, p := range promoted {
		if p {
			return promoted
		}
	}
	return nil
}

// isPromoted reports whether sym lives in a frame register of the
// function currently being compiled.
func (c *compiler) isPromoted(sym *ast.Symbol) bool {
	return sym != nil && c.promoted != nil &&
		(sym.Kind == ast.SymLocal || sym.Kind == ast.SymParam) &&
		sym.Index < len(c.promoted) && c.promoted[sym.Index]
}
